package coterie_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md. Each wraps the corresponding
// internal/eval experiment in quick mode so `go test -bench=.` regenerates
// the whole evaluation in minutes; run cmd/benchtab without -quick for the
// paper-grade version.

import (
	"sync"
	"testing"

	"coterie/internal/eval"
)

var (
	labOnce sync.Once
	lab     *eval.Lab
)

func benchLab(b *testing.B) *eval.Lab {
	b.Helper()
	labOnce.Do(func() {
		opts := eval.DefaultOptions()
		opts.Quick = true
		lab = eval.NewLab(opts)
	})
	return lab
}

func run(b *testing.B, fn func() error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Scaling(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table1(); return err })
}

func BenchmarkFig1IntraPlayerSimilarity(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig1(); return err })
}

func BenchmarkFig2InterPlayerSimilarity(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig2(); return err })
}

func BenchmarkFig3NearObjectEffect(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig3(); return err })
}

func BenchmarkFig5SimilarityVsCutoff(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig5(); return err })
}

func BenchmarkFig6ViolationVsK(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig6(); return err })
}

func BenchmarkTable3AdaptiveCutoff(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table3(); return err })
}

func BenchmarkFig7CutoffDistribution(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig7(); return err })
}

func BenchmarkFig8DensityCorrelation(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig8(); return err })
}

func BenchmarkTable5CacheVersions(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table5("viking"); return err })
}

func BenchmarkTable6HitRatios(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table6(); return err })
}

func BenchmarkTable7QoE(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table7(); return err })
}

func BenchmarkFig11Scalability(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig11(); return err })
}

func BenchmarkTable8CoteriePerformance(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table8(); return err })
}

func BenchmarkTable9NetworkUsage(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table9(); return err })
}

func BenchmarkFig12ResourceUsage(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Fig12(); return err })
}

func BenchmarkTable10UserStudy(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.Table10(); return err })
}

func BenchmarkAblationReplacement(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.ReplacementAblation("viking", 24); return err })
}

func BenchmarkAblationGlobalCutoff(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.CutoffAblation("viking"); return err })
}

func BenchmarkAblationLookupCriteria(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.LookupAblation("viking"); return err })
}

func BenchmarkAblationPrefetchWindow(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.PrefetchAblation("viking"); return err })
}

func BenchmarkAblationOverhearing(b *testing.B) {
	l := benchLab(b)
	run(b, func() error { _, err := l.OverhearAblation("viking"); return err })
}
