// Package coterie is a from-scratch reproduction of "Coterie: Exploiting
// Frame Similarity to Enable High-Quality Multiplayer VR on Commodity
// Mobile Devices" (Meng, Paul, Hu — ASPLOS 2020), built entirely on the Go
// standard library.
//
// The module implements the paper's full system and every substrate it
// depends on: a software panoramic renderer with near/far-BE distance
// clipping (internal/render), the nine study game worlds (internal/games),
// SSIM (internal/ssim), a DCT intra-frame codec (internal/codec), the
// adaptive cutoff scheme (internal/cutoff), the similarity frame cache
// (internal/cache), the prefetcher (internal/prefetch), a Pixel 2 device
// model (internal/device), a discrete-event 802.11ac testbed
// (internal/netsim), FI synchronisation (internal/fisync), a real TCP
// frame server (internal/server, cmd/coterie-server), and the session
// engine that runs Coterie against the paper's baselines (internal/core).
//
// The experiment harness (internal/eval, cmd/benchtab) regenerates every
// table and figure of the paper's evaluation; the benchmarks in
// bench_test.go wrap the same experiments. See README.md for a tour,
// DESIGN.md for the system inventory and substitutions, and EXPERIMENTS.md
// for measured-versus-published results.
package coterie
