package server

import (
	"math"

	"coterie/internal/cutoff"
	"coterie/internal/geom"
	"coterie/internal/img"
)

// This file is the quality-degrade ladder: the frames the server serves
// when a request's deadline can no longer afford the frame it asked for.
// Every rung stays inside the paper's similarity bound — SSIM ≥
// ssim.GoodThreshold against the true frame — either by construction
// (rung 1 serves a cached frame within the leaf's calibrated DistThresh,
// the distance below which SSIM ≥ 0.90 by §4.4) or by measurement
// (rungs 2 and 3 are verified against a ray-cast ground-truth band
// before being served). The ladder degrades latency into similarity,
// never into visible quality below the bar.

// maxStaleRadius bounds the ring scan for a stale substitute, in grid
// steps. DistThresh rarely exceeds a few steps in calibrated maps; the
// cap keeps a pathological threshold from turning the fallback into a
// store sweep.
const maxStaleRadius = 6

// degradeLowResFactor is the resolution divisor for rung-3 renders: half
// resolution per axis quarters the ray count, cutting render cost ~4×
// while the upscale's blur stays within the SSIM bar for the smooth
// far-background content the far-BE layer carries (verified per frame
// regardless).
const degradeLowResFactor = 2

// staleFor looks for a cached frame the similarity calibration vouches
// for as a stand-in for pt: a stored frame within the leaf's DistThresh,
// nearest first. It never triggers or joins a render (peek only) — the
// whole point is serving without queueing. The scan walks Chebyshev
// rings outward so the common case (pt itself, or an immediate
// neighbour on the client's walking path) exits early.
func (s *Server) staleFor(pt geom.GridPoint) (data []byte, refPt geom.GridPoint, seq uint64, ok bool) {
	grid := s.env.Game.Scene.Grid
	leaf := s.env.Map.LeafAt(grid.Pos(pt))
	if leaf == nil {
		return nil, geom.GridPoint{}, 0, false
	}
	maxR := int(math.Ceil(leaf.DistThresh / grid.Step))
	if maxR > maxStaleRadius {
		maxR = maxStaleRadius
	}
	for r := 0; r <= maxR; r++ {
		var bestData []byte
		var bestPt geom.GridPoint
		var bestSeq uint64
		bestDist := leaf.DistThresh + 1
		for _, cand := range chebyshevRing(pt, r) {
			if !grid.In(cand) {
				continue
			}
			d := grid.Dist(pt, cand)
			if d > leaf.DistThresh || d >= bestDist {
				continue
			}
			if r > 0 && s.env.Map.LeafAt(grid.Pos(cand)) != leaf {
				continue
			}
			if data, seq, hit := s.store.peek(cand); hit {
				bestData, bestPt, bestSeq, bestDist = data, cand, seq, d
			}
		}
		if bestData != nil {
			return bestData, bestPt, bestSeq, true
		}
	}
	return nil, geom.GridPoint{}, 0, false
}

// chebyshevRing returns the grid points at Chebyshev distance r from pt
// (just pt itself for r=0).
func chebyshevRing(pt geom.GridPoint, r int) []geom.GridPoint {
	if r == 0 {
		return []geom.GridPoint{pt}
	}
	ring := make([]geom.GridPoint, 0, 8*r)
	for di := -r; di <= r; di++ {
		ring = append(ring,
			geom.GridPoint{I: pt.I + di, J: pt.J - r},
			geom.GridPoint{I: pt.I + di, J: pt.J + r})
	}
	for dj := -r + 1; dj <= r-1; dj++ {
		ring = append(ring,
			geom.GridPoint{I: pt.I - r, J: pt.J + dj},
			geom.GridPoint{I: pt.I + r, J: pt.J + dj})
	}
	return ring
}

// tryLowRes is the ladder's last rung: render the panorama at reduced
// resolution, upscale to full size, and verify the result against the
// same ray-cast ground-truth band the reprojection path uses. nil means
// the upscale failed verification (scene content too sharp for the
// blur) and the caller falls back to a full render. The returned raster
// is renderer-owned, exactly like Panorama's.
func (s *Server) tryLowRes(pos geom.Vec2, leaf *cutoff.Region) *img.Gray {
	lr := s.env.Renderer.LowRes(degradeLowResFactor)
	if lr == nil {
		return nil
	}
	small := lr.Panorama(s.env.Game.Scene.EyeAt(pos), leaf.Radius, math.Inf(1), nil)
	up := s.env.Renderer.UpscaleToFull(small)
	lr.ReleaseGray(small)
	if !s.verifyReproject(up, pos, leaf) {
		s.obs.lowresRejects.Inc()
		s.env.Renderer.ReleaseGray(up)
		return nil
	}
	return up
}
