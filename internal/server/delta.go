package server

import (
	"errors"
	"math"
	"sync"

	"coterie/internal/codec"
	"coterie/internal/cutoff"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/ssim"
	"coterie/internal/transport"
)

// This file is the server side of the similarity-aware frame path: delta
// coding against frames the client provably holds (stop re-sending) and
// reprojection synthesis from frames the server recently rendered (stop
// re-rendering). Both exploit the paper's core observation that nearby
// frames are highly similar, and both are gated by the SSIM machinery
// already calibrated per leaf region: a reference qualifies for delta
// coding when it sits within the leaf's DistThresh (the distance below
// which SSIM ≥ ssim.GoodThreshold by construction, §4.4), and a
// reprojected frame is served only after an SSIM check against a
// ray-cast ground-truth band clears the same bar.
//
// Reference identity is (grid point, store sequence number), never grid
// point alone: reprojection makes a re-render of the same point
// non-byte-identical, so a delta must name the exact bytes the client
// decoded. Only intra-served frames become references (the client's
// reconstruction of a delta frame is one quantisation step removed from
// the server's, and chaining deltas would compound that drift).

// maxHeldRefs bounds the per-session holdings map. Forgetting a held
// reference is always safe — the server just loses a delta opportunity —
// so overflow drops the oldest.
const maxHeldRefs = 64

// sessionRefs tracks which (point, seq) frames one client provably holds.
// Single-goroutine use by the session loop; no locking.
type sessionRefs struct {
	held  map[geom.GridPoint]uint64
	order []geom.GridPoint // promotion order; may hold stale points

	// pending is the intra frame sent in the latest reply. It is promoted
	// to held when the next client message arrives: the protocol is
	// synchronous request/reply, so message N+1 proves reply N was read.
	pendingPt  geom.GridPoint
	pendingSeq uint64
	hasPending bool
}

func newSessionRefs() *sessionRefs {
	return &sessionRefs{held: make(map[geom.GridPoint]uint64)}
}

// setPending records the intra frame just served; it overwrites any
// unpromoted predecessor (one reply is outstanding at a time).
func (sr *sessionRefs) setPending(pt geom.GridPoint, seq uint64) {
	sr.pendingPt, sr.pendingSeq, sr.hasPending = pt, seq, true
}

// promote moves the pending frame into the holdings. Called on every
// message arrival, before the message is processed.
func (sr *sessionRefs) promote() {
	if !sr.hasPending {
		return
	}
	sr.hasPending = false
	if _, ok := sr.held[sr.pendingPt]; !ok {
		sr.order = append(sr.order, sr.pendingPt)
	}
	sr.held[sr.pendingPt] = sr.pendingSeq
	for len(sr.held) > maxHeldRefs && len(sr.order) > 0 {
		victim := sr.order[0]
		sr.order = sr.order[1:]
		delete(sr.held, victim)
	}
}

// drop removes client-evicted points from the holdings.
func (sr *sessionRefs) drop(pts []geom.GridPoint) {
	for _, pt := range pts {
		delete(sr.held, pt)
		if sr.hasPending && pt == sr.pendingPt {
			sr.hasPending = false
		}
	}
}

// frameForSession serves one frame request inside a session: the intra
// frame from the store, re-coded as a delta against the best reference
// the client holds whenever that wins bytes. Intra serves register the
// frame as the session's next pending reference; delta serves do not
// (delta frames never become references).
//
// deadlineMs (absolute server wall ms; <=0 none) arms the degrade
// ladder. Before committing to the render path, a deadline the
// scheduler projects as already at risk is served from the stale rung
// when a calibrated substitute is cached (a store hit needs no such
// rescue — it is the substitute); the same fallback rescues a request
// shed by admission control. Stale and low-res serves bypass the delta
// path and never become references: their bytes are not the render of
// pt a later delta would have to name.
func (s *Server) frameForSession(pt geom.GridPoint, deadlineMs float64, traceID uint64, sr *sessionRefs) (data []byte, kind transport.FrameEncoding, ref geom.GridPoint, rung transport.DegradeRung, origin transport.FrameOrigin, stg frameStages, err error) {
	if deadlineMs > 0 && !s.schedOff.Load() && !s.degradeOff.Load() &&
		s.sched.AtRisk(wallMs(), deadlineMs) {
		if stale, refPt, seq, ok := s.staleFor(pt); ok {
			if refPt == pt {
				// The exact frame is cached: serve it as the store hit it is
				// and let the delta path shrink it as usual.
				s.obs.frameStoreHits.Inc()
				return s.deltaOrIntra(pt, seq, stale, sr, transport.RungExact, transport.OriginLocal, stg)
			}
			s.obs.degradeStale.Inc()
			return stale, transport.FrameIntra, geom.GridPoint{}, transport.RungStale, transport.OriginLocal, stg, nil
		}
	}
	intra, _, seq, rung, origin, fstg, err := s.frameForStaged(pt, deadlineMs, traceID)
	stg = fstg
	if err != nil {
		if errors.Is(err, errOverloaded) && !s.degradeOff.Load() {
			if stale, refPt, _, ok := s.staleFor(pt); ok && refPt != pt {
				s.obs.degradeStale.Inc()
				return stale, transport.FrameIntra, geom.GridPoint{}, transport.RungStale, transport.OriginLocal, stg, nil
			}
		}
		return nil, transport.FrameIntra, geom.GridPoint{}, transport.RungExact, origin, stg, err
	}
	if rung == transport.RungLowRes {
		// Transient frame: seq is 0, it is not in the store, and it must not
		// become a delta reference — serve the bytes as-is.
		return intra, transport.FrameIntra, geom.GridPoint{}, rung, origin, stg, nil
	}
	return s.deltaOrIntra(pt, seq, intra, sr, rung, origin, stg)
}

// deltaOrIntra finishes a store-backed serve (rung 0 or 2): delta-code
// against the session's best held reference when that wins bytes, else
// serve intra and register the frame as the next pending reference.
func (s *Server) deltaOrIntra(pt geom.GridPoint, seq uint64, intra []byte, sr *sessionRefs, rung transport.DegradeRung, origin transport.FrameOrigin, stg frameStages) ([]byte, transport.FrameEncoding, geom.GridPoint, transport.DegradeRung, transport.FrameOrigin, frameStages, error) {
	if !s.deltaOff.Load() {
		if d, refPt, ok := s.deltaFor(pt, seq, intra, sr); ok {
			s.obs.deltaFrames.Inc()
			s.obs.deltaSaved.Add(int64(len(intra) - len(d)))
			return d, transport.FrameDelta, refPt, rung, origin, stg, nil
		}
	}
	sr.setPending(pt, seq)
	return intra, transport.FrameIntra, geom.GridPoint{}, rung, origin, stg, nil
}

// deltaFor tries to produce a delta encoding of frame (pt, seq) against
// the session's best held reference: the nearest held point in the same
// cutoff leaf within the leaf's SSIM-calibrated distance threshold. It
// reports ok=false when no reference qualifies, the reference bytes are
// no longer reconstructible, or the delta does not beat the intra size.
func (s *Server) deltaFor(pt geom.GridPoint, seq uint64, intra []byte, sr *sessionRefs) ([]byte, geom.GridPoint, bool) {
	if len(sr.held) == 0 {
		return nil, geom.GridPoint{}, false
	}
	grid := s.env.Game.Scene.Grid
	pos := grid.Pos(pt)
	leaf := s.env.Map.LeafAt(pos)
	if leaf == nil {
		return nil, geom.GridPoint{}, false
	}
	// Best reference: nearest held frame whose similarity the cutoff map
	// vouches for (same leaf, within DistThresh). Holding pt itself is the
	// ideal case — the re-request costs a skip map and nothing else.
	var refPt geom.GridPoint
	var refSeq uint64
	bestDist := leaf.DistThresh + 1
	for hp, hs := range sr.held {
		d := grid.Dist(pt, hp)
		if d > leaf.DistThresh || d >= bestDist {
			continue
		}
		if s.env.Map.LeafAt(grid.Pos(hp)) != leaf {
			continue
		}
		refPt, refSeq, bestDist = hp, hs, d
	}
	if bestDist > leaf.DistThresh {
		return nil, geom.GridPoint{}, false
	}
	if d, ok := s.store.delta(pt, seq, refPt, refSeq); ok {
		return d, refPt, true
	}
	cur := s.reconFor(pt, seq, intra)
	if cur == nil {
		return nil, geom.GridPoint{}, false
	}
	refRecon := s.reconFor(refPt, refSeq, nil)
	if refRecon == nil {
		return nil, geom.GridPoint{}, false
	}
	d := codec.DeltaEncode(cur, refRecon, s.env.CRF)
	if d == nil || len(d) >= len(intra) {
		return nil, geom.GridPoint{}, false
	}
	s.store.putDelta(pt, seq, refPt, refSeq, d)
	return d, refPt, true
}

// reconFor returns the decoded reconstruction of frame (pt, seq) — the
// raster a client that decoded those exact bytes holds. intra, when
// non-nil, is the frame's known encoded bytes; otherwise they are peeked
// from the store and must still carry the same sequence number (a
// re-rendered frame is different bytes, so a stale sequence returns nil
// and the caller falls back to intra coding). The raster is owned by the
// pano cache; callers must not mutate or release it.
func (s *Server) reconFor(pt geom.GridPoint, seq uint64, intra []byte) *img.Gray {
	if g, gotSeq, ok := s.panos.get(pt); ok && gotSeq == seq && g != nil {
		return g
	}
	if intra == nil {
		data, gotSeq, ok := s.store.peek(pt)
		if !ok || gotSeq != seq {
			return nil
		}
		intra = data
	}
	g, err := codec.Decode(intra)
	if err != nil {
		return nil
	}
	s.panos.put(pt, seq, g, nil)
	return g
}

// reprojDepth is the constant-depth shell the warp assumes, derived from
// the leaf's cutoff radius: far-BE content starts at the cutoff, so a
// small multiple of it is a serviceable depth proxy, bounded to keep the
// parallax model sane in tiny and huge leaves.
func reprojDepth(leaf *cutoff.Region) float64 {
	d := 8 * leaf.Radius
	if d < 20 {
		d = 20
	}
	if d > 200 {
		d = 200
	}
	return d
}

// tryReproject attempts to synthesize the panorama at pt by warping a
// nearby frame's cached clean raster (the pre-encode ray-cast pixels, not
// the codec reconstruction: the warped frame is encoded afresh, so
// sourcing it from a CRF-lossy decode would compound codec loss and the
// verification below would charge that loss against the warp). The result
// is verified against a ray-cast ground-truth band; nil means no source
// qualified or the check failed, and the caller falls back to a full
// render. The returned raster is renderer-owned, exactly like Panorama's.
func (s *Server) tryReproject(pt geom.GridPoint, pos geom.Vec2, leaf *cutoff.Region) *img.Gray {
	grid := s.env.Game.Scene.Grid
	srcPt, src, ok := s.panos.nearest(pt, grid, func(cand geom.GridPoint) bool {
		d := grid.Dist(pt, cand)
		return d > 0 && d <= leaf.DistThresh && s.env.Map.LeafAt(grid.Pos(cand)) == leaf
	})
	if !ok {
		return nil
	}
	scene := s.env.Game.Scene
	rp := s.env.Renderer.Reproject(src, scene.EyeAt(grid.Pos(srcPt)), scene.EyeAt(pos), reprojDepth(leaf))
	if rp == nil {
		return nil
	}
	if !s.verifyReproject(rp, pos, leaf) {
		s.obs.reprojRejects.Inc()
		s.env.Renderer.ReleaseGray(rp)
		return nil
	}
	s.obs.reprojHits.Inc()
	return rp
}

// verifyReproject ray-casts a horizontal sample band of the true frame
// and accepts the reprojection iff the band's SSIM clears the paper's
// "good" bar. The band is centred on the horizon, where parallax error
// concentrates (poles barely move under translation); its height trades
// verification cost against coverage.
func (s *Server) verifyReproject(rp *img.Gray, pos geom.Vec2, leaf *cutoff.Region) bool {
	w, h := rp.W, rp.H
	band := h / 8
	if band < 16 {
		band = 16
	}
	if band > h {
		band = h
	}
	y0 := (h - band) / 2
	gt := s.env.Renderer.PanoramaBand(s.env.Game.Scene.EyeAt(pos), leaf.Radius, math.Inf(1), nil, y0, y0+band)
	// Rows are contiguous, so the reprojected band is a sub-slice view.
	view := &img.Gray{W: w, H: band, Pix: rp.Pix[y0*w : (y0+band)*w]}
	score, err := ssim.Mean(gt, view)
	return err == nil && score >= ssim.GoodThreshold
}

// defaultPanoCacheCap bounds the decoded-frame cache. At the default
// 256x128 resolution this is 4 MB worst case (two rasters per entry);
// entries are dropped LRU.
const defaultPanoCacheCap = 64

// panoCache is a small LRU map of frame rasters keyed by grid point,
// shared by all sessions. Each entry carries up to two views of the same
// render: recon, the codec reconstruction (what a client that decoded the
// frame holds — the delta path's reference raster), and clean, the
// pre-encode ray-cast pixels (the reprojection path's warp source; nil
// for frames that were themselves reprojection-served, so warp error
// never chains through generations of synthesis). Entries are immutable
// once inserted and never returned to the raster pools — a session may
// still be reading an entry after its eviction, so evicted rasters are
// left to the garbage collector.
type panoCache struct {
	mu      sync.Mutex
	cap     int
	entries map[geom.GridPoint]*panoEntry
	head    *panoEntry
	tail    *panoEntry
}

type panoEntry struct {
	pt         geom.GridPoint
	seq        uint64
	recon      *img.Gray
	clean      *img.Gray
	prev, next *panoEntry
}

func newPanoCache(cap int) *panoCache {
	return &panoCache{cap: cap, entries: make(map[geom.GridPoint]*panoEntry)}
}

// get returns the cached reconstruction of pt and its sequence number.
// The raster is shared and must not be mutated or released; it may be nil
// when only the clean raster is cached for the point.
func (p *panoCache) get(pt geom.GridPoint) (*img.Gray, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[pt]
	if !ok {
		return nil, 0, false
	}
	p.touch(e)
	return e.recon, e.seq, true
}

// put inserts the rasters of render (pt, seq); either may be nil. The
// cache takes ownership; the caller must not release them afterwards. A
// same-sequence put merges with what is already cached (a later reconFor
// decode must not clobber the clean raster stored at render time); a new
// sequence replaces the entry outright.
func (p *panoCache) put(pt geom.GridPoint, seq uint64, recon, clean *img.Gray) {
	if recon == nil && clean == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[pt]; ok {
		if e.seq != seq {
			e.seq, e.recon, e.clean = seq, recon, clean
		} else {
			if recon != nil {
				e.recon = recon
			}
			if clean != nil {
				e.clean = clean
			}
		}
		p.touch(e)
		return
	}
	e := &panoEntry{pt: pt, seq: seq, recon: recon, clean: clean}
	p.entries[pt] = e
	p.pushFront(e)
	for len(p.entries) > p.cap && p.tail != nil {
		v := p.tail
		p.unlink(v)
		delete(p.entries, v.pt)
	}
}

// nearest returns the cached point closest to pt (by grid distance) that
// carries a clean raster and is accepted by keep, scanning the whole
// cache (it is small by construction). Equidistant candidates tie-break
// on (J, I) so the warp source — and therefore the served bytes — do not
// depend on map iteration order. The raster is shared; see get.
func (p *panoCache) nearest(pt geom.GridPoint, grid geom.Grid, keep func(geom.GridPoint) bool) (geom.GridPoint, *img.Gray, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var bestPt geom.GridPoint
	var bestG *img.Gray
	bestDist := 0.0
	for cand, e := range p.entries {
		if e.clean == nil || !keep(cand) {
			continue
		}
		d := grid.Dist(pt, cand)
		better := bestG == nil || d < bestDist ||
			(d == bestDist && (cand.J < bestPt.J || (cand.J == bestPt.J && cand.I < bestPt.I)))
		if better {
			bestPt, bestG, bestDist = cand, e.clean, d
		}
	}
	return bestPt, bestG, bestG != nil
}

func (p *panoCache) touch(e *panoEntry) {
	if p.head == e {
		return
	}
	p.unlink(e)
	p.pushFront(e)
}

func (p *panoCache) pushFront(e *panoEntry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *panoCache) unlink(e *panoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
