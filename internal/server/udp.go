package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/transport"
)

// The paper synchronises FI over UDP (PUN, §5.1 task 4) while frames go
// over TCP. This file is the UDP datagram path: a client sends its State
// each frame and the server answers with the other players' latest states
// in a single datagram. Loss is tolerable — the next frame resends, and
// the hub's sequence numbers drop reordered updates.
//
// The same socket also carries the datagram frame path (push.go). Demux
// is by a wire invariant: a bare FI state upload is exactly
// fisync.WireSize bytes and carries no magic, while every frame-path
// datagram starts with transport.DgramMagic and is never exactly that
// long (transport pads the one colliding length). Legacy FI-only clients
// are therefore byte-compatible: they never send a subscription, so they
// keep getting the raw concatenated-state reply.

// ServeFIUDP answers FI sync and datagram frame-path traffic on the
// connection until it closes.
func (s *Server) ServeFIUDP(pc net.PacketConn) error {
	buf := make([]byte, 64*1024)
	var out []byte
	u := newUDPServe(pc)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.obs.udpDatagrams.Inc()
		s.obs.udpBytesIn.Add(int64(n))
		if n != fisync.WireSize {
			if transport.DgramType(buf[:n]) != 0 {
				s.handleDgram(u, addr, buf[:n], nowMs())
			} else {
				s.obs.udpDroppedMalformed.Inc()
			}
			continue
		}
		st, _, err := fisync.DecodeState(buf[:n])
		if err != nil {
			s.obs.udpDroppedMalformed.Inc()
			continue // malformed datagram: drop, like any UDP service
		}
		s.mu.Lock()
		s.hub.Update(st)
		others := s.hub.Snapshot(st.Player)
		s.mu.Unlock()
		out = out[:0]
		sess := u.session(addr)
		if sess != nil {
			// Subscribed client: typed reply, so its receive loop can
			// demux FI replies from frame chunks.
			states := make([]byte, 0, len(others)*fisync.WireSize)
			for _, o := range others {
				states = o.Encode(states)
			}
			out = transport.EncodeFIReply(out, states)
		} else {
			for _, o := range others {
				out = o.Encode(out)
			}
		}
		s.obs.udpBytesOut.Add(int64(len(out)))
		if _, err := pc.WriteTo(out, addr); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Counted before propagating: the caller typically tears the
			// whole UDP path down on a send failure, and the counter is how
			// an operator distinguishes "socket died" from "client left".
			s.obs.udpSendErrors.Inc()
			return err
		}
		if sess != nil {
			s.notePush(u, sess, st, nowMs())
		}
	}
}

// FIClient is the client side of the UDP FI sync.
type FIClient struct {
	conn net.Conn
	buf  []byte
}

// DialFI connects the UDP FI sync endpoint.
func DialFI(addr string) (*FIClient, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &FIClient{conn: conn, buf: make([]byte, 64*1024)}, nil
}

// Sync uploads the player's state and returns the other players' states.
// A lost or late reply returns an error after the timeout; callers simply
// sync again next frame.
func (c *FIClient) Sync(st fisync.State, timeout time.Duration) ([]fisync.State, error) {
	if _, err := c.conn.Write(st.Encode(nil)); err != nil {
		return nil, err
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	n, err := c.conn.Read(c.buf)
	if err != nil {
		return nil, fmt.Errorf("fisync over UDP: %w", err)
	}
	var out []fisync.State
	rest := c.buf[:n]
	for len(rest) > 0 {
		var s fisync.State
		s, rest, err = fisync.DecodeState(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Close releases the socket.
func (c *FIClient) Close() error { return c.conn.Close() }
