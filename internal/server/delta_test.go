package server

import (
	"bytes"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"coterie/internal/codec"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/obs"
	"coterie/internal/ssim"
	"coterie/internal/trace"
	"coterie/internal/transport"
)

// startInstrumentedServer is startServer plus a registry, for tests that
// assert on the delta/reprojection instruments.
func startInstrumentedServer(t *testing.T) (*Server, *obs.Registry, string) {
	t.Helper()
	srv := New(poolEnv(t))
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return srv, reg, ln.Addr().String()
}

// TestSessionDeltaFlowAndEvictFallback walks the whole delta protocol over
// a real TCP session, playing the client side by hand:
//
//  1. first fetch of a point is intra-coded (no holdings yet);
//  2. re-fetching it is served as a delta against itself — the reference
//     was promoted by the second request's arrival — and the client's
//     DeltaDecode against its retained reference reproduces the frame
//     exactly (identical reconstructions: every block skips);
//  3. a nearby point may be served as a delta against the held reference,
//     and decoding it tracks the point's own intra reconstruction;
//  4. after the client reports its references evicted, the same point
//     falls back to intra coding — the server never deltas against a
//     frame the client says it no longer holds.
func TestSessionDeltaFlowAndEvictFallback(t *testing.T) {
	srv, reg, addr := startInstrumentedServer(t)
	cl, err := Dial(addr, "pool", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	grid := srv.env.Game.Scene.Grid
	ptA := grid.Snap(srv.env.Game.Spawn)

	r1, _, _, err := cl.FetchTraced(ptA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kind != transport.FrameIntra {
		t.Fatalf("first fetch kind = %d, want intra", r1.Kind)
	}
	ref, err := codec.Decode(r1.Data)
	if err != nil {
		t.Fatal(err)
	}

	r2, _, _, err := cl.FetchTraced(ptA)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Kind != transport.FrameDelta {
		t.Fatalf("re-fetch kind = %d, want delta", r2.Kind)
	}
	if r2.Ref != ptA {
		t.Fatalf("delta reference = %v, want %v", r2.Ref, ptA)
	}
	if len(r2.Data) >= len(r1.Data) {
		t.Fatalf("delta %d bytes did not beat intra %d bytes", len(r2.Data), len(r1.Data))
	}
	dec, err := codec.DeltaDecode(r2.Data, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Pix, ref.Pix) {
		t.Fatal("same-point delta did not reconstruct the reference exactly")
	}
	codec.ReleaseGray(dec)

	// A nearby point: within the leaf's DistThresh it is eligible for delta
	// coding against the held reference. Whichever way the size race goes,
	// the reply must be decodable and match the point's intra reconstruction.
	ptB := geom.GridPoint{I: ptA.I + 1, J: ptA.J}
	r3, _, _, err := cl.FetchTraced(ptB)
	if err != nil {
		t.Fatal(err)
	}
	intraB, err := srv.FrameFor(ptB)
	if err != nil {
		t.Fatal(err)
	}
	reconB, err := codec.Decode(intraB)
	if err != nil {
		t.Fatal(err)
	}
	var decB *img.Gray
	switch r3.Kind {
	case transport.FrameDelta:
		if r3.Ref != ptA {
			t.Fatalf("nearby delta reference = %v, want %v", r3.Ref, ptA)
		}
		decB, err = codec.DeltaDecode(r3.Data, ref)
	case transport.FrameIntra:
		decB, err = codec.Decode(r3.Data)
	default:
		t.Fatalf("unexpected frame kind %d", r3.Kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	mad, _ := img.MeanAbsDiff(decB, reconB)
	if mad > 3 {
		t.Fatalf("decoded nearby frame diverged from its intra reconstruction: MAD %v (kind %d)", mad, r3.Kind)
	}
	codec.ReleaseGray(decB)
	codec.ReleaseGray(reconB)

	// Client drops everything it holds: the server must fall back to intra.
	if err := cl.EvictNotice([]geom.GridPoint{ptA, ptB}); err != nil {
		t.Fatal(err)
	}
	r4, _, _, err := cl.FetchTraced(ptA)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Kind != transport.FrameIntra {
		t.Fatalf("fetch after evict notice kind = %d, want intra", r4.Kind)
	}
	if !bytes.Equal(r4.Data, r1.Data) {
		t.Fatal("intra bytes changed across the session for an unevicted store entry")
	}

	snap := reg.Snapshot()
	if c := snap.Counters["server.delta_frames"]; c < 1 {
		t.Errorf("server.delta_frames = %d, want >= 1", c)
	}
	if c := snap.Counters["server.delta_bytes_saved"]; c < 1 {
		t.Errorf("server.delta_bytes_saved = %d, want > 0", c)
	}
	codec.ReleaseGray(ref)
}

// TestSessionDeltaToggle pins the A/B switch the byte benchmarks rely on:
// with delta coding disabled every reply is intra even when a perfect
// reference is held, and re-enabling it restores delta serving within the
// same session.
func TestSessionDeltaToggle(t *testing.T) {
	srv, _, addr := startInstrumentedServer(t)
	srv.SetDeltaEnabled(false)
	cl, err := Dial(addr, "pool", 6)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pt := srv.env.Game.Scene.Grid.Snap(srv.env.Game.Spawn)
	for i := 0; i < 2; i++ {
		r, _, _, err := cl.FetchTraced(pt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != transport.FrameIntra {
			t.Fatalf("fetch %d with delta disabled: kind %d", i, r.Kind)
		}
	}
	srv.SetDeltaEnabled(true)
	r, _, _, err := cl.FetchTraced(pt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != transport.FrameDelta {
		t.Fatalf("fetch after re-enable: kind %d, want delta", r.Kind)
	}
}

// TestStoreDeltaCache covers the encoded-delta cache riding on store
// entries: lookups are keyed by the full (point, seq, refPoint, refSeq)
// identity, stale sequences are dropped, the per-entry FIFO stays bounded,
// and delta bytes are charged to (and reclaimed from) the byte budget.
func TestStoreDeltaCache(t *testing.T) {
	st := newFrameStore(1)
	pt := geom.GridPoint{I: 1, J: 2}
	_, _, ok, c, leader := st.lookup(pt)
	if ok || !leader {
		t.Fatal("expected to lead the first render")
	}
	frame := make([]byte, 100)
	seq := st.complete(pt, c, frame, nil, true)
	if seq == 0 {
		t.Fatal("completed render got no sequence number")
	}

	ref := geom.GridPoint{I: 1, J: 3}
	d1 := make([]byte, 10)
	st.putDelta(pt, seq, ref, 7, d1)
	if got, ok := st.delta(pt, seq, ref, 7); !ok || len(got) != 10 {
		t.Fatalf("cached delta lookup = %v,%v", got, ok)
	}
	if _, ok := st.delta(pt, seq, ref, 8); ok {
		t.Fatal("delta matched a different reference sequence")
	}
	if _, ok := st.delta(pt, seq+1, ref, 7); ok {
		t.Fatal("delta matched a stale frame sequence")
	}
	if st.Bytes() != 110 {
		t.Fatalf("store bytes %d, want frame 100 + delta 10", st.Bytes())
	}

	// A stale put (the entry re-rendered since the caller read it) must be
	// dropped without touching accounting.
	st.putDelta(pt, seq+1, ref, 9, make([]byte, 50))
	if st.Bytes() != 110 {
		t.Fatalf("stale putDelta changed accounting: %d bytes", st.Bytes())
	}

	// Fill past the FIFO bound: the oldest delta is replaced.
	for i := 0; i < maxDeltasPerEntry; i++ {
		st.putDelta(pt, seq, geom.GridPoint{I: 10 + i}, 1, make([]byte, 10))
	}
	if _, ok := st.delta(pt, seq, ref, 7); ok {
		t.Fatal("oldest delta survived FIFO replacement")
	}
	if _, ok := st.delta(pt, seq, geom.GridPoint{I: 10 + maxDeltasPerEntry - 1}, 1); !ok {
		t.Fatal("newest delta missing after FIFO replacement")
	}
	if want := int64(100 + 10*maxDeltasPerEntry); st.Bytes() != want {
		t.Fatalf("store bytes %d, want %d", st.Bytes(), want)
	}

	// Budget pressure evicts the entry with its deltas, reclaiming the full
	// size() charge.
	st.SetBudget(50)
	if st.Bytes() != 0 || st.Len() != 0 {
		t.Fatalf("after eviction: %d bytes / %d entries", st.Bytes(), st.Len())
	}
	if _, ok := st.delta(pt, seq, geom.GridPoint{I: 10}, 1); ok {
		t.Fatal("delta survived its entry's eviction")
	}
}

// TestReprojectServeVerifiedOrFallback is the property test of the
// reprojection fallback rule: walking away from a cached frame, every
// request is either served a reprojection that passes the horizon-band
// SSIM check against ray-cast ground truth, or falls back (returns nil)
// with the reject counter accounting for every verification failure.
// Close to the source the warp must actually succeed — the path cannot be
// vacuously "all fallback".
func TestReprojectServeVerifiedOrFallback(t *testing.T) {
	srv, reg, _ := startInstrumentedServer(t)
	scene := srv.env.Game.Scene
	grid := scene.Grid
	spawn := grid.Snap(srv.env.Game.Spawn)
	if _, err := srv.FrameFor(spawn); err != nil {
		t.Fatal(err)
	}

	served, fell := 0, 0
	for di := 1; di <= 20; di += 2 {
		pt := geom.GridPoint{I: spawn.I + di, J: spawn.J}
		if !grid.In(pt) {
			continue
		}
		pos := grid.Pos(pt)
		leaf := srv.env.Map.LeafAt(pos)
		if leaf == nil {
			continue
		}
		rp := srv.tryReproject(pt, pos, leaf)
		if rp == nil {
			fell++
			continue
		}
		served++
		// Re-verify independently against a full ray-cast render: the band
		// the server checked must hold on re-computation, and the whole
		// frame must stay close to the good bar (the band is chosen where
		// parallax error concentrates, so it bounds the rest).
		gt := srv.env.Renderer.Panorama(scene.EyeAt(pos), leaf.Radius, math.Inf(1), nil)
		full, err := ssim.Mean(rp, gt)
		if err != nil {
			t.Fatal(err)
		}
		if full < ssim.GoodThreshold-0.05 {
			t.Errorf("served reprojection at d=%d has full-frame SSIM %.4f", di, full)
		}
		if !srv.verifyReproject(rp, pos, leaf) {
			t.Errorf("served reprojection at d=%d fails re-verification", di)
		}
		srv.env.Renderer.ReleaseGray(rp)
	}
	if served == 0 {
		t.Fatal("no reprojection was ever served — the path is vacuous")
	}
	snap := reg.Snapshot()
	if hits := snap.Counters["server.reproject_hits"]; hits != int64(served) {
		t.Errorf("server.reproject_hits = %d, served %d", hits, served)
	}
	if rejects := snap.Counters["server.reproject_rejects"]; rejects > int64(fell) {
		t.Errorf("server.reproject_rejects = %d exceeds fallbacks %d", rejects, fell)
	}
	t.Logf("reprojection: %d served, %d fell back (rejects %d)",
		served, fell, reg.Snapshot().Counters["server.reproject_rejects"])
}

// TestReprojectToggle pins SetReprojectEnabled: disabled, every miss
// ray-casts in full and the reprojection counters stay at zero even with
// a perfect source cached; enabled, the next adjacent miss consults the
// reprojector exactly once.
func TestReprojectToggle(t *testing.T) {
	srv, reg, _ := startInstrumentedServer(t)
	srv.SetReprojectEnabled(false)
	grid := srv.env.Game.Scene.Grid
	spawn := grid.Snap(srv.env.Game.Spawn)
	if _, err := srv.FrameFor(spawn); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FrameFor(geom.GridPoint{I: spawn.I + 1, J: spawn.J}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["server.reproject_hits"] + snap.Counters["server.reproject_rejects"]; n != 0 {
		t.Fatalf("reprojection consulted %d times while disabled", n)
	}
	if _, rendered := srv.Stats(); rendered != 2 {
		t.Fatalf("rendered %d frames, want 2 full renders", rendered)
	}

	srv.SetReprojectEnabled(true)
	if _, err := srv.FrameFor(geom.GridPoint{I: spawn.I, J: spawn.J + 1}); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if n := snap.Counters["server.reproject_hits"] + snap.Counters["server.reproject_rejects"]; n != 1 {
		t.Fatalf("reprojection consulted %d times after re-enable, want 1", n)
	}
}

// TestRunLiveTinyRefBudget runs a live session whose reference store holds
// barely two frames, forcing continuous evictions and MsgEvictNotice
// traffic interleaved with frame requests. The session must stay clean:
// every delta the server sends must decode against a reference the client
// still holds (a single failed DeltaDecode aborts the run).
func TestRunLiveTinyRefBudget(t *testing.T) {
	env := poolEnv(t)
	srv, addr := startLiveServer(t)
	tr := trace.Generate(env.Game, 2, 7)
	warmServer(t, srv, tr)

	live, err := RunLive(env, addr, tr, 0, LiveConfig{
		Speed:        4,
		DecodeFrames: true,
		RefBytes:     int64(2*env.Renderer.Cfg.W*env.Renderer.Cfg.H + 1),
		IdleTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Metrics.Frames == 0 || live.Fetches == 0 {
		t.Fatalf("live session did nothing: %+v", live)
	}
	waitFor(t, 2*time.Second, func() bool {
		_, completed := srv.Sessions()
		return len(completed) == 1
	})
	_, completed := srv.Sessions()
	if st := completed[0]; st.Err != "" {
		t.Errorf("session under ref-budget pressure ended with error: %s", st.Err)
	}
}

// TestFrameForSessionRacesEviction hammers the staged serve path from two
// concurrent sessions over neighbouring points while a third goroutine
// churns the store budget, so LRU eviction races the in-flight delta
// encodings and reference reads the sessions perform. Run under -race this
// pins the store's slice-ownership contract end to end: every serve must
// either return intact frame bytes or the overload error — never bytes an
// evictor mutated.
func TestFrameForSessionRacesEviction(t *testing.T) {
	srv := New(poolEnv(t))
	grid := srv.env.Game.Scene.Grid
	spawn := grid.Snap(srv.env.Game.Spawn)

	const iters = 60
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				srv.SetStoreBudget(2 << 10)
			} else {
				srv.SetStoreBudget(0)
			}
		}
	}()

	var sessions sync.WaitGroup
	for p := 0; p < 2; p++ {
		sessions.Add(1)
		go func(p int) {
			defer sessions.Done()
			sr := newSessionRefs()
			for i := 0; i < iters; i++ {
				pt := geom.GridPoint{I: spawn.I + (i+p)%3, J: spawn.J + i%2}
				var dl float64
				if i%3 == 0 {
					dl = wallMs() + 16.7
				}
				sr.promote()
				data, _, _, _, _, _, err := srv.frameForSession(pt, dl, 0, sr)
				if err != nil {
					if errors.Is(err, errOverloaded) {
						continue
					}
					t.Errorf("session %d iter %d: %v", p, i, err)
					return
				}
				if len(data) == 0 {
					t.Errorf("session %d iter %d: empty frame", p, i)
					return
				}
			}
		}(p)
	}
	sessions.Wait()
	close(stop)
	churn.Wait()
}
