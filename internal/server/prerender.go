package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"coterie/internal/geom"
)

// The paper's server pre-renders and pre-encodes panoramic far-BE frames
// for all reachable grid points offline (§5.1). Rendering every point of a
// 24M-point world is unnecessary here (frames are memoised on demand), but
// warming a region ahead of a session removes first-request latency; this
// file provides that warm-up with a bounded worker pool.

// PrerenderStats summarises a warm-up pass.
type PrerenderStats struct {
	Points   int   // grid points covered
	Rendered int   // newly rendered (others were already cached)
	Bytes    int64 // total encoded size of newly rendered frames
}

// PrerenderRegion renders and encodes the far-BE frames for the grid
// points inside the rectangle, sampling every strideSteps-th grid index in
// each axis (stride 1 = every point). workers <= 0 selects GOMAXPROCS.
func (s *Server) PrerenderRegion(region geom.Rect, strideSteps, workers int) (PrerenderStats, error) {
	if strideSteps < 1 {
		strideSteps = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grid := s.env.Game.Scene.Grid
	lo := grid.Snap(geom.V2(region.MinX, region.MinZ))
	hi := grid.Snap(geom.V2(region.MaxX, region.MaxZ))
	if hi.I < lo.I || hi.J < lo.J {
		return PrerenderStats{}, fmt.Errorf("server: empty prerender region %+v", region)
	}

	pts := make(chan geom.GridPoint, workers*2)
	var rendered, points int64
	var bytes int64
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pt := range pts {
				data, fresh, err := s.frameFor(pt)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				atomic.AddInt64(&points, 1)
				if fresh {
					atomic.AddInt64(&rendered, 1)
					atomic.AddInt64(&bytes, int64(len(data)))
				}
			}
		}()
	}
	for j := lo.J; j <= hi.J; j += strideSteps {
		for i := lo.I; i <= hi.I; i += strideSteps {
			pts <- geom.GridPoint{I: i, J: j}
		}
	}
	close(pts)
	wg.Wait()
	return PrerenderStats{
		Points:   int(points),
		Rendered: int(rendered),
		Bytes:    bytes,
	}, firstErr
}
