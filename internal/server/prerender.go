package server

import (
	"fmt"
	"sync/atomic"

	"coterie/internal/geom"
	"coterie/internal/par"
)

// The paper's server pre-renders and pre-encodes panoramic far-BE frames
// for all reachable grid points offline (§5.1). Rendering every point of a
// 24M-point world is unnecessary here (frames are memoised on demand), but
// warming a region ahead of a session removes first-request latency; this
// file provides that warm-up. Warmed frames land in the shared sharded
// store, so they obey its byte budget: warming more than the budget holds
// simply cycles the LRU, and store_bytes never exceeds the budget.

// PrerenderStats summarises a warm-up pass.
type PrerenderStats struct {
	Points   int   // grid points covered
	Rendered int   // newly rendered (others were already cached)
	Bytes    int64 // total encoded size of newly rendered frames
}

// PrerenderRegion renders and encodes the far-BE frames for the grid
// points inside the rectangle, sampling every strideSteps-th grid index in
// each axis (stride 1 = every point). workers <= 0 selects GOMAXPROCS.
func (s *Server) PrerenderRegion(region geom.Rect, strideSteps, workers int) (PrerenderStats, error) {
	if strideSteps < 1 {
		strideSteps = 1
	}
	grid := s.env.Game.Scene.Grid
	lo := grid.Snap(geom.V2(region.MinX, region.MinZ))
	hi := grid.Snap(geom.V2(region.MaxX, region.MaxZ))
	if hi.I < lo.I || hi.J < lo.J {
		return PrerenderStats{}, fmt.Errorf("server: empty prerender region %+v", region)
	}
	cols := (hi.I-lo.I)/strideSteps + 1
	rows := (hi.J-lo.J)/strideSteps + 1

	var rendered, points, bytes atomic.Int64
	err := par.ForErr(workers, cols*rows, func(k int) error {
		pt := geom.GridPoint{
			I: lo.I + (k%cols)*strideSteps,
			J: lo.J + (k/cols)*strideSteps,
		}
		data, fresh, err := s.frameFor(pt)
		if err != nil {
			return err
		}
		points.Add(1)
		if fresh {
			rendered.Add(1)
			bytes.Add(int64(len(data)))
		}
		return nil
	})
	return PrerenderStats{
		Points:   int(points.Load()),
		Rendered: int(rendered.Load()),
		Bytes:    bytes.Load(),
	}, err
}
