package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/netsim"
	"coterie/internal/obs"
	"coterie/internal/transport"
)

// UDPChannel is the client side of the datagram frame path: one dialed
// UDP socket carrying FI sync, unsolicited server pushes, and short
// request/reply frame fetches, multiplexed by the transport's magic+type
// prefix. A single receive goroutine owns the socket's read side — it
// reassembles chunked frames, answers loss with NACKs, and hands
// completed frames to waiters (fetches in flight) or the pushed-frame
// store (for the cache to absorb). Reads are deadline-bounded per
// iteration, so Close always joins the goroutine promptly even when the
// server has gone silent mid-round.
type UDPChannel struct {
	conn     net.Conn
	player   uint8
	wantPush bool

	// OnFrame, when set before the first Sync/Fetch, receives every
	// reassembled frame that no fetch was waiting for (pushed frames and
	// replies that outlived their budget). Called from the receive
	// goroutine; implementations must not block.
	OnFrame func(pt geom.GridPoint, data []byte, pushed bool)

	// impair, when set, drops received datagrams (loss injection for
	// tests and the loadgen A/B; loopback sockets do not lose packets on
	// their own).
	impair *netsim.Impairer

	mu      sync.Mutex
	reasm   *transport.Reassembler
	waiters map[geom.GridPoint]chan []byte
	fiCh    chan []byte
	// store holds every reassembled frame — pushes, replies nobody was
	// waiting for, and replies a fetch consumed. It is a small bounded
	// FIFO cache, not a one-shot queue: frames stay resident after a
	// hit, so one push (or one request round trip) keeps serving a
	// player who circles the same few grid cells — the walk regime the
	// whole frame-similarity design targets. Grid-point frames are
	// immutable, so retention never serves stale bytes.
	store    map[geom.GridPoint]*storedFrame
	storeLog []geom.GridPoint

	closed   chan struct{}
	recvDone chan struct{}
	closing  sync.Once

	reqID atomic.Uint32

	// Stats (atomics: read by reporters while the loop runs).
	pushedRecv      atomic.Int64
	pushedBytes     atomic.Int64
	pushedUsed      atomic.Int64
	pushedUsedBytes atomic.Int64
	nacksSent       atomic.Int64
	fetchHits       atomic.Int64
	fetchMisses     atomic.Int64
	pushServes      atomic.Int64

	// Registry instruments (nil without a registry; Counter.Add is
	// nil-safe), so the push economy is scrapable from /metrics.
	pushedRecvC *obs.Counter
	pushServesC *obs.Counter
}

type storedFrame struct {
	data   []byte
	pushed bool
	// credited marks a pushed frame already counted once in PushedUsed,
	// so repeat hits tally serves without inflating the distinct-use
	// (waste) accounting.
	credited bool
}

// udpStoreCap bounds the pushed/late-frame store; beyond it the oldest
// frame is discarded (a wasted push).
const udpStoreCap = 32

// udpNackRetries is how many NACK rounds a partial frame gets before the
// reassembler abandons it and the fetch falls back to TCP.
const udpNackRetries = 3

// udpNackAgeSec is how long a partial may sit without progress before the
// stale sweep NACKs it (tail-triggered NACKs fire immediately, so this
// only covers tail loss).
const udpNackAgeSec = 0.02

// UDPStats is a snapshot of the channel's frame-path accounting.
type UDPStats struct {
	PushedRecv      int64 // pushed frames reassembled
	PushedBytes     int64
	PushedUsed      int64 // distinct pushed frames a fetch consumed (waste accounting)
	PushedUsedBytes int64
	PushServes      int64 // fetches served by a pushed frame (one push can serve many)
	NacksSent       int64
	FetchHits       int64 // Fetch calls satisfied over UDP
	FetchMisses     int64 // Fetch calls that timed out (TCP fallback)
	Reassembly      transport.ReassemblerStats
}

// DialUDP connects the datagram frame path: it dials the server's UDP
// socket, subscribes (with a push opt-in when wantPush), and starts the
// receive loop. The registry, when non-nil, instruments the reassembler
// under "client.udp.".
func DialUDP(addr string, player uint8, wantPush bool, reg *obs.Registry) (*UDPChannel, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	c := &UDPChannel{
		conn:     conn,
		player:   player,
		reasm:    transport.NewReassembler(transport.ReassemblerConfig{}),
		waiters:  make(map[geom.GridPoint]chan []byte),
		store:    make(map[geom.GridPoint]*storedFrame),
		closed:   make(chan struct{}),
		recvDone: make(chan struct{}),
	}
	if reg != nil {
		c.reasm.Instrument(reg, "client.udp")
		c.pushedRecvC = reg.Counter("client.udp.pushed_frames")
		c.pushServesC = reg.Counter("client.udp.push_serves")
	}
	if err := c.subscribe(wantPush); err != nil {
		conn.Close()
		return nil, err
	}
	c.wantPush = wantPush
	go c.recvLoop()
	return c, nil
}

func (c *UDPChannel) subscribe(wantPush bool) error {
	_, err := c.conn.Write(transport.EncodeSub(nil, transport.Sub{Player: c.player, WantPush: wantPush}))
	return err
}

// SetImpairer installs a receive-side loss injector. Call before the
// first traffic.
func (c *UDPChannel) SetImpairer(im *netsim.Impairer) { c.impair = im }

// Sync uploads the player's FI state and waits for the server's typed
// reply, like FIClient.Sync but multiplexed with frame traffic. A timeout
// resubscribes (the Sub datagram may have been lost) and reports an
// error; the caller syncs again next frame.
func (c *UDPChannel) Sync(st fisync.State, timeout time.Duration) ([]fisync.State, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	c.fiCh = ch
	c.mu.Unlock()
	if _, err := c.conn.Write(st.Encode(nil)); err != nil {
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case payload := <-ch:
		var out []fisync.State
		rest := payload
		for len(rest) > 0 {
			var s fisync.State
			var err error
			s, rest, err = fisync.DecodeState(rest)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	case <-t.C:
		c.mu.Lock()
		c.fiCh = nil
		c.mu.Unlock()
		c.subscribe(c.wantPush)
		return nil, fmt.Errorf("fisync over UDP: reply timeout after %v", timeout)
	case <-c.closed:
		return nil, net.ErrClosed
	}
}

// Fetch asks for one grid point's frame over UDP and waits up to budget
// for it; ok=false means the caller should fall back to TCP. A frame the
// server already pushed is returned immediately without a request.
func (c *UDPChannel) Fetch(pt geom.GridPoint, budget time.Duration) ([]byte, bool) {
	c.mu.Lock()
	if sf, ok := c.store[pt]; ok {
		c.noteStoredHitLocked(sf)
		c.mu.Unlock()
		c.fetchHits.Add(1)
		return sf.data, true
	}
	ch := make(chan []byte, 1)
	c.waiters[pt] = ch
	c.mu.Unlock()

	req := transport.Req{Player: c.player, Point: pt, ReqID: c.reqID.Add(1)}
	if _, err := c.conn.Write(transport.EncodeReq(nil, req)); err != nil {
		c.dropWaiter(pt)
		c.fetchMisses.Add(1)
		return nil, false
	}
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case data := <-ch:
		c.fetchHits.Add(1)
		return data, true
	case <-t.C:
	case <-c.closed:
	}
	c.dropWaiter(pt)
	// The frame may have been delivered between the timeout firing and
	// the waiter coming down; the buffered channel holds it.
	select {
	case data := <-ch:
		c.fetchHits.Add(1)
		return data, true
	default:
	}
	c.fetchMisses.Add(1)
	return nil, false
}

func (c *UDPChannel) dropWaiter(pt geom.GridPoint) {
	c.mu.Lock()
	delete(c.waiters, pt)
	c.mu.Unlock()
}

// storeLocked inserts a frame into the bounded retained store (caller
// holds mu); the oldest entry is evicted FIFO past the cap. A duplicate
// point keeps the first copy (the bytes are identical by construction).
func (c *UDPChannel) storeLocked(pt geom.GridPoint, data []byte, pushed, credited bool) {
	if _, dup := c.store[pt]; dup {
		return
	}
	c.store[pt] = &storedFrame{data: data, pushed: pushed, credited: credited}
	c.storeLog = append(c.storeLog, pt)
	if len(c.storeLog) > udpStoreCap {
		delete(c.store, c.storeLog[0])
		c.storeLog = c.storeLog[1:]
	}
}

// noteStoredHitLocked tallies a store hit (caller holds mu). The frame
// stays resident — see the store field's comment — so one push serves
// every later fetch of its grid point until FIFO eviction.
func (c *UDPChannel) noteStoredHitLocked(sf *storedFrame) {
	if !sf.pushed {
		return
	}
	c.pushServes.Add(1)
	c.pushServesC.Add(1)
	if !sf.credited {
		sf.credited = true
		c.pushedUsed.Add(1)
		c.pushedUsedBytes.Add(int64(len(sf.data)))
	}
}

// Stats snapshots the channel's accounting.
func (c *UDPChannel) Stats() UDPStats {
	c.mu.Lock()
	rs := c.reasm.Stats()
	c.mu.Unlock()
	return UDPStats{
		PushedRecv:      c.pushedRecv.Load(),
		PushedBytes:     c.pushedBytes.Load(),
		PushedUsed:      c.pushedUsed.Load(),
		PushedUsedBytes: c.pushedUsedBytes.Load(),
		PushServes:      c.pushServes.Load(),
		NacksSent:       c.nacksSent.Load(),
		FetchHits:       c.fetchHits.Load(),
		FetchMisses:     c.fetchMisses.Load(),
		Reassembly:      rs,
	}
}

// Close tears the channel down and joins the receive goroutine.
func (c *UDPChannel) Close() error {
	var err error
	c.closing.Do(func() {
		close(c.closed)
		err = c.conn.Close()
		<-c.recvDone
	})
	return err
}

// recvLoop owns the socket's read side. Each iteration arms a fresh read
// deadline, so a silent server never wedges the goroutine: deadline
// expiries double as the stale-partial sweep tick, and Close's socket
// close aborts a blocked read immediately.
func (c *UDPChannel) recvLoop() {
	defer close(c.recvDone)
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.sweep()
				continue
			}
			select {
			case <-c.closed:
				return
			default:
			}
			// Transient socket error (e.g. ICMP port unreachable surfacing
			// as ECONNREFUSED on a connected UDP socket): keep reading.
			c.sweep()
			continue
		}
		b := buf[:n]
		if c.impair.Drop() {
			continue
		}
		switch transport.DgramType(b) {
		case transport.DgramFIReply:
			payload, err := transport.DecodeFIReply(b)
			if err != nil {
				continue
			}
			cp := append([]byte(nil), payload...)
			c.mu.Lock()
			ch := c.fiCh
			c.fiCh = nil
			c.mu.Unlock()
			if ch != nil {
				ch <- cp // buffered; never blocks
			}
		case transport.DgramChunk, transport.DgramParity:
			c.offer(b)
		default:
			// Legacy raw FI replies (no magic) land here before the
			// server processes the subscription; the next Sync timeout
			// resubscribes.
		}
	}
}

// offer feeds one chunk to the reassembler and runs the tail-triggered
// NACK check: when the frame's final chunk has arrived but gaps remain
// beyond FEC repair, the retransmit request goes out immediately instead
// of waiting for the stale sweep.
func (c *UDPChannel) offer(b []byte) {
	now := float64(time.Now().UnixNano()) / 1e9
	c.mu.Lock()
	f := c.reasm.Offer(b, now)
	var nack []byte
	if f == nil {
		if h, err := transport.PeekChunk(b); err == nil && c.reasm.HasTail(h.StreamID, h.FrameSeq) {
			if missing := c.reasm.Missing(h.StreamID, h.FrameSeq); len(missing) > 0 {
				nack = transport.EncodeNack(nil, transport.Nack{StreamID: h.StreamID, FrameSeq: h.FrameSeq, Missing: missing})
				c.reasm.NoteNack(h.StreamID, h.FrameSeq, now)
			}
		}
	}
	c.mu.Unlock()
	if nack != nil {
		c.nacksSent.Add(1)
		c.conn.Write(nack)
	}
	if f != nil {
		c.deliver(f)
	}
}

// sweep NACKs stalled partials and abandons the hopeless ones.
func (c *UDPChannel) sweep() {
	now := float64(time.Now().UnixNano()) / 1e9
	var nacks [][]byte
	c.mu.Lock()
	for _, p := range c.reasm.Stale(now, udpNackAgeSec) {
		if p.Nacks >= udpNackRetries {
			c.reasm.Abandon(p.StreamID, p.FrameSeq)
			continue
		}
		missing := c.reasm.Missing(p.StreamID, p.FrameSeq)
		if len(missing) == 0 {
			continue
		}
		nacks = append(nacks, transport.EncodeNack(nil, transport.Nack{StreamID: p.StreamID, FrameSeq: p.FrameSeq, Missing: missing}))
		c.reasm.NoteNack(p.StreamID, p.FrameSeq, now)
	}
	c.mu.Unlock()
	for _, n := range nacks {
		c.nacksSent.Add(1)
		c.conn.Write(n)
	}
}

// deliver routes a reassembled frame: a waiting fetch gets it directly;
// otherwise it enters the bounded store and OnFrame fires so the cache
// layer can absorb pushes.
func (c *UDPChannel) deliver(f *transport.ReassembledFrame) {
	pushed := f.Flags&transport.DgramFlagPushed != 0
	if pushed {
		c.pushedRecv.Add(1)
		c.pushedBytes.Add(int64(len(f.Data)))
		c.pushedRecvC.Add(1)
	}
	c.mu.Lock()
	if ch, ok := c.waiters[f.Point]; ok {
		delete(c.waiters, f.Point)
		// The consumed reply is retained too (already credited, so later
		// hits count as serves, not fresh consumption).
		c.storeLocked(f.Point, f.Data, pushed, true)
		c.mu.Unlock()
		if pushed {
			c.pushedUsed.Add(1)
			c.pushedUsedBytes.Add(int64(len(f.Data)))
			c.pushServes.Add(1)
			c.pushServesC.Add(1)
		}
		select {
		case ch <- f.Data:
		default:
		}
		return
	}
	c.storeLocked(f.Point, f.Data, pushed, false)
	c.mu.Unlock()
	if c.OnFrame != nil {
		c.OnFrame(f.Point, f.Data, pushed)
	}
}
