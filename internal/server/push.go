package server

import (
	"net"
	"sync"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/transport"
)

// Trajectory-driven server push for the datagram frame path. Every FI
// state upload from a subscribed session feeds a constant-velocity
// predictor; when the predicted grid point's frame is store-resident, the
// server slices it onto the UDP socket ahead of the client's request.
// Pushes are paced by a per-session token bucket whose effective rate
// backs off with the session's NACK EWMA and with the installed
// contention signal, so a lossy or saturated link sheds push traffic
// before it sheds the client's own fetches.

const (
	// pushLookaheadSec matches prefetch.DefaultConfig.LookaheadSec, so
	// the server predicts the same point the client's prefetcher is about
	// to ask for.
	pushLookaheadSec = 0.4
	// defaultPushRate is the per-session token-bucket rate (frames/sec).
	defaultPushRate = 30
	// pushBurst caps accumulated tokens: a session idle for a second
	// cannot dump an arbitrary burst when it resumes.
	pushBurst = 4
	// sentRing is how many recently sent frames a session keeps for
	// NACK-triggered chunk retransmits.
	sentRing = 8
	// pushedLRU is how many recently pushed points a session remembers,
	// to avoid re-pushing the frame it just delivered.
	pushedLRU = 16
	// histLen is the trajectory window: constant velocity over the last
	// N PUN states.
	histLen = 4
	// udpReqWorkers bounds concurrent UDP frame-request serves; overflow
	// requests are dropped and the client falls back to TCP.
	udpReqWorkers = 16
)

// stateSample is one FI state arrival: position plus server receive time.
type stateSample struct {
	pos geom.Vec2
	tMs float64
}

// sentFrame is one frame recently sliced to a session, kept so a NACK can
// retransmit individual chunks without a store round trip.
type sentFrame struct {
	seq  uint32
	meta transport.FrameMeta
	data []byte
}

// udpSession is the server's per-address datagram frame-path state.
type udpSession struct {
	addr     net.Addr
	player   uint8
	wantPush bool

	// Trajectory ring (constant-velocity predictor input).
	hist  [histLen]stateSample
	nHist int

	// Frame stream to this session: one stream id, monotonic seqs shared
	// by pushes and request replies.
	streamID uint32
	nextSeq  uint32

	// Token-bucket pacer.
	tokens   float64
	lastFill float64 // seconds
	nackEWMA float64

	// Recently pushed points -> store seq, with FIFO eviction.
	pushed    map[geom.GridPoint]uint64
	pushedLog []geom.GridPoint

	sent [sentRing]sentFrame
}

// udpServe is the state of one ServeFIUDP listener: the socket, the
// subscribed sessions, and the bounded request-serving semaphore. It is
// created per listener so two UDP sockets on one Server never share
// session state.
type udpServe struct {
	pc  net.PacketConn
	mu  sync.Mutex
	sub map[string]*udpSession
	sem chan struct{}
}

func newUDPServe(pc net.PacketConn) *udpServe {
	return &udpServe{
		pc:  pc,
		sub: make(map[string]*udpSession),
		sem: make(chan struct{}, udpReqWorkers),
	}
}

func (u *udpServe) session(addr net.Addr) *udpSession {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sub[addr.String()]
}

// handleDgram dispatches one frame-path datagram (magic present, not an
// FI state). Malformed payloads count against dropped_malformed.
func (s *Server) handleDgram(u *udpServe, addr net.Addr, b []byte, nowMs float64) {
	switch transport.DgramType(b) {
	case transport.DgramSub:
		sub, err := transport.DecodeSub(b)
		if err != nil {
			s.obs.udpDroppedMalformed.Inc()
			return
		}
		u.mu.Lock()
		key := addr.String()
		sess := u.sub[key]
		if sess == nil {
			sess = &udpSession{
				addr: addr,
				// Stream ids only need to differ between sessions the
				// same client multiplexes; player+1 keeps 0 invalid.
				streamID: uint32(sub.Player) + 1,
				pushed:   make(map[geom.GridPoint]uint64),
				lastFill: nowMs / 1000,
			}
			u.sub[key] = sess
		}
		sess.player = sub.Player
		sess.wantPush = sub.WantPush
		u.mu.Unlock()
	case transport.DgramReq:
		req, err := transport.DecodeReq(b)
		if err != nil {
			s.obs.udpDroppedMalformed.Inc()
			return
		}
		s.serveUDPReq(u, addr, req)
	case transport.DgramNack:
		nack, err := transport.DecodeNack(b)
		if err != nil {
			s.obs.udpDroppedMalformed.Inc()
			return
		}
		s.serveNack(u, addr, nack)
	default:
		s.obs.udpDroppedMalformed.Inc()
	}
}

// notePush updates the session's predictor with a fresh FI state and, when
// push is enabled and the pacer allows, pushes the predicted point's
// store-resident frame. Called from the ServeFIUDP read loop, so the push
// itself is a store peek + slice + sendto — never a render.
func (s *Server) notePush(u *udpServe, sess *udpSession, st fisync.State, nowMs float64) {
	copy(sess.hist[1:], sess.hist[:histLen-1])
	sess.hist[0] = stateSample{pos: st.Pos, tMs: nowMs}
	if sess.nHist < histLen {
		sess.nHist++
	}
	// A clean FI round decays the loss estimate.
	sess.nackEWMA *= 0.98
	if !s.pushOn.Load() || !sess.wantPush || sess.nHist < 2 {
		return
	}

	// Constant velocity across the trajectory window.
	newest, oldest := sess.hist[0], sess.hist[sess.nHist-1]
	dt := (newest.tMs - oldest.tMs) / 1000
	if dt <= 0 {
		return
	}
	vel := newest.pos.Sub(oldest.pos).Scale(1 / dt)
	grid := s.env.Game.Scene.Grid
	pt := grid.Snap(newest.pos.Add(vel.Scale(pushLookaheadSec)))
	if !grid.In(pt) {
		return
	}

	// Refill the bucket at the effective rate: the configured rate scaled
	// down by the NACK EWMA (loss backoff) and the contention signal.
	rate := float64(s.pushRate.Load())
	if rate <= 0 {
		rate = defaultPushRate
	}
	rate /= 1 + 8*sess.nackEWMA
	if f := s.pushContention.Load(); f != nil {
		if c := (*f)(); c > 0 {
			if c > 1 {
				c = 1
			}
			rate *= 1 - c
		}
	}
	nowSec := nowMs / 1000
	sess.tokens += (nowSec - sess.lastFill) * rate
	sess.lastFill = nowSec
	if sess.tokens > pushBurst {
		sess.tokens = pushBurst
	}

	data, seq, ok := s.store.peek(pt)
	if !ok {
		return // nothing store-resident: the client's own fetch will render it
	}
	if prev, dup := sess.pushed[pt]; dup && prev == seq {
		return // already pushed this exact frame version
	}
	if sess.tokens < 1 {
		s.obs.pushSkips.Inc()
		return
	}
	sess.tokens--
	sess.pushed[pt] = seq
	sess.pushedLog = append(sess.pushedLog, pt)
	if len(sess.pushedLog) > pushedLRU {
		delete(sess.pushed, sess.pushedLog[0])
		sess.pushedLog = sess.pushedLog[1:]
	}
	s.sendFrame(u, sess, pt, data, transport.DgramFlagPushed)
	s.obs.pushFrames.Inc()
	s.obs.pushBytes.Add(int64(len(data)))
}

// sendFrame slices one encoded frame onto the session's stream and
// remembers it for NACK retransmits. Callers hold no locks; seq
// allocation and the sent-ring update take the serve mutex.
func (s *Server) sendFrame(u *udpServe, sess *udpSession, pt geom.GridPoint, data []byte, flags byte) {
	u.mu.Lock()
	sess.nextSeq++
	seq := sess.nextSeq
	meta := transport.FrameMeta{
		StreamID: sess.streamID,
		FrameSeq: seq,
		Point:    pt,
		Flags:    flags,
	}
	sess.sent[seq%sentRing] = sentFrame{seq: seq, meta: meta, data: data}
	u.mu.Unlock()

	fecK := int(s.fecK.Load())
	if fecK <= 0 {
		fecK = transport.DefaultFECGroup
	}
	for _, d := range transport.SliceFrame(nil, meta, data, fecK) {
		s.obs.udpBytesOut.Add(int64(len(d)))
		if _, err := u.pc.WriteTo(d, sess.addr); err != nil {
			s.obs.udpSendErrors.Inc()
			return
		}
	}
}

// serveUDPReq answers a client's UDP frame request through the staged
// serve path on a bounded worker pool. When the pool is full the request
// is dropped: the client's short UDP budget expires and it falls back to
// TCP, which is exactly the overload behaviour we want.
func (s *Server) serveUDPReq(u *udpServe, addr net.Addr, req transport.Req) {
	sess := u.session(addr)
	if sess == nil {
		s.obs.udpDroppedStale.Inc() // request without a subscription
		return
	}
	select {
	case u.sem <- struct{}{}:
	default:
		return
	}
	s.obs.udpFrameReqs.Inc()
	go func() {
		defer func() { <-u.sem }()
		data, _, _, _, _, _, err := s.frameForStaged(req.Point, 0, 0)
		if err != nil {
			return // client falls back to TCP
		}
		s.sendFrame(u, sess, req.Point, data, 0)
	}()
}

// serveNack retransmits the chunks a client reports missing, from the
// session's sent-frame ring. The NACK also bumps the loss EWMA the push
// pacer backs off on.
func (s *Server) serveNack(u *udpServe, addr net.Addr, nack transport.Nack) {
	sess := u.session(addr)
	if sess == nil {
		s.obs.udpDroppedStale.Inc()
		return
	}
	s.obs.udpNacks.Inc()
	u.mu.Lock()
	sess.nackEWMA = 0.9*sess.nackEWMA + 0.1
	sf := sess.sent[nack.FrameSeq%sentRing]
	u.mu.Unlock()
	if sf.seq != nack.FrameSeq || sf.meta.StreamID != nack.StreamID {
		s.obs.udpDroppedStale.Inc() // frame already rotated out of the ring
		return
	}
	for _, idx := range nack.Missing {
		d := transport.SliceChunk(sf.meta, sf.data, int(idx))
		if d == nil {
			continue
		}
		s.obs.udpRetransmits.Inc()
		s.obs.udpBytesOut.Add(int64(len(d)))
		if _, err := u.pc.WriteTo(d, sess.addr); err != nil {
			s.obs.udpSendErrors.Inc()
			return
		}
	}
}

// nowMs is the UDP path's wall clock, in milliseconds.
func nowMs() float64 { return float64(time.Now().UnixNano()) / 1e6 }
