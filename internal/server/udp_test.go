package server

import (
	"net"
	"testing"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/geom"
)

func startFIUDP(t *testing.T) string {
	t.Helper()
	srv := New(poolEnv(t))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go srv.ServeFIUDP(pc)
	return pc.LocalAddr().String()
}

func TestFIUDPRoundTrip(t *testing.T) {
	addr := startFIUDP(t)
	c1, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// First player alone: empty snapshot.
	states, err := c1.Sync(fisync.State{Player: 1, Seq: 1, Pos: geom.V2(1, 2)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("solo snapshot = %v", states)
	}
	// Second player sees the first.
	states, err = c2.Sync(fisync.State{Player: 2, Seq: 1, Pos: geom.V2(3, 4)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Player != 1 || states[0].Pos != geom.V2(1, 2) {
		t.Fatalf("snapshot = %+v", states)
	}
}

func TestFIUDPPerFrameRate(t *testing.T) {
	// The sync must comfortably run at frame rate: 60 round trips well
	// under a second on loopback.
	addr := startFIUDP(t)
	c, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 1; i <= 60; i++ {
		if _, err := c.Sync(fisync.State{Player: 1, Seq: uint32(i)}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("60 syncs took %v", d)
	}
}

func TestFIUDPIgnoresGarbage(t *testing.T) {
	addr := startFIUDP(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server must survive and keep answering valid requests.
	c, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Sync(fisync.State{Player: 7, Seq: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
}
