package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/obs"
)

func startFIUDP(t *testing.T) string {
	t.Helper()
	srv := New(poolEnv(t))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go srv.ServeFIUDP(pc)
	return pc.LocalAddr().String()
}

func TestFIUDPRoundTrip(t *testing.T) {
	addr := startFIUDP(t)
	c1, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// First player alone: empty snapshot.
	states, err := c1.Sync(fisync.State{Player: 1, Seq: 1, Pos: geom.V2(1, 2)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("solo snapshot = %v", states)
	}
	// Second player sees the first.
	states, err = c2.Sync(fisync.State{Player: 2, Seq: 1, Pos: geom.V2(3, 4)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Player != 1 || states[0].Pos != geom.V2(1, 2) {
		t.Fatalf("snapshot = %+v", states)
	}
}

func TestFIUDPPerFrameRate(t *testing.T) {
	// The sync must comfortably run at frame rate: 60 round trips well
	// under a second on loopback.
	addr := startFIUDP(t)
	c, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 1; i <= 60; i++ {
		if _, err := c.Sync(fisync.State{Player: 1, Seq: uint32(i)}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("60 syncs took %v", d)
	}
}

// failingPacketConn hands ServeFIUDP a fixed sequence of datagrams and
// fails every reply send. Once the datagrams run out, ReadFrom reports
// net.ErrClosed — so if the send error were swallowed instead of
// propagated, ServeFIUDP would return nil and the test would catch it.
type failingPacketConn struct {
	datagrams [][]byte
	writeErr  error
}

func (c *failingPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	if len(c.datagrams) == 0 {
		return 0, nil, net.ErrClosed
	}
	d := c.datagrams[0]
	c.datagrams = c.datagrams[1:]
	n := copy(p, d)
	return n, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}, nil
}

func (c *failingPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) { return 0, c.writeErr }
func (c *failingPacketConn) Close() error                                 { return nil }
func (c *failingPacketConn) LocalAddr() net.Addr                          { return &net.UDPAddr{} }
func (c *failingPacketConn) SetDeadline(t time.Time) error                { return nil }
func (c *failingPacketConn) SetReadDeadline(t time.Time) error            { return nil }
func (c *failingPacketConn) SetWriteDeadline(t time.Time) error           { return nil }

func TestFIUDPSendErrorPropagatesAndCounts(t *testing.T) {
	srv := New(poolEnv(t))
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	sendErr := errors.New("socket wedged")
	pc := &failingPacketConn{
		datagrams: [][]byte{fisync.State{Player: 1, Seq: 1, Pos: geom.V2(1, 2)}.Encode(nil)},
		writeErr:  sendErr,
	}
	err := srv.ServeFIUDP(pc)
	if !errors.Is(err, sendErr) {
		t.Fatalf("ServeFIUDP returned %v, want the send error", err)
	}
	if got := reg.Counter("server.udp_send_errors").Value(); got != 1 {
		t.Fatalf("udp_send_errors = %d, want 1", got)
	}
}

func TestFIUDPIgnoresGarbage(t *testing.T) {
	addr := startFIUDP(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server must survive and keep answering valid requests.
	c, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Sync(fisync.State{Player: 7, Seq: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
}
