package server

import (
	"context"
	"net"
	"testing"
	"time"

	"coterie/internal/cluster"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/transport"
)

// clusterNode is one in-process member of a loopback cluster.
type clusterNode struct {
	srv  *Server
	cl   *cluster.Cluster
	reg  *obs.Registry
	addr string
	stop func()
}

// startCluster runs n live servers on loopback listeners joined into one
// static cluster. Reprojection is disabled on every node so a full
// ray-cast is the only render path — the determinism the byte-identity
// assertions lean on (reprojection output depends on each node's pano
// cache history). The health loop is not started: down-marking is
// purely passive (fetch failures), which keeps the tests deterministic.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	env := poolEnv(t)
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		srv := New(env)
		srv.SetReprojectEnabled(false)
		srv.DrainTimeout = 200 * time.Millisecond
		reg := obs.NewRegistry()
		srv.Instrument(reg)
		cl, err := cluster.New(cluster.Config{
			Self:         addrs[i],
			Nodes:        addrs,
			Game:         env.Game.Spec.Name,
			DialTimeout:  500 * time.Millisecond,
			FetchTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Instrument(reg)
		srv.SetCluster(cl)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		ln := lns[i]
		go func() {
			defer close(done)
			srv.ServeContext(ctx, ln)
		}()
		stopped := false
		node := &clusterNode{srv: srv, cl: cl, reg: reg, addr: addrs[i]}
		node.stop = func() {
			if stopped {
				return
			}
			stopped = true
			cancel()
			<-done
			cl.Close()
		}
		nodes[i] = node
		t.Cleanup(node.stop)
	}
	return nodes
}

// pointsOwnedBy returns up to max in-grid points owned by addr, scanning
// from the spawn outward so every point is renderable.
func pointsOwnedBy(t *testing.T, cl *cluster.Cluster, addr string, max int) []geom.GridPoint {
	t.Helper()
	env := poolEnv(t)
	grid := env.Game.Scene.Grid
	spawn := grid.Snap(env.Game.Spawn)
	var pts []geom.GridPoint
	seen := map[geom.GridPoint]bool{}
	for d := 0; d < 40 && len(pts) < max; d++ {
		for di := -d; di <= d && len(pts) < max; di++ {
			for _, dj := range []int{-d, d} {
				pt := geom.GridPoint{I: spawn.I + di, J: spawn.J + dj}
				if seen[pt] {
					continue
				}
				seen[pt] = true
				if grid.In(pt) && cl.Owner(pt) == addr {
					pts = append(pts, pt)
					if len(pts) >= max {
						break
					}
				}
			}
		}
	}
	if len(pts) == 0 {
		t.Fatalf("no in-grid points owned by %s near spawn", addr)
	}
	return pts
}

// TestClusterPeerFetchByteIdentical: a frame served by a non-owner via
// the peer hop must be byte-for-byte the owner's frame, the reply must
// be tagged OriginPeer, and the fetched bytes must enter the non-owner's
// store (read-through replication: the re-request is a local hit).
func TestClusterPeerFetchByteIdentical(t *testing.T) {
	nodes := startCluster(t, 2)
	a, b := nodes[0], nodes[1]

	game := poolEnv(t).Game.Spec.Name
	ca, err := Dial(a.addr, game, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(b.addr, game, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	for _, pt := range pointsOwnedBy(t, a.cl, b.addr, 3) {
		// Non-owner serve: A proxies to B.
		ra, _, _, err := ca.FetchTraced(pt)
		if err != nil {
			t.Fatalf("fetch %v via non-owner: %v", pt, err)
		}
		if ra.Origin != transport.OriginPeer {
			t.Errorf("point %v: origin %d, want OriginPeer", pt, ra.Origin)
		}
		// Owner serve of the same point (store hit on B now).
		rb, _, _, err := cb.FetchTraced(pt)
		if err != nil {
			t.Fatalf("fetch %v via owner: %v", pt, err)
		}
		if rb.Origin != transport.OriginLocal {
			t.Errorf("point %v: owner origin %d, want OriginLocal", pt, rb.Origin)
		}
		da, err := decodeServed(ra, nil)
		if err != nil {
			t.Fatal(err)
		}
		db, err := decodeServed(rb, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytesEqual(da, db) {
			t.Errorf("point %v: peer-fetched frame differs from owner-rendered frame", pt)
		}
		// Read-through replication: the same request on A is now a local
		// store hit with the same bytes.
		ra2, _, _, err := ca.FetchTraced(pt)
		if err != nil {
			t.Fatal(err)
		}
		if ra2.Origin != transport.OriginLocal {
			t.Errorf("point %v: replicated re-request origin %d, want OriginLocal", pt, ra2.Origin)
		}
	}

	// The peer traffic is visible on both sides' instruments.
	dumpA, dumpB := a.reg.Snapshot(), b.reg.Snapshot()
	if dumpA.Counters["server.peer_frames"] == 0 {
		t.Error("non-owner recorded no server.peer_frames")
	}
	if dumpA.Counters["cluster.peer_fetches"] == 0 {
		t.Error("non-owner recorded no cluster.peer_fetches")
	}
	if dumpB.Counters["server.peer_frames_served"] == 0 {
		t.Error("owner recorded no server.peer_frames_served")
	}
}

// decodeServed normalises a reply for comparison: replies are always
// intra in these tests (fresh sessions, distinct points), so the served
// bytes compare directly; a delta reply would need its reference.
func decodeServed(r transport.FrameReply, _ []byte) ([]byte, error) {
	return r.Data, nil
}

// TestClusterFailoverSurvivesNodeStop: after the owner stops, a session
// on the surviving node keeps getting frames — re-rendered locally,
// byte-identical to what the owner served, tagged OriginFailover and
// counted.
func TestClusterFailoverSurvivesNodeStop(t *testing.T) {
	nodes := startCluster(t, 2)
	a, b := nodes[0], nodes[1]
	game := poolEnv(t).Game.Spec.Name

	bPts := pointsOwnedBy(t, a.cl, b.addr, 2)
	warm, cold := bPts[0], bPts[1]

	// The owner renders warm pre-stop: its bytes are the reference the
	// failover render must reproduce.
	cb, err := Dial(b.addr, game, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, _, err := cb.FetchTraced(warm)
	if err != nil {
		t.Fatal(err)
	}
	ownerBytes := append([]byte(nil), rb.Data...)
	cb.Close()

	b.stop()

	ca, err := Dial(a.addr, game, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()

	// First post-stop fetch: the hop fails (dead peer), A re-renders
	// locally and the session survives.
	ra, _, _, err := ca.FetchTraced(warm)
	if err != nil {
		t.Fatalf("session did not survive owner stop: %v", err)
	}
	if ra.Origin != transport.OriginFailover {
		t.Errorf("post-stop origin %d, want OriginFailover", ra.Origin)
	}
	if !bytesEqual(ra.Data, ownerBytes) {
		t.Error("failover re-render differs from the owner's render")
	}
	// Second remotely-owned point: the peer is now marked down, so the
	// hop is skipped outright — still a failover serve, still counted.
	ra2, _, _, err := ca.FetchTraced(cold)
	if err != nil {
		t.Fatalf("second post-stop fetch: %v", err)
	}
	if ra2.Origin != transport.OriginFailover {
		t.Errorf("down-peer origin %d, want OriginFailover", ra2.Origin)
	}
	if n := a.reg.Snapshot().Counters["server.peer_failovers"]; n < 2 {
		t.Errorf("server.peer_failovers = %d, want >= 2", n)
	}
}

// TestClusterTraceIDPropagation: a peer-served frame's distributed trace
// id — derived from the client's player and request id — must appear on
// BOTH nodes' trace rings: the proxying node records the hop span
// (Hop 1), the owner records the serve span (Hop 2), and the hop span's
// wall duration decomposes exactly into HopMs plus the owner's echoed
// stages.
func TestClusterTraceIDPropagation(t *testing.T) {
	nodes := startCluster(t, 2)
	a, b := nodes[0], nodes[1]
	game := poolEnv(t).Game.Spec.Name

	ca, err := Dial(a.addr, game, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()

	pt := pointsOwnedBy(t, a.cl, b.addr, 1)[0]
	reply, _, _, err := ca.FetchTraced(pt)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Origin != transport.OriginPeer {
		t.Fatalf("origin %d, want OriginPeer", reply.Origin)
	}
	id := obs.TraceID(ca.Player, reply.ReqID)
	if id == 0 {
		t.Fatal("trace id is 0")
	}

	hopSpans := a.reg.Trace().ForTrace(id)
	if len(hopSpans) != 1 {
		t.Fatalf("proxy node recorded %d spans for trace %d, want 1", len(hopSpans), id)
	}
	hop := hopSpans[0]
	if hop.Hop != 1 {
		t.Errorf("proxy span hop = %d, want 1", hop.Hop)
	}
	if hop.Player != 7 {
		t.Errorf("proxy span player = %d, want 7", hop.Player)
	}
	if hop.Origin != uint8(transport.OriginPeer) {
		t.Errorf("proxy span origin = %d, want OriginPeer", hop.Origin)
	}
	// The hop span's wall time decomposes exactly: HopMs is defined as the
	// proxy-side wall duration minus the owner's echoed stages (floored at
	// zero for clock jitter), so the identity reads as a sum.
	if hop.HopMs < 0 {
		t.Errorf("proxy span HopMs = %v, negative", hop.HopMs)
	}
	sum := hop.HopMs + hop.QueueMs + hop.RenderMs + hop.EncodeMs
	if diff := sum - hop.FetchMs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("hop decomposition %.6f != hop wall %.6f (Hop %.3f Queue %.3f Render %.3f Encode %.3f)",
			sum, hop.FetchMs, hop.HopMs, hop.QueueMs, hop.RenderMs, hop.EncodeMs)
	}

	serveSpans := b.reg.Trace().ForTrace(id)
	if len(serveSpans) != 1 {
		t.Fatalf("owner node recorded %d spans for trace %d, want 1", len(serveSpans), id)
	}
	serve := serveSpans[0]
	if serve.Hop != 2 {
		t.Errorf("owner span hop = %d, want 2", serve.Hop)
	}
	if serve.Player != 7 {
		t.Errorf("owner span player = %d, want 7 (request context forwarded verbatim)", serve.Player)
	}
	if serve.RenderMs <= 0 {
		t.Errorf("owner span has no render time: %+v", serve)
	}
	// The owner's echoed stages are the hop span's pass-through: what A
	// credited to queue/render/encode is exactly what B measured.
	if serve.RenderMs != hop.RenderMs || serve.EncodeMs != hop.EncodeMs {
		t.Errorf("stage mismatch across the hop: owner render/encode %.3f/%.3f, proxy %.3f/%.3f",
			serve.RenderMs, serve.EncodeMs, hop.RenderMs, hop.EncodeMs)
	}

	// Server-side spans must not pollute either node's /qoe view.
	for name, reg := range map[string]*obs.Registry{"proxy": a.reg, "owner": b.reg} {
		ring := reg.Trace()
		if q := obs.ComputeQoE(ring.Recent(ring.Len()), obs.QoEConfig{Player: -1}); q.Spans != 0 {
			t.Errorf("%s node QoE counted %d server-side spans, want 0", name, q.Spans)
		}
	}

	// A locally-owned point must not record any trace span (local serves
	// are not hops).
	before := len(a.reg.Trace().Recent(a.reg.Trace().Len()))
	local := pointsOwnedBy(t, a.cl, a.addr, 1)[0]
	if _, _, _, err := ca.FetchTraced(local); err != nil {
		t.Fatal(err)
	}
	if after := len(a.reg.Trace().Recent(a.reg.Trace().Len())); after != before {
		t.Errorf("local serve grew the trace ring %d → %d; server spans are for cluster hops only", before, after)
	}
}
