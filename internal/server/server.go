// Package server implements the Coterie frame server over real TCP: it
// pre-renders and pre-encodes panoramic far-BE frames for grid points
// (memoised on first request — the paper renders offline; lazy
// memoisation computes the identical frames on demand) and synchronises
// foreground interactions between connected clients (§5.1). It also hosts
// the live backend of the shared client runtime (live.go): the TCP/UDP
// implementations of runtime.FrameSource and runtime.FISync.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/cluster"
	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/obs"
	"coterie/internal/sched"
	"coterie/internal/transport"
)

// Server serves far-BE frames and FI sync for one prepared game
// environment. It is safe for concurrent connections.
type Server struct {
	env *core.Env

	// IdleTimeout bounds how long a session may sit between messages;
	// 0 means no limit. Set before Serve.
	IdleTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown wait for in-flight
	// sessions once the listener closes; after it, open connections are
	// force-closed. 0 means wait indefinitely. Set before Serve.
	DrainTimeout time.Duration
	// Logger receives the server's structured lifecycle and session logs;
	// nil means slog.Default(). Set before Serve.
	Logger *slog.Logger

	// store caches encoded far-BE frames: sharded for concurrent
	// sessions, byte-bounded with LRU eviction, and singleflight per grid
	// point. Budget via SetStoreBudget.
	store *frameStore

	// panos caches the decoded reconstruction of recently rendered frames
	// (what a client that decoded the served bytes sees). The delta path
	// encodes residuals between reconstructions, and the reprojection path
	// warps them into nearby viewpoints instead of re-rendering.
	panos *panoCache

	// deltaOff / reprojOff disable the delta and reprojection paths; the
	// zero value (both enabled) is the production configuration. Inverted
	// so the zero-valued Server keeps today's defaults.
	deltaOff  atomic.Bool
	reprojOff atomic.Bool

	// sched gates every render leader: an EDF queue with a concurrency
	// knee (SetMaxInflight) and admission control, so a request whose
	// vsync deadline is imminent overtakes prerender and deadline-less
	// traffic instead of queueing FIFO behind it. schedOff bypasses the
	// gate entirely (the pre-scheduler serve path, for A/B runs and the
	// byte-identity tests); degradeOff keeps the scheduler but disables
	// the quality ladder, so at-risk requests render in full and simply
	// miss. Both inverted so the zero-valued Server has them enabled.
	sched      *sched.Scheduler
	schedOff   atomic.Bool
	degradeOff atomic.Bool

	// cluster, when set, shards grid-point ownership across nodes: the
	// staged pipeline proxies requests for remotely owned points to
	// their rendezvous owner (caching the reply — read-through
	// replication) and falls back to rendering locally when the owner
	// is down or the hop does not fit the deadline. nil (the default)
	// is standalone serving. Set before Serve via SetCluster.
	cluster *cluster.Cluster

	// pushOn enables trajectory-driven server push on the datagram frame
	// path (off by default: pushes are opt-in via -push, and only reach
	// clients that subscribed with the want-push flag). pushRate is the
	// per-session token-bucket rate in frames/sec (0: default), fecK the
	// FEC group size for sliced frames (0: transport.DefaultFECGroup).
	pushOn   atomic.Bool
	pushRate atomic.Int64
	fecK     atomic.Int64
	// pushContention, when set, reports the current network contention
	// signal in [0,1]; the push pacer scales its rate by (1 - signal).
	pushContention atomic.Pointer[func() float64]

	mu  sync.Mutex // guards hub
	hub *fisync.Hub

	// Stats
	served   atomic.Int64
	rendered atomic.Int64

	sessMu   sync.Mutex
	sessions map[net.Conn]struct{}
	history  []SessionStats

	// Observability (zero values when not instrumented).
	obs serverObs
	tm  *transport.Metrics
	// slo, when set, tracks every served client frame against the
	// error-budget objective: a frame spends budget when it exceeded the
	// latency budget server-side, was served off a degrade rung, or was a
	// failover re-render. Set before Serve via SetSLO.
	slo *obs.SLO
}

// serverObs holds the server's registry instruments; all fields are
// nil-safe, so the uninstrumented server pays one branch per event.
type serverObs struct {
	framesServed   *obs.Counter
	framesRendered *obs.Counter
	frameStoreHits *obs.Counter
	renderShared   *obs.Counter
	bytesSent      *obs.Counter
	fiSyncs        *obs.Counter
	sessionsTotal  *obs.Counter
	sessionErrors  *obs.Counter
	sessionsActive *obs.Gauge
	renderMs       *obs.Histogram
	udpDatagrams *obs.Counter
	// Malformed / stale / overflow drops are split so the datagram frame
	// path is debuggable from /metrics: a parse failure, a frame behind
	// the delivery window, and a reassembly-cap eviction are three very
	// different operator stories.
	udpDroppedMalformed *obs.Counter
	udpDroppedStale     *obs.Counter
	udpDroppedOverflow  *obs.Counter
	udpBytesIn          *obs.Counter
	udpBytesOut         *obs.Counter

	// Datagram frame path: unsolicited pushes, pacer skips, UDP frame
	// requests served, and NACK-triggered chunk retransmits.
	pushFrames     *obs.Counter
	pushBytes      *obs.Counter
	pushSkips      *obs.Counter
	udpFrameReqs   *obs.Counter
	udpRetransmits *obs.Counter
	udpNacks       *obs.Counter
	deltaFrames    *obs.Counter
	deltaSaved     *obs.Counter
	reprojHits     *obs.Counter
	reprojRejects  *obs.Counter

	// Deadline scheduling and the quality-degrade ladder.
	degradeStale   *obs.Counter
	degradeReproj  *obs.Counter
	degradeLowres  *obs.Counter
	lowresRejects  *obs.Counter
	deadlineMet    *obs.Counter
	deadlineMisses *obs.Counter
	deadlineMissMs *obs.Histogram
	udpSendErrors  *obs.Counter

	// Cluster serving: frames obtained via a peer fetch, local renders
	// of remotely owned points (owner down, hop at deadline risk, or
	// fetch failed), and peer requests this node answered.
	peerFrames       *obs.Counter
	peerFailovers    *obs.Counter
	peerFramesServed *obs.Counter

	// trace receives the server-side spans of distributed traces: the
	// hop span a proxying node records around its peer fetch, and the
	// serve span the owner records answering one. Local client serves are
	// not recorded here — the client's own ring has their display spans.
	trace *obs.TraceRing
}

// SetStoreBudget bounds the frame store to the given number of encoded
// bytes (<= 0 means unbounded), evicting least-recently-used frames
// immediately and on every insert thereafter. Safe to call at any time.
func (s *Server) SetStoreBudget(n int64) { s.store.SetBudget(n) }

// StoreStats reports the frame store's resident bytes, cumulative
// evictions, and cached frame count.
func (s *Server) StoreStats() (bytes, evictions int64, frames int) {
	return s.store.Bytes(), s.store.Evictions(), s.store.Len()
}

// Instrument mirrors the server's activity into a registry under the
// "server." namespace and attaches per-message-type transport metrics to
// subsequently accepted sessions. Call before Serve; Instrument(nil) is a
// no-op.
func (s *Server) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	s.obs = serverObs{
		framesServed:   r.Counter("server.frames_served"),
		framesRendered: r.Counter("server.frames_rendered"),
		frameStoreHits: r.Counter("server.frame_store_hits"),
		renderShared:   r.Counter("server.renders_shared"),
		bytesSent:      r.Counter("server.frame_bytes_sent"),
		fiSyncs:        r.Counter("server.fi_syncs"),
		sessionsTotal:  r.Counter("server.sessions_total"),
		sessionErrors:  r.Counter("server.session_errors"),
		sessionsActive: r.Gauge("server.sessions_active"),
		renderMs:       r.Histogram("server.render_ms"),
		udpDatagrams:   r.Counter("server.udp.datagrams"),
		udpDroppedMalformed: r.Counter("server.udp.dropped_malformed"),
		udpDroppedStale:     r.Counter("server.udp.dropped_stale"),
		udpDroppedOverflow:  r.Counter("server.udp.dropped_overflow"),
		udpBytesIn:     r.Counter("server.udp.bytes_in"),
		udpBytesOut:    r.Counter("server.udp.bytes_out"),
		pushFrames:     r.Counter("server.udp.push_frames"),
		pushBytes:      r.Counter("server.udp.push_bytes"),
		pushSkips:      r.Counter("server.udp.push_skips"),
		udpFrameReqs:   r.Counter("server.udp.frame_reqs"),
		udpRetransmits: r.Counter("server.udp.retransmits"),
		udpNacks:       r.Counter("server.udp.nacks"),
		deltaFrames:    r.Counter("server.delta_frames"),
		deltaSaved:     r.Counter("server.delta_bytes_saved"),
		reprojHits:     r.Counter("server.reproject_hits"),
		reprojRejects:  r.Counter("server.reproject_rejects"),
		degradeStale:   r.Counter("server.degrade_stale"),
		degradeReproj:  r.Counter("server.degrade_reproject"),
		degradeLowres:  r.Counter("server.degrade_lowres"),
		lowresRejects:  r.Counter("server.lowres_rejects"),
		deadlineMet:    r.Counter("server.deadline_met"),
		deadlineMisses: r.Counter("server.deadline_misses"),
		deadlineMissMs: r.Histogram("server.deadline_miss_ms"),
		udpSendErrors:  r.Counter("server.udp_send_errors"),

		peerFrames:       r.Counter("server.peer_frames"),
		peerFailovers:    r.Counter("server.peer_failovers"),
		peerFramesServed: r.Counter("server.peer_frames_served"),

		trace: r.Trace(),
	}
	s.store.instrument(
		r.Gauge("server.store_bytes"),
		r.Counter("server.evictions"),
		r.Histogram("server.store_shard_lock_wait_ms"),
	)
	s.sched.Instrument(r, "server.sched")
	s.tm = transport.NewMetrics(r, "server.transport")
}

// logger returns the configured structured logger, defaulting to
// slog.Default().
func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// maxSessionHistory bounds the retained per-session stats.
const maxSessionHistory = 256

// frameStages decomposes one server-side frame lookup for the reply's
// trace context: how long the request waited on another request's
// singleflight render (queue), and the render and encode spans when this
// lookup did the work itself. A frame-store hit is all zeros.
type frameStages struct {
	QueueMs  float64
	RenderMs float64
	EncodeMs float64
	// HopMs is the cluster proxy overhead of a peer-served lookup: this
	// node's wall time around the peer fetch minus the owner's own stages
	// (which pass through to QueueMs/RenderMs/EncodeMs). Zero for local
	// serves, so the client-side stage identity holds on every origin.
	HopMs float64
}

// SessionStats describes one completed client session.
type SessionStats struct {
	Remote       string
	Player       uint8
	Game         string
	StartedAt    time.Time
	Duration     time.Duration
	FramesServed int64
	BytesSent    int64
	FISyncs      int64
	// Err is the terminal error, empty for a clean MsgBye teardown.
	Err string
}

// New creates a server for the environment.
func New(env *core.Env) *Server {
	return &Server{
		env:      env,
		store:    newFrameStore(0),
		panos:    newPanoCache(defaultPanoCacheCap),
		sched:    sched.New(sched.Config{}),
		hub:      fisync.NewHub(),
		sessions: make(map[net.Conn]struct{}),
	}
}

// SetDeltaEnabled toggles delta frame coding (enabled by default). With it
// off every frame is served intra-coded; the toggle exists for A/B runs
// (the bytes-per-frame benchmark) and tests. Safe to call at any time.
func (s *Server) SetDeltaEnabled(on bool) { s.deltaOff.Store(!on) }

// SetReprojectEnabled toggles reprojection synthesis (enabled by default).
// With it off every cache miss ray-casts a full panorama. Safe to call at
// any time.
func (s *Server) SetReprojectEnabled(on bool) { s.reprojOff.Store(!on) }

// SetSchedEnabled toggles the deadline scheduler (enabled by default).
// With it off, render leaders run unscheduled and unshed — the
// pre-scheduler FIFO path, kept for A/B benchmarks and the unloaded
// byte-identity assertion. Safe to call at any time.
func (s *Server) SetSchedEnabled(on bool) { s.schedOff.Store(!on) }

// SetDegradeEnabled toggles the quality-degrade ladder (enabled by
// default). With it off, requests whose deadlines are at risk still
// render in full (and miss); the scheduler's EDF ordering and admission
// control stay active. Safe to call at any time.
func (s *Server) SetDegradeEnabled(on bool) { s.degradeOff.Store(!on) }

// SetMaxInflight sets the scheduler's concurrency knee: the number of
// renders allowed to run at once (<= 0 restores the default of one per
// schedulable core). Safe to call at any time.
func (s *Server) SetMaxInflight(n int) { s.sched.SetWorkers(n) }

// SetCluster joins the server to a cluster membership view (nil leaves
// it standalone). Requests for grid points owned by a peer are proxied
// to the owner and the replies cached locally under the normal store
// budget; a down owner or a hop that no longer fits the deadline falls
// back to a local render. Call before Serve; the caller owns the
// cluster's lifecycle (Start/Close).
func (s *Server) SetCluster(c *cluster.Cluster) { s.cluster = c }

// SetSLO attaches an error-budget tracker fed by every served client
// frame: lateness against the tracker's latency budget, degrade-rung
// serves, and failover re-renders all count against the budget. nil (the
// default) disables tracking. Call before Serve.
func (s *Server) SetSLO(t *obs.SLO) { s.slo = t }

// SetPushEnabled toggles trajectory-driven frame push on the datagram
// path (off by default). Pushes only reach UDP sessions that subscribed
// with the want-push flag, so legacy FI-only clients never see one. Safe
// to call at any time.
func (s *Server) SetPushEnabled(on bool) { s.pushOn.Store(on) }

// SetPushRate sets the per-session push token-bucket rate in frames/sec
// (<= 0 restores the default). The effective rate backs off with the
// session's NACK EWMA and the contention signal. Safe to call at any time.
func (s *Server) SetPushRate(n int) { s.pushRate.Store(int64(n)) }

// SetFECK sets the XOR-parity FEC group size for frames sliced onto the
// datagram path (<= 0 restores transport.DefaultFECGroup). Safe to call
// at any time.
func (s *Server) SetFECK(k int) { s.fecK.Store(int64(k)) }

// SetPushContention installs the network-contention signal the push pacer
// adapts to: a func reporting utilisation in [0,1] (netsim's measured
// contention in sim runs). nil disables the scaling. Safe to call at any
// time.
func (s *Server) SetPushContention(f func() float64) {
	if f == nil {
		s.pushContention.Store(nil)
		return
	}
	s.pushContention.Store(&f)
}

// errOverloaded is the admission-control rejection: the render queue is
// past its bound and the degrade ladder found nothing servable. Sessions
// deliver it as MsgError, so the connection stays usable and the client
// decides whether to retry.
var errOverloaded = errors.New("overloaded: render queue full")

// FrameFor returns the encoded far-BE panorama for a grid point,
// rendering and encoding it on first use.
func (s *Server) FrameFor(pt geom.GridPoint) ([]byte, error) {
	data, _, err := s.frameFor(pt)
	return data, err
}

// frameFor additionally reports whether this call rendered the frame.
// Deadline-less: never shed, never degraded.
func (s *Server) frameFor(pt geom.GridPoint) ([]byte, bool, error) {
	data, rendered, _, _, _, _, err := s.frameForStaged(pt, 0, 0)
	return data, rendered, err
}

// frameForStaged is frameFor plus the stage decomposition for the reply's
// trace context, the frame's store sequence number (the identity the
// delta path names references by), and the degrade rung that produced the
// bytes. Concurrent calls for the same point share one render: the first
// caller renders (and reports render/encode spans), the rest block on its
// result (and report the wait as queue time, inheriting its rung), so
// rendered counts are exact and all callers share one buffer.
//
// deadlineMs is the request's absolute wall-clock deadline (<= 0: none).
// Render leaders pass through the EDF scheduler: they wait for a slot in
// deadline order (the wait lands in QueueMs), are shed with errOverloaded
// when admission control rejects them, and — when the slot arrives with
// the deadline already at risk — render via the quality-degrade ladder
// instead of the full ray-cast. Deadline-less callers (prerender, tests,
// unloaded clients) take the slot gate too but sort last and never
// degrade, so their output is byte-identical to the unscheduled path.
// frameForStaged allows the peer hop; the MsgPeerFrameRequest handler
// calls frameForStagedOpt with allowPeer=false so a membership
// disagreement between nodes can never chain proxy hops into a loop.
//
// traceID is the distributed trace id of the client request driving this
// lookup (obs.TraceID of the request's player and id; 0 untraced, e.g.
// prerender). It is forwarded verbatim across the peer hop and stamped on
// the hop span this node records, so the client span, this node's hop
// span, and the owner's serve span join on one id.
func (s *Server) frameForStaged(pt geom.GridPoint, deadlineMs float64, traceID uint64) ([]byte, bool, uint64, transport.DegradeRung, transport.FrameOrigin, frameStages, error) {
	return s.frameForStagedOpt(pt, deadlineMs, traceID, true)
}

func (s *Server) frameForStagedOpt(pt geom.GridPoint, deadlineMs float64, traceID uint64, allowPeer bool) ([]byte, bool, uint64, transport.DegradeRung, transport.FrameOrigin, frameStages, error) {
	var stg frameStages
	if !s.env.Game.Scene.Grid.In(pt) {
		return nil, false, 0, transport.RungExact, transport.OriginLocal, stg, fmt.Errorf("server: grid point %v outside world", pt)
	}
	data, seq, ok, c, leader := s.store.lookup(pt)
	if ok {
		// A store hit is a local serve even when the bytes were
		// originally peer-fetched: that is the read-through replication
		// paying off, and Origin describes this serve, not the history.
		s.obs.frameStoreHits.Inc()
		return data, false, seq, transport.RungExact, transport.OriginLocal, stg, nil
	}
	if !leader {
		s.obs.renderShared.Inc()
		waitStart := time.Now()
		<-c.done
		stg.QueueMs = float64(time.Since(waitStart)) / float64(time.Millisecond)
		return c.data, false, c.seq, c.rung, c.origin, stg, c.err
	}

	// Cluster ownership gate: a leader for a remotely owned point
	// proxies the request to its owner instead of rendering, unless the
	// owner is down or the hop itself is projected past the deadline —
	// then this node re-renders locally (byte-identical output, counted
	// as a failover).
	origin := transport.OriginLocal
	useSched := !s.schedOff.Load()
	if cl := s.cluster; cl != nil && allowPeer {
		if owner := cl.Owner(pt); owner != cl.Self() {
			if cl.Up(owner) && !(useSched && s.sched.FetchAtRisk(wallMs(), deadlineMs)) {
				fetchStartMs := wallMs()
				reply, err := cl.Fetch(pt, deadlineMs, traceID)
				if err == nil {
					hopWallMs := wallMs() - fetchStartMs
					s.sched.ObserveFetchCost(hopWallMs)
					s.obs.peerFrames.Inc()
					// Read-through replication: the owner's bytes enter
					// this node's store under the normal budget, so the
					// next request for the point is a local hit. The
					// owner's stage timings pass through to the caller;
					// what they do not cover — dial/pool wait plus hop
					// network transit — is this node's proxy overhead and
					// is split out as HopMs, so the client's NetMs stays
					// pure client↔proxy transit.
					keep := reply.Rung != transport.RungLowRes
					c.rung, c.origin = reply.Rung, transport.OriginPeer
					seq = s.store.complete(pt, c, reply.Data, nil, keep)
					stg.QueueMs += reply.QueueMs
					stg.RenderMs = reply.RenderMs
					stg.EncodeMs = reply.EncodeMs
					stg.HopMs = hopWallMs - (reply.QueueMs + reply.RenderMs + reply.EncodeMs)
					if stg.HopMs < 0 {
						// Clock jitter between the two nodes' stage clocks;
						// never let the hop go negative or the client-side
						// identity would over-subtract from NetMs.
						stg.HopMs = 0
					}
					if traceID != 0 {
						s.obs.trace.Record(&obs.FrameSpan{
							Player:    int(uint8(traceID >> 32)),
							TraceID:   traceID,
							Hop:       1,
							StartMs:   fetchStartMs,
							DisplayMs: fetchStartMs + hopWallMs,
							FetchMs:   hopWallMs,
							HopMs:     stg.HopMs,
							QueueMs:   reply.QueueMs,
							RenderMs:  reply.RenderMs,
							EncodeMs:  reply.EncodeMs,
							Origin:    uint8(transport.OriginPeer),
						})
					}
					return reply.Data, false, seq, reply.Rung, transport.OriginPeer, stg, nil
				}
			}
			origin = transport.OriginFailover
			s.obs.peerFailovers.Inc()
		}
	}

	rushed := false
	if useSched {
		info, admitted := s.sched.Acquire(deadlineMs)
		if !admitted {
			err := errOverloaded
			s.store.complete(pt, c, nil, err, false)
			return nil, false, 0, transport.RungExact, origin, stg, err
		}
		stg.QueueMs += info.QueueMs
		rushed = info.Rushed && !s.degradeOff.Load()
	}

	var err error
	var clean *img.Gray
	var rung transport.DegradeRung
	data, clean, rung, stg.RenderMs, stg.EncodeMs, err = s.render(pt, rushed)
	if useSched {
		// Only full ray-casts (clean raster produced) feed the cost EWMA:
		// the ladder's projections must estimate a *full* render.
		fullCost := 0.0
		if err == nil && clean != nil {
			fullCost = stg.RenderMs + stg.EncodeMs
		}
		s.sched.Release(fullCost)
	}
	s.obs.renderMs.Observe(stg.RenderMs + stg.EncodeMs)
	if err == nil {
		s.rendered.Add(1)
		s.obs.framesRendered.Inc()
	}
	// Low-res frames are served (and inherited by joiners) but never
	// stored: a later unloaded request must re-render the exact frame, not
	// inherit deadline-pressure quality as a rung-0 store hit.
	keep := rung != transport.RungLowRes
	c.rung, c.origin = rung, origin
	seq = s.store.complete(pt, c, data, err, keep)
	if err == nil && keep && (!s.deltaOff.Load() || !s.reprojOff.Load()) {
		// Cache both views of the render: the client-visible reconstruction
		// (the delta path's reference — residuals must be computed against
		// what the client decoded) and, for full ray-casts, the clean raster
		// (the reprojection path's warp source — sourcing warps from a lossy
		// decode would compound codec loss across synthesized frames).
		recon, derr := codec.Decode(data)
		if derr != nil {
			recon = nil
		}
		s.panos.put(pt, seq, recon, clean)
	} else if clean != nil {
		s.env.Renderer.ReleaseGray(clean)
	}
	return data, err == nil, seq, rung, origin, stg, err
}

// render produces the encoded far-BE panorama for an in-grid point,
// reporting the render and encode spans separately (wall milliseconds).
// When a recently rendered nearby frame is cached, the panorama is first
// attempted as a reprojection of it (SSIM-verified against a ray-cast
// sample band); only when that fails is the scene ray-cast in full —
// unless rushed, in which case the remaining ladder rung (a reduced-
// resolution render upscaled to full size, verified against the same
// band) is tried before falling back to the full ray-cast.
//
// The returned rung tags deadline-pressure degradation: a reprojection
// that the normal path would have served anyway is RungExact unless
// rushed forced it to stand in for a render the deadline could not
// afford.
//
// For full ray-casts the pre-encode raster is returned as clean and
// ownership passes to the caller (it becomes the pano cache's warp
// source); reprojection- and low-res-served frames return clean == nil
// so warp error never chains through generations of synthesis.
func (s *Server) render(pt geom.GridPoint, rushed bool) (data []byte, clean *img.Gray, rung transport.DegradeRung, renderMs, encodeMs float64, err error) {
	pos := s.env.Game.Scene.Grid.Pos(pt)
	leaf := s.env.Map.LeafAt(pos)
	if leaf == nil {
		return nil, nil, transport.RungExact, 0, 0, fmt.Errorf("server: no leaf region at %v", pos)
	}
	renderStart := time.Now()
	var pano *img.Gray
	synthesized := false // raster came from a pool path and is released post-encode
	if !s.reprojOff.Load() {
		if pano = s.tryReproject(pt, pos, leaf); pano != nil {
			synthesized = true
			if rushed {
				rung = transport.RungReproject
			}
		}
	}
	if pano == nil && rushed {
		if pano = s.tryLowRes(pos, leaf); pano != nil {
			synthesized = true
			rung = transport.RungLowRes
		}
	}
	if pano == nil {
		pano = s.env.Renderer.Panorama(s.env.Game.Scene.EyeAt(pos), leaf.Radius, math.Inf(1), nil)
	}
	encodeStart := time.Now()
	data = codec.Encode(pano, s.env.CRF)
	if synthesized {
		s.env.Renderer.ReleaseGray(pano) // encoded copy taken; recycle the raster
	} else {
		clean = pano // ownership passes to the caller (pano cache)
	}
	end := time.Now()
	renderMs = float64(encodeStart.Sub(renderStart)) / float64(time.Millisecond)
	encodeMs = float64(end.Sub(encodeStart)) / float64(time.Millisecond)
	return data, clean, rung, renderMs, encodeMs, nil
}

// wallMs is the server's trace clock: wall time in unix milliseconds.
// Request/reply stamps use it so the client can estimate the clock offset
// NTP-style from its own wall clock.
func wallMs() float64 { return float64(time.Now().UnixNano()) / 1e6 }

// Stats returns (frames served, frames rendered).
func (s *Server) Stats() (served, rendered int64) {
	return s.served.Load(), s.rendered.Load()
}

// Sessions returns the number of open sessions and a copy of the
// completed-session history (most recent last).
func (s *Server) Sessions() (active int, completed []SessionStats) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions), append([]SessionStats(nil), s.history...)
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	return s.ServeContext(context.Background(), ln)
}

// ServeContext accepts connections until the listener closes or the
// context is cancelled, then drains: it stops accepting, waits up to
// DrainTimeout for in-flight sessions to finish, and force-closes the
// rest. A cancelled context returns ctx.Err(); a closed listener returns
// nil. A listener-close failure during context-triggered shutdown is
// logged and joined into the returned error rather than swallowed.
func (s *Server) ServeContext(ctx context.Context, ln net.Listener) error {
	var closeMu sync.Mutex
	var closeErr error
	stop := context.AfterFunc(ctx, func() {
		err := ln.Close()
		closeMu.Lock()
		closeErr = err
		closeMu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		s.sessMu.Lock()
		s.sessions[conn] = struct{}{}
		s.sessMu.Unlock()
		s.obs.sessionsTotal.Inc()
		s.obs.sessionsActive.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := s.handle(conn)
			conn.Close()
			s.sessMu.Lock()
			delete(s.sessions, conn)
			s.history = append(s.history, st)
			if len(s.history) > maxSessionHistory {
				s.history = s.history[len(s.history)-maxSessionHistory:]
			}
			s.sessMu.Unlock()
			s.obs.sessionsActive.Add(-1)
			if st.Err != "" {
				s.obs.sessionErrors.Inc()
				s.logger().Warn("session ended with error",
					"remote", st.Remote, "player", st.Player,
					"duration", st.Duration.Round(time.Millisecond), "err", st.Err)
			} else {
				s.logger().Info("session closed",
					"remote", st.Remote, "player", st.Player,
					"frames", st.FramesServed, "fi_syncs", st.FISyncs,
					"duration", st.Duration.Round(time.Millisecond))
			}
		}()
	}

	s.drain(&wg)

	closeMu.Lock()
	lnCloseErr := closeErr
	closeMu.Unlock()
	if lnCloseErr != nil && !errors.Is(lnCloseErr, net.ErrClosed) {
		s.logger().Warn("listener close failed during drain", "err", lnCloseErr)
	} else {
		lnCloseErr = nil
	}
	if acceptErr != nil {
		return errors.Join(acceptErr, lnCloseErr)
	}
	if err := ctx.Err(); err != nil {
		return errors.Join(err, lnCloseErr)
	}
	return lnCloseErr
}

// drain waits for in-flight sessions, force-closing them after the
// configured timeout.
func (s *Server) drain(wg *sync.WaitGroup) {
	var killer *time.Timer
	if s.DrainTimeout > 0 {
		killer = time.AfterFunc(s.DrainTimeout, func() {
			s.sessMu.Lock()
			for conn := range s.sessions {
				conn.Close()
			}
			s.sessMu.Unlock()
		})
	}
	wg.Wait()
	if killer != nil {
		killer.Stop()
	}
}

// handle runs one client session and reports its stats. The terminal
// error, if any, lands in the returned stats.
func (s *Server) handle(nc net.Conn) SessionStats {
	st := SessionStats{Remote: nc.RemoteAddr().String(), StartedAt: time.Now()}
	err := s.session(nc, &st)
	st.Duration = time.Since(st.StartedAt)
	if err != nil {
		st.Err = err.Error()
	}
	return st
}

// recv reads the next message, applying the idle timeout.
func (s *Server) recv(nc net.Conn, c *transport.Conn) (transport.Message, error) {
	if s.IdleTimeout > 0 {
		if err := nc.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return transport.Message{}, err
		}
	}
	return c.Recv()
}

func (s *Server) session(nc net.Conn, st *SessionStats) error {
	c := transport.NewConn(nc)
	c.Instrument(s.tm)

	m, err := s.recv(nc, c)
	if err != nil {
		return err
	}
	if m.Type != transport.MsgHello {
		return fmt.Errorf("server: expected hello, got %d", m.Type)
	}
	hello, err := transport.DecodeHello(m.Payload)
	if err != nil {
		return err
	}
	st.Player, st.Game = hello.Player, hello.Game
	if hello.Game != s.env.Game.Spec.Name {
		return c.Send(errMsg(fmt.Sprintf("server hosts %q, client wants %q", s.env.Game.Spec.Name, hello.Game)))
	}
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: m.Payload}); err != nil {
		return err
	}

	// sr tracks which frames this client provably holds, the foundation of
	// the delta path. The protocol is synchronous request/reply on one
	// connection, so the arrival of any message proves the client read the
	// previous reply — the pending reference promotes to held before the
	// message is processed (in particular before evict notices are applied,
	// so an immediately evicted reference is promoted then dropped).
	sr := newSessionRefs()
	for {
		m, err := s.recv(nc, c)
		if err != nil {
			return err
		}
		sr.promote()
		switch m.Type {
		case transport.MsgFrameRequest:
			recvMs := wallMs()
			req, err := transport.DecodeFrameRequest(m.Payload)
			if err != nil {
				return err
			}
			traceID := obs.TraceID(req.Player, req.ReqID)
			data, kind, ref, rung, origin, stg, err := s.frameForSession(req.Point, req.DeadlineMs, traceID, sr)
			if err != nil {
				if err := c.Send(errMsg(err.Error())); err != nil {
					return err
				}
				continue
			}
			switch rung {
			case transport.RungReproject:
				s.obs.degradeReproj.Inc()
			case transport.RungLowRes:
				s.obs.degradeLowres.Inc()
				// RungStale is counted at the serve site in frameForSession.
			}
			s.served.Add(1)
			s.obs.framesServed.Inc()
			s.obs.bytesSent.Add(int64(len(data)))
			st.FramesServed++
			st.BytesSent += int64(len(data))
			sendMs := wallMs()
			reply := transport.EncodeFrameReply(transport.FrameReply{
				Point:        req.Point,
				ReqID:        req.ReqID,
				ClientSentMs: req.SentMs,
				RecvMs:       recvMs,
				SendMs:       sendMs,
				QueueMs:      stg.QueueMs,
				RenderMs:     stg.RenderMs,
				EncodeMs:     stg.EncodeMs,
				HopMs:        stg.HopMs,
				Kind:         kind,
				Rung:         rung,
				Origin:       origin,
				Ref:          ref,
				Data:         data,
			})
			if err := c.Send(transport.Message{Type: transport.MsgFrameReply, Payload: reply}); err != nil {
				return err
			}
			// Deadline accounting is against the reply's send stamp: network
			// return time belongs to the client's RTT model, not the server's
			// deadline compliance.
			if req.DeadlineMs > 0 {
				if late := sendMs - req.DeadlineMs; late > 0 {
					s.obs.deadlineMisses.Inc()
					s.obs.deadlineMissMs.Observe(late)
				} else {
					s.obs.deadlineMet.Inc()
				}
			}
			// SLO accounting: a frame spends error budget when it was slow
			// server-side, quality-degraded, or a failover re-render —
			// quality loss burns the budget exactly like lateness.
			if s.slo != nil {
				good := sendMs-recvMs <= s.slo.BudgetMs() &&
					rung == transport.RungExact &&
					origin != transport.OriginFailover
				s.slo.Observe(good)
			}
		case transport.MsgPeerFrameRequest:
			// Node-to-node hop: a peer that does not own req.Point proxies
			// its client's request here. Served from the local pipeline
			// with the peer hop disabled (allowPeer=false), so membership
			// disagreement can never chain hops; the reply is always
			// intra-coded — delta references are per client session and
			// do not cross nodes — and carries this node's stage timings
			// so they survive to the far client's trace.
			recvMs := wallMs()
			req, err := transport.DecodeFrameRequest(m.Payload)
			if err != nil {
				return err
			}
			// The proxy forwards its client's request context verbatim, so
			// the trace id computed here matches the one the proxy stamped
			// on its hop span — the two nodes' rings join on it.
			traceID := obs.TraceID(req.Player, req.ReqID)
			data, _, _, rung, _, stg, err := s.frameForStagedOpt(req.Point, req.DeadlineMs, traceID, false)
			if err != nil {
				if err := c.Send(errMsg(err.Error())); err != nil {
					return err
				}
				continue
			}
			s.obs.peerFramesServed.Inc()
			st.FramesServed++
			st.BytesSent += int64(len(data))
			sendMs := wallMs()
			if traceID != 0 {
				s.obs.trace.Record(&obs.FrameSpan{
					Player:    int(req.Player),
					TraceID:   traceID,
					Hop:       2,
					StartMs:   recvMs,
					DisplayMs: sendMs,
					FetchMs:   sendMs - recvMs,
					QueueMs:   stg.QueueMs,
					RenderMs:  stg.RenderMs,
					EncodeMs:  stg.EncodeMs,
					DegradeRung: uint8(rung),
				})
			}
			reply := transport.EncodeFrameReply(transport.FrameReply{
				Point:        req.Point,
				ReqID:        req.ReqID,
				ClientSentMs: req.SentMs,
				RecvMs:       recvMs,
				SendMs:       sendMs,
				QueueMs:      stg.QueueMs,
				RenderMs:     stg.RenderMs,
				EncodeMs:     stg.EncodeMs,
				Kind:         transport.FrameIntra,
				Rung:         rung,
				Origin:       transport.OriginLocal,
				Data:         data,
			})
			if err := c.Send(transport.Message{Type: transport.MsgPeerFrameReply, Payload: reply}); err != nil {
				return err
			}
		case transport.MsgEvictNotice:
			pts, err := transport.DecodeEvictNotice(m.Payload)
			if err != nil {
				return err
			}
			sr.drop(pts) // fire-and-forget: no reply
		case transport.MsgFISync:
			fst, _, err := fisync.DecodeState(m.Payload)
			if err != nil {
				return err
			}
			s.mu.Lock()
			s.hub.Update(fst)
			others := s.hub.Snapshot(fst.Player)
			s.mu.Unlock()
			s.obs.fiSyncs.Inc()
			st.FISyncs++
			var payload []byte
			for _, o := range others {
				payload = o.Encode(payload)
			}
			if err := c.Send(transport.Message{Type: transport.MsgFISync, Payload: payload}); err != nil {
				return err
			}
		case transport.MsgBye:
			return nil
		default:
			return fmt.Errorf("server: unexpected message %d", m.Type)
		}
	}
}

func errMsg(s string) transport.Message {
	return transport.Message{Type: transport.MsgError, Payload: []byte(s)}
}

// Client is the synchronous client side of the protocol.
type Client struct {
	conn   *transport.Conn
	closer func() error
	Player uint8
	reqID  uint32 // monotonic frame-request id (single-goroutine use)
}

// Dial connects and performs the hello exchange.
func Dial(addr, game string, player uint8) (*Client, error) {
	nc, err := transport.Dial(addr, 0)
	if err != nil {
		return nil, err
	}
	c := transport.NewConn(nc)
	hello := transport.EncodeHello(transport.Hello{Player: player, Game: game})
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: hello}); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if m.Type == transport.MsgError {
		nc.Close()
		return nil, fmt.Errorf("server rejected session: %s", m.Payload)
	}
	if m.Type != transport.MsgHello {
		nc.Close()
		return nil, fmt.Errorf("unexpected hello reply %d", m.Type)
	}
	return &Client{conn: c, closer: nc.Close, Player: player}, nil
}

// Instrument attaches per-message-type transport metrics to the client's
// connection (nil detaches). Call before concurrent use.
func (c *Client) Instrument(m *transport.Metrics) { c.conn.Instrument(m) }

// ServerError is an application-level rejection delivered as MsgError on
// a healthy connection (e.g. admission-control sheds). Unlike transport
// errors, the session remains usable and the caller may retry.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server error: " + e.Msg }

// Fetch requests one far-BE frame.
func (c *Client) Fetch(pt geom.GridPoint) ([]byte, error) {
	reply, _, _, err := c.FetchTraced(pt)
	return reply.Data, err
}

// FetchTraced requests one far-BE frame and returns the full reply with
// its server-side trace context, plus the client-side wall-clock stamps
// (unix milliseconds) bracketing the round trip: sentMs just before the
// request hit the socket (the NTP t0) and doneMs just after the reply was
// decoded (t3). Not safe for concurrent use — like Fetch, it assumes the
// connection carries one request at a time.
func (c *Client) FetchTraced(pt geom.GridPoint) (reply transport.FrameReply, sentMs, doneMs float64, err error) {
	return c.FetchWithDeadline(pt, 0)
}

// FetchWithDeadline is FetchTraced carrying the request's absolute
// deadline in *server* wall-clock milliseconds (0: none). The server
// prioritises, degrades, or sheds against it; a shed surfaces as a
// *ServerError with doneMs stamped, so callers can separate rejection
// latency from success latency.
func (c *Client) FetchWithDeadline(pt geom.GridPoint, deadlineMs float64) (reply transport.FrameReply, sentMs, doneMs float64, err error) {
	c.reqID++
	sentMs = wallMs()
	req := transport.EncodeFrameRequest(transport.FrameRequest{
		Player:     c.Player,
		Point:      pt,
		ReqID:      c.reqID,
		SentMs:     sentMs,
		DeadlineMs: deadlineMs,
	})
	if err = c.conn.Send(transport.Message{Type: transport.MsgFrameRequest, Payload: req}); err != nil {
		return transport.FrameReply{}, 0, 0, err
	}
	m, err := c.conn.Recv()
	if err != nil {
		return transport.FrameReply{}, 0, 0, err
	}
	if m.Type == transport.MsgError {
		return transport.FrameReply{}, sentMs, wallMs(), &ServerError{Msg: string(m.Payload)}
	}
	reply, err = transport.DecodeFrameReply(m.Payload)
	if err != nil {
		return transport.FrameReply{}, 0, 0, err
	}
	doneMs = wallMs()
	return reply, sentMs, doneMs, nil
}

// EvictNotice tells the server this client dropped the given grid-point
// frames from its reference cache, so the server stops delta-coding
// against them. Fire-and-forget (the server sends no reply); an empty
// list is a no-op. Like Fetch, not safe for concurrent use.
func (c *Client) EvictNotice(pts []geom.GridPoint) error {
	if len(pts) == 0 {
		return nil
	}
	return c.conn.Send(transport.Message{
		Type:    transport.MsgEvictNotice,
		Payload: transport.EncodeEvictNotice(pts),
	})
}

// SyncFI uploads this player's FI state and returns the other players'.
func (c *Client) SyncFI(st fisync.State) ([]fisync.State, error) {
	if err := c.conn.Send(transport.Message{Type: transport.MsgFISync, Payload: st.Encode(nil)}); err != nil {
		return nil, err
	}
	m, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type != transport.MsgFISync {
		return nil, fmt.Errorf("unexpected FI reply %d", m.Type)
	}
	var out []fisync.State
	buf := m.Payload
	for len(buf) > 0 {
		var s fisync.State
		s, buf, err = fisync.DecodeState(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Close ends the session with MsgBye so the server records a clean
// teardown.
func (c *Client) Close() error {
	_ = c.conn.Send(transport.Message{Type: transport.MsgBye})
	return c.closer()
}
