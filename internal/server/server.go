// Package server implements the Coterie frame server over real TCP: it
// pre-renders and pre-encodes panoramic far-BE frames for grid points
// (memoised on first request — the paper renders offline; lazy
// memoisation computes the identical frames on demand) and synchronises
// foreground interactions between connected clients (§5.1).
package server

import (
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"sync"

	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/transport"
)

// Server serves far-BE frames and FI sync for one prepared game
// environment. It is safe for concurrent connections.
type Server struct {
	env *core.Env

	mu     sync.Mutex
	frames map[geom.GridPoint][]byte
	hub    *fisync.Hub

	// Stats
	served   int64
	rendered int64
}

// New creates a server for the environment.
func New(env *core.Env) *Server {
	return &Server{
		env:    env,
		frames: make(map[geom.GridPoint][]byte),
		hub:    fisync.NewHub(),
	}
}

// FrameFor returns the encoded far-BE panorama for a grid point,
// rendering and encoding it on first use.
func (s *Server) FrameFor(pt geom.GridPoint) ([]byte, error) {
	data, _, err := s.frameFor(pt)
	return data, err
}

// frameFor additionally reports whether this call rendered the frame.
func (s *Server) frameFor(pt geom.GridPoint) ([]byte, bool, error) {
	if !s.env.Game.Scene.Grid.In(pt) {
		return nil, false, fmt.Errorf("server: grid point %v outside world", pt)
	}
	s.mu.Lock()
	if data, ok := s.frames[pt]; ok {
		s.mu.Unlock()
		return data, false, nil
	}
	s.mu.Unlock()

	pos := s.env.Game.Scene.Grid.Pos(pt)
	leaf := s.env.Map.LeafAt(pos)
	if leaf == nil {
		return nil, false, fmt.Errorf("server: no leaf region at %v", pos)
	}
	pano := s.env.Renderer.Panorama(s.env.Game.Scene.EyeAt(pos), leaf.Radius, math.Inf(1), nil)
	data := codec.Encode(pano, s.env.CRF)

	s.mu.Lock()
	// A concurrent request may have rendered the same point; keep the
	// first result so callers always share one buffer.
	if prior, ok := s.frames[pt]; ok {
		s.mu.Unlock()
		return prior, false, nil
	}
	s.frames[pt] = data
	s.rendered++
	s.mu.Unlock()
	return data, true, nil
}

// Stats returns (frames served, frames rendered).
func (s *Server) Stats() (served, rendered int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.rendered
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := s.handle(conn); err != nil {
				log.Printf("coterie-server: session ended: %v", err)
			}
		}()
	}
}

// handle runs one client session.
func (s *Server) handle(nc net.Conn) error {
	defer nc.Close()
	c := transport.NewConn(nc)

	m, err := c.Recv()
	if err != nil {
		return err
	}
	if m.Type != transport.MsgHello {
		return fmt.Errorf("server: expected hello, got %d", m.Type)
	}
	hello, err := transport.DecodeHello(m.Payload)
	if err != nil {
		return err
	}
	if hello.Game != s.env.Game.Spec.Name {
		return c.Send(errMsg(fmt.Sprintf("server hosts %q, client wants %q", s.env.Game.Spec.Name, hello.Game)))
	}
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: m.Payload}); err != nil {
		return err
	}

	for {
		m, err := c.Recv()
		if err != nil {
			return err
		}
		switch m.Type {
		case transport.MsgFrameRequest:
			req, err := transport.DecodeFrameRequest(m.Payload)
			if err != nil {
				return err
			}
			data, err := s.FrameFor(req.Point)
			if err != nil {
				if err := c.Send(errMsg(err.Error())); err != nil {
					return err
				}
				continue
			}
			s.mu.Lock()
			s.served++
			s.mu.Unlock()
			reply := transport.EncodeFrameReply(transport.FrameReply{Point: req.Point, Data: data})
			if err := c.Send(transport.Message{Type: transport.MsgFrameReply, Payload: reply}); err != nil {
				return err
			}
		case transport.MsgFISync:
			st, _, err := fisync.DecodeState(m.Payload)
			if err != nil {
				return err
			}
			s.mu.Lock()
			s.hub.Update(st)
			others := s.hub.Snapshot(st.Player)
			s.mu.Unlock()
			var payload []byte
			for _, o := range others {
				payload = o.Encode(payload)
			}
			if err := c.Send(transport.Message{Type: transport.MsgFISync, Payload: payload}); err != nil {
				return err
			}
		case transport.MsgBye:
			return nil
		default:
			return fmt.Errorf("server: unexpected message %d", m.Type)
		}
	}
}

func errMsg(s string) transport.Message {
	return transport.Message{Type: transport.MsgError, Payload: []byte(s)}
}

// Client is the synchronous client side of the protocol.
type Client struct {
	conn   *transport.Conn
	closer func() error
	Player uint8
}

// Dial connects and performs the hello exchange.
func Dial(addr, game string, player uint8) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := transport.NewConn(nc)
	hello := transport.EncodeHello(transport.Hello{Player: player, Game: game})
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: hello}); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if m.Type == transport.MsgError {
		nc.Close()
		return nil, fmt.Errorf("server rejected session: %s", m.Payload)
	}
	if m.Type != transport.MsgHello {
		nc.Close()
		return nil, fmt.Errorf("unexpected hello reply %d", m.Type)
	}
	return &Client{conn: c, closer: nc.Close, Player: player}, nil
}

// Fetch requests one far-BE frame.
func (c *Client) Fetch(pt geom.GridPoint) ([]byte, error) {
	req := transport.EncodeFrameRequest(transport.FrameRequest{Player: c.Player, Point: pt})
	if err := c.conn.Send(transport.Message{Type: transport.MsgFrameRequest, Payload: req}); err != nil {
		return nil, err
	}
	m, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type == transport.MsgError {
		return nil, fmt.Errorf("server error: %s", m.Payload)
	}
	reply, err := transport.DecodeFrameReply(m.Payload)
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// SyncFI uploads this player's FI state and returns the other players'.
func (c *Client) SyncFI(st fisync.State) ([]fisync.State, error) {
	if err := c.conn.Send(transport.Message{Type: transport.MsgFISync, Payload: st.Encode(nil)}); err != nil {
		return nil, err
	}
	m, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type != transport.MsgFISync {
		return nil, fmt.Errorf("unexpected FI reply %d", m.Type)
	}
	var out []fisync.State
	buf := m.Payload
	for len(buf) > 0 {
		var s fisync.State
		s, buf, err = fisync.DecodeState(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Close ends the session.
func (c *Client) Close() error {
	_ = c.conn.Send(transport.Message{Type: transport.MsgBye})
	return c.closer()
}
