package server

import (
	"net"
	"testing"
	"time"

	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/trace"
)

// TestUDPChannelCloseMidFIRound is the goroutine-leak regression test:
// a client whose FI round is in flight against a silent server must shut
// down cleanly when closed — the pending Sync returns, and Close joins
// the receive goroutine (whose reads are deadline-bounded per iteration)
// instead of leaking it against a socket nobody will ever write to.
func TestUDPChannelCloseMidFIRound(t *testing.T) {
	// A UDP socket that swallows everything: reads and drops.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := pc.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	ch, err := DialUDP(pc.LocalAddr().String(), 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}

	syncDone := make(chan error, 1)
	go func() {
		_, err := ch.Sync(fisync.State{Player: 1}, 5*time.Second)
		syncDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the round get in flight

	closed := make(chan struct{})
	go func() {
		ch.Close()
		close(closed)
	}()

	select {
	case err := <-syncDone:
		if err == nil {
			t.Fatal("Sync returned nil against a silent server")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Sync still blocked after Close: cancel mid-FI-round leaked")
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not join the receive goroutine")
	}
	// Close is idempotent.
	if err := ch.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestLoopbackUDPByteIdentity is the acceptance e2e for the datagram
// frame path: the same trace replayed over the TCP arm and the UDP arm
// (push on, no loss) against warmed servers must put byte-identical
// frames in front of the display pipeline for every grid point both arms
// visited — and the UDP arm must actually exercise the new path (frames
// fetched over UDP, pushes reassembled). Delta coding and reprojection
// are off so both arms serve canonical store bytes, making per-point
// byte equality exact rather than merely perceptual.
func TestLoopbackUDPByteIdentity(t *testing.T) {
	env := poolEnv(t)
	tr := trace.Generate(env.Game, 2, 7)

	type arm struct {
		name  string
		cfg   LiveConfig
		seen  map[geom.GridPoint][]byte
		live  *LiveReport
		srvRg *obs.Registry
	}
	arms := []*arm{
		{name: "tcp", cfg: LiveConfig{Speed: 4, DecodeFrames: true, IdleTimeout: 10 * time.Second}},
		{name: "udp", cfg: LiveConfig{Speed: 4, DecodeFrames: true, IdleTimeout: 10 * time.Second,
			UDPFrames: true, Push: true}},
	}
	for _, a := range arms {
		srv, addr := startLiveServer(t)
		srv.SetDeltaEnabled(false)
		srv.SetReprojectEnabled(false)
		srv.SetPushEnabled(true)
		a.srvRg = obs.NewRegistry()
		srv.Instrument(a.srvRg)
		warmServer(t, srv, tr)

		a.seen = make(map[geom.GridPoint][]byte)
		seen := a.seen
		a.cfg.FrameSink = func(pt geom.GridPoint, data []byte, pushed bool) {
			if prev, ok := seen[pt]; ok {
				if !bytesEqual(prev, data) {
					t.Errorf("point %v served two different byte strings within one arm", pt)
				}
				return
			}
			seen[pt] = append([]byte(nil), data...)
		}
		live, err := RunLive(env, addr, tr, 0, a.cfg)
		if err != nil {
			t.Fatalf("%s arm: %v", a.name, err)
		}
		if live.Metrics.Frames == 0 || len(a.seen) == 0 {
			t.Fatalf("%s arm displayed nothing: %+v", a.name, live)
		}
		a.live = live
	}

	tcp, udp := arms[0], arms[1]
	common := 0
	for pt, want := range tcp.seen {
		got, ok := udp.seen[pt]
		if !ok {
			continue
		}
		common++
		if !bytesEqual(got, want) {
			t.Errorf("point %v: UDP arm bytes (%d) differ from TCP arm (%d)", pt, len(got), len(want))
		}
	}
	if common == 0 {
		t.Fatal("the two arms shared no grid points; byte identity asserted vacuously")
	}

	// The UDP arm must have used the datagram path, not just survived it.
	if udp.live.UDP == nil {
		t.Fatal("UDP arm report carries no datagram stats")
	}
	if udp.live.UDPFetches == 0 {
		t.Error("UDP arm satisfied no fetches over UDP")
	}
	if udp.live.UDP.PushedRecv == 0 {
		t.Error("server pushed no frames to a subscribed walking client")
	}
	if c := udp.live.UDP.Reassembly.Corrupt; c != 0 {
		t.Errorf("%d corrupt frames on a lossless loopback", c)
	}
	if n := udp.srvRg.Counter("server.udp.push_frames").Value(); n == 0 {
		t.Error("server counted no pushes")
	}
}

// TestLoopbackUDPUnderLoss injects 1% receive-side datagram loss into
// the UDP arm: the FEC/NACK machinery must deliver zero corrupt frames,
// the session must complete, and every frame that reached the pipeline
// must still be byte-identical to the warmed store's canonical bytes.
func TestLoopbackUDPUnderLoss(t *testing.T) {
	env := poolEnv(t)
	tr := trace.Generate(env.Game, 2, 7)
	srv, addr := startLiveServer(t)
	srv.SetDeltaEnabled(false)
	srv.SetReprojectEnabled(false)
	srv.SetPushEnabled(true)
	warmServer(t, srv, tr)

	seen := map[geom.GridPoint][]byte{}
	live, err := RunLive(env, addr, tr, 0, LiveConfig{
		Speed:        4,
		DecodeFrames: true,
		IdleTimeout:  10 * time.Second,
		UDPFrames:    true,
		Push:         true,
		LossRate:     0.01,
		LossSeed:     1,
		FrameSink: func(pt geom.GridPoint, data []byte, pushed bool) {
			if prev, ok := seen[pt]; ok && !bytesEqual(prev, data) {
				t.Errorf("point %v: differing bytes under loss", pt)
			}
			seen[pt] = append([]byte(nil), data...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Metrics.Frames == 0 {
		t.Fatal("session displayed no frames under 1% loss")
	}
	if live.UDP == nil {
		t.Fatal("no UDP stats")
	}
	if live.UDP.Reassembly.Corrupt != 0 {
		t.Fatalf("%d corrupt frames delivered under loss; CRC gate failed", live.UDP.Reassembly.Corrupt)
	}
	// Every displayed point matches the server's canonical store bytes.
	for pt, data := range seen {
		want, err := srv.FrameFor(pt)
		if err != nil {
			t.Fatalf("server frame %v: %v", pt, err)
		}
		if !bytesEqual(data, want) {
			t.Errorf("point %v: displayed bytes differ from store bytes under loss", pt)
		}
	}
}

// TestServeFIUDPLegacyClientUnaffected pins wire compatibility: an
// unsubscribed FIClient (the pre-datagram-path client) must keep getting
// raw concatenated state replies from a server that also speaks the
// frame path.
func TestServeFIUDPLegacyClientUnaffected(t *testing.T) {
	srv, addr := startLiveServer(t)
	srv.SetPushEnabled(true)

	// Another player's state, via a subscribed channel.
	ch, err := DialUDP(addr, 2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if _, err := ch.Sync(fisync.State{Player: 2, Seq: 1, Pos: geom.V2(1, 1)}, time.Second); err != nil {
		t.Fatal(err)
	}

	legacy, err := DialFI(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	states, err := legacy.Sync(fisync.State{Player: 1, Seq: 1, Pos: geom.V2(2, 2)}, time.Second)
	if err != nil {
		t.Fatalf("legacy FI sync against a frame-path server: %v", err)
	}
	if len(states) != 1 || states[0].Player != 2 {
		t.Fatalf("legacy client got states %+v, want player 2's", states)
	}
}
