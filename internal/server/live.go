package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/cache"
	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/netsim"
	"coterie/internal/obs"
	"coterie/internal/prefetch"
	"coterie/internal/runtime"
	"coterie/internal/trace"
	"coterie/internal/transport"
)

// This file is the live backend of the shared client runtime: the same
// pipeline that drives the deterministic testbed (internal/core) runs here
// over real sockets — frames over TCP (liveSource), FI sync over UDP
// (liveFISync), and a WallClock in place of the simulator. RunLive is the
// entry point cmd/coterie-client and the loopback e2e test share.

// LiveConfig tunes one live client session.
type LiveConfig struct {
	// Speed is the replay-speed multiplier; ≤0 means real time.
	Speed float64
	// CacheBytes caps the frame cache; 0 means 512 MB as in the testbed.
	CacheBytes int64
	// Prefetch tunes the lookahead prefetcher; zero value uses defaults.
	Prefetch prefetch.Config
	// FITimeout bounds each UDP FI round trip; 0 means 250 ms. A lost
	// datagram counts as a drop and the next frame syncs again.
	FITimeout time.Duration
	// DecodeFrames validates every fetched frame by decoding it. Decoded
	// intra frames are retained in a reference store so the server can
	// serve deltas; decoded delta frames are reconstructed against it.
	DecodeFrames bool
	// RefBytes caps the decoded-reference store used by the delta path;
	// 0 means 32 MB. Only meaningful with DecodeFrames. Evictions are
	// reported to the server before the next request, so a tiny budget
	// degrades to all-intra service rather than decode failures.
	RefBytes int64
	// IdleTimeout bounds how long the clock waits on a wedged fetch
	// before giving up; 0 means the WallClock default.
	IdleTimeout time.Duration
	// Obs, when non-nil, receives the session's metrics and frame traces:
	// the shared pipeline instruments plus live-specific ones (client
	// transport byte counts, FI sync drops). nil disables instrumentation.
	Obs *obs.Registry

	// UDPFrames enables the datagram frame path: FI sync and frames share
	// one UDP socket, fetches try UDP first (bounded by UDPBudget) and
	// fall back to TCP, and reassembled pushes fill the frame cache ahead
	// of the pipeline's lookups.
	UDPFrames bool
	// Push opts this session into trajectory-driven server push
	// (meaningful only with UDPFrames; the server must run with -push).
	Push bool
	// UDPBudget bounds one UDP fetch attempt before the TCP fallback;
	// 0 means 50 ms.
	UDPBudget time.Duration
	// LossRate injects receive-side datagram loss with a seeded generator
	// (tests and A/B runs; loopback sockets do not lose on their own).
	LossRate float64
	LossSeed int64
	// FrameSink, when set, observes every frame entering the display
	// pipeline: fetch completions (pushed=false) and absorbed server
	// pushes (pushed=true). Runs on the clock goroutine; the byte-identity
	// e2e captures frames here.
	FrameSink func(pt geom.GridPoint, data []byte, pushed bool)
}

// LiveReport aggregates one live session.
type LiveReport struct {
	Metrics  runtime.PlayerMetrics
	Cache    cache.Stats
	Prefetch prefetch.Stats
	// Fetches and BytesFetched count far-BE transfers from the server.
	Fetches      int64
	BytesFetched int64
	// FetchLatenciesMs are per-fetch wall-clock round trips, sorted.
	FetchLatenciesMs []float64
	// FIDrops counts FI sync round trips lost to the timeout.
	FIDrops int64
	// Wall is the real elapsed time of the session.
	Wall time.Duration
	// UDP reports the datagram frame path (nil unless UDPFrames was on):
	// push/NACK/reassembly accounting from the channel, plus the
	// UDP-vs-TCP fetch split.
	UDP          *UDPStats
	UDPFetches   int64
	TCPFallbacks int64
}

// LatencyQuantile returns the q-quantile fetch latency in milliseconds.
func (r *LiveReport) LatencyQuantile(q float64) float64 {
	l := r.FetchLatenciesMs
	if len(l) == 0 {
		return 0
	}
	i := int(q * float64(len(l)))
	if i >= len(l) {
		i = len(l) - 1
	}
	return l[i]
}

// RunLive replays a movement trace through the shared runtime pipeline
// against a live server: Coterie's far-BE prefetch path over TCP with the
// similarity cache, FI sync over UDP. The returned report is valid even
// when an error cut the session short.
func RunLive(env *core.Env, addr string, tr *trace.Trace, player int, cfg LiveConfig) (*LiveReport, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 512 << 20
	}
	if cfg.Prefetch.LookaheadSec == 0 {
		cfg.Prefetch = prefetch.DefaultConfig()
	}
	if cfg.FITimeout == 0 {
		cfg.FITimeout = 250 * time.Millisecond
	}

	cl, err := Dial(addr, env.Game.Spec.Name, uint8(player))
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	cl.Instrument(transport.NewMetrics(cfg.Obs, "client.transport"))
	// The FI syncer: the legacy FI-only socket, or the multiplexed
	// datagram channel when the UDP frame path is on.
	var fi fiSyncer
	var udp *UDPChannel
	if cfg.UDPFrames {
		udp, err = DialUDP(addr, uint8(player), cfg.Push, cfg.Obs)
		if err != nil {
			return nil, fmt.Errorf("udp frames: %w", err)
		}
		if cfg.LossRate > 0 {
			udp.SetImpairer(netsim.NewImpairer(cfg.LossRate, cfg.LossSeed))
		}
		fi = udp
	} else {
		fi, err = DialFI(addr)
		if err != nil {
			return nil, fmt.Errorf("fi sync: %w", err)
		}
	}
	defer fi.Close()

	clock := runtime.NewWallClock(cfg.Speed)
	if cfg.IdleTimeout > 0 {
		clock.SetIdleTimeout(cfg.IdleTimeout)
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	src := &liveSource{clock: clock, cl: cl, decode: cfg.DecodeFrames, lat: &runtime.LatencyAcc{}, speed: speed}
	if udp != nil {
		src.udp = udp
		src.udpBudget = cfg.UDPBudget
		if src.udpBudget == 0 {
			src.udpBudget = 50 * time.Millisecond
		}
	}
	src.sink = cfg.FrameSink
	if cfg.DecodeFrames {
		refBytes := cfg.RefBytes
		if refBytes == 0 {
			refBytes = 32 << 20
		}
		// The reference store's evictions queue notices; both are only
		// touched under connMu (Put happens inside fetchOnce, and the
		// queue drains there before the next request goes out).
		src.refs = cache.NewRefStore(refBytes, func(pt geom.GridPoint, g *img.Gray, evicted bool) {
			codec.ReleaseGray(g)
			if evicted {
				src.pendingEvicts = append(src.pendingEvicts, pt)
			}
		})
	}
	if cfg.Obs != nil {
		src.obsOffset = cfg.Obs.Gauge("client.clock_offset_us")
	}
	fiSync := &liveFISync{clock: clock, fi: fi, timeout: cfg.FITimeout}
	if cfg.Obs != nil {
		fiSync.obsSyncs = cfg.Obs.Counter("fi.syncs")
		fiSync.obsDrops = cfg.Obs.Counter("fi.drops")
	}

	ccfg, _ := cache.Version(3) // intra-player similar frames, as in the testbed
	ccfg.CapacityBytes = cfg.CacheBytes
	frameCache := cache.New(ccfg)
	meta := env.MetaFor()
	pf := prefetch.New(env.Game.Scene.Grid, meta, frameCache, src, player, cfg.Prefetch)
	if udp != nil {
		// Server pushes land in the frame cache (via the clock, which owns
		// it) so the pipeline's next lookup hits without a fetch. The
		// reassembler already CRC-verified the bytes; marking the entry
		// Pushed makes the consumption visible as cache.pushed_hits.
		grid := env.Game.Scene.Grid
		sink := cfg.FrameSink
		udp.OnFrame = func(pt geom.GridPoint, data []byte, pushed bool) {
			if !pushed {
				return // late fetch replies stay in the channel's store
			}
			clock.IOStarted()
			clock.Post(func() {
				leaf, sig, _ := meta(pt)
				frameCache.Insert(cache.Entry{
					Point:   pt,
					Pos:     grid.Pos(pt),
					LeafID:  leaf,
					NearSig: sig,
					Data:    data,
					Size:    len(data),
					Owner:   player,
					Pushed:  true,
				})
				if sink != nil {
					sink(pt, data, true)
				}
			})
		}
	}

	endMs := tr.Seconds() * 1000
	scene := env.Game.Scene
	q := scene.NewQuery()
	rcfg := runtime.Config{
		System:         runtime.Coterie,
		Device:         env.Device,
		Grid:           scene.Grid,
		EndMs:          endMs,
		TotalTriangles: scene.TotalTriangles(),
		LODFactor:      env.Game.Spec.LODFactor(),
		RadiusAt:       env.Map.RadiusAt,
		TrianglesWithin: func(pos geom.Vec2, radius float64) int {
			return scene.TrianglesWithin(q, pos, radius)
		},
	}
	client := runtime.NewClient(player, rcfg, runtime.Deps{
		Clock:      clock,
		FI:         fiSync,
		Trace:      tr,
		Source:     src,
		Cache:      frameCache,
		Prefetcher: pf,
		Net:        src,
		Latencies:  src.lat,
		Obs:        cfg.Obs,
	})

	start := time.Now()
	client.Start()
	runErr := clock.Run(endMs)

	report := &LiveReport{
		Metrics:          client.Metrics(),
		Cache:            frameCache.Stats(),
		Prefetch:         pf.Stats(),
		Fetches:          src.fetches.Load(),
		BytesFetched:     src.bytes.Load(),
		FetchLatenciesMs: src.latencies(),
		FIDrops:          fiSync.drops,
		Wall:             time.Since(start),
	}
	if udp != nil {
		st := udp.Stats()
		report.UDP = &st
		report.UDPFetches = src.udpHits.Load()
		report.TCPFallbacks = src.tcpFalls.Load()
	}
	sort.Float64s(report.FetchLatenciesMs)
	if err := src.firstError(); err != nil {
		return report, err
	}
	return report, runErr
}

// liveSource fetches far-BE frames over the TCP protocol. It implements
// both runtime.FrameSource (and prefetch.Source) and runtime.NetMonitor.
// The protocol is synchronous request/reply on one connection, so fetches
// serialise on a mutex; the pipeline's MaxInflight bounds queueing.
type liveSource struct {
	clock  *runtime.WallClock
	cl     *Client
	decode bool
	lat    *runtime.LatencyAcc
	// speed converts wall-clock durations to virtual session milliseconds
	// (the WallClock multiplier; 1 in real time).
	speed float64

	inflight atomic.Int64
	fetches  atomic.Int64
	bytes    atomic.Int64

	// udp, when set, is tried before the TCP round trip: a pushed or
	// UDP-replied frame within udpBudget skips the connection entirely.
	udp       *UDPChannel
	udpBudget time.Duration
	udpHits   atomic.Int64
	tcpFalls  atomic.Int64
	// sink observes frames entering the pipeline (clock goroutine).
	sink func(pt geom.GridPoint, data []byte, pushed bool)

	// connMu serialises the request/reply connection and guards err, refs
	// and pendingEvicts.
	connMu sync.Mutex
	err    error
	// refs retains decoded intra frames as delta references (nil when
	// frames are not decoded). pendingEvicts queues its evictions for the
	// notice that precedes the next request.
	refs          *cache.RefStore
	pendingEvicts []geom.GridPoint

	// wallMs, last, bestNetMs and offsetMs are only touched on the clock
	// goroutine (Post callbacks and the post-run report, which share
	// RunLive's goroutine).
	wallMs []float64
	// nextDeadlineMs is the virtual session time the next Fetch's reply is
	// needed by (runtime.DeadlineSetter), consumed by that Fetch; 0 means
	// none armed. Clock goroutine only, like the offset fields it is
	// converted against.
	nextDeadlineMs float64
	// last is the stage decomposition of the most recent completed fetch
	// (runtime.StageReporter). bestNetMs/offsetMs hold the NTP-style clock
	// offset estimate, min-RTT filtered: the sample whose network-only
	// round trip was shortest bounds the offset tightest.
	last       obs.FetchStages
	haveOffset bool
	bestNetMs  float64
	offsetMs   float64
	obsOffset  *obs.Gauge
}

// Fetch implements runtime.FrameSource: the blocking round trip runs on
// its own goroutine and re-enters the pipeline through the clock. On
// error the completion still fires (size 0) so the Eq. 2 join never
// wedges; the error surfaces through firstError after the run.
func (s *liveSource) Fetch(player int, pt geom.GridPoint, done func(data []byte, size int, startMs, endMs float64)) {
	startVirtual := s.clock.Now()
	deadlineMs := s.consumeDeadline(startVirtual)
	s.clock.IOStarted()
	s.inflight.Add(1)
	go func() {
		t0 := time.Now()
		var (
			reply          transport.FrameReply
			sentMs, doneMs float64
			err            error
		)
		udpHit := false
		if s.udp != nil {
			if data, ok := s.udp.Fetch(pt, s.udpBudget); ok {
				// The reassembler CRC-verified the payload; with decode
				// validation on, a frame that fails to decode falls back
				// to TCP rather than poisoning the pipeline. UDP frames
				// are always intra-coded store bytes, and they never join
				// the delta reference store: the server does not track
				// them as client-held references.
				if !s.decode || s.validateUDPFrame(pt, data) == nil {
					reply = transport.FrameReply{Point: pt, Data: data}
					udpHit = true
				}
			}
		}
		if !udpHit {
			reply, sentMs, doneMs, err = s.fetchOnce(pt, deadlineMs)
		}
		wall := time.Since(t0)
		s.inflight.Add(-1)
		s.clock.Post(func() {
			end := s.clock.Now()
			if err != nil {
				s.last = obs.FetchStages{}
				done(nil, 0, startVirtual, end)
				return
			}
			data := reply.Data
			s.fetches.Add(1)
			s.bytes.Add(int64(len(data)))
			s.wallMs = append(s.wallMs, float64(wall.Microseconds())/1000)
			s.lat.Add(end - startVirtual)
			if udpHit {
				s.udpHits.Add(1)
				// No server timestamps on the datagram path: the whole
				// round trip is network time, and the NTP offset estimate
				// is left to TCP fetches (reply.RecvMs > 0 guards it).
				rtt := end - startVirtual
				s.last = obs.FetchStages{NetMs: rtt, RTTMs: rtt, OffsetMs: s.offsetMs, Valid: true}
			} else {
				if s.udp != nil {
					s.tcpFalls.Add(1)
				}
				s.recordStages(reply, sentMs, doneMs, end-startVirtual)
			}
			done(data, len(data), startVirtual, end)
			if s.sink != nil {
				s.sink(pt, data, false)
			}
		})
	}()
}

// validateUDPFrame decodes a UDP-fetched frame (always intra-coded) to
// validate it; the raster is released immediately and never becomes a
// delta reference.
func (s *liveSource) validateUDPFrame(pt geom.GridPoint, data []byte) error {
	g, err := codec.Decode(data)
	if err != nil {
		return fmt.Errorf("udp frame %v does not decode: %w", pt, err)
	}
	codec.ReleaseGray(g)
	return nil
}

// recordStages derives the trace-context v2 stage decomposition of one
// completed fetch (clock goroutine only). Server-side wall durations are
// converted to virtual session milliseconds via the replay speed; NetMs
// absorbs the remainder of the pipeline-visible round trip so the identity
// NetMs+HopMs+QueueMs+RenderMs+EncodeMs == RTTMs holds exactly (HopMs is
// zero unless the contact node proxied the frame from its cluster owner).
// The clock offset is estimated NTP-style from the request/reply stamps,
// keeping the estimate from the sample with the smallest network-only
// round trip.
func (s *liveSource) recordStages(reply transport.FrameReply, sentMs, doneMs, rttVirtual float64) {
	queue := reply.QueueMs * s.speed
	render := reply.RenderMs * s.speed
	encode := reply.EncodeMs * s.speed
	hop := reply.HopMs * s.speed
	if sum := queue + render + encode + hop; sum > rttVirtual && sum > 0 {
		// Clock skew between the two hosts can make the server-side span
		// nominally exceed the measured round trip; scale it down so the
		// decomposition still sums to the RTT.
		f := rttVirtual / sum
		queue, render, encode, hop = queue*f, render*f, encode*f, hop*f
	}
	s.last = obs.FetchStages{
		NetMs:       rttVirtual - queue - render - encode - hop,
		HopMs:       hop,
		QueueMs:     queue,
		RenderMs:    render,
		EncodeMs:    encode,
		RTTMs:       rttVirtual,
		TraceID:     obs.TraceID(s.cl.Player, reply.ReqID),
		DeltaFrame:  reply.Kind == transport.FrameDelta,
		DegradeRung: uint8(reply.Rung),
		Origin:      uint8(reply.Origin),
		Valid:       true,
	}
	// NTP offset: t0=sentMs (client), t1=RecvMs, t2=SendMs (server),
	// t3=doneMs (client). The network-only RTT excludes server hold time.
	netRTT := (doneMs - sentMs) - (reply.SendMs - reply.RecvMs)
	if reply.RecvMs > 0 && netRTT >= 0 && (!s.haveOffset || netRTT < s.bestNetMs) {
		s.haveOffset = true
		s.bestNetMs = netRTT
		s.offsetMs = ((reply.RecvMs - sentMs) + (reply.SendMs - doneMs)) / 2
		s.obsOffset.Set(int64(s.offsetMs * 1000))
	}
	s.last.OffsetMs = s.offsetMs
}

// LastFetchStages implements runtime.StageReporter.
func (s *liveSource) LastFetchStages() obs.FetchStages { return s.last }

// SetFetchDeadline implements runtime.DeadlineSetter: the next Fetch's
// reply is needed by this virtual session time. Clock goroutine only.
func (s *liveSource) SetFetchDeadline(virtualMs float64) { s.nextDeadlineMs = virtualMs }

// consumeDeadline converts the armed virtual deadline into the server's
// absolute wall clock (unix ms) and clears it. The remaining virtual
// budget shrinks to a wall budget through the replay speed, and the
// NTP-estimated clock offset re-anchors it to the server's epoch; before
// the first offset estimate the deadline is sent on the client's clock,
// which loopback (offset ≈ 0) and same-host runs tolerate. Clock
// goroutine only.
func (s *liveSource) consumeDeadline(nowVirtual float64) float64 {
	v := s.nextDeadlineMs
	if v <= 0 {
		return 0
	}
	s.nextDeadlineMs = 0
	return float64(time.Now().UnixNano())/1e6 + (v-nowVirtual)/s.speed + s.offsetMs
}

// fetchOnce serialises one request/reply exchange on the connection.
// Queued reference evictions are reported first, so the server never
// deltas against a frame this client has dropped.
func (s *liveSource) fetchOnce(pt geom.GridPoint, deadlineMs float64) (transport.FrameReply, float64, float64, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.err != nil {
		return transport.FrameReply{}, 0, 0, s.err
	}
	if len(s.pendingEvicts) > 0 {
		if err := s.cl.EvictNotice(s.pendingEvicts); err != nil {
			s.err = err
			return transport.FrameReply{}, 0, 0, err
		}
		s.pendingEvicts = s.pendingEvicts[:0]
	}
	reply, sentMs, doneMs, err := s.cl.FetchWithDeadline(pt, deadlineMs)
	if err == nil && s.decode {
		err = s.decodeReply(pt, reply)
	}
	if err != nil {
		s.err = err
		return transport.FrameReply{}, 0, 0, err
	}
	return reply, sentMs, doneMs, nil
}

// decodeReply validates a fetched frame by reconstructing it: intra
// frames decode standalone (and join the reference store), delta frames
// decode against the referenced held frame. Caller holds connMu.
func (s *liveSource) decodeReply(pt geom.GridPoint, reply transport.FrameReply) error {
	switch reply.Kind {
	case transport.FrameDelta:
		if s.refs == nil {
			return fmt.Errorf("frame %v: delta reply but reference store disabled", pt)
		}
		ref, ok := s.refs.Get(reply.Ref)
		if !ok {
			return fmt.Errorf("frame %v: delta against %v, which this client does not hold", pt, reply.Ref)
		}
		g, err := codec.DeltaDecode(reply.Data, ref)
		if err != nil {
			return fmt.Errorf("frame %v does not delta-decode: %w", pt, err)
		}
		// Delta reconstructions never become references (chaining would
		// compound quantisation drift); the raster is only validation.
		codec.ReleaseGray(g)
	default:
		g, err := codec.Decode(reply.Data)
		if err != nil {
			return fmt.Errorf("frame %v does not decode: %w", pt, err)
		}
		if s.refs != nil {
			s.refs.Put(pt, g) // store owns it now; evictions queue notices
		} else {
			codec.ReleaseGray(g)
		}
	}
	return nil
}

func (s *liveSource) firstError() error {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.err
}

func (s *liveSource) latencies() []float64 {
	return append([]float64(nil), s.wallMs...)
}

// ActiveTransfers implements runtime.NetMonitor.
func (s *liveSource) ActiveTransfers() int { return int(s.inflight.Load()) }

// FlowBytes implements runtime.NetMonitor; the live client has one flow.
func (s *liveSource) FlowBytes(int) int64 { return s.bytes.Load() }

// fiSyncer abstracts the FI sync transport: the legacy FI-only socket
// (FIClient) or the multiplexed datagram channel (UDPChannel).
type fiSyncer interface {
	Sync(st fisync.State, timeout time.Duration) ([]fisync.State, error)
	Close() error
}

// liveFISync synchronises FI over UDP each frame, like the paper's PUN
// path. A lost datagram simply counts as a drop — the next frame resends.
type liveFISync struct {
	clock   *runtime.WallClock
	fi      fiSyncer
	timeout time.Duration

	mu sync.Mutex // serialises the UDP socket

	// peers and drops are only touched on the clock goroutine.
	peers []fisync.State
	drops int64

	// Observability (nil when not instrumented).
	obsSyncs *obs.Counter
	obsDrops *obs.Counter
}

// Sync implements runtime.FISync.
func (f *liveFISync) Sync(st fisync.State, nowMs float64, done func(readyAtMs float64)) {
	f.clock.IOStarted()
	go func() {
		f.mu.Lock()
		others, err := f.fi.Sync(st, f.timeout)
		f.mu.Unlock()
		f.clock.Post(func() {
			f.obsSyncs.Inc()
			if err != nil {
				f.drops++
				f.obsDrops.Inc()
			} else {
				f.peers = others
			}
			if done != nil {
				done(f.clock.Now())
			}
		})
	}()
}
