package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/obs"
)

// storePut runs the full singleflight cycle for a point with fixed data,
// failing the test if the point was already cached or in flight.
func storePut(t *testing.T, st *frameStore, pt geom.GridPoint, size int) {
	t.Helper()
	_, _, ok, c, leader := st.lookup(pt)
	if ok || !leader {
		t.Fatalf("point %v unexpectedly cached or in flight", pt)
	}
	st.complete(pt, c, make([]byte, size), nil, true)
}

func storeHas(st *frameStore, pt geom.GridPoint) bool {
	data, _, ok, c, leader := st.lookup(pt)
	if ok {
		_ = data
		return true
	}
	if leader {
		// Undo the speculative call so the store has no dangling in-flight
		// marker.
		st.complete(pt, c, nil, errors.New("probe"), true)
	}
	return false
}

// TestStoreLRUEvictionOrder pins the eviction policy with a single shard,
// where global order equals LRU order: inserts beyond the budget evict the
// least recently used point, and a cache hit refreshes recency.
func TestStoreLRUEvictionOrder(t *testing.T) {
	st := newFrameStore(1)
	st.SetBudget(300) // three 100-byte frames

	pts := []geom.GridPoint{{I: 0, J: 0}, {I: 1, J: 0}, {I: 2, J: 0}}
	for _, pt := range pts {
		storePut(t, st, pt, 100)
	}
	if st.Bytes() != 300 || st.Len() != 3 {
		t.Fatalf("store holds %d bytes / %d frames, want 300/3", st.Bytes(), st.Len())
	}

	// Touch the oldest so {1,0} becomes least recently used.
	if !storeHas(st, pts[0]) {
		t.Fatal("expected {0,0} cached")
	}
	storePut(t, st, geom.GridPoint{I: 3, J: 0}, 100)
	if storeHas(st, pts[1]) {
		t.Error("{1,0} was LRU but survived eviction")
	}
	if !storeHas(st, pts[0]) || !storeHas(st, pts[2]) {
		t.Error("recently used points were evicted")
	}
	if st.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions())
	}
	if st.Bytes() > 300 {
		t.Errorf("bytes %d exceed budget 300", st.Bytes())
	}

	// Shrinking the budget evicts immediately, LRU first. The storeHas
	// probes above refreshed {0,0} then {2,0}, so {2,0} is now MRU and
	// must be the lone survivor.
	st.SetBudget(100)
	if st.Bytes() > 100 || st.Len() != 1 {
		t.Fatalf("after budget shrink: %d bytes / %d frames", st.Bytes(), st.Len())
	}
	if !storeHas(st, pts[2]) {
		t.Error("survivor of budget shrink is not the most recently used")
	}
}

// TestStoreOversizedFrameNotCached pins the budget edge case: a frame
// larger than the entire budget is returned to its requester but never
// stored (storing it would evict everything and still bust the budget).
func TestStoreOversizedFrameNotCached(t *testing.T) {
	st := newFrameStore(1)
	st.SetBudget(50)
	pt := geom.GridPoint{I: 9, J: 9}
	storePut(t, st, pt, 51)
	if st.Len() != 0 || st.Bytes() != 0 {
		t.Fatalf("oversized frame entered the store: %d bytes / %d frames", st.Bytes(), st.Len())
	}
	if storeHas(st, pt) {
		t.Fatal("oversized frame reported as cached")
	}
}

// TestStoreSingleflightPerPoint hammers one store from 64 goroutines
// across a handful of points: for each point exactly one caller must lead
// (and "render"), every joiner must observe the leader's bytes, and the
// store must end with one entry per point. Run with -race this also
// checks the shard locking.
func TestStoreSingleflightPerPoint(t *testing.T) {
	st := newFrameStore(8)
	var leaders [4]atomic.Int64
	pts := []geom.GridPoint{{I: 0, J: 0}, {I: 5, J: 3}, {I: 7, J: 7}, {I: 2, J: 9}}

	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, 64)
	for g := 0; g < 64; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait()
			k := g % len(pts)
			pt := pts[k]
			data, _, ok, c, leader := st.lookup(pt)
			switch {
			case ok:
			case leader:
				leaders[k].Add(1)
				data = []byte(fmt.Sprintf("frame-%d", k))
				st.complete(pt, c, data, nil, true)
			default:
				<-c.done
				data = c.data
			}
			if want := fmt.Sprintf("frame-%d", k); string(data) != want {
				errs <- fmt.Errorf("goroutine %d: got %q, want %q", g, data, want)
			}
		}(g)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := range leaders {
		if n := leaders[k].Load(); n != 1 {
			t.Errorf("point %d had %d leaders, want exactly 1", k, n)
		}
	}
	if st.Len() != len(pts) {
		t.Errorf("store holds %d frames, want %d", st.Len(), len(pts))
	}
}

// TestStoreInstrumented checks the registry wiring: store_bytes tracks
// resident bytes through inserts and evictions, and the evictions counter
// matches the store's own count.
func TestStoreInstrumented(t *testing.T) {
	r := obs.NewRegistry()
	st := newFrameStore(2)
	st.instrument(r.Gauge("server.store_bytes"), r.Counter("server.evictions"),
		r.Histogram("server.store_shard_lock_wait_ms"))
	st.SetBudget(250)
	for i := 0; i < 5; i++ {
		storePut(t, st, geom.GridPoint{I: i, J: 0}, 100)
	}
	if g := r.Gauge("server.store_bytes").Value(); g != st.Bytes() {
		t.Errorf("store_bytes gauge %d != store bytes %d", g, st.Bytes())
	}
	if st.Bytes() > 250 {
		t.Errorf("bytes %d exceed budget", st.Bytes())
	}
	if c := r.Counter("server.evictions").Value(); c != st.Evictions() || c == 0 {
		t.Errorf("evictions counter %d, store %d, want equal and nonzero", c, st.Evictions())
	}
	if h := r.Histogram("server.store_shard_lock_wait_ms").Count(); h == 0 {
		t.Error("lock-wait histogram recorded nothing")
	}
}

// TestPrerenderRespectsBudget warms more frames than the budget holds and
// checks the invariant the ISSUE names: prerender + eviction keeps
// store_bytes at or under the budget at completion, with evictions
// recorded.
func TestPrerenderRespectsBudget(t *testing.T) {
	srv := New(poolEnv(t))
	scene := srv.env.Game.Scene

	// Budget two average frames, then warm a region far larger.
	sample, err := srv.FrameFor(scene.Grid.Snap(srv.env.Game.Spawn))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(2*len(sample) + len(sample)/2)
	srv.SetStoreBudget(budget)

	// A 6x6-point patch around spawn: enough to overflow a two-frame
	// budget many times over without rendering the whole world.
	step := scene.Grid.Step
	region := geom.Rect{
		MinX: srv.env.Game.Spawn.X, MaxX: srv.env.Game.Spawn.X + 5*step,
		MinZ: srv.env.Game.Spawn.Z, MaxZ: srv.env.Game.Spawn.Z + 5*step,
	}
	stats, err := srv.PrerenderRegion(region, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points < 8 {
		t.Fatalf("region too small for the test: %d points", stats.Points)
	}
	bytes, evictions, frames := srv.StoreStats()
	if bytes > budget {
		t.Errorf("store_bytes %d exceeds budget %d after prerender", bytes, budget)
	}
	if evictions == 0 {
		t.Error("expected evictions while warming past the budget")
	}
	if frames == 0 {
		t.Error("store empty after prerender")
	}
	t.Logf("prerender: %d points, %d rendered; store %d bytes / %d frames, %d evictions",
		stats.Points, stats.Rendered, bytes, frames, evictions)
}

// TestStoreEvictionRacesInFlightDelta drives the store's full mutation
// surface concurrently — singleflight inserts, delta caching, budget
// shrinks forcing eviction, and readers scanning the slices they were
// handed — to prove under -race that eviction only unreferences frame
// bytes and never mutates a buffer an in-flight delta encoding still
// reads.
func TestStoreEvictionRacesInFlightDelta(t *testing.T) {
	st := newFrameStore(4)
	st.SetBudget(4 << 10)
	const iters = 3000
	refPt := geom.GridPoint{I: -1, J: -1}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer: insert frames and attach cached deltas
		defer wg.Done()
		for i := 0; i < iters; i++ {
			pt := geom.GridPoint{I: i % 16, J: (i / 16) % 16}
			_, _, ok, c, leader := st.lookup(pt)
			if ok {
				continue
			}
			if !leader {
				<-c.done
				continue
			}
			data := make([]byte, 64)
			data[0] = byte(i)
			seq := st.complete(pt, c, data, nil, true)
			st.putDelta(pt, seq, refPt, 7, []byte{byte(i), 1, 2})
		}
	}()
	go func() { // evictor: churn the budget so eviction runs constantly
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				st.SetBudget(512)
			} else {
				st.SetBudget(4 << 10)
			}
		}
	}()
	go func() { // reader: peek frames and scan the bytes mid-eviction,
		// the access pattern of a session delta-encoding a reference
		defer wg.Done()
		sum := 0
		for i := 0; i < iters; i++ {
			pt := geom.GridPoint{I: i % 16, J: (i / 16) % 16}
			if data, seq, ok := st.peek(pt); ok {
				for _, b := range data {
					sum += int(b)
				}
				if d, ok := st.delta(pt, seq, refPt, 7); ok {
					sum += int(d[0])
				}
			}
		}
		_ = sum
	}()
	wg.Wait()

	if b := st.Budget(); b > 0 && st.Bytes() > b {
		t.Errorf("store %d bytes exceeds final budget %d", st.Bytes(), b)
	}
}
