package server

import (
	"net"
	"sync"
	"testing"

	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/fisync"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/render"
)

var (
	envOnce sync.Once
	envPool *core.Env
	envErr  error
)

func poolEnv(t *testing.T) *core.Env {
	t.Helper()
	envOnce.Do(func() {
		spec, err := games.ByName("pool")
		if err != nil {
			envErr = err
			return
		}
		envPool, envErr = core.PrepareEnv(spec, core.EnvOptions{
			RenderCfg:   render.Config{W: 96, H: 48},
			SizeSamples: 2,
		})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envPool
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(poolEnv(t))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

func TestFrameForMemoises(t *testing.T) {
	srv := New(poolEnv(t))
	pt := srv.env.Game.Scene.Grid.Snap(srv.env.Game.Spawn)
	a, err := srv.FrameFor(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.FrameFor(pt)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second request should return the memoised frame")
	}
	if _, rendered := srv.Stats(); rendered != 1 {
		t.Fatalf("rendered %d frames, want 1", rendered)
	}
	// The frame must decode back to the panorama resolution.
	img, err := codec.Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 96 || img.H != 48 {
		t.Fatalf("decoded %dx%d", img.W, img.H)
	}
}

func TestFrameForRejectsOutside(t *testing.T) {
	srv := New(poolEnv(t))
	if _, err := srv.FrameFor(geom.GridPoint{I: -1, J: 0}); err == nil {
		t.Fatal("outside point accepted")
	}
}

func TestEndToEndFetch(t *testing.T) {
	srv, addr := startServer(t)
	cl, err := Dial(addr, "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pt := srv.env.Game.Scene.Grid.Snap(srv.env.Game.Spawn)
	data, err := cl.Fetch(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(data); err != nil {
		t.Fatalf("fetched frame does not decode: %v", err)
	}
	served, _ := srv.Stats()
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
	if _, err := cl.Fetch(geom.GridPoint{I: -9, J: -9}); err == nil {
		t.Fatal("invalid point should return a server error")
	}
	// The connection survives server-side errors.
	if _, err := cl.Fetch(pt); err != nil {
		t.Fatalf("fetch after error: %v", err)
	}
}

func TestDialWrongGame(t *testing.T) {
	_, addr := startServer(t)
	if _, err := Dial(addr, "viking", 1); err == nil {
		t.Fatal("wrong game accepted")
	}
}

func TestFISyncBetweenClients(t *testing.T) {
	_, addr := startServer(t)
	c1, err := Dial(addr, "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, "pool", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c1.SyncFI(fisync.State{Player: 1, Seq: 1, Pos: geom.V2(1, 2)}); err != nil {
		t.Fatal(err)
	}
	others, err := c2.SyncFI(fisync.State{Player: 2, Seq: 1, Pos: geom.V2(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(others) != 1 || others[0].Player != 1 || others[0].Pos != geom.V2(1, 2) {
		t.Fatalf("snapshot = %+v", others)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	grid := srv.env.Game.Scene.Grid
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := Dial(addr, "pool", uint8(p))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 5; i++ {
				pt := grid.Snap(geom.V2(float64(2+p), float64(2+i)))
				if _, err := cl.Fetch(pt); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	served, _ := srv.Stats()
	if served != 20 {
		t.Fatalf("served %d frames, want 20", served)
	}
}

func TestPrerenderRegion(t *testing.T) {
	srv := New(poolEnv(t))
	region := geom.Rect{MinX: 2, MinZ: 2, MaxX: 3, MaxZ: 3}
	stats, err := srv.PrerenderRegion(region, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points < 4 || stats.Rendered < 4 || stats.Bytes <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	// A second pass renders nothing new.
	again, err := srv.PrerenderRegion(region, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again.Rendered != 0 {
		t.Fatalf("second pass rendered %d frames", again.Rendered)
	}
	if again.Points != stats.Points {
		t.Fatalf("coverage changed: %d vs %d", again.Points, stats.Points)
	}
	// Prerendered frames serve without further rendering.
	pt := srv.env.Game.Scene.Grid.Snap(geom.V2(2, 2))
	_, rendered := srv.Stats()
	if _, err := srv.FrameFor(pt); err != nil {
		t.Fatal(err)
	}
	if _, after := srv.Stats(); after != rendered {
		t.Fatal("prerendered frame was re-rendered")
	}
}

func TestPrerenderEmptyRegion(t *testing.T) {
	srv := New(poolEnv(t))
	// Degenerate rectangle still covers its snapped corner point.
	stats, err := srv.PrerenderRegion(geom.Rect{MinX: 5, MinZ: 5, MaxX: 5, MaxZ: 5}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != 1 {
		t.Fatalf("points = %d", stats.Points)
	}
}
