package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coterie/internal/core"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/trace"
	"coterie/internal/transport"
)

// startLiveServer runs a full live server — frames over TCP, FI sync over
// UDP on the same port — under a cancellable context.
func startLiveServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(poolEnv(t))
	srv.DrainTimeout = 2 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeContext(ctx, ln)
	}()
	go srv.ServeFIUDP(pc)
	t.Cleanup(func() {
		cancel()
		pc.Close()
		<-done
	})
	return srv, addr
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestLoopbackMatchesSim is the end-to-end check of the runtime split:
// the same pipeline code replays the same movement trace over (a) the
// discrete-event netsim backend and (b) real TCP/UDP loopback sockets,
// and the cache behaviour — the part of the pipeline the transport must
// not perturb — has to agree. Transfer *sizes* are not comparable (the
// simulator models 4K frames, the live server serves real encodes at the
// test resolution), so the comparison is hit ratio and fetch counts;
// live byte counts are checked against the server's own accounting.
func TestLoopbackMatchesSim(t *testing.T) {
	env := poolEnv(t)
	srv, addr := startLiveServer(t)
	tr := trace.Generate(env.Game, 2, 7)

	warmServer(t, srv, tr)

	sim, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: 1,
		Seconds: tr.Seconds(),
		Traces:  []*trace.Trace{tr},
	})
	if err != nil {
		t.Fatal(err)
	}

	live, err := RunLive(env, addr, tr, 0, LiveConfig{
		Speed:        4,
		DecodeFrames: true,
		IdleTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	simHit := sim.Per[0].CacheHitRatio
	liveHit := live.Metrics.CacheHitRatio
	if d := liveHit - simHit; d < -0.2 || d > 0.2 {
		t.Errorf("cache hit ratio diverged: live %.3f vs sim %.3f", liveHit, simHit)
	}
	simIssued := float64(sim.Per[0].PrefetchIssued)
	liveIssued := float64(live.Prefetch.Issued)
	if liveIssued < 0.5*simIssued || liveIssued > 2*simIssued {
		t.Errorf("prefetches issued diverged: live %.0f vs sim %.0f", liveIssued, simIssued)
	}
	if live.Fetches == 0 || live.BytesFetched == 0 {
		t.Fatalf("live session fetched nothing: %+v", live)
	}
	if live.Metrics.Frames == 0 {
		t.Fatal("live session displayed no frames")
	}

	// The server's own accounting must agree with the client's byte and
	// fetch counts exactly: one session, every fetch served over it.
	waitFor(t, 2*time.Second, func() bool {
		_, completed := srv.Sessions()
		return len(completed) == 1
	})
	_, completed := srv.Sessions()
	st := completed[0]
	if st.Err != "" {
		t.Errorf("session ended with error: %s", st.Err)
	}
	if st.FramesServed != live.Fetches {
		t.Errorf("server served %d frames, client fetched %d", st.FramesServed, live.Fetches)
	}
	if st.BytesSent != live.BytesFetched {
		t.Errorf("server sent %d bytes, client counted %d", st.BytesSent, live.BytesFetched)
	}
}

// warmServer prerenders the server across the trace's neighbourhood so
// live fetch latency is lookup-bound, keeping the live tick sequence
// aligned with the simulated one.
func warmServer(t *testing.T, srv *Server, tr *trace.Trace) {
	t.Helper()
	bounds := geom.Rect{MinX: tr.Pos[0].X, MinZ: tr.Pos[0].Z, MaxX: tr.Pos[0].X, MaxZ: tr.Pos[0].Z}
	for _, p := range tr.Pos {
		if p.X < bounds.MinX {
			bounds.MinX = p.X
		}
		if p.Z < bounds.MinZ {
			bounds.MinZ = p.Z
		}
		if p.X > bounds.MaxX {
			bounds.MaxX = p.X
		}
		if p.Z > bounds.MaxZ {
			bounds.MaxZ = p.Z
		}
	}
	// Margin covers the prefetcher's lookahead predictions (a few grid
	// steps) without ballooning the prerender set: the pool grid is 1/32 m,
	// so every 0.25 m of margin is 8 grid steps in each direction.
	bounds.MinX -= 0.25
	bounds.MinZ -= 0.25
	bounds.MaxX += 0.25
	bounds.MaxZ += 0.25
	if _, err := srv.PrerenderRegion(bounds, 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestLoopbackObsCountersMatchSim runs the same trace through both
// backends with a metrics registry attached to each and asserts the
// shared pipeline instruments report *identical* counts for cache hits,
// prefetches issued/delivered, and frames displayed. This is the
// strongest form of the backend-equivalence claim: with a warmed server
// every fetch completes well inside one vsync interval in both backends,
// so the per-tick cache and prefetch decisions — and therefore the
// counters — must agree exactly, not just within tolerance. A live fetch
// straddling a tick boundary (scheduler hiccup) can legitimately perturb
// one run, so the live side retries a bounded number of times; the
// registry-vs-legacy-stats cross-checks are deterministic and asserted
// on every attempt.
func TestLoopbackObsCountersMatchSim(t *testing.T) {
	env := poolEnv(t)
	srv, addr := startLiveServer(t)
	tr := trace.Generate(env.Game, 2, 7)
	warmServer(t, srv, tr)

	simReg := obs.NewRegistry()
	sim, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: 1,
		Seconds: tr.Seconds(),
		Traces:  []*trace.Trace{tr},
		Obs:     simReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	simC := simReg.Snapshot().Counters

	// The sim registry must agree with the result's own accounting: the
	// instruments observe the same events the legacy stats count.
	if got, want := simC["prefetch.issued"], sim.Per[0].PrefetchIssued; got != want {
		t.Errorf("sim registry prefetch.issued = %d, metrics say %d", got, want)
	}
	if got, want := simC["frames.displayed"], sim.Per[0].Frames; got != want {
		t.Errorf("sim registry frames.displayed = %d, metrics say %d", got, want)
	}

	compare := []string{
		"cache.hits",
		"cache.misses",
		"prefetch.issued",
		"prefetch.delivered",
		"frames.displayed",
	}
	const attempts = 3
	for attempt := 1; ; attempt++ {
		liveReg := obs.NewRegistry()
		live, err := RunLive(env, addr, tr, 0, LiveConfig{
			Speed:        1, // real time: virtual latencies closest to the modelled medium
			DecodeFrames: true,
			IdleTimeout:  10 * time.Second,
			Obs:          liveReg,
		})
		if err != nil {
			t.Fatal(err)
		}
		liveC := liveReg.Snapshot().Counters

		// Deterministic on every attempt: the live registry mirrors the
		// live report's legacy counters exactly.
		if got, want := liveC["cache.hits"], live.Cache.Hits; got != want {
			t.Fatalf("live registry cache.hits = %d, report says %d", got, want)
		}
		if got, want := liveC["prefetch.issued"], live.Prefetch.Issued; got != want {
			t.Fatalf("live registry prefetch.issued = %d, report says %d", got, want)
		}
		if got, want := liveC["prefetch.delivered"], live.Prefetch.Delivered; got != want {
			t.Fatalf("live registry prefetch.delivered = %d, report says %d", got, want)
		}
		if got, want := liveC["frames.displayed"], live.Metrics.Frames; got != want {
			t.Fatalf("live registry frames.displayed = %d, report says %d", got, want)
		}
		// The trace ring saw every displayed frame.
		if got := liveReg.Trace().Recorded(); got != uint64(live.Metrics.Frames) {
			t.Fatalf("trace ring recorded %d spans, %d frames displayed", got, live.Metrics.Frames)
		}

		var diverged []string
		for _, name := range compare {
			if liveC[name] != simC[name] {
				diverged = append(diverged,
					name+": live "+itoa(liveC[name])+" vs sim "+itoa(simC[name]))
			}
		}
		if len(diverged) == 0 {
			break
		}
		if attempt == attempts {
			t.Fatalf("counters diverged after %d attempts: %v", attempts, diverged)
		}
		t.Logf("attempt %d diverged (%v), retrying", attempt, diverged)
	}
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

// TestLoopbackTraceDecompositionAndQoE is the end-to-end check of span
// schema v2: both backends replay the same trace with a registry attached,
// and every recorded miss span's cross-node decomposition
// (NetMs+HopMs+QueueMs+RenderMs+EncodeMs) must account for the FetchMs the
// display waited. The stage sum is the delivering fetch's full round
// trip; FetchMs clocks from the frame start, but the display path only
// demands the frame (pf.Ensure) once the frame's parallel tasks join, at
// most JoinMs later — so an emergency fetch's round trip covers
// FetchMs−JoinMs, and a fetch already in flight covers more. Cache-hit
// spans carry no stages at all. The /qoe endpoint is then
// scraped from an AdminMux over each registry and the two snapshots must
// agree on the trace: matching schema, deterministic against ComputeQoE,
// and consistent QoE between the backends within the same tolerances the
// sim-vs-live equivalence tests use.
func TestLoopbackTraceDecompositionAndQoE(t *testing.T) {
	env := poolEnv(t)
	srv, addr := startLiveServer(t)
	tr := trace.Generate(env.Game, 2, 7)
	warmServer(t, srv, tr)

	simReg := obs.NewRegistry()
	if _, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: 1,
		Seconds: tr.Seconds(),
		Traces:  []*trace.Trace{tr},
		Obs:     simReg,
	}); err != nil {
		t.Fatal(err)
	}

	liveReg := obs.NewRegistry()
	if _, err := RunLive(env, addr, tr, 0, LiveConfig{
		Speed:        4,
		DecodeFrames: true,
		IdleTimeout:  10 * time.Second,
		Obs:          liveReg,
	}); err != nil {
		t.Fatal(err)
	}

	// checkSpans validates the decomposition invariants over one backend's
	// recorded spans and reports how many miss spans carried stages (so the
	// assertions cannot pass vacuously).
	checkSpans := func(name string, reg *obs.Registry, tolMs float64) (staged int) {
		ring := reg.Trace()
		spans := ring.Recent(ring.Len())
		if len(spans) == 0 {
			t.Fatalf("%s: no spans recorded", name)
		}
		for _, sp := range spans {
			sum := sp.NetMs + sp.HopMs + sp.QueueMs + sp.RenderMs + sp.EncodeMs
			if sp.CacheHit {
				if sum != 0 {
					t.Errorf("%s: cache-hit span %d carries stages: %+v", name, sp.Frame, sp)
				}
				continue
			}
			if sp.NetMs < 0 || sp.HopMs < 0 || sp.QueueMs < 0 || sp.RenderMs < 0 || sp.EncodeMs < 0 {
				t.Errorf("%s: negative stage in span %d: %+v", name, sp.Frame, sp)
			}
			// Single-node loopback: no cluster hop may appear in the
			// decomposition (HopMs is reserved for peer-proxied frames).
			if sp.HopMs != 0 {
				t.Errorf("%s: span %d carries HopMs %.3f without a cluster", name, sp.Frame, sp.HopMs)
			}
			if sum == 0 {
				continue // miss delivered before instrumented stages existed
			}
			staged++
			if floor := sp.FetchMs - sp.JoinMs - tolMs; sum < floor {
				t.Errorf("%s: span %d stages sum %.3f ms < FetchMs %.3f − JoinMs %.3f ms (tol %.3f)",
					name, sp.Frame, sum, sp.FetchMs, sp.JoinMs, tolMs)
			}
		}
		return staged
	}
	// The sim is exact: an emergency fetch issues the moment the join
	// fires, so the stage sum equals FetchMs−JoinMs to float precision;
	// prefetch-attached fetches only make the sum larger. The live side
	// adds goroutine hand-off and wall-clock sampling noise between the
	// pipeline's view of the fetch and the transport's, so it gets a few
	// milliseconds.
	if n := checkSpans("sim", simReg, 1e-6); n == 0 {
		t.Error("sim trace recorded no staged miss spans")
	}
	if n := checkSpans("live", liveReg, 5.0); n == 0 {
		t.Error("live trace recorded no staged miss spans")
	}

	// Scrape /qoe from an admin mux over each registry, windowed over the
	// whole session so both cover the full trace.
	scrape := func(reg *obs.Registry) obs.QoESnapshot {
		s := httptest.NewServer(obs.AdminMux(reg))
		defer s.Close()
		res, err := s.Client().Get(s.URL + "/qoe?window=10000")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var q obs.QoESnapshot
		if err := json.NewDecoder(res.Body).Decode(&q); err != nil {
			t.Fatal(err)
		}
		return q
	}
	simQ, liveQ := scrape(simReg), scrape(liveReg)

	// The endpoint must be a pure function of the recorded spans.
	ring := simReg.Trace()
	direct := obs.ComputeQoE(ring.Recent(ring.Len()), obs.QoEConfig{WindowMs: 10000, Player: -1})
	if simQ.All != direct.All || simQ.Spans != direct.Spans {
		t.Errorf("/qoe diverged from ComputeQoE on the same trace:\n%+v\n%+v", simQ.All, direct.All)
	}

	for name, q := range map[string]obs.QoESnapshot{"sim": simQ, "live": liveQ} {
		if q.Spans == 0 || q.All.Frames == 0 {
			t.Fatalf("%s /qoe snapshot empty: %+v", name, q)
		}
		if q.All.WindowFPS <= 0 || q.All.WindowFPS > 200 {
			t.Errorf("%s window fps insane: %+v", name, q.All)
		}
		if q.All.MissedVsyncRatio < 0 || q.All.MissedVsyncRatio > 1 {
			t.Errorf("%s missed-vsync ratio out of range: %+v", name, q.All)
		}
	}
	// Backend agreement on the same trace, with the tolerances the
	// equivalence tests use (exact equality is covered, with retries, by
	// TestLoopbackObsCountersMatchSim).
	if d := liveQ.All.CacheHitRate - simQ.All.CacheHitRate; d < -0.2 || d > 0.2 {
		t.Errorf("cache hit rate diverged: live %.3f vs sim %.3f", liveQ.All.CacheHitRate, simQ.All.CacheHitRate)
	}
	if lo, hi := 0.75*simQ.All.WindowFPS, 1.25*simQ.All.WindowFPS; liveQ.All.WindowFPS < lo || liveQ.All.WindowFPS > hi {
		t.Errorf("window fps diverged: live %.1f vs sim %.1f", liveQ.All.WindowFPS, simQ.All.WindowFPS)
	}
	if d := liveQ.All.MissedVsyncRatio - simQ.All.MissedVsyncRatio; d < -0.3 || d > 0.3 {
		t.Errorf("missed-vsync diverged: live %.3f vs sim %.3f", liveQ.All.MissedVsyncRatio, simQ.All.MissedVsyncRatio)
	}
}

// TestConcurrentFrameForSingleflight drives N concurrent fetches of one
// cold grid point through the singleflight path: exactly one render, one
// shared buffer.
func TestConcurrentFrameForSingleflight(t *testing.T) {
	srv := New(poolEnv(t))
	pt := srv.env.Game.Scene.Grid.Snap(srv.env.Game.Spawn)

	const n = 64
	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		buffers = make(map[*byte]int)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			data, err := srv.FrameFor(pt)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			buffers[&data[0]]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if len(buffers) != 1 {
		t.Fatalf("%d distinct buffers returned, want 1", len(buffers))
	}
	if _, rendered := srv.Stats(); rendered != 1 {
		t.Fatalf("rendered %d times under concurrency, want 1", rendered)
	}
}

// dialRaw opens a raw TCP connection and completes the hello exchange.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := transport.NewConn(nc)
	hello := transport.EncodeHello(transport.Hello{Player: 9, Game: "pool"})
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	return nc
}

// expectSessionClose asserts the server tears the connection down (rather
// than hanging) after the bad bytes already written to nc.
func expectSessionClose(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := nc.Read(buf); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("server kept the session open")
			}
			return // EOF or reset: session closed cleanly
		}
	}
}

func TestSessionLoopRejectsMalformedInput(t *testing.T) {
	_, addr := startLiveServer(t)

	t.Run("unknown type", func(t *testing.T) {
		nc := dialRaw(t, addr)
		nc.Write([]byte{0x7F, 0, 0, 0, 0})
		expectSessionClose(t, nc)
	})
	t.Run("oversized length", func(t *testing.T) {
		nc := dialRaw(t, addr)
		nc.Write([]byte{byte(transport.MsgFrameRequest), 0xFF, 0xFF, 0xFF, 0xFF})
		expectSessionClose(t, nc)
	})
	t.Run("truncated message", func(t *testing.T) {
		nc := dialRaw(t, addr)
		// Header promises 9 payload bytes; send 2 and half-close.
		nc.Write([]byte{byte(transport.MsgFrameRequest), 0, 0, 0, 9, 1, 2})
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		expectSessionClose(t, nc)
	})
	t.Run("bad frame request payload", func(t *testing.T) {
		nc := dialRaw(t, addr)
		nc.Write([]byte{byte(transport.MsgFrameRequest), 0, 0, 0, 1, 42})
		expectSessionClose(t, nc)
	})
}

func TestServeContextDrainsOnCancel(t *testing.T) {
	srv := New(poolEnv(t))
	srv.DrainTimeout = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServeContext(ctx, ln) }()

	cl, err := Dial(ln.Addr().String(), "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pt := srv.env.Game.Scene.Grid.Snap(srv.env.Game.Spawn)
	if _, err := cl.Fetch(pt); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeContext returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not drain after cancel")
	}
	// The idle session was force-closed by the drain timeout.
	if _, err := cl.Fetch(pt); err == nil {
		t.Fatal("session survived shutdown")
	}
}

func TestSessionStatsRecorded(t *testing.T) {
	srv, addr := startLiveServer(t)
	cl, err := Dial(addr, "pool", 3)
	if err != nil {
		t.Fatal(err)
	}
	grid := srv.env.Game.Scene.Grid
	for i := 0; i < 2; i++ {
		if _, err := cl.Fetch(grid.Snap(geom.V2(2, float64(2+i)))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close() // sends MsgBye: a clean teardown, not an error

	waitFor(t, 2*time.Second, func() bool {
		_, completed := srv.Sessions()
		return len(completed) == 1
	})
	_, completed := srv.Sessions()
	st := completed[0]
	if st.Err != "" {
		t.Errorf("clean close recorded error %q", st.Err)
	}
	if st.Player != 3 || st.Game != "pool" {
		t.Errorf("session identity %+v", st)
	}
	if st.FramesServed != 2 || st.BytesSent == 0 {
		t.Errorf("session accounting %+v", st)
	}
	if active, _ := srv.Sessions(); active != 0 {
		t.Errorf("%d sessions still active", active)
	}
}

// TestLoopbackStoreMetrics is the e2e check of the sharded store's
// instruments: an instrumented live server under a tight byte budget
// serves real TCP fetches, and a /metrics scrape of its registry must
// expose the store's residency (server.store_bytes), its evictions
// (server.evictions), and its shard lock-wait histogram
// (server.store_shard_lock_wait_ms) with values consistent with the
// store's own accounting.
func TestLoopbackStoreMetrics(t *testing.T) {
	env := poolEnv(t)
	reg := obs.NewRegistry()
	srv := New(env)
	srv.Instrument(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)

	cl, err := Dial(ln.Addr().String(), "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Budget two frames, then fetch a row of distinct points so the store
	// must evict, and re-fetch the last point so the hit path (LRU touch
	// under the shard lock) runs too.
	spawn := env.Game.Scene.Grid.Snap(env.Game.Spawn)
	first, err := cl.Fetch(spawn)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetStoreBudget(int64(2*len(first) + len(first)/2))
	last := spawn
	for i := 1; i <= 6; i++ {
		last = geom.GridPoint{I: spawn.I + i, J: spawn.J}
		if _, err := cl.Fetch(last); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Fetch(last); err != nil {
		t.Fatal(err)
	}

	s := httptest.NewServer(obs.AdminMux(reg))
	defer s.Close()
	res, err := s.Client().Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	bytes, evictions, frames := srv.StoreStats()
	if g, ok := snap.Gauges["server.store_bytes"]; !ok || g != bytes || g <= 0 {
		t.Errorf("store_bytes gauge = %d (present %v), store reports %d", g, ok, bytes)
	}
	if c, ok := snap.Counters["server.evictions"]; !ok || c != evictions || c == 0 {
		t.Errorf("evictions counter = %d (present %v), store reports %d", c, ok, evictions)
	}
	if h, ok := snap.Histograms["server.store_shard_lock_wait_ms"]; !ok || h.Count == 0 {
		t.Errorf("lock-wait histogram count = %d (present %v), want observations", h.Count, ok)
	}
	if bytes > srv.store.Budget() {
		t.Errorf("store %d bytes exceeds budget %d", bytes, srv.store.Budget())
	}
	if frames == 0 {
		t.Error("store empty after fetches")
	}
	if snap.Counters["server.frame_store_hits"] == 0 {
		t.Error("re-fetch of a resident point did not count as a store hit")
	}
}

// TestSchedulerByteIdentityUnloaded pins the refactor's core invariant:
// with nobody else on the server, the staged pipeline (EDF scheduler +
// degrade ladder) must be invisible — byte-identical frames, same
// encodings, rung 0 — compared to the scheduler-off path. Two identical
// warmed servers serve the same single-player request stream, one with the
// scheduler on (the default), one with it off, and every reply must match
// byte for byte. The sim backend (which stamps the same deadlines through
// the shared pipeline) is checked for determinism, and the full live
// runtime pipeline is replayed against both servers to assert neither arm
// degrades a single frame when unloaded.
func TestSchedulerByteIdentityUnloaded(t *testing.T) {
	env := poolEnv(t)
	tr := trace.Generate(env.Game, 2, 11)

	srvOn, addrOn := startLiveServer(t)
	regOn := obs.NewRegistry()
	srvOn.Instrument(regOn)
	srvOff, addrOff := startLiveServer(t)
	srvOff.SetSchedEnabled(false)
	warmServer(t, srvOn, tr)
	warmServer(t, srvOff, tr)

	// Raw-session byte identity: the same walk, alternating deadline-free
	// and deadline-stamped fetches, against both arms.
	clOn, err := Dial(addrOn, "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer clOn.Close()
	clOff, err := Dial(addrOff, "pool", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer clOff.Close()
	grid := env.Game.Scene.Grid
	stride := len(tr.Pos)/40 + 1
	for i := 0; i < len(tr.Pos); i += stride {
		pt := grid.Snap(tr.Pos[i])
		var dlOn, dlOff float64
		if i%2 == 0 {
			dlOn, dlOff = wallMs()+100, wallMs()+100
		}
		rOn, _, _, err := clOn.FetchWithDeadline(pt, dlOn)
		if err != nil {
			t.Fatalf("sched-on fetch %v: %v", pt, err)
		}
		rOff, _, _, err := clOff.FetchWithDeadline(pt, dlOff)
		if err != nil {
			t.Fatalf("sched-off fetch %v: %v", pt, err)
		}
		if rOn.Rung != transport.RungExact || rOff.Rung != transport.RungExact {
			t.Fatalf("point %v: unloaded serve degraded: rungs %d/%d", pt, rOn.Rung, rOff.Rung)
		}
		if rOn.Kind != rOff.Kind || rOn.Ref != rOff.Ref {
			t.Fatalf("point %v: encodings diverged: kind %d ref %v vs kind %d ref %v",
				pt, rOn.Kind, rOn.Ref, rOff.Kind, rOff.Ref)
		}
		if !bytesEqual(rOn.Data, rOff.Data) {
			t.Fatalf("point %v: frame bytes diverged (%d vs %d bytes)", pt, len(rOn.Data), len(rOff.Data))
		}
	}
	if n := regOn.Counter("server.degrade_stale").Value() +
		regOn.Counter("server.degrade_reproject").Value() +
		regOn.Counter("server.degrade_lowres").Value() +
		regOn.Counter("server.sched.sheds").Value(); n != 0 {
		t.Errorf("unloaded raw session took %d degrade/shed actions", n)
	}

	// Sim backend: the deadline-stamping pipeline must stay deterministic —
	// two identical runs, identical results.
	runSim := func() *core.Result {
		sim, err := core.RunSession(env, core.SessionConfig{
			System:  core.Coterie,
			Players: 1,
			Seconds: tr.Seconds(),
			Traces:  []*trace.Trace{tr},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	sim1, sim2 := runSim(), runSim()
	if sim1.Per[0].Frames != sim2.Per[0].Frames ||
		sim1.Per[0].CacheHitRatio != sim2.Per[0].CacheHitRatio ||
		sim1.Per[0].PrefetchIssued != sim2.Per[0].PrefetchIssued {
		t.Errorf("sim backend nondeterministic under deadline stamping: %+v vs %+v",
			sim1.Per[0], sim2.Per[0])
	}

	// Full live pipeline over both arms: same trace, and neither arm may
	// degrade a frame on a warmed, unloaded server.
	for _, arm := range []struct {
		name string
		addr string
	}{{"sched-on", addrOn}, {"sched-off", addrOff}} {
		live, err := RunLive(env, arm.addr, tr, 0, LiveConfig{
			Speed:        4,
			DecodeFrames: true,
			IdleTimeout:  10 * time.Second,
		})
		if err != nil {
			t.Fatalf("%s: %v", arm.name, err)
		}
		if live.Metrics.Frames == 0 || live.Fetches == 0 {
			t.Fatalf("%s: live session went nowhere: %+v", arm.name, live)
		}
		if d := live.Metrics.CacheHitRatio - sim1.Per[0].CacheHitRatio; d < -0.2 || d > 0.2 {
			t.Errorf("%s: cache hit ratio diverged from sim: %.3f vs %.3f",
				arm.name, live.Metrics.CacheHitRatio, sim1.Per[0].CacheHitRatio)
		}
	}
	if n := regOn.Counter("server.degrade_stale").Value() +
		regOn.Counter("server.degrade_reproject").Value() +
		regOn.Counter("server.degrade_lowres").Value() +
		regOn.Counter("server.sched.sheds").Value(); n != 0 {
		t.Errorf("unloaded live pipeline took %d degrade/shed actions", n)
	}
}

// bytesEqual avoids importing bytes solely for one comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
