package server

import (
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/geom"
	"coterie/internal/obs"
)

// The frame store is the server's hot shared structure: every frame
// request for every session goes through it. A single mutex over one map
// serialises all sessions on cache hits, and an unbounded map grows with
// the reachable grid (a 24M-point world at ~5 KB per encoded frame is
// ~120 GB). This file replaces both properties: the store is sharded by a
// grid-point hash so independent points contend only within a shard, and
// it carries a global byte budget with per-shard LRU lists so eviction
// reclaims the coldest frames first.

// defaultStoreShards is the shard count when the caller does not choose
// one. Sixteen shards keep per-shard contention negligible for the player
// counts the load harness exercises (64) while costing only a few hundred
// bytes of fixed overhead.
const defaultStoreShards = 16

// frameCall is one in-flight render shared by concurrent requesters
// (singleflight). The leader renders, stores the result, then closes done;
// joiners block on done and read data/err.
type frameCall struct {
	done chan struct{}
	data []byte
	err  error
}

// storeEntry is one cached encoded frame, threaded on its shard's LRU
// list (head is most recent, tail least).
type storeEntry struct {
	pt         geom.GridPoint
	data       []byte
	prev, next *storeEntry
}

// storeShard is one lock domain: a map of cached frames, their LRU order,
// and the in-flight singleflight calls for points hashing here.
type storeShard struct {
	mu      sync.Mutex
	entries map[geom.GridPoint]*storeEntry
	head    *storeEntry // most recently used
	tail    *storeEntry // least recently used
	calls   map[geom.GridPoint]*frameCall
}

// frameStore is a sharded, byte-bounded, LRU-evicting cache of encoded
// far-BE frames with singleflight render coalescing per grid point.
// The zero value is not usable; construct with newFrameStore.
type frameStore struct {
	shards []storeShard
	mask   uint64

	bytes     atomic.Int64 // total data bytes across shards
	budget    atomic.Int64 // byte budget; <= 0 means unbounded
	evictions atomic.Int64
	// cursor round-robins eviction across shards so no one shard's
	// working set is drained preferentially.
	cursor atomic.Uint64

	// Observability (nil-safe). lockWait is sampled only when set, so the
	// uninstrumented store pays one nil check per lock, not two clock reads.
	storeBytes *obs.Gauge
	evictedCtr *obs.Counter
	lockWait   *obs.Histogram
}

// newFrameStore creates a store with the shard count rounded up to a
// power of two; shards <= 0 selects defaultStoreShards.
func newFrameStore(shards int) *frameStore {
	if shards <= 0 {
		shards = defaultStoreShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &frameStore{shards: make([]storeShard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		st.shards[i].entries = make(map[geom.GridPoint]*storeEntry)
		st.shards[i].calls = make(map[geom.GridPoint]*frameCall)
	}
	return st
}

// instrument attaches registry instruments; any may be nil.
func (st *frameStore) instrument(bytes *obs.Gauge, evictions *obs.Counter, lockWait *obs.Histogram) {
	st.storeBytes = bytes
	st.evictedCtr = evictions
	st.lockWait = lockWait
}

// shardFor hashes the grid point's two indices into a shard. The
// multiply-xor mix keeps neighbouring points (a walking player's request
// stream) from clustering in one shard.
func (st *frameStore) shardFor(pt geom.GridPoint) *storeShard {
	h := uint64(uint32(pt.I))*0x9E3779B97F4A7C15 ^ uint64(uint32(pt.J))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return &st.shards[h&st.mask]
}

// lock acquires the shard's mutex, recording the wait when instrumented.
func (st *frameStore) lock(sh *storeShard) {
	if st.lockWait == nil {
		sh.mu.Lock()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	st.lockWait.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// lookup is the singleflight entry point. It returns, in order of
// precedence: a cached frame (ok=true, the entry moved to the shard's MRU
// position); an in-flight call to join (leader=false — wait on c.done and
// read c.data/c.err); or a fresh call this caller now leads (leader=true —
// render, then finish with complete).
func (st *frameStore) lookup(pt geom.GridPoint) (data []byte, ok bool, c *frameCall, leader bool) {
	sh := st.shardFor(pt)
	st.lock(sh)
	if e, hit := sh.entries[pt]; hit {
		sh.moveToFront(e)
		sh.mu.Unlock()
		return e.data, true, nil, false
	}
	if c, inflight := sh.calls[pt]; inflight {
		sh.mu.Unlock()
		return nil, false, c, false
	}
	c = &frameCall{done: make(chan struct{})}
	sh.calls[pt] = c
	sh.mu.Unlock()
	return nil, false, c, true
}

// complete finishes a call started by lookup: it publishes data/err to the
// joiners, removes the in-flight marker, and on success inserts the frame
// and enforces the byte budget. Frames larger than the whole budget are
// returned to callers but never stored.
func (st *frameStore) complete(pt geom.GridPoint, c *frameCall, data []byte, err error) {
	c.data, c.err = data, err
	sh := st.shardFor(pt)
	st.lock(sh)
	delete(sh.calls, pt)
	budget := st.budget.Load()
	if err == nil && (budget <= 0 || int64(len(data)) <= budget) {
		if _, dup := sh.entries[pt]; !dup {
			e := &storeEntry{pt: pt, data: data}
			sh.entries[pt] = e
			sh.pushFront(e)
			st.bytes.Add(int64(len(data)))
		}
	}
	sh.mu.Unlock()
	close(c.done)
	st.storeBytes.Set(st.bytes.Load())
	st.enforceBudget()
}

// SetBudget sets the byte budget (<= 0 means unbounded) and immediately
// evicts down to it.
func (st *frameStore) SetBudget(n int64) {
	st.budget.Store(n)
	st.enforceBudget()
}

// Budget returns the current byte budget (<= 0 means unbounded).
func (st *frameStore) Budget() int64 { return st.budget.Load() }

// Bytes returns the total stored frame bytes.
func (st *frameStore) Bytes() int64 { return st.bytes.Load() }

// Evictions returns the number of frames evicted so far.
func (st *frameStore) Evictions() int64 { return st.evictions.Load() }

// Len returns the number of cached frames.
func (st *frameStore) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		st.lock(sh)
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// enforceBudget evicts least-recently-used frames, visiting shards
// round-robin from a shared cursor, until the store fits its budget. Each
// eviction pops one shard's LRU tail; in-flight readers holding slices of
// an evicted frame are unaffected (the buffer is simply unreferenced by
// the store). Shards are locked one at a time, so eviction never holds
// two locks.
func (st *frameStore) enforceBudget() {
	budget := st.budget.Load()
	if budget <= 0 {
		return
	}
	evicted := false
	for st.bytes.Load() > budget {
		freed := false
		// One full round over the shards; if nothing was freed the store
		// is empty (or emptied by a concurrent evictor) and we stop.
		for range st.shards {
			i := st.cursor.Add(1) & st.mask
			sh := &st.shards[i]
			st.lock(sh)
			e := sh.tail
			if e == nil {
				sh.mu.Unlock()
				continue
			}
			sh.unlink(e)
			delete(sh.entries, e.pt)
			sh.mu.Unlock()
			st.bytes.Add(-int64(len(e.data)))
			st.evictions.Add(1)
			st.evictedCtr.Inc()
			evicted = true
			freed = true
			break
		}
		if !freed {
			break
		}
	}
	if evicted {
		st.storeBytes.Set(st.bytes.Load())
	}
}

// pushFront links a new entry at the MRU position. Caller holds sh.mu.
func (sh *storeShard) pushFront(e *storeEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes an entry from the LRU list. Caller holds sh.mu.
func (sh *storeShard) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most recently used. Caller holds sh.mu.
func (sh *storeShard) moveToFront(e *storeEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
