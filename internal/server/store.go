package server

import (
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/transport"
)

// The frame store is the server's hot shared structure: every frame
// request for every session goes through it. A single mutex over one map
// serialises all sessions on cache hits, and an unbounded map grows with
// the reachable grid (a 24M-point world at ~5 KB per encoded frame is
// ~120 GB). This file replaces both properties: the store is sharded by a
// grid-point hash so independent points contend only within a shard, and
// it carries a global byte budget with per-shard LRU lists so eviction
// reclaims the coldest frames first.

// defaultStoreShards is the shard count when the caller does not choose
// one. Sixteen shards keep per-shard contention negligible for the player
// counts the load harness exercises (64) while costing only a few hundred
// bytes of fixed overhead.
const defaultStoreShards = 16

// frameCall is one in-flight render shared by concurrent requesters
// (singleflight). The leader renders, stores the result, then closes done;
// joiners block on done and read data/err/seq.
type frameCall struct {
	done   chan struct{}
	data   []byte
	seq    uint64
	rung   transport.DegradeRung
	origin transport.FrameOrigin
	err    error
}

// deltaRec is one cached delta encoding of an entry's frame against a
// reference frame. The key is (refPt, refSeq): a delta is only valid
// against the exact bytes the client decoded, and reprojection makes
// re-renders of a point non-identical, so references are named by the
// store sequence number of the render that produced them — never by grid
// point alone. The record stays valid after the reference's store entry
// is evicted (validity depends on what the *client* holds, not the
// store), but dies with its own entry.
type deltaRec struct {
	refPt  geom.GridPoint
	refSeq uint64
	data   []byte
}

// maxDeltasPerEntry bounds the cached encodings per frame; the oldest is
// replaced FIFO. Sessions walking the same corridor share references, so
// a few slots cover the common reuse without letting a point fan out a
// delta per client.
const maxDeltasPerEntry = 4

// storeEntry is one cached encoded frame, threaded on its shard's LRU
// list (head is most recent, tail least). seq identifies this exact
// render (see deltaRec); deltas ride along and are charged to the byte
// budget with the frame.
type storeEntry struct {
	pt         geom.GridPoint
	data       []byte
	seq        uint64
	deltas     []deltaRec
	prev, next *storeEntry
}

// size is the entry's budget charge: frame bytes plus cached deltas.
func (e *storeEntry) size() int64 {
	n := int64(len(e.data))
	for i := range e.deltas {
		n += int64(len(e.deltas[i].data))
	}
	return n
}

// storeShard is one lock domain: a map of cached frames, their LRU order,
// and the in-flight singleflight calls for points hashing here.
type storeShard struct {
	mu      sync.Mutex
	entries map[geom.GridPoint]*storeEntry
	head    *storeEntry // most recently used
	tail    *storeEntry // least recently used
	calls   map[geom.GridPoint]*frameCall
}

// frameStore is a sharded, byte-bounded, LRU-evicting cache of encoded
// far-BE frames with singleflight render coalescing per grid point.
// The zero value is not usable; construct with newFrameStore.
type frameStore struct {
	shards []storeShard
	mask   uint64

	bytes     atomic.Int64 // total data bytes across shards
	budget    atomic.Int64 // byte budget; <= 0 means unbounded
	evictions atomic.Int64
	// seq numbers completed renders store-wide; 0 is reserved (no frame).
	seq atomic.Uint64
	// cursor round-robins eviction across shards so no one shard's
	// working set is drained preferentially.
	cursor atomic.Uint64

	// Observability (nil-safe). lockWait is sampled only when set, so the
	// uninstrumented store pays one nil check per lock, not two clock reads.
	storeBytes *obs.Gauge
	evictedCtr *obs.Counter
	lockWait   *obs.Histogram
}

// newFrameStore creates a store with the shard count rounded up to a
// power of two; shards <= 0 selects defaultStoreShards.
func newFrameStore(shards int) *frameStore {
	if shards <= 0 {
		shards = defaultStoreShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &frameStore{shards: make([]storeShard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		st.shards[i].entries = make(map[geom.GridPoint]*storeEntry)
		st.shards[i].calls = make(map[geom.GridPoint]*frameCall)
	}
	return st
}

// instrument attaches registry instruments; any may be nil.
func (st *frameStore) instrument(bytes *obs.Gauge, evictions *obs.Counter, lockWait *obs.Histogram) {
	st.storeBytes = bytes
	st.evictedCtr = evictions
	st.lockWait = lockWait
}

// shardFor hashes the grid point's two indices into a shard. The
// multiply-xor mix keeps neighbouring points (a walking player's request
// stream) from clustering in one shard.
func (st *frameStore) shardFor(pt geom.GridPoint) *storeShard {
	h := uint64(uint32(pt.I))*0x9E3779B97F4A7C15 ^ uint64(uint32(pt.J))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return &st.shards[h&st.mask]
}

// lock acquires the shard's mutex, recording the wait when instrumented.
func (st *frameStore) lock(sh *storeShard) {
	if st.lockWait == nil {
		sh.mu.Lock()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	st.lockWait.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// lookup is the singleflight entry point. It returns, in order of
// precedence: a cached frame (ok=true, the entry moved to the shard's MRU
// position); an in-flight call to join (leader=false — wait on c.done and
// read c.data/c.err); or a fresh call this caller now leads (leader=true —
// render, then finish with complete).
func (st *frameStore) lookup(pt geom.GridPoint) (data []byte, seq uint64, ok bool, c *frameCall, leader bool) {
	sh := st.shardFor(pt)
	st.lock(sh)
	if e, hit := sh.entries[pt]; hit {
		sh.moveToFront(e)
		sh.mu.Unlock()
		return e.data, e.seq, true, nil, false
	}
	if c, inflight := sh.calls[pt]; inflight {
		sh.mu.Unlock()
		return nil, 0, false, c, false
	}
	c = &frameCall{done: make(chan struct{})}
	sh.calls[pt] = c
	sh.mu.Unlock()
	return nil, 0, false, c, true
}

// peek returns the cached frame bytes and sequence for pt without joining
// or leading a render (the delta path reconstructs references from stored
// bytes and must never trigger a render — a re-render would produce
// different bytes than the ones the client decoded).
func (st *frameStore) peek(pt geom.GridPoint) (data []byte, seq uint64, ok bool) {
	sh := st.shardFor(pt)
	st.lock(sh)
	e, hit := sh.entries[pt]
	if hit {
		sh.moveToFront(e)
		data, seq = e.data, e.seq
	}
	sh.mu.Unlock()
	return data, seq, hit
}

// delta returns the cached delta encoding of frame (pt, ptSeq) against
// reference (refPt, refSeq), if one was put earlier and both entries'
// identities still match.
func (st *frameStore) delta(pt geom.GridPoint, ptSeq uint64, refPt geom.GridPoint, refSeq uint64) ([]byte, bool) {
	sh := st.shardFor(pt)
	st.lock(sh)
	defer sh.mu.Unlock()
	e, hit := sh.entries[pt]
	if !hit || e.seq != ptSeq {
		return nil, false
	}
	for i := range e.deltas {
		if e.deltas[i].refPt == refPt && e.deltas[i].refSeq == refSeq {
			return e.deltas[i].data, true
		}
	}
	return nil, false
}

// putDelta caches a delta encoding on the entry for (pt, ptSeq); a stale
// sequence (the entry was evicted and re-rendered since the caller read
// it) is dropped silently. Delta bytes count against the byte budget.
func (st *frameStore) putDelta(pt geom.GridPoint, ptSeq uint64, refPt geom.GridPoint, refSeq uint64, data []byte) {
	sh := st.shardFor(pt)
	st.lock(sh)
	e, hit := sh.entries[pt]
	if !hit || e.seq != ptSeq {
		sh.mu.Unlock()
		return
	}
	for i := range e.deltas {
		if e.deltas[i].refPt == refPt && e.deltas[i].refSeq == refSeq {
			sh.mu.Unlock()
			return // already cached by a concurrent session
		}
	}
	var freed int64
	if len(e.deltas) >= maxDeltasPerEntry {
		freed = int64(len(e.deltas[0].data))
		e.deltas = append(e.deltas[:0], e.deltas[1:]...)
	}
	e.deltas = append(e.deltas, deltaRec{refPt: refPt, refSeq: refSeq, data: data})
	sh.mu.Unlock()
	st.bytes.Add(int64(len(data)) - freed)
	st.storeBytes.Set(st.bytes.Load())
	st.enforceBudget()
}

// complete finishes a call started by lookup: it publishes data/err to the
// joiners, removes the in-flight marker, and on success — when keep is
// true — inserts the frame and enforces the byte budget. keep=false
// (shed calls, transient low-res renders) still publishes to joiners but
// leaves no store entry and allocates no sequence number, so the bytes
// can never become a rung-0 hit or a delta reference later. Frames
// larger than the whole budget are returned to callers but never stored.
func (st *frameStore) complete(pt geom.GridPoint, c *frameCall, data []byte, err error, keep bool) (seq uint64) {
	if err == nil && keep {
		seq = st.seq.Add(1)
	}
	c.data, c.seq, c.err = data, seq, err
	sh := st.shardFor(pt)
	st.lock(sh)
	delete(sh.calls, pt)
	budget := st.budget.Load()
	if err == nil && keep && (budget <= 0 || int64(len(data)) <= budget) {
		if _, dup := sh.entries[pt]; !dup {
			e := &storeEntry{pt: pt, data: data, seq: seq}
			sh.entries[pt] = e
			sh.pushFront(e)
			st.bytes.Add(int64(len(data)))
		}
	}
	sh.mu.Unlock()
	close(c.done)
	st.storeBytes.Set(st.bytes.Load())
	st.enforceBudget()
	return seq
}

// SetBudget sets the byte budget (<= 0 means unbounded) and immediately
// evicts down to it.
func (st *frameStore) SetBudget(n int64) {
	st.budget.Store(n)
	st.enforceBudget()
}

// Budget returns the current byte budget (<= 0 means unbounded).
func (st *frameStore) Budget() int64 { return st.budget.Load() }

// Bytes returns the total stored frame bytes.
func (st *frameStore) Bytes() int64 { return st.bytes.Load() }

// Evictions returns the number of frames evicted so far.
func (st *frameStore) Evictions() int64 { return st.evictions.Load() }

// Len returns the number of cached frames.
func (st *frameStore) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		st.lock(sh)
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// enforceBudget evicts least-recently-used frames, visiting shards
// round-robin from a shared cursor, until the store fits its budget. Each
// eviction pops one shard's LRU tail; in-flight readers holding slices of
// an evicted frame are unaffected (the buffer is simply unreferenced by
// the store). Shards are locked one at a time, so eviction never holds
// two locks.
func (st *frameStore) enforceBudget() {
	budget := st.budget.Load()
	if budget <= 0 {
		return
	}
	evicted := false
	for st.bytes.Load() > budget {
		freed := false
		// One full round over the shards; if nothing was freed the store
		// is empty (or emptied by a concurrent evictor) and we stop.
		for range st.shards {
			i := st.cursor.Add(1) & st.mask
			sh := &st.shards[i]
			st.lock(sh)
			e := sh.tail
			if e == nil {
				sh.mu.Unlock()
				continue
			}
			sh.unlink(e)
			delete(sh.entries, e.pt)
			sh.mu.Unlock()
			// The entry's cached deltas die with it; deltas encoded
			// against it elsewhere stay valid (their reference is what the
			// client holds, not this entry).
			st.bytes.Add(-e.size())
			st.evictions.Add(1)
			st.evictedCtr.Inc()
			evicted = true
			freed = true
			break
		}
		if !freed {
			break
		}
	}
	if evicted {
		st.storeBytes.Set(st.bytes.Load())
	}
}

// pushFront links a new entry at the MRU position. Caller holds sh.mu.
func (sh *storeShard) pushFront(e *storeEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes an entry from the LRU list. Caller holds sh.mu.
func (sh *storeShard) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most recently used. Caller holds sh.mu.
func (sh *storeShard) moveToFront(e *storeEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
