package obs

import (
	"io"
	"log/slog"
	"testing"
	"time"
)

// sloAt builds a tracker with a 10 s short / 30 s long window and a 90%
// objective (10% error budget), quiet logger.
func sloForTest() *SLO {
	return NewSLO(SLOConfig{
		Objective:   0.9,
		ShortWindow: 10 * time.Second,
		LongWindow:  30 * time.Second,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
}

// TestSLOBurnRateMath: burn rate is error rate over budget. 1 bad in 10
// frames against a 10% budget burns exactly 1.0; all-bad burns 10.
func TestSLOBurnRateMath(t *testing.T) {
	s := sloForTest()
	base := 100_000.0 // sec 100
	for i := 0; i < 9; i++ {
		s.ObserveAt(base, true)
	}
	s.ObserveAt(base, false)

	snap := s.SnapshotAt(base)
	if snap.Short.Frames != 10 || snap.Short.BadFrames != 1 {
		t.Fatalf("short tally = %d/%d, want 1/10", snap.Short.BadFrames, snap.Short.Frames)
	}
	if got, want := snap.Short.ErrorRate, 0.1; !near(got, want) {
		t.Errorf("short error rate = %v, want %v", got, want)
	}
	if got, want := snap.Short.BurnRate, 1.0; !near(got, want) {
		t.Errorf("short burn rate = %v, want %v", got, want)
	}
	if got, want := snap.Long.BurnRate, 1.0; !near(got, want) {
		t.Errorf("long burn rate = %v, want %v", got, want)
	}
	if snap.TotalFrames != 10 || snap.TotalBad != 1 {
		t.Errorf("totals = %d/%d, want 1/10", snap.TotalBad, snap.TotalFrames)
	}
	if snap.FastBurn {
		t.Error("burn 1.0 flagged as fast burn")
	}
}

// TestSLOWindowRollAtBucketEdge: observations at second S stay in the
// short window through its last covered second (S+9 for a 10 s window)
// and vanish exactly at S+10; the long window holds them until S+30.
func TestSLOWindowRollAtBucketEdge(t *testing.T) {
	s := sloForTest()
	sec := func(n int64) float64 { return float64(n) * 1000 }
	for i := 0; i < 5; i++ {
		s.ObserveAt(sec(100), false)
	}

	if got := s.SnapshotAt(sec(109)).Short.Frames; got != 5 {
		t.Errorf("short frames at edge second 109 = %d, want 5", got)
	}
	if got := s.SnapshotAt(sec(110)).Short.Frames; got != 0 {
		t.Errorf("short frames past edge second 110 = %d, want 0", got)
	}
	if got := s.SnapshotAt(sec(110)).Long.Frames; got != 5 {
		t.Errorf("long frames at second 110 = %d, want 5", got)
	}
	if got := s.SnapshotAt(sec(129)).Long.Frames; got != 5 {
		t.Errorf("long frames at edge second 129 = %d, want 5", got)
	}
	if got := s.SnapshotAt(sec(130)).Long.Frames; got != 0 {
		t.Errorf("long frames past edge second 130 = %d, want 0", got)
	}
	// Totals never expire with the windows.
	if snap := s.SnapshotAt(sec(130)); snap.TotalFrames != 5 || snap.TotalBad != 5 {
		t.Errorf("totals = %d/%d, want 5/5", snap.TotalBad, snap.TotalFrames)
	}
}

// TestSLORingReclaim: a second that maps onto the same ring slot as an
// expired one (sec + longWindow) reclaims the bucket rather than merging
// with the stale tally.
func TestSLORingReclaim(t *testing.T) {
	s := sloForTest()
	s.ObserveAt(100_000, false) // sec 100
	s.ObserveAt(100_000, false)
	s.ObserveAt(130_000, true) // sec 130: same slot in a 30-bucket ring

	snap := s.SnapshotAt(130_000)
	if snap.Long.Frames != 1 || snap.Long.BadFrames != 0 {
		t.Errorf("long tally after reclaim = %d bad / %d frames, want 0/1", snap.Long.BadFrames, snap.Long.Frames)
	}
	if snap.TotalFrames != 3 || snap.TotalBad != 2 {
		t.Errorf("totals = %d/%d, want 2/3", snap.TotalBad, snap.TotalFrames)
	}
}

// TestSLOGaugesAndFastBurn: crossing into a new second refreshes the
// milli-unit burn gauges, and a sustained all-bad burn (rate 10 at a 10%
// budget) trips the rate-limited fast-burn warning counter exactly once
// per short window.
func TestSLOGaugesAndFastBurn(t *testing.T) {
	s := sloForTest()
	r := NewRegistry()
	s.Instrument(r)

	// Fill both windows with all-bad seconds: burn = (1/1)/0.1 = 10 on
	// both, at and above the default fast-burn threshold.
	for sec := int64(100); sec < 140; sec++ {
		s.ObserveAt(float64(sec)*1000, false)
	}
	snap := r.Snapshot()
	if got := snap.Gauges["slo.burn_rate_1m_milli"]; got != 10_000 {
		t.Errorf("short burn gauge = %d, want 10000", got)
	}
	if got := snap.Gauges["slo.burn_rate_5m_milli"]; got != 10_000 {
		t.Errorf("long burn gauge = %d, want 10000", got)
	}
	if got := snap.Counters["slo.frames"]; got != 40 {
		t.Errorf("slo.frames = %d, want 40", got)
	}
	if got := snap.Counters["slo.bad_frames"]; got != 40 {
		t.Errorf("slo.bad_frames = %d, want 40", got)
	}
	// 40 all-bad seconds with a 10 s short window: warnings at most once
	// per window → 4 expected (seconds 100, 110, 120, 130).
	if got := snap.Counters["slo.fast_burn_warnings"]; got != 4 {
		t.Errorf("slo.fast_burn_warnings = %d, want 4", got)
	}
	if !s.SnapshotAt(139_000).FastBurn {
		t.Error("snapshot does not report fast burn")
	}

	// Recovery: a full short window of good frames drops the short gauge
	// to zero.
	for sec := int64(140); sec < 151; sec++ {
		s.ObserveAt(float64(sec)*1000, true)
	}
	if got := r.Snapshot().Gauges["slo.burn_rate_1m_milli"]; got != 0 {
		t.Errorf("short burn gauge after recovery = %d, want 0", got)
	}
}

// TestSLONilSafety: the nil tracker is inert everywhere the server might
// touch it.
func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Observe(true)
	s.ObserveAt(1000, false)
	s.Instrument(NewRegistry())
	if s.BudgetMs() != 0 {
		t.Error("nil BudgetMs != 0")
	}
	if snap := s.Snapshot(); snap.TotalFrames != 0 {
		t.Error("nil Snapshot not empty")
	}
}

func near(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
