package obs

import "sync"

// defaultTraceSlots is the ring capacity: at 60 fps it holds the last
// ~8.5 seconds of frames for one player.
const defaultTraceSlots = 512

// FrameSpan breaks one displayed frame into the per-stage spans of the
// paper's latency accounting (Eq. 2, Tables 1/5): the parallel tasks the
// frame interval is the max over, plus where the display budget went. All
// durations are virtual session milliseconds, so spans from the simulated
// and live backends are directly comparable.
type FrameSpan struct {
	Player int   `json:"player"`
	Frame  int64 `json:"frame"` // 1-based display sequence for the player
	// StartMs is the pose-sampling time; DisplayMs is when the frame
	// reached the display (vsync-floored).
	StartMs   float64 `json:"start_ms"`
	DisplayMs float64 `json:"display_ms"`
	// LocalMs is the on-device render span (FI + near BE, or the full
	// scene for the Mobile baseline).
	LocalMs float64 `json:"local_ms"`
	// FetchMs is the span the display path waited on the BE frame for
	// *this* interval: 0 when the cache lookup hit, the fetch RTT when it
	// had to go to the server.
	FetchMs float64 `json:"fetch_ms"`
	// NetMs, QueueMs, RenderMs and EncodeMs decompose the fetch that
	// delivered the displayed BE frame (span schema v2): network transit
	// plus reply write, server-side queue wait (connection queue and
	// singleflight sharing), server render, and server encode. The live
	// backend carries these over the wire in the frame reply; the netsim
	// backend emits them natively from its server model, so sim and live
	// traces decompose identically. All four are zero on a cache hit. The
	// sum equals the delivering fetch's full round trip, which can exceed
	// FetchMs when the display attached to a transfer already in flight.
	NetMs    float64 `json:"net_ms"`
	QueueMs  float64 `json:"queue_ms"`
	RenderMs float64 `json:"render_ms"`
	EncodeMs float64 `json:"encode_ms"`
	// HopMs is the cluster proxy overhead when the delivering fetch was
	// peer-served: the proxying node's wall time around the peer hop
	// (dial/pool wait plus hop transit) minus the owner's echoed stages.
	// Zero for local and failover frames, so the v2 identity extends to
	// Net+Hop+Queue+Render+Encode across every origin.
	HopMs float64 `json:"hop_ms,omitempty"`
	// PrefetchMs is the span of the tracked prefetch for the *next* grid
	// point (the T_prefetch term); 0 when the prefetch request hit the
	// cache and no transfer was needed.
	PrefetchMs float64 `json:"prefetch_ms"`
	// DecodeMs is the hardware-decode span for the displayed BE frame.
	DecodeMs float64 `json:"decode_ms"`
	// JoinMs is the Eq. 2 join: the max over the parallel tasks (FI sync
	// round trip, prefetch issue) measured from frame start.
	JoinMs float64 `json:"join_ms"`
	// SlackMs is the display slack: how long the finished pipeline waited
	// for the vsync floor. Zero means the frame consumed its full budget.
	SlackMs float64 `json:"slack_ms"`
	// CacheHit reports whether the displayed BE frame came out of the
	// similarity cache; Prefetched whether a tracked prefetch transfer was
	// in flight this frame.
	CacheHit   bool `json:"cache_hit"`
	Prefetched bool `json:"prefetched"`
	// DeltaFrame reports whether the fetch this frame waited on was served
	// delta-coded against a reference this client already held.
	DeltaFrame bool `json:"delta_frame"`
	// DegradeRung is the quality-degrade rung of the delivering fetch
	// (transport.DegradeRung values: 0 exact, 1 stale-similar, 2
	// reprojected-under-pressure, 3 low-res upscaled). Always 0 on cache
	// hits and on backends without a deadline scheduler.
	DegradeRung uint8 `json:"degrade_rung"`
	// Origin is where the serving node got the delivering fetch's bytes
	// (transport.FrameOrigin values: 0 local, 1 fetched from the grid
	// point's cluster owner, 2 failover re-render of a remotely owned
	// point). Always 0 on cache hits and outside cluster deployments.
	Origin uint8 `json:"origin"`
	// TraceID names the distributed trace the delivering fetch belongs to.
	// It is derived from the v2 request context (player and request id, see
	// TraceID()), forwarded verbatim across MsgPeerFrameRequest hops, and
	// recorded on every node that touched the request — so the client span,
	// the proxy's hop span, and the owner's serve span of one peer-served
	// frame all carry the same id. Zero when no fetch backed the frame.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Hop marks server-side spans: 0 is a client display span, 1 a span
	// recorded by the node that served (or proxied) the fetch, 2 a span
	// recorded by the rendezvous owner answering a peer hop.
	Hop uint8 `json:"hop,omitempty"`
}

// TraceID composes the distributed trace id of one v2 frame request from
// its wire context: the requesting player and the per-connection request
// id. Every node deriving the id from the same forwarded request context
// computes the same value, which is what makes cross-node span joins
// work without any extra wire field.
func TraceID(player uint8, reqID uint32) uint64 {
	return uint64(player)<<32 | uint64(reqID)
}

// FetchStages decomposes one BE-frame fetch round trip across the
// client/server boundary (trace-context v2). Sources fill it when a fetch
// completes; the pipeline copies it into the FrameSpan of the frame that
// waited on the fetch. All durations are virtual session milliseconds.
type FetchStages struct {
	// NetMs is everything the server did not account for: request and
	// reply transit plus reply marshalling/write. It is derived as
	// RTTMs minus the server-side stages, so the identity
	// NetMs+QueueMs+RenderMs+EncodeMs == RTTMs holds exactly.
	NetMs float64
	// QueueMs is the server-side wait before stage work began: connection
	// queueing plus singleflight waiting on another request's render.
	QueueMs float64
	// RenderMs and EncodeMs are the server's render and encode spans,
	// zero when the frame came out of the server's frame store.
	RenderMs float64
	EncodeMs float64
	// HopMs is the cluster proxy overhead for peer-origin frames (see
	// FrameSpan.HopMs); zero otherwise.
	HopMs float64
	// RTTMs is the full fetch round trip as the client measured it, from
	// request issue to delivery.
	RTTMs float64
	// OffsetMs is the estimated server-minus-client clock offset
	// (NTP-style, from the request/reply timestamps); 0 for backends that
	// share one clock.
	OffsetMs float64
	// DeltaFrame reports whether the frame arrived delta-coded against a
	// held reference instead of intra-coded.
	DeltaFrame bool
	// DegradeRung is the server's quality-degrade rung for the frame
	// (transport.DegradeRung values); 0 when the frame is exact.
	DegradeRung uint8
	// Origin is where the serving node got the frame's bytes
	// (transport.FrameOrigin values); 0 outside cluster deployments.
	Origin uint8
	// TraceID is the distributed trace id of the fetch (see
	// FrameSpan.TraceID); 0 when the source does not trace.
	TraceID uint64
	// Valid marks stages actually populated by the source.
	Valid bool
}

// TraceRing is a fixed-capacity ring of FrameSpans. Slots are allocated
// once; recording copies the caller's span into the next slot, so the hot
// path never allocates. The mutex is uncontended in practice (one writer
// per clock goroutine, readers only on the cold /trace endpoint).
//
// All methods tolerate a nil receiver, so a disabled registry costs one
// branch.
type TraceRing struct {
	mu    sync.Mutex
	slots []FrameSpan
	total uint64 // spans ever recorded
}

// NewTraceRing creates a ring with n pooled span slots (the default
// capacity if n <= 0).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = defaultTraceSlots
	}
	return &TraceRing{slots: make([]FrameSpan, n)}
}

// Record copies the span into the next slot, overwriting the oldest.
func (t *TraceRing) Record(sp *FrameSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slots[t.total%uint64(len(t.slots))] = *sp
	t.total++
	t.mu.Unlock()
}

// Recorded returns the number of spans ever recorded.
func (t *TraceRing) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns the ring capacity in slots (0 for a nil ring).
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// RecentFor returns up to n of the most recent spans for one player,
// oldest first; player < 0 matches every player (same as Recent). Like
// Recent, it is the cold reporting path and allocates a fresh copy.
func (t *TraceRing) RecentFor(n, player int) []FrameSpan {
	if player < 0 {
		return t.Recent(n)
	}
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	avail := t.total
	if avail > uint64(len(t.slots)) {
		avail = uint64(len(t.slots))
	}
	var out []FrameSpan
	// Scan newest to oldest collecting matches, then reverse into
	// oldest-first order.
	for i := uint64(0); i < avail && len(out) < n; i++ {
		idx := (t.total - 1 - i) % uint64(len(t.slots))
		if t.slots[idx].Player == player {
			out = append(out, t.slots[idx])
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ForTrace returns every span in the ring carrying the given non-zero
// trace id, oldest first. This is the cold path behind /trace?trace= and
// the cross-node join tests; it allocates a fresh copy.
func (t *TraceRing) ForTrace(id uint64) []FrameSpan {
	if t == nil || id == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	avail := t.total
	if avail > uint64(len(t.slots)) {
		avail = uint64(len(t.slots))
	}
	var out []FrameSpan
	for i := uint64(0); i < avail; i++ {
		idx := (t.total - avail + i) % uint64(len(t.slots))
		if t.slots[idx].TraceID == id {
			out = append(out, t.slots[idx])
		}
	}
	return out
}

// Recent returns up to n of the most recent spans, oldest first. It
// allocates a fresh copy; this is the cold reporting path.
func (t *TraceRing) Recent(n int) []FrameSpan {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	avail := t.total
	if avail > uint64(len(t.slots)) {
		avail = uint64(len(t.slots))
	}
	if uint64(n) > avail {
		n = int(avail)
	}
	out := make([]FrameSpan, n)
	for i := 0; i < n; i++ {
		idx := (t.total - uint64(n) + uint64(i)) % uint64(len(t.slots))
		out[i] = t.slots[idx]
	}
	return out
}
