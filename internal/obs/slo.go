package obs

import (
	"log/slog"
	"sync"
	"time"
)

// SLO is a windowed error-budget tracker for the frame-serving objective
// ("99% of frames within the 16.7 ms budget"). Observations land in
// per-second buckets on a fixed ring sized to the long window, so the
// tracker's memory is constant and old seconds expire by being
// overwritten — there is no background goroutine. Burn rate is the
// classic SRE ratio: the observed error rate over a window divided by
// the error budget the objective allows (1 − objective). Burn 1.0 means
// the budget is being consumed exactly as provisioned; a fast burn
// (both windows well above 1) means the budget will be gone long before
// the window ends and is worth waking someone for.
//
// What counts against the budget is the caller's choice: the server
// marks a frame bad when it blew its deadline budget, was served off a
// degrade rung, or was a failover re-render — quality loss spends the
// budget exactly like lateness does.
//
// All methods tolerate a nil receiver, so an unconfigured tracker costs
// one branch.
type SLO struct {
	mu sync.Mutex

	objective float64 // fraction of frames that must be good
	budgetMs  float64 // latency budget a good frame must meet
	shortS    int64   // short window, seconds
	longS     int64   // long window, seconds
	fastBurn  float64 // burn-rate threshold for fast-burn warnings

	buckets []sloBucket // ring over the long window, one bucket per second

	totalFrames int64
	totalBad    int64

	// lastSec is the second of the newest observation; gauges are
	// refreshed when an observation crosses into a new second, so the hot
	// path pays the O(window) sums at most once per second.
	lastSec    int64
	lastWarnS  int64
	nowMs      func() float64
	logger     *slog.Logger
	burnShort  *Gauge // milli-units (burn 1.0 → 1000)
	burnLong   *Gauge
	frames     *Counter
	badFrames  *Counter
	fastBurns  *Counter
}

type sloBucket struct {
	sec    int64
	frames int64
	bad    int64
}

// SLOConfig configures the tracker; zero fields take defaults.
type SLOConfig struct {
	// Objective is the fraction of frames that must be good (default
	// 0.99, i.e. a 1% error budget).
	Objective float64
	// BudgetMs is the latency budget a good frame must meet (default
	// FrameBudgetMs). Informational: callers decide goodness, the budget
	// is echoed in snapshots so dashboards show what was asked.
	BudgetMs float64
	// ShortWindow and LongWindow are the two burn-rate windows (defaults
	// 1 m and 5 m). The ring is sized to LongWindow.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// FastBurnThreshold is the burn rate above which — on both windows at
	// once — the tracker logs a warning (default 10: the 1% budget gone
	// in a tenth of the window).
	FastBurnThreshold float64
	// Logger receives fast-burn warnings (default slog.Default()).
	Logger *slog.Logger
}

// Defaults for SLOConfig's zero fields.
const (
	DefaultSLOObjective = 0.99
	DefaultSLOFastBurn  = 10.0
)

const (
	defaultSLOShortWindow = time.Minute
	defaultSLOLongWindow  = 5 * time.Minute
)

// NewSLO creates a tracker. The zero-value config gives a 99%-within-
// 16.7 ms objective over 1 m / 5 m windows.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = DefaultSLOObjective
	}
	if cfg.BudgetMs <= 0 {
		cfg.BudgetMs = FrameBudgetMs
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = defaultSLOShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = defaultSLOLongWindow
	}
	if cfg.LongWindow < cfg.ShortWindow {
		cfg.LongWindow = cfg.ShortWindow
	}
	if cfg.FastBurnThreshold <= 0 {
		cfg.FastBurnThreshold = DefaultSLOFastBurn
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	longS := int64(cfg.LongWindow / time.Second)
	if longS < 1 {
		longS = 1
	}
	shortS := int64(cfg.ShortWindow / time.Second)
	if shortS < 1 {
		shortS = 1
	}
	return &SLO{
		objective: cfg.Objective,
		budgetMs:  cfg.BudgetMs,
		shortS:    shortS,
		longS:     longS,
		fastBurn:  cfg.FastBurnThreshold,
		buckets:   make([]sloBucket, longS),
		lastSec:   -1,
		lastWarnS: -1,
		nowMs:     func() float64 { return float64(time.Now().UnixNano()) / 1e6 },
		logger:    cfg.Logger,
	}
}

// Instrument resolves the tracker's registry instruments: burn-rate
// gauges in milli-units (`slo.burn_rate_1m_milli` reads 1000 at burn
// 1.0 — gauges are integral) and running frame/bad counters.
func (s *SLO) Instrument(r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.burnShort = r.Gauge("slo.burn_rate_1m_milli")
	s.burnLong = r.Gauge("slo.burn_rate_5m_milli")
	s.frames = r.Counter("slo.frames")
	s.badFrames = r.Counter("slo.bad_frames")
	s.fastBurns = r.Counter("slo.fast_burn_warnings")
	s.mu.Unlock()
}

// BudgetMs returns the configured latency budget (0 for a nil tracker).
func (s *SLO) BudgetMs() float64 {
	if s == nil {
		return 0
	}
	return s.budgetMs
}

// Observe records one frame against the budget at the current wall time.
func (s *SLO) Observe(good bool) {
	if s == nil {
		return
	}
	s.ObserveAt(s.nowMs(), good)
}

// ObserveAt records one frame at an explicit wall time in milliseconds.
// Time is expected to move forward; an observation older than the ring
// simply lands in a bucket that the next fresh second reclaims.
func (s *SLO) ObserveAt(wallMs float64, good bool) {
	if s == nil {
		return
	}
	sec := int64(wallMs / 1000)
	s.mu.Lock()
	b := &s.buckets[((sec%s.longS)+s.longS)%s.longS]
	if b.sec != sec {
		b.sec, b.frames, b.bad = sec, 0, 0
	}
	b.frames++
	s.totalFrames++
	if !good {
		b.bad++
		s.totalBad++
	}
	rolled := sec != s.lastSec
	s.lastSec = sec
	var short, long sloWindowTally
	if rolled {
		short = s.tallyLocked(sec, s.shortS)
		long = s.tallyLocked(sec, s.longS)
	}
	s.mu.Unlock()

	s.frames.Inc()
	if !good {
		s.badFrames.Inc()
	}
	if rolled {
		s.publish(sec, short, long)
	}
}

// sloWindowTally is a window sum used internally and in snapshots.
type sloWindowTally struct {
	frames int64
	bad    int64
}

// tallyLocked sums the buckets covering (sec−window, sec]. Caller holds
// s.mu.
func (s *SLO) tallyLocked(sec, window int64) sloWindowTally {
	var t sloWindowTally
	for i := int64(0); i < window; i++ {
		at := sec - i
		b := &s.buckets[((at%s.longS)+s.longS)%s.longS]
		if b.sec != at {
			continue // bucket holds another second (expired or future)
		}
		t.frames += b.frames
		t.bad += b.bad
	}
	return t
}

// burnRate converts a window tally into a burn rate: error rate over the
// budget rate. An empty window burns nothing.
func (s *SLO) burnRate(t sloWindowTally) float64 {
	if t.frames == 0 {
		return 0
	}
	return (float64(t.bad) / float64(t.frames)) / (1 - s.objective)
}

// publish refreshes the gauges and emits the rate-limited fast-burn
// warning. Called outside the mutex, at most once per second.
func (s *SLO) publish(sec int64, short, long sloWindowTally) {
	bs, bl := s.burnRate(short), s.burnRate(long)
	s.burnShort.Set(int64(bs * 1000))
	s.burnLong.Set(int64(bl * 1000))
	if bs >= s.fastBurn && bl >= s.fastBurn && sec-s.lastWarnS >= s.shortS {
		s.mu.Lock()
		warn := sec-s.lastWarnS >= s.shortS
		if warn {
			s.lastWarnS = sec
		}
		s.mu.Unlock()
		if warn {
			s.fastBurns.Inc()
			s.logger.Warn("slo fast burn",
				"objective", s.objective,
				"burn_rate_short", bs,
				"burn_rate_long", bl,
				"bad_short", short.bad,
				"frames_short", short.frames)
		}
	}
}

// SLOWindow is the per-window slice of an SLO snapshot.
type SLOWindow struct {
	Seconds   int64   `json:"seconds"`
	Frames    int64   `json:"frames"`
	BadFrames int64   `json:"bad_frames"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
}

// SLOSnapshot is the JSON shape served at /slo.
type SLOSnapshot struct {
	Objective   float64   `json:"objective"`
	BudgetMs    float64   `json:"budget_ms"`
	TotalFrames int64     `json:"total_frames"`
	TotalBad    int64     `json:"total_bad_frames"`
	Short       SLOWindow `json:"short"`
	Long        SLOWindow `json:"long"`
	// FastBurn reports that both windows currently burn at or above the
	// configured fast-burn threshold.
	FastBurn bool `json:"fast_burn"`
}

// Snapshot summarises the tracker at the current wall time.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	return s.SnapshotAt(s.nowMs())
}

// SnapshotAt summarises the tracker as of an explicit wall time in
// milliseconds (exact window arithmetic for tests).
func (s *SLO) SnapshotAt(wallMs float64) SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	sec := int64(wallMs / 1000)
	s.mu.Lock()
	short := s.tallyLocked(sec, s.shortS)
	long := s.tallyLocked(sec, s.longS)
	snap := SLOSnapshot{
		Objective:   s.objective,
		BudgetMs:    s.budgetMs,
		TotalFrames: s.totalFrames,
		TotalBad:    s.totalBad,
	}
	s.mu.Unlock()
	snap.Short = s.window(s.shortS, short)
	snap.Long = s.window(s.longS, long)
	snap.FastBurn = snap.Short.BurnRate >= s.fastBurn && snap.Long.BurnRate >= s.fastBurn
	return snap
}

func (s *SLO) window(seconds int64, t sloWindowTally) SLOWindow {
	w := SLOWindow{Seconds: seconds, Frames: t.frames, BadFrames: t.bad}
	if t.frames > 0 {
		w.ErrorRate = float64(t.bad) / float64(t.frames)
	}
	w.BurnRate = s.burnRate(t)
	return w
}
