package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// This file is the admin surface of the registry: the opt-in HTTP
// listener the live server exposes with -admin. It serves
//
//	/metrics      JSON registry snapshot (counters, gauges, histograms)
//	/trace        recent per-frame stage spans from the trace ring
//	/debug/vars   expvar (includes the registry once PublishExpvar ran)
//	/debug/pprof  the standard Go profiling endpoints
//
// Everything here is a cold path; the hot-path budget lives in obs.go.

// maxTraceSpans bounds one /trace response.
const maxTraceSpans = 4096

// AdminMux returns the admin HTTP handler for a registry.
func AdminMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		n := 128
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		if n > maxTraceSpans {
			n = maxTraceSpans
		}
		spans := r.Trace().Recent(n)
		if spans == nil {
			spans = []FrameSpan{}
		}
		writeJSON(w, spans)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PublishExpvar publishes the registry's snapshot under the given name in
// the process-wide expvar namespace (served on /debug/vars). Publishing
// the same name twice is a no-op rather than expvar's panic, so tests and
// restarting callers are safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
