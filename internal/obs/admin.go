package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// This file is the admin surface of the registry: the opt-in HTTP
// listener the live server exposes with -admin. It serves
//
//	/metrics      JSON registry snapshot (counters, gauges, histograms)
//	/trace        recent per-frame stage spans from the trace ring
//	              (?n= recent count, ?player= one player's spans only,
//	              ?trace= every span of one distributed trace id)
//	/qoe          sliding-window QoE summary derived from the spans
//	              (?window= ms, ?budget= ms, ?player=)
//	/slo          error-budget snapshot of the registry's SLO tracker
//	              (burn rates over the short/long windows; zero-valued
//	              when no tracker is attached)
//	/debug/vars   expvar (includes the registry once PublishExpvar ran)
//	/debug/pprof  the standard Go profiling endpoints
//
// Everything here is a cold path; the hot-path budget lives in obs.go.

// maxTraceSpans bounds one /trace response.
const maxTraceSpans = 4096

// AdminMux returns the admin HTTP handler for a registry.
func AdminMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		n := 128
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		if n > maxTraceSpans {
			n = maxTraceSpans
		}
		player, ok := playerParam(req)
		if !ok {
			http.Error(w, "bad player", http.StatusBadRequest)
			return
		}
		spans := r.Trace().RecentFor(n, player)
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil || id == 0 {
				http.Error(w, "bad trace", http.StatusBadRequest)
				return
			}
			spans = r.Trace().ForTrace(id)
		}
		if spans == nil {
			spans = []FrameSpan{}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/qoe", func(w http.ResponseWriter, req *http.Request) {
		cfg := QoEConfig{Player: -1}
		if q := req.URL.Query().Get("window"); q != "" {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad window", http.StatusBadRequest)
				return
			}
			cfg.WindowMs = v
		}
		if q := req.URL.Query().Get("budget"); q != "" {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad budget", http.StatusBadRequest)
				return
			}
			cfg.BudgetMs = v
		}
		player, ok := playerParam(req)
		if !ok {
			http.Error(w, "bad player", http.StatusBadRequest)
			return
		}
		cfg.Player = player
		writeJSON(w, r.QoE(cfg))
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.SLO().Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PublishExpvar publishes the registry's snapshot under the given name in
// the process-wide expvar namespace (served on /debug/vars). Publishing
// the same name twice is a no-op rather than expvar's panic, so tests and
// restarting callers are safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// playerParam parses an optional ?player= query value; absence means all
// players (-1). ok is false on a malformed value.
func playerParam(req *http.Request) (player int, ok bool) {
	q := req.URL.Query().Get("player")
	if q == "" {
		return -1, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
