// Package obs is Coterie's observability subsystem: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with quantile snapshots) plus a per-frame trace ring buffer
// (trace.go) that records where each frame's 16.7 ms budget went.
//
// The paper's evaluation (§7, Tables 1/5, Fig 11/12) is built entirely on
// per-stage latency and bandwidth breakdowns — fetch vs. decode vs.
// compose vs. display — so the instruments here mirror exactly those
// stages. The same instruments are wired into both backends of the shared
// client runtime (the discrete-event testbed and the live TCP/UDP stack),
// so a registry snapshot answers the same questions for a simulated run
// and a live session.
//
// Design constraints, in order:
//
//   - Hot-path safe: recording is a nil check plus an atomic add. No
//     allocation, no locks, no map lookups — instruments are resolved to
//     pointers once at wiring time and held in struct fields.
//   - Disabled is (near) free: every method tolerates a nil receiver, and
//     a nil *Registry hands out nil instruments, so uninstrumented runs
//     (all the eval generators) pay only a predictable nil branch.
//   - Dependency-free: stdlib only, importable from every layer.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (e.g. active sessions, bytes
// resident in a cache). Safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds (milliseconds) used when
// none are given: roughly geometric, with an exact bucket edge at the
// 16.7 ms vsync budget so "made the frame deadline" is directly readable
// from the histogram.
var DefaultLatencyBuckets = []float64{
	0.25, 0.5, 1, 2, 4, 8, 16.7, 33.3, 66.7, 133, 267, 533, 1067, 2133,
}

// Histogram is a fixed-bucket latency histogram. Observations land in
// atomic per-bucket counters, so recording is lock- and allocation-free;
// quantiles are estimated at snapshot time by linear interpolation within
// the winning bucket. Safe on a nil receiver.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; +Inf bucket is implicit
	counts    []atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64 // sum in microseconds: atomic without float CAS
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds (DefaultLatencyBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (typically milliseconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: the bucket list is short (~14) and the scan is
	// branch-predictable, beating a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(v * 1000))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds and Counts expose the raw buckets; Counts has one extra
	// entry for the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot summarises the histogram. Concurrent observations may tear
// totals by a sample or two; snapshots are for reporting, not accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Mean = float64(h.sumMicros.Load()) / 1000 / float64(s.Count)
		s.P50 = quantile(h.bounds, s.Counts, s.Count, 0.50)
		s.P95 = quantile(h.bounds, s.Counts, s.Count, 0.95)
		s.P99 = quantile(h.bounds, s.Counts, s.Count, 0.99)
	}
	return s
}

// quantile estimates the q-quantile from bucket counts by linear
// interpolation within the bucket holding the target rank. The overflow
// bucket reports its lower bound (the largest finite edge).
func quantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) { // overflow bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Registry names and owns a process's instruments. Lookups are idempotent
// — two callers asking for "cache.hits" share one counter — so the sim's
// per-player caches aggregate into one instrument, matching how the paper
// reports per-system totals. A nil *Registry is a valid "disabled"
// registry: it hands out nil instruments, whose methods no-op.
//
// Lookup takes a mutex and must happen at wiring time, never per frame.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *TraceRing
	slo      *SLO
}

// NewRegistry creates an empty registry with a trace ring of the default
// capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    NewTraceRing(defaultTraceSlots),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds (DefaultLatencyBuckets when none) on first use. Bounds are fixed
// by the first caller; later callers share the instrument as-is.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's frame trace ring (nil on a nil registry).
func (r *Registry) Trace() *TraceRing {
	if r == nil {
		return nil
	}
	return r.trace
}

// SetSLO attaches an SLO tracker, resolving its gauges and counters in
// this registry and serving it at the admin mux's /slo endpoint.
func (r *Registry) SetSLO(s *SLO) {
	if r == nil {
		return
	}
	s.Instrument(r)
	r.mu.Lock()
	r.slo = s
	r.mu.Unlock()
}

// SLO returns the attached SLO tracker (nil when none is attached; a nil
// tracker's methods no-op and snapshot to zero values).
func (r *Registry) SLO() *SLO {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slo
}

// Snapshot is a point-in-time copy of every instrument, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all instruments. Values are read without a global
// pause, so counters related by an invariant may be skewed by in-flight
// updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// Dump writes a deterministic, human-scannable text rendering of the
// snapshot (sorted by name), for logs and test failure messages.
func (s Snapshot) Dump() string {
	var out []byte
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out = fmt.Appendf(out, "counter %-36s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out = fmt.Appendf(out, "gauge   %-36s %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		out = fmt.Appendf(out, "hist    %-36s n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f\n",
			k, h.Count, h.Mean, h.P50, h.P95, h.P99)
	}
	return string(out)
}
