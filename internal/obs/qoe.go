package obs

import "sort"

// QoE/SLO monitoring on top of the per-frame trace ring: sliding-window
// FPS, missed-vsync ratio, and frame-budget compliance against the
// 16.7 ms/frame budget the paper's QoE evaluation (Table 7) is built on,
// plus per-player cache-hit rate. Everything here is a cold path — QoE is
// computed on demand from recorded spans (the /qoe admin endpoint, the
// -metrics-json dump, cmd/obsreport); nothing is added to the per-frame
// recording cost.

// FrameBudgetMs is the per-frame display budget at 60 Hz: a pipeline
// that finishes within it never misses a vsync.
const FrameBudgetMs = 16.7

// DefaultQoEWindowMs is the sliding-window length QoE statistics cover
// when the caller does not choose one (~2 s: long enough to smooth
// per-frame jitter, short enough to track QoE changes mid-session).
const DefaultQoEWindowMs = 2000

// missedVsyncFactor: a frame interval beyond this multiple of the budget
// means the frame slipped past its vsync slot (the floor is one budget
// interval, so anything at 1.5x or more skipped at least one refresh).
const missedVsyncFactor = 1.5

// QoEConfig tunes a QoE computation.
type QoEConfig struct {
	// WindowMs is the sliding-window length anchored at the most recent
	// displayed frame; <= 0 means DefaultQoEWindowMs.
	WindowMs float64
	// BudgetMs is the per-frame budget compliance is judged against;
	// <= 0 means FrameBudgetMs.
	BudgetMs float64
	// Player restricts the computation to one player; < 0 means all.
	Player int
}

// PlayerQoE summarises one player's QoE over the window.
type PlayerQoE struct {
	Player int `json:"player"`
	// Frames is the number of displayed frames inside the window.
	Frames int `json:"frames"`
	// WindowFPS is the display rate over the window (frames over the
	// span between the first and last display in it).
	WindowFPS float64 `json:"window_fps"`
	// MissedVsyncRatio is the fraction of window frames whose inter-frame
	// interval exceeded 1.5x the budget (the frame slipped at least one
	// vsync slot).
	MissedVsyncRatio float64 `json:"missed_vsync_ratio"`
	// BudgetComplianceRatio is the fraction of window frames whose
	// pipeline span (display minus slack, from pose sample) fit the
	// budget.
	BudgetComplianceRatio float64 `json:"budget_compliance_ratio"`
	// CacheHitRate is the fraction of window frames whose displayed BE
	// frame came out of the similarity cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MeanFrameMs and MaxFrameMs summarise the pipeline span (ready time
	// minus pose-sample time) over the window.
	MeanFrameMs float64 `json:"mean_frame_ms"`
	MaxFrameMs  float64 `json:"max_frame_ms"`
	// DegradedRatio is the fraction of window frames whose delivering
	// fetch was served off a quality-degrade rung (rung > 0); the Rung*
	// counts break the degraded frames down by rung. Every rung is
	// SSIM-bounded (≥ 0.90 against the true frame), so this measures how
	// often deadline pressure traded exactness for latency, not visible
	// quality loss.
	DegradedRatio float64 `json:"degraded_ratio"`
	RungStale     int     `json:"rung_stale"`
	RungReproject int     `json:"rung_reproject"`
	RungLowRes    int     `json:"rung_lowres"`
	// PeerServedRatio is the fraction of window frames whose delivering
	// fetch was answered from a cluster peer (origin 1); PeerFrames and
	// FailoverFrames count the origin-1 and origin-2 frames. All zero
	// outside cluster deployments.
	PeerServedRatio float64 `json:"peer_served_ratio"`
	PeerFrames      int     `json:"peer_frames"`
	FailoverFrames  int     `json:"failover_frames"`
}

// QoESnapshot is a point-in-time QoE summary over the recorded spans.
type QoESnapshot struct {
	WindowMs float64 `json:"window_ms"`
	BudgetMs float64 `json:"budget_ms"`
	// EndMs is the window anchor: the latest display time among the
	// considered spans (session milliseconds).
	EndMs float64 `json:"end_ms"`
	// Spans is how many recorded spans fell inside the window.
	Spans int `json:"spans"`
	// Players holds one entry per player seen in the window, ascending.
	Players []PlayerQoE `json:"players"`
	// All aggregates every player in the window (Player == -1).
	All PlayerQoE `json:"all"`
}

// ComputeQoE derives a QoE snapshot from recorded frame spans (any order;
// they are grouped per player and ordered by display time internally).
// Server-side trace spans (Hop != 0 — cluster hop and owner-serve records)
// are skipped: QoE is a display-side metric, and counting hop spans would
// double-count frames on nodes that both proxy and serve.
func ComputeQoE(spans []FrameSpan, cfg QoEConfig) QoESnapshot {
	if cfg.WindowMs <= 0 {
		cfg.WindowMs = DefaultQoEWindowMs
	}
	if cfg.BudgetMs <= 0 {
		cfg.BudgetMs = FrameBudgetMs
	}
	snap := QoESnapshot{WindowMs: cfg.WindowMs, BudgetMs: cfg.BudgetMs}
	snap.All.Player = -1

	var end float64
	for i := range spans {
		if spans[i].Hop != 0 {
			continue
		}
		if cfg.Player >= 0 && spans[i].Player != cfg.Player {
			continue
		}
		if spans[i].DisplayMs > end {
			end = spans[i].DisplayMs
		}
	}
	snap.EndMs = end
	cut := end - cfg.WindowMs

	// Group the in-window spans per player, preserving each player's
	// display order (the ring records oldest-first; out-of-order input is
	// handled by the per-player sort below being insertion-friendly).
	perPlayer := map[int][]FrameSpan{}
	for _, sp := range spans {
		if sp.Hop != 0 {
			continue
		}
		if cfg.Player >= 0 && sp.Player != cfg.Player {
			continue
		}
		if sp.DisplayMs <= cut {
			continue
		}
		perPlayer[sp.Player] = append(perPlayer[sp.Player], sp)
		snap.Spans++
	}

	var agg accQoE
	ids := make([]int, 0, len(perPlayer))
	for id := range perPlayer {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ps := perPlayer[id]
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].DisplayMs < ps[j].DisplayMs })
		var acc accQoE
		acc.add(ps, cfg.BudgetMs)
		agg.add(ps, cfg.BudgetMs)
		snap.Players = append(snap.Players, acc.finish(id))
	}
	snap.All = agg.finish(-1)
	return snap
}

// accQoE accumulates the window statistics for one player (or the
// aggregate).
type accQoE struct {
	frames     int
	missed     int
	compliant  int
	hits       int
	rungStale  int
	rungReproj int
	rungLowRes int
	peer       int
	failover   int
	frameSum   float64
	frameMax   float64
	firstMs    float64
	lastMs     float64
	spanBounds bool
}

func (a *accQoE) add(ps []FrameSpan, budget float64) {
	for i, sp := range ps {
		a.frames++
		// Pipeline span: when the frame was ready, measured from the pose
		// sample (the display adds only the vsync floor, i.e. the slack).
		frameMs := sp.DisplayMs - sp.SlackMs - sp.StartMs
		a.frameSum += frameMs
		if frameMs > a.frameMax {
			a.frameMax = frameMs
		}
		if frameMs <= budget+1e-9 {
			a.compliant++
		}
		if sp.CacheHit {
			a.hits++
		}
		switch sp.DegradeRung {
		case 1:
			a.rungStale++
		case 2:
			a.rungReproj++
		case 3:
			a.rungLowRes++
		}
		switch sp.Origin {
		case 1:
			a.peer++
		case 2:
			a.failover++
		}
		if i > 0 {
			if inter := sp.DisplayMs - ps[i-1].DisplayMs; inter > budget*missedVsyncFactor {
				a.missed++
			}
		}
		if !a.spanBounds || sp.DisplayMs < a.firstMs {
			a.firstMs = sp.DisplayMs
		}
		if !a.spanBounds || sp.DisplayMs > a.lastMs {
			a.lastMs = sp.DisplayMs
		}
		a.spanBounds = true
	}
}

func (a *accQoE) finish(player int) PlayerQoE {
	q := PlayerQoE{Player: player, Frames: a.frames, MaxFrameMs: a.frameMax}
	if a.frames == 0 {
		return q
	}
	q.MeanFrameMs = a.frameSum / float64(a.frames)
	q.MissedVsyncRatio = float64(a.missed) / float64(a.frames)
	q.BudgetComplianceRatio = float64(a.compliant) / float64(a.frames)
	q.CacheHitRate = float64(a.hits) / float64(a.frames)
	q.RungStale, q.RungReproject, q.RungLowRes = a.rungStale, a.rungReproj, a.rungLowRes
	q.DegradedRatio = float64(a.rungStale+a.rungReproj+a.rungLowRes) / float64(a.frames)
	q.PeerFrames, q.FailoverFrames = a.peer, a.failover
	q.PeerServedRatio = float64(a.peer) / float64(a.frames)
	if a.frames > 1 && a.lastMs > a.firstMs {
		q.WindowFPS = float64(a.frames-1) / (a.lastMs - a.firstMs) * 1000
	}
	return q
}

// QoE computes a QoE snapshot over the registry's trace ring. A nil
// registry (or one that never recorded a span) yields an empty snapshot.
func (r *Registry) QoE(cfg QoEConfig) QoESnapshot {
	if r == nil {
		return ComputeQoE(nil, cfg)
	}
	t := r.Trace()
	return ComputeQoE(t.Recent(t.Len()), cfg)
}
