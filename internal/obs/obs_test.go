package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	tr := r.Trace()
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	tr.Record(&FrameSpan{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Recorded() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryInstrumentsAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("cache.hits")
	b := r.Counter("cache.hits")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("cache.hits").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("lat")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(float64(j % 50))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram() // default latency buckets
	// 100 samples at 1..100 ms: p50 ~ 50, p95 ~ 95, p99 ~ 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean < 49 || s.Mean > 52 {
		t.Fatalf("mean = %.2f, want ~50.5", s.Mean)
	}
	// Bucketed quantiles are coarse; assert the right bucket, not the
	// exact rank.
	if s.P50 < 33.3 || s.P50 > 66.7 {
		t.Fatalf("p50 = %.2f, want within (33.3, 66.7]", s.P50)
	}
	if s.P95 < 66.7 || s.P95 > 133 {
		t.Fatalf("p95 = %.2f, want within (66.7, 133]", s.P95)
	}
	if s.P99 < s.P95 || s.P99 > 133 {
		t.Fatalf("p99 = %.2f, want >= p95 and within (66.7, 133]", s.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if s.Counts[2] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Counts[2])
	}
	if s.P99 != 2 { // overflow reports the largest finite edge
		t.Fatalf("overflow p99 = %.2f, want 2", s.P99)
	}
}

func TestTraceRingWrapsAndOrdersOldestFirst(t *testing.T) {
	tr := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		tr.Record(&FrameSpan{Frame: int64(i)})
	}
	if tr.Recorded() != 6 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
	got := tr.Recent(10) // more than capacity: clamps to the 4 retained
	if len(got) != 4 {
		t.Fatalf("recent len = %d", len(got))
	}
	for i, sp := range got {
		if want := int64(3 + i); sp.Frame != want {
			t.Fatalf("recent[%d].Frame = %d, want %d", i, sp.Frame, want)
		}
	}
	if last := tr.Recent(1); len(last) != 1 || last[0].Frame != 6 {
		t.Fatalf("recent(1) = %+v", last)
	}
}

func TestAdminMetricsAndTraceEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.frames_served").Add(7)
	r.Gauge("server.sessions_active").Set(1)
	r.Histogram("server.render_ms").Observe(3)
	r.Trace().Record(&FrameSpan{Frame: 1, FetchMs: 2.5, CacheHit: true})
	srv := httptest.NewServer(AdminMux(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.frames_served"] != 7 {
		t.Fatalf("metrics snapshot: %+v", snap)
	}
	if snap.Histograms["server.render_ms"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", snap)
	}

	res, err = srv.Client().Get(srv.URL + "/trace?n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var spans []FrameSpan
	if err := json.NewDecoder(res.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].FetchMs != 2.5 || !spans[0].CacheHit {
		t.Fatalf("trace spans: %+v", spans)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, res.StatusCode)
		}
	}
}

func TestHistogramFrameBudgetEdge(t *testing.T) {
	// The default buckets put an exact edge at the 16.7 ms vsync budget;
	// "made the frame deadline" must be readable from the histogram, so an
	// observation of exactly 16.7 ms counts as within budget (edges are
	// upper-inclusive) and the next representable value beyond it does not.
	h := NewHistogram() // default latency buckets
	budgetIdx := -1
	for i, b := range DefaultLatencyBuckets {
		if b == FrameBudgetMs {
			budgetIdx = i
		}
	}
	if budgetIdx < 0 {
		t.Fatalf("default buckets have no edge at %.1f ms: %v", FrameBudgetMs, DefaultLatencyBuckets)
	}
	h.Observe(FrameBudgetMs)
	h.Observe(math.Nextafter(FrameBudgetMs, math.Inf(1)))
	s := h.Snapshot()
	if s.Counts[budgetIdx] != 1 {
		t.Errorf("16.7 ms landed outside the budget bucket: counts %v", s.Counts)
	}
	if s.Counts[budgetIdx+1] != 1 {
		t.Errorf("just-over-budget observation not in the next bucket: counts %v", s.Counts)
	}
}

func TestTraceRingRecentFor(t *testing.T) {
	tr := NewTraceRing(8)
	for i := 1; i <= 6; i++ {
		tr.Record(&FrameSpan{Player: i % 2, Frame: int64(i)})
	}
	got := tr.RecentFor(10, 1) // frames 1, 3, 5
	if len(got) != 3 {
		t.Fatalf("RecentFor(10, 1) len = %d, want 3", len(got))
	}
	for i, want := range []int64{1, 3, 5} {
		if got[i].Frame != want || got[i].Player != 1 {
			t.Fatalf("RecentFor[%d] = %+v, want frame %d", i, got[i], want)
		}
	}
	// n limits to the most recent matches, still oldest-first.
	if got := tr.RecentFor(2, 0); len(got) != 2 || got[0].Frame != 4 || got[1].Frame != 6 {
		t.Fatalf("RecentFor(2, 0) = %+v", got)
	}
	// player < 0 matches everything, same as Recent.
	if got := tr.RecentFor(10, -1); len(got) != 6 {
		t.Fatalf("RecentFor(10, -1) len = %d, want 6", len(got))
	}
	if got := tr.RecentFor(10, 7); len(got) != 0 {
		t.Fatalf("unknown player returned %d spans", len(got))
	}
	var nilRing *TraceRing
	if got := nilRing.RecentFor(4, 1); got != nil {
		t.Fatalf("nil ring returned %v", got)
	}
}

func TestComputeQoE(t *testing.T) {
	// Two players at a 20 ms cadence; player 0 all within budget and all
	// cache hits, player 1 with one huge frame (missed vsync + over
	// budget) and no hits.
	var spans []FrameSpan
	for i := 0; i < 10; i++ {
		at := float64(i) * 20
		spans = append(spans, FrameSpan{
			Player: 0, Frame: int64(i + 1), StartMs: at,
			DisplayMs: at + 16.7, SlackMs: 6.7, CacheHit: true, // 10 ms pipeline
		})
	}
	for i := 0; i < 9; i++ {
		at := float64(i) * 20
		spans = append(spans, FrameSpan{
			Player: 1, Frame: int64(i + 1), StartMs: at,
			DisplayMs: at + 16.7, SlackMs: 1.7, // 15 ms pipeline
		})
	}
	// Player 1's last frame arrives 60 ms after the previous: > 1.5x the
	// budget, so it both misses vsync and blows the budget.
	spans = append(spans, FrameSpan{
		Player: 1, Frame: 10, StartMs: 180, DisplayMs: 160 + 16.7 + 60, SlackMs: 0,
	})

	q := ComputeQoE(spans, QoEConfig{WindowMs: 1000, Player: -1})
	if q.Spans != 20 || len(q.Players) != 2 {
		t.Fatalf("snapshot = %+v", q)
	}
	p0, p1 := q.Players[0], q.Players[1]
	if p0.Player != 0 || p1.Player != 1 {
		t.Fatalf("player order: %+v", q.Players)
	}
	if p0.Frames != 10 || p0.MissedVsyncRatio != 0 || p0.BudgetComplianceRatio != 1 || p0.CacheHitRate != 1 {
		t.Errorf("player 0 = %+v", p0)
	}
	// 50 fps: 9 intervals over 180 ms.
	if p0.WindowFPS < 49 || p0.WindowFPS > 51 {
		t.Errorf("player 0 fps = %.2f, want ~50", p0.WindowFPS)
	}
	if p1.Frames != 10 || p1.CacheHitRate != 0 {
		t.Errorf("player 1 = %+v", p1)
	}
	if want := 0.1; p1.MissedVsyncRatio != want {
		t.Errorf("player 1 missed-vsync = %.2f, want %.2f", p1.MissedVsyncRatio, want)
	}
	if want := 0.9; p1.BudgetComplianceRatio != want {
		t.Errorf("player 1 compliance = %.2f, want %.2f", p1.BudgetComplianceRatio, want)
	}
	if q.All.Frames != 20 {
		t.Errorf("aggregate = %+v", q.All)
	}

	// The window clips old frames: anchored at the latest display, a 50 ms
	// window keeps only frames within (end-50, end].
	clipped := ComputeQoE(spans, QoEConfig{WindowMs: 50, Player: -1})
	if clipped.Spans >= 20 {
		t.Errorf("window did not clip: %d spans", clipped.Spans)
	}
	// Per-player filtering.
	only1 := ComputeQoE(spans, QoEConfig{WindowMs: 1000, Player: 1})
	if len(only1.Players) != 1 || only1.Players[0].Player != 1 || only1.All.Frames != 10 {
		t.Errorf("player filter = %+v", only1)
	}
	// Empty input yields a well-formed zero snapshot.
	empty := ComputeQoE(nil, QoEConfig{})
	if empty.Spans != 0 || empty.All.Frames != 0 || empty.WindowMs != DefaultQoEWindowMs {
		t.Errorf("empty = %+v", empty)
	}
}

func TestComputeQoEPeerBreakdown(t *testing.T) {
	// Ten frames: 4 served locally, 4 via a cluster peer fetch, 2 by
	// failover re-render; the breakdown must count origins exactly and
	// PeerServedRatio only the origin-1 frames.
	var spans []FrameSpan
	for i := 0; i < 10; i++ {
		at := float64(i) * 20
		var origin uint8
		switch {
		case i < 4:
			origin = 0
		case i < 8:
			origin = 1
		default:
			origin = 2
		}
		spans = append(spans, FrameSpan{
			Player: 0, Frame: int64(i + 1), StartMs: at,
			DisplayMs: at + 16.7, SlackMs: 6.7, Origin: origin,
		})
	}
	q := ComputeQoE(spans, QoEConfig{WindowMs: 1000, Player: -1})
	if q.All.PeerFrames != 4 || q.All.FailoverFrames != 2 {
		t.Errorf("origin counts = peer %d failover %d, want 4/2", q.All.PeerFrames, q.All.FailoverFrames)
	}
	if want := 0.4; q.All.PeerServedRatio != want {
		t.Errorf("peer-served ratio = %.2f, want %.2f", q.All.PeerServedRatio, want)
	}
}

func TestAdminTracePlayerFilterAndQoE(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 6; i++ {
		at := float64(i) * 20
		r.Trace().Record(&FrameSpan{
			Player: i % 2, Frame: int64(i + 1), StartMs: at,
			DisplayMs: at + 16.7, SlackMs: 6.7, CacheHit: i%2 == 0,
		})
	}
	srv := httptest.NewServer(AdminMux(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/trace?n=8&player=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var spans []FrameSpan
	if err := json.NewDecoder(res.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("player-filtered trace: %d spans, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Player != 1 {
			t.Fatalf("span for player %d leaked through the filter", sp.Player)
		}
	}

	res, err = srv.Client().Get(srv.URL + "/qoe?window=1000&player=0")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var q QoESnapshot
	if err := json.NewDecoder(res.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.WindowMs != 1000 || q.BudgetMs != FrameBudgetMs {
		t.Fatalf("qoe config: %+v", q)
	}
	if len(q.Players) != 1 || q.Players[0].Player != 0 || q.Players[0].CacheHitRate != 1 {
		t.Fatalf("qoe players: %+v", q.Players)
	}

	for _, bad := range []string{"/trace?player=x", "/trace?player=-2", "/trace?n=0", "/qoe?window=0", "/qoe?budget=-1", "/qoe?player=x"} {
		res, err := srv.Client().Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 400 {
			t.Errorf("%s -> %d, want 400", bad, res.StatusCode)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("coterie-test")
	r.PublishExpvar("coterie-test") // second call must not panic
	var nilReg *Registry
	nilReg.PublishExpvar("coterie-test-nil") // nil-safe
}

func TestSnapshotDumpIsDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(1)
	d1 := r.Snapshot().Dump()
	d2 := r.Snapshot().Dump()
	if d1 != d2 || d1 == "" {
		t.Fatalf("dump not deterministic:\n%s\n%s", d1, d2)
	}
}
