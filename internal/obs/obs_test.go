package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	tr := r.Trace()
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	tr.Record(&FrameSpan{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Recorded() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryInstrumentsAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("cache.hits")
	b := r.Counter("cache.hits")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("cache.hits").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("lat")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(float64(j % 50))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram() // default latency buckets
	// 100 samples at 1..100 ms: p50 ~ 50, p95 ~ 95, p99 ~ 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean < 49 || s.Mean > 52 {
		t.Fatalf("mean = %.2f, want ~50.5", s.Mean)
	}
	// Bucketed quantiles are coarse; assert the right bucket, not the
	// exact rank.
	if s.P50 < 33.3 || s.P50 > 66.7 {
		t.Fatalf("p50 = %.2f, want within (33.3, 66.7]", s.P50)
	}
	if s.P95 < 66.7 || s.P95 > 133 {
		t.Fatalf("p95 = %.2f, want within (66.7, 133]", s.P95)
	}
	if s.P99 < s.P95 || s.P99 > 133 {
		t.Fatalf("p99 = %.2f, want >= p95 and within (66.7, 133]", s.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if s.Counts[2] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Counts[2])
	}
	if s.P99 != 2 { // overflow reports the largest finite edge
		t.Fatalf("overflow p99 = %.2f, want 2", s.P99)
	}
}

func TestTraceRingWrapsAndOrdersOldestFirst(t *testing.T) {
	tr := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		tr.Record(&FrameSpan{Frame: int64(i)})
	}
	if tr.Recorded() != 6 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
	got := tr.Recent(10) // more than capacity: clamps to the 4 retained
	if len(got) != 4 {
		t.Fatalf("recent len = %d", len(got))
	}
	for i, sp := range got {
		if want := int64(3 + i); sp.Frame != want {
			t.Fatalf("recent[%d].Frame = %d, want %d", i, sp.Frame, want)
		}
	}
	if last := tr.Recent(1); len(last) != 1 || last[0].Frame != 6 {
		t.Fatalf("recent(1) = %+v", last)
	}
}

func TestAdminMetricsAndTraceEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.frames_served").Add(7)
	r.Gauge("server.sessions_active").Set(1)
	r.Histogram("server.render_ms").Observe(3)
	r.Trace().Record(&FrameSpan{Frame: 1, FetchMs: 2.5, CacheHit: true})
	srv := httptest.NewServer(AdminMux(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.frames_served"] != 7 {
		t.Fatalf("metrics snapshot: %+v", snap)
	}
	if snap.Histograms["server.render_ms"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", snap)
	}

	res, err = srv.Client().Get(srv.URL + "/trace?n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var spans []FrameSpan
	if err := json.NewDecoder(res.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].FetchMs != 2.5 || !spans[0].CacheHit {
		t.Fatalf("trace spans: %+v", spans)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, res.StatusCode)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("coterie-test")
	r.PublishExpvar("coterie-test") // second call must not panic
	var nilReg *Registry
	nilReg.PublishExpvar("coterie-test-nil") // nil-safe
}

func TestSnapshotDumpIsDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(1)
	d1 := r.Snapshot().Dump()
	d2 := r.Snapshot().Dump()
	if d1 != d2 || d1 == "" {
		t.Fatalf("dump not deterministic:\n%s\n%s", d1, d2)
	}
}
