package core

import (
	"sync"
	"testing"

	"coterie/internal/cache"
	"coterie/internal/games"
	"coterie/internal/geom"
)

// The FPS arena is the smallest outdoor world; sessions on it exercise the
// full pipeline in a few hundred milliseconds.
var (
	envOnce sync.Once
	envFPS  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		spec, err := games.ByName("fps")
		if err != nil {
			envErr = err
			return
		}
		envFPS, envErr = PrepareEnv(spec, EnvOptions{SizeSamples: 6})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envFPS
}

func TestPrepareEnv(t *testing.T) {
	env := testEnv(t)
	if env.Map.Stats.LeafCount < 4 {
		t.Fatalf("only %d leaf regions", env.Map.Stats.LeafCount)
	}
	for _, r := range env.Map.Regions {
		if r.DistThresh <= 0 {
			t.Fatalf("region %d missing distance threshold", r.ID)
		}
	}
	s := env.Sizer
	if s.WholeBE <= 0 || s.FarBE <= 0 || s.Thin <= 0 {
		t.Fatalf("sizer incomplete: %+v", s)
	}
	if s.FarBE >= s.WholeBE {
		t.Fatalf("far-BE frames (%d) must be smaller than whole-BE (%d)", s.FarBE, s.WholeBE)
	}
}

func TestSystemKindStrings(t *testing.T) {
	for _, k := range []SystemKind{Mobile, ThinClient, MultiFurion, MultiFurionCache, CoterieNoCache, Coterie} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if SystemKind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestSystemKindPredicates(t *testing.T) {
	if Mobile.UsesBEPrefetch() || ThinClient.UsesBEPrefetch() {
		t.Fatal("Mobile/Thin-client do not prefetch BE")
	}
	if !Coterie.UsesBEPrefetch() || !MultiFurion.UsesBEPrefetch() {
		t.Fatal("Coterie and Multi-Furion prefetch BE")
	}
	if !Coterie.SplitsNearFar() || !CoterieNoCache.SplitsNearFar() {
		t.Fatal("Coterie variants split near/far")
	}
	if MultiFurion.SplitsNearFar() {
		t.Fatal("Multi-Furion does not split near/far")
	}
	if !Coterie.SimilarityCache() || CoterieNoCache.SimilarityCache() {
		t.Fatal("similarity cache is Coterie-only")
	}
}

func TestMetaForConsistency(t *testing.T) {
	env := testEnv(t)
	meta := env.MetaFor()
	pt := env.Game.Scene.Grid.Snap(env.Game.Spawn)
	l1, s1, t1 := meta(pt)
	l2, s2, t2 := meta(pt) // memoised second call
	if l1 != l2 || s1 != s2 || t1 != t2 {
		t.Fatal("meta not deterministic")
	}
	if l1 < 0 || t1 <= 0 {
		t.Fatalf("implausible meta: leaf %d thresh %v", l1, t1)
	}
}

func TestFrameSizerJitterDeterministic(t *testing.T) {
	env := testEnv(t)
	pt := geom.GridPoint{I: 100, J: 200}
	a := env.Sizer.SizeFor(Coterie, pt)
	b := env.Sizer.SizeFor(Coterie, pt)
	if a != b {
		t.Fatal("size jitter not deterministic")
	}
	// Jitter stays within +-8%.
	base := env.Sizer.FarBE
	if a < int(float64(base)*0.9) || a > int(float64(base)*1.1) {
		t.Fatalf("size %d too far from base %d", a, base)
	}
	if env.Sizer.SizeFor(MultiFurion, pt) <= a {
		t.Fatal("whole-BE transfer should exceed far-BE")
	}
}

func TestRunSessionValidation(t *testing.T) {
	env := testEnv(t)
	if _, err := RunSession(env, SessionConfig{System: Coterie, Players: 0, Seconds: 1}); err == nil {
		t.Fatal("expected error for zero players")
	}
	if _, err := RunSession(env, SessionConfig{System: Coterie, Players: 1, Seconds: 0}); err == nil {
		t.Fatal("expected error for zero duration")
	}
}

func TestSessionBasics(t *testing.T) {
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{System: Coterie, Players: 2, Seconds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Per) != 2 {
		t.Fatalf("%d player metrics", len(res.Per))
	}
	m := res.Mean
	if m.Frames < 100 {
		t.Fatalf("only %d frames in 5s", m.Frames)
	}
	if m.FPS < 30 || m.FPS > 61 {
		t.Fatalf("Coterie FPS = %.1f", m.FPS)
	}
	if m.CacheHitRatio <= 0.3 {
		t.Fatalf("hit ratio = %.2f", m.CacheHitRatio)
	}
	if m.CPUPct <= 0 || m.GPUPct <= 0 || m.PowerW <= 0 {
		t.Fatalf("resource metrics missing: %+v", m)
	}
	if res.FIKbps <= 0 {
		t.Fatal("no FI traffic")
	}
	if len(res.Series) == 0 {
		t.Fatal("no resource series")
	}
}

func TestSessionDeterministic(t *testing.T) {
	env := testEnv(t)
	cfg := SessionConfig{System: Coterie, Players: 2, Seconds: 3, Seed: 7}
	a, err := RunSession(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSession(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean.Frames != b.Mean.Frames || a.Mean.BEMbps != b.Mean.BEMbps {
		t.Fatalf("sessions differ: %+v vs %+v", a.Mean, b.Mean)
	}
}

func TestSystemOrdering(t *testing.T) {
	// The paper's headline comparison at 2 players: Coterie delivers the
	// highest FPS, Multi-Furion is second, Thin-client trails; Coterie
	// uses a fraction of Multi-Furion's per-player bandwidth.
	env := testEnv(t)
	run := func(sys SystemKind) *Result {
		res, err := RunSession(env, SessionConfig{System: sys, Players: 2, Seconds: 6, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	thin := run(ThinClient)
	furion := run(MultiFurion)
	coterie := run(Coterie)
	if !(coterie.Mean.FPS >= furion.Mean.FPS && furion.Mean.FPS > thin.Mean.FPS) {
		t.Fatalf("FPS ordering broken: C=%.1f M=%.1f T=%.1f",
			coterie.Mean.FPS, furion.Mean.FPS, thin.Mean.FPS)
	}
	if coterie.Mean.FPS < 50 {
		t.Fatalf("Coterie 2P FPS = %.1f, want ~60", coterie.Mean.FPS)
	}
	if coterie.Mean.BEMbps*2 >= furion.Mean.BEMbps {
		t.Fatalf("Coterie bandwidth %.1f not clearly below Multi-Furion %.1f",
			coterie.Mean.BEMbps, furion.Mean.BEMbps)
	}
	if coterie.Mean.ResponsivenessMs >= furion.Mean.ResponsivenessMs {
		t.Fatalf("Coterie responsiveness %.1f should beat Multi-Furion %.1f",
			coterie.Mean.ResponsivenessMs, furion.Mean.ResponsivenessMs)
	}
}

func TestCoterieScalesToFourPlayers(t *testing.T) {
	// Fig 11's core claim: Coterie holds ~60 FPS at 4 players while
	// Multi-Furion degrades.
	env := testEnv(t)
	c4, err := RunSession(env, SessionConfig{System: Coterie, Players: 4, Seconds: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := RunSession(env, SessionConfig{System: MultiFurion, Players: 4, Seconds: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c4.Mean.FPS < 50 {
		t.Fatalf("Coterie 4P FPS = %.1f", c4.Mean.FPS)
	}
	if m4.Mean.FPS > c4.Mean.FPS-10 {
		t.Fatalf("Multi-Furion 4P (%.1f) should clearly trail Coterie (%.1f)",
			m4.Mean.FPS, c4.Mean.FPS)
	}
}

func TestMobileIndependentOfPlayers(t *testing.T) {
	env := testEnv(t)
	m1, err := RunSession(env, SessionConfig{System: Mobile, Players: 1, Seconds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := RunSession(env, SessionConfig{System: Mobile, Players: 4, Seconds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if diff := m1.Mean.FPS - m4.Mean.FPS; diff > 1 || diff < -1 {
		t.Fatalf("Mobile FPS changed with players: %.1f vs %.1f", m1.Mean.FPS, m4.Mean.FPS)
	}
}

func TestCacheConfigFor(t *testing.T) {
	cfg := cacheConfigFor(Coterie, cache.FLF, 1<<20)
	if !cfg.ServeSimilar || !cfg.IntraPlayer || cfg.InterPlayer {
		t.Fatalf("Coterie cache config: %+v", cfg)
	}
	if cfg.Policy != cache.FLF || cfg.CapacityBytes != 1<<20 {
		t.Fatalf("policy/capacity not applied: %+v", cfg)
	}
	mf := cacheConfigFor(MultiFurion, cache.LRU, 1<<20)
	if mf.ServeSimilar {
		t.Fatal("Multi-Furion must not serve similar frames")
	}
}
