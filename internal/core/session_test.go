package core

import (
	"testing"

	"coterie/internal/cache"
)

func TestThinClientMetrics(t *testing.T) {
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{System: ThinClient, Players: 1, Seconds: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mean
	// The remote pipeline cannot reach 60 FPS: server render+encode plus
	// transfer plus decode exceeds a vsync interval.
	if m.FPS >= 40 {
		t.Fatalf("Thin-client FPS = %.1f, should be far below 60", m.FPS)
	}
	if m.FrameKB <= 0 || m.NetDelayMs <= 0 {
		t.Fatalf("missing transfer metrics: %+v", m)
	}
	// Thin-client responsiveness tracks the whole remote pipeline.
	if m.ResponsivenessMs < 30 {
		t.Fatalf("Thin-client responsiveness %.1f ms implausibly low", m.ResponsivenessMs)
	}
}

func TestCoterieResponsivenessUnderVsync(t *testing.T) {
	// Table 7: Coterie's motion-to-photon latency is below the 16.7 ms
	// refresh interval (the pipeline finishes early and waits for vsync).
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{System: Coterie, Players: 2, Seconds: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.ResponsivenessMs >= env.Device.VsyncMs {
		t.Fatalf("responsiveness %.1f ms, want under the vsync interval", res.Mean.ResponsivenessMs)
	}
}

func TestOverhearingSession(t *testing.T) {
	env := testEnv(t)
	base, err := RunSession(env, SessionConfig{System: Coterie, Players: 3, Seconds: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	over, err := RunSession(env, SessionConfig{System: Coterie, Players: 3, Seconds: 5, Seed: 4, Overhear: true})
	if err != nil {
		t.Fatal(err)
	}
	// Overhearing can only help the hit ratio, and per the paper it helps
	// little.
	if over.Mean.CacheHitRatio < base.Mean.CacheHitRatio-0.03 {
		t.Fatalf("overhearing reduced hits: %.2f -> %.2f",
			base.Mean.CacheHitRatio, over.Mean.CacheHitRatio)
	}
	// Overhear has no effect on non-similarity systems.
	mf, err := RunSession(env, SessionConfig{System: MultiFurion, Players: 2, Seconds: 3, Seed: 4, Overhear: true})
	if err != nil {
		t.Fatal(err)
	}
	if mf.Mean.Frames == 0 {
		t.Fatal("Multi-Furion session with Overhear flag did not run")
	}
}

func TestFLFPolicySession(t *testing.T) {
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{
		System:      Coterie,
		Players:     1,
		Seconds:     5,
		Seed:        5,
		CachePolicy: cache.FLF,
		CacheBytes:  8 << 20, // small cache to force evictions
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.CacheHitRatio <= 0.2 {
		t.Fatalf("FLF small-cache hit ratio %.2f", res.Mean.CacheHitRatio)
	}
}

func TestSeriesCoversSession(t *testing.T) {
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{System: Coterie, Players: 1, Seconds: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 4 {
		t.Fatalf("series has %d points for a 6 s run", len(res.Series))
	}
	prevSec := -1
	for _, p := range res.Series {
		if p.Sec <= prevSec {
			t.Fatalf("series not monotonic at %d", p.Sec)
		}
		prevSec = p.Sec
		if p.CPUPct <= 0 || p.CPUPct > 100 || p.GPUPct < 0 || p.GPUPct > 100 {
			t.Fatalf("implausible series point %+v", p)
		}
		if p.TempC < env.Device.AmbientC-1 || p.TempC > env.Device.ThermalCapC {
			t.Fatalf("temperature %v out of range", p.TempC)
		}
	}
}

func TestFurionCacheVariantMatchesPlain(t *testing.T) {
	// Fig 11: Multi-Furion with the exact-match cache performs like plain
	// Multi-Furion (exact matches never happen on fresh paths).
	env := testEnv(t)
	plain, err := RunSession(env, SessionConfig{System: MultiFurion, Players: 2, Seconds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunSession(env, SessionConfig{System: MultiFurionCache, Players: 2, Seconds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if diff := plain.Mean.FPS - cached.Mean.FPS; diff > 4 || diff < -4 {
		t.Fatalf("exact cache changed Multi-Furion FPS: %.1f vs %.1f",
			plain.Mean.FPS, cached.Mean.FPS)
	}
}

func TestFIKbpsGrowsWithPlayers(t *testing.T) {
	env := testEnv(t)
	var prev float64
	for _, n := range []int{1, 2, 4} {
		res, err := RunSession(env, SessionConfig{System: Coterie, Players: n, Seconds: 3, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.FIKbps <= prev {
			t.Fatalf("FI traffic did not grow at %d players: %.1f <= %.1f", n, res.FIKbps, prev)
		}
		prev = res.FIKbps
	}
}

func TestTailLatencyMetrics(t *testing.T) {
	env := testEnv(t)
	res, err := RunSession(env, SessionConfig{System: Coterie, Players: 2, Seconds: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mean
	// With most frames pinned at vsync and rare spikes, the mean can sit
	// above p95; the quantiles themselves must still be ordered and at
	// least a vsync interval.
	if m.P95InterFrameMs < env.Device.VsyncMs-0.1 {
		t.Fatalf("p95 (%.1f) below the vsync interval", m.P95InterFrameMs)
	}
	if m.P99InterFrameMs < m.P95InterFrameMs {
		t.Fatalf("p99 (%.1f) below p95 (%.1f)", m.P99InterFrameMs, m.P95InterFrameMs)
	}
	// Coterie's tail stays within a couple of frame intervals.
	if m.P99InterFrameMs > 3*env.Device.VsyncMs {
		t.Fatalf("p99 inter-frame %.1f ms implausibly long", m.P99InterFrameMs)
	}
}
