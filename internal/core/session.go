package core

import (
	"fmt"

	"coterie/internal/cache"
	"coterie/internal/device"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/netsim"
	"coterie/internal/prefetch"
	"coterie/internal/trace"
	"coterie/internal/world"
)

// Timing constants of the testbed pipeline in milliseconds.
const (
	tickMs = 1000.0 / trace.TickHz
	// mergeMs is the cost of compositing near BE + FI with the decoded
	// far BE (§5.1 task 5, the +T_merge term of Eq. 2).
	mergeMs = 1.2
	// syncMs is the FI synchronisation latency through the server (the
	// paper measures 2-3 ms per interval).
	syncMs = 2.5
	// sensorMs is the pose-sampling latency counted by responsiveness.
	sensorMs = 0.5
	// serverRenderMs and serverEncodeMs model the thin-client server
	// rendering and encoding one 4K frame on demand; the GTX 1080 Ti
	// renders fast but 4K H.264 encoding dominates.
	serverRenderMs = 10
	serverEncodeMs = 13
	// serverLookupMs is the Coterie/Furion server turnaround for a
	// pre-rendered, pre-encoded frame.
	serverLookupMs = 0.4
	// thinOverlayMs is the thin client's local per-frame GPU work
	// (reprojection and UI overlay).
	thinOverlayMs = 3.0
)

// SessionConfig describes one testbed run.
type SessionConfig struct {
	System  SystemKind
	Players int
	Seconds float64
	Seed    int64
	// WiFi is the shared medium; zero value uses the 802.11ac defaults.
	WiFi netsim.WiFiConfig
	// CachePolicy is the replacement policy (LRU default).
	CachePolicy cache.Policy
	// CacheBytes caps the frame cache; 0 means 512 MB (a Pixel 2 can
	// dedicate about that much of its 4 GB to frames).
	CacheBytes int64
	// Prefetch tunes the lookahead prefetcher; zero value uses defaults.
	Prefetch prefetch.Config
	// Overhear enables the inter-player caching extension the paper
	// evaluates and rejects (§4.6): every server reply is overheard by
	// all clients and inserted into their caches (cache Version 5).
	// Current phone NICs cannot do this (no promiscuous mode), so the
	// shipped design leaves it off; it exists here for the ablation.
	Overhear bool
}

// PlayerMetrics aggregates one client's session, matching the columns of
// Tables 1, 7 and 8.
type PlayerMetrics struct {
	Frames       int64
	FPS          float64
	InterFrameMs float64
	// P95InterFrameMs and P99InterFrameMs are tail latencies; VR comfort
	// depends on the tail, not the mean.
	P95InterFrameMs  float64
	P99InterFrameMs  float64
	ResponsivenessMs float64
	CPUPct           float64
	GPUPct           float64
	PowerW           float64
	TempC            float64
	FrameKB          float64 // mean BE transfer size
	NetDelayMs       float64 // mean BE transfer latency
	BEMbps           float64 // per-player BE bandwidth
	CacheHitRatio    float64
	PrefetchIssued   int64
}

// SeriesPoint is one per-second sample of Fig 12's resource traces.
type SeriesPoint struct {
	Sec    int
	CPUPct float64
	GPUPct float64
	PowerW float64
	TempC  float64
}

// Result is the outcome of a session.
type Result struct {
	Game    string
	System  SystemKind
	Players int
	Seconds float64
	Per     []PlayerMetrics
	// Mean is the across-players average.
	Mean PlayerMetrics
	// FIKbps is the total FI sync traffic through the server.
	FIKbps float64
	// Series holds player 0's per-second resource samples.
	Series []SeriesPoint
}

// RunSession executes one deterministic testbed session.
func RunSession(env *Env, cfg SessionConfig) (*Result, error) {
	if cfg.Players < 1 {
		return nil, fmt.Errorf("core: need at least one player")
	}
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("core: session duration must be positive")
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 512 << 20
	}
	if cfg.Prefetch.LookaheadSec == 0 {
		cfg.Prefetch = prefetch.DefaultConfig()
	}

	sim := netsim.NewSim()
	wifi := netsim.NewWiFi(sim, cfg.WiFi)
	hub := fisync.NewHub()
	traces := trace.GenerateParty(env.Game, cfg.Players, cfg.Seconds, cfg.Seed)

	endMs := cfg.Seconds * 1000
	clients := make([]*client, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		c := &client{
			env:   env,
			cfg:   cfg,
			id:    i,
			sim:   sim,
			wifi:  wifi,
			hub:   hub,
			tr:    traces[i],
			endMs: endMs,
			q:     env.Game.Scene.NewQuery(),
			therm: env.Device.NewThermal(),
		}
		if cfg.System.usesBEPrefetch() {
			src := &simSource{
				sim:       sim,
				wifi:      wifi,
				sizer:     env.Sizer,
				kind:      cfg.System,
				serverMs:  serverLookupMs,
				latencies: &latencyAcc{},
			}
			c.src = src
			ccfg := cacheConfigFor(cfg.System, cfg.CachePolicy, cfg.CacheBytes)
			if cfg.Overhear && cfg.System.similarityCache() {
				ccfg, _ = cache.Version(5)
				ccfg.Policy = cfg.CachePolicy
				ccfg.CapacityBytes = cfg.CacheBytes
			}
			c.cache = cache.New(ccfg)
			pfCfg := cfg.Prefetch
			if !cfg.System.similarityCache() {
				// Furion-style prefetch aims at the next grid point only
				// (one frame ahead); Coterie's cache reuse creates the
				// larger prefetching window (§5.2) that lets it aim
				// further out.
				pfCfg.NeighborHops = 0
				pfCfg.LookaheadSec = 1.2 * tickMs / 1000
			}
			c.pf = prefetch.New(env.Game.Scene.Grid, env.MetaFor(), c.cache, src, i, pfCfg)
		} else if cfg.System == ThinClient {
			c.src = &simSource{
				sim:       sim,
				wifi:      wifi,
				sizer:     env.Sizer,
				kind:      ThinClient,
				serverMs:  0,
				latencies: &latencyAcc{},
			}
		}
		clients[i] = c
	}
	if cfg.Overhear && cfg.System.similarityCache() {
		wireOverhearing(env, clients)
	}
	for _, c := range clients {
		c.frame()
	}
	sim.Run(endMs)

	res := &Result{
		Game:    env.Game.Spec.Name,
		System:  cfg.System,
		Players: cfg.Players,
		Seconds: cfg.Seconds,
	}
	for _, c := range clients {
		res.Per = append(res.Per, c.metrics())
		if c.id == 0 {
			res.Series = c.series
		}
	}
	res.Mean = meanMetrics(res.Per)
	res.FIKbps = float64(hub.UploadBytes+hub.DownloadBytes) * 8 / 1000 / cfg.Seconds
	return res, nil
}

// wireOverhearing makes every completed fetch visible to every client's
// cache (the §4.6 emulation assumption: "the reply from the server is
// overheard and cached by all the players").
func wireOverhearing(env *Env, clients []*client) {
	meta := env.MetaFor()
	grid := env.Game.Scene.Grid
	for _, owner := range clients {
		owner := owner
		owner.src.onDeliver = func(pt geom.GridPoint, size int) {
			leaf, sig, _ := meta(pt)
			e := cache.Entry{
				Point: pt, Pos: grid.Pos(pt),
				LeafID: leaf, NearSig: sig,
				Size: size, Owner: owner.id,
			}
			for _, other := range clients {
				if other != owner && other.cache != nil {
					other.cache.Insert(e)
				}
			}
		}
	}
}

func meanMetrics(per []PlayerMetrics) PlayerMetrics {
	var m PlayerMetrics
	if len(per) == 0 {
		return m
	}
	n := float64(len(per))
	for _, p := range per {
		m.Frames += p.Frames
		m.FPS += p.FPS / n
		m.InterFrameMs += p.InterFrameMs / n
		m.P95InterFrameMs += p.P95InterFrameMs / n
		m.P99InterFrameMs += p.P99InterFrameMs / n
		m.ResponsivenessMs += p.ResponsivenessMs / n
		m.CPUPct += p.CPUPct / n
		m.GPUPct += p.GPUPct / n
		m.PowerW += p.PowerW / n
		m.TempC += p.TempC / n
		m.FrameKB += p.FrameKB / n
		m.NetDelayMs += p.NetDelayMs / n
		m.BEMbps += p.BEMbps / n
		m.CacheHitRatio += p.CacheHitRatio / n
		m.PrefetchIssued += p.PrefetchIssued
	}
	return m
}

// client is one simulated phone.
type client struct {
	env   *Env
	cfg   SessionConfig
	id    int
	sim   *netsim.Sim
	wifi  *netsim.WiFi
	hub   *fisync.Hub
	tr    *trace.Trace
	endMs float64

	cache *cache.Cache
	pf    *prefetch.Prefetcher
	src   *simSource
	q     *world.Query
	therm *device.Thermal

	seq uint32
	// prevPredicted is the grid point the previous frame's prefetch
	// request targeted; Furion-style systems display the frame prefetched
	// for that prediction (§2.2 steps 3-4).
	prevPredicted    geom.GridPoint
	hasPrevPredicted bool

	lastDisplay float64
	frames      int64
	interSum    float64
	inters      []float32
	respSum     float64
	cpuSum      float64
	gpuSum      float64
	powerSum    float64
	sizeSum     float64
	sizeCount   int64
	series      []SeriesPoint
	secCPU      float64
	secGPU      float64
	secPower    float64
	secWeight   float64
	curSec      int
}
