package core

import (
	"fmt"

	"coterie/internal/cache"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/netsim"
	"coterie/internal/obs"
	"coterie/internal/prefetch"
	"coterie/internal/runtime"
	"coterie/internal/trace"
)

// Timing constants of the testbed's server model in milliseconds. The
// client-side pipeline constants (merge, FI sync, sensor, thin overlay)
// live in internal/runtime with the pipeline itself.
const (
	// serverRenderMs and serverEncodeMs model the thin-client server
	// rendering and encoding one 4K frame on demand; the GTX 1080 Ti
	// renders fast but 4K H.264 encoding dominates.
	serverRenderMs = 10
	serverEncodeMs = 13
	// serverLookupMs is the Coterie/Furion server turnaround for a
	// pre-rendered, pre-encoded frame.
	serverLookupMs = 0.4
)

// SessionConfig describes one testbed run.
type SessionConfig struct {
	System  SystemKind
	Players int
	Seconds float64
	Seed    int64
	// WiFi is the shared medium; zero value uses the 802.11ac defaults.
	WiFi netsim.WiFiConfig
	// CachePolicy is the replacement policy (LRU default).
	CachePolicy cache.Policy
	// CacheBytes caps the frame cache; 0 means 512 MB (a Pixel 2 can
	// dedicate about that much of its 4 GB to frames).
	CacheBytes int64
	// Prefetch tunes the lookahead prefetcher; zero value uses defaults.
	Prefetch prefetch.Config
	// Overhear enables the inter-player caching extension the paper
	// evaluates and rejects (§4.6): every server reply is overheard by
	// all clients and inserted into their caches (cache Version 5).
	// Current phone NICs cannot do this (no promiscuous mode), so the
	// shipped design leaves it off; it exists here for the ablation.
	Overhear bool
	// Traces, when it holds exactly Players traces, overrides the
	// generated movement (used to replay identical movement across the
	// simulated and live backends); otherwise traces are generated from
	// Seed as usual.
	Traces []*trace.Trace
	// Obs, when non-nil, receives the session's metrics and frame traces:
	// the shared pipeline instruments (aggregated across players) plus the
	// simulated medium's counters. nil disables instrumentation.
	Obs *obs.Registry
}

// WiFiGoodput returns the configured medium goodput in Mbps.
func (cfg SessionConfig) WiFiGoodput() float64 {
	if cfg.WiFi.GoodputMbps > 0 {
		return cfg.WiFi.GoodputMbps
	}
	return 500
}

// PlayerMetrics aggregates one client's session, matching the columns of
// Tables 1, 7 and 8. It is the runtime's metrics type, re-exported.
type PlayerMetrics = runtime.PlayerMetrics

// SeriesPoint is one per-second sample of Fig 12's resource traces.
type SeriesPoint = runtime.SeriesPoint

// Result is the outcome of a session.
type Result struct {
	Game    string
	System  SystemKind
	Players int
	Seconds float64
	Per     []PlayerMetrics
	// Mean is the across-players average.
	Mean PlayerMetrics
	// FIKbps is the total FI sync traffic through the server.
	FIKbps float64
	// Series holds player 0's per-second resource samples.
	Series []SeriesPoint
}

// RunSession executes one deterministic testbed session: it assembles the
// shared runtime pipeline (internal/runtime) over the discrete-event
// backend — netsim.Sim as the clock, simSource as the frame source, the
// in-process hub as FI sync — and runs all players to completion.
func RunSession(env *Env, cfg SessionConfig) (*Result, error) {
	if cfg.Players < 1 {
		return nil, fmt.Errorf("core: need at least one player")
	}
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("core: session duration must be positive")
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 512 << 20
	}
	if cfg.Prefetch.LookaheadSec == 0 {
		cfg.Prefetch = prefetch.DefaultConfig()
	}

	sim := netsim.NewSim()
	wifi := netsim.NewWiFi(sim, cfg.WiFi)
	wifi.Instrument(cfg.Obs)
	hub := fisync.NewHub()
	traces := cfg.Traces
	if len(traces) != cfg.Players {
		traces = trace.GenerateParty(env.Game, cfg.Players, cfg.Seconds, cfg.Seed)
	}

	endMs := cfg.Seconds * 1000
	fi := runtime.NewHubFISync(hub)
	clients := make([]*runtime.Client, cfg.Players)
	srcs := make([]*simSource, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		deps := runtime.Deps{Clock: sim, FI: fi, Trace: traces[i], Obs: cfg.Obs}
		if cfg.System.UsesBEPrefetch() {
			src := &simSource{
				sim:       sim,
				wifi:      wifi,
				sizer:     env.Sizer,
				kind:      cfg.System,
				serverMs:  serverLookupMs,
				latencies: &runtime.LatencyAcc{},
			}
			ccfg := cacheConfigFor(cfg.System, cfg.CachePolicy, cfg.CacheBytes)
			if cfg.Overhear && cfg.System.SimilarityCache() {
				ccfg, _ = cache.Version(5)
				ccfg.Policy = cfg.CachePolicy
				ccfg.CapacityBytes = cfg.CacheBytes
			}
			ca := cache.New(ccfg)
			pfCfg := cfg.Prefetch
			if !cfg.System.SimilarityCache() {
				// Furion-style prefetch aims at the next grid point only
				// (one frame ahead); Coterie's cache reuse creates the
				// larger prefetching window (§5.2) that lets it aim
				// further out.
				pfCfg.NeighborHops = 0
				pfCfg.LookaheadSec = 1.2 * runtime.TickMs / 1000
			}
			deps.Source = src
			deps.Cache = ca
			deps.Prefetcher = prefetch.New(env.Game.Scene.Grid, env.MetaFor(), ca, src, i, pfCfg)
			deps.Net = wifi
			deps.Latencies = src.latencies
			srcs[i] = src
		} else if cfg.System == ThinClient {
			src := &simSource{
				sim:   sim,
				wifi:  wifi,
				sizer: env.Sizer,
				kind:  ThinClient,
				// On-demand render + encode precede the transfer; the
				// reported latency covers the transfer only.
				renderMs:  serverRenderMs,
				encodeMs:  serverEncodeMs,
				latencies: &runtime.LatencyAcc{},
			}
			deps.Source = src
			deps.Net = wifi
			deps.Latencies = src.latencies
			srcs[i] = src
		}
		clients[i] = runtime.NewClient(i, runtimeConfig(env, cfg, endMs), deps)
	}
	if cfg.Overhear && cfg.System.SimilarityCache() {
		wireOverhearing(env, clients, srcs)
	}
	for _, c := range clients {
		c.Start()
	}
	sim.Run(endMs)

	res := &Result{
		Game:    env.Game.Spec.Name,
		System:  cfg.System,
		Players: cfg.Players,
		Seconds: cfg.Seconds,
	}
	for i, c := range clients {
		res.Per = append(res.Per, c.Metrics())
		if i == 0 {
			res.Series = c.Series()
		}
	}
	res.Mean = meanMetrics(res.Per)
	res.FIKbps = float64(hub.UploadBytes+hub.DownloadBytes) * 8 / 1000 / cfg.Seconds
	return res, nil
}

// runtimeConfig maps the prepared environment onto the pipeline's view of
// it. Each client gets its own spatial query (the closures are called
// only from that client's clock callbacks).
func runtimeConfig(env *Env, cfg SessionConfig, endMs float64) runtime.Config {
	scene := env.Game.Scene
	q := scene.NewQuery()
	return runtime.Config{
		System:         cfg.System,
		Device:         env.Device,
		Grid:           scene.Grid,
		EndMs:          endMs,
		GoodputMbps:    cfg.WiFiGoodput(),
		TotalTriangles: scene.TotalTriangles(),
		LODFactor:      env.Game.Spec.LODFactor(),
		RadiusAt:       env.Map.RadiusAt,
		TrianglesWithin: func(pos geom.Vec2, radius float64) int {
			return scene.TrianglesWithin(q, pos, radius)
		},
	}
}

// wireOverhearing makes every completed fetch visible to every client's
// cache (the §4.6 emulation assumption: "the reply from the server is
// overheard and cached by all the players").
func wireOverhearing(env *Env, clients []*runtime.Client, srcs []*simSource) {
	meta := env.MetaFor()
	grid := env.Game.Scene.Grid
	for i, src := range srcs {
		i := i
		src.onDeliver = func(pt geom.GridPoint, size int) {
			leaf, sig, _ := meta(pt)
			e := cache.Entry{
				Point: pt, Pos: grid.Pos(pt),
				LeafID: leaf, NearSig: sig,
				Size: size, Owner: i,
			}
			for j, other := range clients {
				if j != i && other.Cache() != nil {
					other.Cache().Insert(e)
				}
			}
		}
	}
}

func meanMetrics(per []PlayerMetrics) PlayerMetrics {
	var m PlayerMetrics
	if len(per) == 0 {
		return m
	}
	n := float64(len(per))
	for _, p := range per {
		m.Frames += p.Frames
		m.FPS += p.FPS / n
		m.InterFrameMs += p.InterFrameMs / n
		m.P95InterFrameMs += p.P95InterFrameMs / n
		m.P99InterFrameMs += p.P99InterFrameMs / n
		m.ResponsivenessMs += p.ResponsivenessMs / n
		m.CPUPct += p.CPUPct / n
		m.GPUPct += p.GPUPct / n
		m.PowerW += p.PowerW / n
		m.TempC += p.TempC / n
		m.FrameKB += p.FrameKB / n
		m.NetDelayMs += p.NetDelayMs / n
		m.BEMbps += p.BEMbps / n
		m.CacheHitRatio += p.CacheHitRatio / n
		m.PrefetchIssued += p.PrefetchIssued
	}
	return m
}
