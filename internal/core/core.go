// Package core assembles the Coterie system out of the substrates: it
// prepares a game environment (scene, offline cutoff map, distance
// thresholds, frame-size model) and runs multiplayer sessions of Coterie
// and of the paper's baselines over the discrete-event testbed, producing
// the metrics the paper's tables and figures report.
//
// The evaluated systems (§3, §7):
//
//   - Mobile: local rendering of everything on the phone.
//   - Thin-client: remote rendering; the server renders, encodes and
//     streams every display frame.
//   - Multi-Furion: the replicated Furion architecture — FI rendered
//     locally, whole-BE panoramas prefetched per grid point.
//   - Multi-Furion+cache: the same plus an exact-match frame cache.
//   - Coterie w/o cache: near BE rendered locally, far-BE panoramas
//     prefetched per grid point (smaller frames, no reuse).
//   - Coterie: the full design — near BE local, far-BE prefetch through
//     the similarity frame cache.
package core

import (
	"fmt"
	"math"

	"coterie/internal/cache"
	"coterie/internal/codec"
	"coterie/internal/cutoff"
	"coterie/internal/device"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/netsim"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/runtime"
)

// SystemKind identifies one of the evaluated system designs. The type and
// its constants live in internal/runtime (the pipeline branches on them);
// core re-exports them so experiment code keeps reading naturally.
type SystemKind = runtime.SystemKind

const (
	Mobile           = runtime.Mobile
	ThinClient       = runtime.ThinClient
	MultiFurion      = runtime.MultiFurion
	MultiFurionCache = runtime.MultiFurionCache
	CoterieNoCache   = runtime.CoterieNoCache
	Coterie          = runtime.Coterie
)

// EnvOptions controls environment preparation.
type EnvOptions struct {
	// Device is the client hardware model; zero value means Pixel2.
	Device device.Profile
	// RenderCfg sets the panoramic frame resolution for size sampling and
	// threshold calibration.
	RenderCfg render.Config
	// CutoffParams configures the adaptive cutoff scheme; zero value
	// means cutoff.DefaultParams.
	CutoffParams cutoff.Params
	// ThresholdLeaves is the number of leaves sampled by
	// cutoff.CalibrateThresholds; 0 means 3.
	ThresholdLeaves int
	// SizeSamples is the number of locations sampled for the frame-size
	// model; 0 means 12.
	SizeSamples int
	// CRF is the encoder quality; 0 means codec.DefaultCRF.
	CRF int
	// Parallel is the worker count for the parallelizable preprocessing
	// stages (cutoff partitioning, threshold calibration); 0 means
	// GOMAXPROCS. Results are identical for any value.
	Parallel int
}

// Env is a prepared game environment shared by sessions: the built game,
// its offline preprocessing output, and the frame-size model.
type Env struct {
	Game     *games.Game
	Device   device.Profile
	Map      *cutoff.Map
	Renderer *render.Renderer
	Sizer    *FrameSizer
	CRF      int
}

// PrepareEnv builds a game and runs the offline preprocessing: the
// adaptive cutoff scheme, the cache distance thresholds, and frame-size
// sampling. This corresponds to the paper's per-app installation step
// (§4.3, §6).
func PrepareEnv(spec games.Spec, opts EnvOptions) (*Env, error) {
	if opts.Device.Name == "" {
		opts.Device = device.Pixel2()
	}
	if opts.CutoffParams.K == 0 {
		opts.CutoffParams = cutoff.DefaultParams()
	}
	if opts.CutoffParams.Parallel == 0 {
		opts.CutoffParams.Parallel = opts.Parallel
	}
	if opts.ThresholdLeaves == 0 {
		opts.ThresholdLeaves = 3
	}
	if opts.SizeSamples == 0 {
		opts.SizeSamples = 12
	}
	if opts.CRF == 0 {
		opts.CRF = codec.DefaultCRF
	}
	g := games.Build(spec)
	m, err := cutoff.Compute(g.Scene, opts.Device.NearBERenderMs, opts.CutoffParams)
	if err != nil {
		return nil, fmt.Errorf("core: cutoff scheme failed: %w", err)
	}
	r := render.New(g.Scene, opts.RenderCfg)
	tc := cutoff.DefaultThresholdConfig()
	tc.Parallel = opts.Parallel
	if err := cutoff.CalibrateThresholds(m, r, opts.ThresholdLeaves, tc); err != nil {
		return nil, fmt.Errorf("core: threshold calibration failed: %w", err)
	}
	sizer, err := NewFrameSizer(g, m, r, opts.CRF, opts.SizeSamples)
	if err != nil {
		return nil, fmt.Errorf("core: frame sizing failed: %w", err)
	}
	return &Env{
		Game:     g,
		Device:   opts.Device,
		Map:      m,
		Renderer: r,
		Sizer:    sizer,
		CRF:      opts.CRF,
	}, nil
}

// MetaFor builds the prefetch.Meta function for this environment: leaf
// region, near-set signature and distance threshold of a grid point. The
// near-set signature uses the leaf's cutoff radius, since that radius
// defines which objects belong to the near BE.
func (e *Env) MetaFor() func(pt geom.GridPoint) (int, uint64, float64) {
	q := e.Game.Scene.NewQuery()
	type meta struct {
		leaf   int
		sig    uint64
		thresh float64
	}
	memo := make(map[geom.GridPoint]meta)
	return func(pt geom.GridPoint) (int, uint64, float64) {
		if m, ok := memo[pt]; ok {
			return m.leaf, m.sig, m.thresh
		}
		pos := e.Game.Scene.Grid.Pos(pt)
		leaf := e.Map.LeafAt(pos)
		if leaf == nil {
			return -1, 0, 0
		}
		sig := e.Game.Scene.NearSetSignature(q, pos, leaf.Radius)
		m := meta{leaf: leaf.ID, sig: sig, thresh: leaf.DistThresh}
		if len(memo) < 1<<20 {
			memo[pt] = m
		}
		return m.leaf, m.sig, m.thresh
	}
}

// display4KPixels is the panoramic frame resolution the paper prefetches
// (3840x2160); sampled sizes are scaled to it.
const display4KPixels = 3840 * 2160

// sizeScaleExponent converts encoded bytes measured at the experiment
// resolution to the 4K operating point: compressed video rate grows
// sublinearly with pixel count (roughly rate ~ pixels^0.9 at constant
// quality), because higher resolutions add proportionally more smooth
// area than edges.
const sizeScaleExponent = 0.9

// FrameSizer models encoded frame sizes at 4K from real renders at the
// experiment resolution: it renders sample panoramas, encodes them with
// the codec, and scales byte counts to 4K pixel counts. Per-request sizes
// get a small deterministic jitter so transfers are not artificially
// uniform.
type FrameSizer struct {
	// WholeBE is the mean encoded whole-BE panorama size in bytes (what
	// Multi-Furion transfers per grid point).
	WholeBE int
	// FarBE is the mean encoded far-BE panorama size (what Coterie
	// transfers on a cache miss).
	FarBE int
	// Thin is the mean encoded full-detail display frame (what the
	// thin-client streams every frame).
	Thin int
}

// sizerConfig is the fixed resolution the size model samples at. Fixing
// it decouples the modelled 4K byte counts from the experiment render
// resolution (compressed bits-per-pixel varies with resolution, so
// sampling at the experiment resolution would make transfer sizes depend
// on an unrelated knob).
var sizerConfig = render.Config{W: 192, H: 96}

// NewFrameSizer samples frame sizes across the world. The passed renderer
// selects the scene; sampling happens at the fixed sizer resolution.
func NewFrameSizer(g *games.Game, m *cutoff.Map, _ *render.Renderer, crf, samples int) (*FrameSizer, error) {
	if samples < 1 {
		return nil, fmt.Errorf("core: need at least one size sample")
	}
	r := render.New(g.Scene, sizerConfig)
	var whole, far, thin float64
	count := 0
	// Deterministic stratified sample positions around the spawn region
	// and across the world.
	for i := 0; i < samples; i++ {
		f := (float64(i) + 0.5) / float64(samples)
		pos := geom.V2(
			g.Scene.Bounds.MinX+f*g.Scene.Bounds.Width(),
			g.Scene.Bounds.MinZ+(1-f)*g.Scene.Bounds.Depth(),
		)
		if i%3 == 0 { // bias a third of samples near the playable area
			pos = g.Scene.Bounds.ClampPoint(geom.V2(
				g.Spawn.X+(f-0.5)*20,
				g.Spawn.Z+(0.5-f)*20,
			))
		}
		leaf := m.LeafAt(pos)
		if leaf == nil {
			continue
		}
		eye := g.Scene.EyeAt(pos)
		wholePano := r.Panorama(eye, 0, math.Inf(1), nil)
		farPano := r.Panorama(eye, leaf.Radius, math.Inf(1), nil)
		scale := math.Pow(float64(display4KPixels)/float64(wholePano.W*wholePano.H), sizeScaleExponent)
		whole += float64(len(codec.Encode(wholePano, crf))) * scale
		far += float64(len(codec.Encode(farPano, crf))) * scale

		fov, err := render.FoVCrop(wholePano, 0, math.Pi/2, math.Pi/2)
		if err != nil {
			return nil, err
		}
		fovScale := math.Pow(float64(display4KPixels)/float64(fov.W*fov.H), sizeScaleExponent)
		thin += float64(len(codec.Encode(fov, crf))) * fovScale
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("core: no usable size samples")
	}
	return &FrameSizer{
		WholeBE: int(whole / float64(count)),
		FarBE:   int(far / float64(count)),
		Thin:    int(thin / float64(count)),
	}, nil
}

// SizeFor returns the modelled transfer size for a system's BE frame at a
// grid point, with deterministic per-point jitter.
func (fs *FrameSizer) SizeFor(kind SystemKind, pt geom.GridPoint) int {
	var base int
	switch {
	case kind == ThinClient:
		base = fs.Thin
	case kind.SplitsNearFar():
		base = fs.FarBE
	default:
		base = fs.WholeBE
	}
	return jitterSize(base, pt)
}

// jitterSize applies a +-8% deterministic hash jitter.
func jitterSize(base int, pt geom.GridPoint) int {
	h := uint64(pt.I)*0x9E3779B97F4A7C15 ^ uint64(pt.J)*0xBF58476D1CE4E5B9
	h ^= h >> 33
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	f := 0.92 + 0.16*float64(h%1024)/1023
	return int(float64(base) * f)
}

// simSource adapts the WiFi medium to the runtime.FrameSource (and
// prefetch.Source) interface with a small server turnaround time (the
// Coterie server serves pre-rendered, pre-encoded frames, §5.1). It also
// implements runtime.StageReporter: the testbed emits the same server-side
// stage decomposition the live backend carries over the wire, so sim and
// live traces decompose identically (span schema v2).
type simSource struct {
	sim   *netsim.Sim
	wifi  *netsim.WiFi
	sizer *FrameSizer
	kind  SystemKind
	// serverMs is server turnaround counted toward the reported transfer
	// latency (the pre-rendered frame lookup); it is attributed to the
	// queue stage of the trace decomposition.
	serverMs float64
	// renderMs and encodeMs are server work preceding the transfer without
	// counting toward its latency (the thin client's on-demand render and
	// encode).
	renderMs float64
	encodeMs float64
	// latencies accumulates per-transfer network delays for reporting.
	latencies *runtime.LatencyAcc
	// onDeliver, when set, observes every completed fetch (used by the
	// overhearing extension to populate other players' caches, §4.6).
	onDeliver func(pt geom.GridPoint, size int)
	// last is the stage decomposition of the most recent completed fetch
	// (only touched on the simulator goroutine).
	last obs.FetchStages
	// nextDeadlineMs is the virtual time the next fetch's reply is needed
	// by (runtime.DeadlineSetter). The testbed's modelled server has no
	// render queue to prioritise, so the stamp is consumed for parity with
	// the live backend (the pipeline exercises the same code path under
	// both) but does not alter the medium model.
	nextDeadlineMs float64
}

// SetFetchDeadline implements runtime.DeadlineSetter.
func (s *simSource) SetFetchDeadline(virtualMs float64) { s.nextDeadlineMs = virtualMs }

// Fetch implements runtime.FrameSource over the simulated medium.
func (s *simSource) Fetch(player int, pt geom.GridPoint, done func([]byte, int, float64, float64)) {
	s.nextDeadlineMs = 0 // consumed: each fetch-triggering call re-stamps
	size := s.sizer.SizeFor(s.kind, pt)
	issued := s.sim.Now()
	s.sim.After(s.renderMs+s.encodeMs+s.serverMs, func() {
		s.wifi.Transfer(player, size, func(start, end float64) {
			s.latencies.Add(end - start + s.serverMs)
			rtt := end - issued
			s.last = obs.FetchStages{
				NetMs:    rtt - s.serverMs - s.renderMs - s.encodeMs,
				QueueMs:  s.serverMs,
				RenderMs: s.renderMs,
				EncodeMs: s.encodeMs,
				RTTMs:    rtt,
				Valid:    true,
			}
			if s.onDeliver != nil {
				s.onDeliver(pt, size)
			}
			done(nil, size, start, end)
		})
	})
}

// LastFetchStages implements runtime.StageReporter.
func (s *simSource) LastFetchStages() obs.FetchStages { return s.last }

// cacheConfigFor returns the cache configuration a system uses.
func cacheConfigFor(kind SystemKind, policy cache.Policy, capacity int64) cache.Config {
	switch kind {
	case MultiFurionCache:
		cfg, _ := cache.Version(1) // exact matching only
		cfg.Policy = policy
		cfg.CapacityBytes = capacity
		return cfg
	case Coterie:
		cfg, _ := cache.Version(3) // intra-player similar frames
		cfg.Policy = policy
		cfg.CapacityBytes = capacity
		return cfg
	default:
		// Multi-Furion and Coterie-no-cache hold only recently prefetched
		// frames (a small staging buffer, not a reuse cache).
		cfg, _ := cache.Version(1)
		cfg.Policy = cache.LRU
		cfg.CapacityBytes = 64 * 1024 * 1024 // ~100 whole-BE frames
		return cfg
	}
}
