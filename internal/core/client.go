package core

import (
	"math"
	"sort"

	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/trace"
)

// frame starts one per-frame pipeline iteration for the client (§5.1): it
// samples the pose, synchronises FI, runs the system-specific rendering
// path, and schedules the display completion, which in turn starts the
// next frame.
func (c *client) frame() {
	now := c.sim.Now()
	if now >= c.endMs {
		return
	}
	tick := int(now / tickMs)
	if tick >= c.tr.Len() {
		return
	}
	pos := c.tr.Pos[tick]
	vel := c.velocity(tick)

	// FI synchronisation through the server (task 4); the latency is part
	// of the Eq. 2 max, which the display scheduling below accounts for.
	c.seq++
	c.hub.Update(fisync.State{
		Player:  uint8(c.id),
		Seq:     c.seq,
		Pos:     pos,
		Heading: math.Atan2(vel.Z, vel.X),
	})
	c.hub.Snapshot(uint8(c.id))

	dev := c.env.Device
	switch c.cfg.System {
	case Mobile:
		spec := c.env.Game.Spec
		renderMs := dev.FullSceneRenderMs(int(float64(c.env.Game.Scene.TotalTriangles())/spec.LODFactor())) + dev.FIRenderMs
		c.display(now, now+renderMs, renderMs, false, 0)

	case ThinClient:
		pt := c.env.Game.Scene.Grid.Snap(pos)
		size := c.env.Sizer.SizeFor(ThinClient, pt)
		// Sequential remote pipeline: render + encode on the server, then
		// transfer, then hardware decode and display locally.
		c.sim.After(serverRenderMs+serverEncodeMs, func() {
			c.wifi.Transfer(c.id, size, func(start, end float64) {
				c.src.latencies.add(end - start)
				c.noteSize(size)
				readyAt := end + dev.DecodeMs(size) + mergeMs
				c.display(now, readyAt, thinOverlayMs, true, size)
			})
		})

	default: // BE-prefetching systems (Multi-Furion variants, Coterie)
		cur := c.env.Game.Scene.Grid.Snap(pos)
		c.cache.SetPlayerPos(pos)

		localMs := dev.FIRenderMs
		if c.cfg.System.splitsNearFar() {
			radius := c.env.Map.RadiusAt(pos)
			tris := c.env.Game.Scene.TrianglesWithin(c.q, pos, radius)
			localMs += dev.NearBEFrameMs(tris)
		}

		// Per Eq. 2, the frame interval is the max over the four parallel
		// tasks plus merging; the prefetch of the next frames (task 3) is
		// one of those tasks, so a frame cannot complete before its
		// prefetch does. Join the decode path and the prefetch path.
		join := &frameJoin{pending: 1, ready: now}

		// Prefetch request for the upcoming grid point (task 3): cache
		// first, server on miss. This stream defines the cache hit ratio.
		look := c.pf.Cfg.LookaheadSec
		predicted := c.env.Game.Scene.Grid.Snap(geom.V2(pos.X+vel.X*look, pos.Z+vel.Z*look))
		if c.pf.RequestTracked(predicted, func(_ int, at float64) { join.arrive(at) }) {
			join.pending++
		}

		// The display blocks on the BE frame for this interval (task 2).
		// Coterie looks the current point up in the similarity cache;
		// Furion-style systems decode whatever the previous frame's
		// prefetch targeted ("decode previously prefetched BE for grid
		// point i", §2.2).
		need := cur
		if !c.cfg.System.similarityCache() && c.hasPrevPredicted {
			need = c.prevPredicted
		}
		c.prevPredicted, c.hasPrevPredicted = predicted, true

		join.fire = func(prefetchDone float64) {
			c.pf.Ensure(need, now, func(size int, readyAt float64) {
				c.noteSize(size)
				decodeDone := readyAt + dev.DecodeMs(size)
				tasksDone := math.Max(math.Max(now+localMs, prefetchDone),
					math.Max(decodeDone, now+syncMs))
				c.display(now, tasksDone+mergeMs, localMs, true, size)
			})
		}
		join.arrive(now)
	}
}

// frameJoin waits for the parallel per-frame tasks of Eq. 2 and fires once
// with the latest completion time.
type frameJoin struct {
	pending int
	ready   float64
	fire    func(readyAt float64)
}

func (j *frameJoin) arrive(at float64) {
	if at > j.ready {
		j.ready = at
	}
	j.pending--
	if j.pending == 0 && j.fire != nil {
		j.fire(j.ready)
	}
}

// velocity estimates the player's velocity in m/s from the trace.
func (c *client) velocity(tick int) geom.Vec2 {
	const horizon = 6 // ticks (100 ms)
	j := tick + horizon
	if j >= c.tr.Len() {
		j = c.tr.Len() - 1
	}
	if j <= tick {
		return geom.Vec2{}
	}
	d := c.tr.Pos[j].Sub(c.tr.Pos[tick])
	return d.Scale(trace.TickHz / float64(j-tick))
}

func (c *client) noteSize(size int) {
	c.sizeSum += float64(size)
	c.sizeCount++
}

// display schedules the frame completion: the pipeline is ready at
// readyAt, the frame reaches the display at the vsync-floored time.
// Responsiveness (motion-to-photon) counts pose sampling to pipeline
// readiness — a pipeline faster than the refresh interval yields
// responsiveness below 16.7 ms, as in Table 7.
func (c *client) display(start, readyAt float64, renderMs float64, decoding bool, size int) {
	dev := c.env.Device
	displayAt := readyAt
	if min := start + dev.VsyncMs; displayAt < min {
		displayAt = min
	}
	c.sim.At(displayAt, func() {
		if c.lastDisplay == 0 {
			c.lastDisplay = start
		}
		inter := displayAt - c.lastDisplay
		c.lastDisplay = displayAt
		c.frames++
		c.interSum += inter
		c.inters = append(c.inters, float32(inter))
		c.respSum += sensorMs + (readyAt - start)

		// Resource accounting over this frame interval.
		netMbps := c.currentNetMbps()
		cpu := dev.CPUUtil(renderMs, decoding, netMbps)
		gpu := dev.GPUUtil(renderMs, inter)
		power := dev.PowerW(cpu, gpu, netMbps)
		c.therm.Step(power, inter/1000)
		c.cpuSum += cpu
		c.gpuSum += gpu
		c.powerSum += power
		c.bucket(displayAt, cpu, gpu, power, inter)

		c.frame()
	})
}

// currentNetMbps estimates the client's instantaneous download rate from
// its share of the medium.
func (c *client) currentNetMbps() float64 {
	if c.src == nil {
		return 0
	}
	active := c.wifi.ActiveTransfers()
	if active == 0 {
		return 0
	}
	// This client's flows get an equal share; approximate by assuming it
	// owns one of the active transfers.
	return c.cfg.WiFiGoodput() / float64(active)
}

// WiFiGoodput returns the configured medium goodput in Mbps.
func (cfg SessionConfig) WiFiGoodput() float64 {
	if cfg.WiFi.GoodputMbps > 0 {
		return cfg.WiFi.GoodputMbps
	}
	return 500
}

// bucket accumulates per-second resource series samples (Fig 12).
func (c *client) bucket(now float64, cpu, gpu, power, weight float64) {
	sec := int(now / 1000)
	if sec != c.curSec && c.secWeight > 0 {
		c.series = append(c.series, SeriesPoint{
			Sec:    c.curSec,
			CPUPct: c.secCPU / c.secWeight * 100,
			GPUPct: c.secGPU / c.secWeight * 100,
			PowerW: c.secPower / c.secWeight,
			TempC:  c.therm.Temperature(),
		})
		c.secCPU, c.secGPU, c.secPower, c.secWeight = 0, 0, 0, 0
	}
	c.curSec = sec
	c.secCPU += cpu * weight
	c.secGPU += gpu * weight
	c.secPower += power * weight
	c.secWeight += weight
}

// metrics finalises the client's aggregates.
func (c *client) metrics() PlayerMetrics {
	m := PlayerMetrics{Frames: c.frames, TempC: c.therm.Temperature()}
	if c.frames > 0 {
		m.InterFrameMs = c.interSum / float64(c.frames)
		sorted := append([]float32(nil), c.inters...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.P95InterFrameMs = float64(sorted[int(0.95*float64(len(sorted)-1))])
		m.P99InterFrameMs = float64(sorted[int(0.99*float64(len(sorted)-1))])
		m.ResponsivenessMs = c.respSum / float64(c.frames)
		m.CPUPct = c.cpuSum / float64(c.frames) * 100
		m.GPUPct = c.gpuSum / float64(c.frames) * 100
		m.PowerW = c.powerSum / float64(c.frames)
	}
	elapsed := c.lastDisplay / 1000
	if elapsed <= 0 {
		elapsed = c.endMs / 1000
	}
	m.FPS = float64(c.frames) / elapsed
	if c.sizeCount > 0 {
		m.FrameKB = c.sizeSum / float64(c.sizeCount) / 1024
	}
	if c.src != nil {
		m.NetDelayMs = c.src.latencies.mean()
		m.BEMbps = float64(c.wifi.FlowBytes(c.id)) * 8 / 1e6 / (c.endMs / 1000)
	}
	if c.cache != nil {
		m.CacheHitRatio = c.cache.Stats().HitRatio()
	}
	if c.pf != nil {
		m.PrefetchIssued = c.pf.Stats().Issued
	}
	return m
}
