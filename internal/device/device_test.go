package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNearBEBudgetMatchesPaperEq1(t *testing.T) {
	p := Pixel2()
	// Eq. 1: RT_NearBE < 16.7ms - 4ms = 12.7ms. Our FI bound is 3.6ms, so
	// the budget must be at least the paper's conservative 12.7ms and
	// below the full vsync interval.
	b := p.NearBEBudgetMs()
	if b < 12.7 || b >= p.VsyncMs {
		t.Fatalf("near-BE budget = %v ms, want in [12.7, 16.7)", b)
	}
	if p.FIRenderMs >= 4 {
		t.Fatalf("FI render bound %v ms must be 'well below 4 ms'", p.FIRenderMs)
	}
}

func TestRenderMsMonotone(t *testing.T) {
	p := Pixel2()
	f := func(a, b uint32) bool {
		x, y := int(a%10_000_000), int(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		return p.RenderMs(x) <= p.RenderMs(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMobileBaselineOperatingPoint(t *testing.T) {
	// Table 1, Mobile rows: full local rendering of the three headline
	// games lands at 38-50 ms per frame (24-27 FPS). Our game scenes have
	// total triangle counts around 45-75M; whole-scene render time must
	// land in that band.
	p := Pixel2()
	for _, totalTris := range []int{55_000_000, 65_000_000, 72_000_000} {
		ms := p.FullSceneRenderMs(totalTris)
		if ms < 35 || ms > 55 {
			t.Errorf("FullSceneRenderMs(%d) = %.1f ms, want ~38-50", totalTris, ms)
		}
	}
}

func TestNearBEBudgetTriangleCapacity(t *testing.T) {
	// The cutoff search needs a meaningful triangle budget: the number of
	// triangles renderable within the 12.7ms window should be several
	// hundred thousand (so cutoff radii land in the paper's 2-30m range
	// for realistic densities).
	p := Pixel2()
	budget := p.NearBEBudgetMs()
	tris := int((budget - p.RenderBaseMs) * p.TriPerMs)
	if tris < 400_000 || tris > 1_500_000 {
		t.Fatalf("near-BE capacity = %d triangles, outside plausible range", tris)
	}
	if got := p.NearBERenderMs(tris); got > budget+1e-9 {
		t.Fatalf("budget capacity renders in %v ms > budget %v", got, budget)
	}
}

func TestDecodeMs(t *testing.T) {
	p := Pixel2()
	// A Multi-Furion whole-BE frame (~550 KB, Table 1) must decode well
	// within the 16.7ms frame interval on the hardware decoder.
	d := p.DecodeMs(550 * 1024)
	if d >= p.VsyncMs {
		t.Fatalf("550KB decode = %v ms, must fit in a frame interval", d)
	}
	if p.DecodeMs(100*1024) >= d {
		t.Fatal("decode time must grow with frame size")
	}
}

func TestCPUUtilCalibration(t *testing.T) {
	p := Pixel2()
	// Mobile: render-bound, no network, no decode -> Table 1 shows 9-20%.
	mobile := p.CPUUtil(40, false, 0)
	if mobile < 0.08 || mobile > 0.25 {
		t.Errorf("Mobile CPU = %.2f, want 0.09-0.20", mobile)
	}
	// Multi-Furion 1P: FI render, decoding, ~276 Mbps -> 23-33%.
	furion := p.CPUUtil(3.6, true, 276)
	if furion < 0.2 || furion > 0.36 {
		t.Errorf("Multi-Furion CPU = %.2f, want 0.23-0.33", furion)
	}
	// Coterie 1P: FI+nearBE render (~10ms), decoding, ~26 Mbps -> 27-32%.
	coterie := p.CPUUtil(10, true, 26)
	if coterie < 0.15 || coterie > 0.35 {
		t.Errorf("Coterie CPU = %.2f, want 0.27-0.32", coterie)
	}
	// Thin-client at 2 players saturates ~500 Mbps shared -> still < 40%.
	thin := p.CPUUtil(1.5, true, 250)
	if thin > 0.4 {
		t.Errorf("Thin-client CPU = %.2f, want < 0.40", thin)
	}
}

func TestCPUUtilBounded(t *testing.T) {
	p := Pixel2()
	f := func(r, n float64) bool {
		u := p.CPUUtil(math.Abs(r), true, math.Abs(n))
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGPUUtilCalibration(t *testing.T) {
	p := Pixel2()
	// Mobile: render time beyond vsync -> ~100% GPU (Table 1: 88-99%).
	if u := p.GPUUtil(42, 42); u < 0.85 {
		t.Errorf("Mobile GPU = %.2f", u)
	}
	// Multi-Furion: only FI rendered locally -> ~15% (Table 1: 13-16%).
	if u := p.GPUUtil(2.5, p.VsyncMs); u < 0.10 || u > 0.20 {
		t.Errorf("Multi-Furion GPU = %.2f, want ~0.15", u)
	}
	// Coterie: FI + near BE ~8-10ms -> 40-65% (Table 8).
	if u := p.GPUUtil(9, p.VsyncMs); u < 0.39 || u > 0.66 {
		t.Errorf("Coterie GPU = %.2f, want 0.40-0.65", u)
	}
}

func TestPowerCalibration(t *testing.T) {
	p := Pixel2()
	// Coterie steady state: ~30% CPU, ~55% GPU, ~25 Mbps -> ~4W (Fig 12),
	// lasting more than 2.5 hours on the Pixel 2 battery.
	w := p.PowerW(0.30, 0.55, 25)
	if w < 3.2 || w > 4.8 {
		t.Fatalf("Coterie power = %.2f W, want ~4", w)
	}
	if h := p.BatteryHours(w); h < 2.2 {
		t.Fatalf("battery life = %.2f h, paper says > 2.5h at ~4W", h)
	}
	if !math.IsInf(p.BatteryHours(0), 1) {
		t.Fatal("zero power should give infinite runtime")
	}
}

func TestThermalConvergesBelowLimit(t *testing.T) {
	p := Pixel2()
	th := p.NewThermal()
	if th.Temperature() != p.AmbientC {
		t.Fatalf("initial temperature = %v", th.Temperature())
	}
	// 30 minutes at Coterie's ~4W: temperature rises gradually and stays
	// under the 52C limit (Fig 12).
	var temp float64
	for i := 0; i < 30*60; i++ {
		temp = th.Step(4.0, 1)
	}
	if temp <= p.AmbientC+10 {
		t.Fatalf("temperature after 30 min = %.1fC, expected a clear rise", temp)
	}
	if temp >= p.ThermalCapC {
		t.Fatalf("temperature %.1fC exceeds the %vC limit at 4W", temp, p.ThermalCapC)
	}
	if th.Throttled() {
		t.Fatal("should not be throttled at 4W")
	}
}

func TestThermalMonotoneApproach(t *testing.T) {
	p := Pixel2()
	th := p.NewThermal()
	prev := th.Temperature()
	for i := 0; i < 100; i++ {
		cur := th.Step(4.0, 60)
		if cur < prev-1e-9 {
			t.Fatal("temperature decreased while heating")
		}
		prev = cur
	}
	// Steady state ~= ambient + R*P.
	want := p.AmbientC + p.ThermalRes*4
	if math.Abs(prev-want) > 0.5 {
		t.Fatalf("steady state %.2f, want %.2f", prev, want)
	}
	// Cooling: drop power, temperature must fall.
	cool := th.Step(1.0, 300)
	if cool >= prev {
		t.Fatal("temperature did not fall after load drop")
	}
}

func TestThermalThrottleDetectable(t *testing.T) {
	p := Pixel2()
	th := p.NewThermal()
	for i := 0; i < 3600; i++ {
		th.Step(8.0, 10) // unrealistic sustained load
	}
	if !th.Throttled() {
		t.Fatal("8W sustained should exceed the thermal limit")
	}
}

func TestGPUUtilEdgeCases(t *testing.T) {
	p := Pixel2()
	if u := p.GPUUtil(10, 0); u != 1 {
		t.Fatalf("zero interval GPU = %v", u)
	}
	if u := p.GPUUtil(100, 16.7); u != 1 {
		t.Fatalf("over-budget GPU = %v, want capped at 1", u)
	}
}
