// Package device is the analytical model of a commodity VR phone (the
// paper's Pixel 2) that substitutes for measuring on real hardware: render
// time as a function of triangle load, hardware-decoder latency, CPU load
// from packet processing and decoding, GPU utilisation, a first-order
// thermal model, and battery power draw.
//
// Calibration targets (the paper's measured operating points):
//
//   - Mobile (local rendering of the whole scene): 38-50 ms per frame,
//     88-99 % GPU (Table 1).
//   - FI rendering: bounded well below 4 ms (§4.3).
//   - Constraint 1: RT_FI + RT_nearBE < 16.7 ms, giving the near-BE budget
//     of 12.7 ms used by the adaptive cutoff scheme.
//   - Multi-Furion: ~15 % GPU (FI only), 23-33 % CPU (Table 1).
//   - Coterie: 27-32 % CPU, 39-65 % GPU (Tables 7, 8; Fig 12), ~4 W power,
//     SoC temperature below the 52 C thermal limit over 30 minutes.
package device

import "math"

// Profile holds the performance constants of one device model. The zero
// value is not useful; start from Pixel2().
type Profile struct {
	Name string

	// TriPerMs is GPU triangle throughput in triangles per millisecond
	// for scene geometry rendered by the local engine.
	TriPerMs float64
	// RenderBaseMs is the fixed per-frame rendering overhead (driver,
	// projection, compositing).
	RenderBaseMs float64
	// FIRenderMs is the measured upper bound for rendering foreground
	// interactions (§4.3: "bounded well below 4 ms on Pixel 2").
	FIRenderMs float64
	// CullFactor is the fraction denominator for whole-scene rendering:
	// frustum and occlusion culling plus LOD mean the engine draws about
	// 1/CullFactor of the total scene triangles from a typical viewpoint.
	CullFactor float64
	// FrustumCull is the denominator for per-frame near-BE rendering: the
	// engine draws the current field of view plus a guard band (~160 of
	// 360 degrees), so the per-frame cost is the all-around triangle
	// count divided by this. The cutoff search deliberately does NOT
	// apply it — the offline budget must hold for any head orientation —
	// which is why measured GPU load sits well below the 16.7 ms budget
	// (the paper's 39-57% GPU, Table 8).
	FrustumCull float64

	// DecodeBaseMs and DecodePerKB model the hardware H.264 decoder.
	DecodeBaseMs float64
	DecodePerKB  float64

	// VsyncMs is the display refresh interval (60 Hz).
	VsyncMs float64

	// CPU model: fractions of total CPU (all cores) in [0,1].
	CPUBase      float64 // OS + game logic + sensors
	CPUDecode    float64 // added while the hardware decode pipeline runs
	CPUPerMbps   float64 // packet processing cost per Mbps received
	CPURenderMax float64 // added at full GPU-feeding render load

	// Battery model in watts.
	PowerBase   float64
	PowerGPU    float64 // at 100% GPU
	PowerCPU    float64 // at 100% CPU
	PowerPerMbW float64 // per Mbps of radio traffic

	// Thermal model: first-order RC from power to SoC temperature.
	AmbientC    float64
	ThermalRes  float64 // C per watt at steady state
	ThermalTauS float64 // time constant in seconds
	ThermalCapC float64 // vendor thermal-engine limit (52 C on Pixel 2)

	// BatteryWh is the battery energy (Pixel 2: 2770 mAh * 3.85 V ~ 10.7 Wh).
	BatteryWh float64
}

// Pixel2 returns the calibrated profile for the paper's client device.
func Pixel2() Profile {
	return Profile{
		Name:         "Pixel 2",
		TriPerMs:     60_000,
		RenderBaseMs: 1.6,
		FIRenderMs:   3.6,
		CullFactor:   25,
		FrustumCull:  2.2,
		DecodeBaseMs: 3.0,
		DecodePerKB:  0.012,
		VsyncMs:      1000.0 / 60,
		CPUBase:      0.085,
		CPUDecode:    0.09,
		CPUPerMbps:   0.00042,
		CPURenderMax: 0.10,
		PowerBase:    1.35,
		PowerGPU:     2.6,
		PowerCPU:     2.2,
		PowerPerMbW:  0.0035,
		AmbientC:     24,
		ThermalRes:   5.6,
		ThermalTauS:  420,
		ThermalCapC:  52,
		BatteryWh:    10.66,
	}
}

// NearBEBudgetMs returns the render-time budget for near BE under
// Constraint 1 of the paper: 16.7 ms minus the FI bound (= 12.7 ms on the
// Pixel 2 profile, Eq. 1).
func (p Profile) NearBEBudgetMs() float64 { return p.VsyncMs - p.FIRenderMs }

// RenderMs returns the time to render the given triangle count with the
// local engine (no culling — the caller passes the triangles actually
// drawn).
func (p Profile) RenderMs(tris int) float64 {
	return p.RenderBaseMs + float64(tris)/p.TriPerMs
}

// NearBERenderMs returns the orientation-independent render time for a
// near BE containing the given all-around triangle count. This is the
// quantity Constraint 1 bounds during offline cutoff search.
func (p Profile) NearBERenderMs(tris int) float64 { return p.RenderMs(tris) }

// NearBEFrameMs returns the actual per-frame cost of rendering the near BE
// for the current field of view (frustum culling applied).
func (p Profile) NearBEFrameMs(tris int) float64 {
	cull := p.FrustumCull
	if cull < 1 {
		cull = 1
	}
	return p.RenderMs(int(float64(tris) / cull))
}

// FullSceneRenderMs returns the time for local rendering of the whole
// scene (the Mobile baseline): culling and LOD reduce the drawn set.
func (p Profile) FullSceneRenderMs(totalTris int) float64 {
	return p.RenderMs(int(float64(totalTris) / p.CullFactor))
}

// DecodeMs returns hardware decoder latency for an encoded frame size.
func (p Profile) DecodeMs(bytes int) float64 {
	return p.DecodeBaseMs + float64(bytes)/1024*p.DecodePerKB
}

// CPUUtil returns the modelled CPU utilisation fraction in [0,1].
//
//	renderMs:   local rendering time per frame (drives game-thread load)
//	decoding:   whether the decode pipeline is active this interval
//	netMbps:    current download rate over WiFi
func (p Profile) CPUUtil(renderMs float64, decoding bool, netMbps float64) float64 {
	u := p.CPUBase
	if decoding {
		u += p.CPUDecode
	}
	u += netMbps * p.CPUPerMbps
	load := renderMs / p.VsyncMs
	if load > 1 {
		load = 1
	}
	u += p.CPURenderMax * load
	return math.Min(u, 1)
}

// GPUUtil returns the modelled GPU utilisation fraction in [0,1] given the
// per-frame render time and the achieved inter-frame interval.
func (p Profile) GPUUtil(renderMs, intervalMs float64) float64 {
	if intervalMs <= 0 {
		return 1
	}
	return math.Min(renderMs/intervalMs, 1)
}

// PowerW returns the battery power draw in watts.
func (p Profile) PowerW(cpuUtil, gpuUtil, netMbps float64) float64 {
	return p.PowerBase + p.PowerGPU*gpuUtil + p.PowerCPU*cpuUtil + p.PowerPerMbW*netMbps
}

// BatteryHours returns the runtime at a constant power draw.
func (p Profile) BatteryHours(powerW float64) float64 {
	if powerW <= 0 {
		return math.Inf(1)
	}
	return p.BatteryWh / powerW
}

// Thermal integrates the first-order SoC temperature model.
type Thermal struct {
	p Profile
	t float64 // current temperature
}

// NewThermal starts a thermal trace at ambient temperature.
func (p Profile) NewThermal() *Thermal { return &Thermal{p: p, t: p.AmbientC} }

// Step advances the model by dt seconds at the given power draw and
// returns the new SoC temperature in Celsius.
func (th *Thermal) Step(powerW, dtSeconds float64) float64 {
	target := th.p.AmbientC + th.p.ThermalRes*powerW
	alpha := 1 - math.Exp(-dtSeconds/th.p.ThermalTauS)
	th.t += (target - th.t) * alpha
	return th.t
}

// Temperature returns the current SoC temperature.
func (th *Thermal) Temperature() float64 { return th.t }

// Throttled reports whether the SoC exceeded the vendor thermal limit.
func (th *Thermal) Throttled() bool { return th.t >= th.p.ThermalCapC }
