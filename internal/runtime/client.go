package runtime

import (
	"math"
	"sort"

	"coterie/internal/cache"
	"coterie/internal/device"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/prefetch"
	"coterie/internal/trace"
)

// Deps are the backend-provided collaborators of one client pipeline.
// Clock, FI and Trace are always required; Source (plus Cache/Prefetcher
// for BE-prefetching systems) and the reporting hooks depend on the
// system under test.
type Deps struct {
	Clock Clock
	FI    FISync
	Trace *trace.Trace
	// Source delivers BE frames (thin-client and BE-prefetching systems).
	Source FrameSource
	// Cache and Prefetcher drive the far-BE prefetch path; both are
	// single-threaded and only touched from clock callbacks.
	Cache      *cache.Cache
	Prefetcher *prefetch.Prefetcher
	// Net feeds the resource model's bandwidth-share estimate; nil means
	// no network activity (Mobile).
	Net NetMonitor
	// Latencies receives per-transfer delays recorded by the Source;
	// the pipeline reads the mean for PlayerMetrics.NetDelayMs.
	Latencies *LatencyAcc
	// Obs, when non-nil, receives the pipeline's metrics and per-frame
	// stage spans, and is wired through to the cache and prefetcher so
	// the same instruments light up under every backend. Nil disables
	// instrumentation at near-zero cost.
	Obs *obs.Registry
}

// Client runs the per-frame pipeline for one player over a backend. It is
// not goroutine-safe: Start and every callback run on the clock goroutine.
type Client struct {
	cfg   Config
	id    int
	clock Clock
	fi    FISync
	tr    *trace.Trace
	cache *cache.Cache
	pf    *prefetch.Prefetcher
	src   FrameSource
	// stages is the source's optional cross-node trace capability (span
	// schema v2); nil when the source does not report stage decompositions.
	stages StageReporter
	// deadlines is the source's optional deadline capability: when non-nil,
	// the pipeline stamps each fetch-triggering call with the virtual time
	// its reply is needed by, and the server prioritises against it.
	deadlines DeadlineSetter
	net       NetMonitor
	lat       *LatencyAcc
	therm     *device.Thermal

	seq uint32
	// prevPredicted is the grid point the previous frame's prefetch
	// request targeted; Furion-style systems display the frame prefetched
	// for that prediction (§2.2 steps 3-4).
	prevPredicted    geom.GridPoint
	hasPrevPredicted bool

	lastDisplay float64
	frames      int64
	interSum    float64
	inters      []float32
	respSum     float64
	cpuSum      float64
	gpuSum      float64
	powerSum    float64
	sizeSum     float64
	sizeCount   int64
	series      []SeriesPoint
	secCPU      float64
	secGPU      float64
	secPower    float64
	secWeight   float64
	curSec      int

	// Observability: histograms/counters resolved once at construction
	// (nil-safe no-ops when Deps.Obs is nil), a trace ring, and one pooled
	// span filled in place each frame — the pipeline is single-threaded,
	// and a frame's display callback always runs before the next frame
	// starts, so one slot suffices and the hot path never allocates.
	obs  pipelineObs
	ring *obs.TraceRing
	span obs.FrameSpan
}

// pipelineObs are the pipeline's registry instruments: the per-stage
// breakdown of the frame budget (Eq. 2) the paper's Tables 1/5 report.
type pipelineObs struct {
	frames    *obs.Counter
	interMs   *obs.Histogram
	respMs    *obs.Histogram
	fetchMs   *obs.Histogram
	decodeMs  *obs.Histogram
	joinMs    *obs.Histogram
	slackMs   *obs.Histogram
	cacheMiss *obs.Counter
	cacheHit  *obs.Counter
	// Cross-node fetch decomposition (span schema v2), observed once per
	// delivering fetch rather than per frame.
	netMs          *obs.Histogram
	hopMs          *obs.Histogram
	queueMs        *obs.Histogram
	serverRenderMs *obs.Histogram
	serverEncodeMs *obs.Histogram
}

// instrumentPipeline resolves the pipeline instruments from a registry.
func instrumentPipeline(r *obs.Registry) pipelineObs {
	return pipelineObs{
		frames:    r.Counter("frames.displayed"),
		interMs:   r.Histogram("frame.inter_ms"),
		respMs:    r.Histogram("frame.responsiveness_ms"),
		fetchMs:   r.Histogram("frame.fetch_ms"),
		decodeMs:  r.Histogram("frame.decode_ms"),
		joinMs:    r.Histogram("frame.join_ms"),
		slackMs:   r.Histogram("frame.display_slack_ms"),
		cacheHit:  r.Counter("frames.display_cache_hits"),
		cacheMiss: r.Counter("frames.display_cache_misses"),

		netMs:          r.Histogram("frame.net_ms"),
		hopMs:          r.Histogram("frame.hop_ms"),
		queueMs:        r.Histogram("frame.queue_ms"),
		serverRenderMs: r.Histogram("frame.server_render_ms"),
		serverEncodeMs: r.Histogram("frame.server_encode_ms"),
	}
}

// NewClient builds a pipeline for one player. When Deps.Obs is set, the
// client wires the registry through to its cache and prefetcher too, so
// one call site lights up the whole per-client instrument set identically
// under the simulated and live backends.
func NewClient(id int, cfg Config, d Deps) *Client {
	c := &Client{
		cfg:   cfg,
		id:    id,
		clock: d.Clock,
		fi:    d.FI,
		tr:    d.Trace,
		cache: d.Cache,
		pf:    d.Prefetcher,
		src:   d.Source,
		net:   d.Net,
		lat:   d.Latencies,
		therm: cfg.Device.NewThermal(),
	}
	c.stages, _ = d.Source.(StageReporter)
	c.deadlines, _ = d.Source.(DeadlineSetter)
	if d.Obs != nil {
		c.obs = instrumentPipeline(d.Obs)
		c.ring = d.Obs.Trace()
		if c.cache != nil {
			c.cache.Instrument(d.Obs)
		}
		if c.pf != nil {
			c.pf.Instrument(d.Obs)
		}
	}
	return c
}

// Start begins the frame loop; each displayed frame schedules the next.
func (c *Client) Start() { c.frame() }

// Cache returns the client's frame cache (nil for non-caching systems).
func (c *Client) Cache() *cache.Cache { return c.cache }

// Prefetcher returns the client's prefetcher (nil unless BE-prefetching).
func (c *Client) Prefetcher() *prefetch.Prefetcher { return c.pf }

// frame starts one per-frame pipeline iteration for the client (§5.1): it
// samples the pose, synchronises FI, runs the system-specific rendering
// path, and schedules the display completion, which in turn starts the
// next frame.
func (c *Client) frame() {
	now := c.clock.Now()
	if now >= c.cfg.EndMs {
		return
	}
	tick := int(now / TickMs)
	if tick >= c.tr.Len() {
		return
	}
	pos := c.tr.Pos[tick]
	vel := c.velocity(tick)

	// Reset the pooled span for this frame. The struct stores are cheap
	// and unconditional; whether the span is published is decided by the
	// ring at display time.
	c.span = obs.FrameSpan{Player: c.id, Frame: c.frames + 1, StartMs: now}

	// FI synchronisation through the server (task 4); the latency is part
	// of the Eq. 2 max, which the join below accounts for.
	c.seq++
	st := fisync.State{
		Player:  uint8(c.id),
		Seq:     c.seq,
		Pos:     pos,
		Heading: math.Atan2(vel.Z, vel.X),
	}

	dev := c.cfg.Device
	switch c.cfg.System {
	case Mobile:
		c.fi.Sync(st, now, nil)
		renderMs := dev.FullSceneRenderMs(int(float64(c.cfg.TotalTriangles)/c.cfg.LODFactor)) + dev.FIRenderMs
		c.span.LocalMs = renderMs
		c.display(now, now+renderMs, renderMs, false, 0)

	case ThinClient:
		c.fi.Sync(st, now, nil)
		// Sequential remote pipeline: render + encode on the server, then
		// transfer, then hardware decode and display locally.
		pt := c.cfg.Grid.Snap(pos)
		c.setDeadline(now + dev.VsyncMs)
		c.src.Fetch(c.id, pt, func(_ []byte, size int, _, end float64) {
			c.noteSize(size)
			decodeMs := dev.DecodeMs(size)
			readyAt := end + decodeMs + mergeMs
			c.span.LocalMs = thinOverlayMs
			c.span.FetchMs = end - now
			c.span.DecodeMs = decodeMs
			c.fillFetchStages()
			c.display(now, readyAt, thinOverlayMs, true, size)
		})

	default: // BE-prefetching systems (Multi-Furion variants, Coterie)
		// Per Eq. 2, the frame interval is the max over the four parallel
		// tasks plus merging. FI sync joins as a task: the hub backend
		// completes it inline at the modelled latency, the UDP backend
		// when the reply datagram lands.
		join := &frameJoin{pending: 1, ready: now}
		join.pending++
		c.fi.Sync(st, now, join.arrive)

		cur := c.cfg.Grid.Snap(pos)
		c.cache.SetPlayerPos(pos)

		localMs := dev.FIRenderMs
		if c.cfg.System.SplitsNearFar() {
			radius := c.cfg.RadiusAt(pos)
			tris := c.cfg.TrianglesWithin(pos, radius)
			localMs += dev.NearBEFrameMs(tris)
		}

		// Prefetch request for the upcoming grid point (task 3): cache
		// first, server on miss. This stream defines the cache hit ratio.
		look := c.pf.Cfg.LookaheadSec
		predicted := c.cfg.Grid.Snap(geom.V2(pos.X+vel.X*look, pos.Z+vel.Z*look))
		// The prefetched frame is needed when the player reaches the
		// predicted point — the lookahead horizon, floored at two display
		// intervals so a tiny lookahead never makes speculative traffic
		// more urgent than the frame on screen.
		c.setDeadline(now + math.Max(look*1000, 2*dev.VsyncMs))
		if c.pf.RequestTracked(predicted, func(_ int, at float64) {
			c.span.PrefetchMs = at - now
			join.arrive(at)
		}) {
			c.span.Prefetched = true
			join.pending++
		}

		// The display blocks on the BE frame for this interval (task 2).
		// Coterie looks the current point up in the similarity cache;
		// Furion-style systems decode whatever the previous frame's
		// prefetch targeted ("decode previously prefetched BE for grid
		// point i", §2.2).
		need := cur
		if !c.cfg.System.SimilarityCache() && c.hasPrevPredicted {
			need = c.prevPredicted
		}
		c.prevPredicted, c.hasPrevPredicted = predicted, true

		join.fire = func(tasksReady float64) {
			// The display blocks on this frame: its reply is needed by the
			// next vsync.
			c.setDeadline(now + dev.VsyncMs)
			c.pf.Ensure(need, now, func(size int, readyAt float64) {
				c.noteSize(size)
				decodeMs := dev.DecodeMs(size)
				decodeDone := readyAt + decodeMs
				tasksDone := math.Max(math.Max(now+localMs, tasksReady), decodeDone)
				// Stage spans: Ensure answers at now exactly when the
				// display frame came out of the cache; anything later is
				// the fetch RTT the display blocked on.
				c.span.LocalMs = localMs
				c.span.FetchMs = readyAt - now
				c.span.DecodeMs = decodeMs
				c.span.JoinMs = tasksReady - now
				c.span.CacheHit = readyAt == now
				if !c.span.CacheHit {
					c.fillFetchStages()
				}
				c.display(now, tasksDone+mergeMs, localMs, true, size)
			})
		}
		join.arrive(now)
	}
}

// frameJoin waits for the parallel per-frame tasks of Eq. 2 and fires once
// with the latest completion time.
type frameJoin struct {
	pending int
	ready   float64
	fire    func(readyAt float64)
}

func (j *frameJoin) arrive(at float64) {
	if at > j.ready {
		j.ready = at
	}
	j.pending--
	if j.pending == 0 && j.fire != nil {
		j.fire(j.ready)
	}
}

// velocity estimates the player's velocity in m/s from the trace.
func (c *Client) velocity(tick int) geom.Vec2 {
	const horizon = 6 // ticks (100 ms)
	j := tick + horizon
	if j >= c.tr.Len() {
		j = c.tr.Len() - 1
	}
	if j <= tick {
		return geom.Vec2{}
	}
	d := c.tr.Pos[j].Sub(c.tr.Pos[tick])
	return d.Scale(trace.TickHz / float64(j-tick))
}

// fillFetchStages copies the delivering fetch's cross-node stage
// decomposition into this frame's span (span schema v2). It must be called
// inside the fetch's done callback: completion waiters fire synchronously
// there on the clock goroutine, so the source's "last completed fetch" is
// exactly the fetch that delivered this frame.
func (c *Client) fillFetchStages() {
	if c.stages == nil {
		return
	}
	st := c.stages.LastFetchStages()
	if !st.Valid {
		return
	}
	c.span.NetMs = st.NetMs
	c.span.HopMs = st.HopMs
	c.span.TraceID = st.TraceID
	c.span.QueueMs = st.QueueMs
	c.span.RenderMs = st.RenderMs
	c.span.EncodeMs = st.EncodeMs
	c.span.DeltaFrame = st.DeltaFrame
	c.span.DegradeRung = st.DegradeRung
	c.span.Origin = st.Origin
}

// setDeadline stamps the source's next fetch with the virtual time its
// reply is needed by, when the source supports deadlines.
func (c *Client) setDeadline(virtualMs float64) {
	if c.deadlines != nil {
		c.deadlines.SetFetchDeadline(virtualMs)
	}
}

func (c *Client) noteSize(size int) {
	c.sizeSum += float64(size)
	c.sizeCount++
}

// display schedules the frame completion: the pipeline is ready at
// readyAt, the frame reaches the display at the vsync-floored time.
// Responsiveness (motion-to-photon) counts pose sampling to pipeline
// readiness — a pipeline faster than the refresh interval yields
// responsiveness below 16.7 ms, as in Table 7.
func (c *Client) display(start, readyAt float64, renderMs float64, decoding bool, size int) {
	dev := c.cfg.Device
	displayAt := readyAt
	if min := start + dev.VsyncMs; displayAt < min {
		displayAt = min
	}
	c.clock.At(displayAt, func() {
		if c.lastDisplay == 0 {
			c.lastDisplay = start
		}
		inter := displayAt - c.lastDisplay
		c.lastDisplay = displayAt
		c.frames++
		c.interSum += inter
		c.inters = append(c.inters, float32(inter))
		resp := sensorMs + (readyAt - start)
		c.respSum += resp

		// Publish this frame's stage spans and latency observations. The
		// span was filled in place across the frame's callbacks, all of
		// which run before this display event.
		c.span.DisplayMs = displayAt
		c.span.SlackMs = displayAt - readyAt
		c.obs.frames.Inc()
		c.obs.interMs.Observe(inter)
		c.obs.respMs.Observe(resp)
		c.obs.fetchMs.Observe(c.span.FetchMs)
		c.obs.decodeMs.Observe(c.span.DecodeMs)
		c.obs.joinMs.Observe(c.span.JoinMs)
		c.obs.slackMs.Observe(c.span.SlackMs)
		if c.span.NetMs+c.span.HopMs+c.span.QueueMs+c.span.RenderMs+c.span.EncodeMs > 0 {
			c.obs.netMs.Observe(c.span.NetMs)
			c.obs.hopMs.Observe(c.span.HopMs)
			c.obs.queueMs.Observe(c.span.QueueMs)
			c.obs.serverRenderMs.Observe(c.span.RenderMs)
			c.obs.serverEncodeMs.Observe(c.span.EncodeMs)
		}
		if decoding && c.cfg.System.UsesBEPrefetch() {
			if c.span.CacheHit {
				c.obs.cacheHit.Inc()
			} else {
				c.obs.cacheMiss.Inc()
			}
		}
		c.ring.Record(&c.span)

		// Resource accounting over this frame interval.
		netMbps := c.currentNetMbps()
		cpu := dev.CPUUtil(renderMs, decoding, netMbps)
		gpu := dev.GPUUtil(renderMs, inter)
		power := dev.PowerW(cpu, gpu, netMbps)
		c.therm.Step(power, inter/1000)
		c.cpuSum += cpu
		c.gpuSum += gpu
		c.powerSum += power
		c.bucket(displayAt, cpu, gpu, power, inter)

		c.frame()
	})
}

// currentNetMbps estimates the client's instantaneous download rate from
// its share of the medium.
func (c *Client) currentNetMbps() float64 {
	if c.net == nil {
		return 0
	}
	active := c.net.ActiveTransfers()
	if active == 0 {
		return 0
	}
	// This client's flows get an equal share; approximate by assuming it
	// owns one of the active transfers.
	return c.goodputMbps() / float64(active)
}

func (c *Client) goodputMbps() float64 {
	if c.cfg.GoodputMbps > 0 {
		return c.cfg.GoodputMbps
	}
	return 500
}

// bucket accumulates per-second resource series samples (Fig 12).
func (c *Client) bucket(now float64, cpu, gpu, power, weight float64) {
	sec := int(now / 1000)
	if sec != c.curSec && c.secWeight > 0 {
		c.series = append(c.series, SeriesPoint{
			Sec:    c.curSec,
			CPUPct: c.secCPU / c.secWeight * 100,
			GPUPct: c.secGPU / c.secWeight * 100,
			PowerW: c.secPower / c.secWeight,
			TempC:  c.therm.Temperature(),
		})
		c.secCPU, c.secGPU, c.secPower, c.secWeight = 0, 0, 0, 0
	}
	c.curSec = sec
	c.secCPU += cpu * weight
	c.secGPU += gpu * weight
	c.secPower += power * weight
	c.secWeight += weight
}

// Series returns the per-second resource samples accumulated so far.
func (c *Client) Series() []SeriesPoint { return c.series }

// Metrics finalises the client's aggregates.
func (c *Client) Metrics() PlayerMetrics {
	m := PlayerMetrics{Frames: c.frames, TempC: c.therm.Temperature()}
	if c.frames > 0 {
		m.InterFrameMs = c.interSum / float64(c.frames)
		sorted := append([]float32(nil), c.inters...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.P95InterFrameMs = float64(sorted[int(0.95*float64(len(sorted)-1))])
		m.P99InterFrameMs = float64(sorted[int(0.99*float64(len(sorted)-1))])
		m.ResponsivenessMs = c.respSum / float64(c.frames)
		m.CPUPct = c.cpuSum / float64(c.frames) * 100
		m.GPUPct = c.gpuSum / float64(c.frames) * 100
		m.PowerW = c.powerSum / float64(c.frames)
	}
	elapsed := c.lastDisplay / 1000
	if elapsed <= 0 {
		elapsed = c.cfg.EndMs / 1000
	}
	m.FPS = float64(c.frames) / elapsed
	if c.sizeCount > 0 {
		m.FrameKB = c.sizeSum / float64(c.sizeCount) / 1024
	}
	if c.lat != nil && c.net != nil {
		m.NetDelayMs = c.lat.Mean()
		m.BEMbps = float64(c.net.FlowBytes(c.id)) * 8 / 1e6 / (c.cfg.EndMs / 1000)
	}
	if c.cache != nil {
		m.CacheHitRatio = c.cache.Stats().HitRatio()
	}
	if c.pf != nil {
		m.PrefetchIssued = c.pf.Stats().Issued
	}
	return m
}
