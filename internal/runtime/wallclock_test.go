package runtime

import (
	"errors"
	"testing"
	"time"

	"coterie/internal/fisync"
)

func TestWallClockFiresInOrder(t *testing.T) {
	w := NewWallClock(1000) // 1000x real time: 30 virtual ms ≈ 30 µs wall
	var got []float64
	var stamps []float64
	note := func(w *WallClock) func() {
		return func() {
			stamps = append(stamps, w.Now())
		}
	}
	w.At(20, func() { got = append(got, 20); note(w)() })
	w.At(5, func() { got = append(got, 5); note(w)() })
	w.After(10, func() { got = append(got, 10); note(w)() })
	if err := w.Run(30); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 10, 20}
	if len(got) != len(want) {
		t.Fatalf("fired %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
		// Now() inside a callback reads the event's virtual time exactly,
		// like the simulator — this is what keeps vsync-floored frames on
		// the same instants as in netsim.
		if stamps[i] != want[i] {
			t.Fatalf("stamps %v, want %v", stamps, want)
		}
	}
}

func TestWallClockTieBreaksBySchedulingOrder(t *testing.T) {
	w := NewWallClock(1000)
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		w.At(5, func() { got = append(got, i) })
	}
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestWallClockStopsAtUntil(t *testing.T) {
	w := NewWallClock(1000)
	fired := false
	w.At(50, func() { fired = true })
	if err := w.Run(20); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond the until mark fired")
	}
}

func TestWallClockPostCompletesIO(t *testing.T) {
	w := NewWallClock(100)
	var end float64
	w.At(0, func() {
		w.IOStarted()
		go func() {
			time.Sleep(5 * time.Millisecond)
			w.Post(func() { end = w.Now() })
		}()
	})
	if err := w.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// 5 ms real at 100x is ~500 virtual ms; the completion must be
	// stamped at the real-time frontier, not at the scheduling instant.
	if end < 100 {
		t.Fatalf("completion stamped at %.1f virtual ms", end)
	}
}

func TestWallClockStallDetection(t *testing.T) {
	w := NewWallClock(1000)
	w.SetIdleTimeout(20 * time.Millisecond)
	w.At(0, func() { w.IOStarted() }) // I/O that never completes
	err := w.Run(10_000)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestWallClockDropsLatePosts(t *testing.T) {
	w := NewWallClock(1000)
	if err := w.Run(1); err != nil {
		t.Fatal(err)
	}
	// After Run returns, completions must be dropped, not queued.
	w.Post(func() { t.Fatal("late post ran") })
}

func TestHubFISyncCompletesInline(t *testing.T) {
	h := NewHubFISync(fisync.NewHub())
	called := false
	h.Sync(fisync.State{Player: 1, Seq: 1}, 100, func(readyAt float64) {
		called = true
		if readyAt != 100+syncMs {
			t.Fatalf("readyAt = %v", readyAt)
		}
	})
	if !called {
		t.Fatal("done did not fire inline")
	}
	// A nil done must still take the snapshot (FI download accounting).
	h.Sync(fisync.State{Player: 2, Seq: 1}, 100, nil)
	if h.Hub.DownloadBytes == 0 {
		t.Fatal("snapshot skipped with nil done")
	}
}
