package runtime

import (
	"container/heap"
	"errors"
	"sync"
	"time"
)

// ErrStalled reports that the pipeline went idle mid-run: the event queue
// drained while external I/O was outstanding and no completion arrived
// within the idle timeout.
var ErrStalled = errors.New("runtime: wall clock stalled waiting on I/O")

// WallClock drives the pipeline against real time. Like the simulator,
// virtual session time advances only to scheduled event times — an event
// at t fires once t milliseconds of (speed-scaled) real time have elapsed,
// and Now() inside its callback reads exactly t. Frames therefore land on
// the same vsync-floored instants as in the simulator whenever the real
// network keeps up, which is what makes live metrics comparable to
// simulated ones.
//
// Event callbacks run on the Run goroutine. Helper goroutines (socket I/O)
// re-enter the pipeline via IOStarted/Post.
type WallClock struct {
	speed float64
	idle  time.Duration

	mu      sync.Mutex
	started time.Time
	now     float64
	events  wallEvents
	seq     uint64
	pending int
	stopped bool
	wake    chan struct{}
}

// NewWallClock creates a clock running at speed times real time (≤0 means
// real time).
func NewWallClock(speed float64) *WallClock {
	if speed <= 0 {
		speed = 1
	}
	return &WallClock{speed: speed, idle: 5 * time.Second, wake: make(chan struct{}, 1)}
}

// SetIdleTimeout bounds how long Run waits for an outstanding completion
// while the event queue is empty before returning ErrStalled.
func (w *WallClock) SetIdleTimeout(d time.Duration) { w.idle = d }

// Now returns the current virtual session time in milliseconds.
func (w *WallClock) Now() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// At schedules fn at virtual time t (clamped to now).
func (w *WallClock) At(t float64, fn func()) {
	w.mu.Lock()
	w.push(t, fn)
	w.mu.Unlock()
	w.signal()
}

// After schedules fn d milliseconds from the current virtual time.
func (w *WallClock) After(d float64, fn func()) {
	w.mu.Lock()
	w.push(w.now+d, fn)
	w.mu.Unlock()
	w.signal()
}

// IOStarted registers one outstanding external completion. Every call
// must be balanced by exactly one Post — on success, error or timeout —
// or Run will report a stall.
func (w *WallClock) IOStarted() {
	w.mu.Lock()
	w.pending++
	w.mu.Unlock()
}

// Post hands a completion back to the clock goroutine: fn runs as an
// event stamped at the real-time frontier (so Now() inside it reflects
// when the I/O actually finished). Completions arriving after Run has
// returned are dropped.
func (w *WallClock) Post(fn func()) {
	w.mu.Lock()
	w.pending--
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.push(w.elapsedLocked(), fn)
	w.mu.Unlock()
	w.signal()
}

// push enqueues fn at max(t, now); callers hold w.mu.
func (w *WallClock) push(t float64, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.seq++
	heap.Push(&w.events, &wallEvent{t: t, seq: w.seq, fn: fn})
}

// elapsedLocked is the speed-scaled real time since Run started.
func (w *WallClock) elapsedLocked() float64 {
	if w.started.IsZero() {
		return 0
	}
	return time.Since(w.started).Seconds() * 1000 * w.speed
}

func (w *WallClock) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Run fires events in (time, order-scheduled) order until the queue holds
// nothing at or before the until mark and no I/O is outstanding. It
// returns ErrStalled if the pipeline blocks on I/O longer than the idle
// timeout. Run is one-shot: after it returns, late completions are
// dropped.
func (w *WallClock) Run(until float64) error {
	w.mu.Lock()
	if w.started.IsZero() {
		w.started = time.Now()
	}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.stopped = true
		w.mu.Unlock()
	}()

	for {
		w.mu.Lock()
		if w.events.Len() == 0 {
			pending := w.pending
			w.mu.Unlock()
			if pending == 0 {
				return nil
			}
			// Blocked on I/O: wait for a Post, bounded by the idle timeout.
			if w.idle <= 0 {
				<-w.wake
				continue
			}
			t := time.NewTimer(w.idle)
			select {
			case <-w.wake:
				t.Stop()
				continue
			case <-t.C:
				return ErrStalled
			}
		}
		e := w.events[0]
		if e.t > until {
			w.mu.Unlock()
			return nil
		}
		wait := time.Duration((e.t - w.elapsedLocked()) / w.speed * float64(time.Millisecond))
		if wait > 0 {
			w.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-w.wake: // an earlier event or a completion may have arrived
			case <-t.C:
			}
			t.Stop()
			continue
		}
		heap.Pop(&w.events)
		if e.t > w.now {
			w.now = e.t
		}
		w.mu.Unlock()
		e.fn()
	}
}

// wallEvent mirrors the simulator's event ordering: by time, then by
// scheduling order.
type wallEvent struct {
	t   float64
	seq uint64
	fn  func()
}

type wallEvents []*wallEvent

func (h wallEvents) Len() int { return len(h) }
func (h wallEvents) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h wallEvents) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wallEvents) Push(x any)   { *h = append(*h, x.(*wallEvent)) }
func (h *wallEvents) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
