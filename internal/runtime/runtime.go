// Package runtime is the transport-agnostic per-frame client pipeline of
// Coterie (§5.1): pose sampling, FI synchronisation, the system-specific
// rendering path (local full-scene, thin-client streaming, or BE prefetch
// through the similarity cache), the Eq. 2 task join, and vsync-floored
// display scheduling with per-player metrics.
//
// The pipeline is written against three small interfaces — Clock,
// FrameSource and FISync — so the *same* code drives both backends:
//
//   - the deterministic discrete-event testbed (internal/netsim via
//     internal/core), which produces the paper's tables and figures, and
//   - real TCP/UDP sockets (internal/transport via internal/server),
//     which cmd/coterie-client runs against a live coterie-server.
//
// All pipeline state is single-threaded: every callback runs on the clock
// goroutine (the simulator's event loop, or WallClock's run loop). Live
// backends move blocking I/O onto helper goroutines and re-enter the
// pipeline through WallClock.Post.
package runtime

import (
	"fmt"

	"coterie/internal/device"
	"coterie/internal/fisync"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/trace"
)

// Clock schedules pipeline events in session milliseconds. The testbed
// backend is netsim.Sim; the live backend is WallClock.
type Clock interface {
	Now() float64
	At(t float64, fn func())
	After(d float64, fn func())
}

// FrameSource fetches the encoded BE frame for a grid point. done receives
// the frame bytes (nil in the simulator, which models sizes only), the
// transfer size, and the transfer start/end times in session milliseconds.
// It has the same shape as prefetch.Source, so one implementation serves
// both the prefetcher and the pipeline's direct (thin-client) path.
type FrameSource interface {
	Fetch(player int, pt geom.GridPoint, done func(data []byte, size int, startMs, endMs float64))
}

// StageReporter is an optional FrameSource capability: sources that carry
// the cross-node trace context (span schema v2) expose the stage
// decomposition of their most recently completed fetch. The pipeline
// type-asserts it from Deps.Source and reads it inside the fetch's done
// callback — safe because callbacks run on the clock goroutine and
// completion waiters fire synchronously inside each fetch's done, so "last
// completed" is exactly the fetch that delivered the frame.
type StageReporter interface {
	LastFetchStages() obs.FetchStages
}

// DeadlineSetter is an optional FrameSource capability: sources that can
// carry a deadline to the server (the live TCP backend) accept the
// virtual session time by which the *next* Fetch's reply is needed. The
// pipeline stamps it immediately before each fetch-triggering call on
// the clock goroutine; the source consumes it on that fetch (so a call
// that turns out to be a cache hit leaves no deadline armed). Sources
// without the capability simply fetch without deadlines, preserving the
// pre-scheduler behaviour.
type DeadlineSetter interface {
	SetFetchDeadline(virtualMs float64)
}

// FISync exchanges foreground-interaction state with the other players
// (§5.1 task 4). done, when non-nil, fires with the session time at which
// the round trip completes — one of the parallel terms of the Eq. 2 max.
// The hub backend completes inline; the UDP backend when the reply lands.
type FISync interface {
	Sync(st fisync.State, nowMs float64, done func(readyAtMs float64))
}

// NetMonitor exposes the client's view of the medium for the resource
// model: how many transfers share the link right now, and how many bytes
// this player's BE flow has moved.
type NetMonitor interface {
	ActiveTransfers() int
	FlowBytes(flow int) int64
}

// SystemKind identifies one of the evaluated system designs (§3, §7).
type SystemKind int

const (
	// Mobile renders everything locally (§2.2).
	Mobile SystemKind = iota
	// ThinClient streams every rendered frame from the server (§2.2).
	ThinClient
	// MultiFurion replicates Furion per player: whole-BE prefetch (§3).
	MultiFurion
	// MultiFurionCache adds an exact-match frame cache to Multi-Furion
	// (Fig 11).
	MultiFurionCache
	// CoterieNoCache prefetches far-BE frames without reuse (Fig 11).
	CoterieNoCache
	// Coterie is the full system (§5).
	Coterie
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	switch k {
	case Mobile:
		return "Mobile"
	case ThinClient:
		return "Thin-client"
	case MultiFurion:
		return "Multi-Furion"
	case MultiFurionCache:
		return "Multi-Furion+cache"
	case CoterieNoCache:
		return "Coterie w/o cache"
	case Coterie:
		return "Coterie"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// UsesBEPrefetch reports whether the system prefetches BE frames from the
// server (everything except Mobile and Thin-client).
func (k SystemKind) UsesBEPrefetch() bool {
	switch k {
	case MultiFurion, MultiFurionCache, CoterieNoCache, Coterie:
		return true
	}
	return false
}

// SplitsNearFar reports whether the system renders near BE on the device.
func (k SystemKind) SplitsNearFar() bool {
	return k == CoterieNoCache || k == Coterie
}

// SimilarityCache reports whether the system reuses similar frames.
func (k SystemKind) SimilarityCache() bool { return k == Coterie }

// Timing constants of the pipeline in milliseconds.
const (
	// TickMs is the pose-sampling interval (60 Hz trace ticks).
	TickMs = 1000.0 / trace.TickHz
	// mergeMs is the cost of compositing near BE + FI with the decoded
	// far BE (§5.1 task 5, the +T_merge term of Eq. 2).
	mergeMs = 1.2
	// syncMs is the FI synchronisation latency through the server (the
	// paper measures 2-3 ms per interval); the hub backend uses it as the
	// modelled round trip.
	syncMs = 2.5
	// sensorMs is the pose-sampling latency counted by responsiveness.
	sensorMs = 0.5
	// thinOverlayMs is the thin client's local per-frame GPU work
	// (reprojection and UI overlay).
	thinOverlayMs = 3.0
)

// Config describes the pipeline-relevant slice of the environment: the
// system design under test, the device model, the prefetch grid, and the
// scene-geometry callbacks the near/far split needs. The callbacks keep
// the runtime independent of the world/cutoff packages.
type Config struct {
	System SystemKind
	Device device.Profile
	Grid   geom.Grid
	// EndMs is the session length; the pipeline stops scheduling frames
	// at this time.
	EndMs float64
	// GoodputMbps is the medium goodput assumed by the CPU/power network
	// model; 0 means the 802.11ac default of 500.
	GoodputMbps float64
	// TotalTriangles and LODFactor size the Mobile baseline's full-scene
	// render.
	TotalTriangles int
	LODFactor      float64
	// RadiusAt returns the cutoff radius at a position (near/far split).
	RadiusAt func(pos geom.Vec2) float64
	// TrianglesWithin counts scene triangles within a radius of a
	// position (near-BE render cost).
	TrianglesWithin func(pos geom.Vec2, radius float64) int
}

// LatencyAcc accumulates per-transfer network delays for reporting. It is
// not goroutine-safe; backends must serialise Add calls.
type LatencyAcc struct {
	sum   float64
	count int64
}

// Add records one transfer latency in milliseconds.
func (l *LatencyAcc) Add(ms float64) {
	l.sum += ms
	l.count++
}

// Mean returns the mean recorded latency, or 0 with no samples.
func (l *LatencyAcc) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// PlayerMetrics aggregates one client's session, matching the columns of
// Tables 1, 7 and 8.
type PlayerMetrics struct {
	Frames       int64
	FPS          float64
	InterFrameMs float64
	// P95InterFrameMs and P99InterFrameMs are tail latencies; VR comfort
	// depends on the tail, not the mean.
	P95InterFrameMs  float64
	P99InterFrameMs  float64
	ResponsivenessMs float64
	CPUPct           float64
	GPUPct           float64
	PowerW           float64
	TempC            float64
	FrameKB          float64 // mean BE transfer size
	NetDelayMs       float64 // mean BE transfer latency
	BEMbps           float64 // per-player BE bandwidth
	CacheHitRatio    float64
	PrefetchIssued   int64
}

// SeriesPoint is one per-second sample of Fig 12's resource traces.
type SeriesPoint struct {
	Sec    int
	CPUPct float64
	GPUPct float64
	PowerW float64
	TempC  float64
}

// HubFISync is the in-process FISync backend: both the testbed and the
// server's TCP path synchronise through a fisync.Hub. The round trip is
// modelled as the paper's measured 2-3 ms and completes inline, so it
// schedules no clock events of its own.
type HubFISync struct {
	Hub *fisync.Hub
	// LatencyMs is the modelled round-trip latency.
	LatencyMs float64
}

// NewHubFISync wraps a hub with the default modelled latency.
func NewHubFISync(h *fisync.Hub) *HubFISync {
	return &HubFISync{Hub: h, LatencyMs: syncMs}
}

// Sync implements FISync. The snapshot is always taken — even when the
// caller does not wait on the result — because the hub accounts FI
// download traffic per snapshot.
func (h *HubFISync) Sync(st fisync.State, nowMs float64, done func(readyAtMs float64)) {
	h.Hub.Update(st)
	h.Hub.Snapshot(st.Player)
	if done != nil {
		done(nowMs + h.LatencyMs)
	}
}
