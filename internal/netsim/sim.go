// Package netsim provides the discrete-event simulation kernel and the
// shared-medium WiFi model standing in for the paper's 802.11ac testbed.
//
// The scaling experiments of §3 and §7.2 hinge on exactly one mechanism:
// all players share one wireless medium, so N concurrent prefetch streams
// each see roughly 1/N of the ~500 Mbps goodput, inflating per-frame
// transfer latency linearly with N. The WiFi type models the medium as
// processor sharing over the active transfers plus a fixed per-transfer
// base latency — the same first-order behaviour as TCP flows through one
// access point.
package netsim

import "container/heap"

// Sim is a deterministic discrete-event scheduler. Time is in
// milliseconds.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap
}

// NewSim creates an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in ms.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run at absolute time t (>= Now). Events at equal
// times run in scheduling order.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d ms from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event; it reports false when no events remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.t
	e.fn()
	return true
}

// Run processes events until the queue empties or the next event is after
// the until time (ms). The clock is left at min(until, last event time).
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 && s.events[0].t <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

type event struct {
	t   float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
