package netsim

import "testing"

func BenchmarkSimEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := NewSim()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(1, tick)
		}
	}
	b.ResetTimer()
	s.After(1, tick)
	s.Run(float64(b.N) * 2)
}

func BenchmarkWiFiContention(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim()
		w := NewWiFi(s, DefaultWiFi())
		// 4 players x 50 staggered transfers through the shared medium.
		for p := 0; p < 4; p++ {
			p := p
			for k := 0; k < 50; k++ {
				k := k
				s.At(float64(k)*16.7, func() {
					w.Transfer(p, 400*1024, nil)
				})
			}
		}
		s.Run(1e9)
	}
}
