package netsim

import (
	"math/rand"
	"sync"
)

// Datagram medium: the sim-clock analogue of a lossy UDP path, so the
// datagram frame path's reassembly/FEC/NACK machinery is exercised by the
// same deterministic event loop as the rest of the testbed — and a
// clockless Impairer that injects the same loss model into live sockets.

// DgramConfig shapes one direction of a datagram link.
type DgramConfig struct {
	// LossRate is the independent per-datagram drop probability in [0,1].
	LossRate float64
	// ReorderRate is the probability a datagram is held back and
	// delivered ReorderDelayMs late, overtaking its successors.
	ReorderRate    float64
	ReorderDelayMs float64
	// DelayMs is the one-way propagation delay; JitterMs adds a uniform
	// random component on top.
	DelayMs  float64
	JitterMs float64
	// Seed makes the loss/reorder/jitter draws reproducible.
	Seed int64
}

// DgramLink delivers datagrams over a Sim clock with configurable loss,
// reorder and delay. Deliver runs as a sim event; payloads are copied at
// Send, so the caller may reuse its buffer.
type DgramLink struct {
	sim *Sim
	cfg DgramConfig
	rng *rand.Rand
	// Deliver receives each surviving datagram at its arrival time.
	Deliver func(b []byte)

	sent, dropped, reordered int64
}

// NewDgramLink creates a link on the sim clock.
func NewDgramLink(sim *Sim, cfg DgramConfig) *DgramLink {
	if cfg.ReorderDelayMs <= 0 {
		cfg.ReorderDelayMs = 5
	}
	return &DgramLink{sim: sim, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Send queues one datagram for delivery (or loses it).
func (l *DgramLink) Send(b []byte) {
	l.sent++
	if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
		l.dropped++
		return
	}
	d := l.cfg.DelayMs
	if l.cfg.JitterMs > 0 {
		d += l.rng.Float64() * l.cfg.JitterMs
	}
	if l.cfg.ReorderRate > 0 && l.rng.Float64() < l.cfg.ReorderRate {
		l.reordered++
		d += l.cfg.ReorderDelayMs
	}
	cp := append([]byte(nil), b...)
	l.sim.After(d, func() {
		if l.Deliver != nil {
			l.Deliver(cp)
		}
	})
}

// Stats reports sent/dropped/reordered datagram counts.
func (l *DgramLink) Stats() (sent, dropped, reordered int64) {
	return l.sent, l.dropped, l.reordered
}

// Impairer is the live-socket counterpart of DgramLink's loss model: a
// thread-safe per-datagram drop decision with a seeded generator, so live
// loopback tests and the loadgen A/B inject reproducible loss without a
// sim clock. The zero value never drops.
type Impairer struct {
	mu   sync.Mutex
	rng  *rand.Rand
	loss float64

	dropped, passed int64
}

// NewImpairer creates an impairer dropping datagrams with probability
// loss, seeded for reproducibility. (Reordering is a sim-link concern:
// live loopback sockets deliver in order, and the reassembler's reorder
// handling is exercised by DgramLink and the property tests.)
func NewImpairer(loss float64, seed int64) *Impairer {
	return &Impairer{rng: rand.New(rand.NewSource(seed)), loss: loss}
}

// Drop decides the fate of one datagram.
func (im *Impairer) Drop() bool {
	if im == nil {
		return false
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.rng != nil && im.loss > 0 && im.rng.Float64() < im.loss {
		im.dropped++
		return true
	}
	im.passed++
	return false
}

// Stats reports dropped/passed decisions.
func (im *Impairer) Stats() (dropped, passed int64) {
	if im == nil {
		return 0, 0
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.dropped, im.passed
}
