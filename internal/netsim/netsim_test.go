package netsim

import (
	"math"
	"sort"
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(5, func() { order = append(order, 3) }) // FIFO at equal times
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v, want 10", s.Now())
	}
}

func TestSimAfterAndNestedScheduling(t *testing.T) {
	s := NewSim()
	var fired []float64
	s.After(3, func() {
		fired = append(fired, s.Now())
		s.After(4, func() { fired = append(fired, s.Now()) })
	})
	s.Run(100)
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 7 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimRunStopsAtBoundary(t *testing.T) {
	s := NewSim()
	ran := false
	s.At(50, func() { ran = true })
	s.Run(49)
	if ran {
		t.Fatal("event beyond the horizon ran")
	}
	if s.Now() != 49 {
		t.Fatalf("clock = %v", s.Now())
	}
	s.Run(51)
	if !ran {
		t.Fatal("event within the horizon did not run")
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	s.At(10, func() {
		s.At(5, func() {}) // in the past: clamps to now
	})
	s.Run(20)
	if s.Now() != 20 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSingleTransferLatency(t *testing.T) {
	s := NewSim()
	w := NewWiFi(s, WiFiConfig{GoodputMbps: 500, BaseLatencyMs: 2})
	// 550 KB at 500 Mbps: serialisation = 550*1024*8 / 500e6 s = 9.01 ms;
	// plus 2 ms base = ~11 ms. This matches the paper's ~9 ms 1-player
	// net delay for ~550 KB frames (Table 1).
	var gotMs float64
	w.Transfer(0, 550*1024, func(start, end float64) { gotMs = end - start })
	s.Run(1e6)
	want := 2 + 550*1024*8/500e6*1000
	if math.Abs(gotMs-want) > 0.01 {
		t.Fatalf("latency = %.3f ms, want %.3f", gotMs, want)
	}
}

func TestTwoConcurrentTransfersHalveRate(t *testing.T) {
	// The §3 scaling result: two players double each other's transfer
	// latency. Two equal transfers starting together should each take
	// about twice the solo serialisation time.
	s := NewSim()
	w := NewWiFi(s, WiFiConfig{GoodputMbps: 500, BaseLatencyMs: 0})
	const bytes = 500 * 1024
	solo := float64(bytes) * 8 / 500e6 * 1000
	var l1, l2 float64
	w.Transfer(1, bytes, func(a, b float64) { l1 = b - a })
	w.Transfer(2, bytes, func(a, b float64) { l2 = b - a })
	s.Run(1e6)
	if math.Abs(l1-2*solo) > 0.05*solo || math.Abs(l2-2*solo) > 0.05*solo {
		t.Fatalf("latencies %.2f/%.2f ms, want ~%.2f (2x solo)", l1, l2, 2*solo)
	}
}

func TestShortTransferFinishesFirstUnderSharing(t *testing.T) {
	s := NewSim()
	w := NewWiFi(s, WiFiConfig{GoodputMbps: 100, BaseLatencyMs: 0})
	var endSmall, endBig float64
	w.Transfer(1, 10_000, func(a, b float64) { endSmall = b })
	w.Transfer(2, 1_000_000, func(a, b float64) { endBig = b })
	s.Run(1e6)
	if endSmall >= endBig {
		t.Fatalf("small ended at %.3f, big at %.3f", endSmall, endBig)
	}
	// Big transfer total time: shares medium while small alive.
	// small takes 2*10k bytes at 100Mbps... verify big > solo time.
	soloBig := 1_000_000 * 8 / 100e6 * 1000
	if endBig <= soloBig {
		t.Fatalf("big transfer unaffected by contention: %.2f <= %.2f", endBig, soloBig)
	}
}

func TestStaggeredTransfersAccounting(t *testing.T) {
	s := NewSim()
	w := NewWiFi(s, WiFiConfig{GoodputMbps: 500, BaseLatencyMs: 1})
	var ends []float64
	for i := 0; i < 4; i++ {
		i := i
		s.At(float64(i)*5, func() {
			w.Transfer(i, 200*1024, func(a, b float64) { ends = append(ends, b) })
		})
	}
	s.Run(1e6)
	if len(ends) != 4 {
		t.Fatalf("%d transfers completed", len(ends))
	}
	if !sort.Float64sAreSorted(ends) {
		t.Fatalf("completion order not monotone: %v", ends)
	}
	if w.TotalBytes() != 4*200*1024 {
		t.Fatalf("total bytes = %d", w.TotalBytes())
	}
	for i := 0; i < 4; i++ {
		if w.FlowBytes(i) != 200*1024 {
			t.Fatalf("flow %d bytes = %d", i, w.FlowBytes(i))
		}
	}
	if w.ActiveTransfers() != 0 {
		t.Fatalf("%d transfers still active", w.ActiveTransfers())
	}
}

func TestLatencyGrowsWithPlayers(t *testing.T) {
	// Fig 11's mechanism: per-transfer latency grows roughly linearly in
	// the number of concurrent streams.
	meanLatency := func(players int) float64 {
		s := NewSim()
		w := NewWiFi(s, WiFiConfig{GoodputMbps: 500, BaseLatencyMs: 2})
		var total float64
		var count int
		// Each player fetches a 550 KB frame every 16.7 ms slot for 60
		// slots (pathological full-rate prefetch, like Multi-Furion).
		for p := 0; p < players; p++ {
			p := p
			for k := 0; k < 60; k++ {
				k := k
				s.At(float64(k)*16.7, func() {
					w.Transfer(p, 550*1024, func(a, b float64) {
						total += b - a
						count++
					})
				})
			}
		}
		s.Run(1e9)
		return total / float64(count)
	}
	l1 := meanLatency(1)
	l2 := meanLatency(2)
	l4 := meanLatency(4)
	if !(l1 < l2 && l2 < l4) {
		t.Fatalf("latency not increasing: %v %v %v", l1, l2, l4)
	}
	if l2 < 1.6*l1 {
		t.Fatalf("2 players should roughly double latency: %v vs %v", l2, l1)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	s := NewSim()
	w := NewWiFi(s, DefaultWiFi())
	doneAt := -1.0
	w.Transfer(0, 0, func(a, b float64) { doneAt = b })
	s.Run(1e6)
	if doneAt < 0 {
		t.Fatal("zero-byte transfer never completed")
	}
}

func TestDefaultConfigOnZeroValue(t *testing.T) {
	s := NewSim()
	w := NewWiFi(s, WiFiConfig{})
	if w.cfg.GoodputMbps != 500 {
		t.Fatalf("zero config should default: %+v", w.cfg)
	}
}

func TestConservationAndWorkBounds(t *testing.T) {
	// Property: every byte offered is delivered exactly once, and no
	// transfer completes faster than base latency + solo serialisation.
	s := NewSim()
	cfg := WiFiConfig{GoodputMbps: 300, BaseLatencyMs: 1.5}
	w := NewWiFi(s, cfg)
	sizes := []int{10_000, 250_000, 90_000, 400_000, 33_000, 610_000}
	var total int64
	for i, sz := range sizes {
		i, sz := i, sz
		total += int64(sz)
		s.At(float64(i%3)*4, func() {
			w.Transfer(i, sz, func(start, end float64) {
				solo := cfg.BaseLatencyMs + float64(sz)*8/(cfg.GoodputMbps*1e6)*1000
				if end-start < solo-1e-6 {
					t.Errorf("transfer %d faster than physics: %.3f < %.3f", i, end-start, solo)
				}
			})
		})
	}
	s.Run(1e9)
	if w.TotalBytes() != total {
		t.Fatalf("delivered %d bytes, offered %d", w.TotalBytes(), total)
	}
	var perFlow int64
	for i := range sizes {
		perFlow += w.FlowBytes(i)
	}
	if perFlow != total {
		t.Fatalf("per-flow accounting %d != %d", perFlow, total)
	}
}
