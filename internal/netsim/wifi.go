package netsim

import (
	"math"

	"coterie/internal/obs"
)

// WiFiConfig describes the shared medium.
type WiFiConfig struct {
	// GoodputMbps is the measured TCP goodput of the medium. The paper
	// measures ~500 Mbps from the server to a phone over 802.11ac with
	// iperf (§3).
	GoodputMbps float64
	// BaseLatencyMs is the fixed per-transfer latency (request RTT, AP
	// queueing, TCP ramp) added on top of serialisation time.
	BaseLatencyMs float64
}

// DefaultWiFi returns the testbed's medium.
func DefaultWiFi() WiFiConfig {
	return WiFiConfig{GoodputMbps: 500, BaseLatencyMs: 2.0}
}

// WiFi is a processor-sharing model of one wireless collision domain: the
// instantaneous rate of each active transfer is goodput divided by the
// number of active transfers.
type WiFi struct {
	sim    *Sim
	cfg    WiFiConfig
	active map[*transfer]struct{}
	epoch  uint64

	// Stats
	totalBytes   int64
	perFlowBytes map[int]int64

	// Observability (nil instruments when not wired to a registry).
	obsTransfers  *obs.Counter
	obsBytes      *obs.Counter
	obsActive     *obs.Gauge
	obsLatency    *obs.Histogram
	obsSerialise  *obs.Histogram
	obsContention *obs.Histogram
}

// Instrument mirrors the medium's activity into a registry under the
// "netsim." namespace: transfers started/delivered bytes, the current
// active-transfer count, and per-transfer latency (base latency plus the
// contention slowdown — the quantity Fig 11 plots against player count).
// Each delivered transfer also records its latency attribution: the ideal
// serialisation time (bytes at full goodput) and the contention excess
// (everything beyond base latency plus serialisation — the time lost to
// sharing the medium with concurrent transfers). Instrument(nil) is a
// no-op.
func (w *WiFi) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	w.obsTransfers = r.Counter("netsim.transfers")
	w.obsBytes = r.Counter("netsim.bytes")
	w.obsActive = r.Gauge("netsim.active_transfers")
	w.obsLatency = r.Histogram("netsim.transfer_ms")
	w.obsSerialise = r.Histogram("netsim.serialise_ms")
	w.obsContention = r.Histogram("netsim.contention_ms")
}

type transfer struct {
	flow      int // flow tag (player id)
	origin    int // original size in bytes
	remaining float64
	start     float64
	done      func(start, end float64)
	lastTouch float64
}

// NewWiFi creates a medium attached to the simulation clock.
func NewWiFi(sim *Sim, cfg WiFiConfig) *WiFi {
	if cfg.GoodputMbps <= 0 {
		cfg = DefaultWiFi()
	}
	return &WiFi{
		sim:          sim,
		cfg:          cfg,
		active:       make(map[*transfer]struct{}),
		perFlowBytes: make(map[int]int64),
	}
}

// bytesPerMs is the full-medium rate.
func (w *WiFi) bytesPerMs() float64 { return w.cfg.GoodputMbps * 1e6 / 8 / 1000 }

// ActiveTransfers returns the number of in-flight transfers.
func (w *WiFi) ActiveTransfers() int { return len(w.active) }

// TotalBytes returns the bytes delivered since construction.
func (w *WiFi) TotalBytes() int64 { return w.totalBytes }

// FlowBytes returns the bytes delivered to one flow tag.
func (w *WiFi) FlowBytes(flow int) int64 { return w.perFlowBytes[flow] }

// Transfer starts a download of the given size attributed to flow. done
// fires when the transfer completes, with its start and end times; the
// effective latency seen by the caller is end-start, which includes the
// base latency and any slowdown from concurrent transfers.
func (w *WiFi) Transfer(flow int, bytes int, done func(start, end float64)) {
	if bytes <= 0 {
		bytes = 1
	}
	start := w.sim.Now()
	// The base latency precedes medium occupancy (request + server turn
	// around); the payload then shares the medium.
	w.sim.After(w.cfg.BaseLatencyMs, func() {
		t := &transfer{
			flow:      flow,
			origin:    bytes,
			remaining: float64(bytes),
			start:     start,
			done:      done,
			lastTouch: w.sim.Now(),
		}
		w.settle()
		w.active[t] = struct{}{}
		w.obsTransfers.Inc()
		w.obsActive.Set(int64(len(w.active)))
		w.reschedule()
	})
}

// settle charges elapsed time against every active transfer at the current
// shared rate.
func (w *WiFi) settle() {
	n := len(w.active)
	if n == 0 {
		return
	}
	rate := w.bytesPerMs() / float64(n)
	now := w.sim.Now()
	for t := range w.active {
		dt := now - t.lastTouch
		if dt > 0 {
			t.remaining -= rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
			t.lastTouch = now
		}
	}
}

// reschedule computes the next completion under the current sharing and
// schedules it; stale events from earlier epochs are ignored.
func (w *WiFi) reschedule() {
	w.epoch++
	n := len(w.active)
	if n == 0 {
		return
	}
	rate := w.bytesPerMs() / float64(n)
	next := math.Inf(1)
	for t := range w.active {
		if ft := t.remaining / rate; ft < next {
			next = ft
		}
	}
	// Clamp to a minimum quantum so completion events always advance the
	// clock: a zero-width event would re-fire at the same instant forever
	// once remaining bytes underflow the epsilon below.
	if next < 1e-6 {
		next = 1e-6
	}
	epoch := w.epoch
	w.sim.After(next, func() {
		if epoch != w.epoch {
			return // the active set changed since this was scheduled
		}
		w.settle()
		w.completeFinished()
	})
}

// completeFinished fires done callbacks for transfers that reached zero
// remaining bytes, then reschedules.
func (w *WiFi) completeFinished() {
	finished := make([]*transfer, 0, 1)
	for t := range w.active {
		if t.remaining <= 1e-6 { // sub-byte residue counts as done
			finished = append(finished, t)
		}
	}
	for _, t := range finished {
		delete(w.active, t)
	}
	if len(finished) > 0 {
		w.obsActive.Set(int64(len(w.active)))
	}
	w.reschedule()
	now := w.sim.Now()
	for _, t := range finished {
		w.perFlowBytes[t.flow] += int64(t.origin)
		w.totalBytes += int64(t.origin)
		w.obsBytes.Add(int64(t.origin))
		w.obsLatency.Observe(now - t.start)
		// Attribute the latency: serialisation is what the bytes would take
		// alone at full goodput; contention is the measured excess over base
		// latency + serialisation (clamped — quantum rounding can leave a
		// tiny negative residue).
		serialise := float64(t.origin) / w.bytesPerMs()
		contention := (now - t.start) - w.cfg.BaseLatencyMs - serialise
		if contention < 0 {
			contention = 0
		}
		w.obsSerialise.Observe(serialise)
		w.obsContention.Observe(contention)
		if t.done != nil {
			t.done(t.start, now)
		}
	}
}
