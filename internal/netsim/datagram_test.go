package netsim

import (
	"bytes"
	"math/rand"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/transport"
)

// TestDgramLinkDrivesReassembler exercises the transport reassembler
// through the sim-clock medium: frames sliced with FEC, sent through a
// link with loss and reorder, must come out byte-identical (single
// losses repaired by parity) and deterministically for a fixed seed.
func TestDgramLinkDrivesReassembler(t *testing.T) {
	run := func(seed int64) (delivered int, recovered int64, sum []byte) {
		sim := NewSim()
		link := NewDgramLink(sim, DgramConfig{
			LossRate:    0.05,
			ReorderRate: 0.10,
			DelayMs:     2,
			JitterMs:    1,
			Seed:        seed,
		})
		r := transport.NewReassembler(transport.ReassemblerConfig{})
		frames := map[uint32][]byte{}
		link.Deliver = func(b []byte) {
			if f := r.Offer(b, sim.Now()); f != nil {
				want := frames[f.FrameSeq]
				if !bytes.Equal(f.Data, want) {
					t.Fatalf("frame %d corrupted in transit", f.FrameSeq)
				}
				delivered++
				sum = append(sum, f.Data[0])
			}
		}
		rng := rand.New(rand.NewSource(99))
		for seq := uint32(1); seq <= 20; seq++ {
			data := make([]byte, 1+rng.Intn(4*transport.ChunkPayload))
			rng.Read(data)
			frames[seq] = data
			meta := transport.FrameMeta{StreamID: 1, FrameSeq: seq, Point: geom.GridPoint{I: int(seq)}}
			for _, d := range transport.SliceFrame(nil, meta, data, transport.DefaultFECGroup) {
				link.Send(d)
			}
			sim.Run(sim.Now() + 10)
		}
		sim.Run(sim.Now() + 100)
		return delivered, r.Stats().Recovered, sum
	}

	d1, rec1, sum1 := run(7)
	if d1 == 0 {
		t.Fatal("no frames delivered through the lossy link")
	}
	if rec1 == 0 {
		t.Error("5% loss over 20 multi-chunk frames triggered no FEC recovery")
	}
	d2, rec2, sum2 := run(7)
	if d1 != d2 || rec1 != rec2 || !bytes.Equal(sum1, sum2) {
		t.Errorf("same seed diverged: %d/%d delivered, %d/%d recovered", d1, d2, rec1, rec2)
	}
}

// TestDgramLinkStats checks the medium's own accounting.
func TestDgramLinkStats(t *testing.T) {
	sim := NewSim()
	link := NewDgramLink(sim, DgramConfig{LossRate: 0.5, Seed: 3})
	got := 0
	link.Deliver = func([]byte) { got++ }
	for i := 0; i < 1000; i++ {
		link.Send([]byte{byte(i)})
	}
	sim.Run(1000)
	sent, dropped, _ := link.Stats()
	if sent != 1000 {
		t.Fatalf("sent = %d", sent)
	}
	if got+int(dropped) != 1000 {
		t.Fatalf("delivered %d + dropped %d != 1000", got, dropped)
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("50%% loss dropped %d of 1000", dropped)
	}
}

// TestImpairerDeterminism pins the live-socket loss injector: same seed,
// same drop sequence.
func TestImpairerDeterminism(t *testing.T) {
	seqOf := func() []bool {
		im := NewImpairer(0.3, 11)
		out := make([]bool, 200)
		for i := range out {
			out[i] = im.Drop()
		}
		return out
	}
	a, b := seqOf(), seqOf()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d diverged for the same seed", i)
		}
	}
	var nilIm *Impairer
	if nilIm.Drop() {
		t.Fatal("nil impairer dropped")
	}
	dropped, passed := NewImpairer(0, 1).Stats()
	if dropped != 0 || passed != 0 {
		t.Fatal("fresh impairer has non-zero stats")
	}
}
