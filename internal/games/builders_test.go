package games

import (
	"math"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/world"
)

func TestNoiseDeterministicAndBounded(t *testing.T) {
	n := newNoise(42, 10)
	for x := -50.0; x < 50; x += 7.3 {
		for z := -50.0; z < 50; z += 5.1 {
			v := n.At(x, z)
			if v < 0 || v > 1 {
				t.Fatalf("At(%v,%v) = %v outside [0,1]", x, z, v)
			}
			if n.At(x, z) != v {
				t.Fatal("noise not deterministic")
			}
			b := n.Blocky(x, z)
			if b < 0 || b > 1 {
				t.Fatalf("Blocky(%v,%v) = %v outside [0,1]", x, z, b)
			}
		}
	}
}

func TestNoiseSmoothContinuity(t *testing.T) {
	// Smooth noise must change slowly relative to its lattice scale.
	n := newNoise(7, 20)
	for x := 0.0; x < 100; x += 0.5 {
		d := math.Abs(n.At(x+0.5, 10) - n.At(x, 10))
		if d > 0.15 {
			t.Fatalf("smooth noise jumped %v over 0.5 m at x=%v", d, x)
		}
	}
}

func TestBlockyConstantWithinCell(t *testing.T) {
	n := newNoise(9, 8)
	base := n.Blocky(1, 1)
	for _, p := range [][2]float64{{0.1, 0.1}, {7.9, 7.9}, {3, 6}} {
		if n.Blocky(p[0], p[1]) != base {
			t.Fatalf("Blocky varies within one cell")
		}
	}
	if n.Blocky(8.1, 1) == base && n.Blocky(1, 8.1) == base && n.Blocky(8.1, 8.1) == base {
		t.Fatal("Blocky identical across all neighbouring cells (suspicious)")
	}
}

func TestLODFactors(t *testing.T) {
	for _, s := range Catalog() {
		if s.LODFactor() < 1 {
			t.Fatalf("%s: LOD factor %v < 1", s.Name, s.LODFactor())
		}
	}
}

func TestIndoorShellsAreSmooth(t *testing.T) {
	for _, name := range []string{"pool", "bowling", "corridor"} {
		g := Build(mustSpec(t, name))
		smooth := 0
		for _, o := range g.Scene.Objects {
			if o.Smooth {
				smooth++
			}
		}
		if smooth < 5 {
			t.Fatalf("%s: only %d smooth surfaces; walls and fittings should be plain", name, smooth)
		}
	}
	// Outdoor props stay textured.
	v := Build(mustSpec(t, "viking"))
	for _, o := range v.Scene.Objects {
		if o.Smooth {
			t.Fatal("viking should have no smooth-flagged props")
		}
	}
}

func TestTracksAreClearOfObstacles(t *testing.T) {
	for _, name := range []string{"racing", "ds"} {
		g := Build(mustSpec(t, name))
		q := g.Scene.NewQuery()
		blockedPts := 0
		for _, p := range g.Track {
			ids := g.Scene.ObjectsWithin(q, nil, p, 1.0)
			if len(ids) > 0 {
				blockedPts++
			}
		}
		if blockedPts > len(g.Track)/20 {
			t.Fatalf("%s: %d/%d track points have objects on them", name, blockedPts, len(g.Track))
		}
	}
}

func TestRacingForestNearTrackOnly(t *testing.T) {
	g := Build(mustSpec(t, "racing"))
	q := g.Scene.NewQuery()
	// Sample far from the track: density should be near zero.
	far := geom.V2(g.Scene.Bounds.Center().X, g.Scene.Bounds.Center().Z)
	if d := distToPolyline(far, g.Track); d > 150 {
		tris := g.Scene.TrianglesWithin(q, far, 30)
		terrain := int(math.Pi * 900 * g.Scene.GroundTris)
		if tris > terrain*3 {
			t.Fatalf("centre of the world too dense: %d tris (terrain %d)", tris, terrain)
		}
	}
}

func TestDistToSegment(t *testing.T) {
	a, b := geom.V2(0, 0), geom.V2(10, 0)
	if d := distToSegment(geom.V2(5, 3), a, b); math.Abs(d-3) > 1e-12 {
		t.Fatalf("perpendicular distance = %v", d)
	}
	if d := distToSegment(geom.V2(-4, 3), a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("endpoint distance = %v", d)
	}
	// Degenerate segment.
	if d := distToSegment(geom.V2(3, 4), a, a); math.Abs(d-5) > 1e-12 {
		t.Fatalf("point-segment distance = %v", d)
	}
}

func TestScattererKeepClear(t *testing.T) {
	sc := newScatterer(1)
	sc.clear(geom.V2(50, 50), 5)
	sc.fill(geom.NewRect(100, 100), 4, func(x, z float64) float64 { return 5000 })
	for _, o := range sc.objs {
		p := geom.V2(o.Center.X, o.Center.Z)
		r := o.Radius
		if o.Kind == world.KindBox {
			r = math.Max(o.Half.X, o.Half.Z)
		}
		if p.Dist(geom.V2(50, 50)) < 5-r {
			t.Fatalf("object at %v violates the keep-clear zone", p)
		}
	}
}
