package games

import (
	"math"
	"testing"

	"coterie/internal/device"
	"coterie/internal/geom"
	"coterie/internal/world"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 9 {
		t.Fatalf("catalog has %d games, paper studies 9", len(cat))
	}
	outdoor, indoor := 0, 0
	for _, s := range cat {
		if s.Outdoor {
			outdoor++
		} else {
			indoor++
		}
	}
	if outdoor != 6 || indoor != 3 {
		t.Fatalf("%d outdoor / %d indoor, paper has 6/3", outdoor, indoor)
	}
}

func TestGridPointCountsMatchTable3(t *testing.T) {
	for _, s := range Catalog() {
		g := geom.NewGrid(geom.NewRect(s.Width, s.Depth), s.GridStep)
		gotM := float64(g.Points()) / 1e6
		if math.Abs(gotM-s.Paper.GridPointsM)/s.Paper.GridPointsM > 0.05 {
			t.Errorf("%s: %.2fM grid points, Table 3 says %.2fM", s.Name, gotM, s.Paper.GridPointsM)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("viking")
	if err != nil || s.FullName != "Viking Village" {
		t.Fatalf("ByName viking = %+v, %v", s, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("expected error for unknown game")
	}
}

func TestHeadline(t *testing.T) {
	h := Headline()
	if len(h) != 3 {
		t.Fatalf("headline count %d", len(h))
	}
	want := []string{"viking", "cts", "racing"}
	for i, s := range h {
		if s.Name != want[i] {
			t.Fatalf("headline[%d] = %s", i, s.Name)
		}
	}
}

func TestAllGamesBuildAndValidate(t *testing.T) {
	for _, s := range Catalog() {
		g := Build(s)
		if err := g.Scene.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(g.Scene.Objects) < 20 {
			t.Errorf("%s: only %d objects", s.Name, len(g.Scene.Objects))
		}
		if g.Spec.Genre == GenreRacing && len(g.Track) == 0 {
			t.Errorf("%s: racing game without a track", s.Name)
		}
		if !g.Scene.Bounds.ContainsClosed(g.Spawn) {
			t.Errorf("%s: spawn %v outside world", s.Name, g.Spawn)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Catalog()[2])
	b := Build(Catalog()[2])
	if len(a.Scene.Objects) != len(b.Scene.Objects) {
		t.Fatal("non-deterministic object count")
	}
	for i := range a.Scene.Objects {
		if a.Scene.Objects[i] != b.Scene.Objects[i] {
			t.Fatalf("object %d differs between builds", i)
		}
	}
}

func TestHeadlineMobileRenderTimes(t *testing.T) {
	// Table 1, Mobile rows: Viking 38.2ms, CTS 42.0ms, Racing 38.2ms per
	// frame. The scene totals must put the device model in that band.
	p := device.Pixel2()
	want := map[string][2]float64{
		"viking": {33, 50},
		"cts":    {33, 55},
		"racing": {33, 50},
	}
	for _, s := range Headline() {
		g := Build(s)
		total := g.Scene.TotalTriangles()
		ms := p.FullSceneRenderMs(int(float64(total) / s.LODFactor()))
		lo, hi := want[s.Name][0], want[s.Name][1]
		if ms < lo || ms > hi {
			t.Errorf("%s: Mobile render %.1f ms (total %d tris), want %.0f-%.0f", s.Name, ms, total, lo, hi)
		}
	}
}

func TestVikingDensityVariance(t *testing.T) {
	// Viking's defining property: object density varies strongly between
	// nearby locations (village blocks), giving the 2-28m cutoff spread.
	g := Build(mustSpec(t, "viking"))
	q := g.Scene.NewQuery()
	var min, max = math.Inf(1), 0.0
	for x := 60.0; x < 150; x += 8 {
		for z := 40.0; z < 95; z += 8 {
			tris := g.Scene.TrianglesWithin(q, geom.V2(x, z), 4)
			d := float64(tris) / (math.Pi * 16)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
	}
	if max/math.Max(min, 1) < 8 {
		t.Fatalf("village density ratio %.1f (min %.0f max %.0f tris/m^2), want high variance", max/min, min, max)
	}
}

func TestDSEndpointsDenserThanMiddle(t *testing.T) {
	g := Build(mustSpec(t, "ds"))
	q := g.Scene.NewQuery()
	end := g.Scene.TrianglesWithin(q, geom.V2(80, 180), 20)
	mid := g.Scene.TrianglesWithin(q, geom.V2(640, 180), 20)
	if end < mid*5 {
		t.Fatalf("DS start zone (%d tris) should dwarf mid-stage (%d tris)", end, mid)
	}
}

func TestSoccerPitchClear(t *testing.T) {
	g := Build(mustSpec(t, "soccer"))
	q := g.Scene.NewQuery()
	centre := g.Scene.TrianglesWithin(q, geom.V2(52, 70), 8)
	stands := g.Scene.TrianglesWithin(q, geom.V2(8, 70), 8)
	if centre >= stands {
		t.Fatalf("pitch centre (%d) should be sparser than stands (%d)", centre, stands)
	}
}

func TestIndoorGamesEnclosed(t *testing.T) {
	for _, name := range []string{"pool", "bowling", "corridor"} {
		g := Build(mustSpec(t, name))
		// A horizontal ray from the room centre must hit a wall, not
		// escape to the sky.
		q := g.Scene.NewQuery()
		eye := g.Scene.EyeAt(g.Scene.Bounds.Center())
		for _, dir := range []geom.Vec3{{X: 1}, {X: -1}, {Z: 1}, {Z: -1}} {
			if _, ok := g.Scene.Intersect(q, geom.Ray{Origin: eye, Direction: dir}, 0, math.Inf(1)); !ok {
				t.Errorf("%s: horizontal ray %v escaped the room", name, dir)
			}
		}
		// And a vertical ray must hit the ceiling.
		up := geom.Ray{Origin: eye, Direction: geom.V3(0, 1, 0)}
		if _, ok := g.Scene.Intersect(q, up, 0, math.Inf(1)); !ok {
			t.Errorf("%s: no ceiling", name)
		}
	}
}

func TestSpawnNotInsideObject(t *testing.T) {
	for _, s := range Catalog() {
		g := Build(s)
		q := g.Scene.NewQuery()
		ids := g.Scene.ObjectsWithin(q, nil, g.Spawn, 0.3)
		if len(ids) != 0 {
			// Walls/ceiling of indoor shells span the whole room; only
			// flag solid blockers (props near spawn).
			for _, id := range ids {
				o := g.Scene.Objects[id]
				if o.Kind == world.KindSphere || (o.Half.X < g.Scene.Bounds.Width()/2 && o.Half.Z < g.Scene.Bounds.Depth()/2) {
					t.Errorf("%s: object %d overlaps spawn", s.Name, id)
				}
			}
		}
	}
}

func TestRacingTrackInsideWorld(t *testing.T) {
	for _, name := range []string{"racing", "ds"} {
		g := Build(mustSpec(t, name))
		for i, p := range g.Track {
			if !g.Scene.Bounds.ContainsClosed(p) {
				t.Fatalf("%s: track point %d (%v) outside world", name, i, p)
			}
		}
		// The loop must be long enough to drive for minutes.
		var length float64
		for i := range g.Track {
			length += g.Track[i].Dist(g.Track[(i+1)%len(g.Track)])
		}
		if length < 500 {
			t.Fatalf("%s: track only %.0f m", name, length)
		}
	}
}

func TestAvatarKinds(t *testing.T) {
	racing := Build(mustSpec(t, "racing"))
	car := racing.Avatar(geom.V2(10, 10), 2)
	if car.Kind != world.KindBox {
		t.Fatal("racing avatar should be a car (box)")
	}
	viking := Build(mustSpec(t, "viking"))
	ava := viking.Avatar(geom.V2(10, 10), 1)
	if ava.Kind != world.KindSphere {
		t.Fatal("viking avatar should be a humanoid (sphere)")
	}
	if car.ID == ava.ID {
		t.Fatal("avatar IDs should include the player id")
	}
	if ava.ID < avatarIDBase {
		t.Fatal("avatar IDs must not collide with scene object IDs")
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
