// Package games procedurally generates the nine VR apps of the paper's
// study (Table 2/3) as world.Scenes. The Unity asset-store projects are not
// available, so each generator reproduces what the experiments actually
// depend on: the world dimension and grid spacing of Table 3, and the
// spatial distribution of object (triangle) density that drives the
// adaptive cutoff scheme, the quadtree shape, and the Mobile-baseline
// render times.
//
// Density design notes (see DESIGN.md for the calibration math):
//
//   - The near-BE triangle budget on the Pixel 2 profile is ~660k
//     triangles (12.7 ms at 60k tris/ms). A region of local density D
//     tris/m^2 therefore gets cutoff radius r = sqrt(660k / (pi*D)).
//   - Viking Village mixes dense village blocks (~30k tris/m^2, r~2.7m)
//     with sparse outskirts (~340 tris/m^2, r~25m) at a few-metre block
//     granularity: the paper's 2-28 m cutoff spread and deep quadtree.
//   - DS is dense at the start/finish straights and sparse in between;
//     Racing Mountain has trackside forest arcs: their wide cutoff spreads
//     (10-100 m and 10-180 m) come from that layout.
package games

import (
	"fmt"
	"math"
	"math/rand"

	"coterie/internal/geom"
	"coterie/internal/world"
)

// Genre drives the movement model used in traces.
type Genre int

const (
	// GenreRacing is a car game driving a closed track (Racing, DS).
	GenreRacing Genre = iota
	// GenreShooter is free roaming with engagements (Viking, FPS).
	GenreShooter
	// GenreAdventure is waypoint exploration (CTS, Corridor).
	GenreAdventure
	// GenreSports is field play around a pitch (Soccer).
	GenreSports
	// GenreIndoor is a small-room stroll (Pool, Bowling).
	GenreIndoor
)

// walkStep is the grid spacing of the walking-scale games (1/32 m: Table 3
// grid-point counts are exactly dimension / (1/32)^2).
const walkStep = 1.0 / 32

// driveStep is the grid spacing of the two car games.
const driveStep = 0.394

// PaperStats records Table 3's published values for comparison in
// EXPERIMENTS.md.
type PaperStats struct {
	GridPointsM float64 // millions
	DepthAvg    float64
	DepthMax    int
	LeafRegions int
	ProcHours   float64
}

// Spec describes one of the nine study apps.
type Spec struct {
	Name     string // short key, e.g. "viking"
	FullName string
	Genre    Genre
	Outdoor  bool
	Width    float64
	Depth    float64
	GridStep float64
	Seed     int64
	Paper    PaperStats
}

// Game is a built, ready-to-render instance of a study app.
type Game struct {
	Spec  Spec
	Scene *world.Scene
	// Track is the driving line for racing games (a closed loop of
	// ground-plane waypoints); nil for non-racing games.
	Track []geom.Vec2
	// Spawn is the player start position.
	Spawn geom.Vec2
}

// Catalog returns the nine apps of Table 2/3 in the paper's order.
func Catalog() []Spec {
	return []Spec{
		{
			Name: "racing", FullName: "Racing Mountain", Genre: GenreRacing, Outdoor: true,
			Width: 1090, Depth: 1096, GridStep: driveStep, Seed: 101,
			Paper: PaperStats{GridPointsM: 7.70, DepthAvg: 3.70, DepthMax: 4, LeafRegions: 136, ProcHours: 1.25},
		},
		{
			Name: "ds", FullName: "DS", Genre: GenreRacing, Outdoor: true,
			Width: 1286, Depth: 361, GridStep: driveStep, Seed: 102,
			Paper: PaperStats{GridPointsM: 3.00, DepthAvg: 3.80, DepthMax: 4, LeafRegions: 160, ProcHours: 1.66},
		},
		{
			Name: "viking", FullName: "Viking Village", Genre: GenreShooter, Outdoor: true,
			Width: 187, Depth: 130, GridStep: walkStep, Seed: 103,
			Paper: PaperStats{GridPointsM: 24.90, DepthAvg: 5.87, DepthMax: 6, LeafRegions: 2944, ProcHours: 6.60},
		},
		{
			Name: "cts", FullName: "CTS Procedural World", Genre: GenreAdventure, Outdoor: true,
			Width: 512, Depth: 512, GridStep: walkStep, Seed: 104,
			Paper: PaperStats{GridPointsM: 268.40, DepthAvg: 3.81, DepthMax: 4, LeafRegions: 235, ProcHours: 1.30},
		},
		{
			Name: "fps", FullName: "FPS", Genre: GenreShooter, Outdoor: true,
			Width: 71, Depth: 70, GridStep: walkStep, Seed: 105,
			Paper: PaperStats{GridPointsM: 5.09, DepthAvg: 3.92, DepthMax: 4, LeafRegions: 208, ProcHours: 1.10},
		},
		{
			Name: "soccer", FullName: "Soccer", Genre: GenreSports, Outdoor: true,
			Width: 104, Depth: 140, GridStep: walkStep, Seed: 106,
			Paper: PaperStats{GridPointsM: 14.90, DepthAvg: 3.88, DepthMax: 4, LeafRegions: 136, ProcHours: 1.18},
		},
		{
			Name: "pool", FullName: "Pool", Genre: GenreIndoor, Outdoor: false,
			Width: 10, Depth: 13, GridStep: walkStep, Seed: 107,
			Paper: PaperStats{GridPointsM: 0.13, DepthAvg: 2.68, DepthMax: 3, LeafRegions: 19, ProcHours: 0.14},
		},
		{
			Name: "bowling", FullName: "Bowling", Genre: GenreIndoor, Outdoor: false,
			Width: 34, Depth: 41, GridStep: walkStep, Seed: 108,
			Paper: PaperStats{GridPointsM: 1.43, DepthAvg: 2.00, DepthMax: 2, LeafRegions: 16, ProcHours: 0.13},
		},
		{
			Name: "corridor", FullName: "Corridor", Genre: GenreAdventure, Outdoor: false,
			Width: 50, Depth: 30, GridStep: walkStep, Seed: 109,
			Paper: PaperStats{GridPointsM: 1.54, DepthAvg: 2.80, DepthMax: 3, LeafRegions: 40, ProcHours: 0.29},
		},
	}
}

// LODFactor returns the game-specific level-of-detail effectiveness: the
// engine draws total/LODFactor triangles beyond the generic culling factor
// of the device model. CTS ships an aggressive terrain LOD system (that is
// what the "Complete Terrain Shader" asset is for), and the huge open
// worlds of the car games LOD well; compact scenes draw closer to their
// full detail.
func (s Spec) LODFactor() float64 {
	switch s.Name {
	case "cts":
		return 1.7
	case "racing", "ds":
		return 2.3
	case "viking":
		return 1.2
	default:
		return 1.0
	}
}

// ByName looks a spec up by its short key.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("games: unknown game %q", name)
}

// Headline returns the three apps of the testbed evaluation (§7): one from
// each outdoor genre, the largest and most challenging of the nine.
func Headline() []Spec {
	out := make([]Spec, 0, 3)
	for _, n := range []string{"viking", "cts", "racing"} {
		s, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// Build generates the scene for a spec. Generation is deterministic in
// Spec.Seed.
func Build(spec Spec) *Game {
	switch spec.Name {
	case "viking":
		return buildViking(spec)
	case "cts":
		return buildCTS(spec)
	case "racing":
		return buildRacingMt(spec)
	case "ds":
		return buildDS(spec)
	case "fps":
		return buildFPS(spec)
	case "soccer":
		return buildSoccer(spec)
	case "pool":
		return buildPool(spec)
	case "bowling":
		return buildBowling(spec)
	case "corridor":
		return buildCorridor(spec)
	default:
		panic(fmt.Sprintf("games: no generator for %q", spec.Name))
	}
}

// BuildByName is a convenience wrapper over ByName + Build.
func BuildByName(name string) (*Game, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return Build(spec), nil
}

// Avatar returns the foreground-interaction object representing a remote
// player at the given position: a car for racing games, a humanoid
// otherwise. FI objects are rendered locally by every client from the
// synchronised state (§5.1 task 1).
func (g *Game) Avatar(pos geom.Vec2, playerID int) world.Object {
	if g.Spec.Genre == GenreRacing {
		return world.Object{
			ID: avatarIDBase + playerID, Kind: world.KindBox,
			Center:    geom.V3(pos.X, 0.7, pos.Z),
			Half:      geom.V3(1.0, 0.7, 2.2),
			Triangles: 40_000,
			Shade:     0.85,
			Pattern:   uint8(playerID),
		}
	}
	return world.Object{
		ID: avatarIDBase + playerID, Kind: world.KindSphere,
		Center:    geom.V3(pos.X, 1.1, pos.Z),
		Radius:    0.45,
		Triangles: 25_000,
		Shade:     0.9,
		Pattern:   uint8(playerID),
	}
}

// avatarIDBase keeps FI object IDs disjoint from scene object IDs.
const avatarIDBase = 1 << 24

// scatterer accumulates procedurally placed objects.
type scatterer struct {
	rng  *rand.Rand
	objs []world.Object
	// keepClear are discs objects must not overlap (spawn areas, tracks).
	keepClear []clearZone
	// smoothProps marks scattered objects as low-texture surfaces
	// (indoor furniture and fittings).
	smoothProps bool
}

type clearZone struct {
	p geom.Vec2
	r float64
}

func newScatterer(seed int64) *scatterer {
	return &scatterer{rng: rand.New(rand.NewSource(seed))}
}

func (sc *scatterer) clear(p geom.Vec2, r float64) {
	sc.keepClear = append(sc.keepClear, clearZone{p, r})
}

// clearPolyline keeps a band around a path free of objects.
func (sc *scatterer) clearPolyline(path []geom.Vec2, r float64) {
	for i := 0; i < len(path); i++ {
		a := path[i]
		b := path[(i+1)%len(path)]
		segs := int(a.Dist(b)/r) + 1
		for s := 0; s <= segs; s++ {
			t := float64(s) / float64(segs)
			sc.clear(geom.V2(a.X+(b.X-a.X)*t, a.Z+(b.Z-a.Z)*t), r)
		}
	}
}

func (sc *scatterer) blocked(p geom.Vec2, objRadius float64) bool {
	for _, z := range sc.keepClear {
		if p.Dist(z.p) < z.r+objRadius {
			return true
		}
	}
	return false
}

// fill tiles the region with cells of the given size and places objects in
// each cell to meet the target triangle density returned by density(x, z)
// in tris/m^2. Shapes alternate between props (spheres) and structures
// (boxes); triangle counts are split across 1-3 objects per cell.
func (sc *scatterer) fill(region geom.Rect, cell float64, density func(x, z float64) float64) {
	for z := region.MinZ; z < region.MaxZ; z += cell {
		for x := region.MinX; x < region.MaxX; x += cell {
			cw := math.Min(cell, region.MaxX-x)
			cd := math.Min(cell, region.MaxZ-z)
			cx, cz := x+cw/2, z+cd/2
			tris := density(cx, cz) * cw * cd
			if tris < 50 {
				continue
			}
			// Dense cells hold one large compound asset (a house prefab,
			// a stand section), matching Unity's asset granularity;
			// sparse cells scatter a few small props. Coarse granularity
			// in dense areas keeps the near-BE object set stable as the
			// player moves, which the frame cache's criterion 3 depends
			// on (§5.3).
			var n int
			switch {
			case tris > 150_000:
				n = 1
			case tris > 60_000:
				n = 1 + sc.rng.Intn(2)
			default:
				n = 1 + sc.rng.Intn(3)
			}
			for i := 0; i < n; i++ {
				share := tris / float64(n)
				px := x + sc.rng.Float64()*cw
				pz := z + sc.rng.Float64()*cd
				sc.place(geom.V2(px, pz), int(share), cw)
			}
		}
	}
}

// place adds one object of roughly the given triangle count near p. Dense
// cells get buildings (boxes), sparse ones get props (spheres).
func (sc *scatterer) place(p geom.Vec2, tris int, cell float64) {
	if tris < 50 {
		return
	}
	id := len(sc.objs)
	if tris > 60_000 {
		// Structure: a building-scale box.
		half := geom.V3(
			1.5+sc.rng.Float64()*math.Min(cell*0.4, 6),
			1.5+sc.rng.Float64()*4,
			1.5+sc.rng.Float64()*math.Min(cell*0.4, 6),
		)
		if sc.blocked(p, math.Max(half.X, half.Z)) {
			return
		}
		sc.objs = append(sc.objs, world.Object{
			ID: id, Kind: world.KindBox,
			Center:    geom.V3(p.X, half.Y, p.Z),
			Half:      half,
			Triangles: tris,
			Shade:     0.25 + sc.rng.Float64()*0.6,
			Pattern:   uint8(sc.rng.Intn(8)),
			Smooth:    sc.smoothProps,
		})
		return
	}
	// Prop: tree, rock, pin, person.
	r := 0.3 + sc.rng.Float64()*1.6
	if sc.blocked(p, r) {
		return
	}
	sc.objs = append(sc.objs, world.Object{
		ID: id, Kind: world.KindSphere,
		Center:    geom.V3(p.X, r*0.9, p.Z),
		Radius:    r,
		Triangles: tris,
		Shade:     0.25 + sc.rng.Float64()*0.6,
		Pattern:   uint8(sc.rng.Intn(8)),
		Smooth:    sc.smoothProps,
	})
}

// box adds an explicit structure (walls, tables, stands).
func (sc *scatterer) box(center geom.Vec3, half geom.Vec3, tris int, shade float64) {
	sc.objs = append(sc.objs, world.Object{
		ID: len(sc.objs), Kind: world.KindBox,
		Center: center, Half: half, Triangles: tris,
		Shade: shade, Pattern: uint8(sc.rng.Intn(8)),
	})
}

// smoothBox adds a plain-surfaced structure (painted walls, ceilings).
func (sc *scatterer) smoothBox(center geom.Vec3, half geom.Vec3, tris int, shade float64) {
	sc.box(center, half, tris, shade)
	sc.objs[len(sc.objs)-1].Smooth = true
}
