package games

import (
	"math"

	"coterie/internal/geom"
	"coterie/internal/world"
)

// Density levels are chosen against the Pixel 2 near-BE budget of ~660k
// triangles: cutoff radius r = sqrt(660_000 / (pi * density)). See the
// package comment and DESIGN.md for the per-game targets.

func buildViking(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(40, 65)
	sc.clear(spawn, 3)

	// Village core: ~96x64 m of house blocks whose density jumps block to
	// block (8 m blocks). This is the high-variance layout that gives
	// Viking its deep quadtree and 2-28 m cutoff spread (Table 3, Fig 8).
	core := geom.Rect{MinX: 55, MinZ: 35, MaxX: 151, MaxZ: 99}
	blocks := newNoise(spec.Seed+1, 8)
	outsk := newNoise(spec.Seed+2, 9)
	density := func(x, z float64) float64 {
		if core.Contains(geom.V2(x, z)) {
			b := blocks.Blocky(x, z)
			return 400 + b*b*b*32_000
		}
		// Outskirts: sparse but still block-varying (150-600 tris/m^2).
		return 150 + outsk.Blocky(x, z)*450
	}
	sc.fill(bounds, 4, density)
	return finish(spec, sc, bounds, spawn, nil, 40)
}

func buildCTS(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(256, 256)
	sc.clear(spawn, 3)

	// Procedural terrain: vegetation density varies smoothly at ~128 m
	// wavelength (uniform inside 32 m leaf regions, non-uniform above:
	// Table 3's depth-4 quadtree with 235 leaves).
	veg := newNoise(spec.Seed+1, 128)
	density := func(x, z float64) float64 {
		n := veg.At(x, z)
		return 90 + n*n*820 // 90..910 tris/m^2
	}
	sc.fill(bounds, 12, density)
	return finish(spec, sc, bounds, spawn, nil, 30)
}

func buildRacingMt(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)

	// Closed mountain circuit: a noisy ring around the world centre.
	track := ringTrack(spec.Seed, bounds, 0.38, 96)
	sc.clearPolyline(track, 9)
	spawn := track[0]

	// Trackside forest: a few large smooth-edged patches near the track;
	// sparse scrub elsewhere. Cutoffs spread 10-180 m (Fig 7's "evenly
	// spread" tail for Racing Mountain). Patches vary smoothly at ~300 m
	// wavelength — the paper observes density "changes gradually" (§4.3).
	forest := newNoise(spec.Seed+1, 300)
	fine := newNoise(spec.Seed+2, 90)
	density := func(x, z float64) float64 {
		p := geom.V2(x, z)
		d := distToPolyline(p, track)
		// Sparse mountainside: occasional rock clusters, otherwise bare
		// terrain (very few assets away from the forest, like the Unity
		// stage; keeps near-BE object sets stable in sparse regions).
		base := 0.0
		if fine.At(x, z) > 0.82 {
			base = 45
		}
		if d > 12 && d < 90 {
			if f := forest.At(x, z); f > 0.62 {
				// Ramp in smoothly: up to ~1750 tris/m^2 -> r ~ 11 m.
				edge := math.Min((f-0.62)/0.15, 1)
				return base + edge*(350+(f-0.62)*3400)
			}
		}
		return base
	}
	sc.fill(bounds, 18, density)
	return finish(spec, sc, bounds, spawn, track, 10)
}

func buildDS(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)

	// Point-to-point desert stage folded into an out-and-back loop.
	track := stadiumTrack(bounds, 90)
	sc.clearPolyline(track, 9)
	spawn := track[0]

	// Start/finish zones are packed with stadiums and crowds; the middle
	// of the stage is nearly empty (Fig 7: half the radii 10-100 m). The
	// zone density varies smoothly, fading out over ~60 m at the zone
	// edge.
	zone := newNoise(spec.Seed+1, 60)
	density := func(x, z float64) float64 {
		edgeDist := math.Min(x, spec.Width-x)
		if edgeDist < 230 {
			fade := 1.0
			if edgeDist > 170 {
				fade = (230 - edgeDist) / 60
			}
			return fade * (700 + zone.At(x, z)*1800) // up to 2500 -> r 9..17m
		}
		// Bare desert stage between the end zones: rare marker clusters.
		if zone.At(x, z) > 0.85 {
			return 40
		}
		return 0
	}
	sc.fill(bounds, 16, density)
	return finish(spec, sc, bounds, spawn, track, 8)
}

func buildFPS(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(10, 10)
	sc.clear(spawn, 2.5)

	// Compact urban arena: dense cover everywhere, varying gradually at
	// ~18 m wavelength (the paper observes density "changes gradually and
	// tends to be uniform within a small region", §4.3).
	blocks := newNoise(spec.Seed+1, 18)
	density := func(x, z float64) float64 {
		return 1800 + blocks.At(x, z)*3400 // r ~ 6.4-10.8 m
	}
	sc.fill(bounds, 4, density)
	return finish(spec, sc, bounds, spawn, nil, 60)
}

func buildSoccer(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(52, 70)
	sc.clear(spawn, 2.5)

	// Empty pitch in the middle, stands and facilities around it.
	pitch := geom.Rect{MinX: 22, MinZ: 25, MaxX: 82, MaxZ: 115}
	sc.clearPolyline([]geom.Vec2{
		{X: 30, Z: 40}, {X: 74, Z: 40}, {X: 74, Z: 100}, {X: 30, Z: 100},
	}, 6)
	stands := newNoise(spec.Seed+1, 25)
	density := func(x, z float64) float64 {
		p := geom.V2(x, z)
		if pitch.Contains(p) {
			// Gradual transition from open pitch to the stands (fences,
			// benches, billboards).
			d := math.Min(math.Min(p.X-pitch.MinX, pitch.MaxX-p.X),
				math.Min(p.Z-pitch.MinZ, pitch.MaxZ-p.Z))
			if d > 8 {
				return 60
			}
			return 60 + (8-d)/8*2400
		}
		return 2500 + stands.At(x, z)*5500
	}
	sc.fill(bounds, 5, density)
	return finish(spec, sc, bounds, spawn, nil, 80)
}

func buildPool(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	sc.smoothProps = true // indoor fittings are low-texture surfaces
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(2.2, 6.5)
	sc.clear(spawn, 1.0)
	indoorShell(sc, bounds, 3.2, 40_000)

	// The pool table: the dominant dense asset in the middle of the room.
	sc.box(geom.V3(5, 0.8, 6.5), geom.V3(1.4, 0.8, 2.6), 350_000, 0.35)
	// Furniture along the walls.
	furn := newNoise(spec.Seed+1, 2.2)
	density := func(x, z float64) float64 {
		d := geom.V2(x, z).Dist(geom.V2(5, 6.5))
		if d < 3.2 {
			return 0 // table zone handled explicitly
		}
		return 800 + furn.Blocky(x, z)*2600
	}
	sc.fill(bounds, 1.6, density)
	return finish(spec, sc, bounds, spawn, nil, 200)
}

func buildBowling(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	sc.smoothProps = true // indoor fittings are low-texture surfaces
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(17, 8)
	sc.clear(spawn, 1.5)
	indoorShell(sc, bounds, 4.5, 60_000)

	// Lanes fill one half of the hall, seating the other: two large
	// uniform zones (the paper's depth-exactly-2 quadtree with 16 leaves).
	lanes := newNoise(spec.Seed+1, 34)
	density := func(x, z float64) float64 {
		if z > 16 {
			return 2600 + lanes.At(x, z)*700 // lane hall
		}
		return 1200 + lanes.At(x, z)*500 // seating
	}
	sc.fill(bounds, 4, density)
	return finish(spec, sc, bounds, spawn, nil, 180)
}

func buildCorridor(spec Spec) *Game {
	sc := newScatterer(spec.Seed)
	sc.smoothProps = true // indoor fittings are low-texture surfaces
	bounds := geom.NewRect(spec.Width, spec.Depth)
	spawn := geom.V2(3, 15)
	sc.clear(spawn, 1.5)
	indoorShell(sc, bounds, 3.5, 50_000)

	// A central corridor with clear floor and dense side rooms.
	sc.clearPolyline([]geom.Vec2{{X: 3, Z: 15}, {X: 47, Z: 15}}, 2.2)
	rooms := newNoise(spec.Seed+1, 6)
	density := func(x, z float64) float64 {
		if z > 12 && z < 18 {
			return 900 // corridor props
		}
		return 1100 + rooms.Blocky(x, z)*3200
	}
	sc.fill(bounds, 3, density)
	return finish(spec, sc, bounds, spawn, nil, 160)
}

// indoorShell adds four walls and a ceiling so that indoor worlds are
// enclosed (no open sky to the sides). wallTris is the triangle count per
// wall; the ceiling gets twice that.
func indoorShell(sc *scatterer, b geom.Rect, height float64, wallTris int) {
	t := 0.3 // wall thickness
	w, d := b.Width(), b.Depth()
	cx, cz := b.Center().X, b.Center().Z
	sc.smoothBox(geom.V3(cx, height/2, b.MinZ-t/2), geom.V3(w/2+t, height/2, t/2), wallTris, 0.55)
	sc.smoothBox(geom.V3(cx, height/2, b.MaxZ+t/2), geom.V3(w/2+t, height/2, t/2), wallTris, 0.55)
	sc.smoothBox(geom.V3(b.MinX-t/2, height/2, cz), geom.V3(t/2, height/2, d/2+t), wallTris, 0.5)
	sc.smoothBox(geom.V3(b.MaxX+t/2, height/2, cz), geom.V3(t/2, height/2, d/2+t), wallTris, 0.5)
	sc.smoothBox(geom.V3(cx, height+t/2, cz), geom.V3(w/2+t, t/2, d/2+t), wallTris*2, 0.7)
}

// ringTrack builds a closed noisy loop centred in the world. radiusFrac is
// the mean radius as a fraction of the smaller world dimension.
func ringTrack(seed int64, b geom.Rect, radiusFrac float64, points int) []geom.Vec2 {
	n := newNoise(seed+7, 1)
	c := b.Center()
	rBase := math.Min(b.Width(), b.Depth()) * radiusFrac
	track := make([]geom.Vec2, points)
	for i := 0; i < points; i++ {
		a := 2 * math.Pi * float64(i) / float64(points)
		// Radius wobble makes straights and hairpins.
		wob := 0.75 + 0.25*math.Sin(3*a+n.At(float64(i), 0)*6)
		r := rBase * wob
		track[i] = geom.V2(c.X+r*math.Cos(a), c.Z+r*math.Sin(a)*0.9)
	}
	return track
}

// stadiumTrack builds an out-and-back loop along the long axis of an
// elongated world (the DS stage).
func stadiumTrack(b geom.Rect, points int) []geom.Vec2 {
	track := make([]geom.Vec2, 0, points)
	margin := 60.0
	zUp := b.Center().Z + 25
	zDown := b.Center().Z - 25
	half := points / 2
	for i := 0; i < half; i++ {
		t := float64(i) / float64(half-1)
		track = append(track, geom.V2(b.MinX+margin+t*(b.Width()-2*margin), zUp))
	}
	for i := 0; i < half; i++ {
		t := float64(i) / float64(half-1)
		track = append(track, geom.V2(b.MaxX-margin-t*(b.Width()-2*margin), zDown))
	}
	return track
}

func distToPolyline(p geom.Vec2, line []geom.Vec2) float64 {
	best := math.Inf(1)
	for i := range line {
		a := line[i]
		b := line[(i+1)%len(line)]
		if d := distToSegment(p, a, b); d < best {
			best = d
		}
	}
	return best
}

func distToSegment(p, a, b geom.Vec2) float64 {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Z*ab.Z
	if l2 == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Z-a.Z)*ab.Z) / l2
	t = geom.Clamp(t, 0, 1)
	return p.Dist(geom.V2(a.X+ab.X*t, a.Z+ab.Z*t))
}

func finish(spec Spec, sc *scatterer, bounds geom.Rect, spawn geom.Vec2, track []geom.Vec2, groundTris float64) *Game {
	scene := world.New(spec.FullName, bounds, spec.GridStep, sc.objs, groundTris)
	return &Game{Spec: spec, Scene: scene, Track: track, Spawn: spawn}
}
