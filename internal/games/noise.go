package games

import (
	"math"
)

// valueNoise is deterministic lattice value noise used to modulate object
// density across a game world. Viking Village's high-variance village
// blocks, CTS's gently varying vegetation and Racing Mountain's sparse
// hills all come from the same primitive at different scales and
// amplitudes.
type valueNoise struct {
	seed  uint64
	scale float64 // lattice spacing in metres
}

func newNoise(seed int64, scale float64) valueNoise {
	return valueNoise{seed: uint64(seed) * 0x9E3779B97F4A7C15, scale: scale}
}

func (n valueNoise) lattice(i, j int64) float64 {
	h := n.seed ^ uint64(i)*0xBF58476D1CE4E5B9 ^ uint64(j)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return float64(h%4096) / 4095 // [0,1]
}

// At returns smooth noise in [0,1] at the ground position (x, z).
func (n valueNoise) At(x, z float64) float64 {
	fx, fz := x/n.scale, z/n.scale
	ix, iz := math.Floor(fx), math.Floor(fz)
	tx, tz := fx-ix, fz-iz
	// Smoothstep the interpolants.
	tx = tx * tx * (3 - 2*tx)
	tz = tz * tz * (3 - 2*tz)
	i, j := int64(ix), int64(iz)
	v00 := n.lattice(i, j)
	v10 := n.lattice(i+1, j)
	v01 := n.lattice(i, j+1)
	v11 := n.lattice(i+1, j+1)
	return (v00*(1-tx)+v10*tx)*(1-tz) + (v01*(1-tx)+v11*tx)*tz
}

// Blocky returns unsmoothed per-cell noise in [0,1]: constant within each
// lattice cell with hard jumps between cells. Village-style worlds use it
// so object density changes abruptly from block to block, which is what
// drives the deep quadtrees of Table 3.
func (n valueNoise) Blocky(x, z float64) float64 {
	return n.lattice(int64(math.Floor(x/n.scale)), int64(math.Floor(z/n.scale)))
}
