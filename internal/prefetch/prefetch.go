// Package prefetch implements the Coterie client's far-BE frame
// prefetcher (§5.2). Each tick it predicts the grid points the player is
// about to need from the current velocity, checks the frame cache first,
// and requests only the frames the cache cannot cover. Because a cached
// far-BE frame is reusable within the leaf's distance threshold, most
// predicted points hit the cache and the prefetch frequency drops by the
// paper's 5.2x-8.6x (Table 6); the surviving requests also gain a large
// scheduling window (the client only needs the frame before the player
// arrives), so no inter-client coordination is required.
package prefetch

import (
	"math"

	"coterie/internal/cache"
	"coterie/internal/geom"
	"coterie/internal/obs"
)

// Meta computes the cache lookup metadata of a grid point: its leaf
// region, near-BE object-set signature, and leaf distance threshold. It is
// built from the offline cutoff map (see core.NewMetaFunc).
type Meta func(pt geom.GridPoint) (leafID int, nearSig uint64, distThresh float64)

// Source delivers encoded far-BE frames, either over the simulated WiFi or
// a real TCP connection. done is invoked when the payload arrives, with
// the request start and completion times in ms.
type Source interface {
	Fetch(player int, pt geom.GridPoint, done func(data []byte, size int, startMs, endMs float64))
}

// Config tunes the prefetcher.
type Config struct {
	// LookaheadSec is how far ahead along the velocity vector the
	// prefetcher aims. The cache-enabled reuse window means this can be
	// generous without tight deadlines (§5.2).
	LookaheadSec float64
	// MaxInflight bounds concurrent fetches per client.
	MaxInflight int
	// NeighborHops adds the neighbours of the predicted point as
	// candidates (the paper prefetches "the neighbors of the next grid
	// point").
	NeighborHops int
}

// DefaultConfig matches the testbed behaviour.
func DefaultConfig() Config {
	return Config{LookaheadSec: 0.4, MaxInflight: 2, NeighborHops: 1}
}

// Stats counts prefetcher activity.
type Stats struct {
	Issued       int64 // fetches sent to the server
	SkippedCache int64 // candidates already covered by the cache
	SkippedBusy  int64 // candidates deferred because of inflight fetches
	Delivered    int64 // fetches completed and inserted
}

// Prefetcher runs the per-tick planning for one client.
type Prefetcher struct {
	Grid   geom.Grid
	Meta   Meta
	Cache  *cache.Cache
	Source Source
	Player int
	Cfg    Config

	inflight map[geom.GridPoint]bool
	waiters  map[geom.GridPoint][]Waiter
	scratch  []geom.GridPoint
	stats    Stats
	obs      instruments
}

// instruments mirror Stats into a metrics registry, plus the per-fetch
// RTT histogram the paper's latency breakdown needs (Tables 1/5).
type instruments struct {
	issued, skippedCache   *obs.Counter
	skippedBusy, delivered *obs.Counter
	bytesFetched           *obs.Counter
	inflightGauge          *obs.Gauge
	fetchRTT               *obs.Histogram
}

// Instrument mirrors the prefetcher's counters into a registry under the
// "prefetch." namespace. Instrument(nil) is a no-op; prefetchers sharing
// one registry aggregate into the same instruments.
func (p *Prefetcher) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	p.obs = instruments{
		issued:        r.Counter("prefetch.issued"),
		skippedCache:  r.Counter("prefetch.skipped_cache"),
		skippedBusy:   r.Counter("prefetch.skipped_busy"),
		delivered:     r.Counter("prefetch.delivered"),
		bytesFetched:  r.Counter("prefetch.bytes_fetched"),
		inflightGauge: r.Gauge("prefetch.inflight"),
		fetchRTT:      r.Histogram("prefetch.fetch_rtt_ms"),
	}
}

// Waiter is notified when a demanded frame becomes available: its size and
// the time (ms) it arrived.
type Waiter func(size int, readyMs float64)

// New creates a prefetcher bound to one client's cache and frame source.
func New(grid geom.Grid, meta Meta, c *cache.Cache, src Source, player int, cfg Config) *Prefetcher {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 1
	}
	return &Prefetcher{
		Grid:     grid,
		Meta:     meta,
		Cache:    c,
		Source:   src,
		Player:   player,
		Cfg:      cfg,
		inflight: make(map[geom.GridPoint]bool),
		waiters:  make(map[geom.GridPoint][]Waiter),
	}
}

// Request is one prefetch request for an upcoming grid point (§5.2):
// "each far BE frame prefetching request is first sent to the frame cache,
// and is only sent out to the server if the cache cannot find a similar
// frame". The hit/miss statistics of this stream are the paper's cache hit
// ratio (Tables 5-6). Call it once per frame tick with the predicted next
// grid point.
func (p *Prefetcher) Request(pt geom.GridPoint) {
	p.RequestTracked(pt, nil)
}

// RequestTracked is Request with completion tracking for Eq. 2: when the
// request misses the cache, notify fires when the (new or already
// in-flight) transfer lands, and RequestTracked returns true — the frame's
// T_prefetch_next term. A cache hit returns false: the prefetch task takes
// no time this frame.
func (p *Prefetcher) RequestTracked(pt geom.GridPoint, notify Waiter) bool {
	req := p.request(pt)
	if _, ok := p.Cache.Lookup(req); ok {
		return false
	}
	wait := func(target geom.GridPoint) {
		if notify != nil {
			p.waiters[target] = append(p.waiters[target], notify)
		}
	}
	if p.inflight[pt] {
		wait(pt)
		return true
	}
	if cover, ok := p.inflightCovering(req); ok {
		wait(cover)
		return true
	}
	wait(pt)
	p.fetch(pt, req)
	return true
}

// Ensure makes the frame for the grid point needed for display *now*
// available (§5.1 task 2 reads it from the cache): a cached frame notifies
// immediately with nowMs; an in-flight fetch attaches a waiter; otherwise
// an emergency fetch is issued. Ensure does not touch the cache hit/miss
// statistics — in the paper's pipeline the display path reads a frame the
// prefetcher already ensured, so only prefetch requests count.
func (p *Prefetcher) Ensure(pt geom.GridPoint, nowMs float64, notify Waiter) {
	req := p.request(pt)
	if e, ok := p.Cache.Peek(req); ok {
		notify(e.Size, nowMs)
		return
	}
	if p.inflight[pt] {
		p.waiters[pt] = append(p.waiters[pt], notify)
		return
	}
	if cover, ok := p.inflightCovering(req); ok {
		p.waiters[cover] = append(p.waiters[cover], notify)
		return
	}
	p.waiters[pt] = append(p.waiters[pt], notify)
	p.fetch(pt, req)
}

// inflightCovering returns the in-flight point whose frame will satisfy
// the request once cached, preferring the closest (deterministically, so
// simulation runs are reproducible despite map iteration order).
func (p *Prefetcher) inflightCovering(req cache.Request) (geom.GridPoint, bool) {
	var best geom.GridPoint
	bestD := math.Inf(1)
	found := false
	for pt := range p.inflight {
		d := p.Grid.Pos(pt).Dist(req.Pos)
		if d > req.DistThresh {
			continue
		}
		leaf, sig, _ := p.Meta(pt)
		if leaf != req.LeafID || sig != req.NearSig {
			continue
		}
		if d < bestD || (d == bestD && lessPoint(pt, best)) {
			best, bestD, found = pt, d, true
		}
	}
	return best, found
}

func lessPoint(a, b geom.GridPoint) bool {
	if a.J != b.J {
		return a.J < b.J
	}
	return a.I < b.I
}

// Stats returns a copy of the counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Inflight returns the number of outstanding fetches.
func (p *Prefetcher) Inflight() int { return len(p.inflight) }

// request builds the cache request for a grid point.
func (p *Prefetcher) request(pt geom.GridPoint) cache.Request {
	leaf, sig, thresh := p.Meta(pt)
	return cache.Request{
		Point:      pt,
		Pos:        p.Grid.Pos(pt),
		LeafID:     leaf,
		NearSig:    sig,
		DistThresh: thresh,
		Player:     p.Player,
	}
}

// Tick plans prefetching for the current position and velocity (m/s). It
// issues fetches for predicted points the cache cannot serve, up to the
// inflight budget.
func (p *Prefetcher) Tick(pos, vel geom.Vec2) {
	target := p.Grid.Snap(geom.V2(
		pos.X+vel.X*p.Cfg.LookaheadSec,
		pos.Z+vel.Z*p.Cfg.LookaheadSec,
	))
	p.scratch = p.scratch[:0]
	p.scratch = append(p.scratch, target)
	if p.Cfg.NeighborHops > 0 {
		p.scratch = p.Grid.Neighbors(p.scratch, target, p.Cfg.NeighborHops)
	}
	for _, cand := range p.scratch {
		if p.inflight[cand] {
			continue
		}
		if len(p.inflight) >= p.Cfg.MaxInflight {
			p.stats.SkippedBusy++
			p.obs.skippedBusy.Inc()
			return
		}
		req := p.request(cand)
		if _, ok := p.Cache.Peek(req); ok {
			p.stats.SkippedCache++
			p.obs.skippedCache.Inc()
			continue
		}
		if p.coveredByInflight(req) {
			continue
		}
		p.fetch(cand, req)
	}
}

// coveredByInflight reports whether an outstanding fetch will satisfy the
// request once it lands (within the distance threshold, so the cache would
// serve it).
func (p *Prefetcher) coveredByInflight(req cache.Request) bool {
	_, ok := p.inflightCovering(req)
	return ok
}

// Fetch forces a fetch of one grid point (used for cold starts).
func (p *Prefetcher) Fetch(pt geom.GridPoint) {
	if p.inflight[pt] {
		return
	}
	p.fetch(pt, p.request(pt))
}

func (p *Prefetcher) fetch(pt geom.GridPoint, req cache.Request) {
	p.inflight[pt] = true
	p.stats.Issued++
	p.obs.issued.Inc()
	p.obs.inflightGauge.Set(int64(len(p.inflight)))
	p.Source.Fetch(p.Player, pt, func(data []byte, size int, startMs, endMs float64) {
		delete(p.inflight, pt)
		p.stats.Delivered++
		p.obs.delivered.Inc()
		p.obs.bytesFetched.Add(int64(size))
		p.obs.inflightGauge.Set(int64(len(p.inflight)))
		p.obs.fetchRTT.Observe(endMs - startMs)
		p.Cache.Insert(cache.Entry{
			Point:   pt,
			Pos:     req.Pos,
			LeafID:  req.LeafID,
			NearSig: req.NearSig,
			Data:    data,
			Size:    size,
			Owner:   p.Player,
		})
		if ws := p.waiters[pt]; len(ws) > 0 {
			delete(p.waiters, pt)
			for _, w := range ws {
				w(size, endMs)
			}
		}
	})
}
