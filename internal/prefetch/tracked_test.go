package prefetch

import (
	"testing"

	"coterie/internal/geom"
)

func TestRequestCountsCacheStats(t *testing.T) {
	p, src, c := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 100, J: 100}
	p.Request(pt) // miss -> fetch
	if c.Stats().Misses != 1 {
		t.Fatalf("misses = %d", c.Stats().Misses)
	}
	src.completeAll()
	p.Request(pt) // hit
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRequestTrackedReportsPrefetchTask(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 10, J: 10}
	var notifiedAt float64 = -1
	issued := p.RequestTracked(pt, func(_ int, at float64) { notifiedAt = at })
	if !issued {
		t.Fatal("cold request should report an in-flight prefetch task")
	}
	if notifiedAt >= 0 {
		t.Fatal("notified before the transfer landed")
	}
	src.pending[0].done([]byte{1}, 500, 0, 7.5)
	if notifiedAt != 7.5 {
		t.Fatalf("notifiedAt = %v, want 7.5", notifiedAt)
	}
	// A second tracked request now hits the cache: no task this frame.
	if p.RequestTracked(pt, func(int, float64) {}) {
		t.Fatal("cached request should not report a prefetch task")
	}
}

func TestRequestTrackedAttachesToInflight(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 10, J: 10}
	p.Request(pt)
	if len(src.pending) != 1 {
		t.Fatalf("%d fetches", len(src.pending))
	}
	fired := 0
	if !p.RequestTracked(pt, func(int, float64) { fired++ }) {
		t.Fatal("in-flight request should report a task")
	}
	if len(src.pending) != 1 {
		t.Fatal("duplicate fetch issued for the same point")
	}
	src.completeAll()
	if fired != 1 {
		t.Fatalf("waiter fired %d times", fired)
	}
}

func TestEnsureHitNotifiesImmediately(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 5, J: 5}
	p.Request(pt)
	src.completeAll()
	var at float64 = -1
	p.Ensure(pt, 123, func(_ int, readyAt float64) { at = readyAt })
	if at != 123 {
		t.Fatalf("hit should notify with nowMs, got %v", at)
	}
	// Ensure must not have issued another fetch.
	if len(src.pending) != 0 {
		t.Fatal("ensure issued a fetch despite cache hit")
	}
}

func TestEnsureMissIssuesEmergencyFetch(t *testing.T) {
	p, src, c := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 50, J: 50}
	var at float64 = -1
	p.Ensure(pt, 0, func(_ int, readyAt float64) { at = readyAt })
	if len(src.pending) != 1 {
		t.Fatalf("%d fetches", len(src.pending))
	}
	src.pending[0].done(nil, 900, 0, 11)
	src.pending = nil
	if at != 11 {
		t.Fatalf("waiter readyAt = %v", at)
	}
	// The emergency fetch does not touch the request-stream statistics.
	if st := c.Stats(); st.Misses != 0 && st.Hits != 0 {
		t.Fatalf("ensure polluted cache stats: %+v", st)
	}
}

func TestEnsureAttachesToCoveringInflight(t *testing.T) {
	p, src, _ := newTestPrefetcher(5)
	p.Request(geom.GridPoint{I: 100, J: 100})
	if len(src.pending) != 1 {
		t.Fatalf("%d fetches", len(src.pending))
	}
	// A nearby point within the distance threshold waits on the same
	// transfer rather than fetching again.
	fired := false
	p.Ensure(geom.GridPoint{I: 101, J: 100}, 0, func(int, float64) { fired = true })
	if len(src.pending) != 1 {
		t.Fatal("covering in-flight fetch not reused")
	}
	src.completeAll()
	if !fired {
		t.Fatal("waiter on covering fetch never fired")
	}
}

func TestWaitersClearedAfterDelivery(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 7, J: 7}
	count := 0
	p.Ensure(pt, 0, func(int, float64) { count++ })
	p.Ensure(pt, 0, func(int, float64) { count++ })
	src.completeAll()
	if count != 2 {
		t.Fatalf("waiters fired %d times, want 2", count)
	}
	if len(p.waiters) != 0 {
		t.Fatalf("%d waiter entries leaked", len(p.waiters))
	}
}
