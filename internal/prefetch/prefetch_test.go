package prefetch

import (
	"testing"

	"coterie/internal/cache"
	"coterie/internal/geom"
)

// fakeSource records fetches and completes them on demand.
type fakeSource struct {
	pending []pendingFetch
}

type pendingFetch struct {
	player int
	pt     geom.GridPoint
	done   func([]byte, int, float64, float64)
}

func (f *fakeSource) Fetch(player int, pt geom.GridPoint, done func([]byte, int, float64, float64)) {
	f.pending = append(f.pending, pendingFetch{player, pt, done})
}

func (f *fakeSource) completeAll() {
	for _, p := range f.pending {
		p.done([]byte{1}, 1000, 0, 5)
	}
	f.pending = nil
}

func uniformMeta(leaf int, sig uint64, thresh float64) Meta {
	return func(geom.GridPoint) (int, uint64, float64) { return leaf, sig, thresh }
}

func newTestPrefetcher(thresh float64) (*Prefetcher, *fakeSource, *cache.Cache) {
	grid := geom.NewGrid(geom.NewRect(100, 100), 0.5)
	cfg, _ := cache.Version(3)
	c := cache.New(cfg)
	src := &fakeSource{}
	p := New(grid, uniformMeta(0, 1, thresh), c, src, 0, DefaultConfig())
	return p, src, c
}

func TestColdStartFetches(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	p.Tick(geom.V2(50, 50), geom.V2(1, 0))
	if len(src.pending) == 0 {
		t.Fatal("cold cache should trigger a fetch")
	}
	if p.Inflight() != len(src.pending) {
		t.Fatalf("inflight %d != pending %d", p.Inflight(), len(src.pending))
	}
}

func TestInflightBudgetRespected(t *testing.T) {
	p, src, _ := newTestPrefetcher(0.1) // tiny threshold: nothing covers
	for i := 0; i < 10; i++ {
		p.Tick(geom.V2(50+float64(i), 50), geom.V2(2, 0))
	}
	if len(src.pending) > p.Cfg.MaxInflight {
		t.Fatalf("%d concurrent fetches exceed budget %d", len(src.pending), p.Cfg.MaxInflight)
	}
	if p.Stats().SkippedBusy == 0 {
		t.Fatal("expected busy skips when the budget is exhausted")
	}
}

func TestCacheHitSkipsFetch(t *testing.T) {
	p, src, _ := newTestPrefetcher(5)
	p.Tick(geom.V2(50, 50), geom.V2(1, 0))
	src.completeAll()
	// Now nearby predictions are covered by the cached frame.
	p.Tick(geom.V2(50.2, 50), geom.V2(1, 0))
	if len(src.pending) != 0 {
		t.Fatalf("fetches issued despite cache coverage: %d", len(src.pending))
	}
	if p.Stats().SkippedCache == 0 {
		t.Fatal("expected cache skips")
	}
}

func TestDeliveredFramesInserted(t *testing.T) {
	p, src, c := newTestPrefetcher(3)
	p.Tick(geom.V2(50, 50), geom.V2(1, 0))
	n := len(src.pending)
	src.completeAll()
	if c.Len() != n {
		t.Fatalf("cache has %d frames after %d deliveries", c.Len(), n)
	}
	if got := p.Stats().Delivered; got != int64(n) {
		t.Fatalf("delivered = %d", got)
	}
	if p.Inflight() != 0 {
		t.Fatal("inflight not cleared")
	}
}

func TestCoveredByInflightSuppressesDuplicates(t *testing.T) {
	p, src, _ := newTestPrefetcher(5)
	p.Tick(geom.V2(50, 50), geom.V2(1, 0))
	issued := p.Stats().Issued
	// Same prediction again while the fetch is still in flight: nothing
	// new should be issued (the pending frame will cover it).
	p.Tick(geom.V2(50.05, 50), geom.V2(1, 0))
	if p.Stats().Issued != issued {
		t.Fatalf("duplicate fetch issued: %d -> %d", issued, p.Stats().Issued)
	}
	_ = src
}

func TestExplicitFetch(t *testing.T) {
	p, src, _ := newTestPrefetcher(3)
	pt := geom.GridPoint{I: 10, J: 10}
	p.Fetch(pt)
	p.Fetch(pt) // idempotent while in flight
	if len(src.pending) != 1 {
		t.Fatalf("explicit fetch issued %d requests", len(src.pending))
	}
	if src.pending[0].pt != pt {
		t.Fatalf("fetched %v", src.pending[0].pt)
	}
}

func TestPrefetchAimsAhead(t *testing.T) {
	p, src, _ := newTestPrefetcher(0.01)
	pos := geom.V2(50, 50)
	vel := geom.V2(10, 0) // fast, so the lookahead target is well ahead
	p.Tick(pos, vel)
	if len(src.pending) == 0 {
		t.Fatal("no fetch issued")
	}
	target := src.pending[0].pt
	tp := p.Grid.Pos(target)
	if tp.X <= pos.X+1 {
		t.Fatalf("prefetch target %v not ahead of player at %v", tp, pos)
	}
}

func TestMetaDrivesCacheCriteria(t *testing.T) {
	// A cached frame from a different leaf must not suppress fetching.
	grid := geom.NewGrid(geom.NewRect(100, 100), 0.5)
	cfg, _ := cache.Version(3)
	c := cache.New(cfg)
	src := &fakeSource{}
	leafOf := func(pt geom.GridPoint) (int, uint64, float64) {
		if pt.I < 100 {
			return 1, 7, 5
		}
		return 2, 7, 5
	}
	p := New(grid, leafOf, c, src, 0, DefaultConfig())
	// Seed the cache with a frame in leaf 1 near the boundary.
	c.Insert(cache.Entry{Point: geom.GridPoint{I: 99, J: 100}, Pos: grid.Pos(geom.GridPoint{I: 99, J: 100}), LeafID: 1, NearSig: 7, Size: 1})
	// Predict into leaf 2: the leaf-1 frame is within threshold distance
	// but must not count.
	p.Tick(geom.V2(50.4, 50), geom.V2(1, 0))
	if len(src.pending) == 0 {
		t.Fatal("cross-leaf cache entry suppressed a required fetch")
	}
}
