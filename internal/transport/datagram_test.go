package transport

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"

	"coterie/internal/geom"
)

func testFrame(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func offerAll(t *testing.T, r *Reassembler, dgrams [][]byte) *ReassembledFrame {
	t.Helper()
	var got *ReassembledFrame
	for _, d := range dgrams {
		if f := r.Offer(d, 0); f != nil {
			if got != nil {
				t.Fatalf("frame delivered twice")
			}
			got = f
		}
	}
	return got
}

func TestSliceFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 100, ChunkPayload, ChunkPayload + 1, 3*ChunkPayload + 17, 10 * ChunkPayload} {
		meta := FrameMeta{StreamID: 7, FrameSeq: 42, Point: geom.GridPoint{I: 3, J: -9}, Flags: DgramFlagPushed}
		data := testFrame(rng, n)
		dgrams := SliceFrame(nil, meta, data, DefaultFECGroup)
		for _, d := range dgrams {
			if len(d) > MaxDatagram {
				t.Fatalf("n=%d: datagram of %d bytes exceeds MaxDatagram", n, len(d))
			}
			if len(d) == 30 {
				t.Fatalf("n=%d: datagram is exactly an FI state long", n)
			}
			if typ := DgramType(d); typ != DgramChunk && typ != DgramParity {
				t.Fatalf("n=%d: DgramType = %d", n, typ)
			}
		}
		r := NewReassembler(ReassemblerConfig{})
		got := offerAll(t, r, dgrams)
		if got == nil {
			t.Fatalf("n=%d: frame not delivered", n)
		}
		if !bytes.Equal(got.Data, data) {
			t.Fatalf("n=%d: reassembled bytes differ", n)
		}
		if got.Point != meta.Point || got.StreamID != 7 || got.FrameSeq != 42 {
			t.Fatalf("n=%d: meta mismatch: %+v", n, got)
		}
		if got.Flags&DgramFlagPushed == 0 {
			t.Fatalf("n=%d: pushed flag lost", n)
		}
		if r.Pending() != 0 || r.PendingBytes() != 0 {
			t.Fatalf("n=%d: buffer not freed after delivery: %d frames, %d bytes", n, r.Pending(), r.PendingBytes())
		}
	}
}

// TestFECRecovery drops exactly one data chunk per FEC group; parity must
// recover every one without any retransmit.
func TestFECRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := testFrame(rng, 17*ChunkPayload+99) // 18 chunks, 3 groups at k=8
	meta := FrameMeta{StreamID: 1, FrameSeq: 1}
	dgrams := SliceFrame(nil, meta, data, DefaultFECGroup)
	// Drop the first chunk of each group (indices 0, 8, 16).
	var kept [][]byte
	for _, d := range dgrams {
		h, err := parseChunkHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		if h.typ == DgramChunk && (h.idx == 0 || h.idx == 8 || h.idx == 16) {
			continue
		}
		kept = append(kept, d)
	}
	r := NewReassembler(ReassemblerConfig{})
	got := offerAll(t, r, kept)
	if got == nil {
		t.Fatalf("frame not delivered despite per-group parity")
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatalf("recovered bytes differ")
	}
	if r.Stats().Recovered != 3 {
		t.Fatalf("Recovered = %d, want 3", r.Stats().Recovered)
	}
}

// TestNackRetransmitPath loses two chunks of one group (beyond parity),
// then replays them via SliceChunk as a sender answering a NACK would.
func TestNackRetransmitPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := testFrame(rng, 6*ChunkPayload+5)
	meta := FrameMeta{StreamID: 9, FrameSeq: 4}
	dgrams := SliceFrame(nil, meta, data, DefaultFECGroup)
	var kept [][]byte
	for _, d := range dgrams {
		h, _ := parseChunkHeader(d)
		if h.typ == DgramChunk && (h.idx == 2 || h.idx == 5) {
			continue
		}
		kept = append(kept, d)
	}
	r := NewReassembler(ReassemblerConfig{})
	if got := offerAll(t, r, kept); got != nil {
		t.Fatalf("frame delivered with two chunks missing from one group")
	}
	miss := r.Missing(9, 4)
	if len(miss) != 2 || miss[0] != 2 || miss[1] != 5 {
		t.Fatalf("Missing = %v, want [2 5]", miss)
	}
	if !r.HasTail(9, 4) {
		t.Fatalf("tail chunk present but HasTail = false")
	}
	// NACK wire round trip, then retransmit exactly the missing chunks.
	n, err := DecodeNack(EncodeNack(nil, Nack{StreamID: 9, FrameSeq: 4, Missing: miss}))
	if err != nil {
		t.Fatal(err)
	}
	var got *ReassembledFrame
	for _, idx := range n.Missing {
		d := SliceChunk(meta, data, int(idx))
		if d == nil {
			t.Fatalf("SliceChunk(%d) = nil", idx)
		}
		if f := r.Offer(d, 1); f != nil {
			got = f
		}
	}
	if got == nil || !bytes.Equal(got.Data, data) {
		t.Fatalf("retransmit did not complete the frame")
	}
	if got.Flags&DgramFlagRetransmit == 0 {
		t.Fatalf("retransmit flag lost")
	}
}

func TestReassemblerStaleAndDup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	meta := FrameMeta{StreamID: 5, FrameSeq: 100}
	data := testFrame(rng, 2*ChunkPayload)
	dgrams := SliceFrame(nil, meta, data, 0)
	r := NewReassembler(ReassemblerConfig{})
	if got := offerAll(t, r, dgrams); got == nil {
		t.Fatalf("frame not delivered")
	}
	// Replaying a delivered frame's chunk is a stale drop, not a rebuild.
	if f := r.Offer(dgrams[0], 2); f != nil {
		t.Fatalf("stale chunk delivered a frame")
	}
	if r.Stats().DroppedStale == 0 {
		t.Fatalf("stale replay not counted")
	}
	if r.Pending() != 0 {
		t.Fatalf("stale replay re-opened a partial")
	}
	// A frame far behind the reorder window is stale too.
	old := SliceFrame(nil, FrameMeta{StreamID: 5, FrameSeq: 10}, data, 0)
	if f := r.Offer(old[0], 3); f != nil || r.Pending() != 0 {
		t.Fatalf("far-stale seq accepted")
	}
	// Duplicate chunk within a live partial.
	next := SliceFrame(nil, FrameMeta{StreamID: 5, FrameSeq: 101}, data, 0)
	r.Offer(next[0], 4)
	r.Offer(next[0], 5)
	if r.Stats().DroppedDup == 0 {
		t.Fatalf("duplicate chunk not counted")
	}
}

func TestReassemblerCorruptFrameDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := testFrame(rng, 3*ChunkPayload+7)
	meta := FrameMeta{StreamID: 2, FrameSeq: 9}
	dgrams := SliceFrame(nil, meta, data, 0)
	// Flip a payload byte in the middle chunk; the header CRC now
	// disagrees with the content.
	bad := append([]byte(nil), dgrams[1]...)
	bad[dgramHdrLen+10] ^= 0xFF
	dgrams[1] = bad
	r := NewReassembler(ReassemblerConfig{})
	if got := offerAll(t, r, dgrams); got != nil {
		t.Fatalf("corrupt frame delivered")
	}
	if r.Stats().Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", r.Stats().Corrupt)
	}
	if r.Pending() != 0 || r.PendingBytes() != 0 {
		t.Fatalf("corrupt frame's buffer not freed")
	}
	// The seq was not marked delivered: a full clean resend must succeed.
	if got := offerAll(t, r, SliceFrame(nil, meta, data, 0)); got == nil {
		t.Fatalf("clean resend after corrupt drop not delivered")
	}
}

func TestReassemblerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewReassembler(ReassemblerConfig{MaxFrames: 4})
	// Open 8 partials (first chunk only, 2-chunk frames); only 4 may live.
	for seq := uint32(0); seq < 8; seq++ {
		data := testFrame(rng, ChunkPayload+1)
		d := SliceFrame(nil, FrameMeta{StreamID: 3, FrameSeq: seq}, data, 0)
		r.Offer(d[0], float64(seq))
	}
	if r.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", r.Pending())
	}
	if r.Stats().DroppedOverflow != 4 {
		t.Fatalf("DroppedOverflow = %d, want 4", r.Stats().DroppedOverflow)
	}
	// A forged chunk count over the frame-byte cap is rejected outright.
	big := make([]byte, dgramHdrLen+1)
	putChunkHeader(big, DgramChunk, 0, FrameMeta{StreamID: 4, FrameSeq: 1}, 0, uint16(chunkCount(9<<20)), 9<<20, 0, 0)
	before := r.Pending()
	if f := r.Offer(big, 99); f != nil || r.Pending() != before {
		t.Fatalf("oversized frame claim opened a partial")
	}
}

func TestReassemblerStaleSweepAndAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := testFrame(rng, 2*ChunkPayload)
	d := SliceFrame(nil, FrameMeta{StreamID: 8, FrameSeq: 1}, data, 0)
	r := NewReassembler(ReassemblerConfig{})
	r.Offer(d[0], 100)
	if got := r.Stale(104, 5); len(got) != 0 {
		t.Fatalf("frame stale before its age: %v", got)
	}
	got := r.Stale(106, 5)
	if len(got) != 1 || got[0].StreamID != 8 || got[0].FrameSeq != 1 {
		t.Fatalf("Stale = %v", got)
	}
	r.NoteNack(8, 1, 106)
	if got := r.Stale(110, 5); len(got) != 0 {
		t.Fatalf("NACK did not refresh activity")
	}
	if got := r.Stale(112, 5); len(got) != 1 || got[0].Nacks != 1 {
		t.Fatalf("nack count not tracked: %v", got)
	}
	r.Abandon(8, 1)
	if r.Pending() != 0 || r.PendingBytes() != 0 {
		t.Fatalf("abandon did not free the partial")
	}
}

func TestSubReqRoundTrip(t *testing.T) {
	s, err := DecodeSub(EncodeSub(nil, Sub{Player: 7, WantPush: true}))
	if err != nil || s.Player != 7 || !s.WantPush {
		t.Fatalf("Sub round trip: %+v, %v", s, err)
	}
	q, err := DecodeReq(EncodeReq(nil, Req{Player: 3, Point: geom.GridPoint{I: -5, J: 11}, ReqID: 88}))
	if err != nil || q.Player != 3 || q.Point != (geom.GridPoint{I: -5, J: 11}) || q.ReqID != 88 {
		t.Fatalf("Req round trip: %+v, %v", q, err)
	}
}

// TestReassemblerProperty is the randomized property test: under random
// loss, duplication, reordering and truncation the reassembler must never
// panic, never deliver a frame whose bytes differ from the original, and
// must free every buffer once streams drain.
func TestReassemblerProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		r := NewReassembler(ReassemblerConfig{MaxFrames: 8})
		frames := map[frameKey][]byte{}
		var wire [][]byte
		nFrames := 1 + rng.Intn 	(6)
		for seq := 0; seq < nFrames; seq++ {
			data := testFrame(rng, 1+rng.Intn(5*ChunkPayload))
			meta := FrameMeta{StreamID: uint32(trial % 3), FrameSeq: uint32(seq)}
			frames[frameKey{meta.StreamID, meta.FrameSeq}] = data
			fec := 0
			if rng.Intn(2) == 0 {
				fec = 1 + rng.Intn(9)
			}
			wire = SliceFrame(wire, meta, data, fec)
		}
		// Impair: drop 20%, duplicate 10%, truncate 5%, then shuffle.
		var sent [][]byte
		for _, d := range wire {
			p := rng.Float64()
			switch {
			case p < 0.20:
				continue
			case p < 0.30:
				sent = append(sent, d, d)
			case p < 0.35:
				sent = append(sent, d[:rng.Intn(len(d))])
			default:
				sent = append(sent, d)
			}
		}
		rng.Shuffle(len(sent), func(i, j int) { sent[i], sent[j] = sent[j], sent[i] })
		for i, d := range sent {
			if f := r.Offer(d, float64(i)); f != nil {
				want := frames[frameKey{f.StreamID, f.FrameSeq}]
				if !bytes.Equal(f.Data, want) {
					t.Fatalf("trial %d: delivered frame differs from original", trial)
				}
			}
		}
		// Abandon whatever is left; all buffers must free.
		for _, pend := range r.Stale(1e12, 0) {
			r.Abandon(pend.StreamID, pend.FrameSeq)
		}
		if r.Pending() != 0 || r.PendingBytes() != 0 {
			t.Fatalf("trial %d: %d partials / %d bytes leaked", trial, r.Pending(), r.PendingBytes())
		}
	}
}

// FuzzReassembler feeds arbitrary datagrams: no panic, and anything
// delivered must satisfy its own header checksum.
func FuzzReassembler(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	seed := SliceFrame(nil, FrameMeta{StreamID: 1, FrameSeq: 1}, testFrame(rng, 2*ChunkPayload+9), 4)
	for _, d := range seed {
		f.Add(d)
	}
	f.Add(EncodeNack(nil, Nack{StreamID: 1, FrameSeq: 1, Missing: []uint16{0, 1}}))
	f.Add([]byte{DgramMagic, DgramChunk})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewReassembler(ReassemblerConfig{MaxFrames: 4})
		// Offer the raw input plus a few mutations of a valid frame mixed in.
		if got := r.Offer(b, 0); got != nil {
			if crc32.ChecksumIEEE(got.Data) == 0 && len(got.Data) == 0 {
				t.Fatalf("delivered empty frame")
			}
		}
		for i, d := range seed {
			m := append([]byte(nil), d...)
			if len(b) > 0 {
				m[int(b[0])%len(m)] ^= byte(i + 1)
			}
			if got := r.Offer(m, float64(i)); got != nil && crc32.ChecksumIEEE(got.Data) != binary_crc(m) {
				// A delivered frame must match the checksum its header
				// declared; binary_crc reads it back from the datagram.
				t.Fatalf("delivered frame violating its own checksum")
			}
		}
	})
}

// binary_crc reads the declared frame CRC out of a chunk datagram.
func binary_crc(d []byte) uint32 {
	if len(d) < dgramHdrLen {
		return 0
	}
	return uint32(d[28])<<24 | uint32(d[29])<<16 | uint32(d[30])<<8 | uint32(d[31])
}
