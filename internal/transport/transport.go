// Package transport is the deployable network layer of Coterie: a
// length-prefixed binary protocol over TCP for far-BE frame prefetching
// (the paper serves frames over TCP, §5.1) plus the message types for FI
// synchronisation. The simulated testbed (internal/netsim) models the
// medium for deterministic experiments; this package runs the same request
// flow over real sockets for cmd/coterie-server and cmd/coterie-client.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"coterie/internal/geom"
	"coterie/internal/obs"
)

// DefaultDialTimeout bounds connection establishment when the caller does
// not choose a timeout. An unreachable host must fail in seconds — a
// frame pipeline stalled on the kernel's minutes-long connect timeout is
// indistinguishable from a hang.
const DefaultDialTimeout = 3 * time.Second

// Dial opens a TCP connection with a bounded connect timeout (<= 0 means
// DefaultDialTimeout). Every dial in the system goes through here so no
// dead peer or mistyped address can stall a caller for the kernel
// default.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// MsgType identifies a protocol message.
type MsgType uint8

const (
	// MsgHello opens a session: client id and game name.
	MsgHello MsgType = iota + 1
	// MsgFrameRequest asks for the far-BE frame of a grid point.
	MsgFrameRequest
	// MsgFrameReply carries an encoded far-BE frame.
	MsgFrameReply
	// MsgFISync carries a foreground-interaction state update and returns
	// the other players' states.
	MsgFISync
	// MsgError carries a server-side error string.
	MsgError
	// MsgBye closes the session.
	MsgBye
	// MsgEvictNotice tells the server which grid-point frames the client
	// has dropped from its reference cache, so the server stops encoding
	// deltas against them. Fire-and-forget: no reply.
	MsgEvictNotice
	// MsgPeerFrameRequest is a node-to-node frame fetch inside a cluster:
	// a non-owner node proxies a client's request to the grid point's
	// rendezvous owner. The payload is a FrameRequest, so the deadline
	// propagates across the hop.
	MsgPeerFrameRequest
	// MsgPeerFrameReply answers a peer fetch with a FrameReply (always
	// intra-coded — delta references are per client session and do not
	// cross nodes), carrying the owner's v2 stage timings end-to-end.
	MsgPeerFrameReply
)

// maxMsgType is the highest known message type; ReadMessage and the
// metrics tables reject/ignore anything past it.
const maxMsgType = MsgPeerFrameReply

// MaxPayload bounds message payloads (a 4K panoramic frame fits well
// within this).
const MaxPayload = 64 << 20

// Message is one framed protocol message.
type Message struct {
	Type    MsgType
	Payload []byte
}

// WriteMessage frames and writes a message: 1-byte type, 4-byte big-endian
// length, payload.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d exceeds limit", len(m.Payload))
	}
	var hdr [5]byte
	hdr[0] = byte(m.Type)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(m.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message. A header with an unknown type or
// an oversized length fails immediately — before any payload read — so a
// corrupt or hostile peer cannot make the reader block on garbage.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if t := MsgType(hdr[0]); t < MsgHello || t > maxMsgType {
		return Message{}, fmt.Errorf("transport: unknown message type %d", hdr[0])
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return Message{}, fmt.Errorf("transport: payload %d exceeds limit", n)
	}
	m := Message{Type: MsgType(hdr[0])}
	if n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Message{}, err
		}
	}
	return m, nil
}

// Hello is the session-opening payload.
type Hello struct {
	Player uint8
	Game   string
}

// EncodeHello serialises a Hello.
func EncodeHello(h Hello) []byte {
	b := []byte{h.Player, byte(len(h.Game))}
	return append(b, h.Game...)
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < 2 {
		return Hello{}, errors.New("transport: short hello")
	}
	n := int(b[1])
	if len(b) < 2+n {
		return Hello{}, errors.New("transport: truncated hello")
	}
	return Hello{Player: b[0], Game: string(b[2 : 2+n])}, nil
}

// frameRequestLen and frameReplyHdrLen are the fixed wire sizes of the
// v2 frame messages: the v1 point fields plus the trace context (request
// id and cross-node timestamps). Both are fixed-size headers so encoding
// stays one buffer allocation and decoding is bounds-checked up front.
const (
	frameRequestLen  = 1 + 4 + 4 + 4 + 8 + 8                       // player, point, req id, sent ms, deadline ms
	frameReplyHdrLen = 4 + 4 + 4 + 8 + 8 + 8 + 8*4 + 1 + 1 + 1 + 8 // point, req id, 3 stamps, 4 stage spans, kind, rung, origin, ref point
)

// FrameEncoding says how a FrameReply's Data payload is coded.
type FrameEncoding uint8

const (
	// FrameIntra is a self-contained frame: codec.Decode suffices.
	FrameIntra FrameEncoding = iota
	// FrameDelta is a residual against the reference grid point named in
	// FrameReply.Ref; the client reconstructs with codec.DeltaDecode and
	// its cached decode of that reference.
	FrameDelta
)

// DegradeRung tags which rung of the server's quality ladder produced a
// reply's frame. RungExact is the normal path; the others are served
// only when the request's deadline is at risk, and every rung is bounded
// to SSIM ≥ 0.90 against the exact render (a stale frame by the leaf's
// DistThresh calibration, a reprojection or low-res render by an
// explicit ray-cast band check).
type DegradeRung uint8

const (
	// RungExact is the full-quality serve path (store hit or full render).
	RungExact DegradeRung = iota
	// RungStale is a cached frame of a nearby grid point within the
	// leaf's DistThresh, served in place of rendering the requested one.
	RungStale
	// RungReproject is an SSIM-verified constant-depth reprojection from
	// a cached panorama, forced by deadline pressure.
	RungReproject
	// RungLowRes is a reduced-resolution render upscaled to full size and
	// SSIM-verified; it is served but never cached as an exact frame.
	RungLowRes
)

// FrameOrigin tags which node produced a reply's frame bytes inside a
// cluster. Single-node servers always report OriginLocal; the other
// values let clients and QoE accounting see where cluster work landed.
type FrameOrigin uint8

const (
	// OriginLocal: the serving node owned the point (or runs standalone)
	// and served from its own store or renderer.
	OriginLocal FrameOrigin = iota
	// OriginPeer: the serving node proxied the request to the point's
	// rendezvous owner and relayed (and cached) the owner's frame.
	OriginPeer
	// OriginFailover: the point is owned by a peer, but the peer was down
	// or the hop did not fit the deadline, so the serving node re-rendered
	// locally (byte-identical output, at local render cost).
	OriginFailover
)

// FrameRequest asks for the encoded far-BE panorama of a grid point. The
// request carries a per-connection request id and the client's send
// timestamp (client clock, wall milliseconds) so the reply can close the
// cross-node trace: the server echoes both, letting the client match the
// reply to the request and estimate the clock offset NTP-style.
type FrameRequest struct {
	Player uint8
	Point  geom.GridPoint
	// ReqID matches replies to requests (monotonic per connection).
	ReqID uint32
	// SentMs is the client's wall-clock send time in milliseconds.
	SentMs float64
	// DeadlineMs is the display deadline for this frame in *server*
	// wall-clock milliseconds (the client translates its vsync schedule
	// through the NTP-style clock offset it estimates from the reply
	// stamps). Zero means no deadline: the request is never shed or
	// degraded and sorts after all deadline traffic in the render queue.
	DeadlineMs float64
}

// EncodeFrameRequest serialises a FrameRequest.
func EncodeFrameRequest(r FrameRequest) []byte {
	b := make([]byte, frameRequestLen)
	b[0] = r.Player
	binary.BigEndian.PutUint32(b[1:5], uint32(int32(r.Point.I)))
	binary.BigEndian.PutUint32(b[5:9], uint32(int32(r.Point.J)))
	binary.BigEndian.PutUint32(b[9:13], r.ReqID)
	binary.BigEndian.PutUint64(b[13:21], math.Float64bits(r.SentMs))
	binary.BigEndian.PutUint64(b[21:29], math.Float64bits(r.DeadlineMs))
	return b
}

// DecodeFrameRequest parses a FrameRequest payload.
func DecodeFrameRequest(b []byte) (FrameRequest, error) {
	if len(b) != frameRequestLen {
		return FrameRequest{}, fmt.Errorf("transport: frame request length %d", len(b))
	}
	return FrameRequest{
		Player: b[0],
		Point: geom.GridPoint{
			I: int(int32(binary.BigEndian.Uint32(b[1:5]))),
			J: int(int32(binary.BigEndian.Uint32(b[5:9]))),
		},
		ReqID:      binary.BigEndian.Uint32(b[9:13]),
		SentMs:     math.Float64frombits(binary.BigEndian.Uint64(b[13:21])),
		DeadlineMs: math.Float64frombits(binary.BigEndian.Uint64(b[21:29])),
	}, nil
}

// FrameReply carries the frame for a grid point plus the server-side leg
// of the trace context: when the request was read and the reply written
// (server clock, wall milliseconds — the NTP t1/t2 stamps), and how the
// server-side span decomposes into queue wait, singleflight render, and
// encode. The client derives network transit as its measured RTT minus
// the server-side stages.
type FrameReply struct {
	Point geom.GridPoint
	// ReqID and ClientSentMs echo the request's trace context.
	ReqID        uint32
	ClientSentMs float64
	// RecvMs and SendMs bracket the server-side span (server clock).
	RecvMs float64
	SendMs float64
	// QueueMs is the wait before stage work began: connection queueing
	// plus singleflight waiting on another request's render of the same
	// point. RenderMs and EncodeMs are the render/encode spans, zero when
	// the frame store already held the frame.
	QueueMs  float64
	RenderMs float64
	EncodeMs float64
	// HopMs is the cluster proxy overhead for peer-origin frames: the
	// proxying node's wall time around its peer fetch (dial/pool wait plus
	// hop network transit) minus the owner's own stages, which are echoed
	// in QueueMs/RenderMs/EncodeMs. Zero for locally served frames, so the
	// client-side identity Net+Hop+Queue+Render+Encode = RTT holds on
	// every origin.
	HopMs float64
	// Kind says how Data is coded (intra or delta); Ref names the delta's
	// reference grid point and is meaningful only when Kind is FrameDelta.
	Kind FrameEncoding
	// Rung tags which rung of the quality-degrade ladder served the
	// frame, so clients and QoE accounting see deadline-driven
	// degradation explicitly rather than inferring it from latency.
	Rung DegradeRung
	// Origin tags which node produced the bytes (local, peer fetch, or
	// failover re-render) so cluster serving is visible end-to-end.
	Origin FrameOrigin
	Ref    geom.GridPoint
	Data   []byte
}

// EncodeFrameReply serialises a FrameReply (one buffer allocation; the
// trace context rides in the fixed header before the frame bytes).
func EncodeFrameReply(r FrameReply) []byte {
	b := make([]byte, frameReplyHdrLen, frameReplyHdrLen+len(r.Data))
	binary.BigEndian.PutUint32(b[0:4], uint32(int32(r.Point.I)))
	binary.BigEndian.PutUint32(b[4:8], uint32(int32(r.Point.J)))
	binary.BigEndian.PutUint32(b[8:12], r.ReqID)
	binary.BigEndian.PutUint64(b[12:20], math.Float64bits(r.ClientSentMs))
	binary.BigEndian.PutUint64(b[20:28], math.Float64bits(r.RecvMs))
	binary.BigEndian.PutUint64(b[28:36], math.Float64bits(r.SendMs))
	binary.BigEndian.PutUint64(b[36:44], math.Float64bits(r.QueueMs))
	binary.BigEndian.PutUint64(b[44:52], math.Float64bits(r.RenderMs))
	binary.BigEndian.PutUint64(b[52:60], math.Float64bits(r.EncodeMs))
	binary.BigEndian.PutUint64(b[60:68], math.Float64bits(r.HopMs))
	b[68] = byte(r.Kind)
	b[69] = byte(r.Rung)
	b[70] = byte(r.Origin)
	binary.BigEndian.PutUint32(b[71:75], uint32(int32(r.Ref.I)))
	binary.BigEndian.PutUint32(b[75:79], uint32(int32(r.Ref.J)))
	return append(b, r.Data...)
}

// DecodeFrameReply parses a FrameReply payload. The Data slice aliases b.
// An unknown frame-kind or degrade-rung byte is rejected before the
// payload is touched (mirroring ReadMessage's unknown-type guard): a
// peer speaking a newer frame encoding must fail loudly, not hand
// garbage to the codec.
func DecodeFrameReply(b []byte) (FrameReply, error) {
	if len(b) < frameReplyHdrLen {
		return FrameReply{}, errors.New("transport: short frame reply")
	}
	if k := FrameEncoding(b[68]); k > FrameDelta {
		return FrameReply{}, fmt.Errorf("transport: unknown frame kind %d", b[68])
	}
	if g := DegradeRung(b[69]); g > RungLowRes {
		return FrameReply{}, fmt.Errorf("transport: unknown degrade rung %d", b[69])
	}
	if o := FrameOrigin(b[70]); o > OriginFailover {
		return FrameReply{}, fmt.Errorf("transport: unknown frame origin %d", b[70])
	}
	return FrameReply{
		Point: geom.GridPoint{
			I: int(int32(binary.BigEndian.Uint32(b[0:4]))),
			J: int(int32(binary.BigEndian.Uint32(b[4:8]))),
		},
		ReqID:        binary.BigEndian.Uint32(b[8:12]),
		ClientSentMs: math.Float64frombits(binary.BigEndian.Uint64(b[12:20])),
		RecvMs:       math.Float64frombits(binary.BigEndian.Uint64(b[20:28])),
		SendMs:       math.Float64frombits(binary.BigEndian.Uint64(b[28:36])),
		QueueMs:      math.Float64frombits(binary.BigEndian.Uint64(b[36:44])),
		RenderMs:     math.Float64frombits(binary.BigEndian.Uint64(b[44:52])),
		EncodeMs:     math.Float64frombits(binary.BigEndian.Uint64(b[52:60])),
		HopMs:        math.Float64frombits(binary.BigEndian.Uint64(b[60:68])),
		Kind:         FrameEncoding(b[68]),
		Rung:         DegradeRung(b[69]),
		Origin:       FrameOrigin(b[70]),
		Ref: geom.GridPoint{
			I: int(int32(binary.BigEndian.Uint32(b[71:75]))),
			J: int(int32(binary.BigEndian.Uint32(b[75:79]))),
		},
		Data: b[frameReplyHdrLen:],
	}, nil
}

// EncodeEvictNotice serialises the grid points of a MsgEvictNotice: a
// flat array of (I, J) int32 pairs, 8 bytes per point.
func EncodeEvictNotice(pts []geom.GridPoint) []byte {
	b := make([]byte, 8*len(pts))
	for k, p := range pts {
		binary.BigEndian.PutUint32(b[8*k:], uint32(int32(p.I)))
		binary.BigEndian.PutUint32(b[8*k+4:], uint32(int32(p.J)))
	}
	return b
}

// DecodeEvictNotice parses a MsgEvictNotice payload.
func DecodeEvictNotice(b []byte) ([]geom.GridPoint, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("transport: evict notice length %d not a multiple of 8", len(b))
	}
	pts := make([]geom.GridPoint, len(b)/8)
	for k := range pts {
		pts[k] = geom.GridPoint{
			I: int(int32(binary.BigEndian.Uint32(b[8*k:]))),
			J: int(int32(binary.BigEndian.Uint32(b[8*k+4:]))),
		}
	}
	return pts, nil
}

// msgName returns the metric label of a message type.
func msgName(t MsgType) string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgFrameRequest:
		return "frame_request"
	case MsgFrameReply:
		return "frame_reply"
	case MsgFISync:
		return "fi_sync"
	case MsgError:
		return "error"
	case MsgBye:
		return "bye"
	case MsgEvictNotice:
		return "evict_notice"
	case MsgPeerFrameRequest:
		return "peer_frame_request"
	case MsgPeerFrameReply:
		return "peer_frame_reply"
	default:
		return "unknown"
	}
}

// frameOverhead is the wire framing cost accounted per message: 1 type
// byte plus the 4-byte length prefix.
const frameOverhead = 5

// Metrics holds per-message-type transfer instruments for one direction
// pair, resolved once so the per-message cost is two atomic adds. A nil
// *Metrics disables accounting.
type Metrics struct {
	sentCount [maxMsgType + 1]*obs.Counter
	sentBytes [maxMsgType + 1]*obs.Counter
	recvCount [maxMsgType + 1]*obs.Counter
	recvBytes [maxMsgType + 1]*obs.Counter
}

// NewMetrics resolves per-message-type counters under
// "<prefix>.sent.<type>.count|bytes" and the recv equivalents. Byte
// counts include the 5-byte frame header. Returns nil (disabled) for a
// nil registry.
func NewMetrics(r *obs.Registry, prefix string) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{}
	for t := MsgHello; t <= maxMsgType; t++ {
		n := msgName(t)
		m.sentCount[t] = r.Counter(prefix + ".sent." + n + ".count")
		m.sentBytes[t] = r.Counter(prefix + ".sent." + n + ".bytes")
		m.recvCount[t] = r.Counter(prefix + ".recv." + n + ".count")
		m.recvBytes[t] = r.Counter(prefix + ".recv." + n + ".bytes")
	}
	return m
}

func (m *Metrics) sent(msg Message) {
	if m == nil || msg.Type < MsgHello || msg.Type > maxMsgType {
		return
	}
	m.sentCount[msg.Type].Inc()
	m.sentBytes[msg.Type].Add(int64(len(msg.Payload) + frameOverhead))
}

func (m *Metrics) received(msg Message) {
	if m == nil || msg.Type < MsgHello || msg.Type > maxMsgType {
		return
	}
	m.recvCount[msg.Type].Inc()
	m.recvBytes[msg.Type].Add(int64(len(msg.Payload) + frameOverhead))
}

// Conn wraps a stream with buffered message IO.
type Conn struct {
	rw  io.ReadWriter
	br  *bufio.Reader
	bw  *bufio.Writer
	err error
	m   *Metrics
}

// Instrument attaches per-message-type metrics to the connection (nil
// detaches). Call before concurrent use.
func (c *Conn) Instrument(m *Metrics) { c.m = m }

// NewConn wraps a stream (typically a net.Conn).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

// Send writes and flushes one message.
func (c *Conn) Send(m Message) error {
	if c.err != nil {
		return c.err
	}
	if err := WriteMessage(c.bw, m); err != nil {
		c.err = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.err = err
		return err
	}
	c.m.sent(m)
	return nil
}

// Recv reads one message.
func (c *Conn) Recv() (Message, error) {
	if c.err != nil {
		return Message{}, c.err
	}
	m, err := ReadMessage(c.br)
	if err != nil {
		c.err = err
		return m, err
	}
	c.m.received(m)
	return m, nil
}
