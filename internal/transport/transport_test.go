package transport

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"

	"coterie/internal/geom"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgHello, Payload: []byte("hi")},
		{Type: MsgFrameRequest, Payload: make([]byte, 9)},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
}

func TestMessageRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgFrameReply, Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Fatal("oversized write accepted")
	}
	// Forged oversized header.
	hdr := []byte{byte(MsgFrameReply), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized read accepted")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncated payload: header promises 5 bytes, stream ends early.
	if _, err := ReadMessage(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Truncated header: fewer than the 5 framing bytes.
	for n := 0; n < 5; n++ {
		if _, err := ReadMessage(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncated header (%d bytes) accepted", n)
		}
	}
}

func TestReadMessageUnknownType(t *testing.T) {
	for _, typ := range []byte{0, byte(maxMsgType) + 1, 0x7F, 0xFF} {
		hdr := []byte{typ, 0, 0, 0, 0}
		if _, err := ReadMessage(bytes.NewReader(hdr)); err == nil {
			t.Fatalf("unknown type %d accepted", typ)
		}
	}
}

func TestConnRecvFailsCleanly(t *testing.T) {
	// Recv over a Conn must surface framing errors (and make them sticky)
	// rather than blocking or yielding garbage.
	cases := map[string][]byte{
		"unknown type":      {0x7F, 0, 0, 0, 0},
		"oversized length":  {byte(MsgFrameReply), 0xFF, 0xFF, 0xFF, 0xFF},
		"truncated header":  {byte(MsgHello), 0, 0},
		"truncated payload": {byte(MsgHello), 0, 0, 0, 9, 'h', 'i'},
	}
	for name, raw := range cases {
		c := NewConn(bytes.NewBuffer(raw))
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s: Recv accepted", name)
			continue
		}
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s: error not sticky", name)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Player: 3, Game: "viking"}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil || got != h {
		t.Fatalf("got %+v err %v", got, err)
	}
	if _, err := DecodeHello([]byte{1}); err == nil {
		t.Fatal("short hello accepted")
	}
	if _, err := DecodeHello([]byte{1, 10, 'a'}); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestFrameRequestRoundTrip(t *testing.T) {
	f := func(player uint8, i, j int32, reqID uint32, sentMs, deadlineMs float64) bool {
		r := FrameRequest{
			Player:     player,
			Point:      geom.GridPoint{I: int(i), J: int(j)},
			ReqID:      reqID,
			SentMs:     sentMs,
			DeadlineMs: deadlineMs,
		}
		got, err := DecodeFrameRequest(EncodeFrameRequest(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRequestRejectsTruncated(t *testing.T) {
	full := EncodeFrameRequest(FrameRequest{Player: 1, ReqID: 7, SentMs: 123.5})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeFrameRequest(full[:n]); err == nil {
			t.Fatalf("truncated request (%d of %d bytes) accepted", n, len(full))
		}
	}
	// Trailing garbage must be rejected too: the request is fixed-size.
	if _, err := DecodeFrameRequest(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("oversized request accepted")
	}
}

func TestFrameReplyRoundTrip(t *testing.T) {
	r := FrameReply{
		Point:        geom.GridPoint{I: -5, J: 1 << 20},
		ReqID:        42,
		ClientSentMs: 1000.25,
		RecvMs:       2000.5,
		SendMs:       2024.75,
		QueueMs:      3.5,
		RenderMs:     12.25,
		EncodeMs:     9,
		HopMs:        1.75,
		Kind:         FrameDelta,
		Rung:         RungReproject,
		Origin:       OriginPeer,
		Ref:          geom.GridPoint{I: -6, J: 1<<20 - 1},
		Data:         []byte{9, 8, 7},
	}
	got, err := DecodeFrameReply(EncodeFrameReply(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Point != r.Point || got.ReqID != r.ReqID ||
		got.ClientSentMs != r.ClientSentMs || got.RecvMs != r.RecvMs || got.SendMs != r.SendMs ||
		got.QueueMs != r.QueueMs || got.RenderMs != r.RenderMs || got.EncodeMs != r.EncodeMs ||
		got.HopMs != r.HopMs ||
		got.Kind != r.Kind || got.Rung != r.Rung || got.Origin != r.Origin || got.Ref != r.Ref ||
		!bytes.Equal(got.Data, r.Data) {
		t.Fatalf("got %+v want %+v", got, r)
	}
}

func TestFrameReplyRejectsUnknownKind(t *testing.T) {
	// The frame-kind byte is validated before the payload is touched, so
	// a frame coded in a format this client cannot reconstruct fails at
	// the transport layer, not inside the codec.
	full := EncodeFrameReply(FrameReply{ReqID: 1, Data: []byte("frame")})
	for _, kind := range []byte{byte(FrameDelta) + 1, 0x7F, 0xFF} {
		forged := append([]byte(nil), full...)
		forged[68] = kind
		if _, err := DecodeFrameReply(forged); err == nil {
			t.Fatalf("unknown frame kind %d accepted", kind)
		}
	}
}

func TestFrameReplyRejectsUnknownRung(t *testing.T) {
	// Same pre-payload guard for the degrade-rung byte: a server speaking
	// a newer quality ladder must fail loudly at the transport layer.
	full := EncodeFrameReply(FrameReply{ReqID: 1, Data: []byte("frame")})
	for _, rung := range []byte{byte(RungLowRes) + 1, 0x7F, 0xFF} {
		forged := append([]byte(nil), full...)
		forged[69] = rung
		if _, err := DecodeFrameReply(forged); err == nil {
			t.Fatalf("unknown degrade rung %d accepted", rung)
		}
	}
	// Every defined rung round-trips.
	for _, rung := range []DegradeRung{RungExact, RungStale, RungReproject, RungLowRes} {
		got, err := DecodeFrameReply(EncodeFrameReply(FrameReply{Rung: rung}))
		if err != nil || got.Rung != rung {
			t.Fatalf("rung %d: got %d, err %v", rung, got.Rung, err)
		}
	}
}

func TestFrameReplyRejectsUnknownOrigin(t *testing.T) {
	// Same pre-payload guard for the frame-origin byte: a node speaking a
	// newer cluster protocol must fail loudly at the transport layer.
	full := EncodeFrameReply(FrameReply{ReqID: 1, Data: []byte("frame")})
	for _, origin := range []byte{byte(OriginFailover) + 1, 0x7F, 0xFF} {
		forged := append([]byte(nil), full...)
		forged[70] = origin
		if _, err := DecodeFrameReply(forged); err == nil {
			t.Fatalf("unknown frame origin %d accepted", origin)
		}
	}
	for _, origin := range []FrameOrigin{OriginLocal, OriginPeer, OriginFailover} {
		got, err := DecodeFrameReply(EncodeFrameReply(FrameReply{Origin: origin}))
		if err != nil || got.Origin != origin {
			t.Fatalf("origin %d: got %d, err %v", origin, got.Origin, err)
		}
	}
}

func TestPeerMessageTypesFrame(t *testing.T) {
	// The peer fetch rides the normal framing: both peer types round-trip
	// through Write/ReadMessage and carry the v2 frame payloads verbatim.
	var buf bytes.Buffer
	req := EncodeFrameRequest(FrameRequest{Player: 1, Point: geom.GridPoint{I: 3, J: 4}, DeadlineMs: 99.5})
	reply := EncodeFrameReply(FrameReply{Point: geom.GridPoint{I: 3, J: 4}, Origin: OriginLocal, Data: []byte("f")})
	for _, m := range []Message{
		{Type: MsgPeerFrameRequest, Payload: req},
		{Type: MsgPeerFrameReply, Payload: reply},
	} {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("got %+v want %+v", got, m)
		}
	}
}

func TestDialBounded(t *testing.T) {
	// Dial against a live listener succeeds well within the bound.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Dial against a dead address must return (not hang) within the
	// configured timeout plus slack — the staged pipeline sits behind this
	// call during peer fetches.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	start := time.Now()
	if conn, err := Dial(deadAddr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Skip("closed port still accepting (port reused); cannot assert timeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded dial took %v", elapsed)
	}
}

func TestEvictNoticeRoundTrip(t *testing.T) {
	f := func(raw []int32) bool {
		pts := make([]geom.GridPoint, 0, len(raw)/2)
		for k := 0; k+1 < len(raw); k += 2 {
			pts = append(pts, geom.GridPoint{I: int(raw[k]), J: int(raw[k+1])})
		}
		got, err := DecodeEvictNotice(EncodeEvictNotice(pts))
		if err != nil || len(got) != len(pts) {
			return false
		}
		for k := range pts {
			if got[k] != pts[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvictNoticeRejectsTruncated(t *testing.T) {
	full := EncodeEvictNotice([]geom.GridPoint{{I: 1, J: 2}, {I: -3, J: 4}})
	for n := 1; n < len(full); n++ {
		if n%8 == 0 {
			continue // a shorter whole number of points is valid
		}
		if _, err := DecodeEvictNotice(full[:n]); err == nil {
			t.Fatalf("ragged evict notice (%d bytes) accepted", n)
		}
	}
	if got, err := DecodeEvictNotice(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty notice: got %v, %v", got, err)
	}
}

func TestFrameReplyRejectsTruncatedHeader(t *testing.T) {
	full := EncodeFrameReply(FrameReply{ReqID: 1, Data: []byte("frame")})
	for n := 0; n < frameReplyHdrLen; n++ {
		if _, err := DecodeFrameReply(full[:n]); err == nil {
			t.Fatalf("truncated reply header (%d of %d bytes) accepted", n, frameReplyHdrLen)
		}
	}
	// A header with no data is a valid (empty) frame.
	got, err := DecodeFrameReply(full[:frameReplyHdrLen])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 {
		t.Fatalf("expected empty data, got %d bytes", len(got.Data))
	}
}

func TestFrameCodecAllocationFree(t *testing.T) {
	// The frame hot path budgets one buffer allocation per encode and zero
	// per decode (Data aliases the input); the v2 trace context must not
	// add any.
	req := FrameRequest{Player: 2, Point: geom.GridPoint{I: 4, J: 5}, ReqID: 9, SentMs: 77.5}
	if allocs := testing.AllocsPerRun(100, func() {
		EncodeFrameRequest(req)
	}); allocs > 1 {
		t.Errorf("EncodeFrameRequest allocates %.0f times per op, budget 1", allocs)
	}
	reqBuf := EncodeFrameRequest(req)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeFrameRequest(reqBuf); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("DecodeFrameRequest allocates %.0f times per op, budget 0", allocs)
	}
	reply := FrameReply{Point: geom.GridPoint{I: 4, J: 5}, ReqID: 9, Data: make([]byte, 4096)}
	if allocs := testing.AllocsPerRun(100, func() {
		EncodeFrameReply(reply)
	}); allocs > 1 {
		t.Errorf("EncodeFrameReply allocates %.0f times per op, budget 1", allocs)
	}
	replyBuf := EncodeFrameReply(reply)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeFrameReply(replyBuf); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("DecodeFrameReply allocates %.0f times per op, budget 0", allocs)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		m, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		req, err := DecodeFrameRequest(m.Payload)
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(Message{
			Type:    MsgFrameReply,
			Payload: EncodeFrameReply(FrameReply{Point: req.Point, Data: []byte("frame")}),
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewConn(conn)
	pt := geom.GridPoint{I: 10, J: 20}
	if err := c.Send(Message{Type: MsgFrameRequest, Payload: EncodeFrameRequest(FrameRequest{Player: 1, Point: pt})}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := DecodeFrameReply(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Point != pt || string(reply.Data) != "frame" {
		t.Fatalf("reply %+v", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnStickyError(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("empty stream should error")
	}
	if err := c.Send(Message{Type: MsgBye}); err == nil {
		t.Fatal("error should be sticky")
	}
}
