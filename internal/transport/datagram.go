package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"coterie/internal/geom"
	"coterie/internal/obs"
)

// The datagram frame path: encoded far-BE frames sliced into MTU-sized
// UDP datagrams with one XOR-parity datagram per k-chunk FEC group, so a
// single loss inside a group recovers without a round trip, and a
// NACK-based retransmit message for the losses parity cannot cover. The
// same socket carries FI sync; frame-path datagrams are distinguished by
// a leading magic byte and are never exactly fisync.WireSize long (the
// encoders pad), so the two wire formats cannot collide.
//
// Header layout of a chunk or parity datagram (dgramHdrLen bytes):
//
//	[0]     magic (DgramMagic)
//	[1]     type  (DgramChunk | DgramParity)
//	[2]     flags (DgramFlagPushed | DgramFlagRetransmit)
//	[3]     FEC group size k (0 = no parity for this frame)
//	[4:8]   stream id   — one logical stream per session
//	[8:12]  frame seq   — monotonic per stream
//	[12:14] chunk index — data chunk position; FEC group index for parity
//	[14:16] chunk count — data chunks in the frame
//	[16:20] grid point I (int32)
//	[20:24] grid point J (int32)
//	[24:28] frame length in bytes
//	[28:32] CRC-32 (IEEE) of the whole encoded frame
//
// Every chunk repeats the full header: any single datagram is enough to
// learn the frame's identity, size and checksum, so reassembly needs no
// out-of-band setup and tolerates arbitrary loss of its siblings.

// DgramMagic is the first byte of every frame-path datagram.
const DgramMagic = 0xC7

// Frame-path datagram types (second byte).
const (
	// DgramSub subscribes the sender's address to the datagram frame
	// path: replies to it are typed, and (with DgramFlagWantPush) the
	// server may push predicted frames unsolicited.
	DgramSub = 0x01
	// DgramReq asks for one grid point's frame over UDP.
	DgramReq = 0x02
	// DgramChunk carries one slice of an encoded frame.
	DgramChunk = 0x03
	// DgramParity carries the XOR of one FEC group's chunk payloads.
	DgramParity = 0x04
	// DgramNack lists chunk indices the receiver is missing.
	DgramNack = 0x05
	// DgramFIReply wraps a concatenation of fisync states (the FI sync
	// answer to a subscribed client, which must be demuxable from frame
	// chunks on the shared socket).
	DgramFIReply = 0x06
)

// Chunk/parity flags.
const (
	// DgramFlagPushed marks an unsolicited server push.
	DgramFlagPushed = 1 << 0
	// DgramFlagRetransmit marks a NACK-triggered resend.
	DgramFlagRetransmit = 1 << 1
)

// DgramFlagWantPush, on a DgramSub, opts the subscriber into
// trajectory-driven push.
const DgramFlagWantPush = 1 << 0

const (
	// MaxDatagram is the largest frame-path datagram ever emitted: safely
	// under the common 1500-byte ethernet MTU so no IP fragmentation.
	MaxDatagram = 1400
	// dgramHdrLen is the chunk/parity header size.
	dgramHdrLen = 32
	// ChunkPayload is the data bytes per chunk; every chunk except a
	// frame's last carries exactly this many, which is what lets parity
	// recovery derive the missing chunk's length from its index.
	ChunkPayload = MaxDatagram - dgramHdrLen
	// MaxFrameChunks bounds the chunk count a datagram may claim; with
	// ChunkPayload this caps a reassembled frame at ~22 MB, far above any
	// encoded panorama but small enough that a forged count cannot
	// reserve unbounded memory.
	MaxFrameChunks = 16384
	// MaxNackChunks bounds the missing-index list of one NACK.
	MaxNackChunks = 64
	// fiStateLen is fisync.WireSize: the one datagram length the encoders
	// must avoid (see padDgram), because a bare FI state upload is exactly
	// this long and carries no magic byte.
	fiStateLen = 30
)

// DefaultFECGroup is the default k: one parity datagram per 8 chunks.
const DefaultFECGroup = 8

// FrameMeta identifies a frame on the datagram path.
type FrameMeta struct {
	StreamID uint32
	FrameSeq uint32
	Point    geom.GridPoint
	Flags    byte
}

// padDgram keeps a frame-path datagram from being exactly fisync.WireSize
// long; the decoder side ignores bytes past the encoded length.
func padDgram(b []byte) []byte {
	if len(b) == fiStateLen {
		return append(b, 0)
	}
	return b
}

// chunkCount returns the number of data chunks an n-byte frame slices
// into.
func chunkCount(n int) int {
	return (n + ChunkPayload - 1) / ChunkPayload
}

// chunkLen returns the payload length of chunk idx of an n-byte frame.
func chunkLen(n, cnt, idx int) int {
	if idx == cnt-1 {
		return n - (cnt-1)*ChunkPayload
	}
	return ChunkPayload
}

// putChunkHeader writes the shared chunk/parity header.
func putChunkHeader(dst []byte, typ, flags byte, m FrameMeta, idx, cnt uint16, total int, crc uint32, fecK int) {
	dst[0] = DgramMagic
	dst[1] = typ
	dst[2] = flags
	dst[3] = byte(fecK)
	binary.BigEndian.PutUint32(dst[4:], m.StreamID)
	binary.BigEndian.PutUint32(dst[8:], m.FrameSeq)
	binary.BigEndian.PutUint16(dst[12:], idx)
	binary.BigEndian.PutUint16(dst[14:], cnt)
	binary.BigEndian.PutUint32(dst[16:], uint32(int32(m.Point.I)))
	binary.BigEndian.PutUint32(dst[20:], uint32(int32(m.Point.J)))
	binary.BigEndian.PutUint32(dst[24:], uint32(total))
	binary.BigEndian.PutUint32(dst[28:], crc)
}

// SliceFrame slices an encoded frame into chunk datagrams plus one XOR
// parity datagram per fecK-chunk group (fecK <= 0 disables FEC), appending
// to dst and returning it. Every returned slice is freshly allocated; the
// caller may hand them to a socket or a simulator without copying. Empty
// frames are not sliceable (the frame path never carries them).
func SliceFrame(dst [][]byte, m FrameMeta, data []byte, fecK int) [][]byte {
	if len(data) == 0 {
		return dst
	}
	if fecK < 0 || fecK > 255 {
		fecK = 0
	}
	cnt := chunkCount(len(data))
	crc := crc32.ChecksumIEEE(data)
	var parity []byte
	var parityLen int
	group := 0
	for idx := 0; idx < cnt; idx++ {
		payload := data[idx*ChunkPayload : idx*ChunkPayload+chunkLen(len(data), cnt, idx)]
		d := make([]byte, dgramHdrLen+len(payload))
		putChunkHeader(d, DgramChunk, m.Flags, m, uint16(idx), uint16(cnt), len(data), crc, fecK)
		copy(d[dgramHdrLen:], payload)
		dst = append(dst, padDgram(d))
		if fecK > 0 {
			if parity == nil {
				parity = make([]byte, ChunkPayload)
				parityLen = 0
			}
			for i, b := range payload {
				parity[i] ^= b
			}
			if len(payload) > parityLen {
				parityLen = len(payload)
			}
			if (idx+1)%fecK == 0 || idx == cnt-1 {
				p := make([]byte, dgramHdrLen+parityLen)
				putChunkHeader(p, DgramParity, m.Flags, m, uint16(group), uint16(cnt), len(data), crc, fecK)
				copy(p[dgramHdrLen:], parity[:parityLen])
				dst = append(dst, padDgram(p))
				parity, group = nil, group+1
			}
		}
	}
	return dst
}

// SliceChunk builds the single chunk datagram for one index of a frame —
// the NACK retransmit path, which resends exactly the missing chunks.
// Returns nil for an out-of-range index.
func SliceChunk(m FrameMeta, data []byte, idx int) []byte {
	cnt := chunkCount(len(data))
	if len(data) == 0 || idx < 0 || idx >= cnt {
		return nil
	}
	payload := data[idx*ChunkPayload : idx*ChunkPayload+chunkLen(len(data), cnt, idx)]
	d := make([]byte, dgramHdrLen+len(payload))
	putChunkHeader(d, DgramChunk, m.Flags|DgramFlagRetransmit, m, uint16(idx), uint16(cnt), len(data), crc32.ChecksumIEEE(data), 0)
	copy(d[dgramHdrLen:], payload)
	return padDgram(d)
}

// Nack asks the sender to retransmit the listed chunk indices of one
// frame.
type Nack struct {
	StreamID uint32
	FrameSeq uint32
	Missing  []uint16
}

// EncodeNack appends the wire form to dst.
func EncodeNack(dst []byte, n Nack) []byte {
	miss := n.Missing
	if len(miss) > MaxNackChunks {
		miss = miss[:MaxNackChunks]
	}
	dst = append(dst, DgramMagic, DgramNack)
	dst = binary.BigEndian.AppendUint32(dst, n.StreamID)
	dst = binary.BigEndian.AppendUint32(dst, n.FrameSeq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(miss)))
	for _, idx := range miss {
		dst = binary.BigEndian.AppendUint16(dst, idx)
	}
	return padDgram(dst)
}

// DecodeNack parses a NACK datagram (without re-checking magic/type).
func DecodeNack(b []byte) (Nack, error) {
	if len(b) < 12 {
		return Nack{}, fmt.Errorf("transport: short NACK (%d bytes)", len(b))
	}
	n := Nack{
		StreamID: binary.BigEndian.Uint32(b[2:]),
		FrameSeq: binary.BigEndian.Uint32(b[6:]),
	}
	cnt := int(binary.BigEndian.Uint16(b[10:]))
	if cnt > MaxNackChunks {
		return Nack{}, fmt.Errorf("transport: NACK lists %d chunks (max %d)", cnt, MaxNackChunks)
	}
	if len(b) < 12+2*cnt {
		return Nack{}, fmt.Errorf("transport: NACK truncated (%d entries, %d bytes)", cnt, len(b))
	}
	for i := 0; i < cnt; i++ {
		n.Missing = append(n.Missing, binary.BigEndian.Uint16(b[12+2*i:]))
	}
	return n, nil
}

// Sub subscribes a client address to the datagram frame path.
type Sub struct {
	Player   uint8
	WantPush bool
}

// EncodeSub appends the wire form to dst.
func EncodeSub(dst []byte, s Sub) []byte {
	var flags byte
	if s.WantPush {
		flags |= DgramFlagWantPush
	}
	return padDgram(append(dst, DgramMagic, DgramSub, s.Player, flags))
}

// DecodeSub parses a subscription datagram.
func DecodeSub(b []byte) (Sub, error) {
	if len(b) < 4 {
		return Sub{}, fmt.Errorf("transport: short Sub (%d bytes)", len(b))
	}
	return Sub{Player: b[2], WantPush: b[3]&DgramFlagWantPush != 0}, nil
}

// Req asks for one grid point's frame over the datagram path.
type Req struct {
	Player uint8
	Point  geom.GridPoint
	ReqID  uint32
}

// EncodeReq appends the wire form to dst.
func EncodeReq(dst []byte, r Req) []byte {
	dst = append(dst, DgramMagic, DgramReq, r.Player, 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.Point.I)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.Point.J)))
	dst = binary.BigEndian.AppendUint32(dst, r.ReqID)
	return padDgram(dst)
}

// DecodeReq parses a frame-request datagram.
func DecodeReq(b []byte) (Req, error) {
	if len(b) < 16 {
		return Req{}, fmt.Errorf("transport: short Req (%d bytes)", len(b))
	}
	return Req{
		Player: b[2],
		Point: geom.GridPoint{
			I: int(int32(binary.BigEndian.Uint32(b[4:]))),
			J: int(int32(binary.BigEndian.Uint32(b[8:]))),
		},
		ReqID: binary.BigEndian.Uint32(b[12:]),
	}, nil
}

// EncodeFIReply wraps already-encoded fisync states for a subscribed
// client, so its receive loop can tell FI replies from frame chunks by
// the shared magic + type prefix.
func EncodeFIReply(dst []byte, states []byte) []byte {
	return padDgram(append(append(dst, DgramMagic, DgramFIReply), states...))
}

// DecodeFIReply returns the wrapped state bytes.
func DecodeFIReply(b []byte) ([]byte, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("transport: short FIReply (%d bytes)", len(b))
	}
	return b[2:], nil
}

// DgramType returns the frame-path type of a datagram, or 0 when the
// datagram is not frame-path (no magic, too short, or exactly an FI state
// upload — which shares the socket and carries no magic).
func DgramType(b []byte) byte {
	if len(b) < 2 || b[0] != DgramMagic || len(b) == fiStateLen {
		return 0
	}
	return b[1]
}

// ChunkInfo identifies the frame a chunk datagram belongs to, without
// admitting it to a reassembler (the NACK engine's peek).
type ChunkInfo struct {
	StreamID uint32
	FrameSeq uint32
}

// PeekChunk parses just the frame identity out of a chunk or parity
// datagram.
func PeekChunk(b []byte) (ChunkInfo, error) {
	h, err := parseChunkHeader(b)
	if err != nil {
		return ChunkInfo{}, err
	}
	return ChunkInfo{StreamID: h.meta.StreamID, FrameSeq: h.meta.FrameSeq}, nil
}

// ReassembledFrame is one frame delivered by the Reassembler.
type ReassembledFrame struct {
	StreamID uint32
	FrameSeq uint32
	Point    geom.GridPoint
	Flags    byte
	Data     []byte
}

// ReassemblerConfig bounds the Reassembler's memory.
type ReassemblerConfig struct {
	// MaxFrames caps concurrent partial frames; beyond it the oldest
	// partial is abandoned (an overflow drop). Default 16.
	MaxFrames int
	// MaxFrameBytes caps one frame's claimed length; larger claims are
	// dropped as overflow. Default 8 MB.
	MaxFrameBytes int
	// StaleWindow is how far behind a stream's newest delivered frame a
	// chunk may arrive before it is dropped as stale. Default 16.
	ReorderWindow uint32
}

// ReassemblerStats counts reassembly activity; all drop reasons are
// split so the path is debuggable from /metrics.
type ReassemblerStats struct {
	Delivered        int64 // frames completed and handed out
	Recovered        int64 // frames that needed a parity reconstruction
	DroppedMalformed int64 // unparseable or self-inconsistent datagrams
	DroppedStale     int64 // chunks for delivered or long-gone frames
	DroppedOverflow  int64 // partials abandoned to stay within caps
	DroppedDup       int64 // duplicate chunks
	Corrupt          int64 // completed frames failing the checksum
}

// frameKey identifies one frame across datagrams.
type frameKey struct {
	stream uint32
	seq    uint32
}

// partial is one frame mid-reassembly.
type partial struct {
	meta    FrameMeta
	total   int
	cnt     int
	crc     uint32
	fecK    int               // sender's FEC group size (0 = none seen yet)
	chunks  [][]byte          // by index; nil = missing
	have    int
	parity  map[uint16][]byte // by FEC group index
	firstAt float64
	lastAt  float64
	nacks   int // NACKs the owner has sent for this frame (engine use)
}

// Reassembler rebuilds frames from chunk/parity datagrams. It is not
// safe for concurrent use; the owning receive loop drives it. Time is
// injected by the caller (wall ms live, virtual ms in the simulator), so
// its stale/expiry behaviour is deterministic under netsim.
type Reassembler struct {
	cfg     ReassemblerConfig
	frames  map[frameKey]*partial
	order   []frameKey // insertion order, oldest first
	streams map[uint32]*streamState
	stats   ReassemblerStats
	obs     reasmObs
}

// streamState tracks per-stream delivery for the late/stale drop rules:
// chunks for an already-delivered frame are late, chunks further than the
// reorder window behind the newest delivery are stale.
type streamState struct {
	newest    uint32 // highest delivered frame seq
	delivered uint64 // bitmask over [newest-63, newest]
	any       bool
}

// reasmObs mirrors stats into a registry (nil-safe instruments).
type reasmObs struct {
	delivered, recovered *obs.Counter
	malformed, stale     *obs.Counter
	overflow, dup        *obs.Counter
	corrupt              *obs.Counter
	pending              *obs.Gauge
}

// NewReassembler creates a bounded reassembler.
func NewReassembler(cfg ReassemblerConfig) *Reassembler {
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = 16
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 8 << 20
	}
	if cfg.ReorderWindow == 0 {
		cfg.ReorderWindow = 16
	}
	return &Reassembler{
		cfg:     cfg,
		frames:  make(map[frameKey]*partial),
		streams: make(map[uint32]*streamState),
	}
}

// Instrument mirrors the reassembler's counters into a registry under
// the given prefix (e.g. "client.udp"). Instrument(nil) is a no-op.
func (r *Reassembler) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	r.obs = reasmObs{
		delivered: reg.Counter(prefix + ".frames_delivered"),
		recovered: reg.Counter(prefix + ".fec_recovered"),
		malformed: reg.Counter(prefix + ".dropped_malformed"),
		stale:     reg.Counter(prefix + ".dropped_stale"),
		overflow:  reg.Counter(prefix + ".dropped_overflow"),
		dup:       reg.Counter(prefix + ".dropped_dup"),
		corrupt:   reg.Counter(prefix + ".corrupt"),
		pending:   reg.Gauge(prefix + ".partial_frames"),
	}
}

// Stats returns a copy of the counters.
func (r *Reassembler) Stats() ReassemblerStats { return r.stats }

// Pending returns the number of partial frames held.
func (r *Reassembler) Pending() int { return len(r.frames) }

// PendingBytes returns the chunk bytes currently buffered.
func (r *Reassembler) PendingBytes() int {
	total := 0
	for _, p := range r.frames {
		for _, c := range p.chunks {
			total += len(c)
		}
		for _, c := range p.parity {
			total += len(c)
		}
	}
	return total
}

// dgramHdr is a parsed chunk/parity header.
type dgramHdr struct {
	typ, flags byte
	fecK       int
	meta       FrameMeta
	idx, cnt   uint16
	total      int
	crc        uint32
}

// parseChunkHeader validates a chunk/parity datagram's fixed header.
func parseChunkHeader(b []byte) (dgramHdr, error) {
	if len(b) < dgramHdrLen {
		return dgramHdr{}, fmt.Errorf("transport: short chunk datagram (%d bytes)", len(b))
	}
	h := dgramHdr{
		typ:   b[1],
		flags: b[2],
		fecK:  int(b[3]),
		meta: FrameMeta{
			StreamID: binary.BigEndian.Uint32(b[4:]),
			FrameSeq: binary.BigEndian.Uint32(b[8:]),
			Point: geom.GridPoint{
				I: int(int32(binary.BigEndian.Uint32(b[16:]))),
				J: int(int32(binary.BigEndian.Uint32(b[20:]))),
			},
			Flags: b[2],
		},
		idx:   binary.BigEndian.Uint16(b[12:]),
		cnt:   binary.BigEndian.Uint16(b[14:]),
		total: int(binary.BigEndian.Uint32(b[24:])),
		crc:   binary.BigEndian.Uint32(b[28:]),
	}
	if h.cnt == 0 || int(h.cnt) > MaxFrameChunks {
		return dgramHdr{}, fmt.Errorf("transport: chunk count %d out of range", h.cnt)
	}
	if h.total <= 0 || chunkCount(h.total) != int(h.cnt) {
		return dgramHdr{}, fmt.Errorf("transport: frame length %d does not yield %d chunks", h.total, h.cnt)
	}
	return h, nil
}

// Offer feeds one received datagram (must be DgramChunk or DgramParity by
// DgramType) into reassembly at time now (ms). It returns the completed,
// checksum-verified frame when this datagram finished one, else nil.
func (r *Reassembler) Offer(b []byte, now float64) *ReassembledFrame {
	h, err := parseChunkHeader(b)
	if err != nil {
		r.dropMalformed()
		return nil
	}
	key := frameKey{h.meta.StreamID, h.meta.FrameSeq}
	if st := r.streams[h.meta.StreamID]; st != nil && st.any {
		if seen, late := st.seen(h.meta.FrameSeq, r.cfg.ReorderWindow); seen || late {
			r.stats.DroppedStale++
			r.obs.stale.Inc()
			return nil
		}
	}
	if h.total > r.cfg.MaxFrameBytes {
		r.stats.DroppedOverflow++
		r.obs.overflow.Inc()
		return nil
	}

	p := r.frames[key]
	if p == nil {
		for len(r.frames) >= r.cfg.MaxFrames {
			r.evictOldest()
		}
		p = &partial{
			meta:    h.meta,
			total:   h.total,
			cnt:     int(h.cnt),
			crc:     h.crc,
			fecK:    h.fecK,
			chunks:  make([][]byte, h.cnt),
			parity:  make(map[uint16][]byte),
			firstAt: now,
		}
		r.frames[key] = p
		r.order = append(r.order, key)
		r.obs.pending.Set(int64(len(r.frames)))
	} else if p.total != h.total || p.cnt != int(h.cnt) || p.crc != h.crc || p.meta.Point != h.meta.Point {
		// A datagram contradicting the partial it claims to extend: the
		// peer is confused or hostile either way; believe the first.
		r.dropMalformed()
		return nil
	}
	p.lastAt = now
	// A push/retransmit flag anywhere on the frame sticks so the consumer
	// can classify it.
	p.meta.Flags |= h.flags
	// Retransmitted chunks carry no FEC group size; adopt it from the
	// first datagram that does.
	if p.fecK == 0 {
		p.fecK = h.fecK
	}

	payload := b[dgramHdrLen:]
	switch h.typ {
	case DgramChunk:
		if int(h.idx) >= p.cnt {
			r.dropMalformed()
			return nil
		}
		want := chunkLen(p.total, p.cnt, int(h.idx))
		if len(payload) < want {
			r.dropMalformed()
			return nil
		}
		if p.chunks[h.idx] != nil {
			r.stats.DroppedDup++
			r.obs.dup.Inc()
			return nil
		}
		p.chunks[h.idx] = append([]byte(nil), payload[:want]...)
		p.have++
	case DgramParity:
		if _, ok := p.parity[h.idx]; ok {
			r.stats.DroppedDup++
			r.obs.dup.Inc()
			return nil
		}
		// Parity length may carry the pad byte; keep at most a full
		// chunk's worth.
		if len(payload) > ChunkPayload {
			payload = payload[:ChunkPayload]
		}
		p.parity[h.idx] = append([]byte(nil), payload...)
	default:
		r.dropMalformed()
		return nil
	}
	r.recover(p)
	return r.tryComplete(key, p)
}

// recover reconstructs any FEC group with exactly one missing data chunk
// and its parity present: the missing payload is the XOR of the parity
// and the group's other chunks, truncated to the length its index
// implies (all chunks but a frame's last are exactly ChunkPayload).
func (r *Reassembler) recover(p *partial) {
	if len(p.parity) == 0 || p.have == p.cnt || p.fecK <= 0 {
		return
	}
	for g, par := range p.parity {
		lo := int(g) * p.fecK
		hi := lo + p.fecK
		if hi > p.cnt {
			hi = p.cnt
		}
		if lo >= p.cnt {
			continue
		}
		missing := -1
		for i := lo; i < hi; i++ {
			if p.chunks[i] == nil {
				if missing >= 0 {
					missing = -2
					break
				}
				missing = i
			}
		}
		if missing < 0 {
			continue
		}
		want := chunkLen(p.total, p.cnt, missing)
		if want > len(par) {
			continue // parity shorter than the chunk it must restore
		}
		rec := make([]byte, len(par))
		copy(rec, par)
		for i := lo; i < hi; i++ {
			if i == missing {
				continue
			}
			for j, b := range p.chunks[i] {
				rec[j] ^= b
			}
		}
		p.chunks[missing] = rec[:want]
		p.have++
		r.stats.Recovered++
		r.obs.recovered.Inc()
	}
}

// tryComplete assembles and verifies a finished frame.
func (r *Reassembler) tryComplete(key frameKey, p *partial) *ReassembledFrame {
	if p.have < p.cnt {
		return nil
	}
	data := make([]byte, 0, p.total)
	for _, c := range p.chunks {
		data = append(data, c...)
	}
	r.remove(key)
	if len(data) != p.total || crc32.ChecksumIEEE(data) != p.crc {
		// Checksum or length mismatch: the frame is corrupt; drop it
		// without marking the seq delivered so a retransmit can rebuild
		// it from scratch.
		r.stats.Corrupt++
		r.obs.corrupt.Inc()
		return nil
	}
	r.markDelivered(p.meta.StreamID, p.meta.FrameSeq)
	r.stats.Delivered++
	r.obs.delivered.Inc()
	return &ReassembledFrame{
		StreamID: p.meta.StreamID,
		FrameSeq: p.meta.FrameSeq,
		Point:    p.meta.Point,
		Flags:    p.meta.Flags,
		Data:     data,
	}
}

// Missing lists the chunk indices still absent from a partial frame (nil
// when the frame is unknown). The slice is freshly allocated and capped
// at MaxNackChunks, matching what one NACK can carry.
func (r *Reassembler) Missing(streamID, frameSeq uint32) []uint16 {
	p := r.frames[frameKey{streamID, frameSeq}]
	if p == nil {
		return nil
	}
	var miss []uint16
	for i, c := range p.chunks {
		if c == nil {
			miss = append(miss, uint16(i))
			if len(miss) == MaxNackChunks {
				break
			}
		}
	}
	return miss
}

// PendingFrame describes one partial frame for the NACK/expiry engine.
type PendingFrame struct {
	StreamID uint32
	FrameSeq uint32
	Point    geom.GridPoint
	FirstAt  float64
	LastAt   float64
	Nacks    int
}

// Stale returns the partial frames whose last datagram arrived more than
// age ms before now, oldest first — the candidates for a NACK or an
// abandon.
func (r *Reassembler) Stale(now, age float64) []PendingFrame {
	var out []PendingFrame
	for _, key := range r.order {
		p := r.frames[key]
		if p == nil || now-p.lastAt < age {
			continue
		}
		out = append(out, PendingFrame{
			StreamID: key.stream, FrameSeq: key.seq,
			Point: p.meta.Point, FirstAt: p.firstAt, LastAt: p.lastAt, Nacks: p.nacks,
		})
	}
	return out
}

// NoteNack records that the engine sent a NACK for a partial frame and
// refreshes its activity time so the next sweep waits a full round trip.
func (r *Reassembler) NoteNack(streamID, frameSeq uint32, now float64) {
	if p := r.frames[frameKey{streamID, frameSeq}]; p != nil {
		p.nacks++
		p.lastAt = now
	}
}

// Abandon drops a partial frame and frees its buffer (an overflow-class
// drop: the engine gave up on it).
func (r *Reassembler) Abandon(streamID, frameSeq uint32) {
	key := frameKey{streamID, frameSeq}
	if r.frames[key] == nil {
		return
	}
	r.remove(key)
	r.stats.DroppedOverflow++
	r.obs.overflow.Inc()
}

// HasTail reports whether the partial frame holds its final chunk — the
// cue that the sender finished and anything missing was lost, so a NACK
// should fire now instead of waiting for the gap timer.
func (r *Reassembler) HasTail(streamID, frameSeq uint32) bool {
	p := r.frames[frameKey{streamID, frameSeq}]
	return p != nil && p.chunks[p.cnt-1] != nil
}

// evictOldest abandons the oldest partial to stay within MaxFrames.
func (r *Reassembler) evictOldest() {
	for len(r.order) > 0 {
		key := r.order[0]
		r.order = r.order[1:]
		if r.frames[key] != nil {
			delete(r.frames, key)
			r.stats.DroppedOverflow++
			r.obs.overflow.Inc()
			r.obs.pending.Set(int64(len(r.frames)))
			return
		}
	}
}

// remove deletes a partial without counting a drop (delivery or abandon
// bookkeeping happens at the caller).
func (r *Reassembler) remove(key frameKey) {
	delete(r.frames, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.obs.pending.Set(int64(len(r.frames)))
}

func (r *Reassembler) dropMalformed() {
	r.stats.DroppedMalformed++
	r.obs.malformed.Inc()
}

// markDelivered updates the stream's delivery window.
func (r *Reassembler) markDelivered(stream, seq uint32) {
	st := r.streams[stream]
	if st == nil {
		st = &streamState{}
		r.streams[stream] = st
	}
	st.mark(seq)
}

// seen reports whether seq was already delivered (late duplicate) or
// fell behind the reorder window (stale).
func (st *streamState) seen(seq, window uint32) (delivered, stale bool) {
	if !st.any {
		return false, false
	}
	d := int64(int32(st.newest - seq)) // wraparound-safe distance
	if d < 0 {
		return false, false // ahead of anything delivered
	}
	if uint32(d) > window || d > 63 {
		return false, true
	}
	return st.delivered&(1<<uint(d)) != 0, false
}

// mark records a delivery at seq, sliding the window forward as needed.
func (st *streamState) mark(seq uint32) {
	if !st.any {
		st.any, st.newest, st.delivered = true, seq, 1
		return
	}
	d := int64(int32(seq - st.newest))
	if d > 0 {
		if d >= 64 {
			st.delivered = 0
		} else {
			st.delivered <<= uint(d)
		}
		st.newest = seq
		st.delivered |= 1
		return
	}
	if back := -d; back < 64 {
		st.delivered |= 1 << uint(back)
	}
}
