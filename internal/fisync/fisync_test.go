package fisync

import (
	"testing"
	"testing/quick"

	"coterie/internal/geom"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(player, anim uint8, seq uint32, x, z, h float64) bool {
		s := State{Player: player, Anim: anim, Seq: seq, Pos: geom.V2(x, z), Heading: h}
		buf := s.Encode(nil)
		if len(buf) != WireSize {
			return false
		}
		got, rest, err := DecodeState(buf)
		return err == nil && len(rest) == 0 && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, _, err := DecodeState(make([]byte, WireSize-1)); err != ErrShort {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeStream(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = State{Player: uint8(i), Seq: uint32(i)}.Encode(buf)
	}
	for i := 0; i < 3; i++ {
		var s State
		var err error
		s, buf, err = DecodeState(buf)
		if err != nil || s.Player != uint8(i) {
			t.Fatalf("stream decode %d: %v %v", i, s, err)
		}
	}
	if len(buf) != 0 {
		t.Fatal("leftover bytes")
	}
}

func TestHubUpdateAndSnapshot(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 1, Pos: geom.V2(1, 1)})
	h.Update(State{Player: 1, Seq: 1, Pos: geom.V2(2, 2)})
	h.Update(State{Player: 2, Seq: 1, Pos: geom.V2(3, 3)})
	snap := h.Snapshot(1)
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	for _, s := range snap {
		if s.Player == 1 {
			t.Fatal("snapshot contains the requester")
		}
	}
	if snap[0].Player != 0 || snap[1].Player != 2 {
		t.Fatalf("snapshot order: %v", snap)
	}
	if h.Players() != 3 {
		t.Fatalf("players = %d", h.Players())
	}
}

func TestHubDropsStaleSeq(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 10, Anim: 1})
	h.Update(State{Player: 0, Seq: 9, Anim: 2}) // late datagram
	snap := h.Snapshot(9)
	if snap[0].Anim != 1 {
		t.Fatal("stale update overwrote newer state")
	}
	// Wraparound: 2 is newer than 0xFFFFFFFF.
	h = NewHub()
	h.Update(State{Player: 0, Seq: 0xFFFFFFFF, Anim: 3})
	h.Update(State{Player: 0, Seq: 2, Anim: 4})
	snap = h.Snapshot(9)
	if snap[0].Anim != 4 {
		t.Fatal("wraparound sequence rejected")
	}
}

func TestNewerSeqWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false}, // equal is not newer (a resent datagram must not count)
		// uint32 boundary: small numbers follow huge ones.
		{0, 0xFFFFFFFF, true},
		{0xFFFFFFFF, 0, false},
		{2, 0xFFFFFFFE, true},
		{0xFFFFFFFE, 2, false},
		// Exactly half the space apart: int32(a-b) is math.MinInt32,
		// which is not > 0, so the tie breaks toward "stale" both ways —
		// the hub never oscillates between two equidistant sequences.
		{0x80000000, 0, false},
		{0, 0x80000000, false},
		// Just under half the space counts as newer.
		{0x7FFFFFFF, 0, true},
		{0, 0x80000001, true},
	}
	for _, c := range cases {
		if got := newerSeq(c.a, c.b); got != c.want {
			t.Errorf("newerSeq(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHubSeqEdgeCases(t *testing.T) {
	// A duplicate sequence (retransmitted datagram) must not overwrite.
	h := NewHub()
	h.Update(State{Player: 0, Seq: 7, Anim: 1})
	h.Update(State{Player: 0, Seq: 7, Anim: 2})
	if snap := h.Snapshot(9); snap[0].Anim != 1 {
		t.Fatal("duplicate sequence overwrote state")
	}

	// Stale updates straddling the wraparound: 0xFFFFFFFE arrives after
	// the counter already wrapped to 1.
	h = NewHub()
	h.Update(State{Player: 0, Seq: 0xFFFFFFFE, Anim: 1})
	h.Update(State{Player: 0, Seq: 1, Anim: 2})          // wrapped: newer
	h.Update(State{Player: 0, Seq: 0xFFFFFFFF, Anim: 3}) // pre-wrap straggler: stale
	if snap := h.Snapshot(9); snap[0].Anim != 2 {
		t.Fatalf("post-wrap state lost: anim = %d", snap[0].Anim)
	}

	// A fresh hub accepts any first sequence, including 0 and the max.
	h = NewHub()
	h.Update(State{Player: 0, Seq: 0, Anim: 1})
	h.Update(State{Player: 1, Seq: 0xFFFFFFFF, Anim: 2})
	if h.Players() != 2 {
		t.Fatalf("players = %d", h.Players())
	}

	// Sequences advancing across the boundary one step at a time.
	h = NewHub()
	anim := uint8(0)
	for seq := uint32(0xFFFFFFFD); seq != 3; seq++ {
		anim++
		h.Update(State{Player: 0, Seq: seq, Anim: anim})
	}
	if snap := h.Snapshot(9); snap[0].Anim != anim || snap[0].Seq != 2 {
		t.Fatalf("walk across wraparound ended at seq %d anim %d", snap[0].Seq, snap[0].Anim)
	}
}

func TestTickBytesMatchesTable9Scaling(t *testing.T) {
	// Table 9: FI bandwidth is ~1 Kbps at 1 player and 260-275 Kbps at 4.
	// At 60 Hz the per-tick byte budget implies those rates.
	kbps := func(n int) float64 { return float64(TickBytes(n)*60*8) / 1000 }
	if k := kbps(1); k > 25 {
		t.Fatalf("1P FI bandwidth %.1f Kbps, want tiny", k)
	}
	k4 := kbps(4)
	if k4 < 150 || k4 > 450 {
		t.Fatalf("4P FI bandwidth %.1f Kbps, want ~270", k4)
	}
	// Superlinear growth in n (each of n clients downloads n-1 states).
	if !(kbps(2) < kbps(3) && kbps(3) < k4) {
		t.Fatal("FI bandwidth should grow with players")
	}
	if TickBytes(0) != 0 {
		t.Fatal("no players, no traffic")
	}
}

func TestHubTrafficCounters(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 1})
	if h.UploadBytes != WireSize+headerSize {
		t.Fatalf("upload bytes %d", h.UploadBytes)
	}
	h.Snapshot(0) // no other players: heartbeat
	if h.DownloadBytes != 2 {
		t.Fatalf("heartbeat bytes %d", h.DownloadBytes)
	}
	h.Update(State{Player: 1, Seq: 1})
	h.Snapshot(0)
	if h.DownloadBytes != 2+WireSize+headerSize {
		t.Fatalf("download bytes %d", h.DownloadBytes)
	}
}
