package fisync

import (
	"testing"
	"testing/quick"

	"coterie/internal/geom"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(player, anim uint8, seq uint32, x, z, h float64) bool {
		s := State{Player: player, Anim: anim, Seq: seq, Pos: geom.V2(x, z), Heading: h}
		buf := s.Encode(nil)
		if len(buf) != WireSize {
			return false
		}
		got, rest, err := DecodeState(buf)
		return err == nil && len(rest) == 0 && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, _, err := DecodeState(make([]byte, WireSize-1)); err != ErrShort {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeStream(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = State{Player: uint8(i), Seq: uint32(i)}.Encode(buf)
	}
	for i := 0; i < 3; i++ {
		var s State
		var err error
		s, buf, err = DecodeState(buf)
		if err != nil || s.Player != uint8(i) {
			t.Fatalf("stream decode %d: %v %v", i, s, err)
		}
	}
	if len(buf) != 0 {
		t.Fatal("leftover bytes")
	}
}

func TestHubUpdateAndSnapshot(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 1, Pos: geom.V2(1, 1)})
	h.Update(State{Player: 1, Seq: 1, Pos: geom.V2(2, 2)})
	h.Update(State{Player: 2, Seq: 1, Pos: geom.V2(3, 3)})
	snap := h.Snapshot(1)
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	for _, s := range snap {
		if s.Player == 1 {
			t.Fatal("snapshot contains the requester")
		}
	}
	if snap[0].Player != 0 || snap[1].Player != 2 {
		t.Fatalf("snapshot order: %v", snap)
	}
	if h.Players() != 3 {
		t.Fatalf("players = %d", h.Players())
	}
}

func TestHubDropsStaleSeq(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 10, Anim: 1})
	h.Update(State{Player: 0, Seq: 9, Anim: 2}) // late datagram
	snap := h.Snapshot(9)
	if snap[0].Anim != 1 {
		t.Fatal("stale update overwrote newer state")
	}
	// Wraparound: 2 is newer than 0xFFFFFFFF.
	h = NewHub()
	h.Update(State{Player: 0, Seq: 0xFFFFFFFF, Anim: 3})
	h.Update(State{Player: 0, Seq: 2, Anim: 4})
	snap = h.Snapshot(9)
	if snap[0].Anim != 4 {
		t.Fatal("wraparound sequence rejected")
	}
}

func TestTickBytesMatchesTable9Scaling(t *testing.T) {
	// Table 9: FI bandwidth is ~1 Kbps at 1 player and 260-275 Kbps at 4.
	// At 60 Hz the per-tick byte budget implies those rates.
	kbps := func(n int) float64 { return float64(TickBytes(n)*60*8) / 1000 }
	if k := kbps(1); k > 25 {
		t.Fatalf("1P FI bandwidth %.1f Kbps, want tiny", k)
	}
	k4 := kbps(4)
	if k4 < 150 || k4 > 450 {
		t.Fatalf("4P FI bandwidth %.1f Kbps, want ~270", k4)
	}
	// Superlinear growth in n (each of n clients downloads n-1 states).
	if !(kbps(2) < kbps(3) && kbps(3) < k4) {
		t.Fatal("FI bandwidth should grow with players")
	}
	if TickBytes(0) != 0 {
		t.Fatal("no players, no traffic")
	}
}

func TestHubTrafficCounters(t *testing.T) {
	h := NewHub()
	h.Update(State{Player: 0, Seq: 1})
	if h.UploadBytes != WireSize+headerSize {
		t.Fatalf("upload bytes %d", h.UploadBytes)
	}
	h.Snapshot(0) // no other players: heartbeat
	if h.DownloadBytes != 2 {
		t.Fatalf("heartbeat bytes %d", h.DownloadBytes)
	}
	h.Update(State{Player: 1, Seq: 1})
	h.Snapshot(0)
	if h.DownloadBytes != 2+WireSize+headerSize {
		t.Fatalf("download bytes %d", h.DownloadBytes)
	}
}
