// Package fisync synchronises foreground interactions (FI) between
// players, substituting for Photon Unity Networking (PUN) in the paper's
// prototype. Each client uploads its FI object state (position, rotation,
// animation) every frame; the server combines the states and every client
// retrieves the other players' states for rendering in the next interval
// (§3 footnote: the sync takes 2-3 ms per interval; §5.1 task 4).
//
// FI traffic is tiny next to BE frames — Table 9 measures 1 Kbps for one
// player and ~260-275 Kbps for four, two to four orders of magnitude below
// BE traffic — and this package reproduces exactly that traffic pattern.
package fisync

import (
	"encoding/binary"
	"errors"
	"math"

	"coterie/internal/geom"
)

// State is one player's synchronised FI object state.
type State struct {
	Player  uint8
	Anim    uint8
	Seq     uint32
	Pos     geom.Vec2
	Heading float64
}

// WireSize is the encoded size of one State in bytes. With framing
// overhead this yields the paper's measured FI bandwidth (Table 9): four
// players at 60 Hz exchange ~270 Kbps in total.
const WireSize = 1 + 1 + 4 + 8 + 8 + 8

// headerSize models the per-message UDP/RTP-style framing overhead.
const headerSize = 12

// Encode appends the wire form of s to dst and returns the result.
func (s State) Encode(dst []byte) []byte {
	dst = append(dst, s.Player, s.Anim)
	dst = binary.BigEndian.AppendUint32(dst, s.Seq)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Pos.X))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Pos.Z))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Heading))
	return dst
}

// ErrShort reports a truncated State buffer.
var ErrShort = errors.New("fisync: short buffer")

// DecodeState reads one State from the front of buf, returning the rest.
func DecodeState(buf []byte) (State, []byte, error) {
	if len(buf) < WireSize {
		return State{}, buf, ErrShort
	}
	var s State
	s.Player = buf[0]
	s.Anim = buf[1]
	s.Seq = binary.BigEndian.Uint32(buf[2:6])
	s.Pos.X = math.Float64frombits(binary.BigEndian.Uint64(buf[6:14]))
	s.Pos.Z = math.Float64frombits(binary.BigEndian.Uint64(buf[14:22]))
	s.Heading = math.Float64frombits(binary.BigEndian.Uint64(buf[22:30]))
	return s, buf[WireSize:], nil
}

// Hub is the server-side state combiner: it keeps the latest state per
// player and serves snapshots of everyone else's state.
type Hub struct {
	states map[uint8]State
	// UploadBytes and DownloadBytes account the FI traffic through the
	// hub, for the Table 9 bandwidth rows.
	UploadBytes   int64
	DownloadBytes int64
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{states: make(map[uint8]State)} }

// Update ingests a client's state upload; stale sequence numbers (late
// UDP datagrams) are dropped.
func (h *Hub) Update(s State) {
	if cur, ok := h.states[s.Player]; ok && !newerSeq(s.Seq, cur.Seq) {
		return
	}
	h.states[s.Player] = s
	h.UploadBytes += WireSize + headerSize
}

// newerSeq compares sequence numbers with wraparound.
func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }

// Snapshot returns every player's latest state except the requester's, in
// ascending player order, and accounts the download.
func (h *Hub) Snapshot(requester uint8) []State {
	out := make([]State, 0, len(h.states))
	for p := 0; p < 256; p++ {
		if uint8(p) == requester {
			continue
		}
		if s, ok := h.states[uint8(p)]; ok {
			out = append(out, s)
		}
	}
	if len(out) > 0 {
		h.DownloadBytes += int64(len(out)*WireSize + headerSize)
	} else {
		// Keep-alive heartbeat: the 1P "1 Kbps" row of Table 9.
		h.DownloadBytes += 2
	}
	return out
}

// Players returns the number of players with state at the hub.
func (h *Hub) Players() int { return len(h.states) }

// TickBytes returns the total FI bytes exchanged through the server in one
// frame tick for n players: n uploads plus n downloads of n-1 states. Used
// by the network-usage accounting (Table 9).
func TickBytes(n int) int {
	if n <= 0 {
		return 0
	}
	up := n * (WireSize + headerSize)
	var down int
	if n == 1 {
		down = 2 * n // heartbeat only
	} else {
		down = n * ((n-1)*WireSize + headerSize)
	}
	return up + down
}
