package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/render"
	"coterie/internal/ssim"
)

// offsetImage returns src shifted horizontally by dx pixels with wrap,
// plus mild noise: a stand-in for "the same scene from a nearby grid
// point" when a synthetic frame is enough.
func offsetImage(rng *rand.Rand, src *img.Gray, dx int) *img.Gray {
	g := img.NewGray(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			v := int(src.Pix[y*src.W+(x+dx)%src.W]) + rng.Intn(5) - 2
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Pix[y*g.W+x] = uint8(v)
		}
	}
	return g
}

func TestKindInspector(t *testing.T) {
	src := gradientImage(64, 32)
	intra := Encode(src, DefaultCRF)
	if Kind(intra) != KindIntra {
		t.Fatalf("intra stream classified as %v", Kind(intra))
	}
	ref, err := Decode(intra)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseGray(ref)
	delta := DeltaEncode(ref, ref, DefaultCRF)
	if Kind(delta) != KindDelta {
		t.Fatalf("delta stream classified as %v", Kind(delta))
	}
	for _, bad := range [][]byte{nil, {}, {0xC0}, {0xC0, 0x7E}, {0x00, 0x7E, 1}, {0xC0, 0x7E, 99}, {1, 2, 3, 4}} {
		if Kind(bad) != KindUnknown {
			t.Fatalf("garbage %v classified as %v", bad, Kind(bad))
		}
	}
}

func TestDeltaIdenticalFrameIsNearlyFree(t *testing.T) {
	// Every block of an identical frame hits the skip map, so the stream
	// is the header plus one bit per 8x8 block.
	src := gradientImage(128, 64)
	data := DeltaEncode(src, src, DefaultCRF)
	blocks := blocksAcross(src.W) * blocksAcross(src.H)
	if maxLen := blocks/8 + 16; len(data) > maxLen {
		t.Fatalf("identical-frame delta is %d bytes, want <= %d", len(data), maxLen)
	}
	dec, err := DeltaDecode(data, src)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseGray(dec)
	if !bytes.Equal(dec.Pix, src.Pix) {
		t.Fatal("identical-frame delta did not reconstruct the reference exactly")
	}
}

func TestDeltaSmallerThanIntraForSimilarFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := gradientImage(128, 64)
	cur := offsetImage(rng, ref, 2)
	intra := Encode(cur, DefaultCRF)
	delta := DeltaEncode(cur, ref, DefaultCRF)
	if len(delta) >= len(intra) {
		t.Fatalf("similar-frame delta %d bytes >= intra %d bytes", len(delta), len(intra))
	}
	dec, err := DeltaDecode(delta, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseGray(dec)
	mad, _ := img.MeanAbsDiff(cur, dec)
	if mad > 8 {
		t.Fatalf("delta reconstruction MAD = %v", mad)
	}
}

func TestDeltaEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ref := gradientImage(96, 48)
	cur := offsetImage(rng, ref, 3)
	a := DeltaEncode(cur, ref, DefaultCRF)
	b := DeltaEncode(cur, ref, DefaultCRF)
	if !bytes.Equal(a, b) {
		t.Fatal("DeltaEncode is not deterministic")
	}
}

func TestDeltaEncodeRejectsMismatch(t *testing.T) {
	a := gradientImage(64, 32)
	b := gradientImage(64, 48)
	if DeltaEncode(a, b, DefaultCRF) != nil {
		t.Fatal("dimension mismatch must return nil")
	}
	if DeltaEncode(nil, a, DefaultCRF) != nil || DeltaEncode(a, nil, DefaultCRF) != nil {
		t.Fatal("nil input must return nil")
	}
}

func TestDeltaDecodeRejectsGarbage(t *testing.T) {
	ref := gradientImage(64, 32)
	if _, err := DeltaDecode(nil, ref); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := DeltaDecode([]byte{1, 2, 3}, ref); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := DeltaDecode(Encode(ref, DefaultCRF), ref); err == nil {
		t.Fatal("expected error when handed an intra stream")
	}
	delta := DeltaEncode(ref, ref, DefaultCRF)
	if _, err := Decode(delta); err == nil {
		t.Fatal("Decode must reject a delta stream")
	}
	if _, err := DeltaDecode(delta, nil); err == nil {
		t.Fatal("expected error for nil reference")
	}
	if _, err := DeltaDecode(delta, gradientImage(64, 48)); err == nil {
		t.Fatal("expected error for mismatched reference dimensions")
	}
	rng := rand.New(rand.NewSource(13))
	busy := DeltaEncode(offsetImage(rng, ref, 5), ref, DefaultCRF)
	if _, err := DeltaDecode(busy[:len(busy)/4], ref); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestDeltaDecodeNeverPanicsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ref := gradientImage(48, 40)
	cur := offsetImage(rng, ref, 4)
	data := DeltaEncode(cur, ref, DefaultCRF)
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("delta decode panicked on corrupted input: %v", r)
				}
			}()
			g, err := DeltaDecode(corrupted, ref)
			if err == nil {
				ReleaseGray(g)
			}
		}()
	}
}

// TestDeltaMatchesIntraQualityAcrossGames is the acceptance bar of the
// delta path: for every catalog game, serving a nearby frame as a delta
// against a held reference must cost no more than 0.01 SSIM versus
// serving it intra-coded. Frames are rendered exactly the way the server
// pipeline produces them — the reference is the *decoded reconstruction*
// of the reference point's intra frame, and the delta encodes the current
// frame's own intra reconstruction (the canonical-reference rule, so the
// client and server agree bit-for-bit on the prediction source).
func TestDeltaMatchesIntraQualityAcrossGames(t *testing.T) {
	for _, spec := range games.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			g, err := games.BuildByName(spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			r := render.New(g.Scene, render.Config{W: 96, H: 48, Parallel: 1})
			eyeA := g.Scene.EyeAt(g.Spawn)
			eyeB := g.Scene.EyeAt(g.Spawn.Add(geom.V2(0.5, 0.25)))

			ref, err := Decode(Encode(r.Panorama(eyeA, 0, 1e18, nil), DefaultCRF))
			if err != nil {
				t.Fatal(err)
			}
			gt := r.Panorama(eyeB, 0, 1e18, nil)
			intraRecon, err := Decode(Encode(gt, DefaultCRF))
			if err != nil {
				t.Fatal(err)
			}
			delta := DeltaEncode(intraRecon, ref, DefaultCRF)
			if delta == nil {
				t.Fatal("DeltaEncode returned nil for matched dimensions")
			}
			deltaRecon, err := DeltaDecode(delta, ref)
			if err != nil {
				t.Fatal(err)
			}
			sIntra, err := ssim.Mean(gt, intraRecon)
			if err != nil {
				t.Fatal(err)
			}
			sDelta, err := ssim.Mean(gt, deltaRecon)
			if err != nil {
				t.Fatal(err)
			}
			if d := sIntra - sDelta; d > 0.01 || d < -0.01 {
				t.Fatalf("delta quality drifted: intra SSIM %.4f vs delta SSIM %.4f", sIntra, sDelta)
			}
			t.Logf("%s: intra SSIM %.4f (%d B), delta SSIM %.4f (%d B)",
				spec.Name, sIntra, len(Encode(gt, DefaultCRF)), sDelta, len(delta))
		})
	}
}

// TestDecodeAllocationFree pins the pooled decode path: once the freelist
// is warm, Decode + ReleaseGray must not allocate, and the same holds for
// DeltaDecode. This is the per-frame hot path of every live client.
func TestDecodeAllocationFree(t *testing.T) {
	src := gradientImage(128, 64)
	intra := Encode(src, DefaultCRF)
	ref, err := Decode(intra)
	if err != nil {
		t.Fatal(err)
	}
	delta := DeltaEncode(ref, ref, DefaultCRF)

	// Warm the freelist.
	for i := 0; i < 3; i++ {
		g, err := Decode(intra)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseGray(g)
	}
	if n := testing.AllocsPerRun(50, func() {
		g, err := Decode(intra)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseGray(g)
	}); n > 0 {
		t.Errorf("Decode allocates %.1f objects per call at steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		g, err := DeltaDecode(delta, ref)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseGray(g)
	}); n > 0 {
		t.Errorf("DeltaDecode allocates %.1f objects per call at steady state, want 0", n)
	}
	ReleaseGray(ref)
}
