package codec_test

import (
	"fmt"

	"coterie/internal/codec"
	"coterie/internal/img"
)

// Example encodes and decodes a small frame at the server's CRF setting.
func Example() {
	frame := img.NewGray(64, 32)
	for y := 0; y < frame.H; y++ {
		for x := 0; x < frame.W; x++ {
			frame.Set(x, y, uint8(64+x+y))
		}
	}
	data := codec.Encode(frame, codec.DefaultCRF)
	decoded, err := codec.Decode(data)
	if err != nil {
		panic(err)
	}
	mad, _ := img.MeanAbsDiff(frame, decoded)
	fmt.Printf("decoded %dx%d, compressed %dx smaller, mean error under %d grey levels\n",
		decoded.W, decoded.H, (frame.W*frame.H)/len(data), int(mad)+1)
	// Output:
	// decoded 64x32, compressed 19x smaller, mean error under 1 grey levels
}
