// Package codec implements the intra-frame video codec Coterie's server
// uses to pre-encode panoramic far-BE frames before shipping them to
// clients. The paper uses x264 with Constant Rate Factor 25 (§5.1); this
// package is a from-scratch stand-in with the same structure as an H.264
// intra frame: 8x8 block DCT, CRF-controlled quantisation, DC prediction,
// zigzag scan, run-length coding and Exp-Golomb entropy coding.
//
// What matters for reproducing the paper is that encoded size tracks
// content complexity: far-BE frames (near objects removed) compress to a
// fraction of whole-BE frames, which is the source of Coterie's "smaller
// frames" advantage even before caching (Fig. 11, "Coterie w/o cache").
// A real transform codec has that property by construction.
package codec

import (
	"errors"
	"fmt"
	"sync"

	"coterie/internal/img"
)

// DefaultCRF matches the server-side x264 setting in the paper.
const DefaultCRF = 25

const (
	magic = 0xC07E
	// version is the intra-frame stream layout; versionDelta (delta.go)
	// shares the magic, so the version byte doubles as the frame kind and
	// streams stay self-describing.
	version      = 1
	versionDelta = 2
)

// writerPool recycles bitWriters (and, more importantly, their grown byte
// buffers) across Encode calls: the server pre-encodes every far-BE frame it
// renders, so this is a per-frame allocation on the pipeline's hot path.
var writerPool = sync.Pool{New: func() any { return &bitWriter{} }}

// The decode side pools output rasters the same way the render package
// pools frames: an explicit mutex-guarded freelist (not a sync.Pool) so
// the steady state is deterministic across GC cycles, which the
// allocation-budget test relies on. Callers that never release simply
// allocate a fresh frame per decode, exactly as before.
var (
	grayMu   sync.Mutex
	grayFree []*img.Gray
)

// maxPooledGrays bounds the freelist so a burst of concurrent decodes
// cannot pin an unbounded set of rasters.
const maxPooledGrays = 64

// getGray checks a raster out of the freelist, resizing its pixel buffer
// when the requested dimensions need more room.
func getGray(w, h int) *img.Gray {
	n := w * h
	grayMu.Lock()
	if k := len(grayFree); k > 0 {
		g := grayFree[k-1]
		grayFree = grayFree[:k-1]
		grayMu.Unlock()
		if cap(g.Pix) < n {
			g.Pix = make([]uint8, n)
		}
		g.Pix = g.Pix[:n]
		g.W, g.H = w, h
		return g
	}
	grayMu.Unlock()
	return img.NewGray(w, h)
}

// ReleaseGray returns a frame obtained from Decode or DeltaDecode to the
// codec's buffer pool. The caller must not touch the frame afterwards.
// Releasing nil is a no-op, so callers may release unconditionally.
func ReleaseGray(g *img.Gray) {
	if g == nil {
		return
	}
	grayMu.Lock()
	if len(grayFree) < maxPooledGrays {
		grayFree = append(grayFree, g)
	}
	grayMu.Unlock()
}

// Encode compresses the luma frame at the given CRF (0 near-lossless .. 51
// worst). The output is self-describing and decoded by Decode.
func Encode(g *img.Gray, crf int) []byte {
	q := quantTable(crf)
	bw := writerPool.Get().(*bitWriter)
	bw.reset(g.W * g.H / 8)
	bw.writeBits(magic, 16)
	bw.writeBits(version, 8)
	bw.writeBits(uint64(uint8(clampCRF(crf))), 8)
	bw.writeUE(uint32(g.W))
	bw.writeUE(uint32(g.H))

	bw64 := blocksAcross(g.W)
	bh64 := blocksAcross(g.H)

	var src, coef [64]float64
	prevDC := int32(0)
	for by := 0; by < bh64; by++ {
		for bx := 0; bx < bw64; bx++ {
			loadBlock(g, bx*blockSize, by*blockSize, &src)
			fdct8x8(&src, &coef)
			// Quantise into zigzag order.
			var zz [64]int32
			for i := 0; i < 64; i++ {
				c := coef[zigzag[i]] / q[zigzag[i]]
				if c >= 0 {
					zz[i] = int32(c + 0.5)
				} else {
					zz[i] = int32(c - 0.5)
				}
			}
			// DC prediction from the previous block in scan order.
			dc := zz[0]
			bw.writeSE(dc - prevDC)
			prevDC = dc
			encodeAC(bw, zz[1:])
		}
	}
	// Copy out: the writer's buffer goes back to the pool, so the returned
	// stream must not alias it.
	stream := bw.bytes()
	out := make([]byte, len(stream))
	copy(out, stream)
	writerPool.Put(bw)
	return out
}

// encodeAC writes the 63 AC coefficients as (run, level) pairs terminated
// by an end-of-block marker (run code 0 reserved: we encode run+1, with 0
// meaning EOB).
func encodeAC(bw *bitWriter, ac []int32) {
	run := uint32(0)
	for _, v := range ac {
		if v == 0 {
			run++
			continue
		}
		bw.writeUE(run + 1)
		bw.writeSE(v)
		run = 0
	}
	bw.writeUE(0) // end of block
}

// Decode reconstructs a frame produced by Encode. The returned raster
// comes from the codec's buffer pool; callers done with it may hand it
// back via ReleaseGray to keep the decode path allocation-free, or keep
// it indefinitely.
func Decode(data []byte) (*img.Gray, error) {
	br := &bitReader{buf: data}
	m, err := br.readBits(16)
	if err != nil || m != magic {
		return nil, errors.New("codec: bad magic")
	}
	ver, err := br.readBits(8)
	if err != nil || ver != version {
		return nil, fmt.Errorf("codec: unsupported version %d", ver)
	}
	crfBits, err := br.readBits(8)
	if err != nil {
		return nil, err
	}
	q := quantTable(int(crfBits))
	w32, err := br.readUE()
	if err != nil {
		return nil, err
	}
	h32, err := br.readUE()
	if err != nil {
		return nil, err
	}
	w, h := int(w32), int(h32)
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("codec: implausible dimensions %dx%d", w, h)
	}
	g := getGray(w, h)

	bw64 := blocksAcross(w)
	bh64 := blocksAcross(h)
	var coef, pix [64]float64
	prevDC := int32(0)
	for by := 0; by < bh64; by++ {
		for bx := 0; bx < bw64; bx++ {
			var zz [64]int32
			d, err := br.readSE()
			if err != nil {
				ReleaseGray(g)
				return nil, err
			}
			prevDC += d
			zz[0] = prevDC
			if err := decodeAC(br, zz[1:]); err != nil {
				ReleaseGray(g)
				return nil, err
			}
			for i := 0; i < 64; i++ {
				coef[zigzag[i]] = float64(zz[i]) * q[zigzag[i]]
			}
			idct8x8(&coef, &pix)
			storeBlock(g, bx*blockSize, by*blockSize, &pix)
		}
	}
	return g, nil
}

func decodeAC(br *bitReader, ac []int32) error {
	idx := 0
	for {
		runCode, err := br.readUE()
		if err != nil {
			return err
		}
		if runCode == 0 {
			return nil // end of block
		}
		idx += int(runCode) - 1
		if idx >= len(ac) {
			return errors.New("codec: AC run overflows block")
		}
		level, err := br.readSE()
		if err != nil {
			return err
		}
		ac[idx] = level
		idx++
		if idx > len(ac) {
			return errors.New("codec: AC index overflows block")
		}
	}
}

// loadBlock copies an 8x8 block (level-shifted by -128) clamping reads at
// the image edge by replicating border pixels.
func loadBlock(g *img.Gray, x0, y0 int, dst *[64]float64) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= g.H {
			sy = g.H - 1
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= g.W {
				sx = g.W - 1
			}
			dst[y*blockSize+x] = float64(g.Pix[sy*g.W+sx]) - 128
		}
	}
}

func storeBlock(g *img.Gray, x0, y0 int, src *[64]float64) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= g.H {
			continue
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= g.W {
				continue
			}
			v := src[y*blockSize+x] + 128
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Pix[sy*g.W+sx] = uint8(v + 0.5)
		}
	}
}

func blocksAcross(n int) int { return (n + blockSize - 1) / blockSize }

func clampCRF(crf int) int {
	if crf < 0 {
		return 0
	}
	if crf > 51 {
		return 51
	}
	return crf
}
