package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coterie/internal/img"
	"coterie/internal/ssim"
)

func flatImage(w, h int, v uint8) *img.Gray {
	g := img.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = v
	}
	return g
}

func gradientImage(w, h int) *img.Gray {
	g := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8((x*255/w+y*255/h)/2))
		}
	}
	return g
}

func noisyImage(rng *rand.Rand, w, h int) *img.Gray {
	g := img.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func TestRoundTripDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{8, 8}, {16, 8}, {33, 17}, {64, 48}, {100, 51}} {
		src := noisyImage(rng, dims[0], dims[1])
		data := Encode(src, DefaultCRF)
		dec, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if dec.W != src.W || dec.H != src.H {
			t.Fatalf("%v: decoded %dx%d", dims, dec.W, dec.H)
		}
	}
}

func TestFlatImageCompressesHard(t *testing.T) {
	src := flatImage(128, 64, 140)
	data := Encode(src, DefaultCRF)
	if len(data) > src.W*src.H/32 {
		t.Fatalf("flat image encoded to %d bytes (raw %d)", len(data), src.W*src.H)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	mad, _ := img.MeanAbsDiff(src, dec)
	if mad > 2 {
		t.Fatalf("flat image MAD = %v", mad)
	}
}

func TestQualityAtCRF0(t *testing.T) {
	src := gradientImage(64, 64)
	dec, err := Decode(Encode(src, 0))
	if err != nil {
		t.Fatal(err)
	}
	mad, _ := img.MeanAbsDiff(src, dec)
	if mad > 1.5 {
		t.Fatalf("near-lossless MAD = %v", mad)
	}
}

func TestPaperCRFKeepsGoodSSIM(t *testing.T) {
	// The server encodes far-BE frames at CRF 25; the result must still be
	// "good" (SSIM > 0.9) for Table 7's Coterie quality numbers to hold.
	rng := rand.New(rand.NewSource(2))
	src := img.NewGray(96, 64)
	// Structured content: blobs over a gradient.
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			src.Set(x, y, uint8(40+x+y/2))
		}
	}
	for i := 0; i < 15; i++ {
		cx, cy := rng.Intn(src.W), rng.Intn(src.H)
		v := uint8(60 + rng.Intn(140))
		for dy := -3; dy <= 3; dy++ {
			for dx := -3; dx <= 3; dx++ {
				x, y := cx+dx, cy+dy
				if x >= 0 && y >= 0 && x < src.W && y < src.H && dx*dx+dy*dy <= 9 {
					src.Set(x, y, v)
				}
			}
		}
	}
	dec, err := Decode(Encode(src, DefaultCRF))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ssim.Mean(src, dec)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("CRF %d SSIM = %v, want >= 0.9", DefaultCRF, s)
	}
}

func TestSizeGrowsWithComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flat := len(Encode(flatImage(96, 96, 90), DefaultCRF))
	grad := len(Encode(gradientImage(96, 96), DefaultCRF))
	noise := len(Encode(noisyImage(rng, 96, 96), DefaultCRF))
	if !(flat < grad && grad < noise) {
		t.Fatalf("sizes should grow with complexity: flat %d, gradient %d, noise %d", flat, grad, noise)
	}
}

func TestSizeShrinksWithCRF(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := noisyImage(rng, 96, 96)
	prev := len(Encode(src, 0))
	for _, crf := range []int{15, 30, 45} {
		n := len(Encode(src, crf))
		if n >= prev {
			t.Fatalf("size did not shrink at CRF %d: %d >= %d", crf, n, prev)
		}
		prev = n
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for bad magic")
	}
	// Valid header, truncated body.
	src := gradientImage(64, 64)
	data := Encode(src, DefaultCRF)
	if _, err := Decode(data[:len(data)/4]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestCRFClamped(t *testing.T) {
	src := gradientImage(32, 32)
	for _, crf := range []int{-10, 200} {
		if _, err := Decode(Encode(src, crf)); err != nil {
			t.Fatalf("CRF %d: %v", crf, err)
		}
	}
}

func TestRoundTripPropertyRandomImages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		w := 8 + rng.Intn(64)
		h := 8 + rng.Intn(64)
		src := img.NewGray(w, h)
		// Structured random: random blocks, compressible.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				src.Set(x, y, uint8((x/4)*40+(y/4)*17))
			}
		}
		dec, err := Decode(Encode(src, 10))
		if err != nil {
			return false
		}
		mad, _ := img.MeanAbsDiff(src, dec)
		return mad < 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	w := &bitWriter{}
	values := []uint32{0, 1, 2, 3, 100, 65535, 1 << 20}
	svalues := []int32{0, -1, 1, -2, 2, 1000, -99999}
	for _, v := range values {
		w.writeUE(v)
	}
	for _, v := range svalues {
		w.writeSE(v)
	}
	w.writeBits(0xAB, 8)
	data := w.bytes()
	r := &bitReader{buf: data}
	for _, v := range values {
		got, err := r.readUE()
		if err != nil || got != v {
			t.Fatalf("readUE = %v,%v want %v", got, err, v)
		}
	}
	for _, v := range svalues {
		got, err := r.readSE()
		if err != nil || got != v {
			t.Fatalf("readSE = %v,%v want %v", got, err, v)
		}
	}
	got, err := r.readBits(8)
	if err != nil || got != 0xAB {
		t.Fatalf("readBits = %x,%v", got, err)
	}
}

func TestBitIOQuickRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		w := &bitWriter{}
		for _, v := range vals {
			w.writeUE(v % (1 << 24))
		}
		r := &bitReader{buf: w.bytes()}
		for _, v := range vals {
			got, err := r.readUE()
			if err != nil || got != v%(1<<24) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var src, freq, back [64]float64
	for i := range src {
		src[i] = float64(rng.Intn(256)) - 128
	}
	fdct8x8(&src, &freq)
	idct8x8(&freq, &back)
	for i := range src {
		if d := src[i] - back[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, z := range zigzag {
		if z < 0 || z > 63 || seen[z] {
			t.Fatalf("zigzag not a permutation: %v", zigzag)
		}
		seen[z] = true
	}
}

func TestQuantTableMonotoneInCRF(t *testing.T) {
	q0 := quantTable(0)
	q25 := quantTable(25)
	q51 := quantTable(51)
	for i := 0; i < 64; i++ {
		if !(q0[i] <= q25[i] && q25[i] <= q51[i]) {
			t.Fatalf("quant[%d] not monotone: %v %v %v", i, q0[i], q25[i], q51[i])
		}
		if q0[i] < 1 {
			t.Fatalf("quant[%d] < 1", i)
		}
	}
}

func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	// Robustness: bit flips in a valid stream must produce an error or a
	// (wrong) image, never a panic or a runaway allocation.
	rng := rand.New(rand.NewSource(99))
	src := gradientImage(48, 40)
	data := Encode(src, DefaultCRF)
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on corrupted input: %v", r)
				}
			}()
			img, err := Decode(corrupted)
			if err == nil && (img.W != 48 || img.H != 40) && (img.W > 1<<15 || img.H > 1<<15) {
				t.Fatalf("implausible decode result %dx%d", img.W, img.H)
			}
		}()
	}
}
