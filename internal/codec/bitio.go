package codec

import (
	"errors"
	"fmt"
)

// bitWriter packs bits most-significant-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits currently held in cur (< 8)
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | (b & 1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
}

// writeBits writes the low n bits of v, most significant first. n <= 56.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

// reset clears the writer for reuse, keeping the buffer's capacity if it is
// already at least sizeHint bytes.
func (w *bitWriter) reset(sizeHint int) {
	if cap(w.buf) < sizeHint {
		w.buf = make([]byte, 0, sizeHint)
	}
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// bytes flushes any partial byte (padding with zeros) and returns the
// buffer.
func (w *bitWriter) bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nCur)))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader consumes bits most-significant-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int  // byte index
	bit uint // bits consumed in current byte
}

var errBitUnderflow = errors.New("codec: bitstream underflow")

func (r *bitReader) readBit() (uint64, error) {
	if r.pos >= len(r.buf) {
		return 0, errBitUnderflow
	}
	b := uint64(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// Exponential-Golomb codes, as used by H.264's CAVLC for header syntax.
// ue(v): unsigned; se(v): signed mapped as 0,-1,1,-2,2,...

func (w *bitWriter) writeUE(v uint32) {
	x := uint64(v) + 1
	n := bitLen64(x)
	// n-1 leading zeros, then the n-bit value.
	w.writeBits(0, n-1)
	w.writeBits(x, n)
}

func (r *bitReader) readUE() (uint32, error) {
	var zeros uint
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, fmt.Errorf("codec: malformed exp-golomb code")
		}
	}
	rest, err := r.readBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32((uint64(1)<<zeros | rest) - 1), nil
}

func (w *bitWriter) writeSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.writeUE(u)
}

func (r *bitReader) readSE() (int32, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u&1 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

func bitLen64(x uint64) uint {
	var n uint
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
