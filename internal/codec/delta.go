// Delta (inter-frame) coding against a reference frame. Coterie's core
// observation (§3) is that panoramic frames at nearby grid points are
// highly similar — often SSIM ≥ 0.95 — so coding the residual against a
// frame the client already holds costs a fraction of an intra frame. A
// delta stream shares the intra magic but carries versionDelta in the
// version byte, so any stream identifies its own kind (see Kind) and a
// delta can never be mistaken for an intra frame by Decode.
//
// Layout after the shared magic(16)/version(8)/crf(8)/UE(W)/UE(H) header,
// per 8x8 block in raster order:
//
//	1 bit  skip flag — 1 means the quantised residual is all zero and the
//	       block is copied from the reference verbatim (the "zero-block
//	       skip map": similar regions cost one bit)
//	else   SE(DC) + AC run/level coding of the quantised residual DCT
//
// Residuals are cur−ref with no level shift (they are already centred on
// zero), and DC is coded without prediction: skip blocks would make the
// predictor chain ambiguous and residual DCs are near zero anyway.
package codec

import (
	"errors"
	"fmt"

	"coterie/internal/img"
)

// FrameKind identifies the stream layout of an encoded frame.
type FrameKind uint8

const (
	// KindUnknown marks streams too short or corrupt to classify.
	KindUnknown FrameKind = iota
	// KindIntra is a self-contained frame from Encode.
	KindIntra
	// KindDelta is a residual frame from DeltaEncode; it needs the
	// reference raster to reconstruct.
	KindDelta
)

// Kind inspects an encoded stream's header and reports its frame kind
// without decoding it.
func Kind(data []byte) FrameKind {
	if len(data) < 3 || data[0] != 0xC0 || data[1] != 0x7E {
		return KindUnknown
	}
	switch data[2] {
	case version:
		return KindIntra
	case versionDelta:
		return KindDelta
	}
	return KindUnknown
}

// DeltaEncode compresses cur as a residual against ref at the given CRF.
// Both frames must have identical dimensions; mismatched inputs return
// nil (the caller falls back to intra coding). Decode the result with
// DeltaDecode against the same reference raster.
func DeltaEncode(cur, ref *img.Gray, crf int) []byte {
	if cur == nil || ref == nil || cur.W != ref.W || cur.H != ref.H {
		return nil
	}
	q := quantTable(crf)
	bw := writerPool.Get().(*bitWriter)
	bw.reset(cur.W * cur.H / 16)
	bw.writeBits(magic, 16)
	bw.writeBits(versionDelta, 8)
	bw.writeBits(uint64(uint8(clampCRF(crf))), 8)
	bw.writeUE(uint32(cur.W))
	bw.writeUE(uint32(cur.H))

	bw64 := blocksAcross(cur.W)
	bh64 := blocksAcross(cur.H)

	var res, coef [64]float64
	for by := 0; by < bh64; by++ {
		for bx := 0; bx < bw64; bx++ {
			// Fast path: a byte-identical block skips the DCT entirely.
			if loadResidualBlock(cur, ref, bx*blockSize, by*blockSize, &res) {
				bw.writeBits(1, 1)
				continue
			}
			fdct8x8(&res, &coef)
			var zz [64]int32
			zero := true
			for i := 0; i < 64; i++ {
				c := coef[zigzag[i]] / q[zigzag[i]]
				if c >= 0 {
					zz[i] = int32(c + 0.5)
				} else {
					zz[i] = int32(c - 0.5)
				}
				if zz[i] != 0 {
					zero = false
				}
			}
			if zero {
				// Quantisation flattened the residual: still a skip block.
				bw.writeBits(1, 1)
				continue
			}
			bw.writeBits(0, 1)
			bw.writeSE(zz[0])
			encodeAC(bw, zz[1:])
		}
	}
	stream := bw.bytes()
	out := make([]byte, len(stream))
	copy(out, stream)
	writerPool.Put(bw)
	return out
}

// loadResidualBlock fills dst with cur−ref for the 8x8 block at (x0,y0),
// replicating edge pixels like loadBlock so both sides clamp identically.
// It reports whether the residual is exactly zero.
func loadResidualBlock(cur, ref *img.Gray, x0, y0 int, dst *[64]float64) bool {
	zero := true
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= cur.H {
			sy = cur.H - 1
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= cur.W {
				sx = cur.W - 1
			}
			d := float64(cur.Pix[sy*cur.W+sx]) - float64(ref.Pix[sy*ref.W+sx])
			if d != 0 {
				zero = false
			}
			dst[y*blockSize+x] = d
		}
	}
	return zero
}

// DeltaDecode reconstructs a frame produced by DeltaEncode against the
// same reference raster. The stream's dimensions must match ref's. The
// returned raster comes from the codec's buffer pool (see ReleaseGray).
func DeltaDecode(data []byte, ref *img.Gray) (*img.Gray, error) {
	if ref == nil {
		return nil, errors.New("codec: delta decode without reference")
	}
	br := &bitReader{buf: data}
	m, err := br.readBits(16)
	if err != nil || m != magic {
		return nil, errors.New("codec: bad magic")
	}
	ver, err := br.readBits(8)
	if err != nil || ver != versionDelta {
		return nil, fmt.Errorf("codec: not a delta stream (version %d)", ver)
	}
	crfBits, err := br.readBits(8)
	if err != nil {
		return nil, err
	}
	q := quantTable(int(crfBits))
	w32, err := br.readUE()
	if err != nil {
		return nil, err
	}
	h32, err := br.readUE()
	if err != nil {
		return nil, err
	}
	w, h := int(w32), int(h32)
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("codec: implausible dimensions %dx%d", w, h)
	}
	if w != ref.W || h != ref.H {
		return nil, fmt.Errorf("codec: delta %dx%d against %dx%d reference", w, h, ref.W, ref.H)
	}
	g := getGray(w, h)
	// Start from the reference; only non-skip blocks are rewritten.
	copy(g.Pix, ref.Pix)

	bw64 := blocksAcross(w)
	bh64 := blocksAcross(h)
	var coef, res [64]float64
	for by := 0; by < bh64; by++ {
		for bx := 0; bx < bw64; bx++ {
			skip, err := br.readBits(1)
			if err != nil {
				ReleaseGray(g)
				return nil, err
			}
			if skip == 1 {
				continue
			}
			var zz [64]int32
			dc, err := br.readSE()
			if err != nil {
				ReleaseGray(g)
				return nil, err
			}
			zz[0] = dc
			if err := decodeAC(br, zz[1:]); err != nil {
				ReleaseGray(g)
				return nil, err
			}
			for i := 0; i < 64; i++ {
				coef[zigzag[i]] = float64(zz[i]) * q[zigzag[i]]
			}
			idct8x8(&coef, &res)
			addResidualBlock(g, ref, bx*blockSize, by*blockSize, &res)
		}
	}
	return g, nil
}

// addResidualBlock writes ref+residual clamped to [0,255] for the 8x8
// block at (x0,y0), skipping out-of-bounds padding like storeBlock.
func addResidualBlock(g, ref *img.Gray, x0, y0 int, res *[64]float64) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= g.H {
			continue
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= g.W {
				continue
			}
			v := float64(ref.Pix[sy*ref.W+sx]) + res[y*blockSize+x]
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Pix[sy*g.W+sx] = uint8(v + 0.5)
		}
	}
}
