package codec

import (
	"math/rand"
	"testing"

	"coterie/internal/img"
)

func benchImage(w, h int) *img.Gray {
	rng := rand.New(rand.NewSource(1))
	g := img.NewGray(w, h)
	// Structured content: gradient + soft blobs (compressible, like a
	// rendered panorama).
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8(40+x/3+y/2))
		}
	}
	for i := 0; i < w*h/400; i++ {
		cx, cy, v := rng.Intn(w), rng.Intn(h), uint8(rng.Intn(256))
		for dy := -4; dy <= 4; dy++ {
			for dx := -4; dx <= 4; dx++ {
				x, y := cx+dx, cy+dy
				if x >= 0 && y >= 0 && x < w && y < h {
					g.Set(x, y, v)
				}
			}
		}
	}
	return g
}

func BenchmarkEncode256x128(b *testing.B) {
	src := benchImage(256, 128)
	b.ReportAllocs()
	b.SetBytes(int64(src.W * src.H))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(src, DefaultCRF)
	}
}

func BenchmarkDecode256x128(b *testing.B) {
	data := Encode(benchImage(256, 128), DefaultCRF)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
