package codec

import "math"

// 8x8 type-II DCT and its inverse, applied separably, as used by the
// intra-frame transform stage. Coefficients are precomputed with the
// orthonormal scale factor alpha(u) folded into the table, so the transform
// loops are pure multiply-accumulate with no per-element scaling.

const blockSize = 8

// dctCosA[u][x] = alpha(u) * cos((2x+1)u pi/16), where alpha(0) = sqrt(1/8)
// and alpha(u>0) = sqrt(2/8). Both the forward and inverse transforms consume
// this table: the forward pass scales each output coefficient u by alpha(u),
// the inverse pass scales each input coefficient by the same factor.
var dctCosA [blockSize][blockSize]float64

func init() {
	for u := 0; u < blockSize; u++ {
		a := math.Sqrt(2.0 / blockSize)
		if u == 0 {
			a = math.Sqrt(1.0 / blockSize)
		}
		for x := 0; x < blockSize; x++ {
			dctCosA[u][x] = a * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*blockSize))
		}
	}
}

// fdct8x8 computes the forward 8x8 DCT of src into dst (row-major, both 64
// elements).
func fdct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for x := 0; x < blockSize; x++ {
				s += src[y*blockSize+x] * dctCosA[u][x]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Columns.
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += tmp[y*blockSize+u] * dctCosA[v][y]
			}
			dst[v*blockSize+u] = s
		}
	}
}

// idct8x8 computes the inverse 8x8 DCT of src into dst.
func idct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < blockSize; u++ {
		for y := 0; y < blockSize; y++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += src[v*blockSize+u] * dctCosA[v][y]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += tmp[y*blockSize+u] * dctCosA[u][x]
			}
			dst[y*blockSize+x] = s
		}
	}
}

// zigzag maps scan order -> block index, the standard JPEG/H.264 zigzag.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// baseQuant is the JPEG luminance quantisation matrix; it is scaled by the
// quality factor derived from the CRF setting.
var baseQuant = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantTables holds the quantisation matrix for every CRF in [0, 51],
// precomputed once so Encode/Decode never rebuild the 64-entry table per
// frame.
var quantTables [52][64]float64

func init() {
	for crf := range quantTables {
		// Map CRF 0..51 to JPEG-style quality 100..10. CRF 25 lands at
		// quality ~56, which keeps structured frames above SSIM 0.9 like
		// the paper's x264 CRF 25 setting does (Table 7).
		quality := 100 - float64(crf)*90.0/51.0
		var scale float64
		if quality < 50 {
			scale = 5000 / quality
		} else {
			scale = 200 - 2*quality
		}
		for i := range quantTables[crf] {
			v := math.Floor((baseQuant[i]*scale + 50) / 100)
			if v < 1 {
				v = 1
			}
			quantTables[crf][i] = v
		}
	}
}

// quantTable returns the quantisation matrix for a CRF in [0, 51]. CRF 0 is
// near-lossless; the paper's server encodes with CRF 25 (§5.1).
func quantTable(crf int) *[64]float64 {
	return &quantTables[clampCRF(crf)]
}
