package loadgen

import (
	"net"
	"sync"
	"testing"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/render"
	"coterie/internal/server"
)

var (
	envOnce sync.Once
	envSrv  *server.Server
	envAddr string
	envErr  error
)

// testServer hosts one in-process pool server shared by the package's
// tests (PrepareEnv dominates test time).
func testServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	envOnce.Do(func() {
		spec, err := games.ByName("pool")
		if err != nil {
			envErr = err
			return
		}
		env, err := core.PrepareEnv(spec, core.EnvOptions{
			RenderCfg:   render.Config{W: 96, H: 48},
			SizeSamples: 2,
		})
		if err != nil {
			envErr = err
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			envErr = err
			return
		}
		srv := server.New(env)
		go srv.Serve(ln)
		envSrv, envAddr = srv, ln.Addr().String()
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envSrv, envAddr
}

func TestRunWalk(t *testing.T) {
	srv, addr := testServer(t)
	rep, err := Run(Config{
		Addr: addr, Game: "pool", Players: 4,
		Duration: 400 * time.Millisecond, Seed: 7, Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 || rep.FramesPerSec <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors: %+v", rep.Errors, rep)
	}
	if got := rep.Hits + rep.Joins + rep.Renders; got != rep.Frames {
		t.Errorf("classification %d+%d+%d != %d frames",
			rep.Hits, rep.Joins, rep.Renders, rep.Frames)
	}
	if rep.Renders == 0 {
		t.Error("a cold store saw no renders")
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P95Ms || rep.P95Ms < rep.P50Ms {
		t.Errorf("latency percentiles inconsistent: %+v", rep)
	}
	if rep.StoreBytes <= 0 {
		t.Errorf("in-process run reported store bytes %d", rep.StoreBytes)
	}
}

func TestRunStaticIsHitDominated(t *testing.T) {
	srv, addr := testServer(t)
	rep, err := Run(Config{
		Addr: addr, Game: "pool", Players: 2, Pattern: PatternStatic,
		Duration: 300 * time.Millisecond, Seed: 11, Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Standing still, everything after each player's first fetch is a
	// store hit.
	if rep.Frames < 10 {
		t.Fatalf("static run too small to judge: %+v", rep)
	}
	if rep.HitRate < 0.9 {
		t.Errorf("static pattern hit rate %.2f, want > 0.9", rep.HitRate)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1", Game: "no-such-game"}); err == nil {
		t.Error("unknown game accepted")
	}
	if _, err := Run(Config{Addr: "127.0.0.1:1", Game: "pool", Pattern: "teleport"}); err == nil {
		t.Error("unknown pattern accepted")
	}
	// An unreachable server must fail the run, not hang or report zero.
	if _, err := Run(Config{
		Addr: "127.0.0.1:1", Game: "pool", Duration: 100 * time.Millisecond,
	}); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestRunWithDeadline(t *testing.T) {
	srv, addr := testServer(t)
	rep, err := Run(Config{
		Addr: addr, Game: "pool", Players: 4, DeadlineMs: 16.7,
		Duration: 400 * time.Millisecond, Seed: 13, Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.DeadlineMs != 16.7 {
		t.Errorf("DeadlineMs = %v, want 16.7", rep.DeadlineMs)
	}
	// Every successful fetch lands on exactly one rung.
	if got := rep.RungExact + rep.RungStale + rep.RungReproject + rep.RungLowRes; got != rep.Frames {
		t.Errorf("rung mix %d != %d frames", got, rep.Frames)
	}
	if rep.DeadlineCompliance < 0 || rep.DeadlineCompliance > 1 {
		t.Errorf("compliance %v out of range", rep.DeadlineCompliance)
	}
	// Sheds (if any) must not kill players or leak into the success
	// percentiles: with errors recorded there must be error percentiles.
	if rep.Errors > 0 && rep.ErrP50Ms <= 0 {
		t.Errorf("%d errors but no error latency percentiles: %+v", rep.Errors, rep)
	}
}

func TestRateThrottling(t *testing.T) {
	srv, addr := testServer(t)
	const rate, secs = 20.0, 0.5
	rep, err := Run(Config{
		Addr: addr, Game: "pool", Players: 1, Pattern: PatternStatic,
		Rate: rate, Duration: time.Duration(secs * float64(time.Second)),
		Seed: 3, Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One throttled player can't exceed rate*duration (+1 for the fetch
	// in flight at the deadline); generous floor for slow CI.
	if max := int64(rate*secs) + 2; rep.Frames > max {
		t.Errorf("throttled run fetched %d frames, cap %d", rep.Frames, max)
	}
	if rep.Frames < 3 {
		t.Errorf("throttled run fetched only %d frames", rep.Frames)
	}
}

func TestSplitAddrsRoundRobin(t *testing.T) {
	addrs := splitAddrs(" a:1, b:2 ,,c:3 ")
	if len(addrs) != 3 || addrs[0] != "a:1" || addrs[1] != "b:2" || addrs[2] != "c:3" {
		t.Fatalf("splitAddrs = %v", addrs)
	}
	// Player p lands on the p mod n-th node.
	for p, want := range []string{"a:1", "b:2", "c:3", "a:1", "b:2"} {
		if got := addrFor(addrs, p); got != want {
			t.Errorf("player %d -> %s, want %s", p, got, want)
		}
	}
	if got := splitAddrs(" , "); got != nil {
		t.Errorf("splitAddrs blank = %v, want nil", got)
	}
	if got := addrFor(nil, 0); got != "" {
		t.Errorf("addrFor empty = %q", got)
	}
}

func TestMultiAddrRun(t *testing.T) {
	// Same server listed twice: the round-robin still has to produce a
	// working session per player, and a blank Addr list must refuse.
	srv, addr := testServer(t)
	rep, err := Run(Config{
		Addr: addr + " , " + addr, Game: "pool", Players: 2,
		Duration: 300 * time.Millisecond, Seed: 11, Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.PeerFrames != 0 || rep.FailoverFrames != 0 {
		t.Errorf("single-node run reported peer=%d failover=%d", rep.PeerFrames, rep.FailoverFrames)
	}
	if _, err := Run(Config{Addr: " , ", Game: "pool"}); err == nil {
		t.Error("Run with blank address list did not error")
	}
	if _, err := Warm(Config{Addr: "", Game: "pool"}, 1); err == nil {
		t.Error("Warm with blank address list did not error")
	}
}
