// Package loadgen drives synthetic multiplayer load against a Coterie
// frame server. Each simulated player holds its own TCP session and walks
// the game world issuing frame requests, mimicking the request stream a
// headset's prefetcher produces; the harness reports throughput, fetch
// latency percentiles, and the cache-hit mix. It works against any server
// reachable by address; when handed the in-process *server.Server it also
// reports frame-store residency and evictions.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/server"
	"coterie/internal/transport"
)

// Walk patterns. A walking player revisits grid cells and so exercises
// the frame store's hit path; a scattering player teleports uniformly and
// defeats it, pinning worst-case render throughput.
const (
	PatternWalk    = "walk"    // random walk from spawn, grid-scale steps
	PatternStatic  = "static"  // stand at spawn: all hits after the first
	PatternScatter = "scatter" // uniform random teleports: mostly misses
)

// Config parameterises one load run.
type Config struct {
	// Addr is the frame server's TCP address.
	Addr string
	// Game must match the game the server hosts.
	Game string
	// Players is the number of concurrent synthetic players (default 1).
	Players int
	// Rate is each player's request rate in frames/sec; <= 0 means
	// unthrottled (each player requests as fast as the server replies).
	Rate float64
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// Pattern is the movement model (PatternWalk by default).
	Pattern string
	// StepM is the walk step per request in metres; 0 derives a step of
	// a few grid cells so consecutive requests hit nearby points.
	StepM float64
	// Seed makes player movement reproducible.
	Seed int64
	// Server, when the target runs in-process, lets the report include
	// frame-store residency and evictions; nil leaves them at -1.
	Server *server.Server
}

// Report summarises a load run.
type Report struct {
	Players  int           `json:"players"`
	Duration time.Duration `json:"duration"`

	Frames int64 `json:"frames"` // successful fetches
	Errors int64 `json:"errors"`
	Bytes  int64 `json:"bytes"`
	// BytesPerFrame is the mean bytes on the wire per successful fetch —
	// the number the delta codec exists to shrink.
	BytesPerFrame float64 `json:"bytes_per_frame"`
	// DeltaFrames counts replies served delta-coded against a reference
	// the player held (walking players re-request nearby points, so the
	// server finds references constantly).
	DeltaFrames int64 `json:"delta_frames"`

	// Request mix, classified from each reply's server-side stages:
	// a reply that rendered is a store miss, one that only queued joined
	// another request's render, and one with neither hit the store.
	Hits    int64 `json:"hits"`
	Joins   int64 `json:"joins"`
	Renders int64 `json:"renders"`

	FramesPerSec float64 `json:"frames_per_sec"`
	HitRate      float64 `json:"hit_rate"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`

	// Frame-store state after the run; -1 when the server is remote.
	StoreBytes int64 `json:"store_bytes"`
	Evictions  int64 `json:"evictions"`
}

// playerStats is one player's tally, merged after the run.
type playerStats struct {
	frames, errors, bytes int64
	hits, joins, renders  int64
	deltas                int64
	latencies             []float64 // ms per successful fetch
	err                   error
}

// Run executes the configured load and reports. It returns an error only
// when the run could not start (unknown game, no player ever connected);
// per-request failures land in Report.Errors.
func Run(cfg Config) (Report, error) {
	if cfg.Players <= 0 {
		cfg.Players = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Pattern == "" {
		cfg.Pattern = PatternWalk
	}
	switch cfg.Pattern {
	case PatternWalk, PatternStatic, PatternScatter:
	default:
		return Report{}, fmt.Errorf("loadgen: unknown pattern %q", cfg.Pattern)
	}
	g, err := games.BuildByName(cfg.Game)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}
	step := cfg.StepM
	if step <= 0 {
		step = 3 * g.Scene.Grid.Step
	}

	stats := make([]playerStats, cfg.Players)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < cfg.Players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			stats[p] = runPlayer(cfg, g, step, p, deadline)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var rep Report
	rep.Players = cfg.Players
	rep.Duration = elapsed
	rep.StoreBytes, rep.Evictions = -1, -1
	var all []float64
	connected := false
	var firstErr error
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			if firstErr == nil {
				firstErr = st.err
			}
			continue
		}
		connected = true
		rep.Frames += st.frames
		rep.Errors += st.errors
		rep.Bytes += st.bytes
		rep.Hits += st.hits
		rep.Joins += st.joins
		rep.Renders += st.renders
		rep.DeltaFrames += st.deltas
		all = append(all, st.latencies...)
	}
	if !connected {
		return rep, fmt.Errorf("loadgen: no player connected: %w", firstErr)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.FramesPerSec = float64(rep.Frames) / secs
	}
	if rep.Frames > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Frames)
		rep.BytesPerFrame = float64(rep.Bytes) / float64(rep.Frames)
	}
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50)
	rep.P95Ms = percentile(all, 0.95)
	rep.P99Ms = percentile(all, 0.99)
	if cfg.Server != nil {
		rep.StoreBytes, rep.Evictions, _ = cfg.Server.StoreStats()
	}
	return rep, nil
}

// runPlayer is one synthetic player's session: connect, walk, fetch.
func runPlayer(cfg Config, g *games.Game, step float64, p int, deadline time.Time) playerStats {
	var st playerStats
	cl, err := server.Dial(cfg.Addr, cfg.Game, uint8(p))
	if err != nil {
		st.err = err
		return st
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(p)))
	bounds := g.Scene.Grid.Bounds
	// Spread spawn points a little so players don't serialise on one
	// point's singleflight from the first request.
	pos := bounds.ClampPoint(geom.V2(
		g.Spawn.X+(rng.Float64()-0.5)*4*step,
		g.Spawn.Z+(rng.Float64()-0.5)*4*step,
	))

	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	next := time.Now()
	for time.Now().Before(deadline) {
		reply, sentMs, doneMs, err := cl.FetchTraced(g.Scene.Grid.Snap(pos))
		if err != nil {
			st.errors++
			// A transport error kills the session; a server-side reject
			// (out-of-grid point, impossible here after clamping) would
			// arrive as a decoded error and leave the conn usable, but
			// FetchTraced folds both into err — reconnect is overkill for
			// a bounded run, so stop this player.
			return st
		}
		st.frames++
		st.bytes += int64(len(reply.Data))
		if reply.Kind == transport.FrameDelta {
			st.deltas++
		}
		st.latencies = append(st.latencies, doneMs-sentMs)
		switch {
		case reply.RenderMs > 0:
			st.renders++
		case reply.QueueMs > 0:
			st.joins++
		default:
			st.hits++
		}

		switch cfg.Pattern {
		case PatternStatic:
			// stay put
		case PatternScatter:
			pos = geom.V2(
				bounds.MinX+rng.Float64()*(bounds.MaxX-bounds.MinX),
				bounds.MinZ+rng.Float64()*(bounds.MaxZ-bounds.MinZ),
			)
		default: // PatternWalk
			theta := rng.Float64() * 2 * math.Pi
			pos = bounds.ClampPoint(geom.V2(
				pos.X+step*math.Cos(theta),
				pos.Z+step*math.Sin(theta),
			))
		}

		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return st
}

// percentile reads the q-quantile from ascending samples by
// nearest-rank interpolation; 0 for an empty set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
