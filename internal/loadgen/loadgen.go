// Package loadgen drives synthetic multiplayer load against a Coterie
// frame server. Each simulated player holds its own TCP session and walks
// the game world issuing frame requests, mimicking the request stream a
// headset's prefetcher produces; the harness reports throughput, fetch
// latency percentiles, and the cache-hit mix. It works against any server
// reachable by address; when handed the in-process *server.Server it also
// reports frame-store residency and evictions.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"coterie/internal/cluster"
	"coterie/internal/fisync"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/netsim"
	"coterie/internal/obs"
	"coterie/internal/server"
	"coterie/internal/transport"
)

// Walk patterns. A walking player revisits grid cells and so exercises
// the frame store's hit path; a scattering player teleports uniformly and
// defeats it, pinning worst-case render throughput.
const (
	PatternWalk    = "walk"    // random walk from spawn, grid-scale steps
	PatternStatic  = "static"  // stand at spawn: all hits after the first
	PatternScatter = "scatter" // uniform random teleports: mostly misses
)

// Config parameterises one load run.
type Config struct {
	// Addr is the frame server's TCP address. A comma-separated list
	// drives a cluster: player p connects to the p mod len(list)-th
	// address, spreading sessions round-robin across the nodes the way a
	// matchmaker would.
	Addr string
	// Game must match the game the server hosts.
	Game string
	// Players is the number of concurrent synthetic players (default 1).
	Players int
	// Rate is each player's request rate in frames/sec; <= 0 means
	// unthrottled (each player requests as fast as the server replies).
	Rate float64
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// Pattern is the movement model (PatternWalk by default).
	Pattern string
	// StepM is the walk step per request in metres; 0 derives a step of
	// a few grid cells so consecutive requests hit nearby points.
	StepM float64
	// SpreadM is the half-width of the spawn scatter around the game's
	// spawn point in metres; 0 derives a couple of steps. Large spreads
	// model players dispersed across the map, each exercising their own
	// region of the frame store.
	SpreadM float64
	// Seed makes player movement reproducible.
	Seed int64
	// DeadlineMs, when > 0, stamps every request with an absolute deadline
	// this many milliseconds after issue (the headset's next-vsync budget:
	// 16.7 for 60 Hz). The server schedules EDF against it, degrades when
	// it is at risk, and sheds when overloaded; shed requests land in the
	// error tally, not the player-fatal path.
	DeadlineMs float64
	// Server, when the target runs in-process, lets the report include
	// frame-store residency and evictions; nil leaves them at -1.
	Server *server.Server
	// AdminAddrs lists the cluster nodes' admin HTTP addresses. When
	// non-empty, the final report embeds a fleet view scraped from them
	// (merged /metrics, /slo and /qoe) so a cluster run's server-side
	// tallies ride along with the client-side ones.
	AdminAddrs []string
	// UDPFrames switches each player to the datagram frame path: fetches
	// go UDP-first (pushed frames consumed from the channel store, then a
	// request datagram) with the TCP session as fallback, and every step
	// uploads FI state over the same socket so the server's trajectory
	// predictor has positions to extrapolate. The server must run a UDP
	// listener on the same address as its TCP one.
	UDPFrames bool
	// Push opts each player's subscription into trajectory-driven server
	// push (needs UDPFrames and a push-enabled server).
	Push bool
	// UDPBudgetMs bounds each UDP fetch attempt before the player falls
	// back to TCP (0 = 50 ms). Fallback round trips are charged the spent
	// budget on top of the TCP time, so the percentiles price the miss.
	UDPBudgetMs float64
	// LossRate injects receive-side datagram loss per player (loopback
	// sockets do not lose packets on their own), exercising FEC repair
	// and NACK retransmits; LossSeed makes the drops reproducible.
	LossRate float64
	LossSeed int64
}

// Report summarises a load run.
type Report struct {
	Players  int           `json:"players"`
	Duration time.Duration `json:"duration"`

	Frames int64 `json:"frames"` // successful fetches
	Errors int64 `json:"errors"`
	Bytes  int64 `json:"bytes"`
	// BytesPerFrame is the mean bytes on the wire per successful fetch —
	// the number the delta codec exists to shrink.
	BytesPerFrame float64 `json:"bytes_per_frame"`
	// DeltaFrames counts replies served delta-coded against a reference
	// the player held (walking players re-request nearby points, so the
	// server finds references constantly).
	DeltaFrames int64 `json:"delta_frames"`

	// Request mix, classified from each reply's server-side stages:
	// a reply that rendered is a store miss, one that only queued joined
	// another request's render, and one with neither hit the store.
	Hits    int64 `json:"hits"`
	Joins   int64 `json:"joins"`
	Renders int64 `json:"renders"`

	FramesPerSec float64 `json:"frames_per_sec"`
	HitRate      float64 `json:"hit_rate"`
	// P50/P95/P99 cover successful fetches only; error round trips (sheds,
	// server rejects) are tallied separately below so a fast rejection
	// can't masquerade as a fast serve.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ErrP50/95/99Ms are the round-trip percentiles of errored requests
	// (0 when none errored).
	ErrP50Ms float64 `json:"err_p50_ms"`
	ErrP95Ms float64 `json:"err_p95_ms"`
	ErrP99Ms float64 `json:"err_p99_ms"`

	// DeadlineMs echoes Config.DeadlineMs; DeadlineCompliance is the
	// fraction of successful fetches whose round trip fit that budget
	// (the 16.7 ms frame budget when no deadline was configured).
	DeadlineMs         float64 `json:"deadline_ms"`
	DeadlineCompliance float64 `json:"deadline_compliance"`
	// Degrade-rung mix of the successful fetches (see transport.DegradeRung):
	// exact, stale-but-similar, reprojected-under-pressure, low-res upscaled.
	RungExact     int64 `json:"rung_exact"`
	RungStale     int64 `json:"rung_stale"`
	RungReproject int64 `json:"rung_reproject"`
	RungLowRes    int64 `json:"rung_lowres"`
	// Origin mix (see transport.FrameOrigin): PeerFrames were answered by
	// the grid point's owner over the cluster peer hop, FailoverFrames
	// were re-rendered locally because the owner was down or the hop was
	// at deadline risk. Both zero against a single-node server.
	PeerFrames     int64 `json:"peer_frames"`
	FailoverFrames int64 `json:"failover_frames"`

	// Datagram-path mix (UDPFrames runs only). UDPFetches are successful
	// fetches satisfied over UDP (pushed frame or request/reply datagram);
	// TCPFallbacks exhausted their UDP budget and fell back. PushHits are
	// fetches served by a frame the server pushed ahead of the request —
	// the latency the push machinery exists to delete — and
	// WastedPushBytes are pushed bytes the player never consumed
	// (mispredicted or evicted pushes: the bandwidth cost of pushing).
	UDPFetches      int64   `json:"udp_fetches,omitempty"`
	TCPFallbacks    int64   `json:"tcp_fallbacks,omitempty"`
	PushedFrames    int64   `json:"pushed_frames,omitempty"`
	PushedBytes     int64   `json:"pushed_bytes,omitempty"`
	PushHits        int64   `json:"push_hits,omitempty"`
	PushHitRatio    float64 `json:"push_hit_ratio,omitempty"`
	WastedPushBytes int64   `json:"wasted_push_bytes,omitempty"`
	NacksSent       int64   `json:"nacks_sent,omitempty"`
	FECRecovered    int64   `json:"fec_recovered,omitempty"`
	CorruptFrames   int64   `json:"corrupt_frames,omitempty"`

	// Frame-store state after the run; -1 when the server is remote.
	StoreBytes int64 `json:"store_bytes"`
	Evictions  int64 `json:"evictions"`

	// Fleet is the post-run fleet view scraped from Config.AdminAddrs
	// (nil when none were configured).
	Fleet *cluster.FleetView `json:"fleet,omitempty"`
}

// playerStats is one player's tally, merged after the run.
type playerStats struct {
	frames, errors, bytes int64
	hits, joins, renders  int64
	deltas                int64
	rungs                 [4]int64
	peer, failover        int64
	udpFetches, tcpFalls  int64
	udp                   *server.UDPStats // end-of-run channel snapshot
	latencies             []float64        // ms per successful fetch
	errLatencies          []float64        // ms per errored (shed/rejected) fetch
	err                   error
}

// Run executes the configured load and reports. It returns an error only
// when the run could not start (unknown game, no player ever connected);
// per-request failures land in Report.Errors.
func Run(cfg Config) (Report, error) {
	if cfg.Players <= 0 {
		cfg.Players = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Pattern == "" {
		cfg.Pattern = PatternWalk
	}
	switch cfg.Pattern {
	case PatternWalk, PatternStatic, PatternScatter:
	default:
		return Report{}, fmt.Errorf("loadgen: unknown pattern %q", cfg.Pattern)
	}
	g, err := games.BuildByName(cfg.Game)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}
	addrs := splitAddrs(cfg.Addr)
	if len(addrs) == 0 {
		return Report{}, fmt.Errorf("loadgen: no server address")
	}
	step := cfg.StepM
	if step <= 0 {
		step = 3 * g.Scene.Grid.Step
	}

	stats := make([]playerStats, cfg.Players)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < cfg.Players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			stats[p] = runPlayer(cfg, addrFor(addrs, p), g, step, p, deadline)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var rep Report
	rep.Players = cfg.Players
	rep.Duration = elapsed
	rep.StoreBytes, rep.Evictions = -1, -1
	rep.DeadlineMs = cfg.DeadlineMs
	var all, allErr []float64
	connected := false
	var firstErr error
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			if firstErr == nil {
				firstErr = st.err
			}
			continue
		}
		connected = true
		rep.Frames += st.frames
		rep.Errors += st.errors
		rep.Bytes += st.bytes
		rep.Hits += st.hits
		rep.Joins += st.joins
		rep.Renders += st.renders
		rep.DeltaFrames += st.deltas
		rep.RungExact += st.rungs[transport.RungExact]
		rep.RungStale += st.rungs[transport.RungStale]
		rep.RungReproject += st.rungs[transport.RungReproject]
		rep.RungLowRes += st.rungs[transport.RungLowRes]
		rep.PeerFrames += st.peer
		rep.FailoverFrames += st.failover
		rep.UDPFetches += st.udpFetches
		rep.TCPFallbacks += st.tcpFalls
		if st.udp != nil {
			rep.PushedFrames += st.udp.PushedRecv
			rep.PushedBytes += st.udp.PushedBytes
			rep.PushHits += st.udp.PushServes
			rep.WastedPushBytes += st.udp.PushedBytes - st.udp.PushedUsedBytes
			rep.NacksSent += st.udp.NacksSent
			rep.FECRecovered += st.udp.Reassembly.Recovered
			rep.CorruptFrames += st.udp.Reassembly.Corrupt
		}
		all = append(all, st.latencies...)
		allErr = append(allErr, st.errLatencies...)
	}
	if !connected {
		return rep, fmt.Errorf("loadgen: no player connected: %w", firstErr)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.FramesPerSec = float64(rep.Frames) / secs
	}
	if rep.Frames > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Frames)
		rep.BytesPerFrame = float64(rep.Bytes) / float64(rep.Frames)
		rep.PushHitRatio = float64(rep.PushHits) / float64(rep.Frames)
	}
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50)
	rep.P95Ms = percentile(all, 0.95)
	rep.P99Ms = percentile(all, 0.99)
	sort.Float64s(allErr)
	rep.ErrP50Ms = percentile(allErr, 0.50)
	rep.ErrP95Ms = percentile(allErr, 0.95)
	rep.ErrP99Ms = percentile(allErr, 0.99)
	budget := cfg.DeadlineMs
	if budget <= 0 {
		budget = obs.FrameBudgetMs
	}
	if len(all) > 0 {
		within := 0
		for _, l := range all {
			if l <= budget+1e-9 {
				within++
			}
		}
		rep.DeadlineCompliance = float64(within) / float64(len(all))
	}
	if cfg.Server != nil {
		rep.StoreBytes, rep.Evictions, _ = cfg.Server.StoreStats()
	}
	if len(cfg.AdminAddrs) > 0 {
		fleet := cluster.Scrape(cluster.FleetConfig{Admins: cfg.AdminAddrs})
		rep.Fleet = &fleet
	}
	return rep, nil
}

// splitAddrs parses Config.Addr into the node address list: comma-split,
// whitespace-trimmed, empties dropped.
func splitAddrs(addr string) []string {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// addrFor is the round-robin node assignment: player p connects to the
// p mod n-th address.
func addrFor(addrs []string, p int) string {
	if len(addrs) == 0 {
		return ""
	}
	return addrs[p%len(addrs)]
}

// walker replays one player's deterministic movement: trajectory is a pure
// function of (seed, player, pattern, step), so a warm-up pass can walk the
// exact ground a measured run will cover.
type walker struct {
	rng     *rand.Rand
	bounds  geom.Rect
	pattern string
	step    float64
	pos     geom.Vec2
}

func newWalker(cfg Config, g *games.Game, step float64, p int) *walker {
	w := &walker{
		rng:     rand.New(rand.NewSource(cfg.Seed*1000003 + int64(p))),
		bounds:  g.Scene.Grid.Bounds,
		pattern: cfg.Pattern,
		step:    step,
	}
	// Spread spawn points — by default a little, so players don't
	// serialise on one point's singleflight from the first request.
	halfW := cfg.SpreadM
	if halfW <= 0 {
		halfW = 2 * step
	}
	w.pos = w.bounds.ClampPoint(geom.V2(
		g.Spawn.X+(w.rng.Float64()-0.5)*2*halfW,
		g.Spawn.Z+(w.rng.Float64()-0.5)*2*halfW,
	))
	return w
}

// advance moves to the next position per the movement model.
func (w *walker) advance() {
	switch w.pattern {
	case PatternStatic:
		// stay put
	case PatternScatter:
		w.pos = geom.V2(
			w.bounds.MinX+w.rng.Float64()*(w.bounds.MaxX-w.bounds.MinX),
			w.bounds.MinZ+w.rng.Float64()*(w.bounds.MaxZ-w.bounds.MinZ),
		)
	default: // PatternWalk
		theta := w.rng.Float64() * 2 * math.Pi
		w.pos = w.bounds.ClampPoint(geom.V2(
			w.pos.X+w.step*math.Cos(theta),
			w.pos.Z+w.step*math.Sin(theta),
		))
	}
}

// Warm replays every player's first `steps` trajectory positions and
// fetches each distinct grid point once per target node (one warm session
// per address in Config.Addr), so the frame stores hold the ground a
// measured run will cover — the load-harness stand-in for the paper's
// offline pre-rendering of all reachable grid points (§5.1). Returns the
// number of warm fetches issued.
func Warm(cfg Config, steps int) (int, error) {
	if cfg.Players <= 0 {
		cfg.Players = 1
	}
	if cfg.Pattern == "" {
		cfg.Pattern = PatternWalk
	}
	g, err := games.BuildByName(cfg.Game)
	if err != nil {
		return 0, fmt.Errorf("loadgen: %w", err)
	}
	step := cfg.StepM
	if step <= 0 {
		step = 3 * g.Scene.Grid.Step
	}
	addrs := splitAddrs(cfg.Addr)
	if len(addrs) == 0 {
		return 0, fmt.Errorf("loadgen warm: no server address")
	}
	// One warm session per node: each player's ground is fetched through
	// the node that player will use in the measured run, so every node's
	// store (not just the owners') holds it.
	cls := make(map[string]*server.Client, len(addrs))
	defer func() {
		for _, cl := range cls {
			cl.Close()
		}
	}()
	seen := make(map[string]map[geom.GridPoint]bool, len(addrs))
	total := 0
	for p := 0; p < cfg.Players; p++ {
		addr := addrFor(addrs, p)
		cl := cls[addr]
		if cl == nil {
			var err error
			if cl, err = server.Dial(addr, cfg.Game, 0); err != nil {
				return total, fmt.Errorf("loadgen warm: %w", err)
			}
			cls[addr] = cl
			seen[addr] = make(map[geom.GridPoint]bool)
		}
		w := newWalker(cfg, g, step, p)
		for s := 0; s < steps; s++ {
			pt := g.Scene.Grid.Snap(w.pos)
			if !seen[addr][pt] {
				seen[addr][pt] = true
				total++
				if _, _, _, err := cl.FetchTraced(pt); err != nil {
					return total, fmt.Errorf("loadgen warm: %w", err)
				}
			}
			w.advance()
		}
	}
	return total, nil
}

// runPlayer is one synthetic player's session: connect, walk, fetch.
func runPlayer(cfg Config, addr string, g *games.Game, step float64, p int, deadline time.Time) playerStats {
	var st playerStats
	cl, err := server.Dial(addr, cfg.Game, uint8(p))
	if err != nil {
		st.err = err
		return st
	}
	defer cl.Close()

	// The datagram frame path rides a second, UDP socket to the same
	// address; the TCP session above stays open as the fallback.
	var udp *server.UDPChannel
	udpBudget := time.Duration(cfg.UDPBudgetMs * float64(time.Millisecond))
	if udpBudget <= 0 {
		udpBudget = 50 * time.Millisecond
	}
	if cfg.UDPFrames {
		udp, err = server.DialUDP(addr, uint8(p), cfg.Push, nil)
		if err != nil {
			st.err = err
			return st
		}
		defer udp.Close()
		if cfg.LossRate > 0 {
			udp.SetImpairer(netsim.NewImpairer(cfg.LossRate, cfg.LossSeed*1000003+int64(p)))
		}
	}

	w := newWalker(cfg, g, step, p)

	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
		// Desynchronise the players' request phases: real headsets tick on
		// independent vsync clocks, so without jitter every player would
		// fire in the same instant each period — an adversarial burst
		// pattern no real deployment produces. The jitter draw comes from
		// a separate source so throttling doesn't shift the trajectory.
		jrng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(p)))
		time.Sleep(time.Duration(jrng.Float64() * float64(interval)))
	}
	next := time.Now()
	var fiSeq uint32
	for time.Now().Before(deadline) {
		pt := g.Scene.Grid.Snap(w.pos)
		if udp != nil {
			// FI state first: it carries the position the server's
			// trajectory predictor extrapolates, so pushes target where
			// this player is headed. A lost round self-heals (Sync
			// resubscribes on timeout); the walk goes on regardless.
			// It runs before the fetch timer starts: FI sync is
			// control-plane traffic a real client overlaps with
			// rendering, not part of the frame fetch.
			fiSeq++
			udp.Sync(fisync.State{Player: uint8(p), Seq: fiSeq, Pos: w.pos}, udpBudget)
		}
		fetchStart := time.Now()
		served := false
		if udp != nil {
			if data, ok := udp.Fetch(pt, udpBudget); ok {
				st.frames++
				st.udpFetches++
				st.bytes += int64(len(data))
				// Datagram frames carry no rung or stage breakdown on the
				// wire; they are whole store bytes (pushes and replies come
				// from the warmed store), so they tally as exact hits.
				st.hits++
				st.rungs[transport.RungExact]++
				st.latencies = append(st.latencies, msSince(fetchStart))
				served = true
			} else {
				st.tcpFalls++
			}
		}
		if !served {
			var reqDeadline float64
			if cfg.DeadlineMs > 0 {
				reqDeadline = float64(time.Now().UnixNano())/1e6 + cfg.DeadlineMs
			}
			reply, sentMs, doneMs, err := cl.FetchWithDeadline(pt, reqDeadline)
			// A UDP-mode fallback is charged its spent UDP budget on top of
			// the TCP round trip: the player really waited both.
			lat := doneMs - sentMs
			if udp != nil {
				lat = msSince(fetchStart)
			}
			if err != nil {
				st.errors++
				// The server answering with an error (a shed under admission
				// control, an out-of-grid reject) leaves the session usable:
				// count it, keep its round trip out of the success percentiles,
				// and walk on. A transport error kills the session.
				var se *server.ServerError
				if !errors.As(err, &se) {
					return st
				}
				st.errLatencies = append(st.errLatencies, lat)
			} else {
				st.frames++
				st.bytes += int64(len(reply.Data))
				if reply.Kind == transport.FrameDelta {
					st.deltas++
				}
				st.latencies = append(st.latencies, lat)
				if int(reply.Rung) < len(st.rungs) {
					st.rungs[reply.Rung]++
				}
				switch reply.Origin {
				case transport.OriginPeer:
					st.peer++
				case transport.OriginFailover:
					st.failover++
				}
				switch {
				case reply.RenderMs > 0:
					st.renders++
				case reply.QueueMs > 0:
					st.joins++
				default:
					st.hits++
				}
			}
		}

		w.advance()

		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if udp != nil {
		s := udp.Stats()
		st.udp = &s
	}
	return st
}

// msSince is the wall milliseconds elapsed since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// percentile reads the q-quantile from ascending samples by
// nearest-rank interpolation; 0 for an empty set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
