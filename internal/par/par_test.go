package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit count not respected")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("auto worker count must be at least 1")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		seen := make([]atomic.Int32, n)
		For(workers, n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForDeterministicOutput(t *testing.T) {
	// The contract: indexed writes produce identical slices at any width.
	run := func(workers int) []int {
		out := make([]int, 200)
		For(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], base[i])
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -1, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForWorkerIndexInRange(t *testing.T) {
	const workers, n = 3, 40
	For := ForWorker
	bad := atomic.Int32{}
	For(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of range")
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForErr(workers, 100, func(i int) error {
			if i == 13 || i == 77 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 13" {
			t.Fatalf("workers=%d: err = %v, want item 13", workers, err)
		}
	}
	if err := ForErr(8, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if err := ForErr(8, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty range returned %v", err)
	}
}
