package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// fillJob writes i*i into slot i — the determinism contract: output
// identical for any worker count.
type fillJob struct {
	out []int64
}

func (j *fillJob) Run(i int) { j.out[i] = int64(i) * int64(i) }

// countJob counts invocations per index, to catch double execution.
type countJob struct {
	counts []atomic.Int64
}

func (j *countJob) Run(i int) { j.counts[i].Add(1) }

func TestPoolMatchesInline(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 3, 17, 128} {
			p := NewPool(workers)
			got := &fillJob{out: make([]int64, n)}
			p.Run(n, got)
			for i := 0; i < n; i++ {
				if got.out[i] != int64(i)*int64(i) {
					t.Fatalf("workers=%d n=%d: slot %d = %d", workers, n, i, got.out[i])
				}
			}
			p.Close()
		}
	}
}

func TestPoolRunsEachIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 257
	for round := 0; round < 20; round++ {
		j := &countJob{counts: make([]atomic.Int64, n)}
		p.Run(n, j)
		for i := range j.counts {
			if c := j.counts[i].Load(); c != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, c)
			}
		}
	}
}

func TestPoolConcurrentRuns(t *testing.T) {
	// Many goroutines share one pool; every call must complete with every
	// index executed exactly once, even when submissions outnumber workers
	// and callers fall back to inline execution.
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				j := &countJob{counts: make([]atomic.Int64, 64)}
				p.Run(64, j)
				for i := range j.counts {
					if c := j.counts[i].Load(); c != 1 {
						t.Errorf("index %d ran %d times", i, c)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolNilAndClosed(t *testing.T) {
	var p *Pool
	j := &fillJob{out: make([]int64, 8)}
	p.Run(8, j) // nil pool runs inline
	if j.out[7] != 49 {
		t.Fatal("nil pool did not run inline")
	}
	p.Close() // no-op

	q := NewPool(4)
	q.Run(8, &fillJob{out: make([]int64, 8)})
	q.Close()
	q.Close() // idempotent
	after := &fillJob{out: make([]int64, 8)}
	q.Run(8, after) // post-Close falls back to inline
	if after.out[5] != 25 {
		t.Fatal("closed pool did not run inline")
	}
}

func TestPoolRunAllocationFree(t *testing.T) {
	// The render hot path depends on Run being allocation-free at steady
	// state: the call state is freelisted and jobs are submitted through an
	// interface, so only the first Run (worker spawn, freelist growth) may
	// allocate.
	p := NewPool(4)
	defer p.Close()
	j := &countJob{counts: make([]atomic.Int64, 32)}
	p.Run(32, j) // warm: spawn workers, seed freelist
	if allocs := testing.AllocsPerRun(50, func() {
		p.Run(32, j)
	}); allocs > 0 {
		t.Errorf("Pool.Run allocates %.1f times per op, budget 0", allocs)
	}
}
