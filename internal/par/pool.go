package par

import (
	"sync"
	"sync/atomic"
)

// Job is one fan-out unit for a Pool: Run is called once for every index
// in [0, n), from whichever worker claims the index. Implementations must
// tolerate concurrent Run calls for distinct indices.
//
// Job is an interface rather than a closure so hot-path callers can pool
// the job value: submitting a *T through an interface does not allocate,
// whereas a fresh closure per call does.
type Job interface {
	Run(i int)
}

// Pool is a reusable fixed-size worker pool for latency-sensitive fan-out
// (the per-frame render path), where For's spawn-per-call goroutines and
// closure allocations are measurable. Workers start lazily on the first
// parallel Run and persist until Close; Run itself is allocation-free at
// steady state.
//
// Run may be called from many goroutines at once: concurrent calls share
// the same workers, which bounds the process's render parallelism to the
// pool size no matter how many sessions render simultaneously. When every
// worker is busy the submitting goroutine simply executes its whole call
// inline — submission never blocks and never deadlocks.
type Pool struct {
	workers int
	tickets chan *poolCall
	closed  chan struct{}

	startOnce sync.Once
	closeOnce sync.Once

	// free is an explicit freelist (not sync.Pool) so steady-state Run stays
	// allocation-free even across GC cycles — the render allocation-budget
	// test depends on that determinism.
	mu   sync.Mutex
	free []*poolCall
}

// poolCall is the shared state of one Run: workers and the caller claim
// indices from next until n is exhausted.
type poolCall struct {
	job  Job
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

// drain claims and runs indices until the call is exhausted.
func (c *poolCall) drain() {
	for {
		i := c.next.Add(1) - 1
		if i >= c.n {
			return
		}
		c.job.Run(int(i))
	}
}

// NewPool creates a pool with the given number of workers (resolved via
// Workers; n <= 0 means GOMAXPROCS). A pool of one worker runs everything
// inline and owns no goroutines. A nil *Pool is valid and also runs inline.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{workers: w}
	if w > 1 {
		// Capacity bounds stale tickets under heavy concurrent Run load;
		// submission falls back to inline work when full.
		p.tickets = make(chan *poolCall, w*4)
		p.closed = make(chan struct{})
	}
	return p
}

// Size returns the worker count the pool resolves work across (1 for a nil
// pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes job.Run(i) for every i in [0, n) and returns when all calls
// have finished. The caller's goroutine participates, so a Run on a busy
// pool degrades to inline execution rather than queueing behind other
// calls. With one worker (or a nil pool) the calls run inline in index
// order — the deterministic sequential path.
func (p *Pool) Run(n int, job Job) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			job.Run(i)
		}
		return
	}
	p.startOnce.Do(p.start)

	c := p.getCall()
	c.job = job
	c.n = int64(n)
	c.next.Store(0)

	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for i := 0; i < helpers; i++ {
		c.wg.Add(1)
		select {
		case p.tickets <- c:
		default:
			// Every worker is busy and the queue is full; absorb the
			// helper's share inline below.
			c.wg.Done()
		}
	}
	c.drain()
	c.wg.Wait()

	c.job = nil
	p.putCall(c)
}

// Close stops the pool's workers. It must not be called concurrently with
// Run; after Close, Run executes everything inline. Close on a nil or
// never-started pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.closed == nil {
		return
	}
	p.closeOnce.Do(func() {
		p.workers = 1 // subsequent Runs go inline
		close(p.closed)
	})
}

func (p *Pool) start() {
	for i := 0; i < p.workers-1; i++ {
		go p.worker()
	}
}

func (p *Pool) worker() {
	for {
		select {
		case c := <-p.tickets:
			c.drain()
			c.wg.Done()
		case <-p.closed:
			return
		}
	}
}

func (p *Pool) getCall() *poolCall {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		return c
	}
	return &poolCall{}
}

func (p *Pool) putCall(c *poolCall) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
