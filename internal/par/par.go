// Package par provides the small worker-pool fan-out primitive used by the
// experiment pipeline (internal/eval, internal/cutoff) and the offline
// preprocessing stages to parallelize independent units of work — trace
// positions, leaf regions, testbed sessions — while keeping output
// deterministic.
//
// The determinism contract: callers pass a closure that writes its result
// into index i of a preallocated slice (never append-from-goroutine), so the
// collected output is identical for any worker count. Work is handed out by
// an atomic counter, which balances uneven item costs (a quadtree leaf whose
// binary search converges late, a session with more players) better than
// static striping.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting: n > 0 means n workers, anything
// else means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across the given number of workers
// (resolved via Workers) and returns when all calls have finished. With one
// worker the calls run inline on the caller's goroutine in index order —
// the zero-overhead path sequential callers and the Parallel=1 determinism
// tests rely on.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's index passed alongside the item index,
// so callers can hand each worker its own scratch state (a world.Query, a
// reusable ssim.Comparer) allocated once per worker rather than once per
// item. Worker indices are in [0, Workers(workers)).
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wi := 0; wi < w; wi++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(wi)
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) and returns the error of the
// lowest index that failed (deterministic regardless of worker count), or
// nil if every call succeeded. All items run even when one fails; the
// per-item work in this codebase is side-effect-free on error, so draining
// is simpler and keeps the error choice deterministic.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
