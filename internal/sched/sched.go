// Package sched is the server's deadline-aware render scheduler: an
// EDF (earliest-deadline-first) admission gate in front of the render
// path. Render leaders Acquire a slot before touching the renderer and
// Release it after; at most Workers slots run concurrently (the
// concurrency knee — past it, added concurrency only inflates every
// request's latency on a fixed core budget), and waiters are granted
// slots in deadline order rather than arrival order, so a request whose
// vsync is imminent overtakes prerender and deadline-less traffic.
//
// Admission control bounds the queue: once MaxQueue waiters are parked,
// Acquire sheds (returns ok=false without blocking) and the caller
// degrades or rejects instead of joining a queue it cannot clear in
// time. The scheduler also keeps an EWMA of the full-render cost so
// callers can ask, before committing to a render, whether a deadline is
// already at risk (AtRisk) — the trigger for the server's quality
// degrade ladder — and so a granted slot can be flagged Rushed when the
// remaining budget no longer covers a full render.
//
// The scheduler owns no goroutines: a releasing slot hands directly to
// the minimum-deadline waiter, so an idle scheduler costs one mutex.
package sched

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"time"

	"coterie/internal/obs"
)

// defaultWorkers is the knee when Config.Workers is 0: one render slot
// per schedulable core.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Config sizes the scheduler.
type Config struct {
	// Workers is the concurrency knee: the number of render slots that
	// may run at once. 0 means one slot per schedulable core
	// (GOMAXPROCS at construction).
	Workers int
	// MaxQueue bounds the waiters parked behind the knee; Acquire sheds
	// once it is reached. 0 means DefaultMaxQueue.
	MaxQueue int
	// CostMs seeds the full-render cost estimate before the first
	// ObserveCost. 0 means DefaultCostMs.
	CostMs float64
}

const (
	// DefaultMaxQueue bounds the EDF queue when Config.MaxQueue is 0. At
	// ~10 ms per queued render on one core, a full default queue already
	// represents multiple seconds of backlog — far past any vsync
	// deadline — so a larger bound would only delay the inevitable shed.
	DefaultMaxQueue = 256
	// DefaultCostMs seeds the render-cost EWMA before any observation
	// (roughly one 256×128 panorama + encode on the reference core).
	DefaultCostMs = 10
	// DefaultFetchCostMs seeds the peer-fetch cost EWMA: a LAN round
	// trip to a warm peer store, far below a render.
	DefaultFetchCostMs = 2
	// costEWMAWeight is the weight of a new observation in the cost
	// EWMA; renders are frequent, so a light weight smooths scene- and
	// resolution-dependent jitter without lagging load shifts.
	costEWMAWeight = 0.2
)

// Info describes a granted slot.
type Info struct {
	// QueueMs is how long the caller waited for the slot.
	QueueMs float64
	// Rushed reports that, at grant time, the remaining budget to the
	// request's deadline no longer covered an estimated full render —
	// the caller should degrade if it can.
	Rushed bool
}

// Scheduler is an EDF slot gate. The zero value is not usable; call New.
type Scheduler struct {
	mu      sync.Mutex
	workers int
	maxQ    int
	running int
	waiters waiterHeap
	seq     uint64
	costMs  float64
	fetchMs float64

	sheds *obs.Counter
	depth *obs.Gauge
	wait  *obs.Histogram
}

type waiter struct {
	deadline float64 // absolute wall ms; +Inf when the request has none
	seq      uint64  // FIFO tie-break among equal deadlines
	ready    chan struct{}
	idx      int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// New creates a scheduler with cfg's knee and queue bound.
func New(cfg Config) *Scheduler {
	w := cfg.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	q := cfg.MaxQueue
	if q <= 0 {
		q = DefaultMaxQueue
	}
	c := cfg.CostMs
	if c <= 0 {
		c = DefaultCostMs
	}
	return &Scheduler{workers: w, maxQ: q, costMs: c, fetchMs: DefaultFetchCostMs}
}

// Instrument resolves the scheduler's instruments from r under the given
// name prefix (e.g. "server.sched"): <prefix>.sheds counts rejected
// admissions, <prefix>.queue_depth gauges parked waiters, and
// <prefix>.queue_wait_ms histograms slot waits.
func (s *Scheduler) Instrument(r *obs.Registry, prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sheds = r.Counter(prefix + ".sheds")
	s.depth = r.Gauge(prefix + ".queue_depth")
	s.wait = r.Histogram(prefix + ".queue_wait_ms")
}

// SetWorkers adjusts the concurrency knee at runtime. Raising it grants
// slots to queued waiters immediately; lowering it takes effect as
// running work releases.
func (s *Scheduler) SetWorkers(n int) {
	if n <= 0 {
		n = defaultWorkers()
	}
	s.mu.Lock()
	s.workers = n
	for s.running < s.workers && s.waiters.Len() > 0 {
		w := heap.Pop(&s.waiters).(*waiter)
		s.running++
		close(w.ready)
	}
	s.depth.Set(int64(s.waiters.Len()))
	s.mu.Unlock()
}

// Workers returns the current concurrency knee.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// QueueDepth returns the number of parked waiters.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}

// ObserveCost folds one measured full-render cost (ms) into the EWMA
// that backs AtRisk and Rushed.
func (s *Scheduler) ObserveCost(ms float64) {
	if ms <= 0 {
		return
	}
	s.mu.Lock()
	s.costMs += costEWMAWeight * (ms - s.costMs)
	s.mu.Unlock()
}

// CostMs returns the current full-render cost estimate.
func (s *Scheduler) CostMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.costMs
}

// ObserveFetchCost folds one measured peer-fetch round trip (ms) into
// the fetch-cost EWMA that backs FetchAtRisk. Tracked separately from
// the render cost: a fetch is a network hop to a node with the frame
// (usually) cached, so the two estimates differ by an order of
// magnitude and conflating them would make every hop look at risk.
func (s *Scheduler) ObserveFetchCost(ms float64) {
	if ms <= 0 {
		return
	}
	s.mu.Lock()
	s.fetchMs += costEWMAWeight * (ms - s.fetchMs)
	s.mu.Unlock()
}

// FetchCostMs returns the current peer-fetch cost estimate.
func (s *Scheduler) FetchCostMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchMs
}

// FetchAtRisk reports whether a peer fetch for a request due at
// deadlineMs (absolute wall ms; <=0 means no deadline) is projected to
// miss: now plus the estimated hop no longer fits. A true return is the
// cue to skip the hop and render locally — the local path can still
// degrade its way under the deadline, which a remote hop cannot.
func (s *Scheduler) FetchAtRisk(nowMs, deadlineMs float64) bool {
	if deadlineMs <= 0 {
		return false
	}
	s.mu.Lock()
	eta := nowMs + s.fetchMs
	s.mu.Unlock()
	return eta > deadlineMs
}

// AtRisk reports whether a request due at deadlineMs (absolute wall ms;
// <=0 means no deadline) is unlikely to be served by a full render in
// time: the work already admitted, spread over the knee, plus the
// request's own render is projected past the deadline. Callers use this
// before committing to the render path — a true return is the cue to
// serve a degraded-but-SSIM-bounded frame instead.
func (s *Scheduler) AtRisk(nowMs, deadlineMs float64) bool {
	if deadlineMs <= 0 {
		return false
	}
	s.mu.Lock()
	ahead := float64(s.waiters.Len()+s.running) / float64(s.workers)
	eta := nowMs + (ahead+1)*s.costMs
	s.mu.Unlock()
	return eta > deadlineMs
}

// Acquire blocks until a render slot is granted (in EDF order among
// waiters) and returns slot info, or sheds immediately (ok=false, no
// slot held) when the queue is at its admission bound. deadlineMs is
// the request's absolute wall-clock deadline in ms; <=0 means none —
// such requests sort after all deadline traffic and are never Rushed.
// Every ok=true return must be paired with Release.
func (s *Scheduler) Acquire(deadlineMs float64) (Info, bool) {
	dl := deadlineMs
	if dl <= 0 {
		dl = math.Inf(1)
	}
	s.mu.Lock()
	if s.running < s.workers && s.waiters.Len() == 0 {
		s.running++
		rushed := s.rushedLocked(deadlineMs)
		s.mu.Unlock()
		return Info{Rushed: rushed}, true
	}
	if s.waiters.Len() >= s.maxQ {
		s.mu.Unlock()
		s.sheds.Inc()
		return Info{}, false
	}
	s.seq++
	w := &waiter{deadline: dl, seq: s.seq, ready: make(chan struct{})}
	heap.Push(&s.waiters, w)
	s.depth.Set(int64(s.waiters.Len()))
	s.mu.Unlock()

	start := time.Now()
	<-w.ready
	queueMs := float64(time.Since(start)) / float64(time.Millisecond)
	s.wait.Observe(queueMs)

	s.mu.Lock()
	rushed := s.rushedLocked(deadlineMs)
	s.mu.Unlock()
	return Info{QueueMs: queueMs, Rushed: rushed}, true
}

// rushedLocked: with the slot granted, does an estimated full render
// still fit before the deadline?
func (s *Scheduler) rushedLocked(deadlineMs float64) bool {
	if deadlineMs <= 0 {
		return false
	}
	return wallMs()+s.costMs > deadlineMs
}

// Release returns a slot. fullCostMs, when >0, is the measured cost of
// the full render+encode the slot performed and feeds the cost EWMA
// (pass 0 for degraded or failed work, which is not representative).
// The slot hands directly to the minimum-deadline waiter, if any.
func (s *Scheduler) Release(fullCostMs float64) {
	s.mu.Lock()
	if fullCostMs > 0 {
		s.costMs += costEWMAWeight * (fullCostMs - s.costMs)
	}
	if s.waiters.Len() > 0 && s.running <= s.workers {
		w := heap.Pop(&s.waiters).(*waiter)
		s.depth.Set(int64(s.waiters.Len()))
		close(w.ready) // slot transfers: running count unchanged
	} else {
		s.running--
	}
	s.mu.Unlock()
}

// wallMs is the scheduler's wall clock: Unix milliseconds as float, the
// same epoch and unit the transport's deadline field carries.
func wallMs() float64 { return float64(time.Now().UnixNano()) / 1e6 }

// NowMs exposes the scheduler's wall clock for callers that need to
// compare against the same epoch (tests, deadline stamping).
func NowMs() float64 { return wallMs() }
