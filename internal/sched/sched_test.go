package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coterie/internal/obs"
)

// hold grabs the only slot of a 1-worker scheduler and returns a func
// that releases it.
func hold(t *testing.T, s *Scheduler) func() {
	t.Helper()
	if _, ok := s.Acquire(0); !ok {
		t.Fatal("could not acquire idle scheduler")
	}
	return func() { s.Release(0) }
}

// TestEDFOrder parks three waiters with distinct deadlines behind a
// held slot and asserts they are granted earliest-deadline-first, not
// in arrival order.
func TestEDFOrder(t *testing.T) {
	s := New(Config{Workers: 1})
	release := hold(t, s)

	now := NowMs()
	deadlines := []float64{now + 300, now + 100, now + 200} // arrival order ≠ EDF order
	var mu sync.Mutex
	var order []float64
	var wg sync.WaitGroup
	for _, dl := range deadlines {
		wg.Add(1)
		go func(dl float64) {
			defer wg.Done()
			if _, ok := s.Acquire(dl); !ok {
				t.Errorf("waiter %v shed unexpectedly", dl)
				return
			}
			mu.Lock()
			order = append(order, dl)
			mu.Unlock()
			s.Release(0)
		}(dl)
	}
	// Wait until all three are parked before releasing the slot, so the
	// heap — not goroutine scheduling — decides the order.
	waitFor(t, func() bool { return s.QueueDepth() == 3 })
	release()
	wg.Wait()

	want := []float64{now + 100, now + 200, now + 300}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestNoDeadlineSortsLast: a deadline-less waiter (prerender traffic)
// yields to any deadline waiter regardless of arrival order.
func TestNoDeadlineSortsLast(t *testing.T) {
	s := New(Config{Workers: 1})
	release := hold(t, s)

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := func(name string, dl float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire(dl)
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			s.Release(0)
		}()
	}
	start("prerender", 0)
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	start("deadline", NowMs()+100)
	waitFor(t, func() bool { return s.QueueDepth() == 2 })
	release()
	wg.Wait()

	if order[0] != "deadline" || order[1] != "prerender" {
		t.Fatalf("grant order %v, want [deadline prerender]", order)
	}
}

// TestShedAtMaxQueue: with the slot held and the queue full, Acquire
// sheds immediately and counts it; after release, admitted waiters
// drain normally.
func TestShedAtMaxQueue(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueue: 2})
	reg := obs.NewRegistry()
	s.Instrument(reg, "sched")
	release := hold(t, s)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := s.Acquire(0); ok {
				s.Release(0)
			}
		}()
	}
	waitFor(t, func() bool { return s.QueueDepth() == 2 })

	done := make(chan bool, 1)
	go func() {
		_, ok := s.Acquire(0)
		if ok {
			s.Release(0)
		}
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("third waiter admitted past MaxQueue=2")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shed Acquire blocked instead of returning")
	}
	if got := reg.Snapshot().Counters["sched.sheds"]; got != 1 {
		t.Fatalf("sheds counter = %d, want 1", got)
	}

	release()
	wg.Wait()
}

// TestRushedAndAtRisk pin the projection maths with a fixed cost EWMA.
func TestRushedAndAtRisk(t *testing.T) {
	s := New(Config{Workers: 1, CostMs: 50})

	now := NowMs()
	// Idle scheduler: one render (50 ms) against a 500 ms budget is safe...
	if s.AtRisk(now, now+500) {
		t.Error("generous deadline flagged at risk on idle scheduler")
	}
	// ...and a 10 ms budget is not.
	if !s.AtRisk(now, now+10) {
		t.Error("sub-cost deadline not flagged at risk")
	}
	if s.AtRisk(now, 0) {
		t.Error("deadline-less request flagged at risk")
	}

	// A granted slot against a tight budget is Rushed; a generous one is not.
	info, ok := s.Acquire(NowMs() + 10)
	if !ok {
		t.Fatal("acquire failed")
	}
	if !info.Rushed {
		t.Error("10 ms budget with 50 ms cost not rushed")
	}
	s.Release(0)
	info, _ = s.Acquire(NowMs() + 5000)
	if info.Rushed {
		t.Error("5 s budget rushed")
	}
	s.Release(0)

	// Queue depth inflates the projection: with the slot held and two
	// waiters parked, even a 2×cost budget is at risk.
	release := hold(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire(0)
			s.Release(0)
		}()
	}
	waitFor(t, func() bool { return s.QueueDepth() == 2 })
	now = NowMs()
	if !s.AtRisk(now, now+100) {
		t.Error("2×cost budget not at risk behind 3 queued renders")
	}
	release()
	wg.Wait()
}

// TestObserveCostEWMA: observations move the estimate toward the
// sample, seeded from Config.CostMs.
func TestObserveCostEWMA(t *testing.T) {
	s := New(Config{Workers: 1, CostMs: 10})
	for i := 0; i < 50; i++ {
		s.ObserveCost(20)
	}
	if c := s.CostMs(); c < 19 || c > 20 {
		t.Fatalf("EWMA %.2f after 50×20ms observations, want ≈20", c)
	}
	s.ObserveCost(0) // ignored
	s.ObserveCost(-5)
	if c := s.CostMs(); c < 19 {
		t.Fatalf("non-positive observations moved the EWMA: %.2f", c)
	}
}

func TestObserveFetchCostEWMA(t *testing.T) {
	s := New(Config{Workers: 1})
	if c := s.FetchCostMs(); c != DefaultFetchCostMs {
		t.Fatalf("fetch EWMA seed %.2f, want %v", c, DefaultFetchCostMs)
	}
	for i := 0; i < 50; i++ {
		s.ObserveFetchCost(8)
	}
	if c := s.FetchCostMs(); c < 7.5 || c > 8 {
		t.Fatalf("fetch EWMA %.2f after 50×8ms observations, want ≈8", c)
	}
	s.ObserveFetchCost(0) // ignored
	s.ObserveFetchCost(-1)
	if c := s.FetchCostMs(); c < 7.5 {
		t.Fatalf("non-positive observations moved the fetch EWMA: %.2f", c)
	}
	// The two EWMAs are independent: fetch observations must not move
	// the render-cost estimate.
	if c := s.CostMs(); c != DefaultCostMs {
		t.Fatalf("fetch observations moved the render EWMA: %.2f", c)
	}
}

func TestFetchAtRisk(t *testing.T) {
	s := New(Config{Workers: 1})
	for i := 0; i < 50; i++ {
		s.ObserveFetchCost(10)
	}
	now := NowMs()
	if s.FetchAtRisk(now, 0) {
		t.Error("deadline-less request reported at risk")
	}
	if s.FetchAtRisk(now, now+100) {
		t.Error("ample deadline reported at risk for a ~10ms hop")
	}
	if !s.FetchAtRisk(now, now+1) {
		t.Error("1ms budget not at risk for a ~10ms hop")
	}
}

// TestSetWorkersReleasesWaiters: raising the knee grants parked waiters
// without any Release.
func TestSetWorkersReleasesWaiters(t *testing.T) {
	s := New(Config{Workers: 1})
	release := hold(t, s)
	var granted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire(0)
			granted.Add(1)
			// Hold until the test ends so grants are attributable to
			// SetWorkers, not slot recycling.
			<-testDone
			s.Release(0)
		}()
	}
	waitFor(t, func() bool { return s.QueueDepth() == 3 })
	s.SetWorkers(4)
	waitFor(t, func() bool { return granted.Load() == 3 })
	close(testDone)
	release()
	wg.Wait()
}

var testDone = make(chan struct{})

// TestConcurrentChurn hammers Acquire/Release from many goroutines
// (run under -race) and checks slot accounting ends balanced.
func TestConcurrentChurn(t *testing.T) {
	s := New(Config{Workers: 3, MaxQueue: 8})
	reg := obs.NewRegistry()
	s.Instrument(reg, "sched")
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dl := float64(0)
				if i%2 == 0 {
					dl = NowMs() + float64(i%7)
				}
				if _, ok := s.Acquire(dl); ok {
					served.Add(1)
					s.Release(float64(i % 3))
				} else {
					shed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.QueueDepth() != 0 {
		t.Fatalf("queue not drained: %d", s.QueueDepth())
	}
	if got := served.Load() + shed.Load(); got != 16*200 {
		t.Fatalf("accounting: served %d + shed %d != %d", served.Load(), shed.Load(), 16*200)
	}
	if got := reg.Snapshot().Counters["sched.sheds"]; got != shed.Load() {
		t.Fatalf("sheds counter %d, callers saw %d", got, shed.Load())
	}
	// All slots free again: three holds must succeed without queueing.
	for i := 0; i < 3; i++ {
		if _, ok := s.Acquire(0); !ok {
			t.Fatal("slot leaked")
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
