package render

import (
	"math"
	"testing"

	"coterie/internal/games"
	"coterie/internal/geom"
)

// TestTileParallelMatchesSequentialAllGames is the determinism contract of
// the tile-parallel fan-out: for every game in the catalog, a renderer
// fanning bands across pool workers produces frames byte-identical to the
// strictly sequential renderer — panorama pixels, near-frame pixels and
// masks alike. Bands write disjoint rows, so worker count must be
// unobservable in the output.
func TestTileParallelMatchesSequentialAllGames(t *testing.T) {
	for _, spec := range games.Catalog() {
		t.Run(spec.Name, func(t *testing.T) {
			g := games.Build(spec)
			cfg := Config{W: 64, H: 32}
			cfg.Parallel = 1
			seq := New(g.Scene, cfg)
			cfg.Parallel = 4 // forces the pool path even on one CPU
			tiled := New(g.Scene, cfg)
			defer tiled.Close()

			eyes := []geom.Vec2{
				g.Spawn,
				g.Scene.Bounds.Center(),
				{X: g.Spawn.X + 1.5, Z: g.Spawn.Z - 0.5},
			}
			for _, p := range eyes {
				eye := g.Scene.EyeAt(g.Scene.Bounds.ClampPoint(p))
				a := seq.Panorama(eye, 0, math.Inf(1), nil)
				b := tiled.Panorama(eye, 0, math.Inf(1), nil)
				for i := range a.Pix {
					if a.Pix[i] != b.Pix[i] {
						t.Fatalf("%s: parallel panorama differs at pixel %d: %d vs %d",
							spec.Name, i, a.Pix[i], b.Pix[i])
					}
				}
				fa := seq.NearFrame(eye, 6, nil)
				fb := tiled.NearFrame(eye, 6, nil)
				for i := range fa.Mask {
					if fa.Mask[i] != fb.Mask[i] || fa.Gray.Pix[i] != fb.Gray.Pix[i] {
						t.Fatalf("%s: parallel near frame differs at %d", spec.Name, i)
					}
				}
				seq.ReleaseGray(a)
				tiled.ReleaseGray(b)
				seq.ReleaseFrame(fa)
				tiled.ReleaseFrame(fb)
			}
		})
	}
}

// TestPanoramaAllocationFree mirrors transport's TestFrameCodecAllocationFree
// for the render hot path: with the caller returning frames via
// ReleaseGray/ReleaseFrame, steady-state Panorama and NearFrame must not
// allocate — the BENCH_1.json baseline of 7 allocs and 33 KB per op is the
// regression this guards against.
func TestPanoramaAllocationFree(t *testing.T) {
	s := denseScene(11, 120)
	r := New(s, Config{W: 96, H: 48, Parallel: 4})
	defer r.Close()
	eye := s.EyeAt(geom.V2(55, 60))

	// Warm: spawn pool workers, seed every freelist (buffers, job, queries).
	for i := 0; i < 3; i++ {
		r.ReleaseGray(r.Panorama(eye, 0, math.Inf(1), nil))
		r.ReleaseFrame(r.NearFrame(eye, 8, nil))
	}

	if allocs := testing.AllocsPerRun(10, func() {
		g := r.Panorama(eye, 0, math.Inf(1), nil)
		r.ReleaseGray(g)
	}); allocs > 0 {
		t.Errorf("Panorama allocates %.1f times per op, budget 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		f := r.NearFrame(eye, 8, nil)
		r.ReleaseFrame(f)
	}); allocs > 0 {
		t.Errorf("NearFrame allocates %.1f times per op, budget 0", allocs)
	}
}

// TestReleaseGrayReusesBuffer pins the pooling behaviour: a released frame
// backs the next render, and foreign-sized buffers are rejected rather
// than poisoning the pool.
func TestReleaseGrayReusesBuffer(t *testing.T) {
	s := denseScene(12, 40)
	r := New(s, Config{W: 64, H: 32, Parallel: 1})
	eye := s.EyeAt(geom.V2(50, 50))

	a := r.Panorama(eye, 0, math.Inf(1), nil)
	first := &a.Pix[0]
	r.ReleaseGray(a)
	b := r.Panorama(eye, 0, math.Inf(1), nil)
	if &b.Pix[0] != first {
		t.Error("released frame was not reused by the next render")
	}

	// A frame of the wrong size must not enter the pool.
	other := New(s, Config{W: 32, H: 16, Parallel: 1})
	foreign := other.Panorama(eye, 0, math.Inf(1), nil)
	r.ReleaseGray(foreign)
	r.ReleaseGray(nil)
	c := r.Panorama(eye, 0, math.Inf(1), nil)
	if c.W != 64 || c.H != 32 {
		t.Fatalf("render returned foreign buffer %dx%d", c.W, c.H)
	}

	// Masks must come back cleared.
	f := r.NearFrame(eye, 8, nil)
	hadMask := false
	for _, m := range f.Mask {
		if m {
			hadMask = true
			break
		}
	}
	if !hadMask {
		t.Fatal("near frame saw no hits; test scene too empty")
	}
	r.ReleaseFrame(f)
	empty := r.NearFrame(eye, 0.01, nil) // cutoff too close for any hit
	for i, m := range empty.Mask {
		if m {
			t.Fatalf("reused mask not cleared at %d", i)
		}
	}
}
