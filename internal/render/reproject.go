// Reprojection synthesis: warp a panorama rendered at one eye position
// into the panorama a nearby eye position would see, without ray-casting
// the scene again. This is the render-side dual of the delta codec — the
// codec stops re-sending what the client already holds, reprojection
// stops re-rendering what the server already rendered. The image-space
// warp follows the split-rendering literature (PAPERS.md): each output
// ray is intersected with a constant-depth shell around the source eye,
// and the shell point is looked up in the source panorama. Far geometry
// (which is all a far-BE frame contains) moves slowly with viewpoint, so
// the constant-depth approximation holds exactly where Coterie's frame
// similarity argument holds; the server SSIM-checks the result against a
// ray-cast ground-truth band before trusting it (server.tryReproject).
package render

import (
	"math"

	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/par"
)

// reprojectJob warps row bands of the output panorama in parallel on the
// renderer's worker pool. Bands write disjoint rows, so the result is
// byte-identical for any worker count.
type reprojectJob struct {
	r       *Renderer
	src     *img.Gray
	out     *img.Gray
	fromEye geom.Vec3
	toEye   geom.Vec3
	depth   float64
	bands   int
}

// Run implements par.Job: warp the rows of band b.
func (j *reprojectJob) Run(b int) {
	w, h := j.r.Cfg.W, j.r.Cfg.H
	y0 := b * h / j.bands
	y1 := (b + 1) * h / j.bands
	fw, fh := float64(w), float64(h)
	for y := y0; y < y1; y++ {
		pitch := j.r.pitchAt(y)
		rowDirs := j.r.rowDirs(y)
		var cp, sp float64
		if rowDirs == nil {
			cp, sp = math.Cos(pitch), math.Sin(pitch)
		}
		for x := 0; x < w; x++ {
			var dir geom.Vec3
			if rowDirs != nil {
				dir = rowDirs[x]
			} else {
				yaw := -math.Pi + 2*math.Pi*(float64(x)+0.5)/fw
				dir = geom.V3(cp*math.Sin(yaw), sp, cp*math.Cos(yaw))
			}
			// The world point this output pixel assumes, on the constant-
			// depth shell, then the direction it subtends from the source
			// eye. With fromEye == toEye this is dir itself and the lookup
			// lands on the exact source pixel centre (identity warp).
			p := j.toEye.Add(dir.Scale(j.depth))
			sd := p.Sub(j.fromEye).Norm()
			sy := sd.Y
			if sy > 1 {
				sy = 1
			} else if sy < -1 {
				sy = -1
			}
			srcYaw := math.Atan2(sd.X, sd.Z)
			srcPitch := math.Asin(sy)
			u := (srcYaw + math.Pi) / (2 * math.Pi) * fw
			v := (math.Pi/2 - srcPitch) / math.Pi * fh
			j.out.Pix[y*w+x] = sampleBilinear(j.src, u-0.5, v-0.5)
		}
	}
}

// sampleBilinear reads the source panorama at fractional pixel (u, v) in
// pixel-centre coordinates, wrapping horizontally (yaw is periodic) and
// clamping vertically (the poles).
func sampleBilinear(g *img.Gray, u, v float64) uint8 {
	x0 := int(math.Floor(u))
	y0 := int(math.Floor(v))
	fx := u - float64(x0)
	fy := v - float64(y0)

	xi0 := wrapX(x0, g.W)
	xi1 := wrapX(x0+1, g.W)
	yi0 := clampY(y0, g.H)
	yi1 := clampY(y0+1, g.H)

	p00 := float64(g.Pix[yi0*g.W+xi0])
	p10 := float64(g.Pix[yi0*g.W+xi1])
	p01 := float64(g.Pix[yi1*g.W+xi0])
	p11 := float64(g.Pix[yi1*g.W+xi1])

	top := p00 + (p10-p00)*fx
	bot := p01 + (p11-p01)*fx
	return uint8(top + (bot-top)*fy + 0.5)
}

func wrapX(x, w int) int {
	x %= w
	if x < 0 {
		x += w
	}
	return x
}

func clampY(y, h int) int {
	if y < 0 {
		return 0
	}
	if y >= h {
		return h - 1
	}
	return y
}

// Reproject synthesizes the panorama at toEye from pano, a panorama of
// the same resolution rendered at fromEye, assuming all content sits at
// the given depth from the source eye. The warp runs on the renderer's
// tile-parallel pool and is deterministic for any worker count. The
// returned frame comes from the renderer's buffer pool (ReleaseGray).
//
// The approximation degrades as |toEye-fromEye|/depth grows; callers are
// expected to verify the result (e.g. against a PanoramaBand sample)
// before substituting it for a real render.
func (r *Renderer) Reproject(pano *img.Gray, fromEye, toEye geom.Vec3, depth float64) *img.Gray {
	w, h := r.Cfg.W, r.Cfg.H
	if pano == nil || pano.W != w || pano.H != h || depth <= 0 {
		return nil
	}
	out := r.getGray()

	workers := par.Workers(r.Cfg.Parallel)
	if workers > h {
		workers = h
	}
	bands := workers * bandsPerWorker
	if bands > h {
		bands = h
	}

	j := &reprojectJob{
		r: r, src: pano, out: out,
		fromEye: fromEye, toEye: toEye, depth: depth,
		bands: bands,
	}
	r.renderPool(workers).Run(bands, j)
	return out
}
