package render

import (
	"math"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/ssim"
)

func TestPanoramaBandMatchesFullRender(t *testing.T) {
	// The band renderer exists so reprojection verification can compare a
	// warped frame against ray-cast ground truth without paying for a full
	// render — which only works if band rows are byte-identical to the
	// same rows of a full Panorama.
	s := denseScene(41, 120)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(geom.V2(58, 61))
	full := r.Panorama(eye, 0, math.Inf(1), nil)
	for _, rows := range [][2]int{{0, 48}, {16, 32}, {0, 1}, {47, 48}, {-5, 60}} {
		band := r.PanoramaBand(eye, 0, math.Inf(1), nil, rows[0], rows[1])
		lo := rows[0]
		if lo < 0 {
			lo = 0
		}
		hi := rows[1]
		if hi > 48 {
			hi = 48
		}
		if band.W != 96 || band.H != hi-lo {
			t.Fatalf("band %v: dims %dx%d", rows, band.W, band.H)
		}
		for y := 0; y < band.H; y++ {
			for x := 0; x < band.W; x++ {
				if band.Pix[y*band.W+x] != full.Pix[(lo+y)*full.W+x] {
					t.Fatalf("band %v differs from full render at (%d,%d)", rows, x, lo+y)
				}
			}
		}
	}
}

func TestReprojectIdentityAtSameEye(t *testing.T) {
	// With fromEye == toEye every output ray subtends itself from the
	// source eye: the bilinear lookup lands on exact pixel centres and the
	// warp must reproduce the source byte-for-byte.
	s := denseScene(42, 100)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(geom.V2(60, 60))
	pano := r.Panorama(eye, 0, math.Inf(1), nil)
	rp := r.Reproject(pano, eye, eye, 50)
	if rp == nil {
		t.Fatal("Reproject returned nil for valid input")
	}
	for i := range pano.Pix {
		if rp.Pix[i] != pano.Pix[i] {
			t.Fatalf("identity warp changed pixel %d: %d vs %d", i, rp.Pix[i], pano.Pix[i])
		}
	}
	r.ReleaseGray(rp)
}

func TestReprojectDeterministicAcrossWorkers(t *testing.T) {
	s := denseScene(43, 100)
	eye := s.EyeAt(geom.V2(55, 58))
	to := s.EyeAt(geom.V2(56, 58.5))
	var want []uint8
	for _, workers := range []int{1, 2, 7} {
		r := New(s, Config{W: 96, H: 48, Parallel: workers})
		pano := r.Panorama(eye, 0, math.Inf(1), nil)
		rp := r.Reproject(pano, eye, to, 60)
		if want == nil {
			want = append([]uint8(nil), rp.Pix...)
		} else {
			for i := range want {
				if rp.Pix[i] != want[i] {
					t.Fatalf("Parallel=%d changed reprojection at pixel %d", workers, i)
				}
			}
		}
		r.Close()
	}
}

func TestReprojectRejectsBadInput(t *testing.T) {
	s := denseScene(44, 40)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(geom.V2(60, 60))
	pano := r.Panorama(eye, 0, math.Inf(1), nil)
	if r.Reproject(nil, eye, eye, 50) != nil {
		t.Fatal("nil pano accepted")
	}
	if r.Reproject(pano, eye, eye, 0) != nil {
		t.Fatal("zero depth accepted")
	}
	other := New(s, Config{W: 96, H: 48})
	if other.Reproject(pano, eye, eye, 50) != nil {
		t.Fatal("mismatched pano resolution accepted")
	}
}

func TestReprojectNearbyEyeStaysSimilar(t *testing.T) {
	// The property the server's fallback rule relies on: for a small eye
	// displacement relative to the content depth, the warped frame tracks
	// the real render closely (high SSIM), and the approximation degrades
	// as the displacement grows — which is exactly when the server's SSIM
	// verification rejects it and falls back to a full render.
	s := denseScene(45, 60)
	r := New(s, Config{W: 128, H: 64})
	from := s.EyeAt(geom.V2(60, 60))
	pano := r.Panorama(from, 20, math.Inf(1), nil)

	near := s.EyeAt(geom.V2(60.4, 60))
	far := s.EyeAt(geom.V2(70, 66))
	depth := 60.0

	rpNear := r.Reproject(pano, from, near, depth)
	gtNear := r.Panorama(near, 20, math.Inf(1), nil)
	sNear, err := ssim.Mean(rpNear, gtNear)
	if err != nil {
		t.Fatal(err)
	}
	rpFar := r.Reproject(pano, from, far, depth)
	gtFar := r.Panorama(far, 20, math.Inf(1), nil)
	sFar, err := ssim.Mean(rpFar, gtFar)
	if err != nil {
		t.Fatal(err)
	}
	if sNear < ssim.GoodThreshold {
		t.Fatalf("near reprojection SSIM %.4f below the good threshold %.2f", sNear, ssim.GoodThreshold)
	}
	if sFar >= sNear {
		t.Fatalf("reprojection quality did not degrade with distance: near %.4f, far %.4f", sNear, sFar)
	}
	t.Logf("reprojection SSIM: near %.4f, far %.4f", sNear, sFar)
}
