// Package render is the software rendering engine substituting for Unity's
// renderer. It ray-casts panoramic (equirectangular) frames of a
// world.Scene using perspective projection — the projection that causes the
// paper's "near-object" effect (§4.2): a small viewpoint displacement moves
// near geometry across many pixels and far geometry across few.
//
// The near-BE / far-BE split (§4.3) is realised with a per-ray hit-distance
// window: near BE accepts hits with t < cutoff, far BE accepts hits with
// t >= cutoff. An object straddling the cutoff contributes pixels to both
// halves, exactly as the paper permits.
package render

import (
	"math"
	"sync"

	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/par"
	"coterie/internal/world"
)

// Config controls panoramic frame generation.
type Config struct {
	// W, H are the panorama dimensions in pixels. Equirectangular: W
	// covers 360 degrees of yaw, H covers 180 degrees of pitch. The paper
	// prefetches 3840x2160 panoramas; experiments here default to 256x128,
	// which preserves similarity structure at laptop-scale cost.
	W, H int
	// Parallel is the number of rendering goroutines; 0 means GOMAXPROCS.
	Parallel int
}

// DefaultConfig is the resolution used by the experiment harness.
func DefaultConfig() Config { return Config{W: 256, H: 128} }

// Renderer renders frames of one scene. It is safe for concurrent use: all
// per-call scratch state is checked out of internal freelists, and the
// direction LUT is read-only after New.
//
// The render hot path is allocation-free at steady state when callers
// return finished frames with ReleaseGray/ReleaseFrame: output buffers,
// masks, scene queries and the fan-out job state are all pooled on the
// renderer. Callers that never release simply allocate a fresh frame per
// call, exactly as before.
type Renderer struct {
	Scene *world.Scene
	Cfg   Config

	// dirs and pitches are the per-pixel ray directions and per-row pitch
	// angles of the equirectangular projection, precomputed once per
	// renderer: W and H are fixed, so the yaw/pitch trig is identical for
	// every frame. dirs is nil when the resolution exceeds maxLUTPixels (or
	// when the Renderer was built as a bare literal); render falls back to
	// computing the same values inline.
	dirs    []geom.Vec3
	pitches []float64

	// pool fans row bands across persistent workers (tile-parallel
	// rendering: bands write disjoint rows, so output is deterministic for
	// any worker count). It is created lazily on the first render that
	// resolves to more than one worker, so a bare-literal Renderer and a
	// sequential config never own goroutines.
	poolOnce sync.Once
	pool     *par.Pool

	// Freelists for the per-call state. Explicit mutex-guarded freelists
	// (not sync.Pool) keep the steady state deterministic across GC cycles,
	// which the allocation-budget test relies on.
	mu        sync.Mutex
	freeGrays []*img.Gray
	freeMasks [][]bool
	freeJobs  []*renderJob
	freeQs    []*world.Query

	// lowRes caches reduced-resolution child renderers by divisor (see
	// LowRes). Children share the scene but own their LUTs and pools.
	lowRes map[int]*Renderer
}

// maxLUTPixels caps the direction table's memory (24 B/pixel); beyond ~2M
// pixels the table stops fitting in cache and per-frame trig is cheaper than
// the standing allocation.
const maxLUTPixels = 1 << 21

// New creates a renderer for the scene.
func New(s *world.Scene, cfg Config) *Renderer {
	if cfg.W <= 0 || cfg.H <= 0 {
		cfg = DefaultConfig()
	}
	r := &Renderer{Scene: s, Cfg: cfg}
	r.buildLUT()
	return r
}

// buildLUT precomputes the projection tables. The arithmetic matches the
// inline fallback exactly, so frames are bit-identical with or without it.
func (r *Renderer) buildLUT() {
	w, h := r.Cfg.W, r.Cfg.H
	if w*h > maxLUTPixels {
		return
	}
	r.pitches = make([]float64, h)
	r.dirs = make([]geom.Vec3, w*h)
	for y := 0; y < h; y++ {
		pitch := math.Pi/2 - math.Pi*(float64(y)+0.5)/float64(h)
		r.pitches[y] = pitch
		cp, sp := math.Cos(pitch), math.Sin(pitch)
		for x := 0; x < w; x++ {
			yaw := -math.Pi + 2*math.Pi*(float64(x)+0.5)/float64(w)
			r.dirs[y*w+x] = geom.V3(cp*math.Sin(yaw), sp, cp*math.Cos(yaw))
		}
	}
}

// pitchAt returns the pitch angle of row y.
func (r *Renderer) pitchAt(y int) float64 {
	if r.pitches != nil {
		return r.pitches[y]
	}
	return math.Pi/2 - math.Pi*(float64(y)+0.5)/float64(r.Cfg.H)
}

// rowDirs returns the precomputed ray directions of row y, or nil when the
// renderer has no LUT.
func (r *Renderer) rowDirs(y int) []geom.Vec3 {
	if r.dirs == nil {
		return nil
	}
	w := r.Cfg.W
	return r.dirs[y*w : (y+1)*w]
}

// Frame is a rendered panorama. Mask, when non-nil, flags the pixels that
// received a hit inside the render's distance window; unmasked pixels are
// transparent and get filled from the far-BE frame during merging.
type Frame struct {
	Gray *img.Gray
	Mask []bool
}

// sunDir is the fixed directional light.
var sunDir = geom.V3(0.4, 0.8, 0.45).Norm()

// Panorama renders an opaque 360-degree frame with hits restricted to
// [tMin, tMax); pixels without a hit in the window show the sky. dynamics
// are foreground-interaction objects (avatars, cars) tested in addition to
// the static scene; pass nil for pure BE frames.
//
// tMin=0, tMax=+Inf is a whole-BE frame (what Furion prefetches);
// tMin=cutoff, tMax=+Inf is a far-BE frame (what Coterie prefetches).
//
// Callers done with the frame may hand it back via ReleaseGray to keep the
// render path allocation-free; keeping it indefinitely is also fine.
func (r *Renderer) Panorama(eye geom.Vec3, tMin, tMax float64, dynamics []world.Object) *img.Gray {
	f := r.render(eye, tMin, tMax, dynamics, false)
	return f.Gray
}

// NearFrame renders the near-BE frame: hits with t < cutoff, with a
// transparency mask for merging. This is the part Coterie renders on the
// mobile GPU together with FI. Callers done with the frame may hand it
// back via ReleaseFrame.
func (r *Renderer) NearFrame(eye geom.Vec3, cutoff float64, dynamics []world.Object) Frame {
	return r.render(eye, 0, cutoff, dynamics, true)
}

// GroundTruth renders the reference frame used for visual-quality scoring:
// the full scene plus dynamics, no clipping, no codec in the path.
func (r *Renderer) GroundTruth(eye geom.Vec3, dynamics []world.Object) *img.Gray {
	return r.Panorama(eye, 0, math.Inf(1), dynamics)
}

// bandsPerWorker oversubscribes row bands relative to workers so the
// atomic work counter can balance uneven band costs (a band full of near
// geometry ray-casts against more of the scene than a sky band).
const bandsPerWorker = 4

// renderJob is the pooled fan-out state of one render call: Run(b) renders
// band b's rows into disjoint slices of the shared output, so bands never
// contend and the frame is byte-identical for any worker count.
type renderJob struct {
	r        *Renderer
	eye      geom.Vec3
	tMin     float64
	tMax     float64
	dynamics []world.Object
	out      *img.Gray
	mask     []bool
	pixAngle float64
	bands    int
	// rowLo/rowHi restrict the render to panorama rows [rowLo, rowHi);
	// out holds only those rows (row rowLo lands at out.Pix[0]). A full
	// render is rowLo=0, rowHi=H, which reproduces the original indexing
	// bit for bit. PanoramaBand uses a narrower window to ray-cast the
	// ground-truth sample band that validates reprojected frames.
	rowLo, rowHi int
}

// Run implements par.Job: render the rows of band b.
func (j *renderJob) Run(b int) {
	rows := j.rowHi - j.rowLo
	y0 := j.rowLo + b*rows/j.bands
	y1 := j.rowLo + (b+1)*rows/j.bands
	q := j.r.getQuery()
	for y := y0; y < y1; y++ {
		j.renderRow(q, y)
	}
	j.r.putQuery(q)
}

// renderRow ray-casts one output row.
func (j *renderJob) renderRow(q *world.Query, y int) {
	r, w := j.r, j.r.Cfg.W
	pitch := r.pitchAt(y)
	rowDirs := r.rowDirs(y)
	var cp, sp float64
	if rowDirs == nil {
		cp, sp = math.Cos(pitch), math.Sin(pitch)
	}
	for x := 0; x < w; x++ {
		var dir geom.Vec3
		if rowDirs != nil {
			dir = rowDirs[x]
		} else {
			yaw := -math.Pi + 2*math.Pi*(float64(x)+0.5)/float64(w)
			dir = geom.V3(cp*math.Sin(yaw), sp, cp*math.Cos(yaw))
		}
		ray := geom.Ray{Origin: j.eye, Direction: dir}

		hit, ok := r.Scene.Intersect(q, ray, j.tMin, j.tMax)
		// Dynamics are few; test them brute force.
		for di := range j.dynamics {
			limit := j.tMax
			if ok {
				limit = hit.T
			}
			if t, dok := j.dynamics[di].IntersectFrom(ray, j.tMin); dok && t < limit {
				hit = world.Hit{T: t, Object: &j.dynamics[di], Point: ray.At(t)}
				ok = true
			}
		}

		idx := (y-j.rowLo)*w + x
		if !ok {
			j.out.Pix[idx] = skyShade(pitch)
			continue
		}
		if j.mask != nil {
			j.mask[idx] = true
		}
		j.out.Pix[idx] = shade(hit, dir, j.pixAngle)
	}
}

func (r *Renderer) render(eye geom.Vec3, tMin, tMax float64, dynamics []world.Object, masked bool) Frame {
	w, h := r.Cfg.W, r.Cfg.H
	out := r.getGray()
	var mask []bool
	if masked {
		mask = r.getMask()
	}

	workers := par.Workers(r.Cfg.Parallel)
	if workers > h {
		workers = h
	}
	bands := workers * bandsPerWorker
	if bands > h {
		bands = h
	}

	j := r.getJob()
	*j = renderJob{
		r: r, eye: eye, tMin: tMin, tMax: tMax, dynamics: dynamics,
		out: out, mask: mask,
		// pixAngle is the angular width of one pixel; surface patterns are
		// area-filtered against it (see shade).
		pixAngle: 2 * math.Pi / float64(w),
		bands:    bands,
		rowLo:    0,
		rowHi:    h,
	}
	r.renderPool(workers).Run(bands, j)
	*j = renderJob{} // drop references before pooling
	r.putJob(j)
	return Frame{Gray: out, Mask: mask}
}

// PanoramaBand renders only panorama rows [rowLo, rowHi) of the frame
// Panorama would produce, returning a W x (rowHi-rowLo) raster whose rows
// match the full render byte for byte. The reprojection path uses it to
// ray-cast a thin ground-truth stripe — a fraction of a full render — to
// SSIM-validate a synthesized frame before serving it. The band raster is
// not pooled (its size varies); it is garbage for the collector.
func (r *Renderer) PanoramaBand(eye geom.Vec3, tMin, tMax float64, dynamics []world.Object, rowLo, rowHi int) *img.Gray {
	w, h := r.Cfg.W, r.Cfg.H
	if rowLo < 0 {
		rowLo = 0
	}
	if rowHi > h {
		rowHi = h
	}
	if rowHi <= rowLo {
		return img.NewGray(w, 0)
	}
	rows := rowHi - rowLo
	out := img.NewGray(w, rows)

	workers := par.Workers(r.Cfg.Parallel)
	if workers > rows {
		workers = rows
	}
	bands := workers * bandsPerWorker
	if bands > rows {
		bands = rows
	}

	j := r.getJob()
	*j = renderJob{
		r: r, eye: eye, tMin: tMin, tMax: tMax, dynamics: dynamics,
		out:      out,
		pixAngle: 2 * math.Pi / float64(w),
		bands:    bands,
		rowLo:    rowLo,
		rowHi:    rowHi,
	}
	r.renderPool(workers).Run(bands, j)
	*j = renderJob{}
	r.putJob(j)
	return out
}

// renderPool returns the renderer's worker pool, creating it on first use
// when the configured parallelism exceeds one worker. A nil pool runs
// inline, so sequential renderers never own goroutines.
func (r *Renderer) renderPool(workers int) *par.Pool {
	if workers <= 1 {
		return nil
	}
	r.poolOnce.Do(func() { r.pool = par.NewPool(workers) })
	return r.pool
}

// Close stops the renderer's worker pool, if one was started, along with
// any low-resolution child renderers'. The renderer remains usable
// afterwards — renders simply run sequentially. Close must not race
// in-flight renders.
func (r *Renderer) Close() {
	r.pool.Close()
	r.mu.Lock()
	children := make([]*Renderer, 0, len(r.lowRes))
	for _, lr := range r.lowRes {
		children = append(children, lr)
	}
	r.mu.Unlock()
	for _, lr := range children {
		lr.Close()
	}
}

// LowRes returns a renderer of the same scene at 1/factor resolution per
// axis (so 1/factor² of the rays), created on first use and cached. The
// server's quality-degrade ladder renders through it when a deadline
// cannot afford a full-resolution ray-cast, then upscales the result
// with UpscaleToFull. factor < 2 or a resolution too small to divide
// returns nil.
func (r *Renderer) LowRes(factor int) *Renderer {
	if factor < 2 {
		return nil
	}
	w, h := r.Cfg.W/factor, r.Cfg.H/factor
	if w < 2 || h < 2 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if lr, ok := r.lowRes[factor]; ok {
		return lr
	}
	cfg := r.Cfg
	cfg.W, cfg.H = w, h
	lr := New(r.Scene, cfg)
	if r.lowRes == nil {
		r.lowRes = make(map[int]*Renderer)
	}
	r.lowRes[factor] = lr
	return lr
}

// UpscaleToFull bilinearly upscales src to this renderer's full
// resolution, wrapping horizontally (the equirectangular yaw seam is
// continuous) and clamping vertically. The result comes from the
// renderer's buffer pool — release it with ReleaseGray like a Panorama.
func (r *Renderer) UpscaleToFull(src *img.Gray) *img.Gray {
	w, h := r.Cfg.W, r.Cfg.H
	out := r.getGray()
	sw, sh := src.W, src.H
	sx := float64(sw) / float64(w)
	sy := float64(sh) / float64(h)
	for y := 0; y < h; y++ {
		// Sample at pixel centres in source space.
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		ty := fy - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > sh-1 {
			y1 = sh - 1
		}
		row0 := src.Pix[y0*sw : (y0+1)*sw]
		row1 := src.Pix[y1*sw : (y1+1)*sw]
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			tx := fx - float64(x0)
			x1 := x0 + 1
			// Wrap in yaw: column -1 is the last column, column sw is the first.
			x0w := ((x0 % sw) + sw) % sw
			x1w := ((x1 % sw) + sw) % sw
			top := float64(row0[x0w])*(1-tx) + float64(row0[x1w])*tx
			bot := float64(row1[x0w])*(1-tx) + float64(row1[x1w])*tx
			out.Pix[y*w+x] = uint8(top*(1-ty) + bot*ty + 0.5)
		}
	}
	return out
}

// getGray checks an output buffer out of the freelist, or allocates one.
// Every pixel of a render is written (sky or shade), so reused buffers
// need no clearing.
func (r *Renderer) getGray() *img.Gray {
	r.mu.Lock()
	if n := len(r.freeGrays); n > 0 {
		g := r.freeGrays[n-1]
		r.freeGrays = r.freeGrays[:n-1]
		r.mu.Unlock()
		return g
	}
	r.mu.Unlock()
	return img.NewGray(r.Cfg.W, r.Cfg.H)
}

// ReleaseGray returns a frame obtained from Panorama or GroundTruth to the
// renderer's buffer pool. The caller must not touch the frame afterwards.
// Frames of a different resolution (or nil) are ignored, so callers may
// release unconditionally.
func (r *Renderer) ReleaseGray(g *img.Gray) {
	if g == nil || g.W != r.Cfg.W || g.H != r.Cfg.H {
		return
	}
	r.mu.Lock()
	r.freeGrays = append(r.freeGrays, g)
	r.mu.Unlock()
}

// getMask checks a mask out of the freelist (cleared) or allocates one.
func (r *Renderer) getMask() []bool {
	r.mu.Lock()
	if n := len(r.freeMasks); n > 0 {
		m := r.freeMasks[n-1]
		r.freeMasks = r.freeMasks[:n-1]
		r.mu.Unlock()
		clear(m)
		return m
	}
	r.mu.Unlock()
	return make([]bool, r.Cfg.W*r.Cfg.H)
}

// ReleaseFrame returns a NearFrame result (gray plane and mask) to the
// renderer's buffer pools. The caller must not touch the frame afterwards.
func (r *Renderer) ReleaseFrame(f Frame) {
	r.ReleaseGray(f.Gray)
	if len(f.Mask) != r.Cfg.W*r.Cfg.H {
		return
	}
	r.mu.Lock()
	r.freeMasks = append(r.freeMasks, f.Mask)
	r.mu.Unlock()
}

func (r *Renderer) getJob() *renderJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.freeJobs); n > 0 {
		j := r.freeJobs[n-1]
		r.freeJobs = r.freeJobs[:n-1]
		return j
	}
	return &renderJob{}
}

func (r *Renderer) putJob(j *renderJob) {
	r.mu.Lock()
	r.freeJobs = append(r.freeJobs, j)
	r.mu.Unlock()
}

func (r *Renderer) getQuery() *world.Query {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.freeQs); n > 0 {
		q := r.freeQs[n-1]
		r.freeQs = r.freeQs[:n-1]
		return q
	}
	return r.Scene.NewQuery()
}

func (r *Renderer) putQuery(q *world.Query) {
	r.mu.Lock()
	r.freeQs = append(r.freeQs, q)
	r.mu.Unlock()
}

// Merge composites a near-BE frame over a far-BE frame: masked (hit) pixels
// come from near, the rest from far. This is the client-side frame merging
// step (§5.1 task 5). The frames must be the same size.
func Merge(near Frame, far *img.Gray) *img.Gray {
	out := far.Clone()
	if near.Gray == nil || near.Mask == nil {
		return out
	}
	for i, m := range near.Mask {
		if m {
			out.Pix[i] = near.Gray.Pix[i]
		}
	}
	return out
}

// skyShade is the skybox: a function of view direction only, so it is
// identical from every viewpoint (infinitely far away).
func skyShade(pitch float64) uint8 {
	v := 168 + 50*math.Sin(math.Max(0, pitch))
	return uint8(v)
}

// shade computes the luma of a surface hit: base albedo x procedural
// pattern x Lambert lighting. Surface patterns are area-filtered by the
// pixel footprint (a mip-map in closed form): a distant surface whose
// texture period falls below the pixel size fades to its mean shade
// instead of aliasing into per-pixel noise. This mirrors real renderers
// and matters doubly here — far content must be smooth both for the codec
// (far-BE frames compress to a fraction of whole-BE frames, §7) and for
// SSIM (distant geometry looks nearly identical from nearby viewpoints).
func shade(h world.Hit, viewDir geom.Vec3, pixAngle float64) uint8 {
	if h.Object == nil {
		// Ground plane: 2 m world-space checker, area-filtered.
		const period = 2.0
		cx := int(math.Floor(h.Point.X / period))
		cz := int(math.Floor(h.Point.Z / period))
		checker := 0.49
		if (cx+cz)&1 == 0 {
			checker = 0.58
		}
		// Projected pixel footprint on the ground stretches by the
		// grazing angle.
		grazing := math.Max(math.Abs(viewDir.Y), 0.05)
		footprint := h.T * pixAngle / grazing
		blend := filterBlend(period, footprint)
		base := 0.53 + (checker-0.53)*blend
		// Fine ground detail (grass/gravel): a 0.4 m pattern that only
		// resolves near the viewer. This is what makes near BE content
		// expensive to encode and far-BE frames much smaller (§4.3).
		base += fineDetail(h.Point.X, h.Point.Z, 0.4, footprint)
		return clampShade(base * 255)
	}
	o := h.Object
	base := 0.30 + 0.55*o.Shade

	// Procedural world-space surface pattern so that displacement of the
	// viewpoint produces genuine pixel change on textured surfaces.
	p := h.Point
	freq := patternFreq(o)
	s := math.Sin(p.X*freq+float64(o.Pattern)) * math.Sin(p.Y*freq*1.3+1.7) * math.Sin(p.Z*freq+0.9)
	tex := 1.0
	if s > 0 {
		tex = 1.22
	} else {
		tex = 0.82
	}
	period := 2 * math.Pi / freq
	blend := filterBlend(period, h.T*pixAngle)
	if o.Smooth {
		// Painted wall / ceiling: faint large-scale tone variation only.
		tex = 1 + (tex-1)*blend*0.25
	} else {
		tex = 1 + (tex-1)*blend
		// Fine surface detail (bark, brickwork) resolving only up close.
		tex += fineDetail(p.X+p.Y, p.Z-p.Y, math.Max(period*0.12, 0.08), h.T*pixAngle) * 0.8
	}

	n := surfaceNormal(h)
	lambert := 0.55 + 0.45*math.Max(0, n.Dot(sunDir))
	return clampShade(base * tex * lambert * 255)
}

// fineDetail returns a +-0.09 noise texture with the given spatial period,
// area-filtered by the pixel footprint so it vanishes at distance. The
// noise is bilinearly interpolated between lattice values, like a
// filtered texture sample: small viewpoint shifts change it smoothly,
// which is what real game textures do.
func fineDetail(u, v, period, footprint float64) float64 {
	b := filterBlend(period, footprint)
	if b <= 0 {
		return 0
	}
	fu, fv := u/period, v/period
	iu, iv := math.Floor(fu), math.Floor(fv)
	tu, tv := fu-iu, fv-iv
	i, j := int64(iu), int64(iv)
	v00 := hashNoise(i, j)
	v10 := hashNoise(i+1, j)
	v01 := hashNoise(i, j+1)
	v11 := hashNoise(i+1, j+1)
	n := (v00*(1-tu)+v10*tu)*(1-tv) + (v01*(1-tu)+v11*tu)*tv
	return (n - 0.5) * 0.18 * b
}

func hashNoise(i, j int64) float64 {
	h := uint64(i)*0x9E3779B97F4A7C15 ^ uint64(j)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return float64(h%1024) / 1023
}

// filterBlend returns the contrast retained by area-filtering a pattern of
// the given spatial period with a pixel footprint: 1 when the pattern is
// well resolved, falling to 0 as the footprint approaches the period
// (Nyquist).
func filterBlend(period, footprint float64) float64 {
	if footprint <= 0 {
		return 1
	}
	b := period / (3 * footprint)
	return geom.Clamp(b, 0, 1)
}

// patternFreq scales the texture frequency to the object size so small
// props and large buildings both show visible structure.
func patternFreq(o *world.Object) float64 {
	size := o.Radius
	if o.Kind == world.KindBox {
		size = (o.Half.X + o.Half.Y + o.Half.Z) / 3
	}
	if size < 0.2 {
		size = 0.2
	}
	return 2 * math.Pi / (size * 0.8)
}

func surfaceNormal(h world.Hit) geom.Vec3 {
	o := h.Object
	switch o.Kind {
	case world.KindSphere:
		return h.Point.Sub(o.Center).Norm()
	default:
		// Box: pick the axis with the largest normalised offset.
		d := h.Point.Sub(o.Center)
		ax := math.Abs(d.X) / o.Half.X
		ay := math.Abs(d.Y) / o.Half.Y
		az := math.Abs(d.Z) / o.Half.Z
		switch {
		case ax >= ay && ax >= az:
			return geom.V3(math.Copysign(1, d.X), 0, 0)
		case ay >= az:
			return geom.V3(0, math.Copysign(1, d.Y), 0)
		default:
			return geom.V3(0, 0, math.Copysign(1, d.Z))
		}
	}
}

func clampShade(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// FoVCrop crops a horizontal field-of-view window centred at the given yaw
// (radians) out of an equirectangular panorama, the way the Coterie client
// crops the display view from the prefetched panoramic frame at almost no
// cost (§2.2). fovX and fovY are in radians.
func FoVCrop(pano *img.Gray, yaw, fovX, fovY float64) (*img.Gray, error) {
	w := int(float64(pano.W) * fovX / (2 * math.Pi))
	h := int(float64(pano.H) * fovY / math.Pi)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	if h > pano.H {
		h = pano.H
	}
	cx := int((yaw + math.Pi) / (2 * math.Pi) * float64(pano.W))
	y0 := (pano.H - h) / 2
	return pano.CropWrapX(cx-w/2, y0, w, h)
}
