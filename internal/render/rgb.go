package render

import (
	"math"
	"runtime"
	"sync"

	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/world"
)

// Colour rendering. The experiments run on luma frames (SSIM and the codec
// operate on luminance); the RGB path exists for inspection — screenshots,
// the examples' PPM output — and shares the luma path's geometry, shading
// structure and distance-window semantics.

// PanoramaRGB renders an opaque 360-degree colour frame with hits
// restricted to [tMin, tMax); pixels without a hit show the sky.
func (r *Renderer) PanoramaRGB(eye geom.Vec3, tMin, tMax float64, dynamics []world.Object) *img.RGB {
	w, h := r.Cfg.W, r.Cfg.H
	out := img.NewRGB(w, h)

	workers := r.Cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > h {
		workers = h
	}
	if workers < 1 {
		workers = 1
	}
	pixAngle := 2 * math.Pi / float64(w)

	var wg sync.WaitGroup
	rowsPer := (h + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		y0 := wi * rowsPer
		y1 := y0 + rowsPer
		if y1 > h {
			y1 = h
		}
		if y0 >= y1 {
			break
		}
		wg.Add(1)
		go func(y0, y1 int) {
			defer wg.Done()
			q := r.Scene.NewQuery()
			for y := y0; y < y1; y++ {
				pitch := r.pitchAt(y)
				rowDirs := r.rowDirs(y)
				var cp, sp float64
				if rowDirs == nil {
					cp, sp = math.Cos(pitch), math.Sin(pitch)
				}
				for x := 0; x < w; x++ {
					var dir geom.Vec3
					if rowDirs != nil {
						dir = rowDirs[x]
					} else {
						yaw := -math.Pi + 2*math.Pi*(float64(x)+0.5)/float64(w)
						dir = geom.V3(cp*math.Sin(yaw), sp, cp*math.Cos(yaw))
					}
					ray := geom.Ray{Origin: eye, Direction: dir}

					hit, ok := r.Scene.Intersect(q, ray, tMin, tMax)
					for di := range dynamics {
						limit := tMax
						if ok {
							limit = hit.T
						}
						if t, dok := dynamics[di].IntersectFrom(ray, tMin); dok && t < limit {
							hit = world.Hit{T: t, Object: &dynamics[di], Point: ray.At(t)}
							ok = true
						}
					}
					if !ok {
						sr, sg, sb := skyRGB(pitch)
						out.Set(x, y, sr, sg, sb)
						continue
					}
					cr, cg, cb := shadeRGB(hit, dir, pixAngle)
					out.Set(x, y, cr, cg, cb)
				}
			}
		}(y0, y1)
	}
	wg.Wait()
	return out
}

// skyRGB is a blue-to-pale gradient with the same luminance as skyShade.
func skyRGB(pitch float64) (uint8, uint8, uint8) {
	t := math.Max(0, math.Sin(pitch)) // 0 at horizon, 1 at zenith
	r := 200 - 90*t
	g := 212 - 60*t
	b := 235 - 10*t
	return uint8(r), uint8(g), uint8(b)
}

// objectTint derives a stable base colour for an object from its identity.
func objectTint(o *world.Object) (float64, float64, float64) {
	if o.Smooth {
		// Painted surfaces: neutral warm grey.
		return 0.95, 0.93, 0.88
	}
	h := uint64(o.ID)*0x9E3779B97F4A7C15 + uint64(o.Pattern)
	h ^= h >> 29
	hue := float64(h%360) / 360
	// Muted palette: mostly greens/browns for props, anything for builds.
	r, g, b := hsvToRGB(hue, 0.35, 1.0)
	return r, g, b
}

func hsvToRGB(h, s, v float64) (float64, float64, float64) {
	i := math.Floor(h * 6)
	f := h*6 - i
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	switch int(i) % 6 {
	case 0:
		return v, t, p
	case 1:
		return q, v, p
	case 2:
		return p, v, t
	case 3:
		return p, q, v
	case 4:
		return t, p, v
	default:
		return v, p, q
	}
}

// shadeRGB mirrors shade() with a colour tint: the luma structure (pattern,
// fine detail, Lambert) modulates a per-object hue.
func shadeRGB(h world.Hit, viewDir geom.Vec3, pixAngle float64) (uint8, uint8, uint8) {
	luma := float64(shade(h, viewDir, pixAngle)) / 255
	if h.Object == nil {
		// Ground: green-brown grass.
		return clamp8(luma * 0.72 * 255), clamp8(luma * 1.05 * 255), clamp8(luma * 0.55 * 255)
	}
	tr, tg, tb := objectTint(h.Object)
	return clamp8(luma * tr * 255), clamp8(luma * tg * 255), clamp8(luma * tb * 255)
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
