package render

import (
	"math"

	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/par"
	"coterie/internal/world"
)

// Colour rendering. The experiments run on luma frames (SSIM and the codec
// operate on luminance); the RGB path exists for inspection — screenshots,
// the examples' PPM output — and shares the luma path's geometry, shading
// structure, distance-window semantics and tile-parallel fan-out. It is a
// cold path, so its output is not pooled.

// rgbJob is the fan-out state of one colour render; Run(b) renders band
// b's rows, mirroring renderJob.
type rgbJob struct {
	r        *Renderer
	eye      geom.Vec3
	tMin     float64
	tMax     float64
	dynamics []world.Object
	out      *img.RGB
	pixAngle float64
	bands    int
}

// Run implements par.Job.
func (j *rgbJob) Run(b int) {
	r, w, h := j.r, j.r.Cfg.W, j.r.Cfg.H
	y0 := b * h / j.bands
	y1 := (b + 1) * h / j.bands
	q := r.getQuery()
	defer r.putQuery(q)
	for y := y0; y < y1; y++ {
		pitch := r.pitchAt(y)
		rowDirs := r.rowDirs(y)
		var cp, sp float64
		if rowDirs == nil {
			cp, sp = math.Cos(pitch), math.Sin(pitch)
		}
		for x := 0; x < w; x++ {
			var dir geom.Vec3
			if rowDirs != nil {
				dir = rowDirs[x]
			} else {
				yaw := -math.Pi + 2*math.Pi*(float64(x)+0.5)/float64(w)
				dir = geom.V3(cp*math.Sin(yaw), sp, cp*math.Cos(yaw))
			}
			ray := geom.Ray{Origin: j.eye, Direction: dir}

			hit, ok := r.Scene.Intersect(q, ray, j.tMin, j.tMax)
			for di := range j.dynamics {
				limit := j.tMax
				if ok {
					limit = hit.T
				}
				if t, dok := j.dynamics[di].IntersectFrom(ray, j.tMin); dok && t < limit {
					hit = world.Hit{T: t, Object: &j.dynamics[di], Point: ray.At(t)}
					ok = true
				}
			}
			if !ok {
				sr, sg, sb := skyRGB(pitch)
				j.out.Set(x, y, sr, sg, sb)
				continue
			}
			cr, cg, cb := shadeRGB(hit, dir, j.pixAngle)
			j.out.Set(x, y, cr, cg, cb)
		}
	}
}

// PanoramaRGB renders an opaque 360-degree colour frame with hits
// restricted to [tMin, tMax); pixels without a hit show the sky.
func (r *Renderer) PanoramaRGB(eye geom.Vec3, tMin, tMax float64, dynamics []world.Object) *img.RGB {
	w, h := r.Cfg.W, r.Cfg.H
	out := img.NewRGB(w, h)

	workers := par.Workers(r.Cfg.Parallel)
	if workers > h {
		workers = h
	}
	bands := workers * bandsPerWorker
	if bands > h {
		bands = h
	}
	j := &rgbJob{
		r: r, eye: eye, tMin: tMin, tMax: tMax, dynamics: dynamics,
		out: out, pixAngle: 2 * math.Pi / float64(w), bands: bands,
	}
	r.renderPool(workers).Run(bands, j)
	return out
}

// skyRGB is a blue-to-pale gradient with the same luminance as skyShade.
func skyRGB(pitch float64) (uint8, uint8, uint8) {
	t := math.Max(0, math.Sin(pitch)) // 0 at horizon, 1 at zenith
	r := 200 - 90*t
	g := 212 - 60*t
	b := 235 - 10*t
	return uint8(r), uint8(g), uint8(b)
}

// objectTint derives a stable base colour for an object from its identity.
func objectTint(o *world.Object) (float64, float64, float64) {
	if o.Smooth {
		// Painted surfaces: neutral warm grey.
		return 0.95, 0.93, 0.88
	}
	h := uint64(o.ID)*0x9E3779B97F4A7C15 + uint64(o.Pattern)
	h ^= h >> 29
	hue := float64(h%360) / 360
	// Muted palette: mostly greens/browns for props, anything for builds.
	r, g, b := hsvToRGB(hue, 0.35, 1.0)
	return r, g, b
}

func hsvToRGB(h, s, v float64) (float64, float64, float64) {
	i := math.Floor(h * 6)
	f := h*6 - i
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	switch int(i) % 6 {
	case 0:
		return v, t, p
	case 1:
		return q, v, p
	case 2:
		return p, v, t
	case 3:
		return p, q, v
	case 4:
		return t, p, v
	default:
		return v, p, q
	}
}

// shadeRGB mirrors shade() with a colour tint: the luma structure (pattern,
// fine detail, Lambert) modulates a per-object hue.
func shadeRGB(h world.Hit, viewDir geom.Vec3, pixAngle float64) (uint8, uint8, uint8) {
	luma := float64(shade(h, viewDir, pixAngle)) / 255
	if h.Object == nil {
		// Ground: green-brown grass.
		return clamp8(luma * 0.72 * 255), clamp8(luma * 1.05 * 255), clamp8(luma * 0.55 * 255)
	}
	tr, tg, tb := objectTint(h.Object)
	return clamp8(luma * tr * 255), clamp8(luma * tg * 255), clamp8(luma * tb * 255)
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
