package render

import (
	"math"
	"math/rand"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/ssim"
	"coterie/internal/world"
)

// denseScene builds a world with objects scattered at all ranges from the
// test viewpoints, so near objects exist to produce the near-object effect.
func denseScene(seed int64, n int) *world.Scene {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]world.Object, 0, n)
	for i := 0; i < n; i++ {
		c := geom.V3(rng.Float64()*120, 0, rng.Float64()*120)
		if i%4 == 0 {
			h := 1.5 + rng.Float64()*4
			objs = append(objs, world.Object{
				ID: i, Kind: world.KindBox,
				Center:    geom.V3(c.X, h/2, c.Z),
				Half:      geom.V3(0.8+rng.Float64()*2, h/2, 0.8+rng.Float64()*2),
				Triangles: 500 + rng.Intn(2000),
				Shade:     rng.Float64(),
				Pattern:   uint8(rng.Intn(8)),
			})
		} else {
			r := 0.3 + rng.Float64()*1.5
			objs = append(objs, world.Object{
				ID: i, Kind: world.KindSphere,
				Center:    geom.V3(c.X, r*0.8, c.Z),
				Radius:    r,
				Triangles: 200 + rng.Intn(1000),
				Shade:     rng.Float64(),
				Pattern:   uint8(rng.Intn(8)),
			})
		}
	}
	return world.New("dense", geom.NewRect(120, 120), 0.25, objs, 2)
}

func TestPanoramaDimensions(t *testing.T) {
	s := denseScene(1, 50)
	r := New(s, Config{W: 64, H: 32})
	g := r.Panorama(s.EyeAt(geom.V2(60, 60)), 0, math.Inf(1), nil)
	if g.W != 64 || g.H != 32 {
		t.Fatalf("dims %dx%d", g.W, g.H)
	}
}

func TestLUTMatchesInlineTrig(t *testing.T) {
	// The direction LUT must not change a single pixel: a renderer built as
	// a bare literal (no LUT) and one built by New (LUT) render identical
	// frames, masks included.
	s := denseScene(31, 120)
	cfg := Config{W: 96, H: 48}
	withLUT := New(s, cfg)
	if withLUT.dirs == nil {
		t.Fatal("expected LUT at experiment resolution")
	}
	noLUT := &Renderer{Scene: s, Cfg: cfg}
	eye := s.EyeAt(geom.V2(55, 62))
	a := withLUT.Panorama(eye, 0, math.Inf(1), nil)
	b := noLUT.Panorama(eye, 0, math.Inf(1), nil)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs with LUT: %d vs %d", i, a.Pix[i], b.Pix[i])
		}
	}
	fa := withLUT.NearFrame(eye, 8, nil)
	fb := noLUT.NearFrame(eye, 8, nil)
	for i := range fa.Mask {
		if fa.Mask[i] != fb.Mask[i] || fa.Gray.Pix[i] != fb.Gray.Pix[i] {
			t.Fatalf("near frame differs with LUT at %d", i)
		}
	}
	ra := withLUT.PanoramaRGB(eye, 0, math.Inf(1), nil)
	rb := noLUT.PanoramaRGB(eye, 0, math.Inf(1), nil)
	for i := range ra.Pix {
		if ra.Pix[i] != rb.Pix[i] {
			t.Fatalf("RGB differs with LUT at %d", i)
		}
	}
}

func TestPanoramaDeterministic(t *testing.T) {
	s := denseScene(2, 80)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(geom.V2(60, 60))
	a := r.Panorama(eye, 0, math.Inf(1), nil)
	b := r.Panorama(eye, 0, math.Inf(1), nil)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("non-deterministic render at pixel %d", i)
		}
	}
	// Independent of worker count.
	r1 := New(s, Config{W: 96, H: 48, Parallel: 1})
	c := r1.Panorama(eye, 0, math.Inf(1), nil)
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			t.Fatalf("parallelism changed output at pixel %d", i)
		}
	}
}

func TestSkyIdenticalAcrossViewpoints(t *testing.T) {
	// An empty world renders only ground and sky; the sky half must be
	// identical from any viewpoint (it is infinitely far away).
	s := world.New("empty", geom.NewRect(100, 100), 1, nil, 0)
	r := New(s, Config{W: 64, H: 32})
	a := r.Panorama(s.EyeAt(geom.V2(20, 20)), 0, math.Inf(1), nil)
	b := r.Panorama(s.EyeAt(geom.V2(80, 70)), 0, math.Inf(1), nil)
	for y := 0; y < 12; y++ { // rows well above the horizon
		for x := 0; x < 64; x++ {
			if a.At(x, y) != b.At(x, y) {
				t.Fatalf("sky differs at (%d,%d)", x, y)
			}
		}
	}
}

func TestNearObjectEffect(t *testing.T) {
	// The paper's central measurement (Figs 1, 3): whole-BE frames from
	// adjacent grid points are dissimilar because of near objects, while
	// far-BE frames (near geometry removed by the cutoff) are highly
	// similar.
	s := denseScene(3, 260)
	r := New(s, DefaultConfig())
	// Pick a viewpoint with objects nearby.
	p1 := geom.V2(60, 60)
	p2 := geom.V2(60.25, 60) // adjacent grid point, 25 cm away
	eye1, eye2 := s.EyeAt(p1), s.EyeAt(p2)

	whole1 := r.Panorama(eye1, 0, math.Inf(1), nil)
	whole2 := r.Panorama(eye2, 0, math.Inf(1), nil)
	sWhole, err := ssim.Mean(whole1, whole2)
	if err != nil {
		t.Fatal(err)
	}

	const cutoff = 8.0
	far1 := r.Panorama(eye1, cutoff, math.Inf(1), nil)
	far2 := r.Panorama(eye2, cutoff, math.Inf(1), nil)
	sFar, err := ssim.Mean(far1, far2)
	if err != nil {
		t.Fatal(err)
	}

	if sFar <= sWhole {
		t.Fatalf("removing near geometry should raise similarity: whole %.3f, far %.3f", sWhole, sFar)
	}
	if sFar < 0.9 {
		t.Fatalf("far-BE SSIM = %.3f, want >= 0.9 at cutoff %v", sFar, cutoff)
	}
	if sWhole > 0.97 {
		t.Fatalf("whole-BE SSIM = %.3f suspiciously high; near-object effect not exercised", sWhole)
	}
}

func TestFarSimilarityMonotoneInCutoff(t *testing.T) {
	// Fig 5: SSIM between adjacent far-BE frames increases with the
	// cutoff radius (allowing small non-monotonic jitter per step, so we
	// compare the ends).
	s := denseScene(4, 260)
	r := New(s, DefaultConfig())
	eye1 := s.EyeAt(geom.V2(55, 62))
	eye2 := s.EyeAt(geom.V2(55.25, 62))
	var first, last float64
	for i, cutoff := range []float64{0, 2, 6, 12} {
		f1 := r.Panorama(eye1, cutoff, math.Inf(1), nil)
		f2 := r.Panorama(eye2, cutoff, math.Inf(1), nil)
		sv, err := ssim.Mean(f1, f2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sv
		}
		last = sv
	}
	if last <= first {
		t.Fatalf("similarity did not increase with cutoff: %.3f -> %.3f", first, last)
	}
}

func TestNearFrameMask(t *testing.T) {
	s := denseScene(5, 100)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(geom.V2(60, 60))
	nf := r.NearFrame(eye, 10, nil)
	if nf.Mask == nil {
		t.Fatal("near frame must carry a mask")
	}
	masked := 0
	for _, m := range nf.Mask {
		if m {
			masked++
		}
	}
	if masked == 0 {
		t.Fatal("near frame empty: expected ground hits within cutoff")
	}
	if masked == len(nf.Mask) {
		t.Fatal("near frame fully opaque: cutoff window not applied")
	}
	// The bottom row looks almost straight down: ground at ~1.7 m, inside
	// the cutoff, so it must be masked.
	bottomStart := (nf.Gray.H - 1) * nf.Gray.W
	if !nf.Mask[bottomStart+nf.Gray.W/2] {
		t.Fatal("straight-down pixel should be in near BE")
	}
	// The top row is sky: never masked.
	if nf.Mask[nf.Gray.W/2] {
		t.Fatal("sky pixel must not be masked")
	}
}

func TestMergeReconstructsFullRender(t *testing.T) {
	// Merging the near frame with the far frame from the SAME viewpoint
	// must reproduce the unsplit render exactly: the split is lossless at
	// the cutoff boundary.
	s := denseScene(6, 150)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(geom.V2(60, 60))
	const cutoff = 7.0
	near := r.NearFrame(eye, cutoff, nil)
	far := r.Panorama(eye, cutoff, math.Inf(1), nil)
	merged := Merge(near, far)
	full := r.Panorama(eye, 0, math.Inf(1), nil)
	for i := range full.Pix {
		if merged.Pix[i] != full.Pix[i] {
			t.Fatalf("merge mismatch at pixel %d: %d vs %d", i, merged.Pix[i], full.Pix[i])
		}
	}
}

func TestMergeNilNear(t *testing.T) {
	far := img.NewGray(16, 16)
	far.Pix[5] = 77
	out := Merge(Frame{}, far)
	if out.Pix[5] != 77 {
		t.Fatal("nil near frame should copy far frame")
	}
	out.Pix[5] = 1
	if far.Pix[5] != 77 {
		t.Fatal("merge must not alias the far frame")
	}
}

func TestDynamicsRendered(t *testing.T) {
	s := world.New("empty", geom.NewRect(100, 100), 1, nil, 0)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(geom.V2(50, 50))
	// Avatar 3 m north of the eye at eye height.
	avatar := world.Object{
		ID: 1000, Kind: world.KindSphere,
		Center: geom.V3(50, 1.5, 53), Radius: 0.6, Triangles: 100, Shade: 0.9,
	}
	without := r.Panorama(eye, 0, math.Inf(1), nil)
	with := r.Panorama(eye, 0, math.Inf(1), []world.Object{avatar})
	diff, _ := img.MeanAbsDiff(without, with)
	if diff == 0 {
		t.Fatal("dynamic object did not render")
	}
}

func TestDynamicsRespectWindow(t *testing.T) {
	s := world.New("empty", geom.NewRect(100, 100), 1, nil, 0)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(geom.V2(50, 50))
	avatar := world.Object{
		ID: 1000, Kind: world.KindSphere,
		Center: geom.V3(50, 1.5, 53), Radius: 0.6, Triangles: 100, Shade: 0.9,
	}
	// Far window starting beyond the avatar: avatar's back face is at
	// ~3.6 m; with tMin=10 the avatar must be invisible.
	without := r.Panorama(eye, 10, math.Inf(1), nil)
	with := r.Panorama(eye, 10, math.Inf(1), []world.Object{avatar})
	diff, _ := img.MeanAbsDiff(without, with)
	if diff != 0 {
		t.Fatal("dynamic object leaked into far window")
	}
}

func TestFoVCrop(t *testing.T) {
	pano := img.NewGray(360, 180)
	for y := 0; y < 180; y++ {
		for x := 0; x < 360; x++ {
			pano.Set(x, y, uint8(x%256))
		}
	}
	fov, err := FoVCrop(pano, 0, math.Pi/2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if fov.W != 90 || fov.H != 90 {
		t.Fatalf("fov dims %dx%d", fov.W, fov.H)
	}
	// Yaw 0 maps to panorama centre column 180.
	centre := fov.At(fov.W/2, fov.H/2)
	if centre != uint8(180%256) {
		t.Fatalf("fov centre = %d, want 180", centre)
	}
	// Crop straddling the seam must not fail.
	if _, err := FoVCrop(pano, math.Pi*0.99, math.Pi/2, math.Pi/3); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthMatchesUnclippedPanorama(t *testing.T) {
	s := denseScene(7, 60)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(geom.V2(40, 40))
	a := r.GroundTruth(eye, nil)
	b := r.Panorama(eye, 0, math.Inf(1), nil)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("GroundTruth must equal unclipped panorama")
		}
	}
}

// TestLowResRenderer: the child renderer is cached per factor, renders at
// the divided resolution, and refuses degenerate configurations.
func TestLowResRenderer(t *testing.T) {
	s := denseScene(11, 60)
	r := New(s, Config{W: 64, H: 32})
	lr := r.LowRes(2)
	if lr == nil {
		t.Fatal("LowRes(2) returned nil for a divisible config")
	}
	if lr != r.LowRes(2) {
		t.Error("LowRes(2) not cached: second call returned a different renderer")
	}
	g := lr.Panorama(s.EyeAt(geom.V2(60, 60)), 0, math.Inf(1), nil)
	if g.W != 32 || g.H != 16 {
		t.Fatalf("low-res dims %dx%d, want 32x16", g.W, g.H)
	}
	lr.ReleaseGray(g)
	if r.LowRes(1) != nil {
		t.Error("LowRes(1) should be nil (no reduction)")
	}
	if New(s, Config{W: 4, H: 2}).LowRes(2) != nil {
		t.Error("LowRes on a too-small renderer should be nil")
	}
}

// TestUpscaleToFull: upscaling a low-res render approximates the full
// render (high SSIM on this mostly smooth content), lands at full
// resolution, and wraps the yaw seam instead of clamping it.
func TestUpscaleToFull(t *testing.T) {
	s := denseScene(12, 60)
	r := New(s, Config{W: 128, H: 64})
	eye := s.EyeAt(geom.V2(60, 60))
	full := r.Panorama(eye, 0, math.Inf(1), nil)
	small := r.LowRes(2).Panorama(eye, 0, math.Inf(1), nil)
	up := r.UpscaleToFull(small)
	if up.W != 128 || up.H != 64 {
		t.Fatalf("upscaled dims %dx%d, want 128x64", up.W, up.H)
	}
	score, err := ssim.Mean(full, up)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.8 {
		t.Fatalf("upscale SSIM %.3f vs full render, want >= 0.8", score)
	}
	// Seam continuity: the first and last columns sample across the yaw
	// wrap; neither may diverge from the full render more than interior
	// columns do on average.
	var seamErr, midErr float64
	for y := 0; y < up.H; y++ {
		seamErr += math.Abs(float64(up.Pix[y*up.W]) - float64(full.Pix[y*full.W]))
		midErr += math.Abs(float64(up.Pix[y*up.W+up.W/2]) - float64(full.Pix[y*full.W+full.W/2]))
	}
	if seamErr > 4*midErr+255 {
		t.Fatalf("yaw seam error %.0f far exceeds interior error %.0f: wrap broken", seamErr, midErr)
	}
}
