package render

import (
	"math"
	"testing"
)

func benchScene(n int) *Renderer {
	return New(denseScene(99, n), DefaultConfig())
}

func BenchmarkPanoramaWhole(b *testing.B) {
	r := benchScene(300)
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseGray(r.Panorama(eye, 0, math.Inf(1), nil))
	}
}

// BenchmarkPanoramaParallel is the tile-parallel variant: bands fan out
// across the renderer-owned worker pool. On a multi-core box this is the
// headline scaling number; on one core it measures pool overhead.
func BenchmarkPanoramaParallel(b *testing.B) {
	r := New(denseScene(99, 300), Config{W: 256, H: 128, Parallel: 0})
	defer r.Close()
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseGray(r.Panorama(eye, 0, math.Inf(1), nil))
	}
}

func BenchmarkPanoramaFar(b *testing.B) {
	r := benchScene(300)
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseGray(r.Panorama(eye, 8, math.Inf(1), nil))
	}
}

func BenchmarkNearFrame(b *testing.B) {
	r := benchScene(300)
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseFrame(r.NearFrame(eye, 8, nil))
	}
}

// BenchmarkPanoramaLUT / BenchmarkPanoramaNoLUT isolate the direction-LUT
// win: identical scene and view, with the second renderer built as a bare
// literal so buildLUT never runs and every pixel recomputes its yaw/pitch
// trig.
func BenchmarkPanoramaLUT(b *testing.B) {
	r := benchScene(300)
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseGray(r.Panorama(eye, 0, math.Inf(1), nil))
	}
}

func BenchmarkPanoramaNoLUT(b *testing.B) {
	withLUT := benchScene(300)
	r := &Renderer{Scene: withLUT.Scene, Cfg: withLUT.Cfg}
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReleaseGray(r.Panorama(eye, 0, math.Inf(1), nil))
	}
}

func BenchmarkMerge(b *testing.B) {
	r := benchScene(100)
	eye := r.Scene.EyeAt(r.Scene.Bounds.Center())
	near := r.NearFrame(eye, 8, nil)
	far := r.Panorama(eye, 8, math.Inf(1), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(near, far)
	}
}
