package render

import (
	"math"
	"testing"

	"coterie/internal/geom"
	"coterie/internal/world"
)

func TestPanoramaRGBDimensionsAndDeterminism(t *testing.T) {
	s := denseScene(21, 120)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(s.Bounds.Center())
	a := r.PanoramaRGB(eye, 0, math.Inf(1), nil)
	if a.W != 96 || a.H != 48 {
		t.Fatalf("dims %dx%d", a.W, a.H)
	}
	b := r.PanoramaRGB(eye, 0, math.Inf(1), nil)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("non-deterministic at byte %d", i)
		}
	}
}

func TestPanoramaRGBLumaMatchesGrayPath(t *testing.T) {
	// The RGB render shares the luma structure: converting it to gray
	// must strongly correlate with the direct gray render (not equal —
	// tints shift channel weights).
	s := denseScene(22, 150)
	r := New(s, Config{W: 96, H: 48})
	eye := s.EyeAt(s.Bounds.Center())
	gray := r.Panorama(eye, 0, math.Inf(1), nil)
	rgb := r.PanoramaRGB(eye, 0, math.Inf(1), nil).ToGray()
	var sum, n float64
	for i := range gray.Pix {
		d := float64(gray.Pix[i]) - float64(rgb.Pix[i])
		sum += d * d
		n++
	}
	rmse := math.Sqrt(sum / n)
	if rmse > 40 {
		t.Fatalf("RGB luma diverges from gray path: RMSE %.1f", rmse)
	}
}

func TestPanoramaRGBWindowAndSky(t *testing.T) {
	s := world.New("empty", geom.NewRect(100, 100), 1, nil, 0)
	r := New(s, Config{W: 64, H: 32})
	eye := s.EyeAt(s.Bounds.Center())
	m := r.PanoramaRGB(eye, 0, math.Inf(1), nil)
	// Top row is sky: blue channel dominates.
	cr, cg, cb := m.At(32, 0)
	if !(cb > cr && cb >= cg) {
		t.Fatalf("sky pixel not blue-ish: %d %d %d", cr, cg, cb)
	}
	// Bottom row is grass: green channel dominates.
	cr, cg, cb = m.At(32, 31)
	if !(cg > cr && cg > cb) {
		t.Fatalf("ground pixel not green-ish: %d %d %d", cr, cg, cb)
	}
	// A far window over an empty world shows no ground near the feet.
	far := r.PanoramaRGB(eye, 50, math.Inf(1), nil)
	fr, fg, fb := far.At(32, 31)
	if !(fb > fr && fb >= fg) {
		t.Fatalf("far window below-feet pixel should be sky: %d %d %d", fr, fg, fb)
	}
}
