package cache

import (
	"testing"

	"coterie/internal/geom"
)

func populated(n int) *Cache {
	cfg, _ := Version(3)
	c := New(cfg)
	for i := 0; i < n; i++ {
		c.Insert(entry(i%100, i/100, i%7, uint64(i%5), 0, 200*1024))
	}
	return c
}

func BenchmarkLookupHit(b *testing.B) {
	c := populated(500)
	r := req(50, 2, 50%7, uint64(50%5), 3, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(r)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := populated(500)
	r := req(5000, 5000, 1, 1, 3, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(r)
	}
}

func BenchmarkInsertWithLRUEviction(b *testing.B) {
	cfg, _ := Version(3)
	cfg.CapacityBytes = 100 << 20 // ~500 frames of 200 KB
	c := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(entry(i%1000, i/1000, 0, 1, 0, 200*1024))
	}
}

func BenchmarkInsertWithFLFEviction(b *testing.B) {
	cfg, _ := Version(3)
	cfg.CapacityBytes = 100 << 20
	cfg.Policy = FLF
	c := New(cfg)
	c.SetPlayerPos(geom.V2(0, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(entry(i%1000, i/1000, 0, 1, 0, 200*1024))
	}
}
