// Package cache implements the Coterie client's far-BE frame cache (§5.3).
//
// A cached far-BE frame for one grid point can be reused for a nearby grid
// point, but only under three criteria, all of which the lookup checks:
//
//  1. the cached frame's grid point is within the leaf region's distance
//     threshold of the requested point;
//  2. both points fall in the same leaf region (different regions may have
//     different cutoff radii, which would leave a gap between near and far
//     BE);
//  3. both points have the same near-BE object set (otherwise merging the
//     rendered near BE with the cached far BE would drop or duplicate
//     objects).
//
// Of the candidates, the closest one is returned. The cache also supports
// the five lookup configurations of Table 4 (exact/similar ×
// intra-player/inter-player) used by the §4.6 caching study, and the two
// replacement policies of §5.3: LRU (temporal locality) and FLF,
// furthest-location-first (spatial locality).
package cache

import (
	"fmt"
	"math"

	"coterie/internal/geom"
	"coterie/internal/obs"
)

// Policy selects the replacement policy.
type Policy int

const (
	// LRU evicts the least recently used frame.
	LRU Policy = iota
	// FLF evicts the frame whose grid point is furthest from the player's
	// current position in the virtual world.
	FLF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FLF:
		return "FLF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config selects a cache behaviour.
type Config struct {
	// CapacityBytes bounds the total size of cached frame payloads;
	// 0 means unlimited (the §4.6 study uses an infinite cache).
	CapacityBytes int64
	// Policy is the replacement policy used when CapacityBytes is hit.
	Policy Policy
	// ServeSimilar enables criteria-based similar-frame hits; when false
	// only exact grid-point matches hit (Versions 1-2 of Table 4).
	ServeSimilar bool
	// IntraPlayer serves frames the client prefetched itself.
	IntraPlayer bool
	// InterPlayer serves frames overheard from other players' prefetches.
	InterPlayer bool
}

// Version returns the cache configuration for the five versions of
// Table 4. Version 3 (intra-player, similar) is the configuration shipped
// in Coterie; inter-player caching adds little on top of it (§4.6) and
// needs wireless overhearing unsupported by phone NICs.
func Version(v int) (Config, error) {
	switch v {
	case 1:
		return Config{IntraPlayer: true}, nil
	case 2:
		return Config{InterPlayer: true}, nil
	case 3:
		return Config{IntraPlayer: true, ServeSimilar: true}, nil
	case 4:
		return Config{InterPlayer: true, ServeSimilar: true}, nil
	case 5:
		return Config{IntraPlayer: true, InterPlayer: true, ServeSimilar: true}, nil
	default:
		return Config{}, fmt.Errorf("cache: unknown version %d (Table 4 defines 1-5)", v)
	}
}

// Entry is one cached far-BE frame plus the metadata the lookup criteria
// need.
type Entry struct {
	Point   geom.GridPoint
	Pos     geom.Vec2 // ground position of Point
	LeafID  int       // cutoff leaf region containing Point
	NearSig uint64    // near-BE object-set signature at Point
	Data    []byte    // encoded frame payload (may be nil in trace studies)
	Size    int       // payload size in bytes (used even when Data is nil)
	Owner   int       // player that prefetched the frame
	// Pushed marks a frame the server pushed unsolicited over the
	// datagram path; a Lookup hit on one is the push paying off (the
	// fetch the client never had to issue).
	Pushed bool

	seq uint64 // LRU clock
}

// Request describes a lookup for the far-BE frame of one grid point.
type Request struct {
	Point      geom.GridPoint
	Pos        geom.Vec2
	LeafID     int
	NearSig    uint64
	DistThresh float64 // the requesting point's leaf distance threshold
	Player     int     // requesting player
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses        int64
	ExactHits           int64
	Inserts, Evictions  int64
	BytesStored         int64
	BytesServedFromHits int64
	// PushedHits counts Lookup hits served from server-pushed entries.
	PushedHits int64
}

// HitRatio returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is a per-client frame cache. It is not safe for concurrent use;
// each simulated client owns one.
type Cache struct {
	cfg     Config
	byPoint map[geom.GridPoint]*Entry
	cells   map[cellKey][]*Entry
	cell    float64
	clock   uint64
	stats   Stats
	// playerPos is the owner's latest position, the FLF eviction
	// reference point.
	playerPos geom.Vec2
	// obs mirrors stats into a metrics registry when instrumented; the
	// zero value (nil instruments) costs one predictable branch per op.
	obs instruments
}

// instruments are the cache's registry instruments; counters mirror Stats
// field-for-field so legacy reports and registry snapshots always agree.
type instruments struct {
	hits, misses, exactHits *obs.Counter
	inserts, evictions      *obs.Counter
	bytesServed             *obs.Counter
	bytesStored, entries    *obs.Gauge
	pushedHits              *obs.Counter
}

// Instrument mirrors the cache's counters into a registry under the
// "cache." namespace. Instrument(nil) is a no-op; caches sharing one
// registry (multi-player sessions) aggregate into the same instruments.
func (c *Cache) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.obs = instruments{
		hits:        r.Counter("cache.hits"),
		misses:      r.Counter("cache.misses"),
		exactHits:   r.Counter("cache.exact_hits"),
		inserts:     r.Counter("cache.inserts"),
		evictions:   r.Counter("cache.evictions"),
		bytesServed: r.Counter("cache.bytes_served_from_hits"),
		bytesStored: r.Gauge("cache.bytes_stored"),
		entries:     r.Gauge("cache.entries"),
		pushedHits:  r.Counter("cache.pushed_hits"),
	}
}

type cellKey struct{ cx, cz int32 }

// New creates a cache with the given configuration.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:     cfg,
		byPoint: make(map[geom.GridPoint]*Entry),
		cells:   make(map[cellKey][]*Entry),
		cell:    8, // bucket size in metres; lookups scan nearby buckets
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached frames.
func (c *Cache) Len() int { return len(c.byPoint) }

// SetPlayerPos updates the FLF eviction reference point.
func (c *Cache) SetPlayerPos(p geom.Vec2) { c.playerPos = p }

func (c *Cache) cellOf(p geom.Vec2) cellKey {
	return cellKey{int32(math.Floor(p.X / c.cell)), int32(math.Floor(p.Z / c.cell))}
}

// Insert stores a frame, evicting per policy if the capacity is exceeded.
// Inserting a frame for an already-cached grid point replaces it.
func (c *Cache) Insert(e Entry) {
	if old, ok := c.byPoint[e.Point]; ok {
		c.removeEntry(old)
	}
	c.clock++
	e.seq = c.clock
	ent := &e
	c.byPoint[e.Point] = ent
	k := c.cellOf(e.Pos)
	c.cells[k] = append(c.cells[k], ent)
	c.stats.Inserts++
	c.stats.BytesStored += int64(e.Size)
	c.obs.inserts.Inc()
	c.obs.bytesStored.Add(int64(e.Size))
	c.obs.entries.Add(1)

	if c.cfg.CapacityBytes > 0 {
		for c.stats.BytesStored > c.cfg.CapacityBytes && len(c.byPoint) > 1 {
			victim := c.pickVictim(ent)
			if victim == nil {
				break
			}
			c.removeEntry(victim)
			c.stats.Evictions++
			c.obs.evictions.Inc()
		}
	}
}

// pickVictim chooses an eviction victim per the policy, never the entry
// just inserted.
func (c *Cache) pickVictim(keep *Entry) *Entry {
	var victim *Entry
	switch c.cfg.Policy {
	case FLF:
		worst := -1.0
		for _, e := range c.byPoint {
			if e == keep {
				continue
			}
			d := e.Pos.Dist(c.playerPos)
			// Deterministic tie-break on the grid point: map iteration
			// order must not leak into simulation results.
			if d > worst || (d == worst && victim != nil && lessPoint(e.Point, victim.Point)) {
				worst, victim = d, e
			}
		}
	default: // LRU
		var oldest uint64 = math.MaxUint64
		for _, e := range c.byPoint {
			if e == keep {
				continue
			}
			if e.seq < oldest { // seq is unique: no tie-break needed
				oldest, victim = e.seq, e
			}
		}
	}
	return victim
}

func (c *Cache) removeEntry(e *Entry) {
	delete(c.byPoint, e.Point)
	k := c.cellOf(e.Pos)
	bucket := c.cells[k]
	for i := range bucket {
		if bucket[i] == e {
			bucket[i] = bucket[len(bucket)-1]
			c.cells[k] = bucket[:len(bucket)-1]
			break
		}
	}
	c.stats.BytesStored -= int64(e.Size)
	c.obs.bytesStored.Add(-int64(e.Size))
	c.obs.entries.Add(-1)
}

// visible reports whether the entry may serve the requesting player under
// the intra/inter configuration.
func (c *Cache) visible(e *Entry, player int) bool {
	if e.Owner == player {
		return c.cfg.IntraPlayer
	}
	return c.cfg.InterPlayer
}

// Lookup finds the best cached frame for the request. The second return is
// false on a miss. The hit/miss counters are updated; use Peek for a
// side-effect-free probe.
func (c *Cache) Lookup(req Request) (*Entry, bool) {
	e, exact := c.peek(req)
	if e != nil {
		c.touch(e)
		c.stats.Hits++
		c.obs.hits.Inc()
		if exact {
			c.stats.ExactHits++
			c.obs.exactHits.Inc()
		}
		if e.Pushed {
			c.stats.PushedHits++
			c.obs.pushedHits.Inc()
		}
		c.stats.BytesServedFromHits += int64(e.Size)
		c.obs.bytesServed.Add(int64(e.Size))
		return e, true
	}
	c.stats.Misses++
	c.obs.misses.Inc()
	return nil, false
}

// Peek is Lookup without statistics or recency side effects.
func (c *Cache) Peek(req Request) (*Entry, bool) {
	e, _ := c.peek(req)
	return e, e != nil
}

func (c *Cache) peek(req Request) (found *Entry, exact bool) {
	// Exact grid-point match serves under any configuration that can see
	// the entry (Versions 1-2 serve only these).
	if e, ok := c.byPoint[req.Point]; ok && c.visible(e, req.Player) {
		return e, true
	}
	if !c.cfg.ServeSimilar || req.DistThresh <= 0 {
		return nil, false
	}
	// Scan the buckets overlapping the threshold disc for the closest
	// entry satisfying all three criteria.
	r := req.DistThresh
	k0 := c.cellOf(geom.V2(req.Pos.X-r, req.Pos.Z-r))
	k1 := c.cellOf(geom.V2(req.Pos.X+r, req.Pos.Z+r))
	best := math.Inf(1)
	for cz := k0.cz; cz <= k1.cz; cz++ {
		for cx := k0.cx; cx <= k1.cx; cx++ {
			for _, e := range c.cells[cellKey{cx, cz}] {
				if !c.visible(e, req.Player) {
					continue
				}
				if e.LeafID != req.LeafID { // criterion 2
					continue
				}
				if e.NearSig != req.NearSig { // criterion 3
					continue
				}
				d := e.Pos.Dist(req.Pos)
				if d <= r && d < best { // criterion 1 + closest wins
					best, found = d, e
				}
			}
		}
	}
	return found, false
}

// touch refreshes LRU recency.
func (c *Cache) touch(e *Entry) {
	c.clock++
	e.seq = c.clock
}

// lessPoint orders grid points row-major for deterministic tie-breaking.
func lessPoint(a, b geom.GridPoint) bool {
	if a.J != b.J {
		return a.J < b.J
	}
	return a.I < b.I
}
