package cache_test

import (
	"fmt"

	"coterie/internal/cache"
	"coterie/internal/geom"
)

// Example walks one reuse cycle: a frame prefetched for one grid point
// serves a nearby grid point that shares the leaf region and near-BE
// object set.
func Example() {
	cfg, _ := cache.Version(3) // the shipped configuration: intra-player, similar frames
	c := cache.New(cfg)

	prefetched := geom.GridPoint{I: 320, J: 480}
	c.Insert(cache.Entry{
		Point:   prefetched,
		Pos:     geom.V2(10.0, 15.0),
		LeafID:  7,
		NearSig: 0xBEEF,
		Size:    280 * 1024,
	})

	// Three grid steps later the player needs a frame again.
	req := cache.Request{
		Point:      geom.GridPoint{I: 323, J: 480},
		Pos:        geom.V2(10.09, 15.0),
		LeafID:     7,
		NearSig:    0xBEEF,
		DistThresh: 0.15,
	}
	if e, ok := c.Lookup(req); ok {
		fmt.Printf("reused frame for %v (%.2f m away)\n", e.Point, e.Pos.Dist(req.Pos))
	}
	fmt.Printf("hit ratio %.0f%%\n", c.Stats().HitRatio()*100)
	// Output:
	// reused frame for (320,480) (0.09 m away)
	// hit ratio 100%
}
