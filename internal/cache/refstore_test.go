package cache

import (
	"testing"

	"coterie/internal/geom"
	"coterie/internal/img"
)

func refFrame(n int) *img.Gray { return img.NewGray(n, 1) }

func TestRefStoreLRUEviction(t *testing.T) {
	type ev struct {
		pt      geom.GridPoint
		evicted bool
	}
	var events []ev
	s := NewRefStore(3*100, func(pt geom.GridPoint, g *img.Gray, evicted bool) {
		events = append(events, ev{pt, evicted})
	})
	a, b, c, d := geom.GridPoint{I: 1}, geom.GridPoint{I: 2}, geom.GridPoint{I: 3}, geom.GridPoint{I: 4}
	s.Put(a, refFrame(100))
	s.Put(b, refFrame(100))
	s.Put(c, refFrame(100))
	if s.Len() != 3 || s.Bytes() != 300 {
		t.Fatalf("len %d bytes %d", s.Len(), s.Bytes())
	}
	// Touch a so b becomes the LRU victim.
	if _, ok := s.Get(a); !ok {
		t.Fatal("a missing")
	}
	s.Put(d, refFrame(100))
	if _, ok := s.Get(b); ok {
		t.Fatal("b should have been evicted")
	}
	if len(events) != 1 || events[0].pt != b || !events[0].evicted {
		t.Fatalf("events %+v", events)
	}
	for _, pt := range []geom.GridPoint{a, c, d} {
		if _, ok := s.Get(pt); !ok {
			t.Fatalf("%v missing", pt)
		}
	}
}

func TestRefStoreReplaceIsNotAnEviction(t *testing.T) {
	// Re-decoding a point the store already holds must release the old
	// raster (evicted=false) without signalling an eviction: the client
	// still holds the point, so the server must not be told otherwise.
	var notices, releases int
	s := NewRefStore(1000, func(pt geom.GridPoint, g *img.Gray, evicted bool) {
		if evicted {
			notices++
		} else {
			releases++
		}
	})
	pt := geom.GridPoint{I: 7, J: 8}
	s.Put(pt, refFrame(100))
	s.Put(pt, refFrame(100))
	if notices != 0 || releases != 1 {
		t.Fatalf("notices %d releases %d", notices, releases)
	}
	if s.Len() != 1 || s.Bytes() != 100 {
		t.Fatalf("len %d bytes %d", s.Len(), s.Bytes())
	}
}

func TestRefStoreOversizedAndDisabled(t *testing.T) {
	// A frame the store cannot admit leaves the point un-held, so the
	// callback must report an eviction (the server needs a notice) even
	// though nothing was ever cached.
	var dropped int
	cb := func(pt geom.GridPoint, g *img.Gray, evicted bool) {
		if !evicted {
			t.Fatalf("oversized/disabled put must signal eviction")
		}
		dropped++
	}
	s := NewRefStore(50, cb)
	s.Put(geom.GridPoint{I: 1}, refFrame(100)) // larger than the whole budget
	if s.Len() != 0 || dropped != 1 {
		t.Fatalf("len %d dropped %d", s.Len(), dropped)
	}
	off := NewRefStore(0, cb)
	off.Put(geom.GridPoint{I: 2}, refFrame(10))
	if off.Len() != 0 || dropped != 2 {
		t.Fatalf("disabled store kept a frame (len %d dropped %d)", off.Len(), dropped)
	}
	if _, ok := off.Get(geom.GridPoint{I: 2}); ok {
		t.Fatal("disabled store returned a hit")
	}
}

func TestRefStoreUnadmittedPutEvictsOlderEntry(t *testing.T) {
	// Shrinking frames below an oversized re-decode: the previously
	// admitted raster for the same point must be evicted too, or the
	// store would keep serving a decode the server no longer tracks.
	var evictions int
	s := NewRefStore(150, func(pt geom.GridPoint, g *img.Gray, evicted bool) {
		if evicted {
			evictions++
		}
	})
	pt := geom.GridPoint{I: 5}
	s.Put(pt, refFrame(100))
	s.Put(pt, refFrame(200)) // cannot fit: both old and new become evictions
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("len %d bytes %d", s.Len(), s.Bytes())
	}
	if evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}
	if _, ok := s.Get(pt); ok {
		t.Fatal("stale entry survived an unadmitted re-decode")
	}
}
