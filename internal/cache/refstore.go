package cache

import (
	"coterie/internal/geom"
	"coterie/internal/img"
)

// RefStore is the client-side reference cache of the delta frame path: a
// byte-budgeted LRU of decoded intra frames keyed by grid point. The
// server only encodes a delta against a frame it believes the client
// holds, and the client keeps that belief honest through the onEvict
// callback — the live client queues a MsgEvictNotice for every budget
// eviction, so a dropped reference is reported before the next frame
// request and the server falls back to intra coding.
//
// RefStore is not safe for concurrent use; the live client drives it
// from a single goroutine (under the connection lock, like the frame
// flow itself).
type RefStore struct {
	budget int64
	bytes  int64
	// onEvict is called for every frame leaving the store, outside any
	// store state mutation. evicted=true means the point is no longer (or
	// never became) held — a budget eviction or an unadmitted Put — and
	// the server must be told before the next request; evicted=false
	// means the frame was replaced by a fresh decode of the same point
	// (the point is still held, so no notice — only the raster is
	// released).
	onEvict func(pt geom.GridPoint, g *img.Gray, evicted bool)

	entries map[geom.GridPoint]*refEntry
	// LRU list, most recent at head.
	head, tail *refEntry
}

type refEntry struct {
	pt         geom.GridPoint
	g          *img.Gray
	prev, next *refEntry
}

// NewRefStore creates a reference store with a byte budget (0 or negative
// disables the store: Put releases immediately and Get always misses).
// onEvict may be nil.
func NewRefStore(budget int64, onEvict func(pt geom.GridPoint, g *img.Gray, evicted bool)) *RefStore {
	return &RefStore{
		budget:  budget,
		onEvict: onEvict,
		entries: make(map[geom.GridPoint]*refEntry),
	}
}

// Len returns the number of cached references.
func (s *RefStore) Len() int { return len(s.entries) }

// Bytes returns the cached raster bytes.
func (s *RefStore) Bytes() int64 { return s.bytes }

// Get returns the cached decode of pt and marks it most recently used.
// The caller must not release or mutate the returned frame; it stays
// owned by the store.
func (s *RefStore) Get(pt geom.GridPoint) (*img.Gray, bool) {
	e, ok := s.entries[pt]
	if !ok {
		return nil, false
	}
	s.touch(e)
	return e.g, true
}

// Put hands a decoded intra frame to the store, which takes ownership.
// Evicted frames (and a replaced frame for the same point) are surfaced
// through onEvict after the store's state is consistent.
func (s *RefStore) Put(pt geom.GridPoint, g *img.Gray) {
	if g == nil {
		return
	}
	size := int64(len(g.Pix))
	if s.budget <= 0 || size > s.budget {
		// Disabled, or a single frame that could never fit: the point is
		// not held after this call. An older admitted frame for the same
		// point must go too — keeping it would leave the server believing
		// the client holds the *new* decode while the store serves the old
		// one, silently corrupting every delta against it.
		var out []evicted
		if e, ok := s.entries[pt]; ok {
			s.unlink(e)
			delete(s.entries, pt)
			s.bytes -= int64(len(e.g.Pix))
			out = append(out, evicted{pt, e.g, true})
		}
		out = append(out, evicted{pt, g, true})
		if s.onEvict != nil {
			for _, v := range out {
				s.onEvict(v.pt, v.g, v.evicted)
			}
		}
		return
	}

	var out []evicted
	if e, ok := s.entries[pt]; ok {
		// Same point re-decoded: swap rasters, keep LRU position fresh.
		out = append(out, evicted{pt, e.g, false})
		s.bytes += size - int64(len(e.g.Pix))
		e.g = g
		s.touch(e)
	} else {
		e := &refEntry{pt: pt, g: g}
		s.entries[pt] = e
		s.pushFront(e)
		s.bytes += size
	}
	for s.bytes > s.budget && s.tail != nil {
		v := s.tail
		s.unlink(v)
		delete(s.entries, v.pt)
		s.bytes -= int64(len(v.g.Pix))
		out = append(out, evicted{v.pt, v.g, true})
	}
	if s.onEvict != nil {
		for _, v := range out {
			s.onEvict(v.pt, v.g, v.evicted)
		}
	}
}

type evicted struct {
	pt      geom.GridPoint
	g       *img.Gray
	evicted bool
}

func (s *RefStore) touch(e *refEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *RefStore) pushFront(e *refEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *RefStore) unlink(e *refEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
