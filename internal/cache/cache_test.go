package cache

import (
	"testing"

	"coterie/internal/geom"
)

func entry(i, j int, leaf int, sig uint64, owner, size int) Entry {
	return Entry{
		Point:   geom.GridPoint{I: i, J: j},
		Pos:     geom.V2(float64(i), float64(j)),
		LeafID:  leaf,
		NearSig: sig,
		Size:    size,
		Owner:   owner,
	}
}

func req(i, j int, leaf int, sig uint64, thresh float64, player int) Request {
	return Request{
		Point:      geom.GridPoint{I: i, J: j},
		Pos:        geom.V2(float64(i), float64(j)),
		LeafID:     leaf,
		NearSig:    sig,
		DistThresh: thresh,
		Player:     player,
	}
}

func TestVersionConfigs(t *testing.T) {
	for v := 1; v <= 5; v++ {
		if _, err := Version(v); err != nil {
			t.Fatalf("Version(%d): %v", v, err)
		}
	}
	if _, err := Version(0); err == nil {
		t.Fatal("expected error for version 0")
	}
	v3, _ := Version(3)
	if !v3.IntraPlayer || v3.InterPlayer || !v3.ServeSimilar {
		t.Fatalf("V3 = %+v", v3)
	}
	v5, _ := Version(5)
	if !v5.IntraPlayer || !v5.InterPlayer || !v5.ServeSimilar {
		t.Fatalf("V5 = %+v", v5)
	}
}

func TestExactHit(t *testing.T) {
	cfg, _ := Version(1)
	c := New(cfg)
	c.Insert(entry(5, 5, 0, 1, 0, 100))
	got, ok := c.Lookup(req(5, 5, 0, 1, 0, 0))
	if !ok || got.Point != (geom.GridPoint{I: 5, J: 5}) {
		t.Fatal("exact lookup missed")
	}
	if _, ok := c.Lookup(req(5, 6, 0, 1, 0, 0)); ok {
		t.Fatal("V1 must not serve similar frames")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.ExactHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSimilarHitThreeCriteria(t *testing.T) {
	cfg, _ := Version(3)
	c := New(cfg)
	c.Insert(entry(10, 10, 7, 42, 0, 100))

	// All criteria satisfied: within threshold, same leaf, same near set.
	if _, ok := c.Lookup(req(12, 10, 7, 42, 3, 0)); !ok {
		t.Fatal("similar lookup should hit")
	}
	// Criterion 1: too far.
	if _, ok := c.Lookup(req(20, 10, 7, 42, 3, 0)); ok {
		t.Fatal("hit outside distance threshold")
	}
	// Criterion 2: different leaf region.
	if _, ok := c.Lookup(req(12, 10, 8, 42, 3, 0)); ok {
		t.Fatal("hit across leaf regions")
	}
	// Criterion 3: different near-BE object set.
	if _, ok := c.Lookup(req(12, 10, 7, 43, 3, 0)); ok {
		t.Fatal("hit with mismatched near set")
	}
}

func TestClosestCandidateWins(t *testing.T) {
	cfg, _ := Version(3)
	c := New(cfg)
	c.Insert(entry(10, 10, 0, 1, 0, 100))
	c.Insert(entry(13, 10, 0, 1, 0, 100))
	got, ok := c.Lookup(req(12, 10, 0, 1, 5, 0))
	if !ok || got.Point.I != 13 {
		t.Fatalf("closest entry should win, got %+v", got)
	}
}

func TestIntraVsInterVisibility(t *testing.T) {
	// V3 sees only own frames; V4 only others'; V5 both.
	own := entry(10, 10, 0, 1, 0, 100)
	other := entry(30, 30, 0, 1, 1, 100)

	v3, _ := Version(3)
	c := New(v3)
	c.Insert(own)
	c.Insert(other)
	if _, ok := c.Lookup(req(11, 10, 0, 1, 3, 0)); !ok {
		t.Fatal("V3 should serve own frame")
	}
	if _, ok := c.Lookup(req(31, 30, 0, 1, 3, 0)); ok {
		t.Fatal("V3 must not serve other players' frames")
	}

	v4, _ := Version(4)
	c = New(v4)
	c.Insert(own)
	c.Insert(other)
	if _, ok := c.Lookup(req(11, 10, 0, 1, 3, 0)); ok {
		t.Fatal("V4 must not serve own frames")
	}
	if _, ok := c.Lookup(req(31, 30, 0, 1, 3, 0)); !ok {
		t.Fatal("V4 should serve other players' frames")
	}

	v5, _ := Version(5)
	c = New(v5)
	c.Insert(own)
	c.Insert(other)
	if _, ok := c.Lookup(req(11, 10, 0, 1, 3, 0)); !ok {
		t.Fatal("V5 should serve own frame")
	}
	if _, ok := c.Lookup(req(31, 30, 0, 1, 3, 0)); !ok {
		t.Fatal("V5 should serve other players' frames")
	}
}

func TestReplaceSamePoint(t *testing.T) {
	cfg, _ := Version(3)
	c := New(cfg)
	c.Insert(entry(5, 5, 0, 1, 0, 100))
	e := entry(5, 5, 0, 1, 0, 250)
	c.Insert(e)
	if c.Len() != 1 {
		t.Fatalf("len = %d after replace", c.Len())
	}
	if got := c.Stats().BytesStored; got != 250 {
		t.Fatalf("bytes stored = %d, want 250", got)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg, _ := Version(3)
	cfg.CapacityBytes = 300
	cfg.Policy = LRU
	c := New(cfg)
	c.Insert(entry(1, 1, 0, 1, 0, 100))
	c.Insert(entry(2, 2, 0, 1, 0, 100))
	c.Insert(entry(3, 3, 0, 1, 0, 100))
	// Touch (1,1) so (2,2) becomes least recent.
	if _, ok := c.Lookup(req(1, 1, 0, 1, 0, 0)); !ok {
		t.Fatal("touch lookup missed")
	}
	c.Insert(entry(4, 4, 0, 1, 0, 100))
	if _, ok := c.Peek(req(2, 2, 0, 1, 0, 0)); ok {
		t.Fatal("LRU should have evicted (2,2)")
	}
	if _, ok := c.Peek(req(1, 1, 0, 1, 0, 0)); !ok {
		t.Fatal("recently used (1,1) should survive")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestFLFEviction(t *testing.T) {
	cfg, _ := Version(3)
	cfg.CapacityBytes = 300
	cfg.Policy = FLF
	c := New(cfg)
	c.SetPlayerPos(geom.V2(0, 0))
	c.Insert(entry(1, 1, 0, 1, 0, 100))
	c.Insert(entry(50, 50, 0, 1, 0, 100))
	c.Insert(entry(2, 2, 0, 1, 0, 100))
	c.Insert(entry(3, 3, 0, 1, 0, 100)) // forces eviction
	if _, ok := c.Peek(req(50, 50, 0, 1, 0, 0)); ok {
		t.Fatal("FLF should have evicted the furthest entry (50,50)")
	}
	if _, ok := c.Peek(req(1, 1, 0, 1, 0, 0)); !ok {
		t.Fatal("near entry should survive FLF")
	}
}

func TestCapacityRespected(t *testing.T) {
	cfg, _ := Version(3)
	cfg.CapacityBytes = 1000
	c := New(cfg)
	for i := 0; i < 100; i++ {
		c.Insert(entry(i, 0, 0, 1, 0, 100))
	}
	if got := c.Stats().BytesStored; got > 1000 {
		t.Fatalf("stored %d bytes > capacity", got)
	}
	if c.Len() > 10 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	cfg, _ := Version(3)
	c := New(cfg)
	c.Insert(entry(5, 5, 0, 1, 0, 100))
	c.Peek(req(5, 5, 0, 1, 0, 0))
	c.Peek(req(9, 9, 0, 1, 0, 0))
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek changed stats: %+v", st)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats should have ratio 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %v", s.HitRatio())
	}
}

func TestZeroThresholdNeverServesSimilar(t *testing.T) {
	cfg, _ := Version(3)
	c := New(cfg)
	c.Insert(entry(10, 10, 0, 1, 0, 100))
	if _, ok := c.Lookup(req(11, 10, 0, 1, 0, 0)); ok {
		t.Fatal("zero threshold must not serve similar frames")
	}
}

func TestLookupAcrossBucketBoundary(t *testing.T) {
	// Entries land in 8m buckets; a lookup near a boundary must still see
	// entries in the adjacent bucket.
	cfg, _ := Version(3)
	c := New(cfg)
	e := Entry{Point: geom.GridPoint{I: 100, J: 0}, Pos: geom.V2(7.9, 0), LeafID: 0, NearSig: 1, Size: 10}
	c.Insert(e)
	r := Request{Point: geom.GridPoint{I: 101, J: 0}, Pos: geom.V2(8.1, 0), LeafID: 0, NearSig: 1, DistThresh: 1}
	if _, ok := c.Lookup(r); !ok {
		t.Fatal("lookup failed across bucket boundary")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FLF.String() != "FLF" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still print")
	}
}

func TestFLFDeterministicTieBreak(t *testing.T) {
	// Two candidates at the same distance: the row-major smaller grid
	// point must always be evicted, independent of map iteration order.
	for trial := 0; trial < 20; trial++ {
		cfg, _ := Version(3)
		cfg.CapacityBytes = 300
		cfg.Policy = FLF
		c := New(cfg)
		c.SetPlayerPos(geom.V2(0, 0))
		c.Insert(entry(10, 0, 0, 1, 0, 100))
		c.Insert(entry(0, 10, 0, 1, 0, 100)) // same distance from origin
		c.Insert(entry(1, 1, 0, 1, 0, 100))
		c.Insert(entry(2, 2, 0, 1, 0, 100)) // forces one eviction
		_, okA := c.Peek(req(10, 0, 0, 1, 0, 0))
		_, okB := c.Peek(req(0, 10, 0, 1, 0, 0))
		if okA == okB {
			t.Fatalf("exactly one of the tied entries should survive: %v %v", okA, okB)
		}
		if !okB {
			t.Fatal("tie-break should evict the row-major smaller point (10,0)")
		}
	}
}
