// Package img provides the minimal frame-buffer types shared by the
// renderer, codec and SSIM metric: 8-bit grayscale (luma) and RGB images,
// plus crop/downsample helpers and PGM/PPM export for inspection.
//
// Coterie frames are carried as luma planes: SSIM (the paper's similarity
// metric) is defined on luminance, and the codec compresses the luma plane.
package img

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// Gray is an 8-bit single-channel (luma) image with row-major Pix of length
// W*H.
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a zeroed W x H luma image.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// Clone returns a deep copy of the image.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// SameSize reports whether two images have identical dimensions.
func (g *Gray) SameSize(o *Gray) bool { return g.W == o.W && g.H == o.H }

// Crop returns the sub-image [x0,x0+w) x [y0,y0+h) as a new image. The
// rectangle must lie inside the source. Coterie uses this to crop a
// Field-of-View frame out of a panoramic frame at almost no cost (§2.2).
func (g *Gray) Crop(x0, y0, w, h int) (*Gray, error) {
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > g.W || y0+h > g.H {
		return nil, fmt.Errorf("img: crop %d,%d %dx%d outside %dx%d", x0, y0, w, h, g.W, g.H)
	}
	c := NewGray(w, h)
	for y := 0; y < h; y++ {
		copy(c.Pix[y*w:(y+1)*w], g.Pix[(y0+y)*g.W+x0:(y0+y)*g.W+x0+w])
	}
	return c, nil
}

// CropWrapX is like Crop but wraps horizontally, which is what cropping a
// FoV out of a 360-degree equirectangular panorama requires when the view
// straddles the +/-180 degree seam. x0 may be any integer.
func (g *Gray) CropWrapX(x0, y0, w, h int) (*Gray, error) {
	if y0 < 0 || w <= 0 || h <= 0 || y0+h > g.H || w > g.W {
		return nil, fmt.Errorf("img: wrap-crop %d,%d %dx%d outside %dx%d", x0, y0, w, h, g.W, g.H)
	}
	c := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := ((x0+x)%g.W + g.W) % g.W
			c.Pix[y*w+x] = g.Pix[(y0+y)*g.W+sx]
		}
	}
	return c, nil
}

// Downsample2 returns the image box-filtered to half resolution (rounding
// odd dimensions down). It is used to build fast similarity pre-checks.
func (g *Gray) Downsample2() *Gray {
	w, h := g.W/2, g.H/2
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	d := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := x*2, y*2
			sum := int(g.At(sx, sy))
			n := 1
			if sx+1 < g.W {
				sum += int(g.At(sx+1, sy))
				n++
			}
			if sy+1 < g.H {
				sum += int(g.At(sx, sy+1))
				n++
			}
			if sx+1 < g.W && sy+1 < g.H {
				sum += int(g.At(sx+1, sy+1))
				n++
			}
			d.Set(x, y, uint8((sum+n/2)/n))
		}
	}
	return d
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// same-sized images.
func MeanAbsDiff(a, b *Gray) (float64, error) {
	if !a.SameSize(b) {
		return 0, errors.New("img: size mismatch")
	}
	var sum int64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	return float64(sum) / float64(len(a.Pix)), nil
}

// WritePGM writes the image in binary PGM (P5) format.
func (g *Gray) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	_, err := w.Write(g.Pix)
	return err
}

// RGB is an 8-bit three-channel image with row-major Pix of length W*H*3.
type RGB struct {
	W, H int
	Pix  []uint8
}

// NewRGB allocates a zeroed W x H colour image.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// Set writes the pixel at (x, y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	i := (y*m.W + x) * 3
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// At returns the pixel at (x, y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	i := (y*m.W + x) * 3
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// ToGray converts the colour image to luma using the BT.601 weights.
func (m *RGB) ToGray() *Gray {
	g := NewGray(m.W, m.H)
	for i := 0; i < m.W*m.H; i++ {
		r := float64(m.Pix[i*3])
		gg := float64(m.Pix[i*3+1])
		b := float64(m.Pix[i*3+2])
		g.Pix[i] = uint8(0.299*r + 0.587*gg + 0.114*b + 0.5)
	}
	return g
}

// WritePPM writes the image in binary PPM (P6) format.
func (m *RGB) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	_, err := w.Write(m.Pix)
	return err
}

// PSNR returns the peak signal-to-noise ratio between two same-sized luma
// images in decibels; identical images return +Inf.
func PSNR(a, b *Gray) (float64, error) {
	if !a.SameSize(b) {
		return 0, errors.New("img: size mismatch")
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	mse := sum / float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
