package img

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGray(rng *rand.Rand, w, h int) *Gray {
	g := NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func TestNewGrayZeroed(t *testing.T) {
	g := NewGray(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("bad dims: %dx%d len %d", g.W, g.H, len(g.Pix))
	}
	for _, p := range g.Pix {
		if p != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestNewGrayPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGray(0, 5)
}

func TestSetAt(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(2, 1, 200)
	if g.At(2, 1) != 200 {
		t.Fatal("Set/At mismatch")
	}
	if g.Pix[1*3+2] != 200 {
		t.Fatal("row-major layout broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 9)
	c := g.Clone()
	c.Set(0, 0, 7)
	if g.At(0, 0) != 9 {
		t.Fatal("clone shares storage")
	}
}

func TestCrop(t *testing.T) {
	g := NewGray(10, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, uint8(y*10+x))
		}
	}
	c, err := g.Crop(2, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 4 || c.H != 2 {
		t.Fatalf("crop dims %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != 32 || c.At(3, 1) != 45 {
		t.Fatalf("crop content wrong: %d %d", c.At(0, 0), c.At(3, 1))
	}
	if _, err := g.Crop(8, 0, 4, 2); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if _, err := g.Crop(0, 0, 0, 2); err == nil {
		t.Fatal("expected zero-width error")
	}
}

func TestCropWrapXSeam(t *testing.T) {
	g := NewGray(8, 2)
	for x := 0; x < 8; x++ {
		g.Set(x, 0, uint8(x))
		g.Set(x, 1, uint8(x+100))
	}
	// Crop straddling the right edge: columns 6,7,0,1.
	c, err := g.CropWrapX(6, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{6, 7, 0, 1}
	for i, w := range want {
		if c.At(i, 0) != w {
			t.Fatalf("wrap crop col %d = %d want %d", i, c.At(i, 0), w)
		}
	}
	// Negative x0 wraps too.
	c, err = g.CropWrapX(-2, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 6 || c.At(2, 0) != 0 {
		t.Fatalf("negative wrap crop wrong: %v", c.Pix)
	}
}

func TestDownsample2(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 100
	}
	d := g.Downsample2()
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	for _, p := range d.Pix {
		if p != 100 {
			t.Fatalf("constant image should stay constant, got %d", p)
		}
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	b.Pix = []uint8{10, 0, 0, 0}
	d, err := MeanAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2.5 {
		t.Fatalf("MAD = %v, want 2.5", d)
	}
	if _, err := MeanAbsDiff(a, NewGray(3, 2)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestMeanAbsDiffProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randomGray(rng, 9, 7)
		b := randomGray(rng, 9, 7)
		dab, _ := MeanAbsDiff(a, b)
		dba, _ := MeanAbsDiff(b, a)
		daa, _ := MeanAbsDiff(a, a)
		return dab == dba && daa == 0 && dab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWritePGM(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{1, 2, 3, 4}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("P5\n2 2\n255\n"), 1, 2, 3, 4)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("PGM = %q", buf.Bytes())
	}
}

func TestRGBToGray(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 255, 255, 255)
	if g := m.ToGray(); g.At(0, 0) != 255 {
		t.Fatalf("white -> %d", g.At(0, 0))
	}
	m.Set(0, 0, 0, 0, 0)
	if g := m.ToGray(); g.At(0, 0) != 0 {
		t.Fatalf("black -> %d", g.At(0, 0))
	}
	m.Set(0, 0, 255, 0, 0)
	if g := m.ToGray(); g.At(0, 0) != 76 {
		t.Fatalf("red -> %d, want 76", g.At(0, 0))
	}
}

func TestRGBRoundTrip(t *testing.T) {
	m := NewRGB(3, 2)
	m.Set(2, 1, 1, 2, 3)
	r, g, b := m.At(2, 1)
	if r != 1 || g != 2 || b != 3 {
		t.Fatalf("At = %d,%d,%d", r, g, b)
	}
}

func TestWritePPM(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 9, 8, 7)
	var buf bytes.Buffer
	if err := m.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("P6\n1 1\n255\n"), 9, 8, 7)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("PPM = %q", buf.Bytes())
	}
}

func TestPSNR(t *testing.T) {
	a := NewGray(16, 16)
	b := a.Clone()
	p, err := PSNR(a, b)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %v, %v", p, err)
	}
	b.Pix[0] = 255
	p, err = PSNR(a, b)
	if err != nil || p <= 0 || math.IsInf(p, 1) {
		t.Fatalf("PSNR = %v, %v", p, err)
	}
	// More noise, lower PSNR.
	c := a.Clone()
	for i := range c.Pix {
		c.Pix[i] = uint8(i % 97)
	}
	p2, _ := PSNR(a, c)
	if p2 >= p {
		t.Fatalf("noisier image should have lower PSNR: %v vs %v", p2, p)
	}
	if _, err := PSNR(a, NewGray(8, 8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
