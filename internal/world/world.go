// Package world models the discretised virtual world of a VR game: the set
// of static background-environment (BE) objects, the grid of reachable
// viewpoints, and spatial queries over object geometry.
//
// Two queries drive the whole system:
//
//   - ray intersection (used by the renderer in internal/render), with the
//     near/far clip window that realises the near-BE / far-BE split, and
//   - triangle count within a radius of a location (used by the adaptive
//     cutoff scheme in internal/cutoff and by the device render-time model,
//     since rendering speed is correlated with triangle count, §4.3).
package world

import (
	"fmt"
	"math"

	"coterie/internal/geom"
)

// EyeHeight is the camera elevation above the terrain foothold, in metres.
// The paper's offline preprocessor ray-traces the foothold and raises the
// camera to the player's eye height (§6, "Offline preprocessing").
const EyeHeight = 1.7

// Kind enumerates object shapes. Unity assets are triangle meshes; we model
// them with two primitive families that a ray caster handles exactly.
type Kind uint8

const (
	// KindSphere is a sphere asset (trees, rocks, people, balls).
	KindSphere Kind = iota
	// KindBox is an axis-aligned box asset (houses, walls, stadium stands).
	KindBox
)

// Object is one static BE asset. Triangles is the triangle count of the
// underlying mesh; it drives render-time estimates and object density.
type Object struct {
	ID        int
	Kind      Kind
	Center    geom.Vec3
	Radius    float64   // sphere radius (KindSphere)
	Half      geom.Vec3 // half extents (KindBox)
	Triangles int
	// Shade in [0,1] is the base albedo used by the renderer; Pattern
	// selects the procedural surface texture. Smooth marks low-texture
	// surfaces (painted walls, ceilings) that render without fine detail.
	Shade   float64
	Pattern uint8
	Smooth  bool
}

// Bounds returns the object's axis-aligned bounding box.
func (o *Object) Bounds() geom.AABB {
	switch o.Kind {
	case KindSphere:
		r := geom.V3(o.Radius, o.Radius, o.Radius)
		return geom.AABB{Min: o.Center.Sub(r), Max: o.Center.Add(r)}
	default:
		return geom.AABB{Min: o.Center.Sub(o.Half), Max: o.Center.Add(o.Half)}
	}
}

// Intersect returns the nearest non-negative ray-hit parameter and whether
// the ray hits the object.
func (o *Object) Intersect(r geom.Ray) (float64, bool) {
	return o.IntersectFrom(r, 0)
}

// IntersectFrom returns the nearest surface-hit parameter >= tMin and
// whether there is one. Back faces count: when tMin (the near/far-BE
// cutoff) falls inside the object, the far BE shows the object's far
// surface, implementing the paper's "an object may be cut in the middle"
// semantics.
func (o *Object) IntersectFrom(r geom.Ray, tMin float64) (float64, bool) {
	switch o.Kind {
	case KindSphere:
		return geom.IntersectSphereFrom(r, o.Center, o.Radius, tMin)
	default:
		t0, t1, ok := o.Bounds().IntersectRaySpan(r)
		if !ok {
			return 0, false
		}
		if t0 >= tMin {
			return t0, true
		}
		if t1 >= tMin {
			return t1, true
		}
		return 0, false
	}
}

// Scene is a virtual game world: its ground-plane bounds, viewpoint grid,
// the static object set, and a uniform-grid spatial index over the objects.
type Scene struct {
	Name    string
	Bounds  geom.Rect
	Grid    geom.Grid
	Objects []Object

	// GroundTris is the triangle density of the terrain mesh itself in
	// triangles per square metre; terrain triangles near the viewpoint
	// count toward near-BE render cost like any other geometry.
	GroundTris float64

	index *index
}

// New creates a scene over the given bounds with the given grid step and
// builds the spatial index for the object set.
func New(name string, bounds geom.Rect, gridStep float64, objects []Object, groundTris float64) *Scene {
	s := &Scene{
		Name:       name,
		Bounds:     bounds,
		Grid:       geom.NewGrid(bounds, gridStep),
		Objects:    objects,
		GroundTris: groundTris,
	}
	s.index = buildIndex(s)
	return s
}

// Eye returns the camera position for a grid point: on the ground plane at
// eye height. Terrain is modelled as flat at Y=0 (the foothold ray trace of
// the paper reduces to this for a flat terrain mesh).
func (s *Scene) Eye(p geom.GridPoint) geom.Vec3 {
	return s.Grid.Pos(p).XZ3(EyeHeight)
}

// EyeAt returns the camera position for an arbitrary ground position.
func (s *Scene) EyeAt(p geom.Vec2) geom.Vec3 { return p.XZ3(EyeHeight) }

// Hit describes the nearest intersection found by Intersect.
type Hit struct {
	T      float64 // distance along the (unit-direction) ray
	Object *Object // nil when the ground plane was hit
	Point  geom.Vec3
}

// Intersect finds the nearest hit of r with hit distance in [tMin, tMax),
// considering scene objects and the ground plane at Y=0. It reports
// ok=false when nothing is hit inside the window. The [tMin, tMax) window
// is how near-BE (t < cutoff) and far-BE (t >= cutoff) rendering share one
// scene: an object crossing the cutoff contributes pixels to both, exactly
// as the paper permits (§4.3 footnote 2). q is per-goroutine scratch state
// from NewQuery.
func (s *Scene) Intersect(q *Query, r geom.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: tMax}
	found := false

	// Ground plane at Y = 0.
	if r.Direction.Y < 0 {
		t := -r.Origin.Y / r.Direction.Y
		if t >= tMin && t < best.T {
			best = Hit{T: t, Object: nil, Point: r.At(t)}
			found = true
		}
	}

	if obj, t, ok := s.index.intersect(q, r, tMin, best.T); ok {
		best = Hit{T: t, Object: obj, Point: r.At(t)}
		found = true
	}
	return best, found
}

// TrianglesWithin returns the total triangle count of geometry within the
// given XZ radius of the ground position p: objects whose footprint
// intersects the disc (counted fully, as a renderer must process the whole
// mesh) plus terrain triangles over the disc area clipped to the world.
func (s *Scene) TrianglesWithin(q *Query, p geom.Vec2, radius float64) int {
	tris := 0
	s.index.forEachInDisc(q, p, radius, func(_ int32, o *Object) { tris += o.Triangles })
	// Terrain contribution over the visible disc, clipped to world bounds.
	area := math.Pi * radius * radius
	if max := s.Bounds.Area(); area > max {
		area = max
	}
	tris += int(area * s.GroundTris)
	return tris
}

// ObjectsWithin appends the IDs of objects whose footprint intersects the
// XZ disc (p, radius) to dst and returns it. The frame cache uses the
// near-BE object set to validate that a cached far-BE frame merges cleanly
// (§5.3, criterion 3).
func (s *Scene) ObjectsWithin(q *Query, dst []int, p geom.Vec2, radius float64) []int {
	s.index.forEachInDisc(q, p, radius, func(_ int32, o *Object) { dst = append(dst, o.ID) })
	return dst
}

// NearSetSignature returns an order-independent hash of the set of object
// IDs within the XZ disc (p, radius). Two locations with the same signature
// have identical near-BE object sets.
func (s *Scene) NearSetSignature(q *Query, p geom.Vec2, radius float64) uint64 {
	ids := s.ObjectsWithin(q, nil, p, radius)
	// FNV-style order-independent combination: sum and xor of per-ID hashes.
	var sum, xor uint64
	for _, id := range ids {
		h := splitmix64(uint64(id) + 0x9E3779B97F4A7C15)
		sum += h
		xor ^= h
	}
	return sum ^ (xor << 1) ^ uint64(len(ids))
}

// TotalTriangles returns the triangle count of the whole scene including
// terrain.
func (s *Scene) TotalTriangles() int {
	tris := int(s.Bounds.Area() * s.GroundTris)
	for i := range s.Objects {
		tris += s.Objects[i].Triangles
	}
	return tris
}

// Validate performs internal consistency checks and returns an error
// describing the first violation found, if any.
func (s *Scene) Validate() error {
	for i := range s.Objects {
		o := &s.Objects[i]
		if o.Triangles <= 0 {
			return fmt.Errorf("world: object %d has non-positive triangle count", o.ID)
		}
		switch o.Kind {
		case KindSphere:
			if o.Radius <= 0 {
				return fmt.Errorf("world: sphere %d has non-positive radius", o.ID)
			}
		case KindBox:
			if o.Half.X <= 0 || o.Half.Y <= 0 || o.Half.Z <= 0 {
				return fmt.Errorf("world: box %d has non-positive extent", o.ID)
			}
		default:
			return fmt.Errorf("world: object %d has unknown kind %d", o.ID, o.Kind)
		}
	}
	return nil
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
