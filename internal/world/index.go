package world

import (
	"math"

	"coterie/internal/geom"
)

// index is a uniform 2-D grid over the XZ plane used to accelerate both ray
// casting and radius queries. Cells store the objects whose footprint
// overlaps them; a ray walks cells with a 2-D DDA and tests only the
// objects in the cells it crosses, finishing as soon as a confirmed hit is
// nearer than the entry distance of the next cell.
//
// The index itself is immutable after construction and safe for concurrent
// readers; the per-query deduplication state lives in Query values, one per
// goroutine.
type index struct {
	bounds     geom.Rect
	cellSize   float64
	cols, rows int
	cells      [][]int32 // object indices per cell
	scene      *Scene
}

// Query carries the scratch state for spatial queries against one Scene.
// A Query is cheap (one uint32 per object) but not safe for concurrent use;
// create one per goroutine with Scene.NewQuery.
type Query struct {
	visit []uint32
	stamp uint32
}

// NewQuery returns scratch state for queries against this scene.
func (s *Scene) NewQuery() *Query {
	return &Query{visit: make([]uint32, len(s.Objects))}
}

// nextStamp advances the visitation epoch, resetting lazily on wraparound.
func (q *Query) nextStamp() uint32 {
	q.stamp++
	if q.stamp == 0 {
		for i := range q.visit {
			q.visit[i] = 0
		}
		q.stamp = 1
	}
	return q.stamp
}

// targetCells is the approximate number of index cells along the longer
// world axis. Chosen so typical scenes put a handful of objects per cell.
const targetCells = 96

func buildIndex(s *Scene) *index {
	longer := math.Max(s.Bounds.Width(), s.Bounds.Depth())
	cell := longer / targetCells
	if cell <= 0 {
		cell = 1
	}
	ix := &index{
		bounds:   s.Bounds,
		cellSize: cell,
		cols:     int(s.Bounds.Width()/cell) + 1,
		rows:     int(s.Bounds.Depth()/cell) + 1,
		scene:    s,
	}
	ix.cells = make([][]int32, ix.cols*ix.rows)
	for i := range s.Objects {
		b := s.Objects[i].Bounds()
		c0, r0 := ix.cellOf(b.Min.X, b.Min.Z)
		c1, r1 := ix.cellOf(b.Max.X, b.Max.Z)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				k := r*ix.cols + c
				ix.cells[k] = append(ix.cells[k], int32(i))
			}
		}
	}
	return ix
}

// cellOf maps a world XZ coordinate to clamped cell coordinates.
func (ix *index) cellOf(x, z float64) (int, int) {
	c := int((x - ix.bounds.MinX) / ix.cellSize)
	r := int((z - ix.bounds.MinZ) / ix.cellSize)
	if c < 0 {
		c = 0
	}
	if r < 0 {
		r = 0
	}
	if c >= ix.cols {
		c = ix.cols - 1
	}
	if r >= ix.rows {
		r = ix.rows - 1
	}
	return c, r
}

// intersect finds the nearest object hit with t in [tMin, tMax). It walks
// the 2-D DDA from the ray origin; rays are assumed to start inside or near
// the world (true for all viewpoints).
func (ix *index) intersect(q *Query, r geom.Ray, tMin, tMax float64) (*Object, float64, bool) {
	if len(ix.scene.Objects) == 0 {
		return nil, 0, false
	}
	stamp := q.nextStamp()

	var best *Object
	bestT := tMax
	found := false

	// Test all objects in one cell, updating best.
	testCell := func(c, rr int) {
		for _, oi := range ix.cells[rr*ix.cols+c] {
			if q.visit[oi] == stamp {
				continue
			}
			q.visit[oi] = stamp
			o := &ix.scene.Objects[oi]
			if t, ok := o.IntersectFrom(r, tMin); ok && t < bestT {
				best, bestT, found = o, t, true
			}
		}
	}

	// DDA setup over the XZ projection of the ray.
	ox := r.Origin.X - ix.bounds.MinX
	oz := r.Origin.Z - ix.bounds.MinZ
	dx, dz := r.Direction.X, r.Direction.Z

	c, rr := ix.cellOf(r.Origin.X, r.Origin.Z)

	// A (near-)vertical ray stays in one cell column.
	horiz := math.Hypot(dx, dz)
	if horiz < 1e-12 {
		testCell(c, rr)
		return best, bestT, found
	}

	stepC, stepR := 1, 1
	var tMaxX, tMaxZ, tDeltaX, tDeltaZ float64
	if dx > 0 {
		tMaxX = ((float64(c)+1)*ix.cellSize - ox) / dx
		tDeltaX = ix.cellSize / dx
	} else if dx < 0 {
		stepC = -1
		tMaxX = (float64(c)*ix.cellSize - ox) / dx
		tDeltaX = -ix.cellSize / dx
	} else {
		tMaxX = math.Inf(1)
		tDeltaX = math.Inf(1)
	}
	if dz > 0 {
		tMaxZ = ((float64(rr)+1)*ix.cellSize - oz) / dz
		tDeltaZ = ix.cellSize / dz
	} else if dz < 0 {
		stepR = -1
		tMaxZ = (float64(rr)*ix.cellSize - oz) / dz
		tDeltaZ = -ix.cellSize / dz
	} else {
		tMaxZ = math.Inf(1)
		tDeltaZ = math.Inf(1)
	}

	for {
		testCell(c, rr)
		// Entry distance of the next cell; if we already have a nearer
		// confirmed hit, no later cell can beat it.
		next := math.Min(tMaxX, tMaxZ)
		if found && bestT <= next {
			return best, bestT, true
		}
		if next >= tMax {
			return best, bestT, found
		}
		if tMaxX < tMaxZ {
			tMaxX += tDeltaX
			c += stepC
			if c < 0 || c >= ix.cols {
				return best, bestT, found
			}
		} else {
			tMaxZ += tDeltaZ
			rr += stepR
			if rr < 0 || rr >= ix.rows {
				return best, bestT, found
			}
		}
	}
}

// forEachInDisc calls fn once per object whose XZ footprint intersects the
// disc (p, radius).
func (ix *index) forEachInDisc(q *Query, p geom.Vec2, radius float64, fn func(oi int32, o *Object)) {
	stamp := q.nextStamp()
	c0, r0 := ix.cellOf(p.X-radius, p.Z-radius)
	c1, r1 := ix.cellOf(p.X+radius, p.Z+radius)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, oi := range ix.cells[r*ix.cols+c] {
				if q.visit[oi] == stamp {
					continue
				}
				q.visit[oi] = stamp
				o := &ix.scene.Objects[oi]
				if footprintIntersectsDisc(o, p, radius) {
					fn(oi, o)
				}
			}
		}
	}
}

// footprintIntersectsDisc tests the object's XZ footprint against a disc.
func footprintIntersectsDisc(o *Object, p geom.Vec2, radius float64) bool {
	switch o.Kind {
	case KindSphere:
		d := math.Hypot(o.Center.X-p.X, o.Center.Z-p.Z)
		return d <= radius+o.Radius
	default:
		// Distance from disc centre to the box footprint rectangle.
		dx := math.Max(0, math.Max(o.Center.X-o.Half.X-p.X, p.X-(o.Center.X+o.Half.X)))
		dz := math.Max(0, math.Max(o.Center.Z-o.Half.Z-p.Z, p.Z-(o.Center.Z+o.Half.Z)))
		return dx*dx+dz*dz <= radius*radius
	}
}
