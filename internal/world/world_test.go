package world

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coterie/internal/geom"
)

func testScene() *Scene {
	objs := []Object{
		{ID: 0, Kind: KindSphere, Center: geom.V3(10, 1, 10), Radius: 1, Triangles: 100, Shade: 0.5},
		{ID: 1, Kind: KindBox, Center: geom.V3(30, 2, 30), Half: geom.V3(2, 2, 2), Triangles: 200, Shade: 0.6},
		{ID: 2, Kind: KindSphere, Center: geom.V3(50, 3, 10), Radius: 3, Triangles: 300, Shade: 0.7},
	}
	return New("test", geom.NewRect(64, 64), 0.5, objs, 1.0)
}

func TestSceneValidate(t *testing.T) {
	s := testScene()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New("bad", geom.NewRect(10, 10), 1, []Object{{ID: 0, Kind: KindSphere, Radius: 0, Triangles: 1}}, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for zero-radius sphere")
	}
	bad2 := New("bad2", geom.NewRect(10, 10), 1, []Object{{ID: 0, Kind: KindSphere, Radius: 1, Triangles: 0}}, 0)
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected validation error for zero triangles")
	}
}

func TestEyeHeight(t *testing.T) {
	s := testScene()
	eye := s.Eye(geom.GridPoint{I: 4, J: 6})
	if eye.Y != EyeHeight {
		t.Fatalf("eye Y = %v", eye.Y)
	}
	if eye.X != 2 || eye.Z != 3 {
		t.Fatalf("eye pos = %v", eye)
	}
}

func TestIntersectHitsSphere(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	// Ray from origin-ish toward the sphere at (10,1,10).
	origin := geom.V3(10, 1, 0)
	r := geom.Ray{Origin: origin, Direction: geom.V3(0, 0, 1)}
	hit, ok := s.Intersect(q, r, 0, math.Inf(1))
	if !ok || hit.Object == nil || hit.Object.ID != 0 {
		t.Fatalf("hit = %+v ok=%v", hit, ok)
	}
	if math.Abs(hit.T-9) > 1e-9 {
		t.Fatalf("t = %v, want 9", hit.T)
	}
}

func TestIntersectHitsGround(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	r := geom.Ray{Origin: geom.V3(5, 2, 5), Direction: geom.V3(0, -1, 0)}
	hit, ok := s.Intersect(q, r, 0, math.Inf(1))
	if !ok || hit.Object != nil {
		t.Fatalf("expected ground hit, got %+v ok=%v", hit, ok)
	}
	if math.Abs(hit.T-2) > 1e-9 {
		t.Fatalf("ground t = %v", hit.T)
	}
}

func TestIntersectSkyMiss(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	r := geom.Ray{Origin: geom.V3(5, 2, 5), Direction: geom.V3(0, 1, 0)}
	if _, ok := s.Intersect(q, r, 0, math.Inf(1)); ok {
		t.Fatal("upward ray should miss everything")
	}
}

func TestIntersectClipWindow(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	origin := geom.V3(10, 1, 0)
	r := geom.Ray{Origin: origin, Direction: geom.V3(0, 0, 1)}
	// Sphere hit is at t=9. With tMax=5 the window excludes it.
	if _, ok := s.Intersect(q, r, 0, 5); ok {
		t.Fatal("hit found outside clip window")
	}
	// With tMin=9.5 the front face is excluded but the back face (t=11)
	// is in-window: distance clipping cuts objects mid-way, as the paper
	// allows for the near/far BE split.
	hit, ok := s.Intersect(q, r, 9.5, math.Inf(1))
	if !ok || hit.Object == nil || hit.Object.ID != 0 {
		t.Fatalf("expected back-face hit, got %+v ok=%v", hit, ok)
	}
	if math.Abs(hit.T-11) > 1e-9 {
		t.Fatalf("back-face t = %v, want 11", hit.T)
	}
}

// Property: the accelerated intersect agrees with brute force.
func TestIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objs := make([]Object, 120)
	for i := range objs {
		if i%3 == 0 {
			objs[i] = Object{
				ID: i, Kind: KindBox,
				Center:    geom.V3(rng.Float64()*100, rng.Float64()*4, rng.Float64()*100),
				Half:      geom.V3(0.5+rng.Float64()*2, 0.5+rng.Float64()*3, 0.5+rng.Float64()*2),
				Triangles: 10,
			}
		} else {
			objs[i] = Object{
				ID: i, Kind: KindSphere,
				Center:    geom.V3(rng.Float64()*100, rng.Float64()*4, rng.Float64()*100),
				Radius:    0.3 + rng.Float64()*2,
				Triangles: 10,
			}
		}
	}
	s := New("brute", geom.NewRect(100, 100), 0.5, objs, 0)
	q := s.NewQuery()

	brute := func(r geom.Ray, tMin, tMax float64) (int, float64, bool) {
		bestT := tMax
		bestID := -1
		if r.Direction.Y < 0 {
			if t := -r.Origin.Y / r.Direction.Y; t >= tMin && t < bestT {
				bestT = t
				bestID = -2 // ground
			}
		}
		for i := range objs {
			if t, ok := objs[i].IntersectFrom(r, tMin); ok && t < bestT {
				bestT, bestID = t, objs[i].ID
			}
		}
		return bestID, bestT, bestID != -1
	}

	for trial := 0; trial < 500; trial++ {
		origin := geom.V3(rng.Float64()*100, 0.2+rng.Float64()*3, rng.Float64()*100)
		dir := geom.V3(rng.NormFloat64(), rng.NormFloat64()*0.3, rng.NormFloat64()).Norm()
		if dir.Len() == 0 {
			continue
		}
		tMin := 0.0
		tMax := math.Inf(1)
		if trial%4 == 0 {
			tMin = rng.Float64() * 10
		}
		if trial%5 == 0 {
			tMax = tMin + rng.Float64()*50
		}
		r := geom.Ray{Origin: origin, Direction: dir}
		wantID, wantT, wantOK := brute(r, tMin, tMax)
		hit, ok := s.Intersect(q, r, tMin, tMax)
		if ok != wantOK {
			t.Fatalf("trial %d: ok=%v want %v (ray %+v)", trial, ok, wantOK, r)
		}
		if !ok {
			continue
		}
		gotID := -2
		if hit.Object != nil {
			gotID = hit.Object.ID
		}
		if gotID != wantID || math.Abs(hit.T-wantT) > 1e-9 {
			t.Fatalf("trial %d: got obj %d t=%v, want obj %d t=%v", trial, gotID, hit.T, wantID, wantT)
		}
	}
}

func TestTrianglesWithin(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	// Around (10,10): sphere 0 only, plus terrain.
	got := s.TrianglesWithin(q, geom.V2(10, 10), 5)
	terrain := int(math.Pi * 25 * s.GroundTris)
	if got != 100+terrain {
		t.Fatalf("tris = %d, want %d", got, 100+terrain)
	}
	// Tiny radius far from objects: terrain only.
	got = s.TrianglesWithin(q, geom.V2(20, 50), 1)
	if got != int(math.Pi*1*s.GroundTris) {
		t.Fatalf("terrain-only tris = %d", got)
	}
	// Radius covering everything.
	got = s.TrianglesWithin(q, geom.V2(32, 32), 1000)
	if got < 600 {
		t.Fatalf("all-objects tris = %d, want >= 600", got)
	}
}

func TestTrianglesWithinMonotoneInRadius(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	f := func(x, z float64, r1, r2 float64) bool {
		p := geom.V2(math.Abs(math.Mod(x, 64)), math.Abs(math.Mod(z, 64)))
		a := math.Abs(math.Mod(r1, 40))
		b := math.Abs(math.Mod(r2, 40))
		if a > b {
			a, b = b, a
		}
		return s.TrianglesWithin(q, p, a) <= s.TrianglesWithin(q, p, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestObjectsWithinAndSignature(t *testing.T) {
	s := testScene()
	q := s.NewQuery()
	ids := s.ObjectsWithin(q, nil, geom.V2(10, 10), 5)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
	// Signature equal for same set, different for different sets.
	sigA := s.NearSetSignature(q, geom.V2(10, 10), 5)
	sigB := s.NearSetSignature(q, geom.V2(10.2, 10.1), 5)
	if sigA != sigB {
		t.Fatal("same near set should give same signature")
	}
	sigC := s.NearSetSignature(q, geom.V2(30, 30), 5)
	if sigA == sigC {
		t.Fatal("different near sets should give different signatures")
	}
	sigEmpty := s.NearSetSignature(q, geom.V2(20, 50), 0.5)
	if sigEmpty == sigA {
		t.Fatal("empty set signature collided")
	}
}

func TestSignatureOrderIndependent(t *testing.T) {
	// The signature must not depend on the order the index yields IDs.
	ids1 := []int{3, 17, 99}
	ids2 := []int{99, 3, 17}
	if hashIDSet(ids1) != hashIDSet(ids2) {
		t.Fatal("signature depends on order")
	}
}

// hashIDSet mirrors NearSetSignature's combination for the order test.
func hashIDSet(ids []int) uint64 {
	var sum, xor uint64
	for _, id := range ids {
		h := splitmix64(uint64(id) + 0x9E3779B97F4A7C15)
		sum += h
		xor ^= h
	}
	return sum ^ (xor << 1) ^ uint64(len(ids))
}

func TestTotalTriangles(t *testing.T) {
	s := testScene()
	want := 600 + int(s.Bounds.Area()*s.GroundTris)
	if got := s.TotalTriangles(); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

func TestObjectBounds(t *testing.T) {
	sp := Object{Kind: KindSphere, Center: geom.V3(1, 2, 3), Radius: 2}
	b := sp.Bounds()
	if b.Min != geom.V3(-1, 0, 1) || b.Max != geom.V3(3, 4, 5) {
		t.Fatalf("sphere bounds = %+v", b)
	}
	bx := Object{Kind: KindBox, Center: geom.V3(0, 0, 0), Half: geom.V3(1, 2, 3)}
	b = bx.Bounds()
	if b.Min != geom.V3(-1, -2, -3) || b.Max != geom.V3(1, 2, 3) {
		t.Fatalf("box bounds = %+v", b)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := testScene()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			q := s.NewQuery()
			for i := 0; i < 200; i++ {
				origin := geom.V3(rng.Float64()*64, 1.7, rng.Float64()*64)
				dir := geom.V3(rng.NormFloat64(), -0.1, rng.NormFloat64()).Norm()
				s.Intersect(q, geom.Ray{Origin: origin, Direction: dir}, 0, math.Inf(1))
				s.TrianglesWithin(q, geom.V2(origin.X, origin.Z), rng.Float64()*10)
			}
			done <- true
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
