package world

import (
	"math"
	"math/rand"
	"testing"

	"coterie/internal/geom"
)

func benchWorld(n int) *Scene {
	rng := rand.New(rand.NewSource(7))
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID: i, Kind: KindSphere,
			Center:    geom.V3(rng.Float64()*200, rng.Float64()*3, rng.Float64()*200),
			Radius:    0.3 + rng.Float64()*1.5,
			Triangles: 1000,
		}
	}
	return New("bench", geom.NewRect(200, 200), 0.5, objs, 10)
}

func BenchmarkIntersect(b *testing.B) {
	s := benchWorld(2000)
	q := s.NewQuery()
	rng := rand.New(rand.NewSource(8))
	rays := make([]geom.Ray, 256)
	for i := range rays {
		rays[i] = geom.Ray{
			Origin:    geom.V3(rng.Float64()*200, 1.7, rng.Float64()*200),
			Direction: geom.V3(rng.NormFloat64(), rng.NormFloat64()*0.2, rng.NormFloat64()).Norm(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Intersect(q, rays[i%len(rays)], 0, math.Inf(1))
	}
}

func BenchmarkTrianglesWithinSmall(b *testing.B) {
	s := benchWorld(2000)
	q := s.NewQuery()
	p := geom.V2(100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TrianglesWithin(q, p, 5)
	}
}

func BenchmarkTrianglesWithinLarge(b *testing.B) {
	s := benchWorld(2000)
	q := s.NewQuery()
	p := geom.V2(100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TrianglesWithin(q, p, 60)
	}
}

func BenchmarkNearSetSignature(b *testing.B) {
	s := benchWorld(2000)
	q := s.NewQuery()
	p := geom.V2(100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NearSetSignature(q, p, 10)
	}
}
