package ssim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"coterie/internal/img"
)

func randomGray(rng *rand.Rand, w, h int) *img.Gray {
	g := img.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

// smoothRandom produces a band-limited random image (nearest-neighbour
// upsampled noise) so that local variance is non-trivial but structured.
func smoothRandom(rng *rand.Rand, w, h, cell int) *img.Gray {
	g := img.NewGray(w, h)
	cw, ch := w/cell+1, h/cell+1
	base := make([]uint8, cw*ch)
	for i := range base {
		base[i] = uint8(rng.Intn(256))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, base[(y/cell)*cw+x/cell])
		}
	}
	return g
}

func TestSelfSimilarityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGray(rng, 64, 48)
	s, err := Mean(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM(a,a) = %v, want 1", s)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := smoothRandom(rng, 64, 48, 4)
	b := smoothRandom(rng, 64, 48, 4)
	sab, err := Mean(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sba, err := Mean(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sab-sba) > 1e-9 {
		t.Fatalf("SSIM not symmetric: %v vs %v", sab, sba)
	}
}

func TestBoundedByOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		a := smoothRandom(rng, 40, 40, 3)
		b := smoothRandom(rng, 40, 40, 3)
		s, err := Mean(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if s > 1+1e-9 {
			t.Fatalf("SSIM = %v > 1", s)
		}
	}
}

func TestIndependentNoiseScoresLow(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomGray(rng, 64, 64)
	b := randomGray(rng, 64, 64)
	s, err := Mean(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.2 {
		t.Fatalf("independent noise SSIM = %v, expected near 0", s)
	}
}

func TestMonotoneDegradationWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := smoothRandom(rng, 96, 64, 6)
	prev := 1.0
	for _, amp := range []int{2, 8, 24, 64} {
		b := a.Clone()
		for i := range b.Pix {
			d := rng.Intn(2*amp+1) - amp
			v := int(b.Pix[i]) + d
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			b.Pix[i] = uint8(v)
		}
		s, err := Mean(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Fatalf("SSIM did not decrease with noise amplitude %d: %v >= %v", amp, s, prev)
		}
		prev = s
	}
}

func TestMeanShiftPenalisedLessThanStructureChange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := smoothRandom(rng, 64, 64, 4)
	// Small uniform brightness shift: structure preserved.
	shifted := a.Clone()
	for i := range shifted.Pix {
		v := int(shifted.Pix[i]) + 10
		if v > 255 {
			v = 255
		}
		shifted.Pix[i] = uint8(v)
	}
	// Structure change: roll the image vertically by half a cell so edges
	// move but the global histogram is identical.
	scrambled := img.NewGray(a.W, a.H)
	for y := 0; y < a.H; y++ {
		sy := (y + 2) % a.H
		copy(scrambled.Pix[y*a.W:(y+1)*a.W], a.Pix[sy*a.W:(sy+1)*a.W])
	}
	sShift, _ := Mean(a, shifted)
	sScram, _ := Mean(a, scrambled)
	if sShift <= sScram {
		t.Fatalf("luminance shift (%v) should score higher than structural scramble (%v)", sShift, sScram)
	}
}

func TestErrors(t *testing.T) {
	a := img.NewGray(32, 32)
	b := img.NewGray(16, 32)
	if _, err := Mean(a, b); err == nil {
		t.Fatal("expected size mismatch error")
	}
	small := img.NewGray(8, 8)
	if _, err := Mean(small, small); err == nil {
		t.Fatal("expected too-small error")
	}
}

func TestGood(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := smoothRandom(rng, 48, 48, 4)
	ok, err := Good(a, a)
	if err != nil || !ok {
		t.Fatalf("identical frames should be Good: %v %v", ok, err)
	}
	b := randomGray(rng, 48, 48)
	ok, err = Good(a, b)
	if err != nil || ok {
		t.Fatalf("noise should not be Good: %v %v", ok, err)
	}
}

// referenceMean is the original, allocation-heavy implementation (five
// full-resolution float planes, two-pass separable filter per plane). The
// fused Comparer must reproduce it bit for bit: the per-element arithmetic
// and accumulation order are unchanged, only buffer lifetimes moved.
func referenceMean(a, b *img.Gray) (float64, error) {
	if !a.SameSize(b) {
		return 0, errors.New("ssim: image size mismatch")
	}
	if a.W < windowSize || a.H < windowSize {
		return 0, errors.New("ssim: image smaller than 11x11 window")
	}
	filter := func(src []float64, w, h int) ([]float64, int, int) {
		ow := w - windowSize + 1
		oh := h - windowSize + 1
		tmp := make([]float64, ow*h)
		for y := 0; y < h; y++ {
			row := src[y*w : (y+1)*w]
			for x := 0; x < ow; x++ {
				var s float64
				for i, kv := range kernel {
					s += kv * row[x+i]
				}
				tmp[y*ow+x] = s
			}
		}
		out := make([]float64, ow*oh)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var s float64
				for i, kv := range kernel {
					s += kv * tmp[(y+i)*ow+x]
				}
				out[y*ow+x] = s
			}
		}
		return out, ow, oh
	}
	n := a.W * a.H
	fa := make([]float64, n)
	fb := make([]float64, n)
	faa := make([]float64, n)
	fbb := make([]float64, n)
	fab := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(a.Pix[i])
		y := float64(b.Pix[i])
		fa[i] = x
		fb[i] = y
		faa[i] = x * x
		fbb[i] = y * y
		fab[i] = x * y
	}
	muA, ow, oh := filter(fa, a.W, a.H)
	muB, _, _ := filter(fb, a.W, a.H)
	sAA, _, _ := filter(faa, a.W, a.H)
	sBB, _, _ := filter(fbb, a.W, a.H)
	sAB, _, _ := filter(fab, a.W, a.H)
	var sum float64
	for i := 0; i < ow*oh; i++ {
		ma, mb := muA[i], muB[i]
		varA := sAA[i] - ma*ma
		varB := sBB[i] - mb*mb
		cov := sAB[i] - ma*mb
		if varA < 0 {
			varA = 0
		}
		if varB < 0 {
			varB = 0
		}
		num := (2*ma*mb + c1) * (2*cov + c2)
		den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
		sum += num / den
	}
	return sum / float64(ow*oh), nil
}

func TestComparerMatchesReferenceBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := NewComparer()
	for _, dim := range []struct{ w, h int }{{11, 11}, {64, 48}, {97, 33}, {256, 128}} {
		for trial := 0; trial < 3; trial++ {
			a := smoothRandom(rng, dim.w, dim.h, 3)
			b := smoothRandom(rng, dim.w, dim.h, 3)
			want, err := referenceMean(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Mean(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%dx%d trial %d: comparer %v != reference %v (must be bit-exact)",
					dim.w, dim.h, trial, got, want)
			}
			pooled, err := Mean(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if pooled != want {
				t.Fatalf("%dx%d: pooled Mean %v != reference %v", dim.w, dim.h, pooled, want)
			}
		}
	}
}

func TestComparerReuseAcrossSizes(t *testing.T) {
	// Shrinking after a large comparison must not leave stale plane tails
	// in play; growing must reallocate.
	rng := rand.New(rand.NewSource(22))
	c := NewComparer()
	big1, big2 := smoothRandom(rng, 128, 96, 4), smoothRandom(rng, 128, 96, 4)
	small1, small2 := smoothRandom(rng, 32, 24, 4), smoothRandom(rng, 32, 24, 4)
	if _, err := c.Mean(big1, big2); err != nil {
		t.Fatal(err)
	}
	got, err := c.Mean(small1, small2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := referenceMean(small1, small2)
	if got != want {
		t.Fatalf("after shrink: %v != %v", got, want)
	}
	got, err = c.Mean(big1, big2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = referenceMean(big1, big2)
	if got != want {
		t.Fatalf("after regrow: %v != %v", got, want)
	}
}

func TestComparerZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := smoothRandom(rng, 64, 64, 4)
	b := smoothRandom(rng, 64, 64, 4)
	c := NewComparer()
	if _, err := c.Mean(a, b); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.Mean(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Comparer.Mean allocates %v per op steady-state, want 0", allocs)
	}
}

func TestGaussianKernelProperties(t *testing.T) {
	if len(kernel) != windowSize {
		t.Fatalf("kernel size %d", len(kernel))
	}
	var sum float64
	for i, k := range kernel {
		if k <= 0 {
			t.Fatalf("kernel[%d] = %v", i, k)
		}
		if kernel[len(kernel)-1-i] != k {
			t.Fatal("kernel not symmetric")
		}
		sum += k
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("kernel sums to %v", sum)
	}
	// Peak at the centre.
	mid := len(kernel) / 2
	for i, k := range kernel {
		if i != mid && k >= kernel[mid] {
			t.Fatalf("kernel peak not central: k[%d]=%v >= k[mid]=%v", i, k, kernel[mid])
		}
	}
}
