// Package ssim implements the Structural Similarity index of Wang, Bovik,
// Sheikh and Simoncelli (IEEE TIP 2004), the de-facto metric previous VR
// systems (Kahawai, Furion) and the Coterie paper use to quantify frame
// similarity. An SSIM above 0.90 indicates the distorted frame well
// approximates the original and provides "good" visual quality (§4.1).
//
// The reference implementation uses an 11x11 Gaussian window with sigma 1.5
// on 8-bit luminance; Mean computes the mean SSIM over all full window
// positions. The Gaussian filtering is separable, so the cost is
// O(pixels * window) rather than O(pixels * window^2).
//
// The metric is the experiment pipeline's hottest non-render path, so the
// filter is organised around a reusable Comparer: the uint8-to-float
// conversion is fused into the horizontal filter pass and the per-window
// SSIM score into the vertical pass, with the five intermediate channel
// planes (mean, second moments, cross moment) held in scratch buffers that
// persist across calls. Steady state, a Comparer performs zero heap
// allocations per comparison; the package-level Mean/Good wrappers draw
// Comparers from a sync.Pool, so concurrent experiment workers share a
// small set of scratch buffers instead of allocating ~5×W×H float64s per
// call as the original implementation did.
package ssim

import (
	"errors"
	"math"
	"sync"

	"coterie/internal/img"
)

const (
	// GoodThreshold is the SSIM value above which the paper's cited human
	// subject study (Kahawai) rates a frame pair as providing good visual
	// quality. Coterie reuses a cached far-BE frame only when the reuse
	// keeps similarity above this threshold.
	GoodThreshold = 0.90

	windowSize = 11
	sigma      = 1.5
	dynRange   = 255.0
	k1         = 0.01
	k2         = 0.03
)

var (
	c1 = (k1 * dynRange) * (k1 * dynRange)
	c2 = (k2 * dynRange) * (k2 * dynRange)

	kernel = gaussianKernel(windowSize, sigma)
)

func gaussianKernel(size int, sigma float64) []float64 {
	k := make([]float64, size)
	sum := 0.0
	mid := float64(size-1) / 2
	for i := range k {
		d := float64(i) - mid
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// channel indices of the filtered planes.
const (
	chA  = iota // E[a]
	chB         // E[b]
	chAA        // E[a^2]
	chBB        // E[b^2]
	chAB        // E[ab]
	numCh
)

// Comparer computes mean SSIM using scratch buffers that are reused across
// calls. It is not safe for concurrent use; create one per goroutine (or
// use the package-level Mean, which pools them).
type Comparer struct {
	// plane holds the horizontally filtered channel planes, each sized
	// ow*h for the current comparison geometry.
	plane [numCh][]float64
}

// NewComparer returns a Comparer with no scratch allocated yet; buffers
// grow on first use and are retained for subsequent calls.
func NewComparer() *Comparer { return &Comparer{} }

// Mean returns the mean SSIM index between two same-sized luma images.
// Both dimensions must be at least the window size (11).
func (c *Comparer) Mean(a, b *img.Gray) (float64, error) {
	if !a.SameSize(b) {
		return 0, errors.New("ssim: image size mismatch")
	}
	if a.W < windowSize || a.H < windowSize {
		return 0, errors.New("ssim: image smaller than 11x11 window")
	}
	w, h := a.W, a.H
	ow := w - windowSize + 1
	oh := h - windowSize + 1

	n := ow * h
	for ch := range c.plane {
		if cap(c.plane[ch]) < n {
			c.plane[ch] = make([]float64, n)
		}
		c.plane[ch] = c.plane[ch][:n]
	}
	pa, pb := c.plane[chA], c.plane[chB]
	paa, pbb, pab := c.plane[chAA], c.plane[chBB], c.plane[chAB]

	// Horizontal pass, fused with the uint8-to-float conversion: the five
	// channel values are formed on the fly from the source pixels, so no
	// full-resolution float copies of the inputs exist.
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*w : (y+1)*w]
		rowB := b.Pix[y*w : (y+1)*w]
		base := y * ow
		for x := 0; x < ow; x++ {
			var sa, sb, saa, sbb, sab float64
			for i, kv := range kernel {
				xa := float64(rowA[x+i])
				xb := float64(rowB[x+i])
				sa += kv * xa
				sb += kv * xb
				saa += kv * (xa * xa)
				sbb += kv * (xb * xb)
				sab += kv * (xa * xb)
			}
			pa[base+x] = sa
			pb[base+x] = sb
			paa[base+x] = saa
			pbb[base+x] = sbb
			pab[base+x] = sab
		}
	}

	// Vertical pass, fused with the per-window SSIM score: each window's
	// statistics are consumed immediately, so no output planes exist.
	var sum float64
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var ma, mb, sAA, sBB, sAB float64
			for i, kv := range kernel {
				idx := (y+i)*ow + x
				ma += kv * pa[idx]
				mb += kv * pb[idx]
				sAA += kv * paa[idx]
				sBB += kv * pbb[idx]
				sAB += kv * pab[idx]
			}
			varA := sAA - ma*ma
			varB := sBB - mb*mb
			cov := sAB - ma*mb
			// Guard tiny negative variances from floating-point error.
			if varA < 0 {
				varA = 0
			}
			if varB < 0 {
				varB = 0
			}
			num := (2*ma*mb + c1) * (2*cov + c2)
			den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
			sum += num / den
		}
	}
	return sum / float64(ow*oh), nil
}

// Good reports whether the two frames are similar enough to reuse one for
// the other under the paper's quality bar (mean SSIM > 0.90).
func (c *Comparer) Good(a, b *img.Gray) (bool, error) {
	s, err := c.Mean(a, b)
	if err != nil {
		return false, err
	}
	return s > GoodThreshold, nil
}

// pool shares Comparers between the package-level wrappers so concurrent
// callers reuse scratch buffers instead of allocating per call.
var pool = sync.Pool{New: func() any { return NewComparer() }}

// Mean returns the mean SSIM index between two same-sized luma images
// using a pooled Comparer.
func Mean(a, b *img.Gray) (float64, error) {
	c := pool.Get().(*Comparer)
	s, err := c.Mean(a, b)
	pool.Put(c)
	return s, err
}

// Good reports whether the two frames are similar enough to reuse one for
// the other under the paper's quality bar (mean SSIM > 0.90).
func Good(a, b *img.Gray) (bool, error) {
	s, err := Mean(a, b)
	if err != nil {
		return false, err
	}
	return s > GoodThreshold, nil
}
