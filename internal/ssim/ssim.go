// Package ssim implements the Structural Similarity index of Wang, Bovik,
// Sheikh and Simoncelli (IEEE TIP 2004), the de-facto metric previous VR
// systems (Kahawai, Furion) and the Coterie paper use to quantify frame
// similarity. An SSIM above 0.90 indicates the distorted frame well
// approximates the original and provides "good" visual quality (§4.1).
//
// The reference implementation uses an 11x11 Gaussian window with sigma 1.5
// on 8-bit luminance; Mean computes the mean SSIM over all full window
// positions. The Gaussian filtering is separable, so the cost is
// O(pixels * window) rather than O(pixels * window^2).
package ssim

import (
	"errors"
	"math"

	"coterie/internal/img"
)

const (
	// GoodThreshold is the SSIM value above which the paper's cited human
	// subject study (Kahawai) rates a frame pair as providing good visual
	// quality. Coterie reuses a cached far-BE frame only when the reuse
	// keeps similarity above this threshold.
	GoodThreshold = 0.90

	windowSize = 11
	sigma      = 1.5
	dynRange   = 255.0
	k1         = 0.01
	k2         = 0.03
)

var (
	c1 = (k1 * dynRange) * (k1 * dynRange)
	c2 = (k2 * dynRange) * (k2 * dynRange)

	kernel = gaussianKernel(windowSize, sigma)
)

func gaussianKernel(size int, sigma float64) []float64 {
	k := make([]float64, size)
	sum := 0.0
	mid := float64(size-1) / 2
	for i := range k {
		d := float64(i) - mid
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// filter applies the separable Gaussian to src (valid-mode: output size
// (w-window+1) x (h-window+1)).
func filter(src []float64, w, h int) ([]float64, int, int) {
	ow := w - windowSize + 1
	oh := h - windowSize + 1
	// Horizontal pass.
	tmp := make([]float64, ow*h)
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		for x := 0; x < ow; x++ {
			var s float64
			for i, kv := range kernel {
				s += kv * row[x+i]
			}
			tmp[y*ow+x] = s
		}
	}
	// Vertical pass.
	out := make([]float64, ow*oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var s float64
			for i, kv := range kernel {
				s += kv * tmp[(y+i)*ow+x]
			}
			out[y*ow+x] = s
		}
	}
	return out, ow, oh
}

// Mean returns the mean SSIM index between two same-sized luma images.
// Both dimensions must be at least the window size (11).
func Mean(a, b *img.Gray) (float64, error) {
	if !a.SameSize(b) {
		return 0, errors.New("ssim: image size mismatch")
	}
	if a.W < windowSize || a.H < windowSize {
		return 0, errors.New("ssim: image smaller than 11x11 window")
	}
	n := a.W * a.H
	fa := make([]float64, n)
	fb := make([]float64, n)
	faa := make([]float64, n)
	fbb := make([]float64, n)
	fab := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(a.Pix[i])
		y := float64(b.Pix[i])
		fa[i] = x
		fb[i] = y
		faa[i] = x * x
		fbb[i] = y * y
		fab[i] = x * y
	}
	muA, ow, oh := filter(fa, a.W, a.H)
	muB, _, _ := filter(fb, a.W, a.H)
	sAA, _, _ := filter(faa, a.W, a.H)
	sBB, _, _ := filter(fbb, a.W, a.H)
	sAB, _, _ := filter(fab, a.W, a.H)

	var sum float64
	for i := 0; i < ow*oh; i++ {
		ma, mb := muA[i], muB[i]
		varA := sAA[i] - ma*ma
		varB := sBB[i] - mb*mb
		cov := sAB[i] - ma*mb
		// Guard tiny negative variances from floating-point error.
		if varA < 0 {
			varA = 0
		}
		if varB < 0 {
			varB = 0
		}
		num := (2*ma*mb + c1) * (2*cov + c2)
		den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
		sum += num / den
	}
	return sum / float64(ow*oh), nil
}

// Good reports whether the two frames are similar enough to reuse one for
// the other under the paper's quality bar (mean SSIM > 0.90).
func Good(a, b *img.Gray) (bool, error) {
	s, err := Mean(a, b)
	if err != nil {
		return false, err
	}
	return s > GoodThreshold, nil
}
