package ssim

import (
	"math/rand"
	"testing"
)

// BenchmarkSSIMMean is the canonical acceptance benchmark for the pooled
// comparer path: it must report 0 allocs/op steady-state. 256x128 matches the
// experiment pipeline's default panorama resolution.
func BenchmarkSSIMMean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := smoothRandom(rng, 256, 128, 4)
	c := smoothRandom(rng, 256, 128, 4)
	if _, err := Mean(a, c); err != nil { // warm the pool's scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mean(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSIMComparerMean measures a dedicated (non-pooled) comparer, the
// shape the parallel experiment workers use: one comparer per worker.
func BenchmarkSSIMComparerMean(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := smoothRandom(rng, 256, 128, 4)
	x := smoothRandom(rng, 256, 128, 4)
	c := NewComparer()
	if _, err := c.Mean(a, x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Mean(a, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMean256x128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := smoothRandom(rng, 256, 128, 4)
	c := smoothRandom(rng, 256, 128, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mean(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMean64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := smoothRandom(rng, 64, 64, 4)
	c := smoothRandom(rng, 64, 64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mean(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
