package ssim

import (
	"math/rand"
	"testing"
)

func BenchmarkMean256x128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := smoothRandom(rng, 256, 128, 4)
	c := smoothRandom(rng, 256, 128, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mean(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMean64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := smoothRandom(rng, 64, 64, 4)
	c := smoothRandom(rng, 64, 64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mean(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
