package trace

import (
	"math"
	"testing"

	"coterie/internal/games"
)

func build(t *testing.T, name string) *games.Game {
	t.Helper()
	g, err := games.BuildByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTraceLengthAndBounds(t *testing.T) {
	for _, name := range []string{"viking", "racing", "pool"} {
		g := build(t, name)
		tr := Generate(g, 10, 1)
		if tr.Len() != 600 {
			t.Fatalf("%s: %d ticks for 10s", name, tr.Len())
		}
		if math.Abs(tr.Seconds()-10) > 1e-9 {
			t.Fatalf("%s: Seconds() = %v", name, tr.Seconds())
		}
		for i, p := range tr.Pos {
			if !g.Scene.Bounds.ContainsClosed(p) {
				t.Fatalf("%s: tick %d at %v outside world", name, i, p)
			}
		}
	}
}

func TestMovementIsContinuous(t *testing.T) {
	// Per-frame displacement must be bounded by a plausible speed: no
	// teleporting (grid-point prefetching depends on adjacency).
	limits := map[string]float64{
		"viking": 3.0 / TickHz * 2, // walking
		"racing": 25.0 / TickHz * 2,
		"pool":   2.0 / TickHz * 2,
	}
	for name, lim := range limits {
		g := build(t, name)
		tr := Generate(g, 20, 2)
		for i := 1; i < tr.Len(); i++ {
			if d := tr.Pos[i].Dist(tr.Pos[i-1]); d > lim {
				t.Fatalf("%s: jump of %.3f m at tick %d (limit %.3f)", name, d, i, lim)
			}
		}
	}
}

func TestPlayerActuallyMoves(t *testing.T) {
	for _, name := range []string{"viking", "cts", "racing", "soccer", "corridor"} {
		g := build(t, name)
		tr := Generate(g, 30, 3)
		var dist float64
		for i := 1; i < tr.Len(); i++ {
			dist += tr.Pos[i].Dist(tr.Pos[i-1])
		}
		if dist < 5 {
			t.Fatalf("%s: only %.1f m travelled in 30 s", name, dist)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := build(t, "viking")
	a := Generate(g, 5, 42)
	b := Generate(g, 5, 42)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("trace differs at tick %d", i)
		}
	}
	c := Generate(g, 5, 43)
	same := true
	for i := range a.Pos {
		if a.Pos[i] != c.Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different traces")
	}
}

func TestPartyProximityOutdoor(t *testing.T) {
	// Outdoor multiplayer: players stay in close proximity (the paper's
	// premise for inter-player similarity) but never on identical paths.
	g := build(t, "viking")
	party := GenerateParty(g, 2, 30, 5)
	var sum float64
	identical := 0
	n := party[0].Len()
	for i := 0; i < n; i++ {
		d := party[0].Pos[i].Dist(party[1].Pos[i])
		sum += d
		if d < 1e-9 {
			identical++
		}
	}
	mean := sum / float64(n)
	if mean > 30 {
		t.Fatalf("mean separation %.1f m; outdoor players should stay close", mean)
	}
	if identical > n/100 {
		t.Fatalf("players coincide on %d/%d ticks; paths must differ", identical, n)
	}
}

func TestPartyRacingStaysOnTrackTogether(t *testing.T) {
	g := build(t, "racing")
	party := GenerateParty(g, 4, 30, 6)
	if len(party) != 4 {
		t.Fatalf("party size %d", len(party))
	}
	// Racers chase each other: median pairwise distance bounded.
	n := party[0].Len()
	var close int
	for i := 0; i < n; i++ {
		if party[0].Pos[i].Dist(party[1].Pos[i]) < 120 {
			close++
		}
	}
	if float64(close)/float64(n) < 0.7 {
		t.Fatalf("racers together only %d/%d ticks", close, n)
	}
}

func TestPointsSnapToGrid(t *testing.T) {
	g := build(t, "viking")
	tr := Generate(g, 5, 7)
	pts := tr.Points(g.Scene.Grid)
	if len(pts) != tr.Len() {
		t.Fatalf("points len %d", len(pts))
	}
	for i, p := range pts {
		if !g.Scene.Grid.In(p) {
			t.Fatalf("tick %d: invalid grid point %v", i, p)
		}
	}
	// Consecutive grid points are near each other (a few steps at most).
	for i := 1; i < len(pts); i++ {
		di := math.Abs(float64(pts[i].I - pts[i-1].I))
		dj := math.Abs(float64(pts[i].J - pts[i-1].J))
		if di > 4 || dj > 4 {
			t.Fatalf("grid jump at tick %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

func TestTraceAvoidsSolidObjects(t *testing.T) {
	g := build(t, "viking")
	tr := Generate(g, 20, 8)
	q := g.Scene.NewQuery()
	inside := 0
	for _, p := range tr.Pos {
		ids := g.Scene.ObjectsWithin(q, nil, p, 0.05)
		if len(ids) > 0 {
			inside++
		}
	}
	// Brief clips while routing around objects are tolerable; living
	// inside geometry is not.
	if frac := float64(inside) / float64(tr.Len()); frac > 0.05 {
		t.Fatalf("player inside objects %.1f%% of the time", frac*100)
	}
}

func TestIndoorPlayersIndependent(t *testing.T) {
	g := build(t, "pool")
	party := GenerateParty(g, 2, 20, 9)
	// Indoor traces must not be identical and need not be close.
	diff := 0
	for i := 0; i < party[0].Len(); i++ {
		if party[0].Pos[i] != party[1].Pos[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("indoor traces identical")
	}
}

func TestRacersProgressAlongTrack(t *testing.T) {
	g := build(t, "racing")
	tr := Generate(g, 60, 10)
	// A car at ~15 m/s covers ~900 m in 60 s.
	var dist float64
	for i := 1; i < tr.Len(); i++ {
		dist += tr.Pos[i].Dist(tr.Pos[i-1])
	}
	if dist < 400 {
		t.Fatalf("car covered only %.0f m in 60 s", dist)
	}
}

func TestYawTrackFilled(t *testing.T) {
	g := build(t, "viking")
	tr := Generate(g, 10, 4)
	if len(tr.Yaw) != tr.Len() {
		t.Fatalf("yaw track %d != %d ticks", len(tr.Yaw), tr.Len())
	}
	// Yaw changes smoothly: per-tick delta bounded (no head snapping).
	for i := 1; i < tr.Len(); i++ {
		d := math.Abs(tr.Yaw[i] - tr.Yaw[i-1])
		if d > 0.2 {
			t.Fatalf("yaw jump %.3f rad at tick %d", d, i)
		}
	}
	// And it is not constant: players look around.
	min, max := tr.Yaw[0], tr.Yaw[0]
	for _, y := range tr.Yaw {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if max-min < 0.3 {
		t.Fatalf("yaw range %.2f rad; expected look-around", max-min)
	}
}

func TestYawAtFallback(t *testing.T) {
	g := build(t, "viking")
	tr := Generate(g, 5, 4)
	tr.Yaw = nil // e.g. loaded from an old trace file
	// Derivable from movement without panicking, including at the ends.
	_ = tr.YawAt(-1)
	_ = tr.YawAt(0)
	_ = tr.YawAt(tr.Len() - 1)
	_ = tr.YawAt(tr.Len() + 5)
}
