// Package trace generates and replays player movement traces through the
// virtual worlds. The paper records 10-minute traces of real play for each
// game (§4.1) and replays them for the caching study (§4.6) and the user
// study (§7.4); this package substitutes genre-specific synthetic movement
// with the properties those experiments rely on:
//
//   - continuous movement at human/vehicle speeds (so consecutive frames
//     visit adjacent grid points);
//   - genre-appropriate paths (racing lines for car games, waypoint
//     roaming for shooters, strolls for indoor games);
//   - multi-player proximity for the outdoor games (players chase or
//     follow each other closely — the premise of inter-player similarity,
//     §4.1) but never exactly identical paths (the reason Versions 1-2 of
//     the caching study get zero hits, §4.6).
package trace

import (
	"math"
	"math/rand"

	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/world"
)

// TickHz is the sampling rate of traces: one sample per display frame.
const TickHz = 60

// Trace is one player's movement through the world, sampled at TickHz.
type Trace struct {
	PlayerID int
	Game     string
	// Pos has one ground position per frame tick.
	Pos []geom.Vec2
	// Yaw has one view direction (radians, 0 = +Z, positive towards +X)
	// per tick: the movement heading plus head-turn look-around. Filled
	// by Generate; empty for traces loaded from old files (use
	// HeadingAt).
	Yaw []float64
}

// YawAt returns the view yaw at a tick, deriving it from movement when the
// trace carries no explicit yaw track.
func (t *Trace) YawAt(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= t.Len() {
		i = t.Len() - 1
	}
	if len(t.Yaw) == t.Len() {
		return t.Yaw[i]
	}
	j := i + TickHz/4
	if j >= t.Len() {
		j = t.Len() - 1
	}
	d := t.Pos[j].Sub(t.Pos[i])
	if d.Len() < 1e-9 {
		return 0
	}
	return math.Atan2(d.X, d.Z)
}

// fillYaw derives the yaw track: smoothed movement heading plus sinusoidal
// look-around (players scan their surroundings; the panoramic far-BE frame
// makes any yaw free to display, §2.2).
func (t *Trace) fillYaw(seed int64) {
	n := t.Len()
	t.Yaw = make([]float64, n)
	if n == 0 {
		return
	}
	heading := 0.0
	phase := float64(seed%628) / 100
	for i := 0; i < n; i++ {
		j := i + TickHz/4
		if j >= n {
			j = n - 1
		}
		d := t.Pos[j].Sub(t.Pos[i])
		if d.Len() > 1e-6 {
			target := math.Atan2(d.X, d.Z)
			// First-order smoothing toward the movement heading.
			heading += angleDiff(target, heading) * 0.08
		}
		look := 0.7 * math.Sin(2*math.Pi*0.18*float64(i)/TickHz+phase) *
			math.Sin(2*math.Pi*0.043*float64(i)/TickHz)
		t.Yaw[i] = heading + look
	}
}

// Len returns the number of frame ticks.
func (t *Trace) Len() int { return len(t.Pos) }

// Seconds returns the trace duration.
func (t *Trace) Seconds() float64 { return float64(len(t.Pos)) / TickHz }

// Points converts the trace to grid points under the game's grid.
func (t *Trace) Points(grid geom.Grid) []geom.GridPoint {
	pts := make([]geom.GridPoint, len(t.Pos))
	for i, p := range t.Pos {
		pts[i] = grid.Snap(p)
	}
	return pts
}

// GenerateParty produces traces for n players playing together for the
// given duration. Outdoor-genre players move in close proximity (following
// the leader or racing the same track); indoor players wander
// independently, matching the paper's observation that indoor games show
// little inter-player locality.
func GenerateParty(g *games.Game, n int, seconds float64, seed int64) []*Trace {
	traces := make([]*Trace, n)
	leader := generateOne(g, 0, seconds, seed, nil)
	traces[0] = leader
	for i := 1; i < n; i++ {
		var follow *Trace
		if g.Spec.Outdoor {
			follow = leader
		}
		traces[i] = generateOne(g, i, seconds, seed+int64(i)*7919, follow)
	}
	return traces
}

// Generate produces a single-player trace.
func Generate(g *games.Game, seconds float64, seed int64) *Trace {
	return generateOne(g, 0, seconds, seed, nil)
}

func generateOne(g *games.Game, playerID int, seconds float64, seed int64, follow *Trace) *Trace {
	ticks := int(seconds * TickHz)
	t := &Trace{PlayerID: playerID, Game: g.Spec.Name, Pos: make([]geom.Vec2, 0, ticks)}
	rng := rand.New(rand.NewSource(seed))
	switch g.Spec.Genre {
	case games.GenreRacing:
		genRacing(g, t, ticks, playerID, rng)
	case games.GenreIndoor:
		genWander(g, t, ticks, rng, wanderParams{speed: 0.8, pauseP: 0.35, hop: 3.5, start: jitter(rng, g.Spawn, 1.5)}, nil)
	case games.GenreSports:
		genWander(g, t, ticks, rng, wanderParams{speed: 2.6, pauseP: 0.06, hop: 14, start: jitter(rng, g.Spawn, 4)}, follow)
	default: // shooters and adventures roam, nearly always in motion
		genWander(g, t, ticks, rng, wanderParams{speed: 1.9, pauseP: 0.05, hop: 22, start: jitter(rng, g.Spawn, 3)}, follow)
	}
	t.fillYaw(seed)
	return t
}

func jitter(rng *rand.Rand, p geom.Vec2, r float64) geom.Vec2 {
	a := rng.Float64() * 2 * math.Pi
	d := rng.Float64() * r
	return geom.V2(p.X+d*math.Cos(a), p.Z+d*math.Sin(a))
}

// genRacing drives the track loop at car speed with lateral jitter.
// Players start staggered along the track and keep slightly different
// speeds, so they chase each other closely without identical paths.
func genRacing(g *games.Game, t *Trace, ticks, playerID int, rng *rand.Rand) {
	track := g.Track
	if len(track) == 0 {
		genWander(g, t, ticks, rng, wanderParams{speed: 8, pauseP: 0, hop: 60, start: g.Spawn}, nil)
		return
	}
	// Arc-length parameterisation of the loop.
	cum := make([]float64, len(track)+1)
	for i := 0; i < len(track); i++ {
		cum[i+1] = cum[i] + track[i].Dist(track[(i+1)%len(track)])
	}
	total := cum[len(track)]
	at := func(s float64) geom.Vec2 {
		s = math.Mod(s, total)
		if s < 0 {
			s += total
		}
		// Binary search the segment.
		lo, hi := 0, len(track)
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= s {
				lo = mid
			} else {
				hi = mid
			}
		}
		a := track[lo]
		b := track[(lo+1)%len(track)]
		seg := cum[lo+1] - cum[lo]
		f := 0.0
		if seg > 0 {
			f = (s - cum[lo]) / seg
		}
		return geom.V2(a.X+(b.X-a.X)*f, a.Z+(b.Z-a.Z)*f)
	}

	speed := 17.0 + rng.Float64()*4 // m/s, ~60-75 km/h
	s := float64(playerID) * 18     // staggered grid positions
	lat := rng.Float64()*4 - 2      // racing-line offset
	for i := 0; i < ticks; i++ {
		// Slow for curves: sample heading change ahead.
		p := at(s)
		q := at(s + 5)
		heading := math.Atan2(q.Z-p.Z, q.X-p.X)
		r := at(s + 15)
		heading2 := math.Atan2(r.Z-q.Z, r.X-q.X)
		curve := math.Abs(angleDiff(heading2, heading))
		v := speed * (1 - 0.55*math.Min(curve/0.6, 1))
		s += v / TickHz
		// Lateral offset drifts slowly.
		lat += (rng.Float64() - 0.5) * 0.05
		lat = geom.Clamp(lat, -3, 3)
		nx, nz := -math.Sin(heading), math.Cos(heading)
		pos := geom.V2(p.X+nx*lat, p.Z+nz*lat)
		t.Pos = append(t.Pos, g.Scene.Bounds.ClampPoint(pos))
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+math.Pi, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	return d - math.Pi
}

type wanderParams struct {
	speed  float64 // m/s
	pauseP float64 // probability of pausing at a waypoint
	hop    float64 // typical waypoint distance
	start  geom.Vec2
}

// genWander walks between waypoints, avoiding scene objects. When follow
// is non-nil, waypoints are biased toward the leader's position at the
// corresponding time (multiplayer proximity), with an offset so paths
// never coincide.
func genWander(g *games.Game, t *Trace, ticks int, rng *rand.Rand, wp wanderParams, follow *Trace) {
	playerID := t.PlayerID
	q := g.Scene.NewQuery()
	blocked := func(p geom.Vec2) bool {
		if !g.Scene.Bounds.ContainsClosed(p) {
			return true
		}
		ids := g.Scene.ObjectsWithin(q, nil, p, 0.35)
		for _, id := range ids {
			o := &g.Scene.Objects[id]
			// Room shells (walls/ceiling) span the world; they do not
			// block walking.
			if o.Kind == world.KindBox && (o.Half.X > g.Scene.Bounds.Width()/3 || o.Half.Z > g.Scene.Bounds.Depth()/3) {
				continue
			}
			return true
		}
		return false
	}

	pos := wp.start
	for i := 0; i < 40 && blocked(pos); i++ {
		pos = jitter(rng, wp.start, 3+float64(i))
	}

	if follow != nil {
		// Pursuit mode: walk the leader's trail a few seconds behind with
		// a small lateral offset — players "closely follow each other to
		// survive and defeat their enemies" (§4.1). The offset keeps the
		// paths from ever overlapping exactly (V2 of the §4.6 study finds
		// zero exact-match hits) while staying close enough that
		// similar-frame reuse across players is possible (V4 finds
		// 60-70%).
		lag := TickHz/2 + rng.Intn(TickHz*2)
		// Per-player lateral offsets keep every trail separated from the
		// leader's (and each other's) by centimetres: enough that paths
		// never coincide on the 1/32 m grid, close enough that
		// similar-frame reuse across players works.
		side := 0.06 + 0.03*float64(playerID)
		if playerID%2 == 0 {
			side = -side
		}
		for i := 0; i < ticks; i++ {
			j := i - lag
			if j < 0 {
				j = 0
			}
			if j >= follow.Len() {
				j = follow.Len() - 1
			}
			// Offset perpendicular to the leader's local direction.
			k := j + 12
			if k >= follow.Len() {
				k = follow.Len() - 1
			}
			dir := follow.Pos[k].Sub(follow.Pos[j]).Norm()
			if dir.Len() == 0 {
				dir = geom.V2(1, 0)
			}
			offset := geom.V2(-dir.Z, dir.X).Scale(side)
			target := follow.Pos[j].Add(offset)
			target = g.Scene.Bounds.ClampPoint(target)
			d := target.Sub(pos)
			step := wp.speed * 1.15 / TickHz // slightly faster to keep up
			if d.Len() > step {
				next := pos.Add(d.Norm().Scale(step))
				if !blocked(next) {
					pos = next
				} else {
					// Slide around the blocker.
					side := geom.V2(-d.Norm().Z, d.Norm().X).Scale(step)
					if cand := pos.Add(side); !blocked(cand) {
						pos = cand
					}
				}
			} else {
				pos = target
			}
			t.Pos = append(t.Pos, pos)
		}
		return
	}

	pickWaypoint := func() geom.Vec2 {
		for attempt := 0; attempt < 30; attempt++ {
			c := jitter(rng, pos, wp.hop*(0.4+rng.Float64()))
			c = g.Scene.Bounds.ClampPoint(c)
			if !blocked(c) {
				return c
			}
		}
		return pos
	}

	way := pickWaypoint()
	pause := 0
	for i := 0; i < ticks; i++ {
		if pause > 0 {
			pause--
			t.Pos = append(t.Pos, pos)
			continue
		}
		d := way.Sub(pos)
		dist := d.Len()
		step := wp.speed / TickHz
		if dist <= step {
			pos = way
			way = pickWaypoint()
			if rng.Float64() < wp.pauseP {
				pause = TickHz/4 + rng.Intn(TickHz/2)
			}
		} else {
			next := pos.Add(d.Norm().Scale(step))
			if blocked(next) {
				way = pickWaypoint() // walk around: choose another target
			} else {
				pos = next
			}
		}
		t.Pos = append(t.Pos, pos)
	}
}
