package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"coterie/internal/geom"
)

// The paper records player movement traces during real game play and
// replays them for the caching study and the user study (§4.6, §7.4). This
// file persists traces in a compact binary format so sessions can be
// recorded once and replayed deterministically.

// traceMagic identifies the file format ("CTRC" + version 1).
var traceMagic = [4]byte{'C', 'T', 'R', 1}

// Save writes the trace to w: magic, player id, game name, tick count,
// then one float32 pair per tick.
func (t *Trace) Save(w io.Writer) error {
	if _, err := w.Write(traceMagic[:]); err != nil {
		return err
	}
	if len(t.Game) > 255 {
		return errors.New("trace: game name too long")
	}
	hdr := []byte{byte(t.PlayerID), byte(len(t.Game))}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := io.WriteString(w, t.Game); err != nil {
		return err
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(t.Pos)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, p := range t.Pos {
		binary.BigEndian.PutUint32(buf[0:4], math.Float32bits(float32(p.X)))
		binary.BigEndian.PutUint32(buf[4:8], math.Float32bits(float32(p.Z)))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read loads a trace saved by Save.
func Read(r io.Reader) (*Trace, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("trace: not a coterie trace file")
	}
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	name := make([]byte, hdr[1])
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	var nbuf [4]byte
	if _, err := io.ReadFull(r, nbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(nbuf[:])
	const maxTicks = 100 * 60 * 60 * TickHz // 100 hours
	if n > maxTicks {
		return nil, fmt.Errorf("trace: implausible tick count %d", n)
	}
	t := &Trace{PlayerID: int(hdr[0]), Game: string(name), Pos: make([]geom.Vec2, n)}
	buf := make([]byte, 8)
	for i := range t.Pos {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("trace: tick %d: %w", i, err)
		}
		t.Pos[i] = geom.V2(
			float64(math.Float32frombits(binary.BigEndian.Uint32(buf[0:4]))),
			float64(math.Float32frombits(binary.BigEndian.Uint32(buf[4:8]))),
		)
	}
	return t, nil
}
