package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	g := build(t, "viking")
	tr := Generate(g, 5, 42)
	tr.PlayerID = 3
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PlayerID != 3 || got.Game != "viking" || got.Len() != tr.Len() {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Pos {
		// float32 storage: positions within 1e-4 m (far below grid step).
		if math.Abs(got.Pos[i].X-tr.Pos[i].X) > 1e-4 || math.Abs(got.Pos[i].Z-tr.Pos[i].Z) > 1e-4 {
			t.Fatalf("tick %d: %v vs %v", i, got.Pos[i], tr.Pos[i])
		}
	}
}

func TestTraceReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Read(strings.NewReader("XXXXxxxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated body.
	g := build(t, "pool")
	tr := Generate(g, 2, 1)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
