package geom

// Rect is an axis-aligned rectangle in the ground (XZ) plane. The adaptive
// cutoff scheme recursively partitions the game world into Rects (§4.3).
type Rect struct {
	MinX, MinZ, MaxX, MaxZ float64
}

// NewRect constructs the rectangle spanning [0,w] x [0,d].
func NewRect(w, d float64) Rect { return Rect{0, 0, w, d} }

// Width returns the extent along X.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Depth returns the extent along Z.
func (r Rect) Depth() float64 { return r.MaxZ - r.MinZ }

// Area returns the rectangle area in square metres.
func (r Rect) Area() float64 { return r.Width() * r.Depth() }

// Center returns the rectangle centroid.
func (r Rect) Center() Vec2 {
	return Vec2{(r.MinX + r.MaxX) / 2, (r.MinZ + r.MaxZ) / 2}
}

// Contains reports whether p lies inside the rectangle. The convention is
// half-open on the max edges so that the four quadrants of a split tile the
// parent exactly.
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Z >= r.MinZ && p.Z < r.MaxZ
}

// ContainsClosed reports whether p lies inside the rectangle including the
// max edges; use this for the root region so boundary points belong to the
// world.
func (r Rect) ContainsClosed(p Vec2) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Z >= r.MinZ && p.Z <= r.MaxZ
}

// Quadrants splits the rectangle into its four equal-sized quadrants in the
// order (min,min), (max,min), (min,max), (max,max).
func (r Rect) Quadrants() [4]Rect {
	cx := (r.MinX + r.MaxX) / 2
	cz := (r.MinZ + r.MaxZ) / 2
	return [4]Rect{
		{r.MinX, r.MinZ, cx, cz},
		{cx, r.MinZ, r.MaxX, cz},
		{r.MinX, cz, cx, r.MaxZ},
		{cx, cz, r.MaxX, r.MaxZ},
	}
}

// ClampPoint returns p moved to the nearest point inside the rectangle.
func (r Rect) ClampPoint(p Vec2) Vec2 {
	return Vec2{Clamp(p.X, r.MinX, r.MaxX), Clamp(p.Z, r.MinZ, r.MaxZ)}
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX < o.MaxX && o.MinX < r.MaxX && r.MinZ < o.MaxZ && o.MinZ < r.MaxZ
}
