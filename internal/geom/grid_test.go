package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridPaperPointCounts(t *testing.T) {
	// Table 3 of the paper: grid point counts follow from the world
	// dimension and a 1/32 m spacing for the walking-scale games.
	cases := []struct {
		name        string
		w, d        float64
		step        float64
		wantM       float64 // millions, from Table 3
		tolFraction float64
	}{
		{"VikingVillage", 187, 130, 1.0 / 32, 24.90, 0.01},
		{"CTS", 512, 512, 1.0 / 32, 268.40, 0.01},
		{"FPS", 71, 70, 1.0 / 32, 5.09, 0.03},
		{"Soccer", 104, 140, 1.0 / 32, 14.90, 0.01},
		{"Pool", 10, 13, 1.0 / 32, 0.13, 0.03},
		{"Bowling", 34, 41, 1.0 / 32, 1.43, 0.03},
		{"Corridor", 50, 30, 1.0 / 32, 1.54, 0.03},
		{"RacingMt", 1090, 1096, 0.394, 7.70, 0.01},
		{"DS", 1286, 361, 0.394, 3.00, 0.01},
	}
	for _, c := range cases {
		g := NewGrid(NewRect(c.w, c.d), c.step)
		gotM := float64(g.Points()) / 1e6
		if math.Abs(gotM-c.wantM)/c.wantM > c.tolFraction {
			t.Errorf("%s: %.2fM grid points, paper says %.2fM", c.name, gotM, c.wantM)
		}
	}
}

func TestGridSnapRoundTrip(t *testing.T) {
	g := NewGrid(NewRect(100, 50), 0.25)
	f := func(x, z float64) bool {
		p := V2(mod(x, 100), mod(z, 50))
		gp := g.Snap(p)
		if !g.In(gp) {
			return false
		}
		// Snapped position is within half a step of the input.
		return g.Pos(gp).Dist(p) <= g.Step*math.Sqrt2/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGridSnapClampsOutside(t *testing.T) {
	g := NewGrid(NewRect(10, 10), 1)
	gp := g.Snap(V2(-100, 100))
	if !g.In(gp) {
		t.Fatalf("snap outside world returned invalid point %v", gp)
	}
	if gp != (GridPoint{0, 10}) {
		t.Errorf("snap = %v, want (0,10)", gp)
	}
}

func TestGridPosOfOrigin(t *testing.T) {
	g := NewGrid(Rect{MinX: 5, MinZ: 7, MaxX: 15, MaxZ: 17}, 1)
	if got := g.Pos(GridPoint{0, 0}); got != V2(5, 7) {
		t.Errorf("Pos origin = %v", got)
	}
	if got := g.Pos(GridPoint{3, 2}); got != V2(8, 9) {
		t.Errorf("Pos = %v", got)
	}
}

func TestGridDist(t *testing.T) {
	g := NewGrid(NewRect(10, 10), 0.5)
	d := g.Dist(GridPoint{0, 0}, GridPoint{3, 4})
	if !almostEq(d, 2.5) {
		t.Errorf("Dist = %v, want 2.5", d)
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(NewRect(10, 10), 1)
	n := g.Neighbors(nil, GridPoint{5, 5}, 1)
	if len(n) != 8 {
		t.Fatalf("interior neighbours = %d, want 8", len(n))
	}
	n = g.Neighbors(nil, GridPoint{0, 0}, 1)
	if len(n) != 3 {
		t.Fatalf("corner neighbours = %d, want 3", len(n))
	}
	for _, q := range n {
		if !g.In(q) {
			t.Errorf("invalid neighbour %v", q)
		}
		if q == (GridPoint{0, 0}) {
			t.Error("neighbour set contains the point itself")
		}
	}
	n = g.Neighbors(nil, GridPoint{5, 5}, 2)
	if len(n) != 24 {
		t.Fatalf("hop-2 neighbours = %d, want 24", len(n))
	}
}

func TestNewGridPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive step")
		}
	}()
	NewGrid(NewRect(1, 1), 0)
}
