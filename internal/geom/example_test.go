package geom_test

import (
	"fmt"

	"coterie/internal/geom"
)

// ExampleGrid discretises a virtual world the way the paper's Table 3
// implies: Viking Village's 187x130 m world at 1/32 m spacing holds 24.9
// million grid points.
func ExampleGrid() {
	grid := geom.NewGrid(geom.NewRect(187, 130), 1.0/32)
	fmt.Printf("%.1fM grid points\n", float64(grid.Points())/1e6)

	p := grid.Snap(geom.V2(40.01, 65.02))
	fmt.Printf("player at %v, %d neighbours one hop away\n",
		p, len(grid.Neighbors(nil, p, 1)))
	// Output:
	// 24.9M grid points
	// player at (1280,2081), 8 neighbours one hop away
}
