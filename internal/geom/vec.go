// Package geom provides the small geometric vocabulary shared by the
// Coterie substrates: 3-D vectors, rays, axis-aligned boxes, 2-D regions for
// the quadtree partitioner, and grid-point coordinates for the discretised
// virtual world.
package geom

import "math"

// Vec3 is a point or direction in the virtual world. Coterie uses a
// Y-up convention: players move in the XZ plane, Y is elevation.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// LenSq returns the squared length of v.
func (v Vec3) LenSq() float64 { return v.Dot(v) }

// Dist returns the distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// DistXZ returns the horizontal (ground-plane) distance between v and w.
// Cutoff radii and cache distance thresholds are defined in the XZ plane
// because players move in 2-D in the virtual world (§4.3 of the paper).
func (v Vec3) DistXZ(w Vec3) float64 {
	dx, dz := v.X-w.X, v.Z-w.Z
	return math.Sqrt(dx*dx + dz*dz)
}

// Norm returns v normalised to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to w by t in [0,1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Vec2 is a point in the ground (XZ) plane.
type Vec2 struct {
	X, Z float64
}

// V2 constructs a Vec2.
func V2(x, z float64) Vec2 { return Vec2{x, z} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Z * s} }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Z) }

// Dist returns the distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Len() }

// Norm returns v normalised to unit length; the zero vector is returned
// unchanged.
func (v Vec2) Norm() Vec2 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// XZ3 lifts the 2-D point to 3-D at elevation y.
func (v Vec2) XZ3(y float64) Vec3 { return Vec3{v.X, y, v.Z} }

// Clamp returns x clamped to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
