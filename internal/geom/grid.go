package geom

import "fmt"

// GridPoint identifies one of the finite grid points the virtual world is
// discretised into (§2.2): the server pre-renders panoramic frames only for
// grid points, and the frame cache is keyed by them.
type GridPoint struct {
	I, J int // column (X) and row (Z) index
}

// String implements fmt.Stringer.
func (p GridPoint) String() string { return fmt.Sprintf("(%d,%d)", p.I, p.J) }

// Grid converts between continuous ground-plane positions and grid points.
// Step is the grid spacing in metres: the walking-scale games in the paper
// use 1/32 m (Table 3 grid-point counts are exactly dimension/(1/32)^2) and
// the driving games use ~0.4 m.
type Grid struct {
	Bounds Rect
	Step   float64
}

// NewGrid creates a grid over bounds with the given spacing. Step must be
// positive.
func NewGrid(bounds Rect, step float64) Grid {
	if step <= 0 {
		panic("geom: grid step must be positive")
	}
	return Grid{Bounds: bounds, Step: step}
}

// Cols returns the number of grid columns.
func (g Grid) Cols() int { return int(g.Bounds.Width()/g.Step) + 1 }

// Rows returns the number of grid rows.
func (g Grid) Rows() int { return int(g.Bounds.Depth()/g.Step) + 1 }

// Points returns the total number of grid points in the world.
func (g Grid) Points() int64 { return int64(g.Cols()) * int64(g.Rows()) }

// Snap returns the grid point nearest to the ground-plane position p,
// clamped into the world bounds.
func (g Grid) Snap(p Vec2) GridPoint {
	p = g.Bounds.ClampPoint(p)
	i := int((p.X-g.Bounds.MinX)/g.Step + 0.5)
	j := int((p.Z-g.Bounds.MinZ)/g.Step + 0.5)
	if c := g.Cols() - 1; i > c {
		i = c
	}
	if r := g.Rows() - 1; j > r {
		j = r
	}
	return GridPoint{i, j}
}

// Pos returns the ground-plane position of grid point p.
func (g Grid) Pos(p GridPoint) Vec2 {
	return Vec2{
		g.Bounds.MinX + float64(p.I)*g.Step,
		g.Bounds.MinZ + float64(p.J)*g.Step,
	}
}

// Dist returns the ground-plane distance between two grid points in metres.
func (g Grid) Dist(a, b GridPoint) float64 {
	return g.Pos(a).Dist(g.Pos(b))
}

// In reports whether the grid point indexes a valid location.
func (g Grid) In(p GridPoint) bool {
	return p.I >= 0 && p.J >= 0 && p.I < g.Cols() && p.J < g.Rows()
}

// Neighbors appends to dst the valid grid points within hop steps of p in
// Chebyshev distance (the 8-connected neighbourhood for hop=1), excluding p
// itself, and returns the extended slice. The prefetcher uses this to form
// the neighbour set of the next grid point (§5.2).
func (g Grid) Neighbors(dst []GridPoint, p GridPoint, hop int) []GridPoint {
	for dj := -hop; dj <= hop; dj++ {
		for di := -hop; di <= hop; di++ {
			if di == 0 && dj == 0 {
				continue
			}
			q := GridPoint{p.I + di, p.J + dj}
			if g.In(q) {
				dst = append(dst, q)
			}
		}
	}
	return dst
}
