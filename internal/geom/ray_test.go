package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABBIntersectRayThrough(t *testing.T) {
	box := AABB{Min: V3(-1, -1, -1), Max: V3(1, 1, 1)}
	r := Ray{Origin: V3(-5, 0, 0), Direction: V3(1, 0, 0)}
	tHit, ok := box.IntersectRay(r)
	if !ok || !almostEq(tHit, 4) {
		t.Fatalf("hit = %v,%v want 4,true", tHit, ok)
	}
}

func TestAABBIntersectRayMiss(t *testing.T) {
	box := AABB{Min: V3(-1, -1, -1), Max: V3(1, 1, 1)}
	r := Ray{Origin: V3(-5, 3, 0), Direction: V3(1, 0, 0)}
	if _, ok := box.IntersectRay(r); ok {
		t.Fatal("expected miss")
	}
	// Behind the origin.
	r = Ray{Origin: V3(5, 0, 0), Direction: V3(1, 0, 0)}
	if _, ok := box.IntersectRay(r); ok {
		t.Fatal("expected miss behind origin")
	}
}

func TestAABBIntersectRayInside(t *testing.T) {
	box := AABB{Min: V3(-1, -1, -1), Max: V3(1, 1, 1)}
	r := Ray{Origin: V3(0, 0, 0), Direction: V3(0, 1, 0)}
	tHit, ok := box.IntersectRay(r)
	if !ok || tHit != 0 {
		t.Fatalf("inside hit = %v,%v want 0,true", tHit, ok)
	}
}

func TestAABBContains(t *testing.T) {
	box := AABB{Min: V3(0, 0, 0), Max: V3(1, 2, 3)}
	if !box.Contains(V3(0.5, 1, 2.9)) {
		t.Error("expected contained")
	}
	if box.Contains(V3(1.01, 1, 1)) {
		t.Error("expected outside")
	}
	if got := box.Center(); got != V3(0.5, 1, 1.5) {
		t.Errorf("Center = %v", got)
	}
}

func TestIntersectSphereHeadOn(t *testing.T) {
	r := Ray{Origin: V3(0, 0, -10), Direction: V3(0, 0, 1)}
	tHit, ok := IntersectSphere(r, V3(0, 0, 0), 2)
	if !ok || !almostEq(tHit, 8) {
		t.Fatalf("hit = %v,%v want 8,true", tHit, ok)
	}
}

func TestIntersectSphereInside(t *testing.T) {
	r := Ray{Origin: V3(0, 0, 0), Direction: V3(0, 0, 1)}
	tHit, ok := IntersectSphere(r, V3(0, 0, 0), 2)
	if !ok || !almostEq(tHit, 2) {
		t.Fatalf("inside hit = %v,%v want 2,true", tHit, ok)
	}
}

func TestIntersectSphereMiss(t *testing.T) {
	r := Ray{Origin: V3(0, 5, -10), Direction: V3(0, 0, 1)}
	if _, ok := IntersectSphere(r, V3(0, 0, 0), 2); ok {
		t.Fatal("expected miss")
	}
	// Sphere fully behind origin.
	r = Ray{Origin: V3(0, 0, 10), Direction: V3(0, 0, 1)}
	if _, ok := IntersectSphere(r, V3(0, 0, 0), 2); ok {
		t.Fatal("expected miss behind")
	}
}

// Property: any reported sphere hit point actually lies on the sphere.
func TestIntersectSphereHitOnSurface(t *testing.T) {
	f := func(ox, oy, oz, dx, dy, dz, cx, cy, cz float64, rad float64) bool {
		rad = 0.5 + math.Mod(math.Abs(rad), 10)
		d := V3(dx, dy, dz)
		if !isFinite(d) || d.Len() == 0 {
			return true
		}
		o, c := V3(ox, oy, oz), V3(cx, cy, cz)
		if !isFinite(o) || !isFinite(c) {
			return true
		}
		// Keep magnitudes modest so floating point tolerances hold.
		o = V3(math.Mod(o.X, 100), math.Mod(o.Y, 100), math.Mod(o.Z, 100))
		c = V3(math.Mod(c.X, 100), math.Mod(c.Y, 100), math.Mod(c.Z, 100))
		r := Ray{Origin: o, Direction: d.Norm()}
		tHit, ok := IntersectSphere(r, c, rad)
		if !ok {
			return true
		}
		return math.Abs(r.At(tHit).Dist(c)-rad) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRayAt(t *testing.T) {
	r := Ray{Origin: V3(1, 1, 1), Direction: V3(0, 1, 0)}
	if got := r.At(3); got != V3(1, 4, 1) {
		t.Errorf("At = %v", got)
	}
}

func TestIntersectRaySpan(t *testing.T) {
	box := AABB{Min: V3(-1, -1, -1), Max: V3(1, 1, 1)}
	// Through the box: entry 4, exit 6.
	r := Ray{Origin: V3(-5, 0, 0), Direction: V3(1, 0, 0)}
	t0, t1, ok := box.IntersectRaySpan(r)
	if !ok || !almostEq(t0, 4) || !almostEq(t1, 6) {
		t.Fatalf("span = %v,%v,%v", t0, t1, ok)
	}
	// From inside: negative entry, positive exit.
	r = Ray{Origin: V3(0, 0, 0), Direction: V3(1, 0, 0)}
	t0, t1, ok = box.IntersectRaySpan(r)
	if !ok || t0 >= 0 || !almostEq(t1, 1) {
		t.Fatalf("inside span = %v,%v,%v", t0, t1, ok)
	}
	// Box fully behind: no hit.
	r = Ray{Origin: V3(5, 0, 0), Direction: V3(1, 0, 0)}
	if _, _, ok := box.IntersectRaySpan(r); ok {
		t.Fatal("behind-origin span accepted")
	}
	// Axis-parallel ray inside the slab.
	r = Ray{Origin: V3(0, 0, -9), Direction: V3(0, 0, 1)}
	t0, t1, ok = box.IntersectRaySpan(r)
	if !ok || !almostEq(t0, 8) || !almostEq(t1, 10) {
		t.Fatalf("axis span = %v,%v,%v", t0, t1, ok)
	}
	// Axis-parallel ray outside the slab: miss.
	r = Ray{Origin: V3(3, 0, -9), Direction: V3(0, 0, 1)}
	if _, _, ok := box.IntersectRaySpan(r); ok {
		t.Fatal("outside-slab span accepted")
	}
}

func TestIntersectSphereFromBackFace(t *testing.T) {
	// tMin inside the sphere: the back face is the first visible hit.
	r := Ray{Origin: V3(0, 0, -10), Direction: V3(0, 0, 1)}
	tHit, ok := IntersectSphereFrom(r, V3(0, 0, 0), 2, 9)
	if !ok || !almostEq(tHit, 12) {
		t.Fatalf("back-face hit = %v,%v want 12", tHit, ok)
	}
	// tMin beyond the sphere entirely: no hit.
	if _, ok := IntersectSphereFrom(r, V3(0, 0, 0), 2, 13); ok {
		t.Fatal("hit past the sphere accepted")
	}
}
