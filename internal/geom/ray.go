package geom

import "math"

// Ray is a half-line with unit Direction starting at Origin.
type Ray struct {
	Origin    Vec3
	Direction Vec3
}

// At returns the point Origin + t*Direction.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Direction.Scale(t)) }

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the box centroid.
func (b AABB) Center() Vec3 {
	return Vec3{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// IntersectRay returns the entry parameter t of the ray into the box and
// whether the ray hits the box at t >= 0. If the ray starts inside the box
// the entry parameter is 0.
func (b AABB) IntersectRay(r Ray) (float64, bool) {
	t0, _, ok := b.IntersectRaySpan(r)
	if !ok {
		return 0, false
	}
	if t0 < 0 {
		t0 = 0
	}
	return t0, true
}

// IntersectRaySpan returns the full parametric span [tEntry, tExit] of the
// ray inside the box (tEntry may be negative when the origin is inside),
// and whether the ray intersects the box at all with tExit >= 0. Both
// surface crossings are needed for distance-window clipping: an object
// straddling the near/far-BE cutoff shows its back face in the far BE.
func (b AABB) IntersectRaySpan(r Ray) (float64, float64, bool) {
	tMin, tMax := math.Inf(-1), math.Inf(1)

	update := func(o, d, lo, hi float64) bool {
		if d == 0 {
			return o >= lo && o <= hi
		}
		t0 := (lo - o) / d
		t1 := (hi - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tMin {
			tMin = t0
		}
		if t1 < tMax {
			tMax = t1
		}
		return tMin <= tMax
	}

	if !update(r.Origin.X, r.Direction.X, b.Min.X, b.Max.X) {
		return 0, 0, false
	}
	if !update(r.Origin.Y, r.Direction.Y, b.Min.Y, b.Max.Y) {
		return 0, 0, false
	}
	if !update(r.Origin.Z, r.Direction.Z, b.Min.Z, b.Max.Z) {
		return 0, 0, false
	}
	if tMax < 0 {
		return 0, 0, false
	}
	return tMin, tMax, true
}

// IntersectSphere returns the nearest non-negative hit parameter of the ray
// against a sphere, and whether there is one.
func IntersectSphere(r Ray, center Vec3, radius float64) (float64, bool) {
	return IntersectSphereFrom(r, center, radius, 0)
}

// IntersectSphereFrom returns the nearest hit parameter >= tMin of the ray
// against a sphere surface (front or back face), and whether there is one.
func IntersectSphereFrom(r Ray, center Vec3, radius float64, tMin float64) (float64, bool) {
	oc := r.Origin.Sub(center)
	b := oc.Dot(r.Direction)
	c := oc.LenSq() - radius*radius
	disc := b*b - c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := -b - sq; t >= tMin {
		return t, true
	}
	if t := -b + sq; t >= tMin {
		return t, true
	}
	return 0, false
}
