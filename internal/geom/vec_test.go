package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVec3Basics(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(-4, 5, 0.5)
	if got := a.Add(b); got != V3(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !almostEq(got, -4+10+1.5) {
		t.Errorf("Dot = %v", got)
	}
	if got := V3(1, 0, 0).Cross(V3(0, 1, 0)); got != V3(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := V3(3, 4, 0).Len(); !almostEq(got, 5) {
		t.Errorf("Len = %v", got)
	}
}

func TestVec3NormUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V3(x, y, z)
		if !isFinite(v) || v.Len() == 0 {
			return true
		}
		n := v.Norm()
		return math.Abs(n.Len()-1) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3NormZero(t *testing.T) {
	if got := (Vec3{}).Norm(); got != (Vec3{}) {
		t.Errorf("Norm of zero = %v", got)
	}
}

func TestDistXZIgnoresY(t *testing.T) {
	a := V3(0, 100, 0)
	b := V3(3, -7, 4)
	if got := a.DistXZ(b); !almostEq(got, 5) {
		t.Errorf("DistXZ = %v, want 5", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V3(1, 2, 3), V3(-5, 0, 10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !almostEq(mid.X, -2) || !almostEq(mid.Y, 1) || !almostEq(mid.Z, 6.5) {
		t.Errorf("Lerp 0.5 = %v", mid)
	}
}

func TestDotCommutesAndCrossAnticommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		if !isFinite(a) || !isFinite(b) {
			return true
		}
		if a.Dot(b) != b.Dot(a) {
			return false
		}
		c1, c2 := a.Cross(b), b.Cross(a).Scale(-1)
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		if !isFinite(a) || !isFinite(b) {
			return true
		}
		c := a.Cross(b)
		// Orthogonality within a tolerance that scales with magnitudes.
		tol := 1e-9 * (1 + a.Len()*b.Len()*(a.Len()+b.Len()))
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec2(t *testing.T) {
	a, b := V2(3, 4), V2(0, 0)
	if !almostEq(a.Len(), 5) {
		t.Errorf("Len = %v", a.Len())
	}
	if !almostEq(a.Dist(b), 5) {
		t.Errorf("Dist = %v", a.Dist(b))
	}
	if got := a.Norm().Len(); !almostEq(got, 1) {
		t.Errorf("Norm len = %v", got)
	}
	if got := b.Norm(); got != b {
		t.Errorf("Norm zero = %v", got)
	}
	if got := a.XZ3(7); got != V3(3, 7, 4) {
		t.Errorf("XZ3 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func isFinite(v Vec3) bool {
	ok := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 }
	return ok(v.X) && ok(v.Y) && ok(v.Z)
}
