package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(10, 20)
	if r.Width() != 10 || r.Depth() != 20 || r.Area() != 200 {
		t.Fatalf("dims wrong: %+v", r)
	}
	if got := r.Center(); got != V2(5, 10) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectQuadrantsTileParent(t *testing.T) {
	r := Rect{1, 2, 9, 10}
	qs := r.Quadrants()
	var area float64
	for _, q := range qs {
		area += q.Area()
	}
	if area != r.Area() {
		t.Fatalf("quadrant areas %v != parent %v", area, r.Area())
	}
	// Every interior point belongs to exactly one quadrant.
	f := func(px, pz float64) bool {
		p := Vec2{1 + mod(px, 8), 2 + mod(pz, 8)}
		count := 0
		for _, q := range qs {
			if q.Contains(p) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	if !r.Contains(V2(0, 0)) {
		t.Error("min corner should be contained")
	}
	if r.Contains(V2(1, 1)) {
		t.Error("max corner should not be contained (half-open)")
	}
	if !r.ContainsClosed(V2(1, 1)) {
		t.Error("max corner should be contained (closed)")
	}
}

func TestRectClampPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.ClampPoint(V2(-5, 20)); got != V2(0, 10) {
		t.Errorf("ClampPoint = %v", got)
	}
	if got := r.ClampPoint(V2(3, 4)); got != V2(3, 4) {
		t.Errorf("ClampPoint interior = %v", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Intersects(Rect{5, 5, 15, 15}) {
		t.Error("expected overlap")
	}
	if a.Intersects(Rect{10, 0, 20, 10}) {
		t.Error("touching edges should not count as overlap")
	}
	if a.Intersects(Rect{11, 11, 20, 20}) {
		t.Error("expected disjoint")
	}
}

// mod maps any float (including infinities and NaN) into [0, m).
func mod(x, m float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	v := math.Mod(x, m)
	if v < 0 {
		v += m
	}
	return v
}
