// Package eval regenerates every table and figure of the paper's
// evaluation from the reimplemented system: the experiment harness behind
// cmd/benchtab and the benchmarks in the repository root. Each experiment
// returns typed rows, carries the paper's published values for comparison,
// and can print itself.
package eval

import (
	"fmt"
	"io"
	"sync"

	"coterie/internal/core"
	"coterie/internal/cutoff"
	"coterie/internal/games"
	"coterie/internal/par"
	"coterie/internal/render"
)

// Options scales the experiments.
type Options struct {
	// Quick trades precision for speed (shorter sessions, fewer samples);
	// used by tests and -quick runs.
	Quick bool
	// RenderW/RenderH set the panorama resolution for experiments that
	// render frames; zero means 192x96 (quick) or 256x128.
	RenderW, RenderH int
	// Seed fixes all sampled randomness.
	Seed int64
	// Parallel is the number of workers each experiment generator fans its
	// independent units (trace positions, sessions, leaf regions) across;
	// 0 means GOMAXPROCS. Results are deterministic for any value: units
	// are enumerated sequentially up front and write into index-addressed
	// slices.
	Parallel int
}

// workers resolves the experiment fan-out width.
func (o Options) workers() int { return par.Workers(o.Parallel) }

// DefaultOptions returns the paper-grade configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) renderConfig() render.Config {
	w, h := o.RenderW, o.RenderH
	if w == 0 || h == 0 {
		if o.Quick {
			w, h = 160, 80
		} else {
			w, h = 256, 128
		}
	}
	return render.Config{W: w, H: h}
}

// itemRenderConfig is renderConfig with one rendering goroutine per frame,
// for renderers driven from item-parallel loops: when the experiment fans
// frames out across workers, coarse-grained parallelism beats splitting each
// small panorama's rows. Frame pixels are identical either way.
func (o Options) itemRenderConfig() render.Config {
	cfg := o.renderConfig()
	cfg.Parallel = 1
	return cfg
}

// sessionSeconds returns the session length for testbed experiments. The
// paper runs 10 minutes; the simulated testbed converges much faster.
func (o Options) sessionSeconds() float64 {
	if o.Quick {
		return 8
	}
	return 45
}

// Lab caches prepared environments per game so a benchtab run prepares
// each world once. Env is safe for concurrent use: each game's environment
// is built exactly once even when several experiment workers ask for it at
// the same time, and distinct games build concurrently.
type Lab struct {
	Opts Options

	mu   sync.Mutex
	envs map[string]*envSlot
}

// envSlot decouples the cache map's lock from the (expensive) environment
// build, so preparing one game never blocks another.
type envSlot struct {
	once sync.Once
	env  *core.Env
	err  error
}

// NewLab creates an experiment lab.
func NewLab(opts Options) *Lab {
	return &Lab{Opts: opts, envs: make(map[string]*envSlot)}
}

// Env returns the prepared environment for a game, building it on first
// use.
func (l *Lab) Env(name string) (*core.Env, error) {
	l.mu.Lock()
	s, ok := l.envs[name]
	if !ok {
		s = &envSlot{}
		l.envs[name] = s
	}
	l.mu.Unlock()
	s.once.Do(func() { s.env, s.err = l.buildEnv(name) })
	return s.env, s.err
}

func (l *Lab) buildEnv(name string) (*core.Env, error) {
	spec, err := games.ByName(name)
	if err != nil {
		return nil, err
	}
	opts := core.EnvOptions{RenderCfg: l.Opts.renderConfig(), Parallel: l.Opts.Parallel}
	if l.Opts.Quick {
		p := cutoff.DefaultParams()
		p.K = 5
		opts.CutoffParams = p
		opts.SizeSamples = 6
	}
	env, err := core.PrepareEnv(spec, opts)
	if err != nil {
		return nil, fmt.Errorf("eval: preparing %s: %w", name, err)
	}
	return env, nil
}

// PrepareEnvs builds the environments for the named games across the lab's
// workers. Generators call it before fanning out so the parallel units find
// every environment already cached.
func (l *Lab) PrepareEnvs(names []string) error {
	return par.ForErr(l.Opts.workers(), len(names), func(i int) error {
		_, err := l.Env(names[i])
		return err
	})
}

// Game builds (and caches via Env) the game for similarity experiments
// that need no cutoff map.
func (l *Lab) Game(name string) (*games.Game, error) {
	env, err := l.Env(name)
	if err != nil {
		return nil, err
	}
	return env.Game, nil
}

// adjacentStep returns the "adjacent grid point" displacement used by the
// similarity experiments, scaled from the paper's 4K panoramas to the
// experiment resolution: a viewpoint shift that moves near geometry by k
// pixels at 3840-wide frames moves it by k*W/3840 pixels at width W, so
// the same SSIM behaviour needs the displacement scaled by 3840/W. The
// absolute SSIM-versus-metres curve therefore shifts; the paper-level
// contrasts (whole vs far BE, outdoor vs indoor) are preserved.
func (o Options) adjacentStep(gridStep float64) float64 {
	return gridStep * 3840 / float64(o.renderConfig().W)
}

// headlineNames are the three testbed games (§7).
var headlineNames = []string{"viking", "cts", "racing"}

// allGameNames are the nine study apps in the paper's order.
func allGameNames() []string {
	names := make([]string, 0, 9)
	for _, s := range games.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// cdfSummary reduces a sample set to the fraction above a threshold plus
// quartiles — enough to compare the shape of a CDF against the paper.
type cdfSummary struct {
	N             int
	FracAbove     float64 // fraction of samples above the quality threshold
	P25, P50, P75 float64
}

func summarize(samples []float64, threshold float64) cdfSummary {
	if len(samples) == 0 {
		return cdfSummary{}
	}
	sorted := append([]float64(nil), samples...)
	insertionSort(sorted)
	above := 0
	for _, s := range sorted {
		if s > threshold {
			above++
		}
	}
	q := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
	return cdfSummary{
		N:         len(sorted),
		FracAbove: float64(above) / float64(len(sorted)),
		P25:       q(0.25),
		P50:       q(0.50),
		P75:       q(0.75),
	}
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
