package eval

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// generateAll runs every parallelized experiment generator on a fresh lab
// with the given worker count and prints the rows into one buffer. The
// render resolution is tiny: the point is the control flow (prepass order,
// index-addressed writes, reductions), not the figures' fidelity.
func generateAll(t *testing.T, parallel int) []byte {
	t.Helper()
	opts := DefaultOptions()
	opts.Quick = true
	opts.RenderW, opts.RenderH = 64, 32
	opts.Parallel = parallel
	l := NewLab(opts)

	var buf bytes.Buffer
	step := func(name string, fn func() error) {
		t.Helper()
		fmt.Fprintf(&buf, "== %s ==\n", name)
		if err := fn(); err != nil {
			t.Fatalf("%s (parallel=%d): %v", name, parallel, err)
		}
	}

	step("fig1", func() error {
		rows, err := l.Fig1()
		if err == nil {
			PrintFig1(&buf, rows)
		}
		return err
	})
	step("fig2", func() error {
		rows, err := l.Fig2()
		if err == nil {
			PrintFig2(&buf, rows)
		}
		return err
	})
	step("fig3", func() error {
		r, err := l.Fig3()
		if err == nil {
			PrintFig3(&buf, r)
		}
		return err
	})
	step("fig5", func() error {
		pts, err := l.Fig5()
		if err == nil {
			PrintFig5(&buf, pts)
		}
		return err
	})
	step("table3", func() error {
		rows, err := l.Table3()
		if err == nil {
			for i := range rows {
				rows[i].ProcTime = time.Duration(0) // wall-clock, not comparable
			}
			PrintTable3(&buf, rows)
		}
		return err
	})
	step("fig6", func() error {
		rows, err := l.Fig6()
		if err == nil {
			PrintFig6(&buf, rows)
		}
		return err
	})
	step("fig7", func() error {
		rows, err := l.Fig7()
		if err == nil {
			PrintFig7(&buf, rows)
		}
		return err
	})
	step("table5", func() error {
		rows, err := l.Table5("viking")
		if err == nil {
			PrintTable5(&buf, rows)
		}
		return err
	})
	step("table6", func() error {
		rows, err := l.Table6()
		if err == nil {
			PrintTable6(&buf, rows)
		}
		return err
	})
	step("table1", func() error {
		rows, err := l.Table1()
		if err == nil {
			PrintTable1(&buf, rows)
		}
		return err
	})
	step("table7", func() error {
		rows, err := l.Table7()
		if err == nil {
			PrintTable7(&buf, rows)
		}
		return err
	})
	step("fig11", func() error {
		rows, err := l.Fig11()
		if err == nil {
			PrintFig11(&buf, rows)
		}
		return err
	})
	step("table8", func() error {
		rows, err := l.Table8()
		if err == nil {
			PrintTable8(&buf, rows)
		}
		return err
	})
	step("table9", func() error {
		rows, err := l.Table9()
		if err == nil {
			PrintTable9(&buf, rows)
		}
		return err
	})
	step("fig12", func() error {
		rows, err := l.Fig12()
		if err == nil {
			PrintFig12(&buf, rows)
		}
		return err
	})
	step("ablation-replacement", func() error {
		r, err := l.ReplacementAblation("viking", 64)
		if err == nil {
			fmt.Fprintf(&buf, "%+v\n", r)
		}
		return err
	})
	step("ablation-overhear", func() error {
		r, err := l.OverhearAblation("viking")
		if err == nil {
			fmt.Fprintf(&buf, "%+v\n", r)
		}
		return err
	})
	step("ablation-prefetch", func() error {
		r, err := l.PrefetchAblation("viking")
		if err == nil {
			fmt.Fprintf(&buf, "%+v\n", r)
		}
		return err
	})
	return buf.Bytes()
}

// TestGeneratorsDeterministicAcrossParallel checks the tentpole invariant:
// every parallelized experiment generator prints byte-identical output
// whether it runs on one worker or eight. Work units are enumerated (and
// all randomness drawn) in a sequential prepass and results land in
// index-addressed slices, so worker count must never leak into the rows.
func TestGeneratorsDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator twice")
	}
	seq := generateAll(t, 1)
	par := generateAll(t, 8)
	if bytes.Equal(seq, par) {
		return
	}
	// Locate the first differing line for a useful failure message.
	sl := bytes.Split(seq, []byte("\n"))
	pl := bytes.Split(par, []byte("\n"))
	for i := 0; i < len(sl) && i < len(pl); i++ {
		if !bytes.Equal(sl[i], pl[i]) {
			t.Fatalf("output diverges at line %d:\n  parallel=1: %s\n  parallel=8: %s", i+1, sl[i], pl[i])
		}
	}
	t.Fatalf("output lengths differ: %d vs %d bytes", len(seq), len(par))
}
