package eval

import (
	"io"
	"math"
	"sort"
	"time"

	"coterie/internal/cutoff"
	"coterie/internal/device"
	"coterie/internal/games"
	"coterie/internal/par"
	"coterie/internal/trace"
)

// Table3Row is one game's adaptive-cutoff output (Table 3).
type Table3Row struct {
	Game        string
	DimW, DimD  float64
	GridPointsM float64
	DepthAvg    float64
	DepthMax    int
	LeafRegions int
	ProcTime    time.Duration
	CutoffCalcs int
	Paper       games.PaperStats
}

// Table3 runs the adaptive cutoff scheme over all nine games and reports
// world stats, quadtree shape and processing time alongside the paper's
// numbers. The headline claim: CTS's 268M grid points reduce to a few
// hundred leaf regions.
func (l *Lab) Table3() ([]Table3Row, error) {
	// The work is the per-game environment builds; fan those out and then
	// assemble rows from the cached stats.
	if err := l.PrepareEnvs(allGameNames()); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, name := range allGameNames() {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		spec := env.Game.Spec
		rows = append(rows, Table3Row{
			Game:        name,
			DimW:        spec.Width,
			DimD:        spec.Depth,
			GridPointsM: float64(env.Game.Scene.Grid.Points()) / 1e6,
			DepthAvg:    env.Map.Stats.DepthAvg,
			DepthMax:    env.Map.Stats.DepthMax,
			LeafRegions: env.Map.Stats.LeafCount,
			ProcTime:    env.Map.Stats.ProcTime,
			CutoffCalcs: env.Map.Stats.CutoffCalcs,
			Paper:       spec.Paper,
		})
	}
	return rows, nil
}

// PrintTable3 renders the rows.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fprintf(w, "Table 3: adaptive cutoff scheme output (measured | paper)\n")
	fprintf(w, "%-10s %12s %10s %14s %12s %10s\n",
		"game", "dim (m)", "points(M)", "depth avg/max", "leaf regions", "calc time")
	for _, r := range rows {
		fprintf(w, "%-10s %5.0fx%-6.0f %4.1f|%-5.1f %5.2f/%d | %.2f/%d %5d | %-5d %9s\n",
			r.Game, r.DimW, r.DimD, r.GridPointsM, r.Paper.GridPointsM,
			r.DepthAvg, r.DepthMax, r.Paper.DepthAvg, r.Paper.DepthMax,
			r.LeafRegions, r.Paper.LeafRegions, r.ProcTime.Round(time.Millisecond))
	}
	fprintf(w, "paper processing ran hours on Unity; the simulated substrate computes the same partition in seconds\n")
}

// Fig6Row is the Constraint-1 violation rate at one K for one game.
type Fig6Row struct {
	Game      string
	K         int
	Violation float64 // fraction of trace locations violating Constraint 1
}

// Fig6 sweeps the per-region sample count K and measures the fraction of
// trace locations whose near-BE render time (plus measured FI time)
// violates the 16.7 ms constraint. Paper: at K=10 the violation rate is
// below 0.25%.
func (l *Lab) Fig6() ([]Fig6Row, error) {
	ks := []int{1, 2, 4, 6, 8, 10, 12}
	locs := 400
	if l.Opts.Quick {
		ks = []int{1, 4, 10}
		locs = 150
	}
	prof := device.Pixel2()
	typicalFI := prof.RenderMs(2 * 25_000)

	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	// Each (game, K) cell recomputes the cutoff partition from its own seed
	// and replays the game's trace against it — fully independent, so the
	// grid fans out. Traces are generated in a sequential prepass; each cell
	// allocates its own scene query (the scratch is not shared across
	// goroutines).
	traces := make([]*trace.Trace, len(headlineNames))
	for gi, name := range headlineNames {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		traces[gi] = trace.Generate(env.Game, 60, l.Opts.Seed+6)
	}
	rows := make([]Fig6Row, len(headlineNames)*len(ks))
	err := par.ForErr(l.Opts.workers(), len(rows), func(idx int) error {
		gi, ki := idx/len(ks), idx%len(ks)
		name, k := headlineNames[gi], ks[ki]
		env, err := l.Env(name)
		if err != nil {
			return err
		}
		scene := env.Game.Scene
		q := scene.NewQuery()
		tr := traces[gi]
		stride := tr.Len() / locs
		if stride < 1 {
			stride = 1
		}
		p := cutoff.DefaultParams()
		p.K = k
		p.Seed = l.Opts.Seed + int64(k)
		p.Parallel = 1 // the grid cells are already running in parallel
		m, err := cutoff.Compute(scene, prof.NearBERenderMs, p)
		if err != nil {
			return err
		}
		viol, total := 0, 0
		for i := 0; i < tr.Len(); i += stride {
			pos := tr.Pos[i]
			r := m.RadiusAt(pos)
			// The paper measures the on-device rendering time, i.e.
			// the frustum-culled per-frame cost.
			rt := prof.NearBEFrameMs(scene.TrianglesWithin(q, pos, r))
			if rt+typicalFI > prof.VsyncMs {
				viol++
			}
			total++
		}
		rows[idx] = Fig6Row{Game: name, K: k, Violation: float64(viol) / float64(total)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFig6 renders the sweep.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fprintf(w, "Figure 6: %% of trace locations violating Constraint 1 vs K\n")
	fprintf(w, "%-10s %4s %10s\n", "game", "K", "violation")
	for _, r := range rows {
		fprintf(w, "%-10s %4d %9.2f%%\n", r.Game, r.K, r.Violation*100)
	}
	fprintf(w, "paper: below 0.25%% at K=10 for Viking, Racing and CTS\n")
}

// Fig7Row summarises a game's leaf cutoff-radius distribution.
type Fig7Row struct {
	Game                    string
	P10, P50, P90, Min, Max float64
}

// Fig7 reports the distribution of leaf-region cutoff radii per game.
// Paper: radii stay in a small range for all except DS (half spread
// 10-100 m) and Racing Mountain (evenly spread 10-180 m).
func (l *Lab) Fig7() ([]Fig7Row, error) {
	if err := l.PrepareEnvs(allGameNames()); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, name := range allGameNames() {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		radii := make([]float64, 0, len(env.Map.Regions))
		for _, r := range env.Map.Regions {
			radii = append(radii, r.Radius)
		}
		sort.Float64s(radii)
		q := func(p float64) float64 { return radii[int(p*float64(len(radii)-1))] }
		rows = append(rows, Fig7Row{
			Game: name,
			P10:  q(0.10), P50: q(0.50), P90: q(0.90),
			Min: radii[0], Max: radii[len(radii)-1],
		})
	}
	return rows, nil
}

// PrintFig7 renders the distributions.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fprintf(w, "Figure 7: leaf-region cutoff radius distribution (m)\n")
	fprintf(w, "%-10s %8s %8s %8s %8s %8s\n", "game", "min", "p10", "p50", "p90", "max")
	for _, r := range rows {
		fprintf(w, "%-10s %8.1f %8.1f %8.1f %8.1f %8.1f\n", r.Game, r.Min, r.P10, r.P50, r.P90, r.Max)
	}
	fprintf(w, "paper: small ranges except DS (10-100 m tail) and Racing Mt (10-180 m spread)\n")
}

// Fig8Result is the density/radius correlation over Viking leaf regions.
type Fig8Result struct {
	Leaves      int
	Correlation float64 // Pearson, expected clearly negative
	Bins        []Fig8Bin
}

// Fig8Bin is one radius bin's mean density.
type Fig8Bin struct {
	RadiusLo, RadiusHi float64
	MeanDensity        float64
	Count              int
}

// Fig8 correlates leaf-region triangle density with the generated cutoff
// radius for Viking Village. Paper: clear inverse correlation (the higher
// the density, the smaller the radius) across 420 leaf regions spanning
// radii 2-28 m.
func (l *Lab) Fig8() (*Fig8Result, error) {
	env, err := l.Env("viking")
	if err != nil {
		return nil, err
	}
	regions := env.Map.Regions
	res := &Fig8Result{Leaves: len(regions)}

	var mx, my float64
	for _, r := range regions {
		mx += r.TriDensity
		my += r.Radius
	}
	n := float64(len(regions))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for _, r := range regions {
		dx, dy := r.TriDensity-mx, r.Radius-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx > 0 && syy > 0 {
		res.Correlation = sxy / math.Sqrt(sxx*syy)
	}

	// Radius bins with mean density (the heatmap's marginal).
	edges := []float64{0, 2, 4, 8, 16, 32, math.Inf(1)}
	for i := 0; i+1 < len(edges); i++ {
		var sum float64
		var cnt int
		for _, r := range regions {
			if r.Radius >= edges[i] && r.Radius < edges[i+1] {
				sum += r.TriDensity
				cnt++
			}
		}
		if cnt > 0 {
			res.Bins = append(res.Bins, Fig8Bin{
				RadiusLo: edges[i], RadiusHi: edges[i+1],
				MeanDensity: sum / float64(cnt), Count: cnt,
			})
		}
	}
	return res, nil
}

// PrintFig8 renders the correlation.
func PrintFig8(w io.Writer, r *Fig8Result) {
	fprintf(w, "Figure 8: cutoff radius vs triangle density over %d Viking leaf regions\n", r.Leaves)
	fprintf(w, "Pearson correlation: %.2f (paper: clear inverse correlation)\n", r.Correlation)
	for _, b := range r.Bins {
		fprintf(w, "radius %5.1f-%5.1f m: mean density %8.0f tris/m^2 (%d leaves)\n",
			b.RadiusLo, b.RadiusHi, b.MeanDensity, b.Count)
	}
}
