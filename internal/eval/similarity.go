package eval

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/render"
	"coterie/internal/ssim"
	"coterie/internal/trace"
	"coterie/internal/world"
)

// Fig1Row is one game's intra-player frame similarity before and after the
// near/far decoupling (Fig 1a/1b): the fraction of adjacent BE frame pairs
// with SSIM > 0.9.
type Fig1Row struct {
	Game    string
	Outdoor bool
	Whole   cdfSummary // before decoupling (whole BE)
	Far     cdfSummary // after decoupling (far BE)
}

// Fig1 measures the similarity of adjacent BE frames along a
// single-player trajectory for all nine games, before (whole BE) and after
// (far BE at the leaf cutoff radius) decoupling. Paper result: before,
// 0-20% of pairs exceed SSIM 0.9; after, 85-100% (outdoor) and 65-90%
// (indoor).
func (l *Lab) Fig1() ([]Fig1Row, error) {
	pairs := 30
	if l.Opts.Quick {
		pairs = 8
	}
	names := allGameNames()
	if err := l.PrepareEnvs(names); err != nil {
		return nil, err
	}
	rows := make([]Fig1Row, len(names))
	for gi, name := range names {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		r := render.New(env.Game.Scene, l.Opts.itemRenderConfig())
		tr := trace.Generate(env.Game, 120, l.Opts.Seed+int64(gi))

		step := l.Opts.adjacentStep(env.Game.Scene.Grid.Step)
		// Enumerate the viewpoint pairs sequentially (the stationary-player
		// skip below depends only on the trace), then fan the render+SSIM
		// work out across workers.
		type pair struct{ p1, p2 geom.Vec2 }
		var items []pair
		stride := tr.Len() / (pairs + 1)
		if stride < 2 {
			stride = 2
		}
		for i := stride; i+1 < tr.Len() && len(items) < pairs; i += stride {
			p1 := tr.Pos[i]
			p2 := adjacentAlongPath(tr, i, step)
			if p1.Dist(p2) < step*0.5 {
				continue // player stationary; skip (no new frame needed)
			}
			items = append(items, pair{p1, p2})
		}
		whole := make([]float64, len(items))
		far := make([]float64, len(items))
		par.For(l.Opts.workers(), len(items), func(i int) {
			p1, p2 := items[i].p1, items[i].p2
			e1, e2 := env.Game.Scene.EyeAt(p1), env.Game.Scene.EyeAt(p2)

			w1 := r.Panorama(e1, 0, math.Inf(1), nil)
			w2 := r.Panorama(e2, 0, math.Inf(1), nil)
			if s, err := ssim.Mean(w1, w2); err == nil {
				whole[i] = s
			}
			rad := env.Map.RadiusAt(p1)
			f1 := r.Panorama(e1, rad, math.Inf(1), nil)
			f2 := r.Panorama(e2, rad, math.Inf(1), nil)
			if s, err := ssim.Mean(f1, f2); err == nil {
				far[i] = s
			}
		})
		rows[gi] = Fig1Row{
			Game:    name,
			Outdoor: env.Game.Spec.Outdoor,
			Whole:   summarize(whole, ssim.GoodThreshold),
			Far:     summarize(far, ssim.GoodThreshold),
		}
	}
	return rows, nil
}

// adjacentAlongPath returns the position one (resolution-equivalent) grid
// step further along the trajectory ("each BE frame and its next adjacent
// frame in the trajectory", §4.1).
func adjacentAlongPath(tr *trace.Trace, i int, step float64) geom.Vec2 {
	start := tr.Pos[i]
	for j := i + 1; j < tr.Len() && j < i+trace.TickHz*20; j++ {
		if tr.Pos[j].Dist(start) >= step {
			return tr.Pos[j]
		}
	}
	return tr.Pos[min(i+1, tr.Len()-1)]
}

// PrintFig1 renders the rows as text.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fprintf(w, "Figure 1: adjacent BE frame similarity (fraction of pairs with SSIM > 0.9)\n")
	fprintf(w, "%-10s %-8s %-22s %-22s\n", "game", "type", "before (whole BE)", "after (far BE)")
	for _, r := range rows {
		kind := "indoor"
		if r.Outdoor {
			kind = "outdoor"
		}
		fprintf(w, "%-10s %-8s %6.1f%% (median %.3f)  %6.1f%% (median %.3f)\n",
			r.Game, kind, r.Whole.FracAbove*100, r.Whole.P50, r.Far.FracAbove*100, r.Far.P50)
	}
	fprintf(w, "paper: before 0-20%% for all 9 games; after 85-100%% outdoor, 65-90%% indoor\n")
}

// Fig2Row is one game's best-case inter-player similarity (Fig 2a/2b).
type Fig2Row struct {
	Game    string
	Outdoor bool
	Whole   cdfSummary
	Far     cdfSummary
}

// Fig2 measures best-case similarity between two players' BE frames: for
// sampled frames of player 1, find player 2's most similar frame. The
// paper searches all of player 2's frames; we search the best candidates
// by viewpoint distance (the SSIM-optimal frame is the nearest viewpoint
// up to rendering noise), which preserves the best-case semantics at
// tractable cost. Paper result: before decoupling ~0% of frames exceed
// SSIM 0.9; after, 55-100% for outdoor games, 2-33% indoor.
func (l *Lab) Fig2() ([]Fig2Row, error) {
	samples := 20
	candidates := 3
	if l.Opts.Quick {
		samples = 6
	}
	names := allGameNames()
	if err := l.PrepareEnvs(names); err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, len(names))
	for gi, name := range names {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		r := render.New(env.Game.Scene, l.Opts.itemRenderConfig())
		party := trace.GenerateParty(env.Game, 2, 120, l.Opts.Seed+77)
		t1, t2 := party[0], party[1]

		// Sampled player-1 positions; every sample is kept, so the work
		// list is a plain stride walk and the samples fan out directly.
		var items []geom.Vec2
		stride := t1.Len() / (samples + 1)
		if stride < 1 {
			stride = 1
		}
		for i := stride; i < t1.Len() && len(items) < samples; i += stride {
			items = append(items, t1.Pos[i])
		}
		whole := make([]float64, len(items))
		far := make([]float64, len(items))
		par.For(l.Opts.workers(), len(items), func(i int) {
			p1 := items[i]
			// Closest viewpoints of player 2 (candidate best-case frames).
			best := nearestK(t2, p1, candidates)
			e1 := env.Game.Scene.EyeAt(p1)
			w1 := r.Panorama(e1, 0, math.Inf(1), nil)
			rad := env.Map.RadiusAt(p1)
			f1 := r.Panorama(e1, rad, math.Inf(1), nil)

			bw, bf := 0.0, 0.0
			for _, p2 := range best {
				e2 := env.Game.Scene.EyeAt(p2)
				w2 := r.Panorama(e2, 0, math.Inf(1), nil)
				if s, err := ssim.Mean(w1, w2); err == nil && s > bw {
					bw = s
				}
				f2 := r.Panorama(e2, rad, math.Inf(1), nil)
				if s, err := ssim.Mean(f1, f2); err == nil && s > bf {
					bf = s
				}
			}
			whole[i] = bw
			far[i] = bf
		})
		rows[gi] = Fig2Row{
			Game:    name,
			Outdoor: env.Game.Spec.Outdoor,
			Whole:   summarize(whole, ssim.GoodThreshold),
			Far:     summarize(far, ssim.GoodThreshold),
		}
	}
	return rows, nil
}

// nearestK finds the k positions in tr closest to p (coarsely strided for
// speed, then refined).
func nearestK(tr *trace.Trace, p geom.Vec2, k int) []geom.Vec2 {
	type cand struct {
		d   float64
		pos geom.Vec2
	}
	best := make([]cand, 0, k+1)
	for i := 0; i < tr.Len(); i += 5 {
		d := tr.Pos[i].Dist(p)
		if len(best) < k || d < best[len(best)-1].d {
			best = append(best, cand{d, tr.Pos[i]})
			for j := len(best) - 1; j > 0 && best[j].d < best[j-1].d; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]geom.Vec2, len(best))
	for i, c := range best {
		out[i] = c.pos
	}
	return out
}

// PrintFig2 renders the rows as text.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fprintf(w, "Figure 2: best-case inter-player similarity (fraction with SSIM > 0.9)\n")
	fprintf(w, "%-10s %-8s %-22s %-22s\n", "game", "type", "before (whole BE)", "after (far BE)")
	for _, r := range rows {
		kind := "indoor"
		if r.Outdoor {
			kind = "outdoor"
		}
		fprintf(w, "%-10s %-8s %6.1f%% (median %.3f)  %6.1f%% (median %.3f)\n",
			r.Game, kind, r.Whole.FracAbove*100, r.Whole.P50, r.Far.FracAbove*100, r.Far.P50)
	}
	fprintf(w, "paper: before ~0%%; after 55-100%% outdoor, 2-33%% indoor\n")
}

// Fig3Result is the worked near-object example of Fig 3.
type Fig3Result struct {
	WholeSSIM float64 // low: near objects dominate the change
	FarSSIM   float64 // high after removing near objects
	Cutoff    float64
	Dist      float64 // viewpoint displacement in metres
}

// Fig3 reproduces the paper's worked example (SSIM 0.67 -> 0.96 on a
// Viking Village viewpoint pair): two nearby viewpoints whose whole-BE
// frames differ strongly until the near objects are removed.
func (l *Lab) Fig3() (*Fig3Result, error) {
	env, err := l.Env("viking")
	if err != nil {
		return nil, err
	}
	r := render.New(env.Game.Scene, l.Opts.itemRenderConfig())
	rng := rand.New(rand.NewSource(l.Opts.Seed + 3))

	trials := 40
	if l.Opts.Quick {
		trials = 12
	}
	// All trial locations come from the sequential rng stream up front, so
	// the sampled points match the original implementation exactly.
	locs := make([]geom.Vec2, trials)
	b := env.Game.Scene.Bounds
	for i := range locs {
		locs[i] = geom.V2(b.MinX+rng.Float64()*b.Width(), b.MinZ+rng.Float64()*b.Depth())
	}
	step := l.Opts.adjacentStep(env.Game.Scene.Grid.Step)

	type trialResult struct {
		ok     bool
		sw, sf float64
		cutoff float64
		p1     geom.Vec2
	}
	eval := func(q *world.Query, p1 geom.Vec2) trialResult {
		// Require near objects for the effect.
		if n := env.Game.Scene.ObjectsWithin(q, nil, p1, 5); len(n) == 0 {
			return trialResult{}
		}
		p2 := geom.V2(p1.X+step, p1.Z)
		e1, e2 := env.Game.Scene.EyeAt(p1), env.Game.Scene.EyeAt(p2)
		w1 := r.Panorama(e1, 0, math.Inf(1), nil)
		w2 := r.Panorama(e2, 0, math.Inf(1), nil)
		sw, err := ssim.Mean(w1, w2)
		if err != nil {
			return trialResult{}
		}
		cutoff := env.Map.RadiusAt(p1)
		if cutoff <= 0 {
			return trialResult{}
		}
		f1 := r.Panorama(e1, cutoff, math.Inf(1), nil)
		f2 := r.Panorama(e2, cutoff, math.Inf(1), nil)
		sf, err := ssim.Mean(f1, f2)
		if err != nil {
			return trialResult{}
		}
		return trialResult{ok: true, sw: sw, sf: sf, cutoff: cutoff, p1: p1}
	}

	// The search stops early once a convincing example appears, so trials
	// run in chunks of one per worker: the chunk computes in parallel, the
	// reduction below scans it in trial order and honours the original
	// early exit. A chunk may compute a few trials past the stopping point;
	// their results are discarded, so output is order-exact.
	workers := l.Opts.workers()
	queries := make([]*world.Query, par.Workers(workers))
	for i := range queries {
		queries[i] = env.Game.Scene.NewQuery()
	}
	var best *Fig3Result
	bestGap := math.Inf(-1)
	results := make([]trialResult, trials)
	for chunk := 0; chunk < trials; chunk += workers {
		end := chunk + workers
		if end > trials {
			end = trials
		}
		par.ForWorker(workers, end-chunk, func(worker, i int) {
			results[chunk+i] = eval(queries[worker], locs[chunk+i])
		})
		stop := false
		for t := chunk; t < end; t++ {
			res := results[t]
			if !res.ok {
				continue
			}
			// Pick the pair that best exhibits the effect: a large jump in
			// similarity once near objects are removed.
			if gap := res.sf - res.sw; gap > bestGap {
				bestGap = gap
				p2 := geom.V2(res.p1.X+step, res.p1.Z)
				best = &Fig3Result{WholeSSIM: res.sw, FarSSIM: res.sf, Cutoff: res.cutoff, Dist: res.p1.Dist(p2)}
			}
			if best != nil && best.WholeSSIM < 0.8 && best.FarSSIM > ssim.GoodThreshold {
				stop = true
				break
			}
		}
		if stop {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("eval: no near-object example found")
	}
	return best, nil
}

// PrintFig3 renders the result.
func PrintFig3(w io.Writer, r *Fig3Result) {
	fprintf(w, "Figure 3: near-object effect on a Viking Village viewpoint pair (%.2f m apart)\n", r.Dist)
	fprintf(w, "whole-BE SSIM %.3f -> far-BE SSIM %.3f (cutoff %.1f m)\n", r.WholeSSIM, r.FarSSIM, r.Cutoff)
	fprintf(w, "paper: 0.67 -> 0.96 after removing objects near the viewpoints\n")
}

// Fig5Point is one (radius, SSIM) sample for one location.
type Fig5Point struct {
	Radius float64
	SSIM   [4]float64 // one per sampled location
}

// Fig5 sweeps the cutoff radius at four random Viking Village locations
// and reports adjacent far-BE SSIM. Paper: SSIM rises quickly and
// monotonically from 0.63-0.83 at radius 0 to above 0.9 by ~4 m.
func (l *Lab) Fig5() ([]Fig5Point, error) {
	env, err := l.Env("viking")
	if err != nil {
		return nil, err
	}
	r := render.New(env.Game.Scene, l.Opts.itemRenderConfig())
	rng := rand.New(rand.NewSource(l.Opts.Seed + 5))
	q := env.Game.Scene.NewQuery()

	// Four random locations with nearby geometry (sequential: each accepted
	// location consumes a data-dependent number of rng draws).
	b := env.Game.Scene.Bounds
	var locs [4]geom.Vec2
	for i := 0; i < 4; {
		p := geom.V2(b.MinX+rng.Float64()*b.Width(), b.MinZ+rng.Float64()*b.Depth())
		if n := env.Game.Scene.ObjectsWithin(q, nil, p, 5); len(n) > 0 {
			locs[i] = p
			i++
		}
	}
	radii := []float64{0, 1, 2, 4, 8, 14, 22}
	if l.Opts.Quick {
		radii = []float64{0, 2, 8, 18}
	}
	// The sweep grid (radius x location) is embarrassingly parallel.
	points := make([]Fig5Point, len(radii))
	for ri, rad := range radii {
		points[ri].Radius = rad
	}
	step := l.Opts.adjacentStep(env.Game.Scene.Grid.Step)
	err = par.ForErr(l.Opts.workers(), len(radii)*len(locs), func(idx int) error {
		ri, li := idx/len(locs), idx%len(locs)
		rad := radii[ri]
		p1 := locs[li]
		p2 := geom.V2(p1.X+step, p1.Z)
		f1 := r.Panorama(env.Game.Scene.EyeAt(p1), rad, math.Inf(1), nil)
		f2 := r.Panorama(env.Game.Scene.EyeAt(p2), rad, math.Inf(1), nil)
		s, err := ssim.Mean(f1, f2)
		if err != nil {
			return err
		}
		points[ri].SSIM[li] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// PrintFig5 renders the sweep.
func PrintFig5(w io.Writer, pts []Fig5Point) {
	fprintf(w, "Figure 5: adjacent far-BE SSIM vs cutoff radius (4 Viking locations)\n")
	fprintf(w, "%-8s %8s %8s %8s %8s\n", "radius", "loc1", "loc2", "loc3", "loc4")
	for _, p := range pts {
		fprintf(w, "%-8.1f %8.3f %8.3f %8.3f %8.3f\n", p.Radius, p.SSIM[0], p.SSIM[1], p.SSIM[2], p.SSIM[3])
	}
	fprintf(w, "paper: 0.63-0.83 at radius 0, above 0.9 by ~4 m, monotone\n")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
