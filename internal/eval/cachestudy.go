package eval

import (
	"io"

	"coterie/internal/cache"
	"coterie/internal/core"
	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/trace"
)

// Table5Row is the cache hit ratio of one Table 4 version at one player
// count (the §4.6 caching study on Viking Village).
type Table5Row struct {
	Version string
	Hit     [4]float64 // player counts 1-4
}

// paperTable5 are the published Viking Village hit ratios.
var paperTable5 = []Table5Row{
	{Version: "V1 (intra exact)", Hit: [4]float64{0, 0, 0, 0}},
	{Version: "V2 (inter exact)", Hit: [4]float64{0, 0, 0, 0}},
	{Version: "V3 (intra similar)", Hit: [4]float64{0.808, 0.808, 0.808, 0.808}},
	{Version: "V4 (inter similar)", Hit: [4]float64{0, 0.639, 0.672, 0.654}},
	{Version: "V5 (both similar)", Hit: [4]float64{0.808, 0.804, 0.804, 0.877}},
}

// Table5 replays party movement traces against an infinite frame cache
// under the five lookup configurations of Table 4, assuming every server
// reply is overheard and cached by all players (the paper's §4.6
// emulation; no frames are rendered — the outcome depends only on frame
// locations). The paper's findings to reproduce: exact matching yields no
// hits; intra-player similar matching alone reaches ~80%; adding
// inter-player frames on top adds almost nothing.
func (l *Lab) Table5(game string) ([]Table5Row, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	seconds := 120.0
	if l.Opts.Quick {
		seconds = 20
	}
	grid := env.Game.Scene.Grid

	cfgs := make([]cache.Config, 5)
	for v := 1; v <= 5; v++ {
		cfg, err := cache.Version(v)
		if err != nil {
			return nil, err
		}
		cfgs[v-1] = cfg
	}
	rows := make([]Table5Row, 5)
	for i := range rows {
		rows[i].Version = paperTable5[i].Version
	}

	// Each (version, players) replay is self-contained: it generates its own
	// party trace from a fixed seed and mutates only its own caches, so the
	// 20-cell grid fans out across workers. MetaFor closures memoize through
	// a shared map, so each worker gets its own.
	workers := l.Opts.workers()
	metas := make([]func(geom.GridPoint) (int, uint64, float64), workers)
	for i := range metas {
		metas[i] = env.MetaFor()
	}
	par.ForWorker(workers, 5*4, func(worker, idx int) {
		vi, players := idx/4, idx%4+1
		meta := metas[worker]
		party := trace.GenerateParty(env.Game, players, seconds, l.Opts.Seed+11)
		caches := make([]*cache.Cache, players)
		for i := range caches {
			caches[i] = cache.New(cfgs[vi]) // infinite capacity
		}
		// Lock-step replay: each tick, every player requests the far
		// BE frame for its current grid point; on a miss the reply is
		// overheard and inserted into every player's cache.
		var lastPt = make([]geom.GridPoint, players)
		for i := range lastPt {
			lastPt[i] = geom.GridPoint{I: -1, J: -1}
		}
		for tick := 0; tick < party[0].Len(); tick++ {
			for p := 0; p < players; p++ {
				pt := grid.Snap(party[p].Pos[tick])
				if pt == lastPt[p] {
					continue // no new frame needed while stationary
				}
				lastPt[p] = pt
				leaf, sig, thresh := meta(pt)
				req := cache.Request{
					Point: pt, Pos: grid.Pos(pt),
					LeafID: leaf, NearSig: sig,
					DistThresh: thresh, Player: p,
				}
				if _, ok := caches[p].Lookup(req); ok {
					continue
				}
				// Miss: prefetch from the server; all players cache
				// the overheard reply.
				e := cache.Entry{
					Point: pt, Pos: req.Pos,
					LeafID: leaf, NearSig: sig,
					Size: 1, Owner: p,
				}
				for _, c := range caches {
					c.Insert(e)
				}
			}
		}
		var hit float64
		for _, c := range caches {
			hit += c.Stats().HitRatio()
		}
		rows[vi].Hit[players-1] = hit / float64(players)
	})
	return rows, nil
}

// PrintTable5 renders measured vs paper.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5: Viking Village cache hit ratio by version and player count (measured | paper)\n")
	fprintf(w, "%-20s %14s %14s %14s %14s\n", "version", "1P", "2P", "3P", "4P")
	for i, r := range rows {
		p := paperTable5[i]
		fprintf(w, "%-20s", r.Version)
		for c := 0; c < 4; c++ {
			fprintf(w, " %5.1f%%|%5.1f%%", r.Hit[c]*100, p.Hit[c]*100)
		}
		fprintf(w, "\n")
	}
}

// Table6Row is a game's average Coterie cache hit ratio (Table 6).
type Table6Row struct {
	Game     string
	HitRatio float64
	// PrefetchReduction is 1/(1-hit): the reduced prefetch frequency.
	PrefetchReduction float64
	Paper             float64
}

// paperTable6 are the published averages.
var paperTable6 = map[string]float64{"viking": 0.808, "racing": 0.823, "cts": 0.884}

// Table6 measures the average cache hit ratio across players in 4-player
// Coterie sessions for the three headline games. Paper: 80.8%, 82.3% and
// 88.4%, i.e. 5.2x-8.6x fewer prefetches.
func (l *Lab) Table6() ([]Table6Row, error) {
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	jobs := make([]sessionJob, len(headlineNames))
	for i, name := range headlineNames {
		jobs[i] = sessionJob{game: name, cfg: coreConfig{system: core.Coterie, players: 4, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table6Row, len(headlineNames))
	for i, name := range headlineNames {
		h := results[i].Mean.CacheHitRatio
		red := 0.0
		if h < 1 {
			red = 1 / (1 - h)
		}
		rows[i] = Table6Row{Game: name, HitRatio: h, PrefetchReduction: red, Paper: paperTable6[name]}
	}
	return rows, nil
}

// PrintTable6 renders measured vs paper.
func PrintTable6(w io.Writer, rows []Table6Row) {
	fprintf(w, "Table 6: average Coterie cache hit ratio (4 players)\n")
	fprintf(w, "%-10s %12s %10s %16s\n", "game", "measured", "paper", "prefetch cut")
	for _, r := range rows {
		fprintf(w, "%-10s %11.1f%% %9.1f%% %15.1fx\n", r.Game, r.HitRatio*100, r.Paper*100, r.PrefetchReduction)
	}
	fprintf(w, "paper: 5.2x-8.6x reduced prefetch frequency\n")
}
