package eval

import (
	"io"
	"math"

	"coterie/internal/render"
	"coterie/internal/ssim"
	"coterie/internal/trace"
)

// Table10Result is the modelled user-study score distribution (Table 10).
type Table10Result struct {
	// Percent[s-1] is the fraction of transitions scored s in 1..5.
	Percent [5]float64
	// MeanScore is the average opinion score.
	MeanScore float64
	// Events is the number of frame-switch events scored.
	Events int
}

// paperTable10 is the published distribution (score 1..5).
var paperTable10 = [5]float64{0, 0, 0.055, 0.292, 0.653}

// Table10 models the IRB user study: participants watched 20 s replays
// under Multi-Furion and Coterie and graded the visible difference from 1
// (very annoying) to 5 (imperceptible). The only artefact Coterie adds is
// the discontinuity when the displayed far-BE frame switches from one
// cached source frame to another; we substitute the human grader with a
// standard objective mapping from the SSIM of the frame pair across each
// switch to the 5-point impairment scale (higher similarity = less
// perceptible). The mapping is documented in DESIGN.md; the paper-level
// claim to preserve is that the vast majority of transitions are graded 4
// or 5.
func (l *Lab) Table10() (*Table10Result, error) {
	res := &Table10Result{}
	perGame := 10
	if l.Opts.Quick {
		perGame = 4
	}
	for _, name := range headlineNames {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		r := render.New(env.Game.Scene, l.Opts.renderConfig())
		tr := trace.Generate(env.Game, 20, l.Opts.Seed+10)
		meta := env.MetaFor()
		grid := env.Game.Scene.Grid

		// Walk the replay; at each point where the cache would switch to
		// a new far-BE source frame (leaving the distance threshold or
		// the near set changing), score the transition: SSIM between the
		// far frame rendered at the old source and at the new one, both
		// as seen from the current viewpoint's leaf radius.
		lastSrc := tr.Pos[0]
		lastPt := grid.Snap(tr.Pos[0])
		lastLeaf, lastSig, _ := meta(lastPt)
		scored := 0
		for i := 1; i < tr.Len() && scored < perGame; i++ {
			pt := grid.Snap(tr.Pos[i])
			if pt == lastPt {
				continue
			}
			lastPt = pt
			leaf, sig, thresh := meta(pt)
			switched := leaf != lastLeaf || sig != lastSig || tr.Pos[i].Dist(lastSrc) > thresh
			lastLeaf, lastSig = leaf, sig
			if !switched {
				continue
			}
			radius := env.Map.RadiusAt(tr.Pos[i])
			if radius <= 0 {
				continue
			}
			oldFrame := r.Panorama(env.Game.Scene.EyeAt(lastSrc), radius, math.Inf(1), nil)
			newFrame := r.Panorama(env.Game.Scene.EyeAt(tr.Pos[i]), radius, math.Inf(1), nil)
			lastSrc = tr.Pos[i]
			s, err := ssim.Mean(oldFrame, newFrame)
			if err != nil {
				continue
			}
			res.Percent[scoreFor(s)-1]++
			res.Events++
			scored++
		}
	}
	if res.Events == 0 {
		return res, nil
	}
	for i := range res.Percent {
		res.Percent[i] /= float64(res.Events)
		res.MeanScore += float64(i+1) * res.Percent[i]
	}
	return res, nil
}

// scoreFor maps the SSIM across a frame switch to the 5-point impairment
// scale: an imperceptible switch keeps SSIM near 1; the paper's
// good-quality bar (0.9) anchors "slightly annoying".
func scoreFor(s float64) int {
	switch {
	case s >= 0.97:
		return 5 // imperceptible
	case s >= 0.93:
		return 4 // perceptible but not annoying
	case s >= ssim.GoodThreshold:
		return 3 // slightly annoying
	case s >= 0.80:
		return 2 // annoying
	default:
		return 1 // very annoying
	}
}

// PrintTable10 renders the distribution.
func PrintTable10(w io.Writer, r *Table10Result) {
	fprintf(w, "Table 10: modelled user-study score distribution over %d frame switches\n", r.Events)
	fprintf(w, "%-10s %8s %8s %8s %8s %8s\n", "", "1", "2", "3", "4", "5")
	fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "measured",
		r.Percent[0]*100, r.Percent[1]*100, r.Percent[2]*100, r.Percent[3]*100, r.Percent[4]*100)
	fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "paper",
		paperTable10[0]*100, paperTable10[1]*100, paperTable10[2]*100, paperTable10[3]*100, paperTable10[4]*100)
	fprintf(w, "mean score %.2f (paper 4.5-4.75)\n", r.MeanScore)
}
