package eval

import (
	"bytes"

	"coterie/internal/core"
	"math"
	"sync"
	"testing"
)

// A single quick-mode lab shared by all tests; environments are prepared
// once per game.
var (
	labOnce sync.Once
	testLab *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		opts := DefaultOptions()
		opts.Quick = true
		testLab = NewLab(opts)
	})
	return testLab
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{0.5, 0.95, 0.92, 0.3}, 0.9)
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.FracAbove != 0.5 {
		t.Fatalf("FracAbove = %v", s.FracAbove)
	}
	if s.P25 != 0.3 || s.P75 != 0.92 {
		t.Fatalf("quartiles %v %v", s.P25, s.P75)
	}
	if z := summarize(nil, 0.9); z.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestScoreForMapping(t *testing.T) {
	cases := []struct {
		ssim float64
		want int
	}{
		{0.99, 5}, {0.97, 5}, {0.95, 4}, {0.91, 3}, {0.85, 2}, {0.5, 1},
	}
	for _, c := range cases {
		if got := scoreFor(c.ssim); got != c.want {
			t.Errorf("scoreFor(%v) = %d, want %d", c.ssim, got, c.want)
		}
	}
}

func TestAdjacentStepScaling(t *testing.T) {
	o := Options{RenderW: 256, RenderH: 128}
	got := o.adjacentStep(1.0 / 32)
	want := (1.0 / 32) * 3840 / 256
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("adjacentStep = %v, want %v", got, want)
	}
}

func TestLabEnvCached(t *testing.T) {
	l := quickLab(t)
	a, err := l.Env("pool")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Env("pool")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("environment not cached")
	}
	if _, err := l.Env("nosuch"); err == nil {
		t.Fatal("unknown game accepted")
	}
}

func TestTable5ReproducesCachingStudyShape(t *testing.T) {
	// The §4.6 findings on Viking Village: exact matching (V1, V2) gets
	// (almost) no hits; V3 alone reaches a high ratio; V5 adds little on
	// top of V3.
	l := quickLab(t)
	rows, err := l.Table5("viking")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d versions", len(rows))
	}
	v1, v2, v3, v4, v5 := rows[0], rows[1], rows[2], rows[3], rows[4]
	for p := 0; p < 4; p++ {
		// The paper measures exactly 0% for V1/V2; our synthetic
		// followers occasionally cross the leader's trail on the 3 cm
		// grid, so allow a small residue. The conclusion (exact matching
		// yields no real benefit) is unchanged.
		if v1.Hit[p] > 0.05 || v2.Hit[p] > 0.12 {
			t.Fatalf("exact matching should get ~0%% hits: V1 %v V2 %v", v1.Hit, v2.Hit)
		}
	}
	if v3.Hit[0] < 0.5 {
		t.Fatalf("V3 1P hit = %.2f, want high", v3.Hit[0])
	}
	if v4.Hit[0] > 0.05 {
		t.Fatalf("V4 with one player should have no hits, got %.2f", v4.Hit[0])
	}
	if v4.Hit[1] < 0.1 {
		t.Fatalf("V4 2P should see inter-player hits, got %.2f", v4.Hit[1])
	}
	// V5 adds little over V3 (within a few points).
	for p := 1; p < 4; p++ {
		if v5.Hit[p] < v3.Hit[p]-0.05 {
			t.Fatalf("V5 (%v) should not trail V3 (%v)", v5.Hit, v3.Hit)
		}
		if v5.Hit[p]-v3.Hit[p] > 0.15 {
			t.Fatalf("V5 (%v) should add little over V3 (%v)", v5.Hit, v3.Hit)
		}
	}
}

func TestFig3ShowsNearObjectEffect(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.FarSSIM <= r.WholeSSIM {
		t.Fatalf("decoupling should raise similarity: %.3f -> %.3f", r.WholeSSIM, r.FarSSIM)
	}
	if r.FarSSIM < 0.85 {
		t.Fatalf("far-BE SSIM %.3f too low for the worked example", r.FarSSIM)
	}
	var buf bytes.Buffer
	PrintFig3(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}

func TestFig5Monotone(t *testing.T) {
	l := quickLab(t)
	pts, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("%d radius samples", len(pts))
	}
	// Endpoints: similarity at the largest radius clearly exceeds radius 0
	// for every location.
	first, last := pts[0], pts[len(pts)-1]
	for i := 0; i < 4; i++ {
		if last.SSIM[i] <= first.SSIM[i] {
			t.Fatalf("loc %d: SSIM did not rise with cutoff (%.3f -> %.3f)", i, first.SSIM[i], last.SSIM[i])
		}
	}
}

func TestLookupAblationFindsUnsafeHits(t *testing.T) {
	l := quickLab(t)
	r, err := l.LookupAblation("viking")
	if err != nil {
		t.Fatal(err)
	}
	if r.FullHit <= 0 {
		t.Fatal("full-criteria replay produced no hits")
	}
	if r.NoSigUnsafe <= 0 {
		t.Fatal("dropping the near-set criterion should create unsafe hits")
	}
}

func TestCutoffAblation(t *testing.T) {
	l := quickLab(t)
	r, err := l.CutoffAblation("viking")
	if err != nil {
		t.Fatal(err)
	}
	if r.GlobalRadius >= r.AdaptiveMeanRadius {
		t.Fatalf("global worst-case radius (%.1f) should be below the adaptive mean (%.1f)",
			r.GlobalRadius, r.AdaptiveMeanRadius)
	}
	if r.GlobalHit >= r.AdaptiveHit {
		t.Fatalf("adaptive cutoff should beat the global radius: %.2f vs %.2f",
			r.AdaptiveHit, r.GlobalHit)
	}
}

func TestPrintersAcceptNilWriter(t *testing.T) {
	// fprintf swallows nil writers so printers can be no-ops.
	fprintf(nil, "nothing %d", 1)
}

func TestOverhearAblation(t *testing.T) {
	l := quickLab(t)
	r, err := l.OverhearAblation("viking")
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseHit <= 0.3 {
		t.Fatalf("base hit ratio %.2f implausible", r.BaseHit)
	}
	// Overhearing can only add cache contents, so it must not hurt. (Our
	// trail-following movement model makes it help somewhat more than the
	// paper's real traces did — see EXPERIMENTS.md.)
	if r.OverhearHit < r.BaseHit-0.03 {
		t.Fatalf("overhearing reduced hits: %.2f -> %.2f", r.BaseHit, r.OverhearHit)
	}
}

func TestVisualQualityOrdering(t *testing.T) {
	// The Table 7 mechanism: Coterie's frames beat the full-codec systems
	// because near BE and FI never pass through the encoder.
	l := quickLab(t)
	env, err := l.Env("fps")
	if err != nil {
		t.Fatal(err)
	}
	q, err := visualQuality(env, l.Opts)
	if err != nil {
		t.Fatal(err)
	}
	coterie := q[core.Coterie]
	full := q[core.ThinClient]
	if coterie <= full {
		t.Fatalf("Coterie SSIM %.3f should beat full-codec %.3f", coterie, full)
	}
	if coterie < 0.85 {
		t.Fatalf("Coterie SSIM %.3f implausibly low", coterie)
	}
	if q[core.MultiFurion] != full {
		t.Fatalf("Multi-Furion quality should track Thin-client's: %.3f vs %.3f",
			q[core.MultiFurion], full)
	}
}
