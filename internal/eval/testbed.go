package eval

import (
	"io"

	"coterie/internal/core"
	"coterie/internal/par"
)

// coreConfig is the shared session shape used by testbed experiments.
type coreConfig struct {
	system  core.SystemKind
	players int
	seconds float64
	seed    int64
}

func coreRun(env *core.Env, c coreConfig) (*core.Result, error) {
	return core.RunSession(env, core.SessionConfig{
		System:  c.system,
		Players: c.players,
		Seconds: c.seconds,
		Seed:    c.seed,
	})
}

// sessionJob is one independent testbed session in a generator's work list.
// Sessions are self-contained (each builds its own simulator, Wi-Fi model
// and traces over the read-only Env), so a generator enumerates its
// (game, system, players) grid into jobs and fans them out.
type sessionJob struct {
	game string
	cfg  coreConfig
}

// runSessions executes the jobs across the lab's workers and returns the
// results in job order. Environments must already be prepared (PrepareEnvs).
func (l *Lab) runSessions(jobs []sessionJob) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	err := par.ForErr(l.Opts.workers(), len(jobs), func(i int) error {
		env, err := l.Env(jobs[i].game)
		if err != nil {
			return err
		}
		res, err := coreRun(env, jobs[i].cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Table1Row is one (game, system, players) row of the §3 scaling study.
type Table1Row struct {
	Game    string
	System  core.SystemKind
	Players int
	M       core.PlayerMetrics
}

// Table1 reproduces the scaling experiment of §3: Mobile, Thin-client and
// Multi-Furion with 1 and 2 players on the three headline games. Findings
// to reproduce: Mobile is player-count independent at ~24-27 FPS;
// Thin-client's network latency roughly doubles with the second player;
// Multi-Furion reaches 60 FPS for one player and loses it at two.
func (l *Lab) Table1() ([]Table1Row, error) {
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	var jobs []sessionJob
	var rows []Table1Row
	for _, sys := range []core.SystemKind{core.Mobile, core.ThinClient, core.MultiFurion} {
		for _, name := range headlineNames {
			for _, players := range []int{1, 2} {
				jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: sys, players: players, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
				rows = append(rows, Table1Row{Game: name, System: sys, Players: players})
			}
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i].M = res.Mean
	}
	return rows, nil
}

// PrintTable1 renders the rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1: Mobile / Thin-client / Multi-Furion scaling (1P, 2P)\n")
	fprintf(w, "%-20s %-8s %4s %6s %10s %8s %8s %10s %9s\n",
		"system", "game", "P", "FPS", "inter(ms)", "CPU%", "GPU%", "frame(KB)", "net(ms)")
	for _, r := range rows {
		fprintf(w, "%-20s %-8s %4d %6.1f %10.1f %8.1f %8.1f %10.0f %9.1f\n",
			r.System, r.Game, r.Players, r.M.FPS, r.M.InterFrameMs, r.M.CPUPct, r.M.GPUPct, r.M.FrameKB, r.M.NetDelayMs)
	}
	fprintf(w, "paper: Mobile 24-27 FPS either way; Multi-Furion 60 FPS at 1P and 42-48 at 2P with ~2x net delay\n")
}

// Table7Row compares visual quality, FPS and responsiveness of
// Thin-client, Multi-Furion and Coterie at 2 players.
type Table7Row struct {
	Game             string
	System           core.SystemKind
	SSIM             float64
	FPS              float64
	ResponsivenessMs float64
}

// Table7 reproduces the QoE comparison: Coterie achieves SSIM above 0.93
// (better than the others, because FI and near BE skip the codec), 60 FPS
// and responsiveness under 16 ms.
func (l *Lab) Table7() ([]Table7Row, error) {
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	systems := []core.SystemKind{core.ThinClient, core.MultiFurion, core.Coterie}
	var jobs []sessionJob
	for _, name := range headlineNames {
		for _, sys := range systems {
			jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: sys, players: 2, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
		}
	}
	// The quality runs fan their own samples out internally, so the games
	// loop stays sequential here while runSessions handles the session grid.
	qualities := make([]map[core.SystemKind]float64, len(headlineNames))
	for gi, name := range headlineNames {
		env, err := l.Env(name)
		if err != nil {
			return nil, err
		}
		qualities[gi], err = visualQuality(env, l.Opts)
		if err != nil {
			return nil, err
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Table7Row
	for gi, name := range headlineNames {
		for si, sys := range systems {
			res := results[gi*len(systems)+si]
			rows = append(rows, Table7Row{
				Game:             name,
				System:           sys,
				SSIM:             qualities[gi][sys],
				FPS:              res.Mean.FPS,
				ResponsivenessMs: res.Mean.ResponsivenessMs,
			})
		}
	}
	return rows, nil
}

// PrintTable7 renders the rows.
func PrintTable7(w io.Writer, rows []Table7Row) {
	fprintf(w, "Table 7: visual quality, FPS and responsiveness (2 players)\n")
	fprintf(w, "%-8s %-20s %8s %6s %10s\n", "game", "system", "SSIM", "FPS", "resp(ms)")
	for _, r := range rows {
		fprintf(w, "%-8s %-20s %8.3f %6.1f %10.1f\n", r.Game, r.System, r.SSIM, r.FPS, r.ResponsivenessMs)
	}
	fprintf(w, "paper: Coterie 0.937-0.979 SSIM, 60 FPS, 15.6-15.9 ms; others lower quality and FPS\n")
}

// Fig11Row is the FPS of one system at one player count for one game.
type Fig11Row struct {
	Game   string
	System core.SystemKind
	FPS    [4]float64 // players 1-4
}

// Fig11 reproduces the scalability figure: Multi-Furion with and without
// an exact-match cache degrade together toward ~24 FPS at 4 players;
// Coterie without cache degrades more slowly (smaller far-BE frames);
// full Coterie holds 60 FPS.
func (l *Lab) Fig11() ([]Fig11Row, error) {
	systems := []core.SystemKind{core.MultiFurion, core.MultiFurionCache, core.CoterieNoCache, core.Coterie}
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	var jobs []sessionJob
	var rows []Fig11Row
	for _, name := range headlineNames {
		for _, sys := range systems {
			rows = append(rows, Fig11Row{Game: name, System: sys})
			for players := 1; players <= 4; players++ {
				jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: sys, players: players, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
			}
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i/4].FPS[i%4] = res.Mean.FPS
	}
	return rows, nil
}

// PrintFig11 renders the curves.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fprintf(w, "Figure 11: FPS vs number of players\n")
	fprintf(w, "%-8s %-20s %6s %6s %6s %6s\n", "game", "system", "1P", "2P", "3P", "4P")
	for _, r := range rows {
		fprintf(w, "%-8s %-20s %6.1f %6.1f %6.1f %6.1f\n",
			r.Game, r.System, r.FPS[0], r.FPS[1], r.FPS[2], r.FPS[3])
	}
	fprintf(w, "paper: Multi-Furion (+/- cache) fall to ~24 FPS at 4P; Coterie holds 60 FPS\n")
}

// Table8Row is Coterie's full per-player metrics at 1 and 2 players.
type Table8Row struct {
	Game    string
	Players int
	M       core.PlayerMetrics
}

// Table8 reports Coterie's performance and resource usage. Paper: 60 FPS,
// ~16 ms inter-frame, 27-32% CPU, 39-57% GPU, 150-280 KB frames, <9 ms
// transfer delay.
func (l *Lab) Table8() ([]Table8Row, error) {
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	var jobs []sessionJob
	var rows []Table8Row
	for _, name := range headlineNames {
		for _, players := range []int{1, 2} {
			jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: core.Coterie, players: players, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
			rows = append(rows, Table8Row{Game: name, Players: players})
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i].M = res.Mean
	}
	return rows, nil
}

// PrintTable8 renders the rows.
func PrintTable8(w io.Writer, rows []Table8Row) {
	fprintf(w, "Table 8: Coterie on the simulated Pixel 2 testbed\n")
	fprintf(w, "%-8s %4s %6s %10s %8s %8s %10s %9s\n",
		"game", "P", "FPS", "inter(ms)", "CPU%", "GPU%", "frame(KB)", "net(ms)")
	for _, r := range rows {
		fprintf(w, "%-8s %4d %6.1f %10.1f %8.1f %8.1f %10.0f %9.1f\n",
			r.Game, r.Players, r.M.FPS, r.M.InterFrameMs, r.M.CPUPct, r.M.GPUPct, r.M.FrameKB, r.M.NetDelayMs)
	}
	fprintf(w, "paper: 60 FPS, 16.0-16.6 ms, 27-32%% CPU, 39-57%% GPU, 150-280 KB, <9 ms net delay\n")
}

// Table9Row is one game's network bandwidth usage.
type Table9Row struct {
	Game string
	// FurionBEMbps is Multi-Furion's per-player BE bandwidth at 1 player
	// (more players saturate the medium, as in the paper).
	FurionBEMbps float64
	// CoterieBEMbps is the per-player BE bandwidth at 1-4 players.
	CoterieBEMbps [4]float64
	// CoterieFIKbps is the total FI traffic at 1-4 players.
	CoterieFIKbps [4]float64
	// Reduction is Furion / Coterie per-player BE at 1 player.
	Reduction float64
}

// Table9 measures server bandwidth: Coterie cuts per-player network load
// by an order of magnitude versus Multi-Furion, while FI traffic stays 2-4
// orders of magnitude below BE traffic. Paper: 10.6x-25.7x reduction.
func (l *Lab) Table9() ([]Table9Row, error) {
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	// Per game: one Multi-Furion session followed by Coterie at 1-4 players.
	const perGame = 5
	var jobs []sessionJob
	for _, name := range headlineNames {
		jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: core.MultiFurion, players: 1, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
		for players := 1; players <= 4; players++ {
			jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: core.Coterie, players: players, seconds: l.Opts.sessionSeconds(), seed: l.Opts.Seed}})
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Table9Row
	for gi, name := range headlineNames {
		base := gi * perGame
		row := Table9Row{Game: name, FurionBEMbps: results[base].Mean.BEMbps}
		for players := 1; players <= 4; players++ {
			res := results[base+players]
			row.CoterieBEMbps[players-1] = res.Mean.BEMbps
			row.CoterieFIKbps[players-1] = res.FIKbps
		}
		if row.CoterieBEMbps[0] > 0 {
			row.Reduction = row.FurionBEMbps / row.CoterieBEMbps[0]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable9 renders the rows.
func PrintTable9(w io.Writer, rows []Table9Row) {
	fprintf(w, "Table 9: per-player BE bandwidth (Mbps) and total FI traffic (Kbps)\n")
	fprintf(w, "%-8s %12s %28s %28s %10s\n", "game", "Furion 1P", "Coterie BE 1P/2P/3P/4P", "Coterie FI 1P/2P/3P/4P", "reduction")
	for _, r := range rows {
		fprintf(w, "%-8s %12.0f %7.0f%7.0f%7.0f%7.0f %7.0f%7.0f%7.0f%7.0f %9.1fx\n",
			r.Game, r.FurionBEMbps,
			r.CoterieBEMbps[0], r.CoterieBEMbps[1], r.CoterieBEMbps[2], r.CoterieBEMbps[3],
			r.CoterieFIKbps[0], r.CoterieFIKbps[1], r.CoterieFIKbps[2], r.CoterieFIKbps[3],
			r.Reduction)
	}
	fprintf(w, "paper: Furion 264-283 Mbps/player; Coterie 11-26 Mbps at 1P; reduction 10.6x-25.7x\n")
}

// Fig12Row summarises a 30-minute Coterie run's resource trajectory.
type Fig12Row struct {
	Game      string
	Players   int
	AvgCPUPct float64
	AvgGPUPct float64
	AvgPowerW float64
	EndTempC  float64
	MaxTempC  float64
	// FlatCPU reports whether CPU load stayed flat over the run (max
	// second-bucket within 15 points of the mean).
	FlatCPU bool
	// BatteryHours extrapolates runtime at the observed power draw.
	BatteryHours float64
	// Series is player 0's per-second resource trace (CPU/GPU/power/
	// temperature over time, the actual curves of Fig 12).
	Series []core.SeriesPoint
}

// Fig12 runs long Coterie sessions at 1-4 players and reports resource
// stability. Paper: CPU <= 40%, GPU <= 65%, steady over 30 minutes,
// temperature under the 52 C limit, ~4 W, > 2.5 h battery life.
func (l *Lab) Fig12() ([]Fig12Row, error) {
	seconds := 30.0 * 60
	if l.Opts.Quick {
		seconds = 60
	}
	if err := l.PrepareEnvs(headlineNames); err != nil {
		return nil, err
	}
	var jobs []sessionJob
	for _, name := range headlineNames {
		for _, players := range []int{1, 4} {
			jobs = append(jobs, sessionJob{game: name, cfg: coreConfig{system: core.Coterie, players: players, seconds: seconds, seed: l.Opts.Seed}})
		}
	}
	results, err := l.runSessions(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for i, job := range jobs {
		env, err := l.Env(job.game)
		if err != nil {
			return nil, err
		}
		res := results[i]
		row := Fig12Row{
			Game: job.game, Players: job.cfg.players,
			AvgCPUPct: res.Mean.CPUPct,
			AvgGPUPct: res.Mean.GPUPct,
			AvgPowerW: res.Mean.PowerW,
			EndTempC:  res.Mean.TempC,
			FlatCPU:   true,
			Series:    res.Series,
		}
		for _, s := range res.Series {
			if s.TempC > row.MaxTempC {
				row.MaxTempC = s.TempC
			}
			if s.CPUPct > res.Mean.CPUPct+15 || s.CPUPct < res.Mean.CPUPct-15 {
				row.FlatCPU = false
			}
		}
		row.BatteryHours = env.Device.BatteryHours(row.AvgPowerW)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig12 renders the rows.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fprintf(w, "Figure 12: Coterie resource usage over a long run\n")
	fprintf(w, "%-8s %3s %8s %8s %8s %9s %9s %6s %9s\n",
		"game", "P", "CPU%", "GPU%", "power W", "temp end", "temp max", "flat", "battery h")
	for _, r := range rows {
		fprintf(w, "%-8s %3d %8.1f %8.1f %8.2f %9.1f %9.1f %6v %9.1f\n",
			r.Game, r.Players, r.AvgCPUPct, r.AvgGPUPct, r.AvgPowerW, r.EndTempC, r.MaxTempC, r.FlatCPU, r.BatteryHours)
	}
	fprintf(w, "paper: <=40%% CPU, <=65%% GPU, flat; temp under 52C; ~4W; >2.5h battery\n")
}
