package eval

import (
	"io"
	"math"

	"coterie/internal/cache"
	"coterie/internal/core"
	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/prefetch"
	"coterie/internal/trace"
)

// AblationReplacement compares the LRU and FLF replacement policies (§5.3)
// under a constrained cache. Paper: "both LRU and FLF work effectively as
// spatial locality and temporal locality coincide well in each player's
// movement".
type AblationReplacement struct {
	Game    string
	CacheMB int64
	LRUHit  float64
	FLFHit  float64
}

// ReplacementAblation runs Coterie sessions with a small cache under both
// policies.
func (l *Lab) ReplacementAblation(game string, cacheMB int64) (*AblationReplacement, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	// The two policy runs are independent sessions; run them concurrently.
	policies := []cache.Policy{cache.LRU, cache.FLF}
	hits := make([]float64, len(policies))
	err = par.ForErr(l.Opts.workers(), len(policies), func(i int) error {
		res, err := core.RunSession(env, core.SessionConfig{
			System:      core.Coterie,
			Players:     2,
			Seconds:     l.Opts.sessionSeconds(),
			Seed:        l.Opts.Seed,
			CachePolicy: policies[i],
			CacheBytes:  cacheMB << 20,
		})
		if err != nil {
			return err
		}
		hits[i] = res.Mean.CacheHitRatio
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationReplacement{Game: game, CacheMB: cacheMB, LRUHit: hits[0], FLFHit: hits[1]}, nil
}

// PrintReplacementAblation renders the comparison.
func PrintReplacementAblation(w io.Writer, r *AblationReplacement) {
	fprintf(w, "Ablation: cache replacement policy (%s, %d MB cache)\n", r.Game, r.CacheMB)
	fprintf(w, "LRU hit ratio %.1f%%, FLF hit ratio %.1f%%\n", r.LRUHit*100, r.FLFHit*100)
	fprintf(w, "paper: both work effectively (temporal and spatial locality coincide)\n")
}

// AblationCutoff compares the adaptive quadtree cutoff against a single
// global radius (§4.3's motivation: a global radius must be the worst-case
// one, wasting far-BE similarity everywhere else).
type AblationCutoff struct {
	Game string
	// AdaptiveMeanRadius is the trace-weighted mean cutoff radius under
	// the adaptive scheme.
	AdaptiveMeanRadius float64
	// GlobalRadius is the single radius that satisfies Constraint 1
	// everywhere (the minimum over leaf radii).
	GlobalRadius float64
	// AdaptiveHit and GlobalHit are Coterie cache hit ratios under each.
	AdaptiveHit float64
	GlobalHit   float64
}

// CutoffAblation measures what the adaptive scheme buys: the global
// worst-case radius shrinks far-BE similarity (smaller reuse thresholds)
// and with it the cache hit ratio.
func (l *Lab) CutoffAblation(game string) (*AblationCutoff, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	res := &AblationCutoff{Game: game}

	global := math.Inf(1)
	var ratioSum float64
	for _, r := range env.Map.Regions {
		if r.Radius < global {
			global = r.Radius
		}
		if r.Radius > 0 {
			ratioSum += r.DistThresh / r.Radius
		}
	}
	res.GlobalRadius = global
	ratio := ratioSum / float64(len(env.Map.Regions))

	tr := trace.Generate(env.Game, 60, l.Opts.Seed)
	var radSum float64
	for i := 0; i < tr.Len(); i += 30 {
		radSum += env.Map.RadiusAt(tr.Pos[i])
	}
	res.AdaptiveMeanRadius = radSum / float64((tr.Len()+29)/30)

	// Hit ratios from a replayed request stream: the reuse threshold
	// scales with the radius (the calibrated thresh/radius ratio), so the
	// global radius directly shrinks the reuse distance.
	meta := env.MetaFor()
	hit := func(radiusAt func(geom.Vec2) float64) float64 {
		cfg, _ := cache.Version(3)
		c := cache.New(cfg)
		grid := env.Game.Scene.Grid
		q := env.Game.Scene.NewQuery()
		last := geom.GridPoint{I: -1, J: -1}
		for i := 0; i < tr.Len(); i++ {
			pt := grid.Snap(tr.Pos[i])
			if pt == last {
				continue
			}
			last = pt
			pos := grid.Pos(pt)
			rad := radiusAt(pos)
			leaf, _, _ := meta(pt)
			sig := env.Game.Scene.NearSetSignature(q, pos, rad)
			req := cache.Request{
				Point: pt, Pos: pos, LeafID: leaf, NearSig: sig,
				DistThresh: ratio * rad,
			}
			if _, ok := c.Lookup(req); !ok {
				c.Insert(cache.Entry{Point: pt, Pos: pos, LeafID: leaf, NearSig: sig, Size: 1})
			}
		}
		return c.Stats().HitRatio()
	}
	res.AdaptiveHit = hit(func(p geom.Vec2) float64 { return env.Map.RadiusAt(p) })
	res.GlobalHit = hit(func(geom.Vec2) float64 { return global })
	return res, nil
}

// PrintCutoffAblation renders the comparison.
func PrintCutoffAblation(w io.Writer, r *AblationCutoff) {
	fprintf(w, "Ablation: adaptive vs global cutoff (%s)\n", r.Game)
	fprintf(w, "adaptive mean radius %.1f m (hit %.1f%%) vs global worst-case radius %.1f m (hit %.1f%%)\n",
		r.AdaptiveMeanRadius, r.AdaptiveHit*100, r.GlobalRadius, r.GlobalHit*100)
	fprintf(w, "paper: a single conservative radius wastes similarity in sparse regions (§4.3)\n")
}

// AblationLookup quantifies the three cache-lookup criteria (§5.3) by
// replaying a trace with each criterion disabled and counting unsafe hits
// — hits that would have merged incorrectly (wrong leaf region or wrong
// near-object set).
type AblationLookup struct {
	Game string
	// FullHit is the hit ratio with all three criteria.
	FullHit float64
	// NoLeafUnsafe / NoSigUnsafe are the fractions of lookups that become
	// unsafe hits when criterion 2 / criterion 3 is dropped.
	NoLeafUnsafe float64
	NoSigUnsafe  float64
}

// LookupAblation replays a single-player request stream three times.
func (l *Lab) LookupAblation(game string) (*AblationLookup, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	tr := trace.Generate(env.Game, 60, l.Opts.Seed+13)
	meta := env.MetaFor()
	grid := env.Game.Scene.Grid

	type probe struct {
		dropLeaf, dropSig bool
	}
	run := func(p probe) (hitRatio, unsafe float64) {
		cfg, _ := cache.Version(3)
		c := cache.New(cfg)
		last := geom.GridPoint{I: -1, J: -1}
		var lookups, unsafeHits, hits int
		for i := 0; i < tr.Len(); i++ {
			pt := grid.Snap(tr.Pos[i])
			if pt == last {
				continue
			}
			last = pt
			leaf, sig, thresh := meta(pt)
			reqLeaf, reqSig := leaf, sig
			if p.dropLeaf {
				reqLeaf = 0 // all entries stored with leaf 0: criterion off
			}
			if p.dropSig {
				reqSig = 0
			}
			req := cache.Request{
				Point: pt, Pos: grid.Pos(pt),
				LeafID: reqLeaf, NearSig: reqSig, DistThresh: thresh,
			}
			lookups++
			if e, ok := c.Lookup(req); ok {
				hits++
				// The hit is unsafe when the true metadata differs.
				trueLeaf, trueSig, _ := meta(e.Point)
				if trueLeaf != leaf || trueSig != sig {
					unsafeHits++
				}
				continue
			}
			c.Insert(cache.Entry{
				Point: pt, Pos: req.Pos,
				LeafID: reqLeaf, NearSig: reqSig, Size: 1,
			})
		}
		if lookups == 0 {
			return 0, 0
		}
		return float64(hits) / float64(lookups), float64(unsafeHits) / float64(lookups)
	}

	full, _ := run(probe{})
	_, noLeafUnsafe := run(probe{dropLeaf: true})
	_, noSigUnsafe := run(probe{dropSig: true})
	return &AblationLookup{
		Game:         game,
		FullHit:      full,
		NoLeafUnsafe: noLeafUnsafe,
		NoSigUnsafe:  noSigUnsafe,
	}, nil
}

// PrintLookupAblation renders the comparison.
func PrintLookupAblation(w io.Writer, r *AblationLookup) {
	fprintf(w, "Ablation: cache lookup criteria (%s)\n", r.Game)
	fprintf(w, "full criteria hit %.1f%%; dropping the leaf-region check yields %.1f%% unsafe hits;\n",
		r.FullHit*100, r.NoLeafUnsafe*100)
	fprintf(w, "dropping the near-set check yields %.1f%% unsafe hits (visible merge artefacts)\n",
		r.NoSigUnsafe*100)
}

// AblationOverhear quantifies the inter-player caching extension the paper
// evaluates and rejects (§4.6): with wireless overhearing, every server
// reply lands in every player's cache (cache Version 5). The finding to
// reproduce end to end: overhearing barely improves the hit ratio or the
// per-player bandwidth over the shipped intra-player design, because
// players rarely follow exactly the same path.
type AblationOverhear struct {
	Game          string
	Players       int
	BaseHit       float64
	OverhearHit   float64
	BaseBEMbps    float64
	OverhearBEMps float64
}

// OverhearAblation runs 4-player Coterie sessions with and without
// overhearing.
func (l *Lab) OverhearAblation(game string) (*AblationOverhear, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	// Base and overhearing sessions are independent; run them concurrently.
	results := make([]*core.Result, 2)
	err = par.ForErr(l.Opts.workers(), 2, func(i int) error {
		res, err := core.RunSession(env, core.SessionConfig{
			System:   core.Coterie,
			Players:  4,
			Seconds:  l.Opts.sessionSeconds(),
			Seed:     l.Opts.Seed,
			Overhear: i == 1,
		})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	base, over := results[0], results[1]
	return &AblationOverhear{
		Game:          game,
		Players:       4,
		BaseHit:       base.Mean.CacheHitRatio,
		OverhearHit:   over.Mean.CacheHitRatio,
		BaseBEMbps:    base.Mean.BEMbps,
		OverhearBEMps: over.Mean.BEMbps,
	}, nil
}

// PrintOverhearAblation renders the comparison.
func PrintOverhearAblation(w io.Writer, r *AblationOverhear) {
	fprintf(w, "Ablation: inter-player overhearing (%s, %d players)\n", r.Game, r.Players)
	fprintf(w, "shipped design: %.1f%% hits, %.1f Mbps/player; with overhearing: %.1f%% hits, %.1f Mbps/player\n",
		r.BaseHit*100, r.BaseBEMbps, r.OverhearHit*100, r.OverhearBEMps)
	fprintf(w, "paper: caching frames sent to other players adds no significant benefit (§4.6)\n")
}

// AblationPrefetch compares prefetch lookahead settings: Coterie's large
// reuse-window lookahead versus Furion's one-frame-ahead fetch (§5.2).
type AblationPrefetch struct {
	Game string
	// StallFrames is the fraction of frames whose display blocked on the
	// network, per lookahead (seconds).
	Lookahead []float64
	StallFree []float64 // achieved FPS per lookahead
}

// PrefetchAblation sweeps the lookahead in 4-player Coterie sessions.
func (l *Lab) PrefetchAblation(game string) (*AblationPrefetch, error) {
	env, err := l.Env(game)
	if err != nil {
		return nil, err
	}
	lookaheads := []float64{0.05, 0.2, 0.4, 0.8}
	fps := make([]float64, len(lookaheads))
	err = par.ForErr(l.Opts.workers(), len(lookaheads), func(i int) error {
		cfg := prefetch.DefaultConfig()
		cfg.LookaheadSec = lookaheads[i]
		r, err := core.RunSession(env, core.SessionConfig{
			System:   core.Coterie,
			Players:  4,
			Seconds:  l.Opts.sessionSeconds(),
			Seed:     l.Opts.Seed,
			Prefetch: cfg,
		})
		if err != nil {
			return err
		}
		fps[i] = r.Mean.FPS
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationPrefetch{Game: game, Lookahead: lookaheads, StallFree: fps}, nil
}

// PrintPrefetchAblation renders the sweep.
func PrintPrefetchAblation(w io.Writer, r *AblationPrefetch) {
	fprintf(w, "Ablation: prefetch lookahead (%s, 4 players)\n", r.Game)
	for i := range r.Lookahead {
		fprintf(w, "lookahead %.2fs -> %.1f FPS\n", r.Lookahead[i], r.StallFree[i])
	}
	fprintf(w, "paper: the cache's reuse window makes prefetch scheduling forgiving (§5.2)\n")
}
