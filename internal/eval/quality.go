package eval

import (
	"errors"
	"math"
	"math/rand"

	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/cutoff"
	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/render"
	"coterie/internal/ssim"
	"coterie/internal/trace"
)

// visualQuality renders real frames through each system's pipeline and
// scores them against a direct local render (the paper measures SSIM
// against frames generated directly on the client, §7.1):
//
//   - Thin-client: the whole frame passes through the encoder/decoder.
//   - Multi-Furion: the whole BE passes through the codec; only the small
//     FI overlay is rendered locally, so its quality tracks Thin-client's.
//   - Coterie: only the far BE passes through the codec, and the far frame
//     may additionally be a *reused* similar frame rendered from a nearby
//     viewpoint (sampled within the leaf's distance threshold); FI and
//     near BE are locally rendered and lossless.
//
// Coterie scores highest because the codec (and reuse distortion) touches
// the smallest part of the frame — the paper's explanation for Table 7.
func visualQuality(env *core.Env, opts Options) (map[core.SystemKind]float64, error) {
	r := render.New(env.Game.Scene, opts.itemRenderConfig())
	rng := rand.New(rand.NewSource(opts.Seed + 70))
	samples := 8
	if opts.Quick {
		samples = 3
	}
	tr := trace.Generate(env.Game, 60, opts.Seed+71)

	// Enumerate the sampled trace positions sequentially — the leaf skip is
	// trace-determined and the cache-displacement draw must follow the
	// original rng order — then fan the render/codec/SSIM work out.
	type sample struct {
		pos   geom.Vec2
		yaw   float64
		leaf  *cutoff.Region
		dAway float64
	}
	var items []sample
	stride := tr.Len() / (samples + 1)
	if stride < 1 {
		stride = 1
	}
	for i := stride; i < tr.Len() && len(items) < samples; i += stride {
		pos := tr.Pos[i]
		leaf := env.Map.LeafAt(pos)
		if leaf == nil {
			continue
		}
		items = append(items, sample{
			pos:   pos,
			yaw:   tr.YawAt(i),
			leaf:  leaf,
			dAway: rng.Float64() * leaf.DistThresh,
		})
	}

	full := make([]float64, len(items))
	coterie := make([]float64, len(items))
	err := par.ForErr(opts.workers(), len(items), func(i int) error {
		pos, yaw, leaf := items[i].pos, items[i].yaw, items[i].leaf
		eye := env.Game.Scene.EyeAt(pos)
		truthPano := r.GroundTruth(eye, nil)
		// The paper scores the display frames (the cropped field of view
		// at the phone's resolution), not the panoramas.
		truth, err := render.FoVCrop(truthPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return err
		}

		// Thin-client and Multi-Furion: the displayed content passes
		// through the codec in full (Multi-Furion's locally rendered FI
		// overlay is a negligible fraction of the frame).
		decodedPano, err := codec.Decode(codec.Encode(truthPano, env.CRF))
		if err != nil {
			return err
		}
		decoded, err := render.FoVCrop(decodedPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return err
		}
		sFull, err := ssim.Mean(truth, decoded)
		if err != nil {
			return err
		}

		// Coterie: near BE + FI locally rendered and lossless; far BE
		// decoded from a similar cached frame rendered dAway from here.
		src := geom.V2(pos.X+items[i].dAway, pos.Z)
		far := r.Panorama(env.Game.Scene.EyeAt(src), leaf.Radius, math.Inf(1), nil)
		farDec, err := codec.Decode(codec.Encode(far, env.CRF))
		if err != nil {
			return err
		}
		near := r.NearFrame(eye, leaf.Radius, nil)
		mergedPano := render.Merge(near, farDec)
		merged, err := render.FoVCrop(mergedPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return err
		}
		sCoterie, err := ssim.Mean(truth, merged)
		if err != nil {
			return err
		}
		full[i] = sFull
		coterie[i] = sCoterie
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, errors.New("eval: no usable quality samples")
	}
	sums := map[core.SystemKind]float64{}
	for i := range items {
		sums[core.ThinClient] += full[i]
		sums[core.MultiFurion] += full[i]
		sums[core.Coterie] += coterie[i]
	}
	out := map[core.SystemKind]float64{}
	for k, v := range sums {
		out[k] = v / float64(len(items))
	}
	return out, nil
}
