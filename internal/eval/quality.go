package eval

import (
	"errors"
	"math"
	"math/rand"

	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/geom"
	"coterie/internal/render"
	"coterie/internal/ssim"
	"coterie/internal/trace"
)

// visualQuality renders real frames through each system's pipeline and
// scores them against a direct local render (the paper measures SSIM
// against frames generated directly on the client, §7.1):
//
//   - Thin-client: the whole frame passes through the encoder/decoder.
//   - Multi-Furion: the whole BE passes through the codec; only the small
//     FI overlay is rendered locally, so its quality tracks Thin-client's.
//   - Coterie: only the far BE passes through the codec, and the far frame
//     may additionally be a *reused* similar frame rendered from a nearby
//     viewpoint (sampled within the leaf's distance threshold); FI and
//     near BE are locally rendered and lossless.
//
// Coterie scores highest because the codec (and reuse distortion) touches
// the smallest part of the frame — the paper's explanation for Table 7.
func visualQuality(env *core.Env, opts Options) (map[core.SystemKind]float64, error) {
	r := render.New(env.Game.Scene, opts.renderConfig())
	rng := rand.New(rand.NewSource(opts.Seed + 70))
	samples := 8
	if opts.Quick {
		samples = 3
	}
	tr := trace.Generate(env.Game, 60, opts.Seed+71)

	sums := map[core.SystemKind]float64{}
	counts := 0
	stride := tr.Len() / (samples + 1)
	if stride < 1 {
		stride = 1
	}
	for i := stride; i < tr.Len() && counts < samples; i += stride {
		pos := tr.Pos[i]
		leaf := env.Map.LeafAt(pos)
		if leaf == nil {
			continue
		}
		eye := env.Game.Scene.EyeAt(pos)
		yaw := tr.YawAt(i)
		truthPano := r.GroundTruth(eye, nil)
		// The paper scores the display frames (the cropped field of view
		// at the phone's resolution), not the panoramas.
		truth, err := render.FoVCrop(truthPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return nil, err
		}

		// Thin-client and Multi-Furion: the displayed content passes
		// through the codec in full (Multi-Furion's locally rendered FI
		// overlay is a negligible fraction of the frame).
		decodedPano, err := codec.Decode(codec.Encode(truthPano, env.CRF))
		if err != nil {
			return nil, err
		}
		decoded, err := render.FoVCrop(decodedPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return nil, err
		}
		sFull, err := ssim.Mean(truth, decoded)
		if err != nil {
			return nil, err
		}

		// Coterie: near BE + FI locally rendered and lossless; far BE
		// decoded from a similar cached frame rendered dAway from here.
		dAway := rng.Float64() * leaf.DistThresh
		src := geom.V2(pos.X+dAway, pos.Z)
		far := r.Panorama(env.Game.Scene.EyeAt(src), leaf.Radius, math.Inf(1), nil)
		farDec, err := codec.Decode(codec.Encode(far, env.CRF))
		if err != nil {
			return nil, err
		}
		near := r.NearFrame(eye, leaf.Radius, nil)
		mergedPano := render.Merge(near, farDec)
		merged, err := render.FoVCrop(mergedPano, yaw, math.Pi/2, math.Pi/2)
		if err != nil {
			return nil, err
		}
		sCoterie, err := ssim.Mean(truth, merged)
		if err != nil {
			return nil, err
		}

		sums[core.ThinClient] += sFull
		sums[core.MultiFurion] += sFull
		sums[core.Coterie] += sCoterie
		counts++
	}
	if counts == 0 {
		return nil, errors.New("eval: no usable quality samples")
	}
	out := map[core.SystemKind]float64{}
	for k, v := range sums {
		out[k] = v / float64(counts)
	}
	return out, nil
}
