// Package plot renders minimal, dependency-free SVG charts for the
// experiment harness: line charts for the scalability and resource figures
// and CDF-style charts for the similarity and radius distributions.
// cmd/benchtab uses it to write figure files next to the printed tables.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMin/YMax fix the y-range; when both are zero the range is derived
	// from the data with a small margin.
	YMin, YMax float64
}

const (
	width   = 640
	height  = 400
	marginL = 62
	marginR = 20
	marginT = 40
	marginB = 48
)

// palette holds distinguishable stroke colours.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders the chart.
func (c Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	} else {
		pad := (ymax - ymin) * 0.08
		if pad == 0 {
			pad = 1
		}
		ymin -= pad
		ymax += pad
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	px := func(x float64) float64 {
		return marginL + (x-xmin)/(xmax-xmin)*(width-marginL-marginR)
	}
	py := func(y float64) float64 {
		return height - marginB - (y-ymin)/(ymax-ymin)*(height-marginT-marginB)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, marginL, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/4
		yv := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			px(xv), height-marginB+16, tick(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, py(yv)+3, tick(yv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, py(yv), width-marginR, py(yv))
	}

	// Series lines + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`,
			color, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px(s.X[i]), py(s.Y[i]), color)
		}
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			width-marginR-150, ly, width-marginR-130, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`,
			width-marginR-124, ly+4, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// CDF builds the empirical CDF of samples as a Series.
func CDF(name string, samples []float64) Series {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s := Series{Name: name}
	n := len(sorted)
	for i, v := range sorted {
		s.X = append(s.X, v)
		s.Y = append(s.Y, float64(i+1)/float64(n))
	}
	return s
}

func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
