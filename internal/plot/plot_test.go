package plot

import (
	"strings"
	"testing"
)

func TestChartSVG(t *testing.T) {
	c := Chart{
		Title:  "FPS vs players",
		XLabel: "players",
		YLabel: "FPS",
		Series: []Series{
			{Name: "Coterie", X: []float64{1, 2, 3, 4}, Y: []float64{60, 60, 59, 59}},
			{Name: "Multi-Furion", X: []float64{1, 2, 3, 4}, Y: []float64{60, 47, 33, 25}},
		},
		YMin: 0, YMax: 65,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "polyline", "Coterie", "Multi-Furion", "FPS vs players", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("expected two series lines")
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := (Chart{Title: "empty"}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{}}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("mismatched series accepted")
	}
	c = Chart{Series: []Series{{Name: "empty"}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	c := Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
	c = Chart{Series: []Series{{Name: "point", X: []float64{3}, Y: []float64{7}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	s := CDF("test", []float64{0.3, 0.1, 0.2})
	if len(s.X) != 3 {
		t.Fatalf("len %d", len(s.X))
	}
	if s.X[0] != 0.1 || s.X[2] != 0.3 {
		t.Fatalf("not sorted: %v", s.X)
	}
	if s.Y[2] != 1 {
		t.Fatalf("CDF does not reach 1: %v", s.Y)
	}
	if s.Y[0] <= 0 || s.Y[0] >= s.Y[1] {
		t.Fatalf("CDF not increasing: %v", s.Y)
	}
}

func TestEscape(t *testing.T) {
	c := Chart{
		Title:  `a<b>&"c"`,
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b>`) {
		t.Fatal("title not escaped")
	}
}
