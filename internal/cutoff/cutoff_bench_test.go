package cutoff

import (
	"testing"

	"coterie/internal/games"
	"coterie/internal/geom"
)

func BenchmarkComputeFPSWorld(b *testing.B) {
	spec, err := games.ByName("fps")
	if err != nil {
		b.Fatal(err)
	}
	g := games.Build(spec)
	p := DefaultParams()
	p.K = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g.Scene, rt(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafAt(b *testing.B) {
	m, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]struct{ x, z float64 }, 64)
	for i := range pts {
		pts[i] = struct{ x, z float64 }{float64(i * 2 % 128), float64(i % 64)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		m.RadiusAt(geom.V2(p.x, p.z))
	}
}
