package cutoff

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/render"
	"coterie/internal/ssim"
)

// ThresholdConfig controls the offline derivation of per-leaf cache
// distance thresholds (§5.3): for each leaf region, binary-search the
// largest displacement d (starting from 32 m downwards) such that two far-BE
// frames rendered d apart still have SSIM above the quality bar, then take
// the minimum over sampled grid points.
type ThresholdConfig struct {
	// Samples is the number of grid points sampled per leaf region.
	Samples int
	// MaxThresh is the upper end of the binary search (paper: 32).
	MaxThresh float64
	// MinThresh is the lower end; below this caching similar frames is
	// pointless (one grid step).
	MinThresh float64
	// SSIMTarget is the similarity bar (paper: 0.9).
	SSIMTarget float64
	// Seed makes sampling deterministic.
	Seed int64
	// Parallel is the number of workers deriving leaf thresholds; 0 means
	// GOMAXPROCS. Each leaf gets its own rng derived from Seed and the leaf
	// index, so the result is identical for any worker count.
	Parallel int
}

// DefaultThresholdConfig mirrors the paper's settings with K samples.
func DefaultThresholdConfig() ThresholdConfig {
	return ThresholdConfig{
		Samples:    3,
		MaxThresh:  32,
		MinThresh:  0.03,
		SSIMTarget: ssim.GoodThreshold,
		Seed:       7,
	}
}

// DeriveThresholds fills Region.DistThresh for every leaf by measuring
// far-BE frame similarity with the renderer. This is the faithful (and
// expensive) offline procedure; CalibrateThresholds is the sampled variant
// for large worlds.
func DeriveThresholds(m *Map, r *render.Renderer, cfg ThresholdConfig) error {
	return deriveSome(m, r, cfg, allLeaves(m))
}

// CalibrateThresholds derives thresholds exactly on sampleLeaves randomly
// chosen leaf regions, fits the observed threshold-to-cutoff-radius ratio,
// and extrapolates it to the remaining leaves. The parallax geometry behind
// the ratio: pixel displacement in a far-BE frame scales with
// (viewpoint displacement / cutoff radius), so the SSIM-preserving
// displacement grows about linearly with the radius.
func CalibrateThresholds(m *Map, r *render.Renderer, sampleLeaves int, cfg ThresholdConfig) error {
	if len(m.Regions) == 0 {
		return fmt.Errorf("cutoff: no regions")
	}
	if sampleLeaves >= len(m.Regions) {
		return DeriveThresholds(m, r, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	perm := rng.Perm(len(m.Regions))[:sampleLeaves]
	sort.Ints(perm)
	if err := deriveSome(m, r, cfg, perm); err != nil {
		return err
	}
	// Fit the median threshold/radius ratio over the sampled leaves.
	ratios := make([]float64, 0, sampleLeaves)
	for _, i := range perm {
		reg := &m.Regions[i]
		if reg.Radius > 0 {
			ratios = append(ratios, reg.DistThresh/reg.Radius)
		}
	}
	if len(ratios) == 0 {
		return fmt.Errorf("cutoff: no usable calibration samples")
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]
	sampled := make(map[int]bool, sampleLeaves)
	for _, i := range perm {
		sampled[i] = true
	}
	for i := range m.Regions {
		if sampled[i] {
			continue
		}
		reg := &m.Regions[i]
		reg.DistThresh = geom.Clamp(ratio*reg.Radius, cfg.MinThresh, cfg.MaxThresh)
	}
	return nil
}

func allLeaves(m *Map) []int {
	idx := make([]int, len(m.Regions))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// deriveSome derives DistThresh for the given leaf indices. Leaves are
// independent of one another, so they fan out across workers; each leaf owns
// an rng derived from cfg.Seed and its region index (the binary search draws
// a data-dependent number of values, so a shared stream would make results
// depend on worker scheduling).
func deriveSome(m *Map, r *render.Renderer, cfg ThresholdConfig, leaves []int) error {
	if cfg.Samples < 1 {
		return fmt.Errorf("cutoff: Samples must be >= 1")
	}
	if cfg.MaxThresh <= cfg.MinThresh {
		return fmt.Errorf("cutoff: bad threshold bounds [%v, %v]", cfg.MinThresh, cfg.MaxThresh)
	}
	par.For(cfg.Parallel, len(leaves), func(i int) {
		li := leaves[i]
		reg := &m.Regions[li]
		rng := rand.New(rand.NewSource(leafSeed(cfg.Seed, li)))
		best := math.Inf(1)
		for s := 0; s < cfg.Samples; s++ {
			p := geom.V2(
				reg.Bounds.MinX+rng.Float64()*reg.Bounds.Width(),
				reg.Bounds.MinZ+rng.Float64()*reg.Bounds.Depth(),
			)
			d := m.thresholdAt(r, rng, reg, p, cfg)
			if d < best {
				best = d
			}
		}
		reg.DistThresh = best
	})
	return nil
}

// leafSeed mixes the config seed with a leaf index into an independent
// stream seed (splitmix64-style finalizer).
func leafSeed(seed int64, leaf int) int64 {
	h := uint64(seed) + uint64(leaf)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// thresholdAt binary-searches the largest displacement at p that keeps
// far-BE SSIM above the target, staying inside the leaf region.
func (m *Map) thresholdAt(r *render.Renderer, rng *rand.Rand, reg *Region, p geom.Vec2, cfg ThresholdConfig) float64 {
	base := r.Panorama(m.Scene.EyeAt(p), reg.Radius, math.Inf(1), nil)

	similarAt := func(d float64) bool {
		// Try a few directions; the displacement must stay in the leaf
		// (lookups never cross leaf regions, §5.3 criterion 2).
		for attempt := 0; attempt < 6; attempt++ {
			a := rng.Float64() * 2 * math.Pi
			q := geom.V2(p.X+d*math.Cos(a), p.Z+d*math.Sin(a))
			if !reg.Bounds.Contains(q) {
				continue
			}
			other := r.Panorama(m.Scene.EyeAt(q), reg.Radius, math.Inf(1), nil)
			s, err := ssim.Mean(base, other)
			if err != nil {
				return false
			}
			return s > cfg.SSIMTarget
		}
		// Displacement does not fit in the leaf: too large to matter.
		return false
	}

	// The paper binary-searches "starting from 32 downwards".
	hi := math.Min(cfg.MaxThresh, math.Max(reg.Bounds.Width(), reg.Bounds.Depth()))
	lo := cfg.MinThresh
	if hi <= lo {
		return cfg.MinThresh
	}
	if similarAt(hi) {
		return hi
	}
	if !similarAt(lo) {
		return cfg.MinThresh
	}
	for i := 0; i < 7 && hi-lo > math.Max(cfg.MinThresh, 0.02); i++ {
		mid := (lo + hi) / 2
		if similarAt(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
