// Package cutoff implements the paper's adaptive cutoff scheme (§4.3): the
// offline preprocessing step that recursively partitions a game's virtual
// world into a quadtree of leaf regions, each with the largest near-BE /
// far-BE cutoff radius whose near-BE render time satisfies Constraint 1
// (RT_FI + RT_NearBE < 16.7 ms).
//
// Customising a radius per grid point is computationally infeasible (a
// world can have hundreds of millions of grid points, Table 3); a single
// global radius wastes similarity in sparse areas. The adaptive scheme
// exploits the observation that object density changes gradually and tends
// to be uniform within a small region: it samples K random locations per
// region, computes each location's maximal radius, and splits the region
// into four quadrants when the radii disagree. For the paper's largest
// world (CTS, 268M grid points) this reduces the cutoff calculations to a
// few hundred leaf regions.
package cutoff

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"coterie/internal/geom"
	"coterie/internal/par"
	"coterie/internal/world"
)

// RenderTimer estimates the on-device render time in milliseconds for a
// near BE containing the given triangle count. Use
// device.Profile.NearBERenderMs.
type RenderTimer func(tris int) float64

// Params controls the partitioning.
type Params struct {
	// K is the number of random locations sampled per region. The paper
	// determines K=10 experimentally (Fig 6): it bounds Constraint-1
	// violations below 0.25%.
	K int
	// BudgetMs is the near-BE render-time budget from Constraint 1
	// (device.Profile.NearBEBudgetMs(), 12.7 ms minus margin on Pixel 2).
	BudgetMs float64
	// Tolerance is the allowed max/min ratio of sampled radii within a
	// region before it is split.
	Tolerance float64
	// AbsTolerance is an absolute radius spread (metres) below which a
	// region counts as uniform regardless of ratio.
	AbsTolerance float64
	// MinRadius and MaxRadius bound the cutoff search.
	MinRadius, MaxRadius float64
	// MinRegion stops subdivision when a child region side would fall
	// below this size (metres). Zero selects an automatic value scaled to
	// the world (longer dimension / 64, clamped to [1, 20] m): adapting
	// below that granularity buys nothing because the radii the scheme
	// produces are themselves metres wide.
	MinRegion float64
	// MaxDepth is a safety bound on quadtree depth.
	MaxDepth int
	// Seed makes sampling deterministic.
	Seed int64
	// Parallel is the number of workers used for the per-region radius and
	// density sampling; 0 means GOMAXPROCS. Output is identical for any
	// worker count: sample locations are drawn sequentially before the
	// fan-out and results land in index-addressed slices.
	Parallel int
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		K:            10,
		BudgetMs:     12.7,
		Tolerance:    1.30,
		AbsTolerance: 0.5,
		MinRadius:    0.5,
		MaxRadius:    200,
		MinRegion:    0, // auto
		MaxDepth:     10,
		Seed:         1,
	}
}

// Region is a quadtree leaf: a rectangle of the world sharing one cutoff
// radius and one cache distance threshold.
type Region struct {
	ID     int
	Bounds geom.Rect
	Depth  int
	// Radius is the near/far BE cutoff radius for every location in the
	// region: the minimum of the K sampled maximal radii (§4.3).
	Radius float64
	// DistThresh is the cache lookup distance threshold derived for this
	// region (§5.3); zero until thresholds are derived.
	DistThresh float64
	// TriDensity is the mean sampled object density (triangles per square
	// metre), recorded for the Fig 8 density/radius correlation.
	TriDensity float64
}

// node is an internal quadtree node.
type node struct {
	bounds   geom.Rect
	children *[4]node // nil at leaves
	leaf     int32    // index into Map.Regions when children == nil
}

// Stats summarises a partitioning run (the Table 3 columns).
type Stats struct {
	LeafCount   int
	DepthAvg    float64
	DepthMax    int
	CutoffCalcs int // number of per-location maximal-radius computations
	ProcTime    time.Duration
}

// Map is the offline preprocessing output for one game world.
type Map struct {
	Scene   *world.Scene
	Params  Params
	Regions []Region
	Stats   Stats
	root    node
}

// Compute runs the adaptive cutoff scheme over the scene.
func Compute(scene *world.Scene, rt RenderTimer, p Params) (*Map, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("cutoff: K must be >= 1, got %d", p.K)
	}
	if p.BudgetMs <= 0 || p.MinRadius <= 0 || p.MaxRadius <= p.MinRadius {
		return nil, fmt.Errorf("cutoff: invalid params %+v", p)
	}
	if p.MinRegion <= 0 {
		longer := math.Max(scene.Bounds.Width(), scene.Bounds.Depth())
		p.MinRegion = math.Min(math.Max(longer/64, 1), 20)
	}
	start := time.Now()
	m := &Map{Scene: scene, Params: p}
	workers := par.Workers(p.Parallel)
	if workers > p.K {
		workers = p.K
	}
	b := builder{
		m:       m,
		rt:      rt,
		rng:     rand.New(rand.NewSource(p.Seed)),
		workers: workers,
		queries: make([]*world.Query, workers),
	}
	for i := range b.queries {
		b.queries[i] = scene.NewQuery()
	}
	m.root = b.partition(scene.Bounds, 0)
	m.Stats.LeafCount = len(m.Regions)
	var depthSum int
	for i := range m.Regions {
		d := m.Regions[i].Depth
		depthSum += d
		if d > m.Stats.DepthMax {
			m.Stats.DepthMax = d
		}
	}
	if len(m.Regions) > 0 {
		m.Stats.DepthAvg = float64(depthSum) / float64(len(m.Regions))
	}
	m.Stats.CutoffCalcs = b.calcs
	m.Stats.ProcTime = time.Since(start)
	return m, nil
}

type builder struct {
	m       *Map
	rt      RenderTimer
	rng     *rand.Rand
	workers int
	queries []*world.Query // one per worker
	calcs   int
}

// partition implements the recursive procedure of §4.3: sample K random
// locations, compute each one's maximal radius, stop if they agree, split
// into four quadrants otherwise.
//
// The K samples are independent, so their radius searches and density
// probes fan out across workers. Determinism: all rng draws happen in the
// sequential prepass below (the compute stage draws nothing), results land
// in index-addressed slices, and the reductions below run in index order —
// so the output is byte-identical for any worker count, including the
// sequential seed implementation's.
func (b *builder) partition(region geom.Rect, depth int) node {
	k := b.m.Params.K
	locs := make([]geom.Vec2, k)
	for i := range locs {
		locs[i] = geom.V2(
			region.MinX+b.rng.Float64()*region.Width(),
			region.MinZ+b.rng.Float64()*region.Depth(),
		)
	}
	radii := make([]float64, k)
	densities := make([]float64, k)
	par.ForWorker(b.workers, k, func(worker, i int) {
		q := b.queries[worker]
		radii[i] = b.maxRadius(q, locs[i])
		const densityProbe = 6.0
		tris := b.m.Scene.TrianglesWithin(q, locs[i], densityProbe)
		densities[i] = float64(tris) / (math.Pi * densityProbe * densityProbe)
	})
	b.calcs += k
	var densitySum float64
	minR, maxR := math.Inf(1), 0.0
	for i := range radii {
		r := radii[i]
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		densitySum += densities[i]
	}

	p := b.m.Params
	uniform := maxR-minR <= p.AbsTolerance || maxR <= minR*p.Tolerance
	canSplit := depth < p.MaxDepth && region.Width()/2 >= p.MinRegion && region.Depth()/2 >= p.MinRegion
	if uniform || !canSplit {
		// Leaf: record the minimal radius so Constraint 1 holds for the
		// whole region.
		id := len(b.m.Regions)
		b.m.Regions = append(b.m.Regions, Region{
			ID:         id,
			Bounds:     region,
			Depth:      depth,
			Radius:     minR,
			TriDensity: densitySum / float64(p.K),
		})
		return node{bounds: region, leaf: int32(id)}
	}
	var children [4]node
	for i, quad := range region.Quadrants() {
		children[i] = b.partition(quad, depth+1)
	}
	return node{bounds: region, children: &children, leaf: -1}
}

// maxRadius binary-searches the largest cutoff radius at loc whose near-BE
// render time stays within the budget. Triangle count is monotone in the
// radius, so bisection applies. q is the calling worker's query scratch.
func (b *builder) maxRadius(q *world.Query, loc geom.Vec2) float64 {
	p := b.m.Params
	fits := func(r float64) bool {
		return b.rt(b.m.Scene.TrianglesWithin(q, loc, r)) <= p.BudgetMs
	}
	if !fits(p.MinRadius) {
		return p.MinRadius
	}
	if fits(p.MaxRadius) {
		return p.MaxRadius
	}
	lo, hi := p.MinRadius, p.MaxRadius
	for i := 0; i < 24 && hi-lo > 0.05; i++ {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LeafAt returns the leaf region containing the ground position, or nil if
// the position lies outside the world.
func (m *Map) LeafAt(p geom.Vec2) *Region {
	if !m.Scene.Bounds.ContainsClosed(p) {
		return nil
	}
	// Clamp max-edge points into the half-open quadrant system.
	p = geom.V2(
		math.Min(p.X, m.Scene.Bounds.MaxX-1e-9),
		math.Min(p.Z, m.Scene.Bounds.MaxZ-1e-9),
	)
	n := &m.root
	for n.children != nil {
		found := false
		for i := range n.children {
			if n.children[i].bounds.Contains(p) {
				n = &n.children[i]
				found = true
				break
			}
		}
		if !found {
			return nil // numerically on a seam; treat as outside
		}
	}
	return &m.Regions[n.leaf]
}

// RadiusAt returns the cutoff radius for a ground position (0 outside the
// world).
func (m *Map) RadiusAt(p geom.Vec2) float64 {
	if r := m.LeafAt(p); r != nil {
		return r.Radius
	}
	return 0
}

// Validate checks the structural invariants of the partition: leaves tile
// the world, radii are within bounds, and every leaf is reachable by
// LeafAt from its own centre.
func (m *Map) Validate() error {
	var area float64
	for i := range m.Regions {
		r := &m.Regions[i]
		area += r.Bounds.Area()
		if r.Radius < m.Params.MinRadius-1e-9 || r.Radius > m.Params.MaxRadius+1e-9 {
			return fmt.Errorf("cutoff: region %d radius %v out of bounds", r.ID, r.Radius)
		}
		if got := m.LeafAt(r.Bounds.Center()); got == nil || got.ID != r.ID {
			return fmt.Errorf("cutoff: region %d not found at its own centre", r.ID)
		}
	}
	if want := m.Scene.Bounds.Area(); math.Abs(area-want) > want*1e-9 {
		return fmt.Errorf("cutoff: leaves cover %v of %v world area", area, want)
	}
	return nil
}
