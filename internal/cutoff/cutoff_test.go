package cutoff

import (
	"math"
	"math/rand"
	"testing"

	"coterie/internal/device"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/render"
	"coterie/internal/world"
)

// twoZoneScene has a dense west half and a sparse east half, so the
// partitioner must split at least once and assign a smaller radius to the
// dense side.
func twoZoneScene() *world.Scene {
	rng := rand.New(rand.NewSource(5))
	var objs []world.Object
	add := func(x, z float64, tris int) {
		objs = append(objs, world.Object{
			ID: len(objs), Kind: world.KindSphere,
			Center: geom.V3(x, 1, z), Radius: 0.8, Triangles: tris, Shade: 0.5,
		})
	}
	// Dense west half: many small assets, so a cutoff disc holds ~100
	// objects (like a real game world; keeps sampling noise low).
	for i := 0; i < 4000; i++ {
		add(rng.Float64()*64, rng.Float64()*64, 6_000)
	}
	for i := 0; i < 400; i++ { // sparse east half
		add(64+rng.Float64()*64, rng.Float64()*64, 800)
	}
	return world.New("twozone", geom.Rect{MaxX: 128, MaxZ: 64}, 0.25, objs, 5)
}

func testParams() Params {
	p := DefaultParams()
	p.K = 6
	p.MinRegion = 4
	return p
}

func rt() RenderTimer {
	prof := device.Pixel2()
	return prof.NearBERenderMs
}

func TestComputeSplitsOnDensityContrast(t *testing.T) {
	m, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.LeafCount < 4 {
		t.Fatalf("expected a split, got %d leaves", m.Stats.LeafCount)
	}
	dense := m.RadiusAt(geom.V2(20, 32))
	sparse := m.RadiusAt(geom.V2(110, 32))
	if dense >= sparse {
		t.Fatalf("dense radius %.1f should be smaller than sparse %.1f", dense, sparse)
	}
}

func TestUniformWorldSingleLeaf(t *testing.T) {
	// A world with uniform density should not be split at all.
	rng := rand.New(rand.NewSource(6))
	var objs []world.Object
	for i := 0; i < 500; i++ {
		objs = append(objs, world.Object{
			ID: i, Kind: world.KindSphere,
			Center: geom.V3(rng.Float64()*100, 1, rng.Float64()*100),
			Radius: 0.5, Triangles: 20_000, Shade: 0.5,
		})
	}
	s := world.New("uniform", geom.NewRect(100, 100), 0.5, objs, 5)
	p := testParams()
	p.Tolerance = 1.8 // uniform scatter still jitters locally
	m, err := Compute(s, rt(), p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.LeafCount > 16 {
		t.Fatalf("uniform world split into %d leaves", m.Stats.LeafCount)
	}
}

func TestRadiusSatisfiesConstraint1(t *testing.T) {
	// The defining guarantee: at (almost) any location, rendering the near
	// BE within the leaf's radius fits the render-time budget. The paper
	// reports a small violation rate (<0.25% at K=10, Fig 6) on real game
	// worlds, whose density fields are smooth; we verify on the FPS world
	// with a slightly looser bound since our sampling is coarser.
	g := games.Build(mustSpec(t, "fps"))
	s := g.Scene
	p := DefaultParams()
	p.K = 10
	m, err := Compute(s, rt(), p)
	if err != nil {
		t.Fatal(err)
	}
	// The offline search budget (12.7ms on the all-around triangle count)
	// embeds two conservatisms the runtime enjoys: the paper's 4ms FI
	// bound versus the actual FI load, and frustum culling (the phone
	// renders the field of view, not the full surround). The measured
	// constraint is the on-device one: RT_FI + per-frame near-BE render
	// time < 16.7ms.
	prof := device.Pixel2()
	typicalFI := prof.RenderMs(2 * 25_000)
	q := s.NewQuery()
	rng := rand.New(rand.NewSource(9))
	violations, total := 0, 600
	for i := 0; i < total; i++ {
		loc := geom.V2(rng.Float64()*s.Bounds.Width(), rng.Float64()*s.Bounds.Depth())
		r := m.RadiusAt(loc)
		if prof.NearBEFrameMs(s.TrianglesWithin(q, loc, r))+typicalFI > prof.VsyncMs {
			violations++
		}
	}
	if frac := float64(violations) / float64(total); frac > 0.005 {
		t.Fatalf("constraint violated at %.1f%% of locations", frac*100)
	}
}

func TestViolationRateDropsWithK(t *testing.T) {
	// Fig 6's shape: larger K -> fewer Constraint-1 violations.
	s := twoZoneScene()
	timer := rt()
	q := s.NewQuery()
	rng := rand.New(rand.NewSource(10))
	locs := make([]geom.Vec2, 400)
	for i := range locs {
		locs[i] = geom.V2(rng.Float64()*128, rng.Float64()*64)
	}
	rate := func(k int) float64 {
		p := testParams()
		p.K = k
		p.Seed = 33
		m, err := Compute(s, timer, p)
		if err != nil {
			t.Fatal(err)
		}
		v := 0
		for _, loc := range locs {
			if timer(s.TrianglesWithin(q, loc, m.RadiusAt(loc))) > p.BudgetMs {
				v++
			}
		}
		return float64(v) / float64(len(locs))
	}
	r1, r10 := rate(1), rate(10)
	if r10 > r1+1e-9 && r10 > 0.01 {
		t.Fatalf("violation rate did not improve with K: K=1 %.3f, K=10 %.3f", r1, r10)
	}
}

func TestLeafAtCoversWholeWorld(t *testing.T) {
	m, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		p := geom.V2(rng.Float64()*128, rng.Float64()*64)
		if m.LeafAt(p) == nil {
			t.Fatalf("no leaf at %v", p)
		}
	}
	// Boundary points included; outside points nil.
	if m.LeafAt(geom.V2(128, 64)) == nil {
		t.Fatal("max corner should resolve to a leaf")
	}
	if m.LeafAt(geom.V2(-1, 0)) != nil || m.RadiusAt(geom.V2(200, 0)) != 0 {
		t.Fatal("outside positions should not resolve")
	}
}

func TestDensityRadiusCorrelation(t *testing.T) {
	// Fig 8: the higher the object density of a leaf region, the smaller
	// its generated cutoff radius. Check rank correlation over leaves.
	g := games.Build(mustSpec(t, "fps"))
	p := DefaultParams()
	p.K = 5
	p.MinRegion = 2
	m, err := Compute(g.Scene, rt(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Regions) < 8 {
		t.Skipf("only %d leaves; not enough for correlation", len(m.Regions))
	}
	// Pearson correlation between density and radius must be negative.
	var mx, my float64
	for _, r := range m.Regions {
		mx += r.TriDensity
		my += r.Radius
	}
	n := float64(len(m.Regions))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for _, r := range m.Regions {
		dx, dy := r.TriDensity-mx, r.Radius-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		t.Skip("degenerate variance")
	}
	corr := sxy / math.Sqrt(sxx*syy)
	if corr >= -0.3 {
		t.Fatalf("density/radius correlation = %.2f, want clearly negative", corr)
	}
}

func TestComputeRejectsBadParams(t *testing.T) {
	s := twoZoneScene()
	p := testParams()
	p.K = 0
	if _, err := Compute(s, rt(), p); err == nil {
		t.Fatal("expected error for K=0")
	}
	p = testParams()
	p.MaxRadius = p.MinRadius
	if _, err := Compute(s, rt(), p); err == nil {
		t.Fatal("expected error for empty radius range")
	}
}

func TestComputeDeterministic(t *testing.T) {
	a, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != len(b.Regions) {
		t.Fatal("non-deterministic partition")
	}
	for i := range a.Regions {
		if a.Regions[i].Radius != b.Regions[i].Radius {
			t.Fatalf("region %d radius differs", i)
		}
	}
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	// The partition must be byte-identical at any worker count: the rng
	// prepass and index-addressed sample results make worker scheduling
	// invisible.
	run := func(workers int) *Map {
		p := testParams()
		p.Parallel = workers
		m, err := Compute(twoZoneScene(), rt(), p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		m := run(w)
		if len(m.Regions) != len(base.Regions) {
			t.Fatalf("Parallel=%d: %d regions, want %d", w, len(m.Regions), len(base.Regions))
		}
		for i := range m.Regions {
			a, b := base.Regions[i], m.Regions[i]
			if a.Radius != b.Radius || a.TriDensity != b.TriDensity || a.Bounds != b.Bounds || a.Depth != b.Depth {
				t.Fatalf("Parallel=%d: region %d differs: %+v vs %+v", w, i, a, b)
			}
		}
		if m.Stats.CutoffCalcs != base.Stats.CutoffCalcs {
			t.Fatalf("Parallel=%d: calcs %d vs %d", w, m.Stats.CutoffCalcs, base.Stats.CutoffCalcs)
		}
	}
}

func TestDeriveThresholdsParallelMatchesSequential(t *testing.T) {
	g := games.Build(mustSpec(t, "pool"))
	p := DefaultParams()
	p.K = 4
	p.MinRegion = 2.5
	run := func(workers int) *Map {
		m, err := Compute(g.Scene, rt(), p)
		if err != nil {
			t.Fatal(err)
		}
		r := render.New(g.Scene, render.Config{W: 64, H: 32, Parallel: 1})
		cfg := DefaultThresholdConfig()
		cfg.Samples = 1
		cfg.Parallel = workers
		if err := DeriveThresholds(m, r, cfg); err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := run(1)
	m8 := run(8)
	for i := range base.Regions {
		if base.Regions[i].DistThresh != m8.Regions[i].DistThresh {
			t.Fatalf("region %d: DistThresh %v (Parallel=1) vs %v (Parallel=8)",
				i, base.Regions[i].DistThresh, m8.Regions[i].DistThresh)
		}
	}
}

func TestDeriveThresholds(t *testing.T) {
	g := games.Build(mustSpec(t, "pool"))
	p := DefaultParams()
	p.K = 4
	p.MinRegion = 2.5
	m, err := Compute(g.Scene, rt(), p)
	if err != nil {
		t.Fatal(err)
	}
	r := render.New(g.Scene, render.Config{W: 128, H: 64})
	cfg := DefaultThresholdConfig()
	cfg.Samples = 1
	if err := DeriveThresholds(m, r, cfg); err != nil {
		t.Fatal(err)
	}
	for _, reg := range m.Regions {
		if reg.DistThresh < cfg.MinThresh-1e-12 || reg.DistThresh > cfg.MaxThresh {
			t.Fatalf("region %d threshold %v outside [%v, %v]", reg.ID, reg.DistThresh, cfg.MinThresh, cfg.MaxThresh)
		}
	}
}

func TestCalibrateThresholdsScalesWithRadius(t *testing.T) {
	m, err := Compute(twoZoneScene(), rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := render.New(m.Scene, render.Config{W: 128, H: 64})
	cfg := DefaultThresholdConfig()
	cfg.Samples = 1
	if err := CalibrateThresholds(m, r, 2, cfg); err != nil {
		t.Fatal(err)
	}
	for _, reg := range m.Regions {
		if reg.DistThresh <= 0 {
			t.Fatalf("region %d has no threshold", reg.ID)
		}
	}
}

func mustSpec(t *testing.T, name string) games.Spec {
	t.Helper()
	s, err := games.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
