package cutoff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"coterie/internal/geom"
	"coterie/internal/world"
)

// Offline preprocessing output is computed once per app (the paper does it
// at installation time, §4.3) and shipped to clients; this file
// round-trips a Map through JSON so cmd/cutoffgen can write it and the
// server/client load it instead of recomputing.

// mapFile is the serialised form.
type mapFile struct {
	Format  string       `json:"format"`
	Scene   string       `json:"scene"`
	Params  Params       `json:"params"`
	Stats   statsFile    `json:"stats"`
	Regions []regionFile `json:"regions"`
}

type statsFile struct {
	LeafCount   int     `json:"leaf_count"`
	DepthAvg    float64 `json:"depth_avg"`
	DepthMax    int     `json:"depth_max"`
	CutoffCalcs int     `json:"cutoff_calcs"`
	ProcTimeMs  float64 `json:"proc_time_ms"`
}

type regionFile struct {
	Bounds     [4]float64 `json:"bounds"` // minX, minZ, maxX, maxZ
	Depth      int        `json:"depth"`
	Radius     float64    `json:"radius"`
	DistThresh float64    `json:"dist_thresh"`
	TriDensity float64    `json:"tri_density"`
}

const mapFormat = "coterie-cutoff-map/1"

// Save writes the map to w as JSON.
func (m *Map) Save(w io.Writer) error {
	f := mapFile{
		Format: mapFormat,
		Scene:  m.Scene.Name,
		Params: m.Params,
		Stats: statsFile{
			LeafCount:   m.Stats.LeafCount,
			DepthAvg:    m.Stats.DepthAvg,
			DepthMax:    m.Stats.DepthMax,
			CutoffCalcs: m.Stats.CutoffCalcs,
			ProcTimeMs:  float64(m.Stats.ProcTime.Milliseconds()),
		},
	}
	for _, r := range m.Regions {
		f.Regions = append(f.Regions, regionFile{
			Bounds:     [4]float64{r.Bounds.MinX, r.Bounds.MinZ, r.Bounds.MaxX, r.Bounds.MaxZ},
			Depth:      r.Depth,
			Radius:     r.Radius,
			DistThresh: r.DistThresh,
			TriDensity: r.TriDensity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Load reads a map saved by Save and attaches it to the scene it was
// computed for. The scene name must match, and the loaded leaves must tile
// the scene's bounds; the quadtree is reconstructed from the leaf
// rectangles.
func Load(r io.Reader, scene *world.Scene) (*Map, error) {
	var f mapFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("cutoff: decoding map: %w", err)
	}
	if f.Format != mapFormat {
		return nil, fmt.Errorf("cutoff: unknown format %q", f.Format)
	}
	if f.Scene != scene.Name {
		return nil, fmt.Errorf("cutoff: map is for scene %q, not %q", f.Scene, scene.Name)
	}
	m := &Map{Scene: scene, Params: f.Params}
	m.Stats.LeafCount = f.Stats.LeafCount
	m.Stats.DepthAvg = f.Stats.DepthAvg
	m.Stats.DepthMax = f.Stats.DepthMax
	m.Stats.CutoffCalcs = f.Stats.CutoffCalcs
	for i, rf := range f.Regions {
		m.Regions = append(m.Regions, Region{
			ID:         i,
			Bounds:     geom.Rect{MinX: rf.Bounds[0], MinZ: rf.Bounds[1], MaxX: rf.Bounds[2], MaxZ: rf.Bounds[3]},
			Depth:      rf.Depth,
			Radius:     rf.Radius,
			DistThresh: rf.DistThresh,
			TriDensity: rf.TriDensity,
		})
	}
	root, err := rebuildTree(scene.Bounds, m.Regions)
	if err != nil {
		return nil, err
	}
	m.root = *root
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cutoff: loaded map invalid: %w", err)
	}
	return m, nil
}

// rebuildTree reconstructs the quadtree from leaf rectangles: a node whose
// bounds exactly match a single covering leaf is that leaf; otherwise the
// node splits into quadrants.
func rebuildTree(bounds geom.Rect, regions []Region) (*node, error) {
	// Index regions by containment of the node centre for recursion.
	var build func(b geom.Rect, depth int) (*node, error)
	build = func(b geom.Rect, depth int) (*node, error) {
		if depth > 24 {
			return nil, fmt.Errorf("cutoff: runaway recursion rebuilding tree at %+v", b)
		}
		c := b.Center()
		var covering *Region
		for i := range regions {
			r := &regions[i]
			if r.Bounds.Contains(c) || (r.Bounds.ContainsClosed(c) && r.Bounds.MaxX >= bounds.MaxX && r.Bounds.MaxZ >= bounds.MaxZ) {
				covering = r
				break
			}
		}
		if covering == nil {
			return nil, fmt.Errorf("cutoff: no region covers %v", c)
		}
		if sameRect(covering.Bounds, b) {
			return &node{bounds: b, leaf: int32(covering.ID)}, nil
		}
		if !rectContains(covering.Bounds, b) {
			// The covering leaf is smaller than this node: split.
			var children [4]node
			for i, quad := range b.Quadrants() {
				ch, err := build(quad, depth+1)
				if err != nil {
					return nil, err
				}
				children[i] = *ch
			}
			return &node{bounds: b, children: &children, leaf: -1}, nil
		}
		// The leaf is larger than the node (should not happen for a
		// well-formed quadtree, but tolerate it).
		return &node{bounds: b, leaf: int32(covering.ID)}, nil
	}
	return build(bounds, 0)
}

func sameRect(a, b geom.Rect) bool {
	const eps = 1e-9
	return math.Abs(a.MinX-b.MinX) < eps && math.Abs(a.MinZ-b.MinZ) < eps &&
		math.Abs(a.MaxX-b.MaxX) < eps && math.Abs(a.MaxZ-b.MaxZ) < eps
}

func rectContains(outer, inner geom.Rect) bool {
	const eps = 1e-9
	return outer.MinX <= inner.MinX+eps && outer.MinZ <= inner.MinZ+eps &&
		outer.MaxX+eps >= inner.MaxX && outer.MaxZ+eps >= inner.MaxZ
}
