package cutoff

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"coterie/internal/geom"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	scene := twoZoneScene()
	m, err := Compute(scene, rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, scene)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Regions) != len(m.Regions) {
		t.Fatalf("regions %d != %d", len(loaded.Regions), len(m.Regions))
	}
	for i := range m.Regions {
		a, b := m.Regions[i], loaded.Regions[i]
		if a.Bounds != b.Bounds || a.Radius != b.Radius || a.DistThresh != b.DistThresh || a.Depth != b.Depth {
			t.Fatalf("region %d differs: %+v vs %+v", i, a, b)
		}
	}
	// The reconstructed tree answers lookups identically.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := geom.V2(rng.Float64()*128, rng.Float64()*64)
		la, lb := m.LeafAt(p), loaded.LeafAt(p)
		if (la == nil) != (lb == nil) {
			t.Fatalf("lookup presence differs at %v", p)
		}
		if la != nil && la.Bounds != lb.Bounds {
			t.Fatalf("lookup differs at %v: %v vs %v", p, la.Bounds, lb.Bounds)
		}
	}
	if loaded.Stats.LeafCount != m.Stats.LeafCount || loaded.Stats.DepthMax != m.Stats.DepthMax {
		t.Fatalf("stats differ: %+v vs %+v", loaded.Stats, m.Stats)
	}
}

func TestLoadRejectsWrongScene(t *testing.T) {
	scene := twoZoneScene()
	m, err := Compute(scene, rt(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := twoZoneScene()
	other.Name = "different"
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("map accepted for the wrong scene")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	scene := twoZoneScene()
	if _, err := Load(strings.NewReader("not json"), scene); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":"something-else"}`), scene); err == nil {
		t.Fatal("wrong format accepted")
	}
	// Valid format but missing regions: fails validation.
	if _, err := Load(strings.NewReader(`{"format":"coterie-cutoff-map/1","scene":"twozone","params":{"K":5,"BudgetMs":12.7,"MinRadius":0.5,"MaxRadius":200},"regions":[]}`), scene); err == nil {
		t.Fatal("empty region set accepted")
	}
}
