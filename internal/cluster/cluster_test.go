package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coterie/internal/geom"
	"coterie/internal/transport"
)

// fakeOwner is a minimal node speaking just enough of the protocol to
// stand in for a peer: hello exchange, then MsgPeerFrameRequest ->
// MsgPeerFrameReply with deterministic bytes derived from the point.
type fakeOwner struct {
	ln       net.Listener
	game     string
	requests atomic.Int64
	lastDL   atomic.Value // float64: DeadlineMs of the last request
	delay    time.Duration
	reject   atomic.Bool // answer peer requests with MsgError
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newFakeOwner(t *testing.T, game string) *fakeOwner {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeOwner{ln: ln, game: game, conns: make(map[net.Conn]struct{})}
	f.serve()
	return f
}

// frameBytes is the fake's deterministic "render" of a point.
func frameBytes(pt geom.GridPoint) []byte {
	return []byte(fmt.Sprintf("frame(%d,%d)", pt.I, pt.J))
}

func (f *fakeOwner) serve() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			nc, err := f.ln.Accept()
			if err != nil {
				return
			}
			f.mu.Lock()
			f.conns[nc] = struct{}{}
			f.mu.Unlock()
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				defer func() {
					nc.Close()
					f.mu.Lock()
					delete(f.conns, nc)
					f.mu.Unlock()
				}()
				c := transport.NewConn(nc)
				m, err := c.Recv()
				if err != nil || m.Type != transport.MsgHello {
					return
				}
				c.Send(transport.Message{Type: transport.MsgHello, Payload: m.Payload})
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					switch m.Type {
					case transport.MsgPeerFrameRequest:
						req, err := transport.DecodeFrameRequest(m.Payload)
						if err != nil {
							return
						}
						f.requests.Add(1)
						f.lastDL.Store(req.DeadlineMs)
						if f.delay > 0 {
							time.Sleep(f.delay)
						}
						if f.reject.Load() {
							c.Send(transport.Message{Type: transport.MsgError, Payload: []byte("overloaded")})
							continue
						}
						reply := transport.EncodeFrameReply(transport.FrameReply{
							Point:  req.Point,
							ReqID:  req.ReqID,
							Origin: transport.OriginLocal,
							Data:   frameBytes(req.Point),
						})
						c.Send(transport.Message{Type: transport.MsgPeerFrameReply, Payload: reply})
					case transport.MsgBye:
						return
					default:
						return
					}
				}
			}()
		}
	}()
}

func (f *fakeOwner) addr() string { return f.ln.Addr().String() }

func (f *fakeOwner) close() {
	f.ln.Close()
	f.mu.Lock()
	for nc := range f.conns {
		nc.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// twoNode builds a cluster where self is a never-dialled placeholder
// address and the fake owner is the only peer, plus a grid point the
// fake owns.
func twoNode(t *testing.T, f *fakeOwner) (*Cluster, geom.GridPoint) {
	t.Helper()
	self := "127.0.0.1:1" // port 1: never dialled by these tests
	c, err := New(Config{
		Self:         self,
		Nodes:        []string{self, f.addr()},
		Game:         f.game,
		FetchTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	for j := 0; j < 100; j++ {
		for i := 0; i < 100; i++ {
			pt := geom.GridPoint{I: i, J: j}
			if c.Owner(pt) == f.addr() {
				return c, pt
			}
		}
	}
	t.Fatal("no point owned by the fake peer in a 100x100 scan")
	return nil, geom.GridPoint{}
}

func TestNewValidatesMembership(t *testing.T) {
	if _, err := New(Config{Self: "a:1", Nodes: nil}); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New(Config{Self: "a:1", Nodes: []string{"b:1"}}); err == nil {
		t.Error("self outside membership accepted")
	}
	if _, err := New(Config{Self: "a:1", Nodes: []string{"a:1", ""}}); err == nil {
		t.Error("empty node address accepted")
	}
	c, err := New(Config{Self: "a:1", Nodes: []string{"a:1", "b:1", "b:1"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if c.Size() != 2 {
		t.Errorf("duplicate node not deduplicated: size %d", c.Size())
	}
	if !c.Up(c.Self()) {
		t.Error("self reported down")
	}
}

func TestFetchRoundTripAndDeadlinePropagation(t *testing.T) {
	f := newFakeOwner(t, "viking")
	defer f.close()
	c, pt := twoNode(t, f)

	const deadline = 123456.5
	reply, err := c.Fetch(pt, deadline, 0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if string(reply.Data) != string(frameBytes(pt)) {
		t.Errorf("wrong frame bytes: %q", reply.Data)
	}
	if reply.Point != pt {
		t.Errorf("reply point %v, want %v", reply.Point, pt)
	}
	if got := f.lastDL.Load().(float64); got != deadline {
		t.Errorf("deadline did not propagate: owner saw %v, want %v", got, deadline)
	}
	// Second fetch reuses the pooled connection: the fake accepts once
	// per connection, so a second dial would show up as a second
	// session; request count alone proves reuse is at least functional.
	if _, err := c.Fetch(pt, 0, 0); err != nil {
		t.Fatalf("pooled Fetch: %v", err)
	}
	if n := f.requests.Load(); n != 2 {
		t.Errorf("owner saw %d requests, want 2", n)
	}
}

func TestFetchSingleflight(t *testing.T) {
	f := newFakeOwner(t, "viking")
	defer f.close()
	f.delay = 50 * time.Millisecond
	c, pt := twoNode(t, f)

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	datas := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Fetch(pt, 0, 0)
			errs[i], datas[i] = err, r.Data
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(datas[i]) != string(frameBytes(pt)) {
			t.Errorf("caller %d: wrong bytes %q", i, datas[i])
		}
	}
	if n := f.requests.Load(); n != 1 {
		t.Errorf("owner saw %d requests for one point, want 1 (singleflight)", n)
	}
}

func TestRemoteErrorKeepsPeerUp(t *testing.T) {
	f := newFakeOwner(t, "viking")
	defer f.close()
	f.reject.Store(true)
	c, pt := twoNode(t, f)

	_, err := c.Fetch(pt, 0, 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	if !c.Up(f.addr()) {
		t.Error("application-level rejection marked the peer down")
	}
	// The connection survives the rejection: a later accepted fetch
	// reuses it.
	f.reject.Store(false)
	if _, err := c.Fetch(pt, 0, 0); err != nil {
		t.Fatalf("Fetch after rejection: %v", err)
	}
}

func TestFetchFailureMarksDownAndProbeRecovers(t *testing.T) {
	f := newFakeOwner(t, "viking")
	c, pt := twoNode(t, f)
	addr := f.addr()

	if _, err := c.Fetch(pt, 0, 0); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	f.close()
	// The pooled connection is dead and new dials are refused; the
	// fetch must fail in bounded time and mark the peer down.
	start := time.Now()
	if _, err := c.Fetch(pt, 0, 0); err == nil {
		t.Fatal("Fetch against a dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("dead-peer fetch took %v; dial/IO bounds failed", elapsed)
	}
	if c.Up(addr) {
		t.Fatal("fetch failure did not mark the peer down")
	}
	if _, err := c.Fetch(pt, 0, 0); err == nil {
		t.Fatal("Fetch to a down peer should fail fast")
	}

	// Rebind the same port and let a probe round restore the peer.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	f2 := &fakeOwner{ln: ln, game: "viking", conns: make(map[net.Conn]struct{})}
	f2.serve()
	defer f2.close()
	c.probeAll()
	if !c.Up(addr) {
		t.Fatal("probe did not mark the recovered peer up")
	}
	if _, err := c.Fetch(pt, 0, 0); err != nil {
		t.Fatalf("Fetch after recovery: %v", err)
	}
}

func TestHealthLoopMarksDownPeer(t *testing.T) {
	f := newFakeOwner(t, "viking")
	c, err := New(Config{
		Self:           "127.0.0.1:1",
		Nodes:          []string{"127.0.0.1:1", f.addr()},
		Game:           "viking",
		HealthInterval: 10 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for c.PeersUp() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.PeersUp() != 1 {
		t.Fatal("health loop never saw the live peer")
	}
	f.close()
	for c.PeersUp() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.PeersUp() != 0 {
		t.Fatal("health loop never marked the dead peer down")
	}
}
