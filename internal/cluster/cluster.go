package cluster

import (
	"fmt"
	"sync"
	"time"

	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/transport"
)

// Defaults for the knobs a Config leaves zero.
const (
	// DefaultHealthInterval is how often the health loop probes each
	// peer. Probes are one pooled round trip, so a sub-second cadence is
	// cheap and bounds how long a dead peer keeps absorbing fetch
	// attempts (each of which still fails fast on the dial/IO timeout).
	DefaultHealthInterval = 500 * time.Millisecond
	// DefaultFetchTimeout caps one peer fetch round trip (dial excluded;
	// dials are bounded separately). A peer slower than this is treated
	// as down for the request and the caller falls back to rendering
	// locally.
	DefaultFetchTimeout = 2 * time.Second
	// DefaultPoolSize is the idle connection pool per peer. Fetches
	// beyond it dial extra connections and close them on return.
	DefaultPoolSize = 4
)

// Config describes one node's view of a static cluster.
type Config struct {
	// Self is this node's own address, exactly as it appears in Nodes.
	Self string
	// Nodes is the full membership, including Self. Every node must be
	// configured with the same set (order irrelevant — ownership is
	// rendezvous-hashed, not position-based).
	Nodes []string
	// Game is the game name sent in the hello of peer connections; peers
	// reject mismatches exactly like clients.
	Game string
	// DialTimeout bounds peer connection establishment (0: the
	// transport default). FetchTimeout caps a fetch round trip,
	// HealthInterval the probe cadence, PoolSize the idle conns per
	// peer; zero selects the package defaults above.
	DialTimeout    time.Duration
	FetchTimeout   time.Duration
	HealthInterval time.Duration
	PoolSize       int
}

// clusterObs holds the registry instruments (nil-safe zero values when
// uninstrumented).
type clusterObs struct {
	fetches     *obs.Counter
	fetchErrors *obs.Counter
	fetchShared *obs.Counter
	fetchMs     *obs.Histogram
	peersUp     *obs.Gauge
	downMarks   *obs.Counter
	probes      *obs.Counter
	probeFails  *obs.Counter
	recoveries  *obs.Counter
}

// fetchCall is one in-flight peer fetch shared by concurrent requesters
// for the same grid point (singleflight below the store's own — direct
// Fetch callers outside the store path coalesce here too).
type fetchCall struct {
	done  chan struct{}
	reply transport.FrameReply
	err   error
}

// Cluster is one node's membership view plus its peer-fetch clients.
// Construct with New; Start launches the health loop, Close stops it
// and drops pooled connections. Ownership queries and Fetch are safe
// for concurrent use.
type Cluster struct {
	cfg   Config
	nodes []string
	peers map[string]*peer

	fetchMu sync.Mutex
	fetches map[geom.GridPoint]*fetchCall

	obs clusterObs

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates the membership and builds the node's cluster view. The
// node list is deduplicated; Self must appear in it.
func New(cfg Config) (*Cluster, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = transport.DefaultDialTimeout
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	var nodes []string
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if !seen[cfg.Self] {
		return nil, fmt.Errorf("cluster: self %q not in node list %v", cfg.Self, nodes)
	}
	c := &Cluster{
		cfg:     cfg,
		nodes:   nodes,
		peers:   make(map[string]*peer, len(nodes)-1),
		fetches: make(map[geom.GridPoint]*fetchCall),
		stop:    make(chan struct{}),
	}
	for _, n := range nodes {
		if n != cfg.Self {
			c.peers[n] = newPeer(n, cfg, c)
		}
	}
	return c, nil
}

// Instrument resolves the cluster's instruments under the "cluster."
// namespace. Call before Start; Instrument(nil) is a no-op.
func (c *Cluster) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.obs = clusterObs{
		fetches:     r.Counter("cluster.peer_fetches"),
		fetchErrors: r.Counter("cluster.peer_fetch_errors"),
		fetchShared: r.Counter("cluster.peer_fetches_shared"),
		fetchMs:     r.Histogram("cluster.peer_fetch_ms"),
		peersUp:     r.Gauge("cluster.peers_up"),
		downMarks:   r.Counter("cluster.down_marks"),
		probes:      r.Counter("cluster.probes"),
		probeFails:  r.Counter("cluster.probe_failures"),
		recoveries:  r.Counter("cluster.probe_recoveries"),
	}
	c.obs.peersUp.Set(int64(len(c.peers)))
	// Per-peer up/down gauges make the health loop's belief — and probe
	// recovery in particular — directly visible in /metrics.
	for addr, p := range c.peers {
		p.upGauge = r.Gauge("cluster.peer_up." + addr)
		p.upGauge.Set(1)
	}
}

// Self returns this node's own address.
func (c *Cluster) Self() string { return c.cfg.Self }

// Nodes returns the (deduplicated) membership.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Size returns the membership count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Owner returns the rendezvous owner of pt over the full static
// membership. Ownership deliberately ignores liveness: a down owner
// must not reshuffle every node's shard (and thrash stores); callers
// handle a down owner by rendering locally (failover).
func (c *Cluster) Owner(pt geom.GridPoint) string { return Owner(c.nodes, pt) }

// OwnsSelf reports whether this node owns pt.
func (c *Cluster) OwnsSelf(pt geom.GridPoint) bool { return c.Owner(pt) == c.cfg.Self }

// Up reports whether addr is believed reachable: true for self and for
// peers whose last probe or fetch succeeded (peers start optimistic
// until the first failure).
func (c *Cluster) Up(addr string) bool {
	if addr == c.cfg.Self {
		return true
	}
	p, ok := c.peers[addr]
	return ok && p.isUp()
}

// PeersUp returns how many peers are currently believed up.
func (c *Cluster) PeersUp() int {
	n := 0
	for _, p := range c.peers {
		if p.isUp() {
			n++
		}
	}
	return n
}

// Start launches the periodic health loop. Safe to skip for clusters
// that rely purely on passive (fetch-failure) down-marking.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// probeAll health-checks every peer once: a pooled connection is
// acquired (dialling and performing the hello exchange if the pool is
// empty) and returned. Success marks the peer up — the only way a
// down peer recovers.
func (c *Cluster) probeAll() {
	for _, p := range c.peers {
		c.obs.probes.Inc()
		pc, err := p.get()
		if err != nil {
			c.obs.probeFails.Inc()
			p.markDown()
			continue
		}
		p.put(pc)
		p.markUp()
	}
	c.obs.peersUp.Set(int64(c.PeersUp()))
}

// Close stops the health loop and closes pooled peer connections.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	for _, p := range c.peers {
		p.drain()
	}
}

// Fetch proxies a frame request for pt to its owner and returns the
// owner's reply (always intra-coded; the owner's stage timings ride in
// the reply so the non-owner can pass them through to its client).
// Concurrent fetches for the same point coalesce into one round trip.
// deadlineMs is the client's absolute display deadline (wall ms, <=0
// none) and propagates to the owner, which schedules and degrades
// against it exactly as if the client had connected directly.
//
// traceID is the distributed trace id of the client request driving the
// fetch (0 untraced): the hop forwards the id's request context verbatim
// so the owner computes the same id and its serve span joins the
// caller's. When concurrent fetches coalesce, the hop carries the
// leader's id; joiners keep their own ids on their own spans.
func (c *Cluster) Fetch(pt geom.GridPoint, deadlineMs float64, traceID uint64) (transport.FrameReply, error) {
	owner := c.Owner(pt)
	if owner == c.cfg.Self {
		return transport.FrameReply{}, fmt.Errorf("cluster: self owns %v, nothing to fetch", pt)
	}
	p := c.peers[owner]
	if !p.isUp() {
		return transport.FrameReply{}, fmt.Errorf("cluster: owner %s of %v is down", owner, pt)
	}

	c.fetchMu.Lock()
	if call, inflight := c.fetches[pt]; inflight {
		c.fetchMu.Unlock()
		c.obs.fetchShared.Inc()
		<-call.done
		return call.reply, call.err
	}
	call := &fetchCall{done: make(chan struct{})}
	c.fetches[pt] = call
	c.fetchMu.Unlock()

	c.obs.fetches.Inc()
	start := time.Now()
	call.reply, call.err = p.fetch(pt, deadlineMs, traceID)
	c.obs.fetchMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if call.err != nil {
		c.obs.fetchErrors.Inc()
	}

	c.fetchMu.Lock()
	delete(c.fetches, pt)
	c.fetchMu.Unlock()
	close(call.done)
	return call.reply, call.err
}
