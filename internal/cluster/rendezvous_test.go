package cluster

import (
	"fmt"
	"testing"

	"coterie/internal/games"
	"coterie/internal/geom"
)

// sampleGrid walks a world's grid with a stride chosen so roughly
// target points are visited, calling f on each. Deterministic: the
// stride depends only on the grid dimensions.
func sampleGrid(g geom.Grid, target int, f func(geom.GridPoint)) int {
	cols, rows := g.Cols(), g.Rows()
	total := int64(cols) * int64(rows)
	stride := 1
	if total > int64(target) {
		stride = int(total / int64(target))
	}
	n, k := 0, 0
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			if k%stride == 0 {
				f(geom.GridPoint{I: i, J: j})
				n++
			}
			k++
		}
	}
	return n
}

func worldGrids(t *testing.T) map[string]geom.Grid {
	t.Helper()
	grids := make(map[string]geom.Grid)
	for _, spec := range games.Catalog() {
		grids[spec.Name] = geom.NewGrid(geom.NewRect(spec.Width, spec.Depth), spec.GridStep)
	}
	if len(grids) != 9 {
		t.Fatalf("expected 9 worlds, got %d", len(grids))
	}
	return grids
}

func clusterNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("10.0.0.%d:7000", i+1)
	}
	return nodes
}

// Ownership must be a pure function of (membership set, point): every
// process computes it locally, so any order- or process-dependence
// would split the cluster's view of the shard map.
func TestOwnerDeterministic(t *testing.T) {
	nodes := clusterNodes(4)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	g := geom.NewGrid(geom.NewRect(100, 100), 0.5)
	sampleGrid(g, 20000, func(pt geom.GridPoint) {
		a := Owner(nodes, pt)
		if b := Owner(nodes, pt); b != a {
			t.Fatalf("owner of %v unstable: %q then %q", pt, a, b)
		}
		if b := Owner(reversed, pt); b != a {
			t.Fatalf("owner of %v depends on node order: %q vs %q", pt, a, b)
		}
	})
	if Owner(nil, geom.GridPoint{}) != "" {
		t.Fatal("empty membership should own nothing")
	}
}

// The hash must spread each world's grid evenly: a skewed shard map
// turns one node into the hotspot the cluster exists to avoid. Bound
// max/min shard population over every world at 4 nodes.
func TestOwnerBalancedAcrossWorlds(t *testing.T) {
	nodes := clusterNodes(4)
	for name, g := range worldGrids(t) {
		counts := make(map[string]int, len(nodes))
		total := sampleGrid(g, 20000, func(pt geom.GridPoint) {
			counts[Owner(nodes, pt)]++
		})
		min, max := total, 0
		for _, n := range nodes {
			c := counts[n]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("%s: a node owns no points (counts %v)", name, counts)
		}
		if skew := float64(max) / float64(min); skew > 1.25 {
			t.Errorf("%s: shard skew %.3f > 1.25 (counts %v over %d points)",
				name, skew, counts, total)
		}
	}
}

// When a node leaves, rendezvous hashing must move only its points:
// every point owned by a survivor keeps its owner (their scores did not
// change), and the departed node's points spread across all survivors.
func TestMinimalReownershipOnLeave(t *testing.T) {
	nodes := clusterNodes(4)
	departed := nodes[2]
	var survivors []string
	for _, n := range nodes {
		if n != departed {
			survivors = append(survivors, n)
		}
	}
	g := geom.NewGrid(geom.NewRect(200, 200), 0.5)
	moved := make(map[string]int)
	orphaned := 0
	sampleGrid(g, 40000, func(pt geom.GridPoint) {
		before := Owner(nodes, pt)
		after := Owner(survivors, pt)
		if before != departed {
			if after != before {
				t.Fatalf("point %v moved %q -> %q though %q survived", pt, before, after, before)
			}
			return
		}
		orphaned++
		moved[after]++
	})
	if orphaned == 0 {
		t.Fatal("departed node owned no sampled points; sample too small")
	}
	for _, n := range survivors {
		if moved[n] == 0 {
			t.Errorf("survivor %q inherited none of the %d orphaned points (%v)", n, orphaned, moved)
		}
	}
}
