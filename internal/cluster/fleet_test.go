package cluster

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coterie/internal/obs"
)

// adminNode serves a real obs.AdminMux over a registry with some serving
// history (frames total, good of them meeting the SLO), returning its
// host:port address.
func adminNode(t *testing.T, frames, good int64) string {
	t.Helper()
	r := obs.NewRegistry()
	slo := obs.NewSLO(obs.SLOConfig{
		Objective: 0.9,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	r.SetSLO(slo)
	r.Counter("server.frames_served").Add(frames)
	r.Counter("server.frames_rendered").Add(frames)
	r.Gauge("server.store_bytes").Set(frames * 1000)
	for i := int64(0); i < frames; i++ {
		slo.Observe(i < good)
	}
	ts := httptest.NewServer(obs.AdminMux(r))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestFleetScrapeWithDeadPeer: a dead node is stale-marked without
// hanging the scrape, and the fleet totals cover exactly the live nodes —
// the merged frame count is the sum of the per-node /metrics counters.
func TestFleetScrapeWithDeadPeer(t *testing.T) {
	a := adminNode(t, 10, 10) // all good
	b := adminNode(t, 5, 0)   // all bad: burns the whole budget

	// A listener that is already closed: connection refused, promptly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	start := time.Now()
	view := Scrape(FleetConfig{Self: a, Admins: []string{a, dead, b}, Timeout: 2 * time.Second})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("scrape with dead peer took %v", elapsed)
	}

	if view.NodesUp != 2 || view.NodesStale != 1 {
		t.Fatalf("nodes up/stale = %d/%d, want 2/1", view.NodesUp, view.NodesStale)
	}
	if len(view.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3 (stale nodes must still be listed)", len(view.Nodes))
	}
	if !view.Nodes[1].Stale || view.Nodes[1].Err == "" {
		t.Errorf("dead node not stale-marked: %+v", view.Nodes[1])
	}
	if view.Nodes[1].Addr != dead {
		t.Errorf("node order does not follow config: %q at index 1, want %q", view.Nodes[1].Addr, dead)
	}
	if !view.Nodes[0].Self {
		t.Error("self node not marked")
	}

	// Fleet totals are the sum of the live nodes' /metrics counters.
	if view.FramesServed != 15 {
		t.Errorf("fleet frames served = %d, want 15", view.FramesServed)
	}
	if view.StoreBytes != 15_000 {
		t.Errorf("fleet store bytes = %d, want 15000", view.StoreBytes)
	}
	for i, want := range []int64{10, 0, 5} {
		if got := view.Nodes[i].FramesServed; !view.Nodes[i].Stale && got != want {
			t.Errorf("node %d frames served = %d, want %d", i, got, want)
		}
	}

	// Burn rates are frame-weighted over the live nodes: 5 bad of 15
	// frames at a 10% budget burns (5/15)/0.1 ≈ 3.33.
	want := (5.0 / 15.0) / 0.1
	if diff := view.BurnRate1m - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fleet 1m burn rate = %v, want %v", view.BurnRate1m, want)
	}

	// Per-node SLO rode along.
	if got := view.Nodes[2].SLO.Short.BadFrames; got != 5 {
		t.Errorf("node b short-window bad frames = %d, want 5", got)
	}
}

// TestFleetHandler: the /cluster endpoint serves the merged view as JSON.
func TestFleetHandler(t *testing.T) {
	a := adminNode(t, 3, 3)
	h := FleetHandler(FleetConfig{Self: a, Admins: []string{a}})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var view FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("bad /cluster JSON: %v", err)
	}
	if view.NodesUp != 1 || view.FramesServed != 3 || view.Self != a {
		t.Errorf("view = %+v", view)
	}
}
